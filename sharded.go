package sigstream

import (
	"fmt"
	"runtime"
	"sync"

	"sigstream/internal/hashing"
	"sigstream/internal/ltc"
	"sigstream/internal/stream"
)

// Sharded is a concurrency-safe LTC: the item space is hash-partitioned
// across independent LTC shards, each behind its own mutex, so goroutines
// ingesting different items rarely contend. Because sharding is by item,
// every item's state lives in exactly one shard and global top-k is an
// exact merge of the shards' top-k lists.
//
// EndPeriod takes all shard locks and must be called by a single
// coordinator (concurrent Inserts may proceed; they will order either side
// of the boundary).
type Sharded struct {
	shards []shard
	// scratch pools the partition buffers InsertBatch uses, so the steady
	// state hot path allocates nothing.
	scratch sync.Pool
}

// batchScratch is the reusable working memory of one InsertBatch call.
type batchScratch struct {
	owner  []uint32 // owning shard of each batch item (hash computed once)
	counts []int
	next   []int
	sorted []Item
}

type shard struct {
	mu sync.Mutex
	l  *ltc.LTC
}

// NewSharded splits cfg.MemoryBytes across n shards (n ≤ 0 selects
// GOMAXPROCS). The budget is distributed in whole buckets, remainder
// included, so Sharded.MemoryBytes reports the same usable budget a single
// LTC of cfg.MemoryBytes would; n is capped so every shard holds at least
// one bucket (no degenerate shards on small budgets). ItemsPerPeriod is
// divided across shards automatically.
//
// NewSharded panics if cfg is invalid; pre-check untrusted configurations
// with Config.Validate.
func NewSharded(cfg Config, n int) *Sharded {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	cfg = cfg.withDefaults()
	mustValidate(cfg)
	// Distribute the budget in bucket-sized units so no shard is rounded to
	// zero buckets and the division remainder is not silently dropped.
	bucketBytes := ltc.CellBytes * cfg.BucketWidth
	buckets := cfg.MemoryBytes / bucketBytes
	if buckets < 1 {
		buckets = 1
	}
	if n > buckets {
		n = buckets // per-shard minimum: one full bucket
	}
	perShard, extra := buckets/n, buckets%n
	// Per-shard pacing hint: ceil, so a small hint never becomes 0 (which
	// would silently flip that shard to adaptive pacing).
	itemsPerPeriod := 0
	if cfg.ItemsPerPeriod > 0 {
		itemsPerPeriod = (cfg.ItemsPerPeriod + n - 1) / n
	}
	s := &Sharded{shards: make([]shard, n)}
	for i := range s.shards {
		b := perShard
		if i < extra {
			b++
		}
		s.shards[i].l = ltc.New(ltc.Options{
			MemoryBytes:                b * bucketBytes,
			BucketWidth:                cfg.BucketWidth,
			Weights:                    internalWeights(cfg.Weights),
			ItemsPerPeriod:             itemsPerPeriod,
			DisableDeviationEliminator: cfg.DisableDeviationEliminator,
			DisableLongTailReplacement: cfg.DisableLongTailReplacement,
			DecayFactor:                cfg.DecayFactor,
			Seed:                       cfg.Seed + uint32(i)*0x9e37,
		})
	}
	return s
}

// Shards reports the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

func (s *Sharded) owner(item Item) *shard {
	return &s.shards[hashing.Mix64(item)%uint64(len(s.shards))]
}

// Insert records one arrival. Safe for concurrent use.
func (s *Sharded) Insert(item Item) {
	sh := s.owner(item)
	sh.mu.Lock()
	sh.l.Insert(item)
	sh.mu.Unlock()
}

// InsertBatch records a batch of arrivals (BatchInserter). The batch is
// pre-partitioned by owning shard, so each shard's lock is taken at most
// once per batch instead of once per item; within a shard, items keep
// their arrival order, so the final state is identical to item-at-a-time
// insertion. Safe for concurrent use, but a batch is not atomic: a
// concurrent EndPeriod may fall between two shards' sub-batches, splitting
// the batch across the boundary (just as it can split per-item inserts).
// The steady state is allocation-free: counting-sort scratch is pooled and
// only grows inside getScratch.
//
//sig:noalloc
func (s *Sharded) InsertBatch(items []Item) {
	if len(items) == 0 {
		return
	}
	n := uint64(len(s.shards))
	if n == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		sh.l.InsertBatch(items)
		sh.mu.Unlock()
		return
	}
	b := s.getScratch(len(items), n)
	owner, sorted := b.owner[:len(items)], b.sorted[:len(items)]
	counts, next := b.counts[:n], b.next[:n]
	// Counting sort by shard: one pass to hash and size the runs, one to
	// scatter into contiguous per-shard sub-batches.
	for i := range counts {
		counts[i] = 0
	}
	for i, it := range items {
		sh := uint32(hashing.Mix64(it) % n)
		owner[i] = sh
		counts[sh]++
	}
	sum := 0
	for i, c := range counts {
		next[i] = sum
		sum += c
	}
	for i, it := range items {
		sh := owner[i]
		sorted[next[sh]] = it
		next[sh]++
	}
	start := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.l.InsertBatch(sorted[start : start+c])
		sh.mu.Unlock()
		start += c
	}
	s.scratch.Put(b)
}

// getScratch returns pooled counting-sort scratch with room for items
// arrivals across n shards. Lane growth happens here — on pool miss or a
// larger batch than any seen before — keeping the steady-state InsertBatch
// path allocation-free.
func (s *Sharded) getScratch(items int, n uint64) *batchScratch {
	b, _ := s.scratch.Get().(*batchScratch)
	if b == nil {
		b = &batchScratch{}
	}
	if cap(b.owner) < items {
		b.owner = make([]uint32, items)
	}
	if cap(b.sorted) < items {
		b.sorted = make([]Item, items)
	}
	if cap(b.counts) < int(n) {
		b.counts = make([]int, n)
		b.next = make([]int, n)
	}
	return b
}

// EndPeriod marks a period boundary on every shard.
func (s *Sharded) EndPeriod() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.l.EndPeriod()
		sh.mu.Unlock()
	}
}

// Query reports the estimate for item. Safe for concurrent use.
func (s *Sharded) Query(item Item) (Entry, bool) {
	sh := s.owner(item)
	sh.mu.Lock()
	e, ok := sh.l.Query(item)
	sh.mu.Unlock()
	return publicEntry(e), ok
}

// TopK reports the k globally most significant items — exact with respect
// to the shards' contents, since each item lives in one shard.
func (s *Sharded) TopK(k int) []Entry {
	var all []stream.Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		all = append(all, sh.l.TopK(k)...)
		sh.mu.Unlock()
	}
	merged := stream.TopKFromEntries(all, k)
	out := make([]Entry, len(merged))
	for i, e := range merged {
		out[i] = publicEntry(e)
	}
	return out
}

// MemoryBytes reports the summed shard budgets.
func (s *Sharded) MemoryBytes() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].l.MemoryBytes()
	}
	return total
}

// Name identifies the tracker.
func (s *Sharded) Name() string {
	return fmt.Sprintf("LTC-sharded%d", len(s.shards))
}

// Stats merges the per-shard snapshots into one global view
// (StatsReporter): capacities, occupancy and operation counters are
// summed; Periods and ParityFlips take the per-shard maximum, since every
// shard sees the same period boundaries. Each shard's counters are plain
// (non-atomic) adds under that shard's existing lock, so instrumentation
// adds no hot-path synchronization; Stats briefly takes each shard lock in
// turn to snapshot.
func (s *Sharded) Stats() Stats {
	var agg stream.Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.l.Stats()
		sh.mu.Unlock()
		if i == 0 {
			agg = st
		} else {
			agg.Merge(st)
		}
	}
	agg.Tracker = s.Name()
	agg.Shards = len(s.shards)
	return publicStats(agg)
}

var (
	_ Tracker       = (*Sharded)(nil)
	_ BatchInserter = (*Sharded)(nil)
	_ StatsReporter = (*Sharded)(nil)
)
