package sigstream

import (
	"fmt"
	"runtime"
	"sync"

	"sigstream/internal/hashing"
	"sigstream/internal/ltc"
	"sigstream/internal/stream"
)

// Sharded is a concurrency-safe LTC: the item space is hash-partitioned
// across independent LTC shards, each behind its own mutex, so goroutines
// ingesting different items rarely contend. Because sharding is by item,
// every item's state lives in exactly one shard and global top-k is an
// exact merge of the shards' top-k lists.
//
// EndPeriod takes all shard locks and must be called by a single
// coordinator (concurrent Inserts may proceed; they will order either side
// of the boundary).
type Sharded struct {
	shards []shard
	total  int // total memory budget
}

type shard struct {
	mu sync.Mutex
	l  *ltc.LTC
}

// NewSharded splits cfg.MemoryBytes evenly across n shards (n ≤ 0 selects
// GOMAXPROCS). ItemsPerPeriod is divided across shards automatically.
func NewSharded(cfg Config, n int) *Sharded {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if cfg.Weights == (Weights{}) {
		cfg.Weights = Balanced
	}
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = 64 << 10
	}
	s := &Sharded{shards: make([]shard, n), total: cfg.MemoryBytes}
	for i := range s.shards {
		s.shards[i].l = ltc.New(ltc.Options{
			MemoryBytes:                cfg.MemoryBytes / n,
			BucketWidth:                cfg.BucketWidth,
			Weights:                    internalWeights(cfg.Weights),
			ItemsPerPeriod:             cfg.ItemsPerPeriod / n,
			DisableDeviationEliminator: cfg.DisableDeviationEliminator,
			DisableLongTailReplacement: cfg.DisableLongTailReplacement,
			DecayFactor:                cfg.DecayFactor,
			Seed:                       cfg.Seed + uint32(i)*0x9e37,
		})
	}
	return s
}

// Shards reports the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

func (s *Sharded) owner(item Item) *shard {
	return &s.shards[hashing.Mix64(item)%uint64(len(s.shards))]
}

// Insert records one arrival. Safe for concurrent use.
func (s *Sharded) Insert(item Item) {
	sh := s.owner(item)
	sh.mu.Lock()
	sh.l.Insert(item)
	sh.mu.Unlock()
}

// EndPeriod marks a period boundary on every shard.
func (s *Sharded) EndPeriod() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.l.EndPeriod()
		sh.mu.Unlock()
	}
}

// Query reports the estimate for item. Safe for concurrent use.
func (s *Sharded) Query(item Item) (Entry, bool) {
	sh := s.owner(item)
	sh.mu.Lock()
	e, ok := sh.l.Query(item)
	sh.mu.Unlock()
	return publicEntry(e), ok
}

// TopK reports the k globally most significant items — exact with respect
// to the shards' contents, since each item lives in one shard.
func (s *Sharded) TopK(k int) []Entry {
	var all []stream.Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		all = append(all, sh.l.TopK(k)...)
		sh.mu.Unlock()
	}
	merged := stream.TopKFromEntries(all, k)
	out := make([]Entry, len(merged))
	for i, e := range merged {
		out[i] = publicEntry(e)
	}
	return out
}

// MemoryBytes reports the summed shard budgets.
func (s *Sharded) MemoryBytes() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].l.MemoryBytes()
	}
	return total
}

// Name identifies the tracker.
func (s *Sharded) Name() string {
	return fmt.Sprintf("LTC-sharded%d", len(s.shards))
}

var _ Tracker = (*Sharded)(nil)
