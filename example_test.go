package sigstream_test

import (
	"fmt"

	"sigstream"
)

// The basic workflow: insert arrivals, mark period boundaries, query the
// top-k significant items.
func ExampleNew() {
	tr := sigstream.New(sigstream.Config{
		MemoryBytes: 64 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 100},
	})
	for period := 0; period < 3; period++ {
		tr.Insert(42) // steady item: every period
		if period == 0 {
			for i := 0; i < 50; i++ {
				tr.Insert(7) // burst: one period only
			}
		}
		tr.EndPeriod()
	}
	for _, e := range tr.TopK(2) {
		fmt.Printf("item %d: f=%d p=%d s=%.0f\n",
			e.Item, e.Frequency, e.Persistency, e.Significance)
	}
	// Output:
	// item 42: f=3 p=3 s=303
	// item 7: f=50 p=1 s=150
}

// String keys are hashed to Items; a KeyMap remembers the reverse mapping.
func ExampleKeyMap() {
	tr := sigstream.New(sigstream.Config{MemoryBytes: 16 << 10})
	keys := sigstream.NewKeyMap()
	for _, user := range []string{"alice", "bob", "alice"} {
		tr.Insert(keys.Intern(user))
	}
	tr.EndPeriod()
	top := tr.TopK(1)
	fmt.Println(keys.Name(top[0].Item), top[0].Frequency)
	// Output:
	// alice 2
}

// Time-defined periods: InsertAt derives period boundaries from
// timestamps (here, 60-second periods).
func ExampleLTC_InsertAt() {
	tr := sigstream.New(sigstream.Config{
		MemoryBytes:    16 << 10,
		Weights:        sigstream.Persistent,
		PeriodDuration: 60,
	})
	tr.InsertAt(5, 10)  // period 0
	tr.InsertAt(5, 70)  // period 1
	tr.InsertAt(5, 95)  // period 1 again: persistency unchanged
	tr.InsertAt(9, 130) // period 2 (closes period 1)
	e, _ := tr.Query(5)
	fmt.Println(e.Persistency)
	// Output:
	// 2
}

// Per-site summaries merge into a global view via binary checkpoints.
func ExampleLTC_Merge() {
	cfg := sigstream.Config{MemoryBytes: 16 << 10, Seed: 1}
	siteA, siteB := sigstream.New(cfg), sigstream.New(cfg)
	for i := 0; i < 3; i++ {
		siteA.Insert(1)
		siteB.Insert(2)
	}
	siteA.EndPeriod()
	siteB.EndPeriod()
	if err := siteA.Merge(siteB); err != nil {
		fmt.Println("merge failed:", err)
		return
	}
	a, _ := siteA.Query(1)
	b, _ := siteA.Query(2)
	fmt.Println(a.Frequency, b.Frequency)
	// Output:
	// 3 3
}

// Sharded ingestion for concurrent producers.
func ExampleNewSharded() {
	tr := sigstream.NewSharded(sigstream.Config{MemoryBytes: 64 << 10}, 4)
	for i := 0; i < 10; i++ {
		tr.Insert(99)
	}
	tr.EndPeriod()
	e, _ := tr.Query(99)
	fmt.Println(e.Frequency)
	// Output:
	// 10
}

// Sliding-window queries: significance over the most recent W periods.
func ExampleNewWindow() {
	tr := sigstream.NewWindow(sigstream.Config{
		MemoryBytes: 32 << 10,
		Weights:     sigstream.Frequent,
	}, 2, 2) // window of 2 periods in 2 blocks
	for period := 0; period < 4; period++ {
		if period == 0 {
			for i := 0; i < 100; i++ {
				tr.Insert(1) // old burst
			}
		}
		tr.Insert(2) // steady item
		tr.EndPeriod()
	}
	// The burst has rotated out of the window; only the steady item remains.
	top := tr.TopK(1)
	fmt.Println(top[0].Item)
	// Output:
	// 2
}

// Merging per-site checkpoints into a global summary in one call.
func ExampleMergeCheckpoints() {
	cfg := sigstream.Config{MemoryBytes: 16 << 10, Seed: 1}
	var images [][]byte
	for site := 0; site < 2; site++ {
		tr := sigstream.New(cfg)
		tr.Insert(sigstream.Item(site + 1))
		tr.EndPeriod()
		img, _ := tr.MarshalBinary()
		images = append(images, img)
	}
	global, err := sigstream.MergeCheckpoints(images...)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(global.TopK(10)))
	// Output:
	// 2
}
