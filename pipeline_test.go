package sigstream

import (
	"fmt"
	"sync"
	"testing"

	"sigstream/internal/gen"
)

// feedPipelined replays the same stream through a Pipeline in ragged batch
// sizes, flushing before every period boundary so the boundary lands at
// the same arrival as the synchronous paths.
func feedPipelined(t *testing.T, tr *Sharded, p *Pipeline, items []Item, per int) {
	t.Helper()
	sizes := []int{1, 7, 256, 3, 64, 1000}
	si := 0
	fed := 0
	for off := 0; off < len(items); {
		n := sizes[si%len(sizes)]
		si++
		if rem := per - fed; n > rem {
			n = rem
		}
		if rem := len(items) - off; n > rem {
			n = rem
		}
		if err := p.Submit(items[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
		fed += n
		if fed == per {
			if err := p.Flush(); err != nil {
				t.Fatal(err)
			}
			tr.EndPeriod()
			fed = 0
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if fed != 0 {
		tr.EndPeriod()
	}
}

// TestPipelineEquivalence asserts the three ingestion paths — per-item
// Insert, partitioned InsertBatch, and the asynchronous Pipeline — leave a
// Sharded tracker in bit-identical state for a single producer: same
// top-k ranking, same per-item estimates, same operation counters.
func TestPipelineEquivalence(t *testing.T) {
	s := gen.NetworkLike(60_000, 11)
	per := s.ItemsPerPeriod()
	cfg := Config{MemoryBytes: 64 << 10, Weights: Balanced, ItemsPerPeriod: per}
	for _, shards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			seq := NewSharded(cfg, shards)
			bat := NewSharded(cfg, shards)
			pip := NewSharded(cfg, shards)
			feedSequential(seq, s.Items, per)
			feedBatched(bat, s.Items, per)
			p := pip.Pipeline(PipelineOptions{RingSize: 4})
			feedPipelined(t, pip, p, s.Items, per)
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			assertSameResults(t, seq, bat)
			assertSameResults(t, seq, pip)
			// The operation counters must match too (how arrivals were
			// framed into batches is the only allowed difference).
			ss, ps := seq.Stats(), pip.Stats()
			ss.Batches, ss.BatchedItems = 0, 0
			ps.Batches, ps.BatchedItems = 0, 0
			if ss != ps {
				t.Fatalf("stats diverged:\nsequential %+v\npipelined  %+v", ss, ps)
			}
			st := p.Stats()
			if st.Items != uint64(len(s.Items)) {
				t.Fatalf("pipeline accepted %d items, want %d", st.Items, len(s.Items))
			}
		})
	}
}

// TestPipelineMixedWithDirectInserts checks a pipeline coexists with
// direct synchronous calls on the same tracker (both are documented as
// allowed — they serialize on the shard locks).
func TestPipelineMixedWithDirectInserts(t *testing.T) {
	tr := NewSharded(Config{MemoryBytes: 32 << 10, Weights: Balanced,
		ItemsPerPeriod: 1000}, 4)
	p := tr.Pipeline(PipelineOptions{})
	defer p.Close()
	for i := 0; i < 500; i++ {
		tr.Insert(Item(i))
	}
	if err := p.Submit(seqItems(500, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().Arrivals; got != 1000 {
		t.Fatalf("arrivals = %d, want 1000", got)
	}
}

// TestPipelineRestart checks a Sharded tracker outlives its pipeline: a
// second pipeline over the same tracker keeps ingesting where the first
// stopped.
func TestPipelineRestart(t *testing.T) {
	tr := NewSharded(Config{MemoryBytes: 32 << 10, Weights: Balanced,
		ItemsPerPeriod: 1000}, 4)
	p1 := tr.Pipeline(PipelineOptions{})
	if err := p1.Submit(seqItems(0, 400)); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := tr.Pipeline(PipelineOptions{})
	defer p2.Close()
	if err := p2.Submit(seqItems(400, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := p2.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().Arrivals; got != 1000 {
		t.Fatalf("arrivals = %d, want 1000", got)
	}
}

func seqItems(lo, hi int) []Item {
	items := make([]Item, 0, hi-lo)
	for i := lo; i < hi; i++ {
		items = append(items, Item(i))
	}
	return items
}

// TestPipelineConcurrentStress hammers one pipelined tracker from many
// producers while readers run TopK/Query/Stats and a coordinator flushes
// and closes periods — the -race configuration this repository's CI runs
// must stay clean, and no arrival may be lost.
func TestPipelineConcurrentStress(t *testing.T) {
	producers := 8
	perProducer := 20_000
	if testing.Short() {
		producers, perProducer = 4, 4_000
	}
	s := gen.NetworkLike(producers*perProducer, 13)
	tr := NewSharded(Config{MemoryBytes: 256 << 10, Weights: Balanced,
		ItemsPerPeriod: 1 << 14}, 8)
	p := tr.Pipeline(PipelineOptions{RingSize: 8})

	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			items := s.Items[g*perProducer : (g+1)*perProducer]
			for off := 0; off < len(items); off += 512 {
				end := off + 512
				if end > len(items) {
					end = len(items)
				}
				if err := p.Submit(items[off:end]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tr.TopK(20)
			_, _ = tr.Query(s.Items[0])
			_ = tr.Stats()
			_ = p.Stats()
			_ = p.Flush()
			tr.EndPeriod()
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Stats().Arrivals, uint64(producers*perProducer); got != want {
		t.Fatalf("arrivals = %d, want %d (lost items in the pipeline)", got, want)
	}
}
