# Convenience targets for the sigstream repository.

GO ?= go

.PHONY: all build test race vet staticcheck cover bench bench-figures eval \
	eval-paper fuzz examples clean

all: build test vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when installed (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@latest).
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 \
		&& staticcheck ./... \
		|| echo "staticcheck not installed; skipping"

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Micro-benchmarks of every structure.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# One benchmark per paper figure (quick scale).
bench-figures:
	$(GO) test -bench=Fig -benchtime=1x -run=^$$ .

# Regenerate the full evaluation (quick scale) into results/.
eval:
	$(GO) run ./cmd/sigbench -fig all -out results > results/quick_all.txt

# Paper-scale evaluation (slow: 10M-item workloads).
eval-paper:
	$(GO) run ./cmd/sigbench -fig all -scale paper -out results-paper

fuzz:
	$(GO) test -fuzz=FuzzOps -fuzztime=30s ./internal/ltc/
	$(GO) test -fuzz=FuzzCheckpoint -fuzztime=30s ./internal/ltc/
	$(GO) test -fuzz=FuzzReadText -fuzztime=30s ./internal/traceio/
	$(GO) test -fuzz=FuzzReadBinary -fuzztime=30s ./internal/traceio/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ddos
	$(GO) run ./examples/website
	$(GO) run ./examples/congestion
	$(GO) run ./examples/distributed
	$(GO) run ./examples/trending

clean:
	rm -f cover.out
