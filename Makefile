# Convenience targets for the sigstream repository.

GO ?= go

.PHONY: all build test race vet staticcheck lint siglint siglint-escapes \
	cover bench bench-figures bench-core benchcmp bench-pipeline-smoke \
	bench-mc bench-ingest-smoke eval eval-paper fuzz fuzz-smoke \
	chaos chaos-wal chaos-cluster examples clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Runs staticcheck when installed (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@latest).
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 \
		&& staticcheck ./... \
		|| echo "staticcheck not installed; skipping"

# The full lint surface: go vet, staticcheck (if installed), the
# repo-specific analyzers, the zero-alloc hot-path gate, and the
# suppression audit.
lint: vet staticcheck siglint siglint-escapes siglint-suppressions

# Repo-specific analyzers (see DESIGN.md "Static analysis").
siglint:
	$(GO) run ./cmd/siglint ./...

# Verify every //sig:noalloc function compiles without heap escapes.
siglint-escapes:
	$(GO) run ./cmd/siglint -escapes ./...

# Audit every //siglint:ignore; stale suppressions fail the build.
siglint-suppressions:
	$(GO) run ./cmd/siglint -suppressions

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# Micro-benchmarks of every structure.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# One benchmark per paper figure (quick scale).
bench-figures:
	$(GO) test -bench=Fig -benchtime=1x -run=^$$ .

# Hot-path benchmarks (LTC core + pipeline), 10 samples each, recorded so
# benchcmp can diff them against a baseline.
bench-core:
	$(GO) test -run=^$$ -bench='InsertLTC|InsertBatchLTC|TopKLTC|Pipeline' \
		-count=10 . | tee results/bench_head.txt

# Compare the current hot-path numbers against the recorded PR 2 baseline.
# Uses benchstat when installed (go install
# golang.org/x/perf/cmd/benchstat@latest); otherwise the raw samples are
# still written to results/bench_head.txt.
benchcmp: bench-core
	@command -v benchstat >/dev/null 2>&1 \
		&& benchstat results/bench_pr2_ltc.txt results/bench_head.txt \
		|| echo "benchstat not installed; skipping (raw numbers in results/bench_head.txt)"

# Fast sanity run of the pipeline benchmarks (what CI runs on every push).
bench-pipeline-smoke:
	$(GO) test -run=^$$ -bench=Pipeline -benchtime=100x .

# The wire-ingestion comparison behind BENCH_8.json: the sigbench rig
# prices text-HTTP vs binary TCP vs pipelined binary over a batch-size
# sweep on live loopback servers, then the micro-benchmarks pin the
# per-frame decode and per-transport costs. On a multi-core host, see
# EXPERIMENTS.md "Multi-core ingest procedure" for the scaling run.
bench-mc:
	$(GO) run ./cmd/sigbench -fig ingest
	$(GO) test -run=^$$ -bench='DecodeBatch|IngestBinaryTCP' -benchmem ./internal/ingest/
	$(GO) test -run=^$$ -bench='InsertHTTP' -benchmem ./internal/server/

# Fast sanity run of the ingest benchmarks (what CI runs on every push).
bench-ingest-smoke:
	$(GO) test -run=^$$ -bench='DecodeBatch|IngestBinaryTCP' -benchtime=100x ./internal/ingest/
	$(GO) test -run=^$$ -bench='InsertHTTP' -benchtime=100x ./internal/server/

# Regenerate the full evaluation (quick scale) into results/.
eval:
	$(GO) run ./cmd/sigbench -fig all -out results > results/quick_all.txt

# Paper-scale evaluation (slow: 10M-item workloads).
eval-paper:
	$(GO) run ./cmd/sigbench -fig all -scale paper -out results-paper

fuzz:
	$(GO) test -fuzz=FuzzOps -fuzztime=30s ./internal/ltc/
	$(GO) test -fuzz=FuzzCheckpoint -fuzztime=30s ./internal/ltc/
	$(GO) test -fuzz=FuzzReadText -fuzztime=30s ./internal/traceio/
	$(GO) test -fuzz=FuzzReadBinary -fuzztime=30s ./internal/traceio/
	$(GO) test -fuzz=FuzzSnapshotDecode -fuzztime=30s ./internal/snapshot/
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=30s ./internal/wal/
	$(GO) test -fuzz=FuzzIngestDecode -fuzztime=30s ./internal/ingest/

# The quick fuzz pass CI runs on every push (10s per LTC target).
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz='^FuzzOps$$' -fuzztime=10s ./internal/ltc/
	$(GO) test -run=^$$ -fuzz='^FuzzCheckpoint$$' -fuzztime=10s ./internal/ltc/
	$(GO) test -run=^$$ -fuzz='^FuzzFastmod$$' -fuzztime=10s ./internal/ltc/
	$(GO) test -run=^$$ -fuzz='^FuzzSnapshotDecode$$' -fuzztime=10s ./internal/snapshot/
	$(GO) test -run=^$$ -fuzz='^FuzzWALDecode$$' -fuzztime=10s ./internal/wal/
	$(GO) test -run=^$$ -fuzz='^FuzzIngestDecode$$' -fuzztime=10s ./internal/ingest/

# The fault-injection suite under race: worker crash/restart/quarantine,
# slow-shard shedding, torn snapshots, and the kill -9 recovery round-trip.
chaos:
	$(GO) test -race -run '^TestChaos' ./internal/pipeline/ ./internal/snapshot/ ./internal/server/ .

# The WAL durability suite under race: kill -9 at every wal/* fault point
# must recover bit-identically to the acknowledged prefix, per tenant,
# with bounded disk across snapshot/truncate cycles.
chaos-wal:
	$(GO) test -race -run '^TestChaosWAL' ./internal/server/
	$(GO) test -race -run '^TestWAL' ./internal/tenant/
	$(GO) test -race ./internal/wal/

# The networked-cluster chaos matrix under race: real sigserver and
# sigcoord processes over real TCP, kill -9 of each node in turn at R=2
# (the view stays available within the accuracy gate, the dead site shows
# in /v1/cluster/status, the restarted node rejoins automatically), plus a
# coordinator kill/restart. The fine-grained fault-point suites (torn
# checkpoints, commit crashes, breaker trips, quorum loss) live in
# internal/cluster and internal/coord and run here under race too.
chaos-cluster:
	$(GO) test -race -run '^TestChaosCluster' -v ./cmd/sigcoord/
	$(GO) test -race ./internal/cluster/ ./internal/coord/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ddos
	$(GO) run ./examples/website
	$(GO) run ./examples/congestion
	$(GO) run ./examples/distributed
	$(GO) run ./examples/trending

clean:
	rm -f cover.out
