package sigstream

import (
	"log/slog"
	"time"

	"sigstream/internal/pipeline"
	"sigstream/internal/stream"
)

// ErrPipelineClosed reports a Submit or Flush on a closed Pipeline.
var ErrPipelineClosed = pipeline.ErrClosed

// DefaultPipelineRingSize is the per-shard ring capacity, in batches, when
// PipelineOptions.RingSize is zero.
const DefaultPipelineRingSize = pipeline.DefaultRingSize

// PipelineOptions tunes the asynchronous ingestion front-end created by
// Sharded.Pipeline. The zero value selects the documented defaults.
type PipelineOptions struct {
	// RingSize is the per-shard ring capacity in batches (default 64).
	// Deeper rings absorb burstier producers before backpressure kicks in,
	// at the cost of a longer Flush and more queued memory.
	RingSize int
	// RestartBudget is the number of worker restarts tolerated per shard
	// within RestartWindow before the shard is quarantined and the
	// pipeline fails terminally (default 3). A panicking tracker below the
	// budget costs only its in-flight sub-batch: the worker respawns and
	// producers never see an error.
	RestartBudget int
	// RestartWindow is the sliding window over which RestartBudget is
	// counted (default one minute).
	RestartWindow time.Duration
	// Logger receives worker restart and quarantine events (default
	// slog.Default()).
	Logger *slog.Logger
}

// PipelineStats is a point-in-time snapshot of a Pipeline's rings and
// counters; /metrics exposes the same numbers as gauges.
type PipelineStats struct {
	// Shards is the number of rings/workers.
	Shards int
	// RingCapacity is each ring's capacity in batches.
	RingCapacity int
	// RingDepth is the current per-shard queue depth in batches.
	RingDepth []int
	// Items counts items accepted by Submit.
	Items uint64
	// Batches counts sub-batches enqueued onto rings.
	Batches uint64
	// Stalls counts ring sends that blocked on a full ring (backpressure
	// events; a persistently rising rate means the workers are the
	// bottleneck).
	Stalls uint64
	// Flushes counts completed Flush drains.
	Flushes uint64
	// Dropped counts items discarded: the in-flight sub-batch of every
	// sink panic, plus everything drained after a quarantine.
	Dropped uint64
	// Restarts counts workers respawned after a recovered sink panic.
	Restarts uint64
	// QuarantinedShards counts shards retired after exhausting the
	// restart budget.
	QuarantinedShards uint64
}

// Pipeline is an asynchronous ingestion front-end over a Sharded tracker:
// Submit hash-partitions a batch on the producer goroutine and hands each
// shard's sub-batch to that shard's dedicated worker through a bounded
// ring, so a single producer keeps every shard busy at once and
// backpressure is the ring bound, not an unbounded queue.
//
// Semantics: submission is asynchronous — Flush is the visibility barrier
// that guarantees previously submitted items are applied (call it before
// EndPeriod, TopK or a checkpoint when exact read-your-writes is needed).
// From one producer the post-Flush state is bit-identical to synchronous
// ingestion of the same items; concurrent producers interleave exactly as
// concurrent synchronous inserts do. Close drains and releases the
// workers; the Sharded tracker remains fully usable (including starting a
// new Pipeline).
type Pipeline struct {
	in *pipeline.Ingestor
}

// Pipeline starts an asynchronous ingestion front-end over s: one worker
// goroutine and one bounded ring per shard. The caller must Close it to
// release the workers. Multiple pipelines over one Sharded are allowed
// (they serialize per shard on the shard locks), as is mixing Pipeline
// ingestion with direct Insert/InsertBatch calls.
func (s *Sharded) Pipeline(opts PipelineOptions) *Pipeline {
	sinks := make([]pipeline.Sink, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sinks[i] = pipeline.SinkFunc(func(items []stream.Item) {
			sh.mu.Lock()
			defer sh.mu.Unlock() // defer: a tracker panic must not leak the lock
			sh.l.InsertBatch(items)
		})
	}
	return &Pipeline{in: pipeline.New(sinks, pipeline.Options{
		RingSize:      opts.RingSize,
		RestartBudget: opts.RestartBudget,
		RestartWindow: opts.RestartWindow,
		Logger:        opts.Logger,
		// The default partition is hashing.Mix64 % shards, identical to
		// Sharded.owner, so both ingestion paths agree on item ownership.
	})}
}

// Submit hash-partitions items and enqueues them for the shard workers,
// blocking while rings are full. The slice is copied; the caller may reuse
// it immediately. It reports ErrClosed (from the pipeline package) after
// Close and the first worker failure once poisoned.
func (p *Pipeline) Submit(items []Item) error { return p.in.Submit(items) }

// Flush blocks until every item submitted before the call is applied to
// the tracker, then reports any worker failure. It is the barrier to call
// before EndPeriod, TopK, Query or a checkpoint when exact
// read-your-writes is required.
func (p *Pipeline) Flush() error { return p.in.Flush() }

// Close drains the rings, stops the workers and releases their
// goroutines. Subsequent Submit/Flush calls fail; Close is idempotent.
func (p *Pipeline) Close() error { return p.in.Close() }

// Err reports the pipeline's terminal failure, if any: a shard exhausted
// its restart budget and was quarantined. Recovered sink panics below the
// budget are not errors; they surface through Stats.Restarts.
func (p *Pipeline) Err() error { return p.in.Err() }

// Depth reports the deepest per-shard ring's current queue depth in
// batches, allocation-free — the number an HTTP load-shed gate polls on
// every request.
func (p *Pipeline) Depth() int { return p.in.MaxRingDepth() }

// RingCapacity reports each per-shard ring's capacity in batches.
func (p *Pipeline) RingCapacity() int { return p.in.RingCapacity() }

// Stats snapshots the pipeline's rings and counters.
func (p *Pipeline) Stats() PipelineStats {
	st := p.in.Stats()
	return PipelineStats{
		Shards:            st.Shards,
		RingCapacity:      st.RingCapacity,
		RingDepth:         st.RingDepth,
		Items:             st.Items,
		Batches:           st.Batches,
		Stalls:            st.Stalls,
		Flushes:           st.Flushes,
		Dropped:           st.Dropped,
		Restarts:          st.Restarts,
		QuarantinedShards: st.QuarantinedShards,
	}
}
