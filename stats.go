package sigstream

import (
	"sigstream/internal/stream"
)

// Stats is a structured observability snapshot of one tracker: identity,
// geometry, occupancy, and cumulative operation counters. It is the one
// stats surface shared by the HTTP service's /v1/stats and /metrics
// endpoints, cmd/sigtop, and the experiment harness. Counter semantics
// follow the paper's operation cases: a Hit is an arrival matching a
// tracked cell, an Admission fills an empty or freshly-expelled cell, a
// Decrement is a Significance Decrementing step on a full bucket, and an
// Expulsion evicts the decremented item once its significance reaches
// zero. The JSON field names are the wire contract of /v1/stats.
type Stats struct {
	// Tracker is the algorithm name (Tracker.Name).
	Tracker string `json:"tracker"`
	// MemoryBytes is the accounted memory footprint.
	MemoryBytes int `json:"memory_bytes"`
	// Shards is the number of independent partitions (1 for unsharded
	// trackers).
	Shards int `json:"shards"`
	// Buckets is w, the number of hash buckets (0 for non-bucket trackers).
	Buckets int `json:"buckets,omitempty"`
	// BucketWidth is d, the cells per bucket (0 for non-bucket trackers).
	BucketWidth int `json:"bucket_width,omitempty"`
	// Cells is the total cell capacity (0 for non-cell trackers).
	Cells int `json:"cells,omitempty"`
	// OccupiedCells is the number of occupied cells at snapshot time.
	OccupiedCells int `json:"occupied_cells"`
	// Alpha is the frequency weight α.
	Alpha float64 `json:"alpha"`
	// Beta is the persistency weight β.
	Beta float64 `json:"beta"`
	// Periods is the number of period boundaries the tracker has crossed.
	Periods uint64 `json:"periods"`
	// Arrivals is the number of recorded arrivals.
	Arrivals uint64 `json:"arrivals"`
	// Batches is the number of native-path InsertBatch calls.
	Batches uint64 `json:"batches"`
	// BatchedItems is the number of arrivals ingested via InsertBatch.
	BatchedItems uint64 `json:"batched_items"`
	// Hits counts arrivals that matched a tracked cell.
	Hits uint64 `json:"hits"`
	// Admissions counts items installed into a cell.
	Admissions uint64 `json:"admissions"`
	// Decrements counts Significance Decrementing operations.
	Decrements uint64 `json:"decrements"`
	// Expulsions counts evicted items.
	Expulsions uint64 `json:"expulsions"`
	// FlagsConsumed counts persistency credits granted by the CLOCK sweep.
	FlagsConsumed uint64 `json:"flags_consumed"`
	// CellsSwept counts cells the CLOCK pointer has passed over.
	CellsSwept uint64 `json:"cells_swept"`
	// ParityFlips counts Deviation-Eliminator parity flips (0 in basic
	// mode).
	ParityFlips uint64 `json:"parity_flips"`
}

// StatsReporter is the optional observability extension of Tracker,
// mirroring BatchInserter: trackers with instrumentation counters
// implement it to expose a structured snapshot. Every tracker returned by
// this package implements it — LTC, Window and Sharded natively (Sharded
// merges its per-shard counters), the baselines through a generic adapter
// that reports identity and memory only. For an arbitrary Tracker use the
// TrackerStats helper.
type StatsReporter interface {
	// Stats returns the tracker's observability snapshot. It is a
	// diagnostics call (it may scan the structure), not a hot-path one.
	Stats() Stats
}

// TrackerStats snapshots any Tracker: the native snapshot when t
// implements StatsReporter, otherwise a minimal snapshot carrying the
// identity fields derivable from the Tracker interface. The second result
// reports whether the snapshot is native, in the same shape as the
// InsertBatch helper's fallback contract.
func TrackerStats(t Tracker) (Stats, bool) {
	if r, ok := t.(StatsReporter); ok {
		return r.Stats(), true
	}
	return Stats{Tracker: t.Name(), MemoryBytes: t.MemoryBytes(), Shards: 1}, false
}

// publicStats converts an internal snapshot to the public wire form.
func publicStats(s stream.Stats) Stats {
	return Stats{
		Tracker:       s.Tracker,
		MemoryBytes:   s.MemoryBytes,
		Shards:        s.Shards,
		Buckets:       s.Buckets,
		BucketWidth:   s.BucketWidth,
		Cells:         s.Cells,
		OccupiedCells: s.Occupied,
		Alpha:         s.Alpha,
		Beta:          s.Beta,
		Periods:       s.Periods,
		Arrivals:      s.Arrivals,
		Batches:       s.Batches,
		BatchedItems:  s.BatchItems,
		Hits:          s.Hits,
		Admissions:    s.Admissions,
		Decrements:    s.Decrements,
		Expulsions:    s.Expulsions,
		FlagsConsumed: s.FlagConsumed,
		CellsSwept:    s.CellsSwept,
		ParityFlips:   s.ParityFlips,
	}
}

// Stats reports the wrapped tracker's snapshot (StatsReporter): the
// internal tracker's native snapshot when it keeps counters (LTC, the
// window tracker), or the generic identity-only fallback for baselines
// without instrumentation.
func (w wrap) Stats() Stats {
	s, _ := stream.CollectStats(w.t)
	return publicStats(s)
}

var _ StatsReporter = wrap{}
