package sigstream

import (
	"sync"
	"testing"
)

func TestShardedBasicCounting(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 64 << 10, Weights: Balanced}, 4)
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", s.Shards())
	}
	for p := 0; p < 3; p++ {
		for i := 0; i < 10; i++ {
			s.Insert(7)
			s.Insert(9)
		}
		s.EndPeriod()
	}
	e, ok := s.Query(7)
	if !ok || e.Frequency != 30 || e.Persistency != 3 {
		t.Fatalf("item 7: %+v ok=%v, want f=30 p=3", e, ok)
	}
}

func TestShardedTopKIsGlobal(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 256 << 10, Weights: Frequent}, 8)
	// 100 items with distinct frequencies spread over all shards.
	for i := 1; i <= 100; i++ {
		for j := 0; j < i; j++ {
			s.Insert(Item(i))
		}
	}
	s.EndPeriod()
	top := s.TopK(10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i, e := range top {
		if e.Item != Item(100-i) {
			t.Fatalf("rank %d: item %d, want %d", i, e.Item, 100-i)
		}
	}
}

func TestShardedConcurrentInserts(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 128 << 10, Weights: Balanced}, 4)
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 20000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Insert(Item(i%500 + 1))
			}
		}(g)
	}
	wg.Wait()
	s.EndPeriod()
	var total uint64
	for _, e := range s.TopK(1 << 20) {
		total += e.Frequency
	}
	if total != goroutines*perG {
		t.Fatalf("tracked frequency sum %d, want %d (lost updates)",
			total, goroutines*perG)
	}
}

// TestShardedBatchRaceStress mixes concurrent Insert, InsertBatch and
// Query with a coordinator calling EndPeriod; run under -race in CI. The
// item universe fits every shard, so the final frequency sum must be exact.
func TestShardedBatchRaceStress(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 256 << 10, Weights: Balanced}, 8)
	const (
		writers   = 4
		batchers  = 4
		perWriter = 8_000
		batchSize = 64
	)
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.TopK(20)
				s.Query(17)
			}
		}()
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Insert(Item(i%400 + 1))
			}
		}(g)
	}
	for g := 0; g < batchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := make([]Item, batchSize)
			for done := 0; done < perWriter; done += batchSize {
				for i := range batch {
					batch[i] = Item((done+i)%400 + 1)
				}
				s.InsertBatch(batch)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			s.EndPeriod()
		}
	}()
	<-done
	wg.Wait()
	close(stop)
	readers.Wait()

	var total uint64
	for _, e := range s.TopK(1 << 20) {
		total += e.Frequency
	}
	want := uint64(writers*perWriter + batchers*perWriter)
	if total != want {
		t.Fatalf("frequency sum %d, want %d (lost updates)", total, want)
	}
}

// TestShardedSmallBudgetNoDegenerateShards pins the integer-division
// fixes: a small budget over many shards must cap the shard count instead
// of creating zero-bucket shards, and the division remainder must be
// distributed so the sharded tracker reports the same usable budget a
// single LTC of the same configuration would.
func TestShardedSmallBudgetNoDegenerateShards(t *testing.T) {
	// 3 buckets' worth of memory (bucket = 8 cells × 16 B = 128 B) over 16
	// requested shards → at most 3 shards, each ≥ 1 bucket.
	s := NewSharded(Config{MemoryBytes: 3 * 128, Weights: Balanced}, 16)
	if s.Shards() > 3 || s.Shards() < 1 {
		t.Fatalf("Shards = %d, want in [1,3]", s.Shards())
	}
	if got := s.MemoryBytes(); got != 3*128 {
		t.Fatalf("MemoryBytes = %d, want %d", got, 3*128)
	}
	s.Insert(1)
	if _, ok := s.Query(1); !ok {
		t.Fatal("degenerate shard lost the item")
	}
}

// TestShardedMemoryMatchesSingleLTC checks the remainder distribution on a
// budget that does not divide evenly by the shard count.
func TestShardedMemoryMatchesSingleLTC(t *testing.T) {
	cfg := Config{MemoryBytes: 100_000, Weights: Balanced} // 781 buckets, 781 % 7 != 0
	single := New(cfg)
	sharded := NewSharded(cfg, 7)
	if single.MemoryBytes() != sharded.MemoryBytes() {
		t.Fatalf("sharded budget %d under-reports single-LTC budget %d",
			sharded.MemoryBytes(), single.MemoryBytes())
	}
	// ItemsPerPeriod hint must never round to zero on any shard.
	s2 := NewSharded(Config{MemoryBytes: 64 << 10, ItemsPerPeriod: 5}, 8)
	s2.Insert(1) // would divide 5/8 = 0 before the fix; just exercise it
	if _, ok := s2.Query(1); !ok {
		t.Fatal("lost item with small ItemsPerPeriod")
	}
}

func TestShardedDefaults(t *testing.T) {
	s := NewSharded(Config{}, 0)
	if s.Shards() < 1 {
		t.Fatal("no shards")
	}
	if s.MemoryBytes() <= 0 {
		t.Fatal("no memory")
	}
	if s.Name() == "" {
		t.Fatal("no name")
	}
	s.Insert(1)
	if _, ok := s.Query(1); !ok {
		t.Fatal("lost item")
	}
}

func TestPublicCheckpointAndMerge(t *testing.T) {
	cfg := Config{MemoryBytes: 16 << 10, Weights: Balanced, Seed: 5}
	a, b := New(cfg), New(cfg)
	for p := 0; p < 4; p++ {
		for i := 0; i < 20; i++ {
			a.Insert(Item(i + 1))
			b.Insert(Item(i + 101))
		}
		a.EndPeriod()
		b.EndPeriod()
	}
	// Round-trip a through its checkpoint.
	img, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Config{})
	if err := restored.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	if err := restored.Merge(b); err != nil {
		t.Fatal(err)
	}
	if e, ok := restored.Query(1); !ok || e.Frequency != 4 {
		t.Fatalf("merged state wrong for item 1: %+v ok=%v", e, ok)
	}
	if e, ok := restored.Query(101); !ok || e.Frequency != 4 {
		t.Fatalf("merged state wrong for item 101: %+v ok=%v", e, ok)
	}
	// Reset leaves a clean tracker.
	restored.Reset()
	if restored.Occupancy() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestPublicMergeIncompatible(t *testing.T) {
	a := New(Config{MemoryBytes: 16 << 10, Seed: 1})
	b := New(Config{MemoryBytes: 32 << 10, Seed: 1})
	if err := a.Merge(b); err == nil {
		t.Fatal("incompatible merge accepted")
	}
}

func TestPublicInsertAt(t *testing.T) {
	l := New(Config{MemoryBytes: 16 << 10, Weights: Persistent, PeriodDuration: 10})
	l.InsertAt(5, 1)
	l.InsertAt(5, 12)
	l.InsertAt(6, 21)
	e, ok := l.Query(5)
	if !ok || e.Persistency != 2 {
		t.Fatalf("timed persistency = %d (ok=%v), want 2", e.Persistency, ok)
	}
}
