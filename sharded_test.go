package sigstream

import (
	"sync"
	"testing"
)

func TestShardedBasicCounting(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 64 << 10, Weights: Balanced}, 4)
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", s.Shards())
	}
	for p := 0; p < 3; p++ {
		for i := 0; i < 10; i++ {
			s.Insert(7)
			s.Insert(9)
		}
		s.EndPeriod()
	}
	e, ok := s.Query(7)
	if !ok || e.Frequency != 30 || e.Persistency != 3 {
		t.Fatalf("item 7: %+v ok=%v, want f=30 p=3", e, ok)
	}
}

func TestShardedTopKIsGlobal(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 256 << 10, Weights: Frequent}, 8)
	// 100 items with distinct frequencies spread over all shards.
	for i := 1; i <= 100; i++ {
		for j := 0; j < i; j++ {
			s.Insert(Item(i))
		}
	}
	s.EndPeriod()
	top := s.TopK(10)
	if len(top) != 10 {
		t.Fatalf("TopK returned %d", len(top))
	}
	for i, e := range top {
		if e.Item != Item(100-i) {
			t.Fatalf("rank %d: item %d, want %d", i, e.Item, 100-i)
		}
	}
}

func TestShardedConcurrentInserts(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 128 << 10, Weights: Balanced}, 4)
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 20000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Insert(Item(i%500 + 1))
			}
		}(g)
	}
	wg.Wait()
	s.EndPeriod()
	var total uint64
	for _, e := range s.TopK(1 << 20) {
		total += e.Frequency
	}
	if total != goroutines*perG {
		t.Fatalf("tracked frequency sum %d, want %d (lost updates)",
			total, goroutines*perG)
	}
}

func TestShardedDefaults(t *testing.T) {
	s := NewSharded(Config{}, 0)
	if s.Shards() < 1 {
		t.Fatal("no shards")
	}
	if s.MemoryBytes() <= 0 {
		t.Fatal("no memory")
	}
	if s.Name() == "" {
		t.Fatal("no name")
	}
	s.Insert(1)
	if _, ok := s.Query(1); !ok {
		t.Fatal("lost item")
	}
}

func TestPublicCheckpointAndMerge(t *testing.T) {
	cfg := Config{MemoryBytes: 16 << 10, Weights: Balanced, Seed: 5}
	a, b := New(cfg), New(cfg)
	for p := 0; p < 4; p++ {
		for i := 0; i < 20; i++ {
			a.Insert(Item(i + 1))
			b.Insert(Item(i + 101))
		}
		a.EndPeriod()
		b.EndPeriod()
	}
	// Round-trip a through its checkpoint.
	img, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Config{})
	if err := restored.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	if err := restored.Merge(b); err != nil {
		t.Fatal(err)
	}
	if e, ok := restored.Query(1); !ok || e.Frequency != 4 {
		t.Fatalf("merged state wrong for item 1: %+v ok=%v", e, ok)
	}
	if e, ok := restored.Query(101); !ok || e.Frequency != 4 {
		t.Fatalf("merged state wrong for item 101: %+v ok=%v", e, ok)
	}
	// Reset leaves a clean tracker.
	restored.Reset()
	if restored.Occupancy() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestPublicMergeIncompatible(t *testing.T) {
	a := New(Config{MemoryBytes: 16 << 10, Seed: 1})
	b := New(Config{MemoryBytes: 32 << 10, Seed: 1})
	if err := a.Merge(b); err == nil {
		t.Fatal("incompatible merge accepted")
	}
}

func TestPublicInsertAt(t *testing.T) {
	l := New(Config{MemoryBytes: 16 << 10, Weights: Persistent, PeriodDuration: 10})
	l.InsertAt(5, 1)
	l.InsertAt(5, 12)
	l.InsertAt(6, 21)
	e, ok := l.Query(5)
	if !ok || e.Persistency != 2 {
		t.Fatalf("timed persistency = %d (ok=%v), want 2", e.Persistency, ok)
	}
}
