package sigstream

// A documentation quality gate: every exported identifier in every package
// of this module must carry a doc comment (deliverable (e): "doc comments
// on every public item"). The test walks the source with go/ast so a
// missing comment fails CI rather than slipping into a release.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "results" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, posOf(fset, d.Pos())+" func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing = append(missing, posOf(fset, s.Pos())+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								missing = append(missing,
									posOf(fset, n.Pos())+" value "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

func posOf(fset *token.FileSet, p token.Pos) string {
	pos := fset.Position(p)
	rel, err := filepath.Rel(mustGetwd(), pos.Filename)
	if err != nil {
		rel = pos.Filename
	}
	return rel + ":" + itoa(pos.Line)
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
