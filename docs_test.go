package sigstream

// A documentation quality gate: every exported identifier in every package
// of this module must carry a doc comment (deliverable (e): "doc comments
// on every public item"). The test walks the source with go/ast so a
// missing comment fails CI rather than slipping into a release.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "results" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, posOf(fset, d.Pos())+" func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing = append(missing, posOf(fset, s.Pos())+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								missing = append(missing,
									posOf(fset, n.Pos())+" value "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// TestNoConstructorBypassesNewBaseline is the compat gate: NewBaseline
// (plus the NewWindow extension) is the only sanctioned way to build a
// Tracker. Any other exported Tracker-returning constructor must be a
// deprecated positional wrapper living in compat.go — so a new baseline
// cannot grow a new positional entry point, and the legacy wrappers
// cannot migrate back into the live API surface.
func TestNoConstructorBypassesNewBaseline(t *testing.T) {
	sanctioned := map[string]bool{"NewBaseline": true, "NewWindow": true}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") {
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				continue
			}
			if !strings.HasPrefix(fd.Name.Name, "New") || !returnsTracker(fd) {
				continue
			}
			if sanctioned[fd.Name.Name] {
				continue
			}
			if name != "compat.go" {
				t.Errorf("%s: exported constructor %s bypasses NewBaseline; "+
					"construct through NewBaseline(kind, Config) instead",
					posOf(fset, fd.Pos()), fd.Name.Name)
				continue
			}
			if fd.Doc == nil || !strings.Contains(fd.Doc.Text(), "Deprecated:") {
				t.Errorf("%s: compat.go constructor %s lacks a Deprecated: marker",
					posOf(fset, fd.Pos()), fd.Name.Name)
			}
		}
	}
}

// returnsTracker reports whether a function's results include the plain
// Tracker interface.
func returnsTracker(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		if id, ok := r.Type.(*ast.Ident); ok && id.Name == "Tracker" {
			return true
		}
	}
	return false
}

func posOf(fset *token.FileSet, p token.Pos) string {
	pos := fset.Position(p)
	rel, err := filepath.Rel(mustGetwd(), pos.Filename)
	if err != nil {
		rel = pos.Filename
	}
	return rel + ":" + itoa(pos.Line)
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
