package sigstream

import (
	"encoding/json"
	"testing"
)

func TestLTCStatsNative(t *testing.T) {
	tr := New(Config{MemoryBytes: 32 << 10, ItemsPerPeriod: 100})
	for i := 0; i < 10; i++ {
		tr.Insert(Item(7))
	}
	tr.Insert(Item(8))
	tr.EndPeriod()

	st, native := TrackerStats(tr)
	if !native {
		t.Fatal("LTC should report native stats")
	}
	if st.Tracker != tr.Name() {
		t.Fatalf("tracker name %q, want %q", st.Tracker, tr.Name())
	}
	if st.Arrivals != 11 {
		t.Fatalf("arrivals %d, want 11", st.Arrivals)
	}
	if st.Hits != 9 {
		t.Fatalf("hits %d, want 9 (10 arrivals of one item, first admits)", st.Hits)
	}
	if st.Admissions != 2 {
		t.Fatalf("admissions %d, want 2", st.Admissions)
	}
	if st.Periods != 1 {
		t.Fatalf("periods %d, want 1", st.Periods)
	}
	if st.Shards != 1 || st.Cells == 0 || st.Buckets == 0 {
		t.Fatalf("geometry not populated: %+v", st)
	}
	if st.OccupiedCells != 2 {
		t.Fatalf("occupied %d, want 2", st.OccupiedCells)
	}
	if st.MemoryBytes != tr.MemoryBytes() {
		t.Fatalf("memory %d, want %d", st.MemoryBytes, tr.MemoryBytes())
	}
}

func TestShardedStatsMergesShards(t *testing.T) {
	s := NewSharded(Config{MemoryBytes: 64 << 10}, 4)
	items := make([]Item, 0, 1000)
	for i := 0; i < 1000; i++ {
		items = append(items, Item(i%50))
	}
	s.InsertBatch(items)
	s.EndPeriod()

	st, native := TrackerStats(s)
	if !native {
		t.Fatal("Sharded should report native stats")
	}
	if st.Shards != 4 {
		t.Fatalf("shards %d, want 4", st.Shards)
	}
	if st.Arrivals != 1000 {
		t.Fatalf("arrivals %d, want 1000 summed across shards", st.Arrivals)
	}
	if st.Hits+st.Admissions == 0 {
		t.Fatal("no operation counters aggregated")
	}
	// All shards see the same period boundary: merged as max, not sum.
	if st.Periods != 1 {
		t.Fatalf("periods %d, want 1 (max across shards, not sum)", st.Periods)
	}
	// Capacity sums across shards and the per-shard memory sums to ~budget.
	if st.Cells == 0 || st.MemoryBytes != s.MemoryBytes() {
		t.Fatalf("capacity not aggregated: %+v", st)
	}
}

func TestWindowStatsNative(t *testing.T) {
	w := NewWindow(Config{MemoryBytes: 32 << 10}, 4, 2)
	for p := 0; p < 6; p++ {
		for i := 0; i < 20; i++ {
			w.Insert(Item(i))
		}
		w.EndPeriod()
	}
	st, native := TrackerStats(w)
	if !native {
		t.Fatal("Window should report native stats")
	}
	// Periods is cumulative across block rotations.
	if st.Periods != 6 {
		t.Fatalf("periods %d, want 6", st.Periods)
	}
	if st.Arrivals == 0 {
		t.Fatal("window arrivals not reported")
	}
}

func TestBaselineStatsFallback(t *testing.T) {
	for _, kind := range []BaselineKind{SpaceSaving, LossyCounting, MisraGries,
		FrequentSketch, PersistentSketch, SignificantSketch, PIE, Sampling} {
		tr := NewBaseline(kind, Config{MemoryBytes: 32 << 10})
		tr.Insert(Item(1))
		tr.EndPeriod()
		st, _ := TrackerStats(tr)
		if st.Tracker != tr.Name() {
			t.Errorf("%v: name %q, want %q", kind, st.Tracker, tr.Name())
		}
		if st.MemoryBytes != tr.MemoryBytes() {
			t.Errorf("%v: memory %d, want %d", kind, st.MemoryBytes, tr.MemoryBytes())
		}
		if st.Shards != 1 {
			t.Errorf("%v: shards %d, want 1", kind, st.Shards)
		}
	}
}

func TestStatsSurviveCheckpoint(t *testing.T) {
	tr := New(Config{MemoryBytes: 32 << 10, ItemsPerPeriod: 100})
	for i := 0; i < 200; i++ {
		tr.Insert(Item(i % 10))
	}
	tr.EndPeriod()
	before, _ := TrackerStats(tr)

	img, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Config{MemoryBytes: 32 << 10})
	if err := restored.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	after, _ := TrackerStats(restored)
	if after != before {
		t.Fatalf("stats changed across checkpoint:\nbefore %+v\nafter  %+v", before, after)
	}
	if after.Hits == 0 || after.CellsSwept == 0 {
		t.Fatalf("counters empty after restore: %+v", after)
	}
}

func TestStatsJSONWireNames(t *testing.T) {
	tr := New(Config{MemoryBytes: 16 << 10})
	tr.Insert(Item(1))
	st, _ := TrackerStats(tr)
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tracker", "memory_bytes", "shards",
		"occupied_cells", "alpha", "beta", "arrivals", "hits", "admissions",
		"decrements", "expulsions", "flags_consumed", "cells_swept",
		"parity_flips"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON wire field %q missing: %s", key, b)
		}
	}
}
