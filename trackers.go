package sigstream

import (
	"sigstream/internal/adapters"
	"sigstream/internal/cmsketch"
	"sigstream/internal/countsketch"
	"sigstream/internal/lossycounting"
	"sigstream/internal/ltc"
	"sigstream/internal/misragries"
	"sigstream/internal/pie"
	"sigstream/internal/sampling"
	"sigstream/internal/spacesaving"
	"sigstream/internal/window"
)

// Config configures the LTC tracker created by New.
type Config struct {
	// MemoryBytes is the total memory budget (default 64 KiB).
	MemoryBytes int
	// Weights are the significance coefficients (default Balanced).
	Weights Weights
	// ItemsPerPeriod hints the expected arrivals per period, used to pace
	// the CLOCK sweep. Zero selects adaptive pacing from the previous
	// period's count.
	ItemsPerPeriod int
	// BucketWidth is the cells per bucket, d (default 8, the paper's
	// choice).
	BucketWidth int
	// DisableDeviationEliminator reverts to the basic single-flag CLOCK.
	DisableDeviationEliminator bool
	// DisableLongTailReplacement reverts admissions to initial value 1.
	DisableLongTailReplacement bool
	// PeriodDuration enables time-defined periods for InsertAt: the length
	// of one period, in the same unit as InsertAt timestamps. Streams
	// driven by Insert/EndPeriod ignore it.
	PeriodDuration float64
	// DecayFactor λ ∈ (0,1) exponentially ages all counts at each period
	// boundary, turning significance into "significant lately"
	// (half-life = ln 2 / ln(1/λ) periods). 0 or 1 keeps the paper's exact
	// all-history semantics. Extension beyond the paper.
	DecayFactor float64
	// Seed keys the hash function.
	Seed uint32
}

// LTC is the paper's Long-Tail CLOCK tracker. It implements Tracker and
// additionally exposes structure diagnostics.
type LTC struct {
	wrap
	l *ltc.LTC
}

// New creates an LTC tracker, the package's primary structure.
func New(cfg Config) *LTC {
	if cfg.Weights == (Weights{}) {
		cfg.Weights = Balanced
	}
	l := ltc.New(ltc.Options{
		MemoryBytes:                cfg.MemoryBytes,
		BucketWidth:                cfg.BucketWidth,
		Weights:                    internalWeights(cfg.Weights),
		ItemsPerPeriod:             cfg.ItemsPerPeriod,
		DisableDeviationEliminator: cfg.DisableDeviationEliminator,
		DisableLongTailReplacement: cfg.DisableLongTailReplacement,
		PeriodDuration:             cfg.PeriodDuration,
		DecayFactor:                cfg.DecayFactor,
		Seed:                       cfg.Seed,
	})
	return &LTC{wrap: wrap{l}, l: l}
}

// InsertAt records one arrival at a timestamp, for time-defined periods
// (Config.PeriodDuration must be set). Period boundaries are crossed
// automatically; do not call EndPeriod on a timestamp-driven stream.
// Timestamps must be non-decreasing.
func (l *LTC) InsertAt(item Item, at float64) { l.l.InsertAt(item, at) }

// Reset clears all tracked state, keeping the configuration.
func (l *LTC) Reset() { l.l.Reset() }

// MarshalBinary encodes the full tracker state as a compact checkpoint
// image (encoding.BinaryMarshaler).
func (l *LTC) MarshalBinary() ([]byte, error) { return l.l.MarshalBinary() }

// UnmarshalBinary restores the tracker from a MarshalBinary image,
// replacing its current state and configuration
// (encoding.BinaryUnmarshaler).
func (l *LTC) UnmarshalBinary(data []byte) error { return l.l.UnmarshalBinary(data) }

// Merge folds another tracker's state into this one. Both trackers must
// share memory size, bucket width, weights and seed (as produced by the
// same Config); use it to aggregate per-shard or per-site summaries into a
// global view. The other tracker is left unmodified.
func (l *LTC) Merge(other *LTC) error { return l.l.Merge(other.l) }

// Buckets reports w, the number of buckets in the lossy table.
func (l *LTC) Buckets() int { return l.l.Buckets() }

// BucketWidth reports d, the cells per bucket.
func (l *LTC) BucketWidth() int { return l.l.BucketWidth() }

// Occupancy reports the number of occupied cells.
func (l *LTC) Occupancy() int { return l.l.Occupancy() }

// NewSpaceSaving creates the Space-Saving baseline (counter-based, top-k
// frequent items). It tracks frequency only; alpha scales the reported
// significance.
func NewSpaceSaving(memoryBytes int, alpha float64) Tracker {
	return wrap{spacesaving.New(memoryBytes, alpha)}
}

// NewLossyCounting creates the Lossy Counting baseline (counter-based,
// top-k frequent items). It tracks frequency only.
func NewLossyCounting(memoryBytes int, alpha float64) Tracker {
	return wrap{lossycounting.New(memoryBytes, alpha)}
}

// NewMisraGries creates the Misra-Gries "Frequent" baseline (counter-based,
// top-k frequent items; never overestimates). It tracks frequency only.
func NewMisraGries(memoryBytes int, alpha float64) Tracker {
	return wrap{misragries.New(memoryBytes, alpha)}
}

// SketchKind selects a sketch family for the sketch-based baselines.
type SketchKind int

const (
	// CM is the Count-Min sketch.
	CM SketchKind = iota
	// CU is the CU sketch (Count-Min with conservative update).
	CU
	// Count is the Count sketch (signed counters, median estimate).
	Count
)

func (k SketchKind) factory() adapters.Factory {
	switch k {
	case CU:
		return adapters.CUFactory()
	case Count:
		return adapters.CountFactory()
	default:
		return adapters.CMFactory()
	}
}

// NewFrequentSketch creates a sketch+min-heap tracker for top-k frequent
// items (the paper's sketch baselines in the α=1, β=0 setting).
func NewFrequentSketch(kind SketchKind, memoryBytes, k int, alpha float64) Tracker {
	switch kind {
	case CU:
		return wrap{cmsketch.NewTracker(cmsketch.CU, memoryBytes, k, alpha)}
	case Count:
		return wrap{countsketch.NewTracker(memoryBytes, k, alpha)}
	default:
		return wrap{cmsketch.NewTracker(cmsketch.CM, memoryBytes, k, alpha)}
	}
}

// NewPersistentSketch creates the sketch+Bloom-filter+heap tracker for
// top-k persistent items: half the memory deduplicates appearances within
// the current period, the rest counts periods.
func NewPersistentSketch(kind SketchKind, memoryBytes, k int, beta float64) Tracker {
	return wrap{adapters.NewPersistent(kind.factory(), memoryBytes, k, beta)}
}

// NewSignificantSketch creates the two-sketch tracker for top-k significant
// items: a frequency sketch and a persistency structure share the memory
// evenly, with one heap ranking by α·f̂ + β·p̂.
func NewSignificantSketch(kind SketchKind, memoryBytes, k int, w Weights) Tracker {
	return wrap{adapters.NewSignificant(kind.factory(), memoryBytes, k,
		internalWeights(w))}
}

// NewWindow creates a jumping-window LTC: top-k significant items over the
// most recent windowPeriods periods, covered by `blocks` rotating
// sub-summaries (blocks ≤ 0 selects 4). Old history expires with a
// granularity of windowPeriods/blocks periods. Extension beyond the paper.
func NewWindow(cfg Config, windowPeriods, blocks int) Tracker {
	if cfg.Weights == (Weights{}) {
		cfg.Weights = Balanced
	}
	return wrap{window.New(window.Options{
		MemoryBytes:    cfg.MemoryBytes,
		WindowPeriods:  windowPeriods,
		Blocks:         blocks,
		Weights:        internalWeights(cfg.Weights),
		ItemsPerPeriod: cfg.ItemsPerPeriod,
		Seed:           cfg.Seed,
	})}
}

// NewPIE creates the PIE baseline for top-k persistent items: one
// Space-Time Bloom Filter of perPeriodBytes per period, with fountain-coded
// item IDs decoded at query time. Note PIE's total memory is
// perPeriodBytes × periods, matching the paper's T× allowance.
func NewPIE(perPeriodBytes int, beta float64) Tracker {
	return wrap{pie.New(pie.Options{PerPeriodBytes: perPeriodBytes, Beta: beta})}
}

// NewSampling creates the coordinated hash-sampling baseline: a
// hash-defined subset of the item space is tracked exactly; everything
// else is ignored. expectedDistinct calibrates the sampling rate to the
// memory budget.
func NewSampling(memoryBytes, expectedDistinct int, w Weights) Tracker {
	return wrap{sampling.New(memoryBytes, expectedDistinct, internalWeights(w))}
}
