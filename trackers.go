package sigstream

import (
	"fmt"

	"sigstream/internal/adapters"
	"sigstream/internal/cmsketch"
	"sigstream/internal/countsketch"
	"sigstream/internal/lossycounting"
	"sigstream/internal/ltc"
	"sigstream/internal/misragries"
	"sigstream/internal/pie"
	"sigstream/internal/sampling"
	"sigstream/internal/spacesaving"
	"sigstream/internal/window"
)

// Config configures every tracker in this package: the LTC tracker created
// by New/NewSharded/NewWindow and the baselines created by NewBaseline.
// The zero value selects documented defaults (64 KiB budget, Balanced
// weights, bucket width 8, top-k heap size 100). Constructors panic on an
// invalid configuration; pre-check untrusted input with Validate.
type Config struct {
	// MemoryBytes is the total memory budget (default 64 KiB).
	MemoryBytes int
	// Weights are the significance coefficients (default Balanced).
	Weights Weights
	// ItemsPerPeriod hints the expected arrivals per period, used to pace
	// the CLOCK sweep. Zero selects adaptive pacing from the previous
	// period's count.
	ItemsPerPeriod int
	// BucketWidth is the cells per bucket, d (default 8, the paper's
	// choice).
	BucketWidth int
	// DisableDeviationEliminator reverts to the basic single-flag CLOCK.
	DisableDeviationEliminator bool
	// DisableLongTailReplacement reverts admissions to initial value 1.
	DisableLongTailReplacement bool
	// PeriodDuration enables time-defined periods for InsertAt: the length
	// of one period, in the same unit as InsertAt timestamps. Streams
	// driven by Insert/EndPeriod ignore it.
	PeriodDuration float64
	// DecayFactor λ ∈ (0,1) exponentially ages all counts at each period
	// boundary, turning significance into "significant lately"
	// (half-life = ln 2 / ln(1/λ) periods). 0 or 1 keeps the paper's exact
	// all-history semantics. Extension beyond the paper.
	DecayFactor float64
	// Seed keys the hash function.
	Seed uint32
	// TopK is the heap size k of the sketch-based baselines created by
	// NewBaseline (default DefaultTopK). LTC itself needs no k at build
	// time and ignores it.
	TopK int
	// Sketch selects the sketch family of the sketch-based baselines
	// created by NewBaseline (default CM). Other trackers ignore it.
	Sketch SketchKind
	// ExpectedDistinct calibrates the Sampling baseline's rate to the
	// memory budget (0 assumes one million distinct items). Other trackers
	// ignore it.
	ExpectedDistinct int
}

// LTC is the paper's Long-Tail CLOCK tracker. It implements Tracker and
// additionally exposes structure diagnostics.
type LTC struct {
	wrap
	l *ltc.LTC
}

// New creates an LTC tracker, the package's primary structure. Zero cfg
// fields take their documented defaults; New panics if cfg is invalid
// (pre-check untrusted input with Config.Validate).
func New(cfg Config) *LTC {
	cfg = cfg.withDefaults()
	mustValidate(cfg)
	l := ltc.New(ltc.Options{
		MemoryBytes:                cfg.MemoryBytes,
		BucketWidth:                cfg.BucketWidth,
		Weights:                    internalWeights(cfg.Weights),
		ItemsPerPeriod:             cfg.ItemsPerPeriod,
		DisableDeviationEliminator: cfg.DisableDeviationEliminator,
		DisableLongTailReplacement: cfg.DisableLongTailReplacement,
		PeriodDuration:             cfg.PeriodDuration,
		DecayFactor:                cfg.DecayFactor,
		Seed:                       cfg.Seed,
	})
	return &LTC{wrap: wrap{l}, l: l}
}

// InsertBatch records one arrival for each item, in order (BatchInserter).
// It is semantically identical to calling Insert per item but amortizes
// the per-arrival overhead on the hot path.
func (l *LTC) InsertBatch(items []Item) { l.l.InsertBatch(items) }

// InsertAt records one arrival at a timestamp, for time-defined periods
// (Config.PeriodDuration must be set). Period boundaries are crossed
// automatically; do not call EndPeriod on a timestamp-driven stream.
// Timestamps must be non-decreasing.
func (l *LTC) InsertAt(item Item, at float64) { l.l.InsertAt(item, at) }

// Reset clears all tracked state, keeping the configuration.
func (l *LTC) Reset() { l.l.Reset() }

// MarshalBinary encodes the full tracker state as a compact checkpoint
// image (encoding.BinaryMarshaler).
func (l *LTC) MarshalBinary() ([]byte, error) { return l.l.MarshalBinary() }

// UnmarshalBinary restores the tracker from a MarshalBinary image,
// replacing its current state and configuration
// (encoding.BinaryUnmarshaler).
func (l *LTC) UnmarshalBinary(data []byte) error { return l.l.UnmarshalBinary(data) }

// Merge folds another tracker's state into this one. Both trackers must
// share memory size, bucket width, weights and seed (as produced by the
// same Config); use it to aggregate per-shard or per-site summaries into a
// global view. The other tracker is left unmodified.
func (l *LTC) Merge(other *LTC) error { return l.l.Merge(other.l) }

// Buckets reports w, the number of buckets in the lossy table.
func (l *LTC) Buckets() int { return l.l.Buckets() }

// BucketWidth reports d, the cells per bucket.
func (l *LTC) BucketWidth() int { return l.l.BucketWidth() }

// Occupancy reports the number of occupied cells.
func (l *LTC) Occupancy() int { return l.l.Occupancy() }

// BaselineKind selects one of the paper's baseline algorithms for
// NewBaseline.
type BaselineKind int

const (
	// SpaceSaving is the counter-based Space-Saving baseline (top-k
	// frequent items; frequency only, scaled by Weights.Alpha).
	SpaceSaving BaselineKind = iota
	// LossyCounting is the counter-based Lossy Counting baseline (top-k
	// frequent items; frequency only).
	LossyCounting
	// MisraGries is the Misra-Gries "Frequent" baseline (top-k frequent
	// items; never overestimates).
	MisraGries
	// FrequentSketch is a Config.Sketch sketch plus a min-heap of
	// Config.TopK frequent items (the paper's sketch baselines at α=1,
	// β=0).
	FrequentSketch
	// PersistentSketch is a sketch+Bloom-filter+heap tracker for top-k
	// persistent items: half the memory deduplicates appearances within
	// the current period, the rest counts periods.
	PersistentSketch
	// SignificantSketch is the two-sketch tracker for top-k significant
	// items: a frequency sketch and a persistency structure share the
	// memory evenly, with one heap ranking by α·f̂ + β·p̂.
	SignificantSketch
	// PIE is the Space-Time Bloom Filter baseline for top-k persistent
	// items. Config.MemoryBytes is its per-period budget; total memory is
	// MemoryBytes × periods, matching the paper's T× allowance.
	PIE
	// Sampling is the coordinated hash-sampling baseline: a hash-defined
	// subset of the item space (calibrated by Config.ExpectedDistinct) is
	// tracked exactly; everything else is ignored.
	Sampling
)

// String names the baseline for experiment output.
func (k BaselineKind) String() string {
	switch k {
	case SpaceSaving:
		return "SpaceSaving"
	case LossyCounting:
		return "LossyCounting"
	case MisraGries:
		return "MisraGries"
	case FrequentSketch:
		return "FrequentSketch"
	case PersistentSketch:
		return "PersistentSketch"
	case SignificantSketch:
		return "SignificantSketch"
	case PIE:
		return "PIE"
	case Sampling:
		return "Sampling"
	}
	return fmt.Sprintf("BaselineKind(%d)", int(k))
}

// NewBaseline creates one of the paper's baseline trackers from the same
// Config that drives New: MemoryBytes sizes the structure (per period for
// PIE), Weights supplies α and β, and TopK, Sketch and ExpectedDistinct
// tune the kinds that use them. Zero fields take their documented
// defaults; NewBaseline panics if cfg is invalid or kind is unknown
// (pre-check untrusted input with Config.Validate).
//
// It replaces the eight positional-argument constructors (NewSpaceSaving,
// NewPIE, …), which remain as thin deprecated wrappers.
func NewBaseline(kind BaselineKind, cfg Config) Tracker {
	cfg = cfg.withDefaults()
	mustValidate(cfg)
	switch kind {
	case SpaceSaving:
		return wrap{spacesaving.New(cfg.MemoryBytes, cfg.Weights.Alpha)}
	case LossyCounting:
		return wrap{lossycounting.New(cfg.MemoryBytes, cfg.Weights.Alpha)}
	case MisraGries:
		return wrap{misragries.New(cfg.MemoryBytes, cfg.Weights.Alpha)}
	case FrequentSketch:
		switch cfg.Sketch {
		case CU:
			return wrap{cmsketch.NewTracker(cmsketch.CU, cfg.MemoryBytes, cfg.TopK, cfg.Weights.Alpha)}
		case Count:
			return wrap{countsketch.NewTracker(cfg.MemoryBytes, cfg.TopK, cfg.Weights.Alpha)}
		default:
			return wrap{cmsketch.NewTracker(cmsketch.CM, cfg.MemoryBytes, cfg.TopK, cfg.Weights.Alpha)}
		}
	case PersistentSketch:
		return wrap{adapters.NewPersistent(cfg.Sketch.factory(), cfg.MemoryBytes, cfg.TopK, cfg.Weights.Beta)}
	case SignificantSketch:
		return wrap{adapters.NewSignificant(cfg.Sketch.factory(), cfg.MemoryBytes, cfg.TopK, internalWeights(cfg.Weights))}
	case PIE:
		return wrap{pie.New(pie.Options{PerPeriodBytes: cfg.MemoryBytes, Beta: cfg.Weights.Beta, Seed: cfg.Seed})}
	case Sampling:
		return wrap{sampling.New(cfg.MemoryBytes, cfg.ExpectedDistinct, internalWeights(cfg.Weights))}
	}
	panic(fmt.Errorf("%w: unknown BaselineKind %d", ErrInvalidConfig, int(kind)))
}

// Baselines lists every BaselineKind, in declaration order, for callers
// that sweep the whole line-up (evaluations, equivalence tests).
func Baselines() []BaselineKind {
	return []BaselineKind{SpaceSaving, LossyCounting, MisraGries,
		FrequentSketch, PersistentSketch, SignificantSketch, PIE, Sampling}
}

// SketchKind selects a sketch family for the sketch-based baselines.
type SketchKind int

const (
	// CM is the Count-Min sketch.
	CM SketchKind = iota
	// CU is the CU sketch (Count-Min with conservative update).
	CU
	// Count is the Count sketch (signed counters, median estimate).
	Count
)

func (k SketchKind) factory() adapters.Factory {
	switch k {
	case CU:
		return adapters.CUFactory()
	case Count:
		return adapters.CountFactory()
	default:
		return adapters.CMFactory()
	}
}

// NewWindow creates a jumping-window LTC: top-k significant items over the
// most recent windowPeriods periods, covered by `blocks` rotating
// sub-summaries (blocks ≤ 0 selects 4). Old history expires with a
// granularity of windowPeriods/blocks periods. Extension beyond the paper.
// Zero cfg fields take their documented defaults; NewWindow panics if cfg
// is invalid.
func NewWindow(cfg Config, windowPeriods, blocks int) Tracker {
	cfg = cfg.withDefaults()
	mustValidate(cfg)
	return wrap{window.New(window.Options{
		MemoryBytes:    cfg.MemoryBytes,
		WindowPeriods:  windowPeriods,
		Blocks:         blocks,
		Weights:        internalWeights(cfg.Weights),
		ItemsPerPeriod: cfg.ItemsPerPeriod,
		Seed:           cfg.Seed,
	})}
}
