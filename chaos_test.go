package sigstream

import (
	"io"
	"log/slog"
	"sync/atomic"
	"testing"

	"sigstream/internal/fault"
	"sigstream/internal/gen"
)

// TestChaosPipelineAccuracyUnderWorkerCrashes kills shard workers
// mid-stream — an injected sink panic roughly every 25th delivery on one
// shard — and checks the self-healing pipeline's output stays within the
// accuracy gate's tolerance of a crash-free run: each panic costs one
// in-flight sub-batch (a bounded, counted loss), so the significant-items
// ranking must degrade by at most that fraction, not collapse.
func TestChaosPipelineAccuracyUnderWorkerCrashes(t *testing.T) {
	s := gen.NetworkLike(60_000, 11)
	per := s.ItemsPerPeriod()
	cfg := Config{MemoryBytes: 64 << 10, Weights: Balanced, ItemsPerPeriod: per}
	const shards = 4

	ref := NewSharded(cfg, shards)
	feedSequential(ref, s.Items, per)

	var deliveries atomic.Uint64
	deactivate := fault.Activate(fault.PipelineSink, func(shard int) error {
		if shard == 0 && deliveries.Add(1)%25 == 0 {
			panic("chaos: injected worker crash")
		}
		return nil
	})
	t.Cleanup(deactivate)

	chaos := NewSharded(cfg, shards)
	p := chaos.Pipeline(PipelineOptions{
		RingSize:      4,
		RestartBudget: 1 << 20, // never quarantine: this test is about healing, not failing
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	feedPipelined(t, chaos, p, s.Items, per)
	st := p.Stats()
	if err := p.Close(); err != nil {
		t.Fatalf("Close after recovered crashes: %v", err)
	}

	if st.Restarts == 0 {
		t.Fatal("no worker restarts recorded; the chaos injection never fired")
	}
	if st.QuarantinedShards != 0 {
		t.Fatalf("QuarantinedShards = %d under an unreachable budget", st.QuarantinedShards)
	}
	if st.Dropped == 0 || st.Dropped >= uint64(len(s.Items))/5 {
		t.Fatalf("Dropped = %d of %d items; expected a small bounded loss", st.Dropped, len(s.Items))
	}

	// Accuracy within the gate tolerance (0.10, as cmd/sigdiff enforces in
	// CI): at least 90% of the crash-free top-20 survives, and the shared
	// entries' frequencies are within 10% relative error.
	const k, tol = 20, 0.10
	want := ref.TopK(k)
	got := chaos.TopK(k)
	gotSet := make(map[Item]Entry, len(got))
	for _, e := range got {
		gotSet[e.Item] = e
	}
	hits := 0
	for _, w := range want {
		g, ok := gotSet[w.Item]
		if !ok {
			continue
		}
		hits++
		diff := float64(w.Frequency) - float64(g.Frequency)
		if diff < 0 {
			diff = -diff
		}
		if diff > tol*float64(w.Frequency) {
			t.Errorf("item %d: frequency %d after crashes, want %d ±%.0f%%",
				w.Item, g.Frequency, w.Frequency, tol*100)
		}
	}
	if recall := float64(hits) / float64(len(want)); recall < 1-tol {
		t.Fatalf("top-%d recall %.2f after worker crashes, want ≥ %.2f (restarts=%d dropped=%d)",
			k, recall, 1-tol, st.Restarts, st.Dropped)
	}
}
