// Command sigcheck runs the paper's Section III-D prescription: before
// relying on Long-tail Replacement, check that the workload's item
// frequencies are long-tailed. It reads a trace (text "item [period]"
// lines or traceio binary; "-" or no argument = stdin), prints
// distribution statistics, a Zipf-skew fit, a log-log frequency plot, and
// a recommendation.
//
// Usage:
//
//	siggen -preset caida -n 1000000 | sigcheck
//	sigcheck trace.txt
package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"sigstream/internal/dist"
	"sigstream/internal/stream"
	"sigstream/internal/traceio"
)

func main() {
	var in io.Reader = os.Stdin
	name := "stdin"
	if len(os.Args) > 1 && os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigcheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
		name = os.Args[1]
	}
	s, err := readTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigcheck:", err)
		os.Exit(1)
	}
	r := dist.Analyze(s)
	fmt.Printf("trace: %s\n%s", name, r)
	fmt.Println("\nfrequency vs rank (log-log):")
	fmt.Print(loglogPlot(r.Freqs))
}

func readTrace(in io.Reader) (*stream.Stream, error) {
	unzipped, err := traceio.MaybeGzip(in)
	if err != nil {
		return nil, err
	}
	in = unzipped
	// Buffer enough to sniff the binary magic.
	head := make([]byte, 4)
	n, err := io.ReadFull(in, head)
	if err != nil && n == 0 {
		return nil, fmt.Errorf("empty input")
	}
	rest := io.MultiReader(strings.NewReader(string(head[:n])), in)
	if string(head[:n]) == "SGTR" {
		return traceio.ReadBinary(rest)
	}
	return traceio.ReadText(rest, 100_000)
}

// loglogPlot draws the frequency ranking on log-log axes with ASCII dots.
func loglogPlot(freqs []uint64) string {
	if len(freqs) == 0 {
		return "(no data)\n"
	}
	const width, height = 60, 16
	maxF := float64(freqs[0])
	maxR := float64(len(freqs))
	if maxF < 2 {
		maxF = 2
	}
	if maxR < 2 {
		maxR = 2
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for rank, f := range freqs {
		if f == 0 {
			break
		}
		x := int(math.Log(float64(rank+1)) / math.Log(maxR+1) * float64(width-1))
		y := int(math.Log(float64(f)) / math.Log(maxF) * float64(height-1))
		row := height - 1 - y
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		grid[row][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8.0f ┤%s\n", maxF, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%8s ┤%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%8d ┤%s\n", 1, string(grid[height-1]))
	fmt.Fprintf(&b, "%8s  └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&b, "%8s   rank 1 … %d (log)\n", "", len(freqs))
	return b.String()
}
