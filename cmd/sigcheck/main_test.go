package main

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/traceio"
)

func TestReadTraceTextAndBinary(t *testing.T) {
	s := gen.ZipfStream(5000, 500, 10, 1.0, 1)

	var txt bytes.Buffer
	if err := traceio.WriteText(&txt, s); err != nil {
		t.Fatal(err)
	}
	got, err := readTrace(&txt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("text: %d items, want %d", got.Len(), s.Len())
	}

	var bin bytes.Buffer
	if err := traceio.WriteBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	got, err = readTrace(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("binary: %d items, want %d", got.Len(), s.Len())
	}
}

func TestReadTraceEmpty(t *testing.T) {
	if _, err := readTrace(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadTraceShortText(t *testing.T) {
	// Fewer than 4 bytes must still parse as text, not crash the sniffer.
	s, err := readTrace(strings.NewReader("7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("got %d items, want 1", s.Len())
	}
}

func TestLogLogPlotShape(t *testing.T) {
	out := loglogPlot([]uint64{1000, 500, 100, 50, 10, 5, 2, 1})
	if !strings.Contains(out, "*") {
		t.Fatal("no points plotted")
	}
	if !strings.Contains(out, "rank 1") {
		t.Fatal("axis label missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 16 {
		t.Fatalf("plot too short: %d lines", len(lines))
	}
	if loglogPlot(nil) != "(no data)\n" {
		t.Fatal("empty input not handled")
	}
	// Degenerate single-frequency input must not panic.
	_ = loglogPlot([]uint64{1})
}

func TestReadTraceGzipped(t *testing.T) {
	s := gen.ZipfStream(3000, 300, 5, 1.0, 2)
	var plain bytes.Buffer
	if err := traceio.WriteText(&plain, s); err != nil {
		t.Fatal(err)
	}
	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	zw.Write(plain.Bytes())
	zw.Close()
	got, err := readTrace(&zipped)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("gzipped trace: %d items, want %d", got.Len(), s.Len())
	}
}
