// Command sigdiff compares two sigbench CSV runs and exits non-zero when
// accuracy regressed — a CI gate for the evaluation:
//
//	go run ./cmd/sigbench -fig all -csv > old.csv     # on main
//	go run ./cmd/sigbench -fig all -csv > new.csv     # on the branch
//	sigdiff -tol 0.05 old.csv new.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"sigstream/internal/compare"
)

func main() {
	var (
		tol = flag.Float64("tol", 0.02, "absolute per-point tolerance")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: sigdiff [-tol x] old.csv new.csv")
		os.Exit(2)
	}
	runs := make([]compare.Run, 2)
	for i, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigdiff:", err)
			os.Exit(1)
		}
		runs[i], err = compare.ParseCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigdiff:", err)
			os.Exit(1)
		}
	}
	rep := compare.Diff(runs[0], runs[1], *tol)
	fmt.Print(compare.Render(rep))
	if rep.Regressions > 0 {
		os.Exit(1)
	}
}
