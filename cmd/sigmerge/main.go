// Command sigmerge folds LTC checkpoint files (written with
// LTC.MarshalBinary, e.g. by per-site collectors) into a global summary and
// prints its top-k significant items.
//
// Usage:
//
//	sigmerge -k 20 site1.ltc site2.ltc site3.ltc
//	sigmerge -out global.ltc site*.ltc   # also write the merged checkpoint
package main

import (
	"flag"
	"fmt"
	"os"

	"sigstream"
)

func main() {
	var (
		k   = flag.Int("k", 10, "number of items to report")
		out = flag.String("out", "", "write the merged checkpoint to this file")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "sigmerge: no checkpoint files given")
		os.Exit(2)
	}

	images := make([][]byte, 0, flag.NArg())
	for _, path := range flag.Args() {
		img, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigmerge:", err)
			os.Exit(1)
		}
		images = append(images, img)
	}
	global, err := sigstream.MergeCheckpoints(images...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigmerge:", err)
		os.Exit(1)
	}
	if *out != "" {
		img, err := global.MarshalBinary()
		if err == nil {
			err = os.WriteFile(*out, img, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigmerge:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("merged %d checkpoints (%d cells occupied)\n",
		len(images), global.Occupancy())
	fmt.Printf("%-4s %-20s %12s %12s %14s\n", "#", "item", "frequency",
		"persistency", "significance")
	for i, e := range global.TopK(*k) {
		fmt.Printf("%-4d %-20d %12d %12d %14.1f\n",
			i+1, e.Item, e.Frequency, e.Persistency, e.Significance)
	}
}
