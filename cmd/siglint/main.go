// Command siglint runs sigstream's repo-specific static analyzers — the
// invariants go vet and staticcheck cannot see.
//
// Usage:
//
//	siglint ./...            run every analyzer over the whole module
//	siglint -list            list the analyzers
//	siglint -run floateq     run a single analyzer
//	siglint -escapes ./...   verify //sig:noalloc functions stay heap-free
//	siglint -suppressions    audit every //siglint:ignore (stale ones fail)
//
// siglint always analyzes the entire module containing the working
// directory (the analyzers are cross-package by design); a trailing
// package pattern is accepted for familiarity and ignored.
//
// Findings are suppressed inline with
//
//	//siglint:ignore <reason>
//
// on the offending line or the line above it; the reason is mandatory.
// Exit status is 1 when findings (or escape violations) remain, 2 on usage
// or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sigstream/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("siglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		escapes  = fs.Bool("escapes", false, "check //sig:noalloc functions for heap escapes instead of running the analyzers")
		list     = fs.Bool("list", false, "list analyzers and exit")
		runOnly  = fs.String("run", "", "run only the named analyzer")
		rootDir  = fs.String("C", "", "module root (default: walk up from the working directory)")
		suppress = fs.Bool("suppressions", false, "report every //siglint:ignore with file and reason; stale ones exit 1")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root := *rootDir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "siglint:", err)
			return 2
		}
	}

	if *escapes {
		return runEscapes(root, stdout, stderr)
	}
	if *suppress {
		return runSuppressions(root, stdout, stderr)
	}

	analyzers := analysis.Analyzers()
	if *runOnly != "" {
		analyzers = nil
		for _, a := range analysis.Analyzers() {
			if a.Name == *runOnly {
				analyzers = []*analysis.Analyzer{a}
			}
		}
		if analyzers == nil {
			fmt.Fprintf(stderr, "siglint: unknown analyzer %q (try -list)\n", *runOnly)
			return 2
		}
	}

	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "siglint:", err)
		return 2
	}
	findings := analysis.RunAll(prog, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, relativize(root, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "siglint: %d finding(s) in %d package(s)\n",
			len(findings), len(prog.Packages))
		return 1
	}
	fmt.Fprintf(stdout, "siglint: %d package(s) clean\n", len(prog.Packages))
	return 0
}

func runEscapes(root string, stdout, stderr io.Writer) int {
	violations, funcs, err := analysis.CheckEscapes(root)
	if err != nil {
		fmt.Fprintln(stderr, "siglint:", err)
		return 2
	}
	if len(funcs) == 0 {
		fmt.Fprintln(stderr, "siglint: no //sig:noalloc annotations found")
		return 2
	}
	for _, v := range violations {
		fmt.Fprintln(stdout, v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(stderr, "siglint: %d heap escape(s) in %d annotated function(s)\n",
			len(violations), len(funcs))
		return 1
	}
	fmt.Fprintf(stdout, "siglint: %d //sig:noalloc function(s) allocation-free\n", len(funcs))
	return 0
}

// runSuppressions audits every //siglint:ignore in the module: each is
// listed with its file, line and reason, and ones that no longer cover
// any finding are marked stale and fail the run — a suppression without
// a live finding is a lie about the code.
func runSuppressions(root string, stdout, stderr io.Writer) int {
	prog, err := analysis.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "siglint:", err)
		return 2
	}
	sups := analysis.Suppressions(prog, analysis.Analyzers())
	stale := 0
	for _, s := range sups {
		pos := s.Pos
		if rel, err := filepath.Rel(root, pos.Filename); err == nil &&
			!filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			pos.Filename = rel
		}
		mark := ""
		if !s.Used {
			mark = " [STALE]"
			stale++
		}
		fmt.Fprintf(stdout, "%s:%d: %s%s\n", pos.Filename, pos.Line, s.Reason, mark)
	}
	if stale > 0 {
		fmt.Fprintf(stderr, "siglint: %d stale suppression(s) of %d\n", stale, len(sups))
		return 1
	}
	fmt.Fprintf(stdout, "siglint: %d suppression(s), none stale\n", len(sups))
	return 0
}

// relativize shortens absolute finding paths to module-relative ones.
func relativize(root string, f analysis.Finding) string {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil &&
		!filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		f.Pos.Filename = rel
	}
	return f.String()
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
