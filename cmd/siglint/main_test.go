package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("siglint -list = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{
		"mixedatomic", "lockblock", "lockorder", "goleak",
		"floateq", "kindswitch", "errdrop", "contractdrift",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("siglint -run nosuch = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want an unknown-analyzer message", errOut.String())
	}
}

// TestSuppressionsReport runs the -suppressions audit over the suppress
// fixture: the two reasoned ignores there cover live findings, so none
// is stale and the mode exits 0.
func TestSuppressionsReport(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", "../../internal/analysis/testdata/suppress", "-suppressions"}, &out, &errOut); code != 0 {
		t.Fatalf("siglint -suppressions = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "none stale") {
		t.Errorf("stdout = %q, want a none-stale summary", out.String())
	}
	if strings.Contains(out.String(), "[STALE]") {
		t.Errorf("stdout = %q, fixture suppressions should all be live", out.String())
	}
	if strings.Count(out.String(), "\n") == 0 {
		t.Errorf("stdout = %q, want the suppression list", out.String())
	}
}

// TestCleanTree is the command-level form of the acceptance criterion:
// siglint exits 0 over this repository.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("siglint = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("stdout = %q, want a clean summary", out.String())
	}
}
