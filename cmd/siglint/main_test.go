package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("siglint -list = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"mixedatomic", "lockblock", "floateq", "kindswitch", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("siglint -run nosuch = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want an unknown-analyzer message", errOut.String())
	}
}

// TestCleanTree is the command-level form of the acceptance criterion:
// siglint exits 0 over this repository.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("siglint = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("stdout = %q, want a clean summary", out.String())
	}
}
