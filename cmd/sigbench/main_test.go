package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/traceio"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"9", "12", "tput", "policy"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("figure %s missing from -list output", want)
		}
	}
}

func TestRunNoArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no -fig must error after printing the list")
	}
}

func TestRunSingleFigureCSVAndOut(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-fig", "d", "-n", "30000", "-csv", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "figure,dataset,series,x,metric,value") {
		t.Fatalf("CSV header missing:\n%s", out.String()[:80])
	}
	data, err := os.ReadFile(filepath.Join(dir, "figd.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "LTC") {
		t.Fatal("per-figure CSV file missing content")
	}
}

func TestRunPlot(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "d", "-n", "30000", "-plot"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "█") {
		t.Fatal("plot output has no bars")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "nope"}, &out); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run([]string{"-fig", "9", "-scale", "galactic"}, &out); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunTraceTextAndBinary(t *testing.T) {
	dir := t.TempDir()
	s := gen.ZipfStream(20000, 2000, 10, 1.1, 1)

	txt := filepath.Join(dir, "trace.txt")
	f, err := os.Create(txt)
	if err != nil {
		t.Fatal(err)
	}
	if err := traceio.WriteText(f, s); err != nil {
		t.Fatal(err)
	}
	f.Close()

	bin := filepath.Join(dir, "trace.bin")
	f, err = os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := traceio.WriteBinary(f, s); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, path := range []string{txt, bin} {
		var out bytes.Buffer
		err := run([]string{"-trace", path, "-task", "frequent", "-k", "50",
			"-mem", "8"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !strings.Contains(out.String(), "LTC") {
			t.Fatalf("%s: LTC missing from trace evaluation", path)
		}
	}
}

func TestRunTraceErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-trace", "/nonexistent/file"}, &out); err == nil {
		t.Fatal("missing trace file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	os.WriteFile(path, []byte("1 0\n2 0\n"), 0o644)
	if err := run([]string{"-trace", path, "-mem", "zero"}, &out); err == nil {
		t.Fatal("bad -mem accepted")
	}
	if err := run([]string{"-trace", path, "-task", "bogus"}, &out); err == nil {
		t.Fatal("bad -task accepted")
	}
}

func TestRunMarkdownReport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "d", "-n", "30000", "-report"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# sigstream evaluation report", "## Figure d"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
