// Command sigbench regenerates the paper's tables and figures.
//
// Usage:
//
//	sigbench -list
//	sigbench -fig 9                # one figure, quick scale
//	sigbench -fig all -scale paper # the full evaluation at paper scale
//	sigbench -fig 12 -csv          # machine-readable output
//	sigbench -fig 9 -plot          # terminal bar charts
//	sigbench -fig all -out results # one CSV file per figure
//	sigbench -fig 9 -n 1000000     # override every stream size
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"sigstream/internal/exp"
	"sigstream/internal/plot"
	"sigstream/internal/report"
	"sigstream/internal/stream"
	"sigstream/internal/traceio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sigbench:", err)
		os.Exit(2)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sigbench", flag.ContinueOnError)
	var (
		fig    = fs.String("fig", "", "figure id, group (paper, ablation, extensions), or \"all\"")
		scale  = fs.String("scale", "quick", "workload scale: quick or paper")
		n      = fs.Int("n", 0, "override the arrival count of every workload")
		seed   = fs.Int64("seed", 1, "generation seed")
		seeds  = fs.Int("seeds", 1, "replicate each figure across this many seeds (mean ± std rows)")
		csv    = fs.Bool("csv", false, "emit CSV instead of a table")
		doPlot = fs.Bool("plot", false, "draw terminal bar charts")
		mdRep  = fs.Bool("report", false, "emit a markdown evaluation report")
		outDir = fs.String("out", "", "also write one CSV file per figure into this directory")
		list   = fs.Bool("list", false, "list available figures")

		trace = fs.String("trace", "", "evaluate on a trace file (text 'item period' lines or traceio binary) instead of a figure")
		task  = fs.String("task", "significant", "trace task: frequent, persistent or significant")
		k     = fs.Int("k", 100, "trace: top-k size")
		mems  = fs.String("mem", "16,64", "trace: comma-separated memory budgets in KiB")
		alpha = fs.Float64("alpha", 1, "trace: significance weight α")
		beta  = fs.Float64("beta", 1, "trace: significance weight β")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *trace != "" {
		r, err := evalTraceFile(*trace, *task, *k, *mems, *alpha, *beta)
		if err != nil {
			return err
		}
		emit(stdout, r, *csv, *doPlot)
		return nil
	}

	if *list || *fig == "" {
		fmt.Fprintln(stdout, "available figures:")
		for _, e := range exp.Registry() {
			fmt.Fprintf(stdout, "  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(stdout, "  ingest   Wire ingestion throughput: HTTP text vs framed binary TCP")
		fmt.Fprintln(stdout, "groups: all, paper, ablation, extensions")
		if *fig == "" && !*list {
			return fmt.Errorf("no -fig given")
		}
		return nil
	}

	sc := exp.QuickScale
	switch *scale {
	case "quick":
	case "paper":
		sc = exp.PaperScale
	default:
		return fmt.Errorf("unknown scale %q (want quick or paper)", *scale)
	}
	sc.Seed = *seed
	if *n > 0 {
		sc.CAIDA, sc.Network, sc.Social, sc.Zipf = *n, *n, *n, *n
	}

	if *fig == "ingest" {
		r, err := ingestFigure(sc)
		if err != nil {
			return err
		}
		emit(stdout, r, *csv, *doPlot)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, "figingest.csv")
			if err := os.WriteFile(path, []byte(exp.CSV(r)), 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	exps, ok := exp.Expand(*fig)
	if !ok {
		return fmt.Errorf("unknown figure or group %q (try -list)", *fig)
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}

	var results []exp.Result
	for _, e := range exps {
		var r exp.Result
		if *seeds > 1 {
			r = exp.RunSeeds(e, sc, *seeds)
		} else {
			r = e.Run(sc)
		}
		if *mdRep {
			results = append(results, r)
		} else {
			emit(stdout, r, *csv, *doPlot)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, "fig"+e.ID+".csv")
			if err := os.WriteFile(path, []byte(exp.CSV(r)), 0o644); err != nil {
				return err
			}
		}
	}
	if *mdRep {
		fmt.Fprint(stdout, report.Generate(results, *scale))
	}
	return nil
}

func emit(w io.Writer, r exp.Result, csv, doPlot bool) {
	switch {
	case csv:
		fmt.Fprint(w, exp.CSV(r))
	case doPlot:
		fmt.Fprintln(w, plot.Render(r))
	default:
		fmt.Fprintln(w, exp.Render(r))
	}
}

// evalTraceFile loads a trace (binary traceio or "item period" text) and
// runs the bring-your-own-trace evaluation.
func evalTraceFile(path, task string, k int, memsCSV string, alpha, beta float64) (exp.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return exp.Result{}, err
	}
	defer f.Close()
	in, err := traceio.MaybeGzip(f)
	if err != nil {
		return exp.Result{}, err
	}
	// Sniff the magic to pick the format.
	br := bufio.NewReader(in)
	magic, err := br.Peek(4)
	if err != nil {
		return exp.Result{}, fmt.Errorf("read %s: %w", path, err)
	}
	var s *stream.Stream
	if string(magic) == "SGTR" {
		s, err = traceio.ReadBinary(br)
	} else {
		s, err = traceio.ReadText(br, 100_000)
	}
	if err != nil {
		return exp.Result{}, err
	}
	s.Label = filepath.Base(path)

	var memsBytes []int
	for _, part := range strings.Split(memsCSV, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return exp.Result{}, fmt.Errorf("bad -mem entry %q", part)
		}
		memsBytes = append(memsBytes, v<<10)
	}
	return exp.EvalTrace(s, task, stream.Weights{Alpha: alpha, Beta: beta},
		memsBytes, k)
}
