package main

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"sigstream/internal/exp"
	"sigstream/internal/gen"
	"sigstream/internal/ingest"
	"sigstream/internal/server"
)

// ingestFigure is the wire-ingestion benchmark rig behind -fig ingest:
// the same generated key stream is shipped into a live loopback server
// three ways — text lines over HTTP POST /v1/insert, framed binary TCP
// with a synchronous window of 1, and framed binary TCP with 32 batches
// pipelined — across a sweep of batch sizes. The figure prices the
// protocol, not the tracker: every transport lands in the identical
// tenant ingest path, so the spread between rows is pure wire overhead.
//
// It lives in cmd/sigbench rather than internal/exp because it boots the
// full server; the root package's figure benchmarks import internal/exp,
// which must therefore stay below internal/server in the import graph.
//
// On a multi-core host, rerun with GOMAXPROCS released (the default) and
// several concurrent connections via `siggen -ingest` to price parallel
// scaling; this rig keeps one producer so single-core numbers are honest.
func ingestFigure(sc exp.Scale) (exp.Result, error) {
	// Reuse the Zipf arrival budget so -n and -scale apply here too, but
	// cap the paper scale: the HTTP baseline at batch 16 is ~1 Mitems/s,
	// and the sweep runs 15 cells.
	n := sc.Zipf
	if n > 2_000_000 {
		n = 2_000_000
	}
	s := gen.Generate(gen.Config{
		N: n, M: 50_000, Periods: 1, Skew: 1.1, Head: 500,
		TailWindowFrac: 0.3, Seed: sc.Seed, Label: "ingest",
	})
	keys := make([]string, len(s.Items))
	for i, it := range s.Items {
		keys[i] = strconv.FormatUint(it, 10)
	}

	start := time.Now()
	var rows []exp.Row
	for _, batch := range []int{16, 64, 256, 1024, 4096} {
		x := strconv.Itoa(batch)
		type runner struct {
			series string
			run    func([]string, int) (float64, error)
		}
		for _, r := range []runner{
			{"text-http", runHTTPIngest},
			{"binary-tcp", func(k []string, b int) (float64, error) { return runBinaryIngest(k, b, 1) }},
			{"binary-tcp-w32", func(k []string, b int) (float64, error) { return runBinaryIngest(k, b, 32) }},
		} {
			mps, err := r.run(keys, batch)
			if err != nil {
				return exp.Result{}, fmt.Errorf("%s/%s: %w", r.series, x, err)
			}
			rows = append(rows, exp.Row{
				Figure: "ingest", Dataset: s.Label, Series: r.series,
				X: x, Metric: "Mitems/s", Value: mps,
			})
		}
	}
	return exp.Result{
		Figure: "ingest",
		Title:  "Wire ingestion throughput: HTTP text vs framed binary TCP",
		PaperNote: fmt.Sprintf("beyond the paper; %d arrivals, 1 producer, GOMAXPROCS=%d",
			n, runtime.GOMAXPROCS(0)),
		Rows:    rows,
		Elapsed: time.Since(start),
	}, nil
}

// benchServer boots a fresh server for one measurement so no run inherits
// another's tracker state.
func benchServer() *server.Server {
	return server.New(server.Config{
		MemoryBytes: 256 << 10,
		Shards:      1,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
}

// runHTTPIngest ships the stream as newline-separated key batches over
// HTTP POST /v1/insert — the baseline transport — and reports Mitems/s.
func runHTTPIngest(keys []string, batch int) (float64, error) {
	h := benchServer()
	defer h.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	hs := &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/v1/insert"

	// Pre-render the bodies so the measurement prices the transport, not
	// strings.Join.
	bodies := make([]string, 0, len(keys)/batch+1)
	for i := 0; i < len(keys); i += batch {
		end := min(i+batch, len(keys))
		bodies = append(bodies, strings.Join(keys[i:end], "\n")+"\n")
	}
	client := &http.Client{}
	start := time.Now()
	for _, body := range bodies {
		resp, err := client.Post(url, "text/plain", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("insert: status %d", resp.StatusCode)
		}
	}
	return float64(len(keys)) / time.Since(start).Seconds() / 1e6, nil
}

// runBinaryIngest ships the stream over the framed binary protocol at
// the given ack window and reports Mitems/s.
func runBinaryIngest(keys []string, batch, window int) (float64, error) {
	h := benchServer()
	defer h.Close()
	if err := h.StartIngest(server.IngestConfig{Addr: "127.0.0.1:0"}); err != nil {
		return 0, err
	}
	conn, err := ingest.Dial(h.Ingest().Addr().String(), ingest.Options{Window: window})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < len(keys); i += batch {
		end := min(i+batch, len(keys))
		if err := conn.Insert(keys[i:end]...); err != nil {
			_ = conn.Close()
			return 0, err
		}
	}
	if err := conn.Flush(); err != nil {
		_ = conn.Close()
		return 0, err
	}
	elapsed := time.Since(start)
	if err := conn.Close(); err != nil {
		return 0, err
	}
	return float64(len(keys)) / elapsed.Seconds() / 1e6, nil
}
