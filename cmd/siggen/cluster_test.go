package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sigstream"
	"sigstream/internal/coord"
	"sigstream/internal/gen"
	"sigstream/internal/server"
)

// TestShipClusterFanOutGathersExactly drives the full producer path: a
// generated workload fanned out with -cluster semantics over three
// in-process sigservers, then gathered by a coordinator with the same
// partition map. Every arrival must be counted exactly once in the
// cluster view — the replica writes exist for availability and must not
// inflate any frequency.
func TestShipClusterFanOutGathersExactly(t *testing.T) {
	var sites []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(server.New(server.Config{
			MemoryBytes:       128 << 10,
			TenantMemoryBytes: 64 << 10,
			Shards:            2,
			Weights:           sigstream.Weights{Alpha: 1, Beta: 1},
		}))
		t.Cleanup(srv.Close)
		sites = append(sites, srv.URL)
	}

	s := gen.Generate(gen.Config{
		N: 2000, M: 40, Periods: 4, Skew: 1.0,
		Head: 8, TailWindowFrac: 0.5, Seed: 42, Label: "fanout",
	})
	if err := shipCluster(s, strings.Join(sites, ","), 4, 2, 64); err != nil {
		t.Fatal(err)
	}

	c, err := coord.New(coord.Config{
		Sites:        sites,
		Partitions:   4,
		Replicas:     2,
		FetchTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if rep := c.GatherNow(context.Background()); !rep.Committed {
		t.Fatalf("gather: %+v", rep)
	}

	entries, _, ok := c.TopKView(1000)
	if !ok {
		t.Fatal("no view")
	}
	want := make(map[string]uint64, 40)
	for _, it := range s.Items {
		want[fmt.Sprintf("%d", it)]++
	}
	if len(entries) != len(want) {
		t.Fatalf("view has %d items, want %d", len(entries), len(want))
	}
	var total uint64
	for _, e := range entries {
		if want[e.Key] != e.Frequency {
			t.Fatalf("key %s: frequency %d, want %d (replication double-counted?)",
				e.Key, e.Frequency, want[e.Key])
		}
		total += e.Frequency
	}
	if total != uint64(len(s.Items)) {
		t.Fatalf("total frequency %d, want %d", total, len(s.Items))
	}
}
