// Command siggen generates the synthetic workloads used by the experiments
// and writes them as text (one "item period" pair per line) or binary
// (16-byte header + little-endian uint64 items; see internal/traceio).
//
// Usage:
//
//	siggen -preset caida -n 1000000 > caida.txt
//	siggen -m 50000 -periods 100 -skew 1.1 -head 500 -window 0.3
package main

import (
	"flag"
	"fmt"
	"os"

	"sigstream/internal/gen"
	"sigstream/internal/stream"
	"sigstream/internal/traceio"
)

func main() {
	var (
		preset  = flag.String("preset", "", "workload preset: caida, network, social (overrides shape flags)")
		n       = flag.Int("n", 1_000_000, "number of arrivals")
		m       = flag.Int("m", 100_000, "distinct items")
		periods = flag.Int("periods", 100, "number of periods")
		skew    = flag.Float64("skew", 1.0, "Zipf skew γ")
		head    = flag.Int("head", 100, "persistent head size")
		window  = flag.Float64("window", 0.3, "mean tail active-window fraction")
		seed    = flag.Int64("seed", 1, "generation seed")
		binOut  = flag.Bool("bin", false, "binary output (traceio format: header + uint64 LE items)")
	)
	flag.Parse()

	var s *stream.Stream
	switch *preset {
	case "caida":
		s = gen.CAIDALike(*n, *seed)
	case "network":
		s = gen.NetworkLike(*n, *seed)
	case "social":
		s = gen.SocialLike(*n, *seed)
	case "":
		s = gen.Generate(gen.Config{N: *n, M: *m, Periods: *periods,
			Skew: *skew, Head: *head, TailWindowFrac: *window, Seed: *seed,
			Label: "custom"})
	default:
		fmt.Fprintf(os.Stderr, "siggen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	var err error
	if *binOut {
		err = traceio.WriteBinary(os.Stdout, s)
	} else {
		err = traceio.WriteText(os.Stdout, s)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "siggen:", err)
		os.Exit(1)
	}
}
