// Command siggen generates the synthetic workloads used by the experiments
// and writes them as text (one "item period" pair per line) or binary
// (16-byte header + little-endian uint64 items; see internal/traceio).
// With -ingest it instead streams the workload live at a sigserver's
// framed binary ingest listener, period boundaries included. With
// -cluster it fans the workload out across a sigcoord-coordinated fleet:
// each key is hashed to its partition with the exact partition map the
// coordinator derives (same member list, same hash), and written to the
// partition's namespace on every one of its replica sites, so the
// gathered cluster view counts each arrival once at any replication
// factor.
//
// Usage:
//
//	siggen -preset caida -n 1000000 > caida.txt
//	siggen -m 50000 -periods 100 -skew 1.1 -head 500 -window 0.3
//	siggen -preset network -n 1000000 -ingest localhost:9090 -ingest-window 8
//	siggen -n 100000 -cluster http://n1:8080,http://n2:8080,http://n3:8080 \
//	    -cluster-partitions 16 -cluster-replicas 2
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sigstream/internal/client"
	"sigstream/internal/cluster"
	"sigstream/internal/gen"
	"sigstream/internal/ingest"
	"sigstream/internal/stream"
	"sigstream/internal/traceio"
)

func main() {
	var (
		preset  = flag.String("preset", "", "workload preset: caida, network, social (overrides shape flags)")
		n       = flag.Int("n", 1_000_000, "number of arrivals")
		m       = flag.Int("m", 100_000, "distinct items")
		periods = flag.Int("periods", 100, "number of periods")
		skew    = flag.Float64("skew", 1.0, "Zipf skew γ")
		head    = flag.Int("head", 100, "persistent head size")
		window  = flag.Float64("window", 0.3, "mean tail active-window fraction")
		seed    = flag.Int64("seed", 1, "generation seed")
		binOut  = flag.Bool("bin", false, "binary output (traceio format: header + uint64 LE items)")

		ingestAddr  = flag.String("ingest", "", "stream the workload to this sigserver binary ingest address instead of writing it out")
		ingestNS    = flag.String("tenant", "", "namespace for -ingest frames (empty = default tenant)")
		ingestBatch = flag.Int("ingest-batch", 512, "arrivals per -ingest batch frame")
		ingestWin   = flag.Int("ingest-window", 1, "unacked -ingest frames in flight (1 = synchronous)")
		ingestUDP   = flag.Bool("ingest-udp", false, "use the UDP fire-and-forget transport for -ingest")

		clusterSites    = flag.String("cluster", "", "comma-separated sigserver base URLs: fan the workload out over the cluster's partition namespaces instead of writing it out")
		clusterParts    = flag.Int("cluster-partitions", 16, "partition count P for -cluster (must match sigcoord's -partitions)")
		clusterReplicas = flag.Int("cluster-replicas", 2, "replication factor R for -cluster (must match sigcoord's -replicas)")
	)
	flag.Parse()

	var s *stream.Stream
	switch *preset {
	case "caida":
		s = gen.CAIDALike(*n, *seed)
	case "network":
		s = gen.NetworkLike(*n, *seed)
	case "social":
		s = gen.SocialLike(*n, *seed)
	case "":
		s = gen.Generate(gen.Config{N: *n, M: *m, Periods: *periods,
			Skew: *skew, Head: *head, TailWindowFrac: *window, Seed: *seed,
			Label: "custom"})
	default:
		fmt.Fprintf(os.Stderr, "siggen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	var err error
	switch {
	case *clusterSites != "":
		err = shipCluster(s, *clusterSites, *clusterParts, *clusterReplicas, *ingestBatch)
	case *ingestAddr != "":
		err = shipIngest(s, *ingestAddr, *ingestNS, *ingestBatch, *ingestWin, *ingestUDP)
	case *binOut:
		err = traceio.WriteBinary(os.Stdout, s)
	default:
		err = traceio.WriteText(os.Stdout, s)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "siggen:", err)
		os.Exit(1)
	}
}

// shipIngest replays the stream over the binary ingest protocol: items
// are rendered as decimal keys (the same rendering a text trace feeds
// through /v1/insert), batched, and a period frame sent at every period
// boundary. Over TCP the final Close waits for every ack, so a zero
// exit means the server applied — and, with a WAL, fsynced — the whole
// workload.
func shipIngest(s *stream.Stream, addr, ns string, batch, win int, udp bool) error {
	if batch < 1 {
		batch = 1
	}
	network := "tcp"
	if udp {
		network = "udp"
	}
	conn, err := ingest.Dial(addr, ingest.Options{
		Namespace: ns,
		Window:    win,
		Network:   network,
	})
	if err != nil {
		return err
	}
	per := s.ItemsPerPeriod()
	keys := make([]string, 0, batch)
	flushBatch := func() error {
		if len(keys) == 0 {
			return nil
		}
		err := conn.Insert(keys...)
		keys = keys[:0]
		return err
	}
	start := time.Now()
	for i, it := range s.Items {
		if i > 0 && per > 0 && i%per == 0 {
			if err := flushBatch(); err != nil {
				_ = conn.Close()
				return err
			}
			if err := conn.Period(); err != nil {
				_ = conn.Close()
				return err
			}
		}
		keys = append(keys, strconv.FormatUint(it, 10))
		if len(keys) == batch {
			if err := flushBatch(); err != nil {
				_ = conn.Close()
				return err
			}
		}
	}
	if err := flushBatch(); err != nil {
		_ = conn.Close()
		return err
	}
	if err := conn.Period(); err != nil {
		_ = conn.Close()
		return err
	}
	if err := conn.Close(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	rate := float64(len(s.Items)) / elapsed.Seconds() / 1e6
	fmt.Fprintf(os.Stderr, "siggen: shipped %d arrivals over %s in %s (%.2f Mitems/s, %d acked)\n",
		len(s.Items), network, elapsed.Round(time.Millisecond), rate, conn.Accepted())
	return nil
}

// shipCluster fans the workload out across a replicated cluster over
// HTTP. Each key is routed to the partition the coordinator's own map
// assigns it (cluster.Topology is deterministic in the member list, so
// producer and coordinator agree without coordination) and written to
// that partition's namespace on every replica site; period boundaries
// close the period on every (site, namespace) pair the run has touched.
// Replica writes are what make single-node death lossless — the
// coordinator merges exactly one replica image per partition, so the
// duplication never inflates counts.
func shipCluster(s *stream.Stream, sitesCSV string, partitions, replicas, batch int) error {
	var sites []string
	for _, part := range strings.Split(sitesCSV, ",") {
		if trimmed := strings.TrimSpace(part); trimmed != "" {
			sites = append(sites, trimmed)
		}
	}
	if replicas > len(sites) {
		replicas = len(sites)
	}
	topo, err := cluster.NewTopology(sites, partitions, replicas)
	if err != nil {
		return err
	}
	if batch < 1 {
		batch = 1
	}
	ctx := context.Background()
	httpc := &http.Client{Timeout: 30 * time.Second}
	clients := make(map[string]*client.Client, len(sites))
	for _, site := range topo.Sites() {
		clients[site] = client.New(site, httpc)
	}

	// pending buffers keys per (site, namespace); touched remembers every
	// pair that received data so period boundaries reach all of them.
	type target struct{ site, ns string }
	pending := make(map[target][]string)
	touched := make(map[target]bool)
	flush := func(tg target) error {
		keys := pending[tg]
		if len(keys) == 0 {
			return nil
		}
		if _, err := clients[tg.site].Tenant(tg.ns).Insert(ctx, keys...); err != nil {
			return fmt.Errorf("insert %s on %s: %w", tg.ns, tg.site, err)
		}
		pending[tg] = keys[:0]
		touched[tg] = true
		return nil
	}
	flushAll := func() error {
		for tg := range pending {
			if err := flush(tg); err != nil {
				return err
			}
		}
		return nil
	}
	closePeriods := func() error {
		for tg := range touched {
			if _, err := clients[tg.site].Tenant(tg.ns).EndPeriod(ctx); err != nil {
				return fmt.Errorf("period %s on %s: %w", tg.ns, tg.site, err)
			}
		}
		return nil
	}

	per := s.ItemsPerPeriod()
	start := time.Now()
	sent := 0
	for i, it := range s.Items {
		if i > 0 && per > 0 && i%per == 0 {
			if err := flushAll(); err != nil {
				return err
			}
			if err := closePeriods(); err != nil {
				return err
			}
		}
		key := strconv.FormatUint(it, 10)
		p := topo.PartitionKey(key)
		ns := cluster.PartitionNamespace(p)
		for _, site := range topo.ReplicaSites(p) {
			tg := target{site: site, ns: ns}
			pending[tg] = append(pending[tg], key)
			if len(pending[tg]) >= batch {
				if err := flush(tg); err != nil {
					return err
				}
			}
		}
		sent++
	}
	if err := flushAll(); err != nil {
		return err
	}
	if err := closePeriods(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	rate := float64(sent) / elapsed.Seconds() / 1e6
	fmt.Fprintf(os.Stderr, "siggen: fanned %d arrivals out to %d sites (P=%d, R=%d) in %s (%.2f Mitems/s per replica)\n",
		sent, len(sites), topo.Partitions(), topo.Replicas(), elapsed.Round(time.Millisecond), rate)
	return nil
}
