// Command sigserver serves a sigstream tracker over HTTP.
//
// Usage:
//
//	sigserver -addr :8080 -mem 1048576 -alpha 1 -beta 10
//
// Then:
//
//	printf 'alice\nbob\nalice\n' | curl -s --data-binary @- localhost:8080/v1/insert
//	curl -s -X POST localhost:8080/v1/period
//	curl -s 'localhost:8080/v1/top?k=5'
//	curl -s 'localhost:8080/v1/query?key=alice'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//
// Multi-tenant: every /v1/* route above also exists tenant-scoped as
// /v1/t/{ns}/* (insert, period, top, query, stats, checkpoint,
// restore), where {ns} is a namespace of [a-z0-9-], 1-63 characters.
// Inserting into an unknown namespace creates its tracker lazily; GET
// /v1/tenants lists namespaces, POST /v1/tenants creates one up front,
// and DELETE /v1/t/{ns} drops one. The legacy un-namespaced routes are
// aliases for the pinned "default" tenant. -tenant-mem sizes each
// tenant's tracker, -tenant-budget caps resident tenant memory overall
// (cold tenants spill to -snapshot-dir and revive on touch),
// -tenant-quota/-tenant-burst rate-limit per-tenant ingest (429 +
// Retry-After on breach), -tenant-idle spills tenants idle that long,
// and -tenant-max bounds the number of namespaces.
//
// Durability: -snapshot-dir enables crash-safe checkpoints — the tracker
// is recovered from the newest valid snapshot at startup, checkpointed
// every -snapshot-interval, and checkpointed once more on SIGINT/SIGTERM
// before the process exits. A kill -9 loses at most one interval of
// arrivals, never the whole state.
//
// Robustness: request bodies are capped at -max-body (413 beyond it),
// connections are bounded by -read-timeout/-write-timeout, and with
// -pipeline the ingest path sheds load with 429 once the rings pass
// -shed-highwater of capacity. /healthz is the liveness probe, /readyz
// the readiness probe (503 during startup restore, after a pipeline
// quarantine, and while shutting down).
//
// Observability: every request is logged structurally (method, path,
// status, bytes, duration); requests slower than -slow log at WARN.
// -pprof mounts net/http/pprof under /debug/pprof for live CPU and heap
// profiling — leave it off unless the listener is trusted-network only.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sigstream"
	"sigstream/internal/obs"
	"sigstream/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		mem       = flag.Int("mem", 1<<20, "tracker memory budget in bytes")
		alpha     = flag.Float64("alpha", 1, "frequency weight α")
		beta      = flag.Float64("beta", 1, "persistency weight β")
		shards    = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		decay     = flag.Float64("decay", 0, "per-period decay factor λ ∈ (0,1); 0 = all-history")
		slow      = flag.Duration("slow", time.Second, "slow-request log threshold (0 disables)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error (debug logs every request)")
		withPprof = flag.Bool("pprof", false, "mount /debug/pprof (opt-in; exposes profiling data)")
		pipelined = flag.Bool("pipeline", false, "route /v1/insert through the asynchronous sharded pipeline")
		ring      = flag.Int("pipeline-ring", 0, "per-shard pipeline ring capacity in batches (0 = default)")

		snapDir      = flag.String("snapshot-dir", "", "snapshot directory; empty disables crash-safe checkpoints")
		snapInterval = flag.Duration("snapshot-interval", time.Minute, "periodic checkpoint cadence (0 = only the final snapshot on shutdown)")
		snapRetain   = flag.Int("snapshot-retain", 0, "snapshots to keep (0 = default)")

		tenantMem    = flag.Int("tenant-mem", 0, "per-tenant tracker memory budget in bytes (0 = same as -mem)")
		tenantBudget = flag.Int64("tenant-budget", 0, "total resident memory budget across tenants in bytes (0 = unlimited)")
		tenantQuota  = flag.Float64("tenant-quota", 0, "per-tenant sustained ingest quota in keys/sec (0 = unlimited)")
		tenantBurst  = flag.Int("tenant-burst", 0, "per-tenant ingest burst in keys (0 = quota-derived default)")
		tenantIdle   = flag.Duration("tenant-idle", 0, "spill tenants idle this long to disk (0 = never)")
		tenantMax    = flag.Int("tenant-max", 0, "maximum number of tenant namespaces (0 = unlimited)")

		maxBody       = flag.Int64("max-body", 0, "request body cap in bytes (0 = default 32 MiB)")
		readTimeout   = flag.Duration("read-timeout", 30*time.Second, "per-connection read deadline (0 disables)")
		writeTimeout  = flag.Duration("write-timeout", 30*time.Second, "per-connection write deadline (0 disables)")
		shedHighWater = flag.Float64("shed-highwater", 0, "load-shed threshold as a fraction of ring capacity (0 = default 0.9, negative disables)")
		restartBudget = flag.Int("restart-budget", 0, "pipeline worker restarts tolerated per shard per minute before quarantine (0 = default 3)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		log.Fatalf("sigserver: bad -log-level %q: %v", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	h := server.New(server.Config{
		MemoryBytes:           *mem,
		Weights:               sigstream.Weights{Alpha: *alpha, Beta: *beta},
		Shards:                *shards,
		DecayFactor:           *decay,
		TenantMemoryBytes:     *tenantMem,
		TenantBudgetBytes:     *tenantBudget,
		TenantQuota:           *tenantQuota,
		TenantBurst:           *tenantBurst,
		TenantIdleAfter:       *tenantIdle,
		TenantMax:             *tenantMax,
		MaxBodyBytes:          *maxBody,
		Pipeline:              *pipelined,
		PipelineRing:          *ring,
		PipelineRestartBudget: *restartBudget,
		ShedHighWater:         *shedHighWater,
		Logger:                logger,
	})
	if *snapDir != "" {
		if err := h.StartSnapshots(server.SnapshotConfig{
			Dir:      *snapDir,
			Interval: *snapInterval,
			Retain:   *snapRetain,
		}); err != nil {
			log.Fatalf("sigserver: snapshots: %v", err)
		}
		logger.Info("snapshots enabled", "dir", *snapDir, "interval", *snapInterval)
	}
	mux := http.NewServeMux()
	mux.Handle("/", h)
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	root := obs.LogRequests(logger, *slow, mux)

	srv := &http.Server{
		Addr:         *addr,
		Handler:      root,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}

	// Graceful shutdown: stop accepting, drain in-flight requests up to
	// the deadline, then take the final snapshot and release the pipeline.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	logger.Info("sigserver listening", "addr", *addr, "mem_bytes", *mem,
		"alpha", *alpha, "beta", *beta, "shards", *shards, "pprof", *withPprof,
		"pipeline", *pipelined, "snapshot_dir", *snapDir)

	select {
	case err := <-errc:
		log.Fatalf("sigserver: %v", err)
	case <-ctx.Done():
		stop()
		logger.Info("sigserver shutting down", "drain_timeout", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("sigserver: drain incomplete", "err", err)
		}
		if err := h.Close(); err != nil {
			logger.Error("sigserver: close", "err", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("sigserver: listener", "err", err)
		}
		logger.Info("sigserver stopped")
	}
}
