// Command sigserver serves a sigstream tracker over HTTP.
//
// Usage:
//
//	sigserver -addr :8080 -mem 1048576 -alpha 1 -beta 10
//
// Then:
//
//	printf 'alice\nbob\nalice\n' | curl -s --data-binary @- localhost:8080/v1/insert
//	curl -s -X POST localhost:8080/v1/period
//	curl -s 'localhost:8080/v1/top?k=5'
//	curl -s 'localhost:8080/v1/query?key=alice'
//	curl -s localhost:8080/v1/stats
package main

import (
	"flag"
	"log"
	"net/http"

	"sigstream"
	"sigstream/internal/server"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		mem    = flag.Int("mem", 1<<20, "tracker memory budget in bytes")
		alpha  = flag.Float64("alpha", 1, "frequency weight α")
		beta   = flag.Float64("beta", 1, "persistency weight β")
		shards = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		decay  = flag.Float64("decay", 0, "per-period decay factor λ ∈ (0,1); 0 = all-history")
	)
	flag.Parse()

	h := server.New(server.Config{
		MemoryBytes: *mem,
		Weights:     sigstream.Weights{Alpha: *alpha, Beta: *beta},
		Shards:      *shards,
		DecayFactor: *decay,
	})
	log.Printf("sigserver listening on %s (mem=%dB α=%g β=%g)", *addr, *mem, *alpha, *beta)
	log.Fatal(http.ListenAndServe(*addr, h))
}
