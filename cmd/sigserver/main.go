// Command sigserver serves a sigstream tracker over HTTP.
//
// Usage:
//
//	sigserver -addr :8080 -mem 1048576 -alpha 1 -beta 10
//
// Then:
//
//	printf 'alice\nbob\nalice\n' | curl -s --data-binary @- localhost:8080/v1/insert
//	curl -s -X POST localhost:8080/v1/period
//	curl -s 'localhost:8080/v1/top?k=5'
//	curl -s 'localhost:8080/v1/query?key=alice'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/readyz
//
// Configuration: every flag below has a JSON key of the same name with
// dashes as underscores, loadable from a file with -config. Explicitly
// set flags take precedence over the file, the file over built-in
// defaults; the fully resolved configuration is logged at startup so an
// operator can see exactly what the process is running with:
//
//	sigserver -config /etc/sigserver.json -addr :9090
//
// Multi-tenant: every /v1/* route above also exists tenant-scoped as
// /v1/t/{ns}/* (insert, period, top, query, stats, checkpoint,
// restore), where {ns} is a namespace of [a-z0-9-], 1-63 characters.
// Inserting into an unknown namespace creates its tracker lazily; GET
// /v1/tenants lists namespaces, POST /v1/tenants creates one up front,
// and DELETE /v1/t/{ns} drops one. The legacy un-namespaced routes are
// aliases for the pinned "default" tenant. -tenant-mem sizes each
// tenant's tracker, -tenant-budget caps resident tenant memory overall
// (cold tenants spill to -snapshot-dir and revive on touch),
// -tenant-quota/-tenant-burst rate-limit per-tenant ingest (429 +
// Retry-After on breach), -tenant-idle spills tenants idle that long,
// and -tenant-max bounds the number of namespaces.
//
// Durability: -snapshot-dir enables crash-safe checkpoints — the tracker
// is recovered from the newest valid snapshot at startup, checkpointed
// every -snapshot-interval, and checkpointed once more on SIGINT/SIGTERM
// before the process exits. A kill -9 loses at most one interval of
// arrivals — unless -wal-dir is also set, which adds a per-tenant
// write-ahead log: each insert is acknowledged only after its record is
// fsynced, recovery replays the log tail over the newest snapshot, and
// nothing a client was told succeeded is ever lost. -wal-sync widens the
// group-commit window (0 fsyncs every insert inline); -wal-segment sets
// the segment rotation size. Run the WAL together with -snapshot-dir:
// snapshots are what truncate the log, so without them it grows without
// bound.
//
// Wire-speed ingest: -ingest-addr opens the framed binary ingest
// listener (length-prefixed, CRC32-trailered batches of (key, weight)
// records over persistent TCP; wire format in internal/ingest and the
// README), which skips HTTP and JSON entirely and decodes batches
// zero-copy into the tracker's native form. Batches are acked only
// after the WAL fsync when -wal-dir is set — the same durability
// contract as /v1/insert. -ingest-udp adds a fire-and-forget UDP
// listener for lossy telemetry (no acks; drops are counted in
// sigstream_ingest_udp_drops_total), and -ingest-max-frame caps frame
// payloads. siggen -ingest streams a workload straight at it.
//
// Robustness: request bodies are capped at -max-body (413 beyond it),
// connections are bounded by -read-timeout/-write-timeout, and with
// -pipeline the ingest path sheds load with 429 once the rings pass
// -shed-highwater of capacity. /healthz is the liveness probe, /readyz
// the readiness probe (503 during startup restore, after a pipeline
// quarantine, and while shutting down).
//
// Observability: every request is logged structurally (method, path,
// status, bytes, duration); requests slower than -slow log at WARN.
// -pprof mounts net/http/pprof under /debug/pprof for live CPU and heap
// profiling — leave it off unless the listener is trusted-network only.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sigstream/internal/obs"
	"sigstream/internal/server"
)

func main() {
	// Flags bind into a scratch Options so explicitly-set flags can be
	// overlaid onto a -config file afterwards (flags beat file, file
	// beats defaults).
	fo := server.DefaultOptions()
	configPath := flag.String("config", "", "JSON config file; explicitly set flags take precedence over it")

	flag.StringVar(&fo.Addr, "addr", fo.Addr, "listen address")
	flag.IntVar(&fo.MemoryBytes, "mem", fo.MemoryBytes, "tracker memory budget in bytes")
	flag.Float64Var(&fo.Alpha, "alpha", fo.Alpha, "frequency weight α")
	flag.Float64Var(&fo.Beta, "beta", fo.Beta, "persistency weight β")
	flag.IntVar(&fo.Shards, "shards", fo.Shards, "shard count (0 = GOMAXPROCS)")
	flag.Float64Var(&fo.Decay, "decay", fo.Decay, "per-period decay factor λ ∈ (0,1); 0 = all-history")
	flag.Var(&fo.Slow, "slow", "slow-request log threshold (0 disables)")
	flag.StringVar(&fo.LogLevel, "log-level", fo.LogLevel, "log level: debug, info, warn, error (debug logs every request)")
	flag.BoolVar(&fo.Pprof, "pprof", fo.Pprof, "mount /debug/pprof (opt-in; exposes profiling data)")
	flag.BoolVar(&fo.Pipeline, "pipeline", fo.Pipeline, "route /v1/insert through the asynchronous sharded pipeline")
	flag.IntVar(&fo.PipelineRing, "pipeline-ring", fo.PipelineRing, "per-shard pipeline ring capacity in batches (0 = default)")
	flag.StringVar(&fo.SnapshotDir, "snapshot-dir", fo.SnapshotDir, "snapshot directory; empty disables crash-safe checkpoints")
	flag.Var(&fo.SnapshotInterval, "snapshot-interval", "periodic checkpoint cadence (0 = only the final snapshot on shutdown)")
	flag.IntVar(&fo.SnapshotRetain, "snapshot-retain", fo.SnapshotRetain, "snapshots to keep (0 = default)")
	flag.IntVar(&fo.TenantMem, "tenant-mem", fo.TenantMem, "per-tenant tracker memory budget in bytes (0 = same as -mem)")
	flag.Int64Var(&fo.TenantBudget, "tenant-budget", fo.TenantBudget, "total resident memory budget across tenants in bytes (0 = unlimited)")
	flag.Float64Var(&fo.TenantQuota, "tenant-quota", fo.TenantQuota, "per-tenant sustained ingest quota in keys/sec (0 = unlimited)")
	flag.IntVar(&fo.TenantBurst, "tenant-burst", fo.TenantBurst, "per-tenant ingest burst in keys (0 = quota-derived default)")
	flag.Var(&fo.TenantIdle, "tenant-idle", "spill tenants idle this long to disk (0 = never)")
	flag.IntVar(&fo.TenantMax, "tenant-max", fo.TenantMax, "maximum number of tenant namespaces (0 = unlimited)")
	flag.StringVar(&fo.WALDir, "wal-dir", fo.WALDir, "write-ahead log directory; empty disables the WAL")
	flag.Var(&fo.WALSync, "wal-sync", "WAL group-commit window; 0 fsyncs every insert inline")
	flag.Int64Var(&fo.WALSegment, "wal-segment", fo.WALSegment, "WAL segment rotation threshold in bytes (0 = default)")
	flag.StringVar(&fo.IngestAddr, "ingest-addr", fo.IngestAddr, "framed binary ingest TCP listen address; empty disables the listener")
	flag.StringVar(&fo.IngestUDP, "ingest-udp", fo.IngestUDP, "UDP fire-and-forget ingest listen address; empty disables it")
	flag.IntVar(&fo.IngestMaxFrame, "ingest-max-frame", fo.IngestMaxFrame, "binary ingest frame payload cap in bytes (0 = default 1 MiB)")
	flag.Int64Var(&fo.MaxBody, "max-body", fo.MaxBody, "request body cap in bytes (0 = default 32 MiB)")
	flag.Var(&fo.ReadTimeout, "read-timeout", "per-connection read deadline (0 disables)")
	flag.Var(&fo.WriteTimeout, "write-timeout", "per-connection write deadline (0 disables)")
	flag.Float64Var(&fo.ShedHighWater, "shed-highwater", fo.ShedHighWater, "load-shed threshold as a fraction of ring capacity (0 = default 0.9, negative disables)")
	flag.IntVar(&fo.RestartBudget, "restart-budget", fo.RestartBudget, "pipeline worker restarts tolerated per shard per minute before quarantine (0 = default 3)")
	flag.Var(&fo.DrainTimeout, "drain-timeout", "graceful shutdown deadline for in-flight requests")
	flag.Parse()

	opts := fo
	if *configPath != "" {
		loaded, err := server.LoadOptions(*configPath)
		if err != nil {
			log.Fatalf("sigserver: %v", err)
		}
		opts = loaded
		// Re-apply every flag the operator set explicitly: flags beat the
		// config file field by field, not wholesale. ApplyFlag maps the
		// flag name to its Options field through the JSON tag, so every
		// flag bound above is covered without a parallel switch here
		// (-config itself has no Options field and is a no-op).
		flag.Visit(func(f *flag.Flag) {
			opts.ApplyFlag(f.Name, fo)
		})
	}
	if err := opts.Validate(); err != nil {
		log.Fatalf("sigserver: bad configuration: %v", err)
	}

	level, err := opts.Level()
	if err != nil {
		log.Fatalf("sigserver: bad -log-level %q: %v", opts.LogLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// The resolved configuration — defaults, file and flags merged — in
	// the same JSON shape -config accepts, so an operator can round-trip
	// the log line straight back into a config file.
	if resolved, err := json.Marshal(opts); err == nil {
		logger.Info("resolved configuration", "config", string(resolved))
	}
	if opts.WALDir != "" && opts.SnapshotDir == "" {
		logger.Warn("wal-dir set without snapshot-dir: only snapshots truncate the log, disk use is unbounded")
	}

	h := server.New(opts.ServerConfig(logger))
	if opts.SnapshotDir != "" {
		if err := h.StartSnapshots(opts.SnapshotOptions()); err != nil {
			log.Fatalf("sigserver: snapshots: %v", err)
		}
		logger.Info("snapshots enabled", "dir", opts.SnapshotDir, "interval", opts.SnapshotInterval)
	}
	if opts.IngestAddr != "" || opts.IngestUDP != "" {
		// After recovery: the first binary frame must land on replayed
		// state, not race it.
		if err := h.StartIngest(opts.IngestOptions()); err != nil {
			log.Fatalf("sigserver: ingest: %v", err)
		}
		ing := h.Ingest()
		logger.Info("binary ingest enabled", "tcp", ing.Addr(), "udp", ing.UDPAddr())
	}
	mux := http.NewServeMux()
	mux.Handle("/", h)
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	root := obs.LogRequests(logger, time.Duration(opts.Slow), mux)

	srv := &http.Server{
		Addr:         opts.Addr,
		Handler:      root,
		ReadTimeout:  time.Duration(opts.ReadTimeout),
		WriteTimeout: time.Duration(opts.WriteTimeout),
	}

	// Graceful shutdown: stop accepting, drain in-flight requests up to
	// the deadline, then take the final snapshot and release the pipeline.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	logger.Info("sigserver listening", "addr", opts.Addr, "mem_bytes", opts.MemoryBytes,
		"alpha", opts.Alpha, "beta", opts.Beta, "shards", opts.Shards, "pprof", opts.Pprof,
		"pipeline", opts.Pipeline, "snapshot_dir", opts.SnapshotDir, "wal_dir", opts.WALDir)

	select {
	case err := <-errc:
		log.Fatalf("sigserver: %v", err)
	case <-ctx.Done():
		stop()
		logger.Info("sigserver shutting down", "drain_timeout", opts.DrainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Duration(opts.DrainTimeout))
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("sigserver: drain incomplete", "err", err)
		}
		if err := h.Close(); err != nil {
			logger.Error("sigserver: close", "err", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("sigserver: listener", "err", err)
		}
		logger.Info("sigserver stopped")
	}
}
