// Command sigserver serves a sigstream tracker over HTTP.
//
// Usage:
//
//	sigserver -addr :8080 -mem 1048576 -alpha 1 -beta 10
//
// Then:
//
//	printf 'alice\nbob\nalice\n' | curl -s --data-binary @- localhost:8080/v1/insert
//	curl -s -X POST localhost:8080/v1/period
//	curl -s 'localhost:8080/v1/top?k=5'
//	curl -s 'localhost:8080/v1/query?key=alice'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//
// Observability: every request is logged structurally (method, path,
// status, bytes, duration); requests slower than -slow log at WARN.
// -pprof mounts net/http/pprof under /debug/pprof for live CPU and heap
// profiling — leave it off unless the listener is trusted-network only.
package main

import (
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"sigstream"
	"sigstream/internal/obs"
	"sigstream/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		mem       = flag.Int("mem", 1<<20, "tracker memory budget in bytes")
		alpha     = flag.Float64("alpha", 1, "frequency weight α")
		beta      = flag.Float64("beta", 1, "persistency weight β")
		shards    = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		decay     = flag.Float64("decay", 0, "per-period decay factor λ ∈ (0,1); 0 = all-history")
		slow      = flag.Duration("slow", time.Second, "slow-request log threshold (0 disables)")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error (debug logs every request)")
		withPprof = flag.Bool("pprof", false, "mount /debug/pprof (opt-in; exposes profiling data)")
		pipelined = flag.Bool("pipeline", false, "route /v1/insert through the asynchronous sharded pipeline")
		ring      = flag.Int("pipeline-ring", 0, "per-shard pipeline ring capacity in batches (0 = default)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		log.Fatalf("sigserver: bad -log-level %q: %v", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	h := server.New(server.Config{
		MemoryBytes:  *mem,
		Weights:      sigstream.Weights{Alpha: *alpha, Beta: *beta},
		Shards:       *shards,
		DecayFactor:  *decay,
		Pipeline:     *pipelined,
		PipelineRing: *ring,
	})
	mux := http.NewServeMux()
	mux.Handle("/", h)
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	root := obs.LogRequests(logger, *slow, mux)

	logger.Info("sigserver listening", "addr", *addr, "mem_bytes", *mem,
		"alpha", *alpha, "beta", *beta, "shards", *shards, "pprof", *withPprof,
		"pipeline", *pipelined)
	log.Fatal(http.ListenAndServe(*addr, root))
}
