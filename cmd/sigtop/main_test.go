package main

import (
	"bytes"
	"strings"
	"testing"

	"sigstream"
)

func newTrackerAndKeys() (*sigstream.LTC, *sigstream.KeyMap) {
	return sigstream.New(sigstream.Config{
		MemoryBytes: 32 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 10},
	}), sigstream.NewKeyMap()
}

func TestIngestWithPeriodColumn(t *testing.T) {
	tr, keys := newTrackerAndKeys()
	in := "alice 0\nbob 0\nalice 1\nalice 2\n"
	count, err := ingest(strings.NewReader(in), tr, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	e, ok := tr.Query(sigstream.HashKey("alice"))
	if !ok || e.Frequency != 3 || e.Persistency != 3 {
		t.Fatalf("alice: %+v ok=%v, want f=3 p=3", e, ok)
	}
	e, _ = tr.Query(sigstream.HashKey("bob"))
	if e.Persistency != 1 {
		t.Fatalf("bob persistency = %d, want 1", e.Persistency)
	}
}

func TestIngestCountBasedPeriods(t *testing.T) {
	tr, keys := newTrackerAndKeys()
	var in strings.Builder
	for i := 0; i < 10; i++ {
		in.WriteString("x\n")
	}
	count, err := ingest(strings.NewReader(in.String()), tr, keys, 5)
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	e, _ := tr.Query(sigstream.HashKey("x"))
	if e.Persistency != 2 {
		t.Fatalf("persistency = %d, want 2 (two 5-item periods)", e.Persistency)
	}
}

func TestIngestSkipsBlanksAndBadPeriods(t *testing.T) {
	tr, keys := newTrackerAndKeys()
	in := "\n  \nweb notanumber\nweb 1\n"
	count, err := ingest(strings.NewReader(in), tr, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2 (blanks skipped)", count)
	}
}

func TestReportFormat(t *testing.T) {
	tr, keys := newTrackerAndKeys()
	_, err := ingest(strings.NewReader("hot 0\nhot 1\ncold 1\n"), tr, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	report(&out, tr, keys, 3, 2)
	text := out.String()
	for _, want := range []string{"3 arrivals", "hot", "significance"} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
	// "hot" must rank first (2 periods × β=10 + f=2).
	hotIdx := strings.Index(text, "hot")
	coldIdx := strings.Index(text, "cold")
	if coldIdx >= 0 && hotIdx > coldIdx {
		t.Fatalf("ranking order wrong:\n%s", text)
	}
}
