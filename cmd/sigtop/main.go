// Command sigtop reads a stream of item keys from stdin (one per line,
// optionally "key period") and reports the top-k significant items.
//
// Period boundaries are taken from the second column when present;
// otherwise -period-items arrivals form one period.
//
// With -server, the stream is shipped to a running sigserver instance
// (batched over HTTP with a signal-cancelled context) and the ranking is
// fetched back; -tenant selects the namespace.
//
// Usage:
//
//	siggen -preset caida -n 1000000 | sigtop -k 20
//	tail -f access.log | awk '{print $1}' | sigtop -k 10 -alpha 1 -beta 5
//	cat keys.txt | sigtop -server http://localhost:8080 -tenant edge -k 20
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sigstream"
	"sigstream/internal/client"
)

func main() {
	var (
		k           = flag.Int("k", 10, "number of items to report")
		memKB       = flag.Int("mem", 64, "memory budget in KiB")
		alpha       = flag.Float64("alpha", 1, "frequency weight α")
		beta        = flag.Float64("beta", 1, "persistency weight β")
		periodItems = flag.Int("period-items", 100_000, "arrivals per period when no period column is present")
		showStats   = flag.Bool("stats", false, "print the tracker's operation counters after the ranking")
		serverURL   = flag.String("server", "", "ship the stream to a sigserver base URL instead of tracking locally")
		tenantNS    = flag.String("tenant", client.DefaultNamespace, "tenant namespace on the server (with -server)")
	)
	flag.Parse()

	if *serverURL != "" {
		ctx, stop := signal.NotifyContext(context.Background(),
			os.Interrupt, syscall.SIGTERM)
		defer stop()
		tn := client.New(*serverURL, nil).Tenant(*tenantNS)
		if err := runRemote(ctx, os.Stdin, os.Stdout, tn, *k, *periodItems); err != nil {
			fmt.Fprintln(os.Stderr, "sigtop:", err)
			os.Exit(1)
		}
		return
	}

	tr := sigstream.New(sigstream.Config{
		MemoryBytes: *memKB << 10,
		Weights:     sigstream.Weights{Alpha: *alpha, Beta: *beta},
	})
	keys := sigstream.NewKeyMap()

	count, err := ingest(os.Stdin, tr, keys, *periodItems)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigtop:", err)
		os.Exit(1)
	}
	report(os.Stdout, tr, keys, count, *k)
	if *showStats {
		printStats(os.Stdout, tr)
	}
}

// remoteBatch is how many keys ship per insert request in -server mode.
const remoteBatch = 1000

// runRemote streams "key [period]" lines to a server-side tenant —
// batching inserts, closing periods at boundaries, backing off when
// throttled — then fetches and prints the remote ranking. The context
// cancels in-flight requests on SIGINT/SIGTERM.
func runRemote(ctx context.Context, in io.Reader, out io.Writer,
	tn *client.Tenant, k, periodItems int) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	lastPeriod := -1
	batch := make([]string, 0, remoteBatch)

	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		for {
			_, err := tn.Insert(ctx, batch...)
			var te *client.ThrottledError
			if errors.As(err, &te) {
				select {
				case <-time.After(te.RetryAfter):
					continue
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			if err == nil {
				batch = batch[:0]
			}
			return err
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		boundary := false
		if len(fields) >= 2 {
			if p, err := strconv.Atoi(fields[1]); err == nil {
				boundary = lastPeriod >= 0 && p != lastPeriod
				lastPeriod = p
			}
		} else if periodItems > 0 && count > 0 && count%periodItems == 0 {
			boundary = true
		}
		if boundary {
			if err := flush(); err != nil {
				return err
			}
			if _, err := tn.EndPeriod(ctx); err != nil {
				return err
			}
		}
		batch = append(batch, fields[0])
		count++
		if len(batch) >= remoteBatch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if _, err := tn.EndPeriod(ctx); err != nil {
		return err
	}
	st, err := tn.Stats(ctx)
	if err != nil {
		return err
	}
	top, err := tn.TopK(ctx, k)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "tenant %s: %d arrivals, %d/%d cells occupied, memory %d bytes\n",
		st.Tenant, st.Arrivals, st.Tracker.OccupiedCells, st.Tracker.Cells,
		st.MemoryBytes)
	fmt.Fprintf(out, "%-4s %-24s %12s %12s %14s\n", "#", "item", "frequency",
		"persistency", "significance")
	for i, e := range top {
		fmt.Fprintf(out, "%-4d %-24s %12d %12d %14.1f\n",
			i+1, e.Key, e.Frequency, e.Persistency, e.Significance)
	}
	return nil
}

// ingest feeds "key [period]" lines into the tracker, ending periods at
// column changes (or every periodItems arrivals without a column), plus a
// final EndPeriod. It returns the number of arrivals.
func ingest(r io.Reader, tr *sigstream.LTC, keys *sigstream.KeyMap, periodItems int) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	lastPeriod := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if p, err := strconv.Atoi(fields[1]); err == nil {
				if lastPeriod >= 0 && p != lastPeriod {
					tr.EndPeriod()
				}
				lastPeriod = p
			}
		} else if periodItems > 0 && count > 0 && count%periodItems == 0 {
			tr.EndPeriod()
		}
		tr.Insert(keys.Intern(fields[0]))
		count++
	}
	if err := sc.Err(); err != nil {
		return count, err
	}
	tr.EndPeriod()
	return count, nil
}

// report prints the ranking table, headed by the tracker's structured
// snapshot (occupancy and memory come from the one StatsReporter surface
// the HTTP service and experiment harness read too).
func report(w io.Writer, tr *sigstream.LTC, keys *sigstream.KeyMap, count, k int) {
	st, _ := sigstream.TrackerStats(tr)
	fmt.Fprintf(w, "%d arrivals, %d/%d cells occupied, memory %d bytes\n",
		count, st.OccupiedCells, st.Cells, st.MemoryBytes)
	fmt.Fprintf(w, "%-4s %-24s %12s %12s %14s\n", "#", "item", "frequency",
		"persistency", "significance")
	for i, e := range tr.TopK(k) {
		fmt.Fprintf(w, "%-4d %-24s %12d %12d %14.1f\n",
			i+1, keys.Name(e.Item), e.Frequency, e.Persistency, e.Significance)
	}
}

// printStats dumps the tracker's cumulative operation counters — the same
// snapshot /v1/stats serves — for offline diagnosis of eviction pressure.
func printStats(w io.Writer, tr *sigstream.LTC) {
	st, _ := sigstream.TrackerStats(tr)
	fmt.Fprintf(w, "\ncounters: periods %d  hits %d  admissions %d  decrements %d  expulsions %d\n",
		st.Periods, st.Hits, st.Admissions, st.Decrements, st.Expulsions)
	fmt.Fprintf(w, "clock: cells swept %d  flags consumed %d  parity flips %d\n",
		st.CellsSwept, st.FlagsConsumed, st.ParityFlips)
}
