// Command sigwatch streams item keys from stdin and emits RAISE/CLEAR
// alert lines when an item's significance crosses thresholds — a minimal
// production loop for the paper's DDoS use case: feed it source addresses,
// alert on sources that are both frequent and persistent.
//
// Input: one key per line, optionally "key period". Without a period
// column, -period-items arrivals form one period. Alerts are evaluated at
// every period boundary. With -flows, keys are flow tuples
// ("src[:port]>dst[:port][/proto]") and -key selects the aggregation
// (src, dst, pair, 5tuple) — the paper's five-tuple flow definition.
//
// With -server, the stream is shipped to a running sigserver instance
// (batched over HTTP with a signal-cancelled context) and alerts are
// evaluated against the remote ranking at each period boundary; -tenant
// selects the namespace. -flows is local-only.
//
// Usage:
//
//	tail -f flow.log | awk '{print $1}' | sigwatch -raise 5000 -min-periods 3
//	siggen -preset caida -n 1000000 | sigwatch -raise 2000
//	cat flows.txt | sigwatch -flows -key src -raise 5000
//	tail -f keys.log | sigwatch -server http://localhost:8080 -tenant edge -raise 2000
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sigstream"
	"sigstream/internal/alert"
	"sigstream/internal/client"
	"sigstream/internal/flowkey"
	"sigstream/internal/stream"
)

func main() {
	var (
		memKB       = flag.Int("mem", 64, "tracker memory budget in KiB")
		alpha       = flag.Float64("alpha", 1, "frequency weight α")
		beta        = flag.Float64("beta", 100, "persistency weight β")
		raise       = flag.Float64("raise", 1000, "significance threshold to raise an alert")
		clear       = flag.Float64("clear", 0, "significance to clear (default raise/2)")
		minPeriods  = flag.Uint64("min-periods", 2, "periods an item must span before it can raise")
		k           = flag.Int("k", 200, "ranking depth scanned for alerts")
		periodItems = flag.Int("period-items", 100_000, "arrivals per period when no period column is present")
		flows       = flag.Bool("flows", false, "parse keys as flow tuples (src[:port]>dst[:port][/proto])")
		keyBy       = flag.String("key", "src", "flow aggregation: src, dst, pair or 5tuple (with -flows)")
		serverURL   = flag.String("server", "", "ship the stream to a sigserver base URL instead of tracking locally")
		tenantNS    = flag.String("tenant", client.DefaultNamespace, "tenant namespace on the server (with -server)")
	)
	flag.Parse()

	if *serverURL != "" {
		if *flows {
			fmt.Fprintln(os.Stderr, "sigwatch: -flows is local-only (aggregate before shipping)")
			os.Exit(2)
		}
		ctx, stop := signal.NotifyContext(context.Background(),
			os.Interrupt, syscall.SIGTERM)
		defer stop()
		w := alert.NewWatcher(alert.Rule{
			Raise: *raise, Clear: *clear, MinPersistency: *minPeriods,
		})
		tn := client.New(*serverURL, nil).Tenant(*tenantNS)
		events, err := watchRemote(ctx, os.Stdin, os.Stdout, tn, w, *k, *periodItems)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigwatch:", err)
			os.Exit(1)
		}
		fmt.Printf("done: %d scans, %d alert events, %d still active\n",
			w.Scans(), events, w.Active())
		return
	}

	tr := sigstream.New(sigstream.Config{
		MemoryBytes: *memKB << 10,
		Weights:     sigstream.Weights{Alpha: *alpha, Beta: *beta},
	})
	w := alert.NewWatcher(alert.Rule{
		Raise: *raise, Clear: *clear, MinPersistency: *minPeriods,
	})
	keys := sigstream.NewKeyMap()

	intern := internKey(keys)
	if *flows {
		var err error
		intern, err = internFlow(*keyBy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sigwatch:", err)
			os.Exit(2)
		}
	}
	events, err := watch(os.Stdin, os.Stdout, tr, w, keys, intern, *k, *periodItems)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sigwatch:", err)
		os.Exit(1)
	}
	fmt.Printf("done: %d scans, %d alert events, %d still active\n",
		w.Scans(), events, w.Active())
}

// watch drives the tracker and watcher over the input, printing one line
// per alert transition. It returns the number of events emitted.
func watch(in io.Reader, out io.Writer, tr *sigstream.LTC, w *alert.Watcher,
	keys *sigstream.KeyMap, intern func(string) (sigstream.Item, error),
	k, periodItems int) (int, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	events := 0
	lastPeriod := -1

	endPeriod := func() {
		tr.EndPeriod()
		for _, ev := range w.Scan(toInternal(tr.TopK(k))) {
			events++
			fmt.Fprintf(out, "%s key=%s\n", ev, keys.Name(ev.Entry.Item))
		}
	}

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if p, err := strconv.Atoi(fields[1]); err == nil {
				if lastPeriod >= 0 && p != lastPeriod {
					endPeriod()
				}
				lastPeriod = p
			}
		} else if periodItems > 0 && count > 0 && count%periodItems == 0 {
			endPeriod()
		}
		item, err := intern(fields[0])
		if err != nil {
			return events, err
		}
		tr.Insert(item)
		count++
	}
	if err := sc.Err(); err != nil {
		return events, err
	}
	endPeriod()
	return events, nil
}

// remoteBatch is how many keys ship per insert request in -server mode.
const remoteBatch = 1000

// watchRemote drives a server-side tenant over the input: inserts ship in
// batches (backing off when throttled), each period boundary closes the
// remote period and scans the remote ranking for alert transitions. The
// context cancels in-flight requests on SIGINT/SIGTERM.
func watchRemote(ctx context.Context, in io.Reader, out io.Writer,
	tn *client.Tenant, w *alert.Watcher, k, periodItems int) (int, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	events := 0
	lastPeriod := -1
	batch := make([]string, 0, remoteBatch)

	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		for {
			_, err := tn.Insert(ctx, batch...)
			var te *client.ThrottledError
			if errors.As(err, &te) {
				select {
				case <-time.After(te.RetryAfter):
					continue
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			if err == nil {
				batch = batch[:0]
			}
			return err
		}
	}
	endPeriod := func() error {
		if err := flush(); err != nil {
			return err
		}
		if _, err := tn.EndPeriod(ctx); err != nil {
			return err
		}
		top, err := tn.TopK(ctx, k)
		if err != nil {
			return err
		}
		names := make(map[sigstream.Item]string, len(top))
		entries := make([]stream.Entry, len(top))
		for i, e := range top {
			item := sigstream.Item(e.Item)
			names[item] = e.Key
			entries[i] = stream.Entry{Item: item, Frequency: e.Frequency,
				Persistency: e.Persistency, Significance: e.Significance}
		}
		for _, ev := range w.Scan(entries) {
			events++
			fmt.Fprintf(out, "%s key=%s\n", ev, names[ev.Entry.Item])
		}
		return nil
	}

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		boundary := false
		if len(fields) >= 2 {
			if p, err := strconv.Atoi(fields[1]); err == nil {
				boundary = lastPeriod >= 0 && p != lastPeriod
				lastPeriod = p
			}
		} else if periodItems > 0 && count > 0 && count%periodItems == 0 {
			boundary = true
		}
		if boundary {
			if err := endPeriod(); err != nil {
				return events, err
			}
		}
		batch = append(batch, fields[0])
		count++
		if len(batch) >= remoteBatch {
			if err := flush(); err != nil {
				return events, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return events, err
	}
	if err := endPeriod(); err != nil {
		return events, err
	}
	return events, nil
}

// internKey interns plain string keys.
func internKey(keys *sigstream.KeyMap) func(string) (sigstream.Item, error) {
	return func(s string) (sigstream.Item, error) { return keys.Intern(s), nil }
}

// internFlow parses flow tuples and keys them by the chosen aggregation.
func internFlow(keyBy string) (func(string) (sigstream.Item, error), error) {
	var pick func(flowkey.Flow) sigstream.Item
	switch keyBy {
	case "src":
		pick = flowkey.Flow.KeySrc
	case "dst":
		pick = flowkey.Flow.KeyDst
	case "pair":
		pick = flowkey.Flow.KeyPair
	case "5tuple":
		pick = flowkey.Flow.KeyFiveTuple
	default:
		return nil, fmt.Errorf("unknown -key %q (want src, dst, pair or 5tuple)", keyBy)
	}
	return func(s string) (sigstream.Item, error) {
		f, err := flowkey.ParseFlow(s)
		if err != nil {
			return 0, err
		}
		return pick(f), nil
	}, nil
}

// toInternal converts public entries to the internal form the watcher uses.
func toInternal(es []sigstream.Entry) []stream.Entry {
	out := make([]stream.Entry, len(es))
	for i, e := range es {
		out[i] = stream.Entry{Item: e.Item, Frequency: e.Frequency,
			Persistency: e.Persistency, Significance: e.Significance}
	}
	return out
}
