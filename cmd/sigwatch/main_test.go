package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sigstream"
	"sigstream/internal/alert"
)

func setup(raise float64, minP uint64) (*sigstream.LTC, *alert.Watcher, *sigstream.KeyMap) {
	tr := sigstream.New(sigstream.Config{
		MemoryBytes: 32 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 100},
	})
	w := alert.NewWatcher(alert.Rule{Raise: raise, MinPersistency: minP})
	return tr, w, sigstream.NewKeyMap()
}

func TestWatchRaisesOnPersistentHeavyKey(t *testing.T) {
	tr, w, keys := setup(300, 2)
	var in strings.Builder
	// "bot" every period; "burst" only in period 0.
	for p := 0; p < 4; p++ {
		for i := 0; i < 50; i++ {
			in.WriteString("bot " + itoa(p) + "\n")
		}
		if p == 0 {
			for i := 0; i < 500; i++ {
				in.WriteString("burst 0\n")
			}
		}
	}
	var out bytes.Buffer
	events, err := watch(strings.NewReader(in.String()), &out, tr, w, keys, internKey(keys), 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no alert events")
	}
	text := out.String()
	if !strings.Contains(text, "RAISE") || !strings.Contains(text, "key=bot") {
		t.Fatalf("bot never raised:\n%s", text)
	}
	// The burst has significance 500+100 = 600 ≥ 300 but persistency 1 < 2:
	// it must never raise.
	if strings.Contains(text, "key=burst") {
		t.Fatalf("one-period burst raised:\n%s", text)
	}
}

func TestWatchClearsWhenTrafficStops(t *testing.T) {
	tr, w, keys := setup(200, 1)
	var in strings.Builder
	for i := 0; i < 300; i++ {
		in.WriteString("hot 0\n")
	}
	// Periods 1..2: a competing crowd pushes "hot" out while its decaying
	// significance stays — LTC keeps history, so instead drive eviction by
	// many distinct heavier items is slow; simply verify the raise, then
	// the final scan with no new arrivals keeps it active (history-based).
	in.WriteString("other 1\n")
	var out bytes.Buffer
	if _, err := watch(strings.NewReader(in.String()), &out, tr, w, keys, internKey(keys), 10, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "RAISE") {
		t.Fatalf("no raise:\n%s", out.String())
	}
	if w.Active() == 0 {
		t.Fatal("alert cleared although all-history significance persists")
	}
}

func TestWatchCountBasedPeriods(t *testing.T) {
	tr, w, keys := setup(150, 2)
	var in strings.Builder
	for i := 0; i < 100; i++ {
		in.WriteString("x\n") // 100 arrivals = 2 periods of 50
	}
	var out bytes.Buffer
	if _, err := watch(strings.NewReader(in.String()), &out, tr, w, keys, internKey(keys), 10, 50); err != nil {
		t.Fatal(err)
	}
	// One boundary before the 51st arrival plus the final flush at EOF
	// (the 100th arrival's boundary coincides with the end of input).
	if w.Scans() != 2 {
		t.Fatalf("scans = %d, want 2", w.Scans())
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}

func TestWatchFlowMode(t *testing.T) {
	tr, w, keys := setup(300, 2)
	intern, err := internFlow("src")
	if err != nil {
		t.Fatal(err)
	}
	var in strings.Builder
	for p := 0; p < 3; p++ {
		for i := 0; i < 100; i++ {
			// Same attacker source, varying ports: src aggregation unifies.
			fmt.Fprintf(&in, "10.0.0.9:%d>192.168.1.1:80/6 %d\n", 1000+i, p)
		}
	}
	var out bytes.Buffer
	if _, err := watch(strings.NewReader(in.String()), &out, tr, w, keys, intern, 10, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "RAISE") {
		t.Fatalf("attacker source not raised:\n%s", out.String())
	}
}

func TestInternFlowErrors(t *testing.T) {
	if _, err := internFlow("bogus"); err == nil {
		t.Fatal("unknown aggregation accepted")
	}
	intern, _ := internFlow("5tuple")
	if _, err := intern("not a flow"); err == nil {
		t.Fatal("bad flow accepted")
	}
}
