// Command sigcoord coordinates a fleet of sigserver nodes into one
// cluster-wide significance view.
//
// Usage:
//
//	sigcoord -addr :9090 -sites http://n1:8080,http://n2:8080,http://n3:8080 \
//	    -partitions 16 -replicas 2 -interval 2s
//
// Then:
//
//	curl -s 'localhost:9090/v1/topk?k=10'
//	curl -s localhost:9090/v1/cluster/status
//	curl -s localhost:9090/v1/stats
//	curl -s localhost:9090/metrics
//
// The coordinator owns no stream data. It derives the partition map from
// the member list (rendezvous hashing, so every process with the same
// -sites derives the same map), gathers each partition's checkpoint from
// its replica sites every -interval, merges exactly one replica image per
// partition, and commits the merged cluster view atomically. Producers
// write the same keys to all replicas of a partition (siggen -cluster
// does this); replication is for availability, not weight, and counts are
// never inflated by R.
//
// Failure behavior: remote calls carry -fetch-timeout deadlines and
// retry transient failures with capped exponential backoff under full
// jitter; corrupt checkpoints are never retried. A site failing
// -breaker-trip consecutive rounds has its circuit breaker opened and
// costs nothing until a -breaker-cooldown readiness probe passes. A
// partition is healthy when at least ⌈R/2⌉ replicas report; when any
// partition loses quorum the round does not commit and the previous view
// keeps serving, marked stale with its age. A restarted node rejoins
// automatically on its next passed probe; a restarted coordinator
// rebuilds the view from the sites within one round.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sigstream/internal/cluster"
	"sigstream/internal/coord"
	"sigstream/internal/obs"
)

func main() {
	var (
		addr         = flag.String("addr", ":9090", "listen address")
		sites        = flag.String("sites", "", "comma-separated sigserver base URLs (required)")
		partitions   = flag.Int("partitions", 16, "partition count P")
		replicas     = flag.Int("replicas", 2, "replication factor R (capped at the site count)")
		interval     = flag.Duration("interval", 2*time.Second, "gather cadence")
		fetchTimeout = flag.Duration("fetch-timeout", 2*time.Second, "deadline on every remote call")
		attempts     = flag.Int("retry-attempts", 4, "fetch tries per site per round")
		retryBase    = flag.Duration("retry-base", 50*time.Millisecond, "backoff ceiling after the first failure (doubles per failure)")
		retryMax     = flag.Duration("retry-max", time.Second, "backoff ceiling cap")
		breakerTrip  = flag.Int("breaker-trip", 3, "consecutive failed rounds before a site's breaker opens")
		breakerCool  = flag.Duration("breaker-cooldown", 5*time.Second, "wait before an open breaker probes the site's readiness")
		resolve      = flag.Int("resolve", 64, "top items per partition whose keys are resolved for display (negative disables)")
		closePeriods = flag.Bool("close-periods", false, "drive period boundaries: close every partition's period before each gather")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		slow         = flag.Duration("slow", 0, "slow-request log threshold (0 disables)")
	)
	flag.Parse()

	siteList := splitSites(*sites)
	if len(siteList) == 0 {
		log.Fatal("sigcoord: -sites is required (comma-separated sigserver base URLs)")
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		log.Fatalf("sigcoord: bad -log-level %q: %v", *logLevel, err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	c, err := coord.New(coord.Config{
		Sites:        siteList,
		Partitions:   *partitions,
		Replicas:     *replicas,
		Interval:     *interval,
		FetchTimeout: *fetchTimeout,
		Retry: cluster.RetryPolicy{
			Attempts:  *attempts,
			BaseDelay: *retryBase,
			MaxDelay:  *retryMax,
		},
		Breaker: cluster.BreakerConfig{
			Trip:     *breakerTrip,
			Cooldown: *breakerCool,
		},
		ResolveNames: *resolve,
		ClosePeriods: *closePeriods,
		Logger:       logger,
	})
	if err != nil {
		log.Fatalf("sigcoord: %v", err)
	}

	topo := c.Topology()
	logger.Info("sigcoord starting",
		"addr", *addr,
		"sites", len(topo.Sites()),
		"partitions", topo.Partitions(),
		"replicas", topo.Replicas(),
		"quorum", topo.Quorum(),
		"interval", *interval,
		"close_periods", *closePeriods)

	c.Start()
	srv := &http.Server{
		Addr:    *addr,
		Handler: obs.LogRequests(logger, *slow, c),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("sigcoord: %v", err)
	case <-ctx.Done():
		stop()
		logger.Info("sigcoord shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("sigcoord: drain incomplete", "err", err)
		}
		if err := c.Close(); err != nil {
			logger.Error("sigcoord: close", "err", err)
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("sigcoord: listener", "err", err)
		}
		logger.Info("sigcoord stopped")
	}
}

// splitSites parses the -sites list, trimming blanks so a trailing comma
// is harmless.
func splitSites(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if trimmed := strings.TrimSpace(part); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}
