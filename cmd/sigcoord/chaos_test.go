// Multi-process chaos matrix: real sigserver and sigcoord binaries, real
// TCP, real kill -9. The in-process fault-injection suites (internal/
// cluster, internal/coord) cover the fine-grained failure modes; this
// file proves the acceptance scenario end to end — a three-node cluster
// at R=2 keeps answering /v1/topk with at least 90% of the keyset through
// the SIGKILL of any node, reports the dead site, and heals when the node
// returns. The tests build binaries and run seconds of wall clock, so
// they skip under -short.
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sigstream/internal/client"
	"sigstream/internal/cluster"
)

// buildBinaries compiles sigserver and sigcoord once into a temp dir.
func buildBinaries(t *testing.T) (sigserver, sigcoord string) {
	t.Helper()
	dir := t.TempDir()
	sigserver = filepath.Join(dir, "sigserver")
	sigcoord = filepath.Join(dir, "sigcoord")
	for bin, pkg := range map[string]string{
		sigserver: "sigstream/cmd/sigserver",
		sigcoord:  "sigstream/cmd/sigcoord",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = moduleRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return sigserver, sigcoord
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// freePort reserves an ephemeral port and releases it for the process
// under test.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// proc is one managed child process.
type proc struct {
	cmd *exec.Cmd
}

// startProc launches bin and guarantees cleanup kill.
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if testing.Verbose() {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", filepath.Base(bin), err)
	}
	p := &proc{cmd: cmd}
	t.Cleanup(p.kill)
	return p
}

// kill SIGKILLs the process and reaps it; safe to call twice.
func (p *proc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_, _ = p.cmd.Process.Wait()
	}
}

// clusterUnderTest is three sigserver processes plus one sigcoord.
type clusterUnderTest struct {
	sigserver, sigcoord string
	nodeAddrs           []string // host:port
	sites               []string // http://host:port
	snapDirs            []string
	nodes               []*proc
	coordAddr           string
	coordProc           *proc
	topo                *cluster.Topology
}

const (
	chaosPartitions = 8
	chaosReplicas   = 2
	chaosKeys       = 200
)

// startCluster builds binaries, launches 3 nodes and the coordinator,
// and waits for everything to come ready.
func startCluster(t *testing.T) *clusterUnderTest {
	t.Helper()
	cu := &clusterUnderTest{}
	cu.sigserver, cu.sigcoord = buildBinaries(t)
	for i := 0; i < 3; i++ {
		addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
		cu.nodeAddrs = append(cu.nodeAddrs, addr)
		cu.sites = append(cu.sites, "http://"+addr)
		cu.snapDirs = append(cu.snapDirs, t.TempDir())
		cu.nodes = append(cu.nodes, cu.startNode(t, i))
	}
	for _, site := range cu.sites {
		waitFor(t, site+"/readyz", http.StatusOK, 15*time.Second)
	}
	topo, err := cluster.NewTopology(cu.sites, chaosPartitions, chaosReplicas)
	if err != nil {
		t.Fatal(err)
	}
	cu.topo = topo

	cu.coordAddr = fmt.Sprintf("127.0.0.1:%d", freePort(t))
	cu.coordProc = cu.startCoord(t)
	waitFor(t, "http://"+cu.coordAddr+"/healthz", http.StatusOK, 15*time.Second)
	return cu
}

// startNode launches node i on its fixed address and snapshot dir, so a
// restart is the same node rejoining, state included.
func (cu *clusterUnderTest) startNode(t *testing.T, i int) *proc {
	t.Helper()
	return startProc(t, cu.sigserver,
		"-addr", cu.nodeAddrs[i],
		"-mem", "262144",
		"-tenant-mem", "65536",
		"-snapshot-dir", cu.snapDirs[i],
		"-snapshot-interval", "200ms",
		"-log-level", "error",
	)
}

// startCoord launches the coordinator against the full site list.
func (cu *clusterUnderTest) startCoord(t *testing.T) *proc {
	t.Helper()
	return startProc(t, cu.sigcoord,
		"-addr", cu.coordAddr,
		"-sites", strings.Join(cu.sites, ","),
		"-partitions", fmt.Sprint(chaosPartitions),
		"-replicas", fmt.Sprint(chaosReplicas),
		"-interval", "150ms",
		"-fetch-timeout", "1s",
		"-retry-attempts", "2",
		"-retry-base", "20ms",
		"-breaker-trip", "2",
		"-breaker-cooldown", "300ms",
		"-close-periods",
		"-log-level", "error",
	)
}

// load writes chaosKeys keys to every replica of their partition.
func (cu *clusterUnderTest) load(t *testing.T) {
	t.Helper()
	ctx := t.Context()
	httpc := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < chaosKeys; i++ {
		key := fmt.Sprintf("key-%03d", i)
		p := cu.topo.PartitionKey(key)
		ns := cluster.PartitionNamespace(p)
		for _, site := range cu.topo.ReplicaSites(p) {
			c := client.New(site, httpc)
			if _, err := c.Tenant(ns).Insert(ctx, key); err != nil {
				t.Fatalf("insert %q on %s: %v", key, site, err)
			}
		}
	}
}

// topk fetches the coordinator's view, returning the keyset and status.
func (cu *clusterUnderTest) topk(t *testing.T) (map[string]bool, int) {
	t.Helper()
	resp, err := http.Get("http://" + cu.coordAddr + "/v1/topk?k=1000")
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var view struct {
		Entries []struct {
			Key string `json:"key"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode topk: %v", err)
	}
	keys := make(map[string]bool, len(view.Entries))
	for _, e := range view.Entries {
		keys[e.Key] = true
	}
	return keys, resp.StatusCode
}

// status fetches the coordinator's cluster status via the typed client.
func (cu *clusterUnderTest) status(t *testing.T) (client.ClusterStatus, error) {
	t.Helper()
	c := client.New("http://"+cu.coordAddr, &http.Client{Timeout: 5 * time.Second})
	return c.ClusterStatus(t.Context())
}

// recall is the fraction of the loaded keyset present in the view.
func recall(keys map[string]bool) float64 {
	hit := 0
	for i := 0; i < chaosKeys; i++ {
		if keys[fmt.Sprintf("key-%03d", i)] {
			hit++
		}
	}
	return float64(hit) / chaosKeys
}

// waitFor polls url until it answers want.
func waitFor(t *testing.T, url string, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s to answer %d (last err %v)", url, want, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitForView polls the coordinator until the view reaches the wanted
// recall.
func (cu *clusterUnderTest) waitForView(t *testing.T, minRecall float64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		keys, code := cu.topk(t)
		if code == http.StatusOK && recall(keys) >= minRecall {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("view never reached recall %.2f (last: %d keys, status %d)",
				minRecall, len(keys), code)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosClusterNodeDeathMatrix is the acceptance scenario: with three
// nodes at R=2, kill -9 of each node in turn must leave /v1/topk
// answering with at least 90% of the keyset (the 0.10 accuracy gate),
// the dead site visible in /v1/cluster/status, and the restarted node
// rejoining automatically.
func TestChaosClusterNodeDeathMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos matrix: skipped under -short")
	}
	cu := startCluster(t)
	cu.load(t)
	cu.waitForView(t, 1.0, 20*time.Second)

	for victim := range cu.nodes {
		t.Logf("killing node %d (%s)", victim, cu.sites[victim])
		cu.nodes[victim].kill()

		// The dead site must surface in status within a few rounds.
		deadline := time.Now().Add(15 * time.Second)
		for {
			st, err := cu.status(t)
			if err == nil && st.Round != nil {
				unhealthy := false
				for _, s := range st.Round.Sites {
					if s.Site == cu.sites[victim] && s.Health != "healthy" {
						unhealthy = true
					}
				}
				if unhealthy {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d death never surfaced in /v1/cluster/status", victim)
			}
			time.Sleep(50 * time.Millisecond)
		}

		// Availability through the death: the view keeps serving within
		// the accuracy gate. Every partition keeps a live replica at
		// R=2, so in practice recall stays 1.0; the gate allows 0.90.
		keys, code := cu.topk(t)
		if code != http.StatusOK {
			t.Fatalf("topk unavailable after node %d death: status %d", victim, code)
		}
		if r := recall(keys); r < 0.90 {
			t.Fatalf("recall %.2f after node %d death, want >= 0.90", r, victim)
		}

		// Restart: same address, same snapshot dir. The breaker must
		// probe it back in and the site report healthy again.
		cu.nodes[victim] = cu.startNode(t, victim)
		waitFor(t, cu.sites[victim]+"/readyz", http.StatusOK, 15*time.Second)
		deadline = time.Now().Add(15 * time.Second)
		for {
			st, err := cu.status(t)
			healthy := 0
			if err == nil && st.Round != nil {
				for _, s := range st.Round.Sites {
					if s.Health == "healthy" {
						healthy++
					}
				}
			}
			if healthy == len(cu.sites) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never rejoined: %d/%d healthy", victim, healthy, len(cu.sites))
			}
			time.Sleep(50 * time.Millisecond)
		}
		cu.waitForView(t, 1.0, 15*time.Second)
	}
}

// TestChaosClusterCoordinatorDeath SIGKILLs the coordinator itself and
// restarts it: the replacement must rebuild the full view from the sites
// within a round, because the sites — not the coordinator — own the data.
func TestChaosClusterCoordinatorDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos matrix: skipped under -short")
	}
	cu := startCluster(t)
	cu.load(t)
	cu.waitForView(t, 1.0, 20*time.Second)

	cu.coordProc.kill()
	cu.coordAddr = fmt.Sprintf("127.0.0.1:%d", freePort(t))
	cu.coordProc = cu.startCoord(t)
	waitFor(t, "http://"+cu.coordAddr+"/healthz", http.StatusOK, 15*time.Second)
	cu.waitForView(t, 1.0, 20*time.Second)

	st, err := cu.status(t)
	if err != nil {
		t.Fatal(err)
	}
	if st.View == nil || st.View.Epoch < 1 {
		t.Fatalf("restarted coordinator has no committed view: %+v", st.View)
	}
}
