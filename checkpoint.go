package sigstream

import (
	"errors"
	"fmt"
)

// ErrNoCheckpoints reports an empty checkpoint list.
var ErrNoCheckpoints = errors.New("sigstream: no checkpoints to merge")

// MergeCheckpoints restores each binary checkpoint (as produced by
// LTC.MarshalBinary) and folds them into a single tracker — the one-call
// aggregation path for per-site summaries. All checkpoints must come from
// trackers built with the same Config.
func MergeCheckpoints(images ...[]byte) (*LTC, error) {
	if len(images) == 0 {
		return nil, ErrNoCheckpoints
	}
	root := New(Config{})
	if err := root.UnmarshalBinary(images[0]); err != nil {
		return nil, fmt.Errorf("checkpoint 0: %w", err)
	}
	for i, img := range images[1:] {
		shard := New(Config{})
		if err := shard.UnmarshalBinary(img); err != nil {
			return nil, fmt.Errorf("checkpoint %d: %w", i+1, err)
		}
		if err := root.Merge(shard); err != nil {
			return nil, fmt.Errorf("checkpoint %d: %w", i+1, err)
		}
	}
	return root, nil
}

// MergeShardedCheckpoints restores each binary checkpoint (as produced by
// Sharded.MarshalBinary, and as served by sigserver's checkpoint route)
// and folds them shard by shard into a single Sharded tracker — the
// aggregation path a cluster coordinator uses on images pulled from
// remote sites. All checkpoints must come from trackers built with the
// same Config and shard count: shard i of every image merges into shard i
// of the result, preserving the hash partition, so the merged tracker
// answers TopK and Query exactly as one tracker that saw every site's
// arrivals. The images are decoded fresh and owned exclusively here, so
// no locks are taken during the merge.
func MergeShardedCheckpoints(images ...[]byte) (*Sharded, error) {
	if len(images) == 0 {
		return nil, ErrNoCheckpoints
	}
	root := new(Sharded)
	if err := root.UnmarshalBinary(images[0]); err != nil {
		return nil, fmt.Errorf("checkpoint 0: %w", err)
	}
	for i, img := range images[1:] {
		next := new(Sharded)
		if err := next.UnmarshalBinary(img); err != nil {
			return nil, fmt.Errorf("checkpoint %d: %w", i+1, err)
		}
		if len(next.shards) != len(root.shards) {
			return nil, fmt.Errorf("checkpoint %d: %d shards, want %d",
				i+1, len(next.shards), len(root.shards))
		}
		for s := range root.shards {
			if err := root.shards[s].l.Merge(next.shards[s].l); err != nil {
				return nil, fmt.Errorf("checkpoint %d shard %d: %w", i+1, s, err)
			}
		}
	}
	return root, nil
}
