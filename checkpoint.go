package sigstream

import (
	"errors"
	"fmt"
)

// ErrNoCheckpoints reports an empty checkpoint list.
var ErrNoCheckpoints = errors.New("sigstream: no checkpoints to merge")

// MergeCheckpoints restores each binary checkpoint (as produced by
// LTC.MarshalBinary) and folds them into a single tracker — the one-call
// aggregation path for per-site summaries. All checkpoints must come from
// trackers built with the same Config.
func MergeCheckpoints(images ...[]byte) (*LTC, error) {
	if len(images) == 0 {
		return nil, ErrNoCheckpoints
	}
	root := New(Config{})
	if err := root.UnmarshalBinary(images[0]); err != nil {
		return nil, fmt.Errorf("checkpoint 0: %w", err)
	}
	for i, img := range images[1:] {
		shard := New(Config{})
		if err := shard.UnmarshalBinary(img); err != nil {
			return nil, fmt.Errorf("checkpoint %d: %w", i+1, err)
		}
		if err := root.Merge(shard); err != nil {
			return nil, fmt.Errorf("checkpoint %d: %w", i+1, err)
		}
	}
	return root, nil
}
