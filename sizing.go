package sigstream

import (
	"sigstream/internal/ltc"
	"sigstream/internal/theory"
)

// Workload describes a stream for memory-sizing purposes. Get the numbers
// from a sample of your data (cmd/sigcheck reports all three).
type Workload struct {
	// Arrivals is the expected stream length N.
	Arrivals int
	// Distinct is the expected number of distinct items M.
	Distinct int
	// Skew is the Zipf exponent γ of the frequency distribution
	// (cmd/sigcheck fits it; 1.0 is a typical network trace).
	Skew float64
}

// SuggestMemoryBytes returns the smallest LTC memory budget whose
// theoretical correct-rate lower bound (paper Section IV-B) reaches
// targetCorrectRate for top-k queries on the described workload, assuming
// the default bucket width. It returns 0 when no budget up to 1 GiB
// suffices (implausible inputs) — fall back to measuring with
// cmd/sigbench -trace on a sample.
//
// The bound is conservative: real precision at the suggested budget is
// typically higher (see EXPERIMENTS.md, Fig 7a).
func SuggestMemoryBytes(w Workload, k int, targetCorrectRate float64) int {
	if w.Arrivals <= 0 || w.Distinct <= 0 || k <= 0 {
		return 0
	}
	// Cap the analytic universe: ranks far beyond 4·k contribute nothing
	// but DP time. ExpectedV-style tail mass still matters for the bound's
	// π terms, so keep a healthy margin.
	m := w.Distinct
	if m > 200_000 {
		m = 200_000
	}
	model := theory.Model{
		N: w.Arrivals, M: m, Gamma: w.Skew,
		D: ltc.DefaultBucketWidth, Alpha: 1,
	}
	const wMax = 1 << 30 / (ltc.CellBytes * ltc.DefaultBucketWidth) // 1 GiB
	buckets := model.SuggestW(k, targetCorrectRate, wMax)
	if buckets == 0 {
		return 0
	}
	return buckets * ltc.DefaultBucketWidth * ltc.CellBytes
}
