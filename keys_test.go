package sigstream

import (
	"fmt"
	"testing"
)

func TestBoundedKeyMapEvictsLRU(t *testing.T) {
	m := NewBoundedKeyMap(2)
	a := m.Intern("a")
	b := m.Intern("b")
	// Touch a so b becomes the LRU.
	if _, ok := m.Lookup(a); !ok {
		t.Fatal("a lost early")
	}
	c := m.Intern("c") // evicts b
	if _, ok := m.Lookup(b); ok {
		t.Fatal("LRU entry b not evicted")
	}
	if _, ok := m.Lookup(a); !ok {
		t.Fatal("recently-used a evicted")
	}
	if _, ok := m.Lookup(c); !ok {
		t.Fatal("new entry c missing")
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
}

func TestBoundedKeyMapReinternRefreshes(t *testing.T) {
	m := NewBoundedKeyMap(2)
	m.Intern("a")
	m.Intern("b")
	m.Intern("a") // refresh a; b is now LRU
	m.Intern("c")
	if _, ok := m.Lookup(HashKey("b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := m.Lookup(HashKey("a")); !ok {
		t.Fatal("refreshed a evicted")
	}
}

func TestBoundedKeyMapNameFallsBackToHex(t *testing.T) {
	m := NewBoundedKeyMap(1)
	m.Intern("x")
	m.Intern("y") // evicts x
	name := m.Name(HashKey("x"))
	if name == "x" {
		t.Fatal("evicted key still resolved")
	}
	if len(name) != 18 || name[:2] != "0x" {
		t.Fatalf("hex fallback malformed: %q", name)
	}
	if m.Name(HashKey("y")) != "y" {
		t.Fatal("live key misresolved")
	}
}

func TestBoundedKeyMapMinimumCapacity(t *testing.T) {
	m := NewBoundedKeyMap(0)
	if m.Cap() != 1 {
		t.Fatalf("cap = %d, want floor 1", m.Cap())
	}
	m.Intern("a")
	m.Intern("b")
	if m.Len() != 1 {
		t.Fatalf("len = %d, want 1", m.Len())
	}
}

func TestBoundedKeyMapChurn(t *testing.T) {
	// Heavy churn must keep the list and map consistent.
	m := NewBoundedKeyMap(16)
	for i := 0; i < 10000; i++ {
		m.Intern(fmt.Sprintf("key-%d", i%100))
	}
	if m.Len() > 16 {
		t.Fatalf("len %d exceeds cap", m.Len())
	}
	// Walk the LRU list and confirm it matches the map.
	count := 0
	for e := m.head; e != nil; e = e.next {
		if got, ok := m.names[e.item]; !ok || got != e {
			t.Fatal("list/map divergence")
		}
		count++
	}
	if count != m.Len() {
		t.Fatalf("list holds %d, map holds %d", count, m.Len())
	}
}
