package sigstream

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// shardedMagic identifies a Sharded checkpoint ("SGSH").
const shardedMagic = 0x48534753

// ErrBadShardedCheckpoint reports a corrupt Sharded checkpoint image.
var ErrBadShardedCheckpoint = errors.New("sigstream: bad sharded checkpoint")

// MarshalBinary snapshots every shard into one image
// (encoding.BinaryMarshaler). Safe to call concurrently with Insert.
func (s *Sharded) MarshalBinary() ([]byte, error) {
	images := make([][]byte, len(s.shards))
	total := 8 // magic + count
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		img, err := sh.l.MarshalBinary()
		sh.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		images[i] = img
		total += 4 + len(img)
	}
	buf := make([]byte, 0, total)
	buf = binary.LittleEndian.AppendUint32(buf, shardedMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(images)))
	for _, img := range images {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(img)))
		buf = append(buf, img...)
	}
	return buf, nil
}

// UnmarshalBinary restores a Sharded tracker from a MarshalBinary image
// (encoding.BinaryUnmarshaler). The receiver's shard count and contents are
// replaced. Not safe to call concurrently with other operations.
func (s *Sharded) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("%w: short header", ErrBadShardedCheckpoint)
	}
	if binary.LittleEndian.Uint32(data) != shardedMagic {
		return fmt.Errorf("%w: bad magic", ErrBadShardedCheckpoint)
	}
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if n < 1 || n > 1<<16 {
		return fmt.Errorf("%w: implausible shard count %d", ErrBadShardedCheckpoint, n)
	}
	off := 8
	shards := make([]shard, n)
	for i := 0; i < n; i++ {
		if off+4 > len(data) {
			return fmt.Errorf("%w: truncated at shard %d", ErrBadShardedCheckpoint, i)
		}
		size := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if size < 0 || off+size > len(data) {
			return fmt.Errorf("%w: shard %d overruns image", ErrBadShardedCheckpoint, i)
		}
		inner := New(Config{})
		if err := inner.UnmarshalBinary(data[off : off+size]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		shards[i].l = inner.l
		off += size
	}
	if off != len(data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadShardedCheckpoint, len(data)-off)
	}
	s.shards = shards
	return nil
}

var (
	_ interface {
		MarshalBinary() ([]byte, error)
		UnmarshalBinary([]byte) error
	} = (*Sharded)(nil)
)
