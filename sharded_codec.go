package sigstream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// shardedMagic identifies a Sharded checkpoint ("SGSH").
const shardedMagic = 0x48534753

// ErrBadShardedCheckpoint reports a corrupt Sharded checkpoint image.
var ErrBadShardedCheckpoint = errors.New("sigstream: bad sharded checkpoint")

// EncodeTo streams a checkpoint of every shard to w, shard by shard, so
// persistence layers (snapshots, tenant spill envelopes, the WAL restore
// record) never hold more than one shard's image in memory on top of the
// writer's own buffering. Safe to call concurrently with Insert. The wire
// format is identical to MarshalBinary:
//
//	offset  size  field
//	0       4     magic "SGSH"
//	4       4     shard count n
//	8       …     n × (u32 length | shard LTC image)
func (s *Sharded) EncodeTo(w io.Writer) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], shardedMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(s.shards)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var lenBuf [4]byte
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		img, err := sh.l.MarshalBinary()
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(img)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := w.Write(img); err != nil {
			return err
		}
	}
	return nil
}

// DecodeFrom restores a Sharded tracker from an EncodeTo stream, reading
// exactly one checkpoint and nothing past it. The receiver's shard count
// and contents are replaced. Not safe to call concurrently with other
// operations. A declared shard size is read incrementally, so a forged
// multi-gigabyte length fails on the short read instead of driving a
// matching allocation.
func (s *Sharded) DecodeFrom(r io.Reader) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: short header", ErrBadShardedCheckpoint)
	}
	if binary.LittleEndian.Uint32(hdr[:]) != shardedMagic {
		return fmt.Errorf("%w: bad magic", ErrBadShardedCheckpoint)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	if n < 1 || n > 1<<16 {
		return fmt.Errorf("%w: implausible shard count %d", ErrBadShardedCheckpoint, n)
	}
	shards := make([]shard, n)
	var buf bytes.Buffer
	var lenBuf [4]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return fmt.Errorf("%w: truncated at shard %d", ErrBadShardedCheckpoint, i)
		}
		size := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		buf.Reset()
		if _, err := io.CopyN(&buf, r, size); err != nil {
			return fmt.Errorf("%w: shard %d overruns image", ErrBadShardedCheckpoint, i)
		}
		inner := New(Config{})
		if err := inner.UnmarshalBinary(buf.Bytes()); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		shards[i].l = inner.l
	}
	s.shards = shards
	return nil
}

// MarshalBinary snapshots every shard into one image
// (encoding.BinaryMarshaler); a thin wrapper over EncodeTo. Safe to call
// concurrently with Insert.
func (s *Sharded) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.EncodeTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores a Sharded tracker from a MarshalBinary image
// (encoding.BinaryUnmarshaler); a thin wrapper over DecodeFrom that also
// rejects trailing bytes. Not safe to call concurrently with other
// operations.
func (s *Sharded) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	var tmp Sharded
	if err := tmp.DecodeFrom(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadShardedCheckpoint, r.Len())
	}
	s.shards = tmp.shards
	return nil
}

var (
	_ interface {
		MarshalBinary() ([]byte, error)
		UnmarshalBinary([]byte) error
	} = (*Sharded)(nil)
)
