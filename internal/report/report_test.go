package report

import (
	"strings"
	"testing"

	"sigstream/internal/exp"
)

func sample() exp.Result {
	return exp.Result{
		Figure:    "9",
		Title:     "demo | title",
		PaperNote: "LTC wins",
		Rows: []exp.Row{
			{Dataset: "D", Series: "LTC", X: "10KB", Metric: "precision", Value: 0.99},
			{Dataset: "D", Series: "CM", X: "10KB", Metric: "precision", Value: 0.50},
			{Dataset: "D", Series: "LTC", X: "10KB", Metric: "ARE", Value: 0.001},
			{Dataset: "D", Series: "CM", X: "10KB", Metric: "ARE", Value: 25},
		},
	}
}

func TestSummarizeBestWorst(t *testing.T) {
	s := Summarize(sample())
	// Precision: best LTC; ARE: best LTC (lower is better).
	if !strings.Contains(s, "precision: best LTC") {
		t.Fatalf("precision summary wrong: %s", s)
	}
	if !strings.Contains(s, "ARE: best LTC") {
		t.Fatalf("ARE summary must invert ordering: %s", s)
	}
	if !strings.Contains(s, "worst CM") {
		t.Fatalf("worst series missing: %s", s)
	}
}

func TestSummarizeSingleSeries(t *testing.T) {
	r := exp.Result{Rows: []exp.Row{
		{Series: "LTC", Metric: "precision", Value: 0.9},
	}}
	if s := Summarize(r); !strings.Contains(s, "LTC 0.9") {
		t.Fatalf("single-series summary wrong: %s", s)
	}
}

func TestGenerateStructure(t *testing.T) {
	md := Generate([]exp.Result{sample()}, "quick")
	for _, want := range []string{
		"# sigstream evaluation report",
		"Scale: **quick**",
		"| Figure | Paper | Measured summary | Elapsed |",
		"## Figure 9",
		"*Paper:* LTC wins",
		"| D | LTC | 10KB | precision | 0.99 |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("missing %q in report:\n%s", want, md)
		}
	}
	// Pipes in titles must be escaped so the summary table stays intact.
	if !strings.Contains(md, `demo \| title`) {
		t.Fatal("pipe escaping missing")
	}
}

func TestGenerateOnRealFigure(t *testing.T) {
	sc := exp.Scale{CAIDA: 30000, Network: 30000, Social: 30000, Zipf: 30000,
		Seed: 1, Quick: true}
	r := exp.DSweep(sc)
	md := Generate([]exp.Result{r}, "tiny")
	if !strings.Contains(md, "d=8") {
		t.Fatalf("real figure rows missing:\n%s", md[:300])
	}
}
