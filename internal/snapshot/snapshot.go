// Package snapshot gives a serving tracker crash safety: a Snapshotter
// periodically checkpoints an opaque payload (the tracker's MarshalBinary
// image) to disk, and Recover finds the newest intact checkpoint after a
// restart — including a kill -9 mid-write, a full disk, or a torn rename.
//
// Durability discipline: every snapshot is written to a temp file in the
// target directory, fsynced, closed, renamed into place, and the directory
// is fsynced so the rename itself survives power loss. A reader can
// therefore trust any file with the final name — except one corrupted at
// rest, which is why every frame carries a CRC32 trailer (format below).
// Recovery walks snapshots newest-first and skips, with a logged reason,
// anything torn, truncated, or bit-flipped, so one bad file costs one
// interval of history, never the whole state.
//
// Frame format (little-endian):
//
//	offset  size  field
//	0       4     magic "SSN1"
//	4       8     payload length n
//	12      n     payload (opaque to this package)
//	12+n    4     CRC32 (IEEE) over bytes [0, 12+n)
//
// Files are named snap-<seq>.ssnap with a zero-padded hexadecimal
// sequence number, so lexical order is age order and the newest snapshot
// is the highest name; sequence numbering resumes past any existing file
// after a restart.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sigstream/internal/fault"
)

const (
	magic       = "SSN1"
	headerSize  = 12
	trailerSize = 4

	prefix = "snap-"
	suffix = ".ssnap"

	// DefaultRetain is how many snapshots Snapshotter keeps when
	// Options.Retain is zero.
	DefaultRetain = 3
)

// ErrCorrupt tags every frame validation failure, so callers can
// errors.Is one sentinel instead of matching reason strings.
var ErrCorrupt = errors.New("snapshot: corrupt frame")

// Encode frames payload for disk: magic, length, payload, CRC32 trailer.
func Encode(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload)+trailerSize)
	copy(buf, magic)
	binary.LittleEndian.PutUint64(buf[4:], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	sum := crc32.ChecksumIEEE(buf[:headerSize+len(payload)])
	binary.LittleEndian.PutUint32(buf[headerSize+len(payload):], sum)
	return buf
}

// Decode validates one frame and returns its payload. The payload aliases
// data; callers that outlive data must copy. Every failure wraps
// ErrCorrupt with the specific reason (short frame, bad magic, length
// mismatch, checksum mismatch) — the length is checked against the actual
// frame size before any slicing, so a forged multi-gigabyte length field
// cannot drive an allocation or an out-of-range read.
func Decode(data []byte) ([]byte, error) {
	if len(data) < headerSize+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d",
			ErrCorrupt, len(data), headerSize+trailerSize)
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	n := binary.LittleEndian.Uint64(data[4:])
	if n != uint64(len(data)-headerSize-trailerSize) {
		return nil, fmt.Errorf("%w: declared payload %d bytes, frame carries %d",
			ErrCorrupt, n, len(data)-headerSize-trailerSize)
	}
	body := data[:headerSize+n]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(data[headerSize+n:]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return data[headerSize : headerSize+n], nil
}

// WriteFileTo is the streaming counterpart of WriteFile: instead of a
// materialized payload it takes a function that streams the payload into
// an io.Writer (for example Sharded.EncodeTo), so a large tracker image
// goes to disk without ever existing as one []byte. The frame is built
// in place — payload bytes land at their final offset while a running
// CRC accumulates, then the header is patched in and the trailer checksum
// derived by CRC combination — and the write keeps the full crash
// discipline (temp file, fsync, rename, directory fsync). It returns the
// written file name.
func WriteFileTo(dir string, seq uint64, write func(io.Writer) error) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	name := FileName(seq)
	if err := writeAtomicTo(dir, name, write); err != nil {
		return "", err
	}
	return name, nil
}

// writeAtomicTo streams a frame to dir/name with the same crash
// discipline as writeAtomic. The payload is written at its final offset
// behind a placeholder header; once its length and CRC are known the
// header is patched and the trailer appended, with the frame checksum
// assembled as combine(crc(header), crc(payload)) so the payload is
// never re-read or buffered.
func writeAtomicTo(dir, name string, write func(io.Writer) error) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := fault.Inject(fault.SnapshotWrite, 0); err != nil {
		// Model a mid-write crash: the placeholder header lands (a torn
		// file) and the write is refused.
		var hdr [headerSize]byte
		copy(hdr[:], magic)
		_, _ = f.Write(hdr[:headerSize/2])
		return fail(fmt.Errorf("snapshot: write %s: %w", f.Name(), err))
	}
	var hdr [headerSize]byte
	if _, err := f.Write(hdr[:]); err != nil {
		return fail(fmt.Errorf("snapshot: write %s: %w", f.Name(), err))
	}
	cw := &crcWriter{w: f, sum: crc32.NewIEEE()}
	if err := write(cw); err != nil {
		return fail(fmt.Errorf("snapshot: write %s: %w", f.Name(), err))
	}
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(cw.n))
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fail(fmt.Errorf("snapshot: write %s: %w", f.Name(), err))
	}
	frameSum := crc32Combine(crc32.ChecksumIEEE(hdr[:]), cw.sum.Sum32(), cw.n)
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint32(trailer[:], frameSum)
	if _, err := f.Write(trailer[:]); err != nil {
		return fail(fmt.Errorf("snapshot: write %s: %w", f.Name(), err))
	}
	if err := syncFile(f); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := renameFile(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// crcWriter tees writes into a running CRC32 and counts payload bytes.
type crcWriter struct {
	w   io.Writer
	sum hash.Hash32
	n   int64
}

// Write implements io.Writer.
func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if n > 0 {
		// hash.Hash.Write is documented to never return an error.
		_, _ = c.sum.Write(p[:n])
		c.n += int64(n)
	}
	return n, err
}

// crc32Combine returns the CRC32 (IEEE) of the concatenation A‖B given
// crc1 = CRC(A), crc2 = CRC(B) and len2 = len(B) — zlib's crc32_combine,
// which advances crc1 through len2 zero bytes by GF(2) matrix squaring
// and folds crc2 in. This is what lets writeAtomicTo checksum a frame
// whose header is only known after the payload streamed through.
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1 ^ crc2
	}
	var even, odd [32]uint32
	odd[0] = crc32.IEEE // reflected polynomial: operator for one zero bit
	row := uint32(1)
	for n := 1; n < 32; n++ {
		odd[n] = row
		row <<= 1
	}
	gf2MatrixSquare(&even, &odd) // two zero bits
	gf2MatrixSquare(&odd, &even) // four zero bits
	for {
		gf2MatrixSquare(&even, &odd)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&even, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&odd, crc1)
		}
		len2 >>= 1
	}
	return crc1 ^ crc2
}

// gf2MatrixTimes multiplies the GF(2) matrix mat by the vector vec.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; vec >>= 1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		i++
	}
	return sum
}

// gf2MatrixSquare sets square to mat·mat over GF(2).
func gf2MatrixSquare(square, mat *[32]uint32) {
	for n := 0; n < 32; n++ {
		square[n] = gf2MatrixTimes(mat, mat[n])
	}
}

// FileName renders the snapshot file name for a sequence number.
func FileName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", prefix, seq, suffix)
}

// ParseSeq extracts the sequence number from a snapshot file name,
// reporting false for names that are not snapshot files.
func ParseSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Recover returns the payload and file name of the newest valid snapshot
// in dir, or (nil, "", nil) when dir has none (including when dir does
// not exist — a fresh deployment is not an error). Invalid files — torn
// writes, truncation, bit flips — are skipped with a logged reason and
// recovery falls back to the next-newest, so a single bad file never
// blocks a restart.
func Recover(dir string, logger *slog.Logger) ([]byte, string, error) {
	if logger == nil {
		logger = slog.Default()
	}
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, "", nil
	}
	if err != nil {
		return nil, "", fmt.Errorf("snapshot: recover: %w", err)
	}
	type candidate struct {
		seq  uint64
		name string
	}
	var found []candidate
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := ParseSeq(e.Name()); ok {
			found = append(found, candidate{seq, e.Name()})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq > found[j].seq })
	for _, c := range found {
		data, err := os.ReadFile(filepath.Join(dir, c.name))
		if err == nil {
			var payload []byte
			if payload, err = Decode(data); err == nil {
				return payload, c.name, nil
			}
		}
		logger.Warn("snapshot: skipping invalid snapshot",
			"file", c.name, "reason", err)
	}
	return nil, "", nil
}

// WriteFile frames payload and writes it to dir as snapshot seq with the
// full crash discipline (temp file, fsync, rename, directory fsync),
// creating dir if missing. It returns the written file name. WriteFile is
// the one-shot counterpart of Snapshotter.Save for callers — like the
// tenant registry — that manage many snapshot directories and their own
// sequence numbers; concurrent writers of the same directory must
// serialize externally.
func WriteFile(dir string, seq uint64, payload []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("snapshot: %w", err)
	}
	name := FileName(seq)
	if err := writeAtomic(dir, name, Encode(payload)); err != nil {
		return "", err
	}
	return name, nil
}

// NextSeq scans dir and returns the first sequence number past every
// existing snapshot file, valid or corrupt — so a skipped corrupt file is
// never overwritten. A missing directory yields 0, the first sequence of a
// fresh deployment.
func NextSeq(dir string) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	var next uint64
	for _, e := range entries {
		if seq, ok := ParseSeq(e.Name()); ok && seq >= next {
			next = seq + 1
		}
	}
	return next, nil
}

// Prune removes all but the newest retain snapshots in dir, plus any
// stray .tmp files left behind by a crashed write. Failures are logged,
// not returned: pruning is housekeeping and must never block a save path.
// A nil logger means slog.Default(); retain < 1 is treated as 1 so the
// newest snapshot always survives.
func Prune(dir string, retain int, logger *slog.Logger) {
	if logger == nil {
		logger = slog.Default()
	}
	if retain < 1 {
		retain = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			logger.Warn("snapshot: prune readdir failed", "dir", dir, "err", err)
		}
		return
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, prefix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := ParseSeq(name); ok {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) <= retain {
		return
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs[retain:] {
		name := FileName(seq)
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			logger.Warn("snapshot: prune failed", "file", name, "err", err)
		} else {
			logger.Debug("snapshot: pruned", "file", name)
		}
	}
}

// writeAtomic writes frame to dir/name with full crash discipline: temp
// file, fsync, close, rename, directory fsync. On any failure the temp
// file is removed and dir/name is untouched, so a concurrent or later
// Recover never observes a half-written final file. The write, sync and
// rename steps carry fault-injection points for chaos tests; an injected
// write fault additionally tears the temp file (half the frame lands) to
// model a mid-write crash.
func writeAtomic(dir, name string, frame []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeFrame(f, frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := syncFile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := renameFile(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// writeFrame writes the whole frame, or — under an injected write fault —
// tears it: half the frame reaches the file and the injected error is
// returned, exactly what a crash or a full disk mid-write leaves behind.
func writeFrame(f *os.File, frame []byte) error {
	if err := fault.Inject(fault.SnapshotWrite, 0); err != nil {
		_, _ = f.Write(frame[:len(frame)/2])
		return fmt.Errorf("snapshot: write %s: %w", f.Name(), err)
	}
	if _, err := f.Write(frame); err != nil {
		return fmt.Errorf("snapshot: write %s: %w", f.Name(), err)
	}
	return nil
}

// syncFile fsyncs the temp file (injection point: fsync failure).
func syncFile(f *os.File) error {
	if err := fault.Inject(fault.SnapshotSync, 0); err != nil {
		return fmt.Errorf("snapshot: fsync %s: %w", f.Name(), err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("snapshot: fsync %s: %w", f.Name(), err)
	}
	return nil
}

// renameFile renames the temp file into place (injection point: rename
// failure).
func renameFile(oldpath, newpath string) error {
	if err := fault.Inject(fault.SnapshotRename, 0); err != nil {
		return fmt.Errorf("snapshot: rename %s: %w", newpath, err)
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return fmt.Errorf("snapshot: rename %s: %w", newpath, err)
	}
	return nil
}

// syncDir fsyncs dir so a completed rename survives power loss. Best
// effort: some filesystems refuse directory fsync, and the rename itself
// already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}

// Source produces one checkpoint payload; the Snapshotter calls it on
// every interval tick and once more on Close.
type Source func() ([]byte, error)

// Options tunes a Snapshotter.
type Options struct {
	// Dir is the snapshot directory (created if missing).
	Dir string
	// Interval is the periodic checkpoint cadence; zero or negative means
	// no ticker — only explicit Save calls and the final snapshot on
	// Close.
	Interval time.Duration
	// Retain is how many newest snapshots to keep (default DefaultRetain).
	// Pruning also removes stray .tmp files left by crashed writes.
	Retain int
	// Logger receives save/skip/prune events (default slog.Default()).
	Logger *slog.Logger
}

// Stats is a point-in-time snapshot of the Snapshotter's counters, for
// /metrics exposition.
type Stats struct {
	// Saves counts successful snapshots written.
	Saves uint64
	// Errors counts failed snapshot attempts (source or I/O).
	Errors uint64
	// LastSeq is the sequence number of the newest successful snapshot.
	LastSeq uint64
	// LastBytes is the frame size of the newest successful snapshot.
	LastBytes uint64
}

// Snapshotter periodically checkpoints a Source to disk. All methods are
// safe for concurrent use.
type Snapshotter struct {
	src      Source
	dir      string
	interval time.Duration
	retain   int
	logger   *slog.Logger

	mu      sync.Mutex // serializes Save and the seq counter
	nextSeq uint64

	saves, errs        atomic.Uint64
	lastSeq, lastBytes atomic.Uint64

	stop      chan struct{}
	done      chan struct{}
	started   bool
	closeOnce sync.Once
	closeErr  error
}

// New prepares a Snapshotter over src: it creates opts.Dir if missing and
// resumes sequence numbering past any snapshot already there (valid or
// not, so a skipped corrupt file is never overwritten and can be kept for
// forensics). Call Start to begin periodic checkpoints and Close to take
// the final one.
func New(src Source, opts Options) (*Snapshotter, error) {
	if src == nil {
		return nil, errors.New("snapshot: nil source")
	}
	if opts.Dir == "" {
		return nil, errors.New("snapshot: no directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	retain := opts.Retain
	if retain <= 0 {
		retain = DefaultRetain
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	s := &Snapshotter{
		src:      src,
		dir:      opts.Dir,
		interval: opts.Interval,
		retain:   retain,
		logger:   logger,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	entries, err := os.ReadDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	for _, e := range entries {
		if seq, ok := ParseSeq(e.Name()); ok && seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	return s, nil
}

// Dir reports the snapshot directory.
func (s *Snapshotter) Dir() string { return s.dir }

// Start launches the periodic checkpoint goroutine. With a non-positive
// interval it is a no-op (Save and Close still work). Start must be
// called at most once, before Close.
func (s *Snapshotter) Start() {
	if s.interval <= 0 {
		return
	}
	s.started = true
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if _, err := s.Save(); err != nil {
					s.logger.Error("snapshot: periodic save failed", "err", err)
				}
			case <-s.stop:
				return
			}
		}
	}()
}

// Save takes one snapshot now: pull a payload from the source, frame it,
// write it atomically, prune old snapshots. It returns the written file
// name. Saves are serialized; a failed save burns its sequence number,
// which keeps numbering strictly increasing and costs nothing.
func (s *Snapshotter) Save() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	payload, err := s.src()
	if err != nil {
		s.errs.Add(1)
		return "", fmt.Errorf("snapshot: source: %w", err)
	}
	seq := s.nextSeq
	s.nextSeq++
	name := FileName(seq)
	frame := Encode(payload)
	if err := writeAtomic(s.dir, name, frame); err != nil {
		s.errs.Add(1)
		return "", err
	}
	s.saves.Add(1)
	s.lastSeq.Store(seq)
	s.lastBytes.Store(uint64(len(frame)))
	s.prune()
	return name, nil
}

// prune removes all but the newest retain snapshots, plus any stray .tmp
// files left behind by a crashed write. Called with mu held.
func (s *Snapshotter) prune() {
	Prune(s.dir, s.retain, s.logger)
}

// Close stops the periodic goroutine and takes one final snapshot, so a
// graceful shutdown never loses more than the in-flight batch. It is
// idempotent; every call reports the final snapshot's outcome.
func (s *Snapshotter) Close() error {
	s.closeOnce.Do(func() {
		close(s.stop)
		if s.started {
			<-s.done
		}
		_, err := s.Save()
		s.closeErr = err
	})
	return s.closeErr
}

// Stats snapshots the save/error counters.
func (s *Snapshotter) Stats() Stats {
	return Stats{
		Saves:     s.saves.Load(),
		Errors:    s.errs.Load(),
		LastSeq:   s.lastSeq.Load(),
		LastBytes: s.lastBytes.Load(),
	}
}
