package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode hammers the recovery path with arbitrary bytes — the
// exact input a torn write, a truncated disk, or a bit-flipped sector
// hands Recover after a crash. Decode must never panic or over-allocate
// (the declared-length bound check runs before any slicing), and anything
// it does accept must re-encode to a frame that decodes to the same
// payload. testdata/fuzz/FuzzSnapshotDecode holds the regression corpus,
// including a frame with a forged multi-exabyte length field — the shape
// that crashes a decoder that trusts the header before bounding it.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("SSN1"))
	valid := Encode([]byte("significant items"))
	f.Add(valid)
	f.Add(valid[:len(valid)-2])           // truncated trailer
	f.Add(append([]byte{}, valid[4:]...)) // missing magic
	short := append([]byte{}, valid...)
	short[5] ^= 0xFF // forged length
	f.Add(short)
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data)
		if err != nil {
			return
		}
		again, err := Decode(Encode(payload))
		if err != nil {
			t.Fatalf("accepted frame failed to round-trip: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatalf("round trip changed payload: %q -> %q", payload, again)
		}
	})
}
