package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sigstream/internal/fault"
)

func discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		got, err := Decode(Encode(payload))
		if err != nil {
			t.Fatalf("Decode(Encode(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %d bytes -> %d", len(payload), len(got))
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	frame := Encode([]byte("significant items"))
	cases := map[string][]byte{
		"zero-length":    {},
		"short":          frame[:headerSize+trailerSize-1],
		"truncated":      frame[:len(frame)-1],
		"bad magic":      append([]byte("NOPE"), frame[4:]...),
		"huge length":    append([]byte("SSN1\xff\xff\xff\xff\xff\xff\xff\xff"), frame[12:]...),
		"bit flip":       flipBit(frame, headerSize+3),
		"trailer flip":   flipBit(frame, len(frame)-1),
		"header flip":    flipBit(frame, 5),
		"extra trailing": append(append([]byte{}, frame...), 0),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode err = %v, want ErrCorrupt", name, err)
		}
	}
}

func flipBit(frame []byte, i int) []byte {
	c := append([]byte{}, frame...)
	c[i] ^= 0x40
	return c
}

func newSnapshotter(t *testing.T, dir string, payload *[]byte) *Snapshotter {
	t.Helper()
	s, err := New(func() ([]byte, error) { return *payload, nil }, Options{
		Dir: dir, Retain: 2, Logger: discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("state v1")
	s := newSnapshotter(t, dir, &payload)
	name, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	payload = []byte("state v2")
	if _, err := s.Save(); err != nil {
		t.Fatal(err)
	}
	got, from, err := Recover(dir, discard())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "state v2" {
		t.Fatalf("recovered %q, want state v2", got)
	}
	if from == name {
		t.Fatalf("recovered the older snapshot %s", from)
	}
	st := s.Stats()
	if st.Saves != 2 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 2 saves 0 errors", st)
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	if p, name, err := Recover(t.TempDir(), discard()); err != nil || p != nil || name != "" {
		t.Fatalf("empty dir: %v %q %v", p, name, err)
	}
	if p, name, err := Recover(filepath.Join(t.TempDir(), "nope"), discard()); err != nil || p != nil || name != "" {
		t.Fatalf("missing dir: %v %q %v", p, name, err)
	}
}

// TestRecoverSkipsTornNewest corrupts the newest snapshot three ways in
// turn (truncation, bit flip, zero length) and expects recovery to fall
// back to the older intact file every time.
func TestRecoverSkipsTornNewest(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("good old state")
	s := newSnapshotter(t, dir, &payload)
	if _, err := s.Save(); err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, FileName(99))
	frame := Encode([]byte("newer but doomed"))
	for name, corrupt := range map[string][]byte{
		"truncated":   frame[:len(frame)-3],
		"bit-flipped": flipBit(frame, headerSize+1),
		"zero-length": {},
	} {
		if err := os.WriteFile(newest, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		got, from, err := Recover(dir, discard())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(got) != "good old state" {
			t.Fatalf("%s: recovered %q from %s, want the older intact snapshot", name, got, from)
		}
	}
}

func TestRetentionPrunes(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("p")
	s := newSnapshotter(t, dir, &payload) // Retain: 2
	for i := 0; i < 5; i++ {
		if _, err := s.Save(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("retained %d files, want 2: %v", len(entries), entries)
	}
	// The two newest sequence numbers survive.
	for _, e := range entries {
		seq, ok := ParseSeq(e.Name())
		if !ok || seq < 3 {
			t.Fatalf("unexpected survivor %s", e.Name())
		}
	}
}

func TestSequenceResumesPastExistingFiles(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("p")
	s1 := newSnapshotter(t, dir, &payload)
	for i := 0; i < 3; i++ {
		if _, err := s1.Save(); err != nil {
			t.Fatal(err)
		}
	}
	s2 := newSnapshotter(t, dir, &payload)
	name, err := s2.Save()
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := ParseSeq(name)
	if seq != 3 {
		t.Fatalf("restarted snapshotter wrote seq %d, want 3", seq)
	}
}

// TestChaosSnapshotWriteFaults injects each I/O fault in turn — short
// write, fsync failure, rename failure — and checks the failed save
// leaves no final file behind, counts an error, and recovery still finds
// the last good snapshot.
func TestChaosSnapshotWriteFaults(t *testing.T) {
	boom := errors.New("injected io failure")
	points := []fault.Point{fault.SnapshotWrite, fault.SnapshotSync, fault.SnapshotRename}
	for _, p := range points {
		t.Run(string(p), func(t *testing.T) {
			dir := t.TempDir()
			payload := []byte("durable")
			s := newSnapshotter(t, dir, &payload)
			if _, err := s.Save(); err != nil {
				t.Fatal(err)
			}
			deactivate := fault.Activate(p, func(int) error { return boom })
			t.Cleanup(deactivate)
			payload = []byte("lost to the fault")
			if _, err := s.Save(); !errors.Is(err, boom) {
				t.Fatalf("faulted save err = %v, want injected failure", err)
			}
			deactivate()
			if st := s.Stats(); st.Errors != 1 || st.Saves != 1 {
				t.Fatalf("stats = %+v, want 1 save 1 error", st)
			}
			got, _, err := Recover(dir, discard())
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "durable" {
				t.Fatalf("recovered %q, want the pre-fault snapshot", got)
			}
			// The faulted attempt must not leave a final-named file; a torn
			// temp file is allowed (the write fault models a crash) and the
			// next successful save prunes it.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			finals := 0
			for _, e := range entries {
				if _, ok := ParseSeq(e.Name()); ok {
					finals++
				}
			}
			if finals != 1 {
				t.Fatalf("%d final snapshot files after faulted save, want 1", finals)
			}
			payload = []byte("recovered cadence")
			if _, err := s.Save(); err != nil {
				t.Fatalf("save after fault cleared: %v", err)
			}
			for _, e := range mustReadDir(t, dir) {
				if filepath.Ext(e.Name()) == ".tmp" {
					t.Fatalf("stray temp file %s survived pruning", e.Name())
				}
			}
		})
	}
}

func mustReadDir(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestPeriodicSnapshots(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("tick")
	s, err := New(func() ([]byte, error) { return payload, nil }, Options{
		Dir: dir, Interval: 5 * time.Millisecond, Logger: discard(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Saves < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no periodic snapshots after 5s")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and took a final snapshot.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	got, _, err := Recover(dir, discard())
	if err != nil || string(got) != "tick" {
		t.Fatalf("recover after close: %q %v", got, err)
	}
}

func TestCloseTakesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	calls := 0
	s, err := New(func() ([]byte, error) {
		calls++
		return []byte(fmt.Sprintf("call %d", calls)), nil
	}, Options{Dir: dir, Logger: discard()}) // no interval: manual only
	if err != nil {
		t.Fatal(err)
	}
	s.Start() // no-op without an interval
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Recover(dir, discard())
	if err != nil || string(got) != "call 1" {
		t.Fatalf("final snapshot: %q %v", got, err)
	}
}

func TestSourceErrorCounts(t *testing.T) {
	s, err := New(func() ([]byte, error) { return nil, errors.New("tracker busy") },
		Options{Dir: t.TempDir(), Logger: discard()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(); err == nil {
		t.Fatal("save with failing source succeeded")
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 error", st)
	}
}

func TestWriteFileToMatchesWriteFile(t *testing.T) {
	payloads := [][]byte{
		{},
		{0},
		[]byte("hello snapshot"),
		bytes.Repeat([]byte{0xab, 0xcd, 0x01}, 40000), // multi-chunk stream
	}
	for i, payload := range payloads {
		dir := t.TempDir()
		// Stream the payload in awkward chunk sizes to exercise the
		// running CRC across write boundaries.
		name, err := WriteFileTo(dir, uint64(i), func(w io.Writer) error {
			for off := 0; off < len(payload); off += 7 {
				end := off + 7
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := w.Write(payload[off:end]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("case %d: WriteFileTo: %v", i, err)
		}
		streamed, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// Bit-identical to the buffered path: the combined CRC is the CRC.
		if want := Encode(payload); !bytes.Equal(streamed, want) {
			t.Fatalf("case %d: streamed frame differs from Encode", i)
		}
		got, err := Decode(streamed)
		if err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("case %d: payload mismatch", i)
		}
	}
}

func TestWriteFileToFaultLeavesNoFinalFile(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected write fault")
	off := fault.Activate(fault.SnapshotWrite, func(int) error { return boom })
	_, err := WriteFileTo(dir, 0, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	off()
	if !errors.Is(err, boom) {
		t.Fatalf("WriteFileTo = %v, want injected error", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("faulted WriteFileTo left %d files behind", len(entries))
	}
}

func TestWriteFileToSourceErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("source failed")
	_, err := WriteFileTo(dir, 0, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("WriteFileTo = %v, want source error", err)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("failed stream left %d files behind", len(entries))
	}
}
