// Package obs is the observability layer of the sigstream service: a small
// Prometheus text-exposition registry any component can register into, HTTP
// middleware recording per-endpoint request counts, error counts and
// latency histograms, and structured request logging with a slow-request
// threshold.
//
// The registry deliberately implements only the subset of the Prometheus
// text format (version 0.0.4) the service needs — counters, gauges and
// fixed-bucket histograms — so the server stays dependency-free while
// remaining scrapeable by any Prometheus-compatible collector.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a metric sample.
type Label struct {
	// Name is the label name (must match [a-zA-Z_][a-zA-Z0-9_]*).
	Name string
	// Value is the label value; it is escaped on output.
	Value string
}

// Writer emits metric families in Prometheus text format. A # HELP/# TYPE
// header is written once per metric name, so collectors emitting many
// labeled samples of one family produce a well-formed exposition. Writers
// are single-use per scrape and not safe for concurrent use.
type Writer struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

// NewWriter starts an exposition written to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, seen: make(map[string]bool)}
}

// Err reports the first underlying write error, if any.
func (w *Writer) Err() error { return w.err }

// Counter emits one sample of a monotonically increasing counter.
func (w *Writer) Counter(name, help string, value float64, labels ...Label) {
	w.header(name, help, "counter")
	w.sample(name, "", labels, value)
}

// Gauge emits one sample of a point-in-time gauge.
func (w *Writer) Gauge(name, help string, value float64, labels ...Label) {
	w.header(name, help, "gauge")
	w.sample(name, "", labels, value)
}

// Histogram emits one fixed-bucket histogram: counts[i] is the number of
// observations in (bounds[i-1], bounds[i]] (non-cumulative; Histogram
// accumulates), sum the total of all observed values. A final +Inf bucket
// carrying the total count and the _sum/_count series are appended, per the
// exposition format. len(counts) must be len(bounds)+1, the last entry
// holding observations above the largest bound.
func (w *Writer) Histogram(name, help string, bounds []float64, counts []uint64, sum float64, labels ...Label) {
	w.header(name, help, "histogram")
	var cum uint64
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		le := Label{Name: "le", Value: formatFloat(b)}
		w.sample(name, "_bucket", append(labels[:len(labels):len(labels)], le), float64(cum))
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	inf := Label{Name: "le", Value: "+Inf"}
	w.sample(name, "_bucket", append(labels[:len(labels):len(labels)], inf), float64(cum))
	w.sample(name, "_sum", labels, sum)
	w.sample(name, "_count", labels, float64(cum))
}

// header writes the # HELP and # TYPE lines the first time name appears.
func (w *Writer) header(name, help, typ string) {
	if w.err != nil || w.seen[name] {
		return
	}
	w.seen[name] = true
	_, w.err = fmt.Fprintf(w.w, "# HELP %s %s\n# TYPE %s %s\n",
		name, strings.ReplaceAll(help, "\n", " "), name, typ)
}

// sample writes one "name{labels} value" line.
func (w *Writer) sample(name, suffix string, labels []Label, value float64) {
	if w.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteString(suffix)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	_, w.err = fmt.Fprintf(w.w, "%s %s\n", sb.String(), formatFloat(value))
}

// escapeLabel escapes backslash, double quote and newline per the format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a value the way Prometheus expects: integers without
// an exponent or trailing zeros, everything else in shortest form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Collector contributes metric samples to a Registry scrape. Collect is
// called under the registry lock once per scrape and must be fast: snapshot
// counters, write, return.
type Collector interface {
	// Collect writes the collector's current samples.
	Collect(w *Writer)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(w *Writer)

// Collect implements Collector.
func (f CollectorFunc) Collect(w *Writer) { f(w) }

// Registry fans one scrape out to every registered collector, in
// registration order. It is an http.Handler serving the exposition, so
// mounting it at /metrics drops the service into existing scrape configs.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector. Safe for concurrent use.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// WriteText writes one full exposition of every collector to w.
func (r *Registry) WriteText(w io.Writer) error {
	ew := NewWriter(w)
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	for _, c := range collectors {
		c.Collect(ew)
	}
	return ew.Err()
}

// ServeHTTP implements http.Handler: GET returns the exposition.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}

// sortedKeys returns m's keys in lexical order, for stable exposition
// output across scrapes.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
