package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPMetricsCountsAndErrors(t *testing.T) {
	m := NewHTTPMetrics()
	ok := m.Wrap("/v1/top", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	bad := m.Wrap("/v1/query", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "missing key", http.StatusBadRequest)
	}))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/top", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	bad.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/query", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}

	var sb strings.Builder
	w := NewWriter(&sb)
	m.Collect(w)
	out := sb.String()
	for _, line := range []string{
		`sigstream_http_requests_total{endpoint="/v1/top"} 3`,
		`sigstream_http_errors_total{endpoint="/v1/top"} 0`,
		`sigstream_http_requests_total{endpoint="/v1/query"} 1`,
		`sigstream_http_errors_total{endpoint="/v1/query"} 1`,
		`sigstream_http_request_seconds_count{endpoint="/v1/top"} 3`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	// The histogram must carry one bucket per configured bound plus +Inf.
	wantBuckets := (len(DefaultLatencyBuckets) + 1) * 2 // two endpoints
	if got := strings.Count(out, "sigstream_http_request_seconds_bucket"); got != wantBuckets {
		t.Errorf("bucket lines = %d, want %d", got, wantBuckets)
	}
}

func TestStatusWriterDefaultsTo200(t *testing.T) {
	m := NewHTTPMetrics()
	h := m.Wrap("/plain", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("implicit 200"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/plain", nil))

	var sb strings.Builder
	w := NewWriter(&sb)
	m.Collect(w)
	if !strings.Contains(sb.String(), `sigstream_http_errors_total{endpoint="/plain"} 0`) {
		t.Fatalf("implicit 200 counted as error:\n%s", sb.String())
	}
}
