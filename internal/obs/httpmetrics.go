package obs

import (
	"net/http"
	"sync"
	"time"
)

// DefaultLatencyBuckets are the histogram bounds, in seconds, used for
// request latencies: sub-millisecond turns on the fast read endpoints up
// through multi-second bulk inserts and checkpoint transfers.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// HTTPMetrics records per-endpoint request counts, error counts and
// latency histograms. Wrap each handler once at mux-construction time;
// Collect exposes the accumulated series. Safe for concurrent use.
type HTTPMetrics struct {
	// endpoints is built at Wrap time and read-only afterwards, so the
	// request path takes only the owning endpoint's mutex.
	endpoints map[string]*endpointMetrics
	bounds    []float64
}

// endpointMetrics is one endpoint's accumulated counters.
type endpointMetrics struct {
	mu       sync.Mutex
	requests uint64
	errors   uint64 // responses with status >= 400
	buckets  []uint64
	sum      float64 // total latency, seconds
}

// NewHTTPMetrics creates a middleware recorder with the default latency
// buckets.
func NewHTTPMetrics() *HTTPMetrics {
	return &HTTPMetrics{
		endpoints: make(map[string]*endpointMetrics),
		bounds:    DefaultLatencyBuckets,
	}
}

// Wrap instruments next under the given endpoint label. Endpoints must be
// registered before the server starts serving (Wrap is not safe to call
// concurrently with requests).
func (m *HTTPMetrics) Wrap(endpoint string, next http.Handler) http.Handler {
	e := &endpointMetrics{buckets: make([]uint64, len(m.bounds)+1)}
	m.endpoints[endpoint] = e
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		e.observe(sw.status, time.Since(start), m.bounds)
	})
}

// observe records one finished request.
func (e *endpointMetrics) observe(status int, d time.Duration, bounds []float64) {
	sec := d.Seconds()
	i := 0
	for i < len(bounds) && sec > bounds[i] {
		i++
	}
	e.mu.Lock()
	e.requests++
	if status >= 400 {
		e.errors++
	}
	e.buckets[i]++
	e.sum += sec
	e.mu.Unlock()
}

// Collect implements Collector: three families, one labeled series set per
// endpoint, in lexical endpoint order.
func (m *HTTPMetrics) Collect(w *Writer) {
	for _, name := range sortedKeys(m.endpoints) {
		e := m.endpoints[name]
		e.mu.Lock()
		requests, errors := e.requests, e.errors
		buckets := append([]uint64(nil), e.buckets...)
		sum := e.sum
		e.mu.Unlock()
		lbl := Label{Name: "endpoint", Value: name}
		w.Counter("sigstream_http_requests_total",
			"HTTP requests served, by endpoint.", float64(requests), lbl)
		w.Counter("sigstream_http_errors_total",
			"HTTP responses with status >= 400, by endpoint.", float64(errors), lbl)
		w.Histogram("sigstream_http_request_seconds",
			"HTTP request latency in seconds, by endpoint.",
			m.bounds, buckets, sum, lbl)
	}
}

// statusWriter captures the response status code and byte count.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader records the status before forwarding it.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Write counts response bytes.
func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

var _ Collector = (*HTTPMetrics)(nil)
