package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterAndGaugeExposition(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Counter("app_requests_total", "Total requests.", 42)
	w.Gauge("app_temp", "Current temperature.", 3.5, Label{Name: "room", Value: "lab"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP app_requests_total Total requests.\n" +
		"# TYPE app_requests_total counter\n" +
		"app_requests_total 42\n" +
		"# HELP app_temp Current temperature.\n" +
		"# TYPE app_temp gauge\n" +
		`app_temp{room="lab"} 3.5` + "\n"
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestHeaderWrittenOncePerFamily(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Counter("hits_total", "Hits.", 1, Label{Name: "ep", Value: "a"})
	w.Counter("hits_total", "Hits.", 2, Label{Name: "ep", Value: "b"})
	if got := strings.Count(sb.String(), "# TYPE hits_total counter"); got != 1 {
		t.Fatalf("TYPE header appeared %d times, want 1:\n%s", got, sb.String())
	}
	if !strings.Contains(sb.String(), `hits_total{ep="b"} 2`) {
		t.Fatalf("second sample missing:\n%s", sb.String())
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	// Non-cumulative counts 3,2,1 over bounds .1,.5 → cumulative 3,5,6.
	w.Histogram("lat_seconds", "Latency.", []float64{0.1, 0.5},
		[]uint64{3, 2, 1}, 1.25)
	out := sb.String()
	for _, line := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="0.5"} 5`,
		`lat_seconds_bucket{le="+Inf"} 6`,
		"lat_seconds_sum 1.25",
		"lat_seconds_count 6",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	w.Counter("c_total", "C.", 1, Label{Name: "path", Value: "a\"b\\c\nd"})
	if !strings.Contains(sb.String(), `c_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", sb.String())
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func(w *Writer) {
		w.Gauge("up", "Service up.", 1)
	}))

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	if !strings.Contains(rec.Body.String(), "up 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}
