package obs

import (
	"log/slog"
	"net/http"
	"time"
)

// LogRequests wraps next with structured request logging. Every request
// logs at Debug; responses with status >= 500 log at Error; requests
// slower than slow (when slow > 0) log at Warn with the threshold
// attached, so operators can grep one line class for latency regressions.
// A nil logger selects slog.Default.
func LogRequests(logger *slog.Logger, slow time.Duration, next http.Handler) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		d := time.Since(start)
		args := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration", d,
			"remote", r.RemoteAddr,
		}
		switch {
		case slow > 0 && d >= slow:
			logger.Warn("slow request", append(args, "slow_threshold", slow)...)
		case sw.status >= 500:
			logger.Error("request failed", args...)
		default:
			logger.Debug("request", args...)
		}
	})
}
