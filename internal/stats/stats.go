// Package stats provides the small statistical helpers used by the
// experiment harness: means, standard deviations, medians and quantiles
// over float64 samples.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Std returns the sample standard deviation (n−1 denominator; 0 for fewer
// than two points).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Median returns the middle value (mean of the two middles for even n; 0
// for empty input). The input is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
// The input is not modified; empty input yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the extremes (0, 0 for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
