package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !close(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
}

func TestStd(t *testing.T) {
	if Std(nil) != 0 || Std([]float64{5}) != 0 {
		t.Fatal("degenerate std must be 0")
	}
	// Sample std of {2,4,4,4,5,5,7,9} is ≈2.138 (n−1).
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13808993529939) > 1e-9 {
		t.Fatalf("std = %v", got)
	}
}

func TestMedianAndQuantile(t *testing.T) {
	if !close(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median")
	}
	if !close(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Fatal("even median")
	}
	if !close(Quantile([]float64{0, 10}, 0.25), 2.5) {
		t.Fatal("interpolated quantile")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	if !close(Quantile([]float64{1, 2, 3}, -1), 1) || !close(Quantile([]float64{1, 2, 3}, 2), 3) {
		t.Fatal("q clamping")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("minmax = %v/%v", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Fatal("empty minmax")
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Skip NaN/Inf/overflow-prone samples; the helpers are for metric
		// values (precision, ARE), which are modest finite numbers.
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		min, max := MinMax(xs)
		m := Mean(xs)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
