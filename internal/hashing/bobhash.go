// Package hashing provides the hash functions used by every data structure
// in this repository.
//
// The paper's reference implementation uses Bob Jenkins' hash ("Bob Hash")
// for all bucket placement. We implement Jenkins' lookup3 for byte slices
// and a fast specialization for 64-bit item IDs, plus a splitmix64 finalizer
// used where only avalanche mixing (not keyed hashing) is required.
package hashing

import "math/bits"

// Bob computes Jenkins' lookup3 hashword-style hash of an 8-byte key with
// the given seed. It is the keyed hash used for bucket placement throughout
// the repository, mirroring the paper's use of Bob Hash.
type Bob struct {
	seed uint32
}

// NewBob returns a Bob hash keyed with seed. Distinct seeds behave as
// independent hash functions.
func NewBob(seed uint32) Bob { return Bob{seed: seed} }

// Seed reports the seed this hash was created with.
func (b Bob) Seed() uint32 { return b.seed }

// Hash64 hashes a 64-bit item ID to a 32-bit value.
func (b Bob) Hash64(x uint64) uint32 {
	// lookup3 with two 32-bit words of input.
	a := uint32(0xdeadbeef) + 8 + b.seed
	bb := a
	c := a
	a += uint32(x)
	bb += uint32(x >> 32)
	// final(a,b,c)
	c ^= bb
	c -= bits.RotateLeft32(bb, 14)
	a ^= c
	a -= bits.RotateLeft32(c, 11)
	bb ^= a
	bb -= bits.RotateLeft32(a, 25)
	c ^= bb
	c -= bits.RotateLeft32(bb, 16)
	a ^= c
	a -= bits.RotateLeft32(c, 4)
	bb ^= a
	bb -= bits.RotateLeft32(a, 14)
	c ^= bb
	c -= bits.RotateLeft32(bb, 24)
	return c
}

// Hash hashes an arbitrary byte slice with Jenkins' lookup3.
func (b Bob) Hash(key []byte) uint32 {
	length := len(key)
	a := uint32(0xdeadbeef) + uint32(length) + b.seed
	bb := a
	c := a

	i := 0
	for length > 12 {
		a += le32(key[i:])
		bb += le32(key[i+4:])
		c += le32(key[i+8:])
		// mix(a,b,c)
		a -= c
		a ^= bits.RotateLeft32(c, 4)
		c += bb
		bb -= a
		bb ^= bits.RotateLeft32(a, 6)
		a += c
		c -= bb
		c ^= bits.RotateLeft32(bb, 8)
		bb += a
		a -= c
		a ^= bits.RotateLeft32(c, 16)
		c += bb
		bb -= a
		bb ^= bits.RotateLeft32(a, 19)
		a += c
		c -= bb
		c ^= bits.RotateLeft32(bb, 4)
		bb += a
		i += 12
		length -= 12
	}

	// Last block: affect all of a, b, c. Fall-through on purpose.
	k := key[i:]
	switch length {
	case 12:
		c += le32(k[8:])
		bb += le32(k[4:])
		a += le32(k)
	case 11:
		c += uint32(k[10]) << 16
		fallthrough
	case 10:
		c += uint32(k[9]) << 8
		fallthrough
	case 9:
		c += uint32(k[8])
		fallthrough
	case 8:
		bb += le32(k[4:])
		a += le32(k)
	case 7:
		bb += uint32(k[6]) << 16
		fallthrough
	case 6:
		bb += uint32(k[5]) << 8
		fallthrough
	case 5:
		bb += uint32(k[4])
		fallthrough
	case 4:
		a += le32(k)
	case 3:
		a += uint32(k[2]) << 16
		fallthrough
	case 2:
		a += uint32(k[1]) << 8
		fallthrough
	case 1:
		a += uint32(k[0])
	case 0:
		return c
	}
	// final(a,b,c)
	c ^= bb
	c -= bits.RotateLeft32(bb, 14)
	a ^= c
	a -= bits.RotateLeft32(c, 11)
	bb ^= a
	bb -= bits.RotateLeft32(a, 25)
	c ^= bb
	c -= bits.RotateLeft32(bb, 16)
	a ^= c
	a -= bits.RotateLeft32(c, 4)
	bb ^= a
	bb -= bits.RotateLeft32(a, 14)
	c ^= bb
	c -= bits.RotateLeft32(bb, 24)
	return c
}

func le32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Mix64 applies the splitmix64 finalizer, a fast, high-quality avalanche
// mixer for 64-bit values. It is not keyed; use Bob where independent hash
// functions are required.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fingerprint returns an n-bit (n ≤ 32) nonzero fingerprint of an item ID,
// keyed by seed. Fingerprints are used by the Bloom-filter-family structures
// to distinguish colliding items cheaply.
func Fingerprint(x uint64, seed uint32, bitsN uint) uint32 {
	h := NewBob(seed ^ 0xfeedface).Hash64(x)
	fp := h & ((1 << bitsN) - 1)
	if fp == 0 {
		fp = 1
	}
	return fp
}
