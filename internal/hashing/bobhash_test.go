package hashing

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestBobDeterministic(t *testing.T) {
	h := NewBob(7)
	if h.Hash64(12345) != h.Hash64(12345) {
		t.Fatal("Hash64 is not deterministic")
	}
	key := []byte("persistent item")
	if h.Hash(key) != h.Hash(key) {
		t.Fatal("Hash is not deterministic")
	}
}

func TestBobSeedIndependence(t *testing.T) {
	a, b := NewBob(1), NewBob(2)
	same := 0
	const n = 10000
	for i := uint64(0); i < n; i++ {
		if a.Hash64(i) == b.Hash64(i) {
			same++
		}
	}
	// Two independent 32-bit hashes should almost never collide on the
	// same input; allow a small number of coincidences.
	if same > 3 {
		t.Fatalf("seeds 1 and 2 agree on %d/%d inputs; not independent", same, n)
	}
}

func TestBobHash64MatchesByteHash(t *testing.T) {
	// Hash64 is a specialization of Hash for the 8-byte little-endian
	// encoding; both must distribute well, but they are distinct functions
	// (Hash64 skips the byte loop). We only require both to be stable and
	// well distributed; this test pins the specialization's determinism
	// against a golden sample so accidental edits are caught.
	h := NewBob(42)
	got := h.Hash64(0x0123456789abcdef)
	if got != h.Hash64(0x0123456789abcdef) {
		t.Fatal("unstable")
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 0x0123456789abcdef)
	_ = h.Hash(buf[:]) // must not panic on exactly-8-byte input
}

func TestBobBucketUniformity(t *testing.T) {
	// Hash sequential IDs into 64 buckets; a chi-squared statistic far
	// above the 99.9th percentile indicates a broken hash.
	const buckets = 64
	const n = 64000
	counts := make([]int, buckets)
	h := NewBob(99)
	for i := uint64(0); i < n; i++ {
		counts[h.Hash64(i)%buckets]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 63 degrees of freedom; 99.99th percentile ≈ 114.
	if chi2 > 130 {
		t.Fatalf("chi-squared %v too large; hash not uniform", chi2)
	}
}

func TestBobAvalanche(t *testing.T) {
	// Flipping one input bit should flip about half of the output bits.
	h := NewBob(3)
	total := 0.0
	samples := 0
	for i := uint64(1); i <= 500; i++ {
		base := h.Hash64(i)
		for bit := uint(0); bit < 64; bit += 7 {
			flipped := h.Hash64(i ^ (1 << bit))
			diff := base ^ flipped
			total += float64(popcount32(diff))
			samples++
		}
	}
	mean := total / float64(samples)
	if math.Abs(mean-16) > 1.5 {
		t.Fatalf("avalanche mean %.2f bits, want ≈16", mean)
	}
}

func popcount32(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestHashTailLengths(t *testing.T) {
	// Exercise every tail length of the byte-slice path (0..13+ bytes) and
	// verify that extending a key changes the hash (no tail truncation).
	h := NewBob(5)
	prev := map[uint32]int{}
	buf := make([]byte, 0, 16)
	for n := 0; n <= 16; n++ {
		v := h.Hash(buf)
		if ln, dup := prev[v]; dup {
			t.Fatalf("lengths %d and %d hash identically", ln, n)
		}
		prev[v] = n
		buf = append(buf, byte(n+1))
	}
}

func TestMix64Bijective(t *testing.T) {
	// splitmix64's finalizer is a bijection; sampled values must not
	// collide.
	seen := make(map[uint64]uint64, 20000)
	for i := uint64(0); i < 20000; i++ {
		m := Mix64(i)
		if prev, ok := seen[m]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %d", prev, i, m)
		}
		seen[m] = i
	}
}

func TestFingerprintNonzero(t *testing.T) {
	f := func(x uint64, seed uint32) bool {
		fp := Fingerprint(x, seed, 8)
		return fp != 0 && fp < 256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintWidth(t *testing.T) {
	for _, w := range []uint{1, 4, 8, 16, 32} {
		maxSeen := uint32(0)
		for i := uint64(0); i < 5000; i++ {
			fp := Fingerprint(i, 1, w)
			if fp > maxSeen {
				maxSeen = fp
			}
		}
		var limit uint32
		if w == 32 {
			limit = math.MaxUint32
		} else {
			limit = (1 << w) - 1
		}
		if maxSeen > limit {
			t.Fatalf("width %d produced fingerprint %d > %d", w, maxSeen, limit)
		}
	}
}

func BenchmarkBobHash64(b *testing.B) {
	h := NewBob(1)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += h.Hash64(uint64(i))
	}
	_ = sink
}

func BenchmarkMix64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Mix64(uint64(i))
	}
	_ = sink
}
