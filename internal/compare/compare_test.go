package compare

import (
	"strings"
	"testing"
)

const oldCSV = `figure,dataset,series,x,metric,value
9,CAIDA,LTC,10KB,precision,0.99
9,CAIDA,CM,10KB,precision,0.52
10,CAIDA,LTC,10KB,ARE,0.001
9,CAIDA,SS,10KB,precision,0.63
`

const newCSV = `figure,dataset,series,x,metric,value
9,CAIDA,LTC,10KB,precision,0.90
9,CAIDA,CM,10KB,precision,0.60
10,CAIDA,LTC,10KB,ARE,0.2
9,CAIDA,LC,10KB,precision,0.55
`

func parse(t *testing.T, s string) Run {
	t.Helper()
	r, err := ParseCSV(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDiffClassifiesDirections(t *testing.T) {
	rep := Diff(parse(t, oldCSV), parse(t, newCSV), 0.01)
	if rep.Compared != 3 {
		t.Fatalf("compared %d, want 3", rep.Compared)
	}
	if rep.OnlyOld != 1 || rep.OnlyNew != 1 {
		t.Fatalf("only-old %d / only-new %d, want 1/1", rep.OnlyOld, rep.OnlyNew)
	}
	// LTC precision dropped (regression), CM precision rose (improvement),
	// LTC ARE rose (regression).
	if rep.Regressions != 2 {
		t.Fatalf("regressions %d, want 2: %+v", rep.Regressions, rep.Deltas)
	}
	if len(rep.Deltas) != 3 {
		t.Fatalf("deltas %d, want 3", len(rep.Deltas))
	}
	// Regressions sort first.
	if !rep.Deltas[0].Regression || !rep.Deltas[1].Regression || rep.Deltas[2].Regression {
		t.Fatalf("sort order wrong: %+v", rep.Deltas)
	}
}

func TestDiffTolerance(t *testing.T) {
	rep := Diff(parse(t, oldCSV), parse(t, oldCSV), 0.0)
	if len(rep.Deltas) != 0 || rep.Regressions != 0 {
		t.Fatalf("identical runs produced deltas: %+v", rep.Deltas)
	}
	// A generous tolerance swallows the precision changes.
	rep = Diff(parse(t, oldCSV), parse(t, newCSV), 0.5)
	if len(rep.Deltas) != 0 {
		t.Fatalf("tolerance not applied: %+v", rep.Deltas)
	}
}

func TestLowerIsBetterClassification(t *testing.T) {
	for metric, lower := range map[string]bool{
		"ARE": true, "AAE": true, "error-rate": true,
		"precision": false, "correct-rate": false, "Mops": false,
		"precision±": true,
	} {
		if lowerIsBetter(metric) != lower {
			t.Fatalf("lowerIsBetter(%q) wrong", metric)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := ParseCSV(strings.NewReader("9,a,b,c,d,notanumber\n")); err == nil {
		t.Fatal("bad value accepted")
	}
	r, err := ParseCSV(strings.NewReader(""))
	if err != nil || len(r) != 0 {
		t.Fatalf("empty input: %v, %d points", err, len(r))
	}
}

func TestRender(t *testing.T) {
	rep := Diff(parse(t, oldCSV), parse(t, newCSV), 0.01)
	out := Render(rep)
	for _, want := range []string{"compared 3 points", "2 regressions", "✗", "LTC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	clean := Render(Diff(parse(t, oldCSV), parse(t, oldCSV), 0))
	if !strings.Contains(clean, "no changes") {
		t.Fatalf("clean render wrong:\n%s", clean)
	}
}
