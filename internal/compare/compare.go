// Package compare diffs two evaluation runs (sigbench CSV output) point by
// point, flagging metric regressions beyond a tolerance. cmd/sigdiff wraps
// it so accuracy changes between code versions can gate CI.
package compare

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Point identifies one measured value.
type Point struct {
	Figure, Dataset, Series, X, Metric string
}

// String renders the point compactly.
func (p Point) String() string {
	return fmt.Sprintf("fig%s %s/%s@%s %s", p.Figure, p.Dataset, p.Series, p.X, p.Metric)
}

// Delta is one compared point.
type Delta struct {
	Point    Point
	Old, New float64
	// Regression is true when the new value is worse beyond tolerance:
	// lower for higher-is-better metrics (precision, correct-rate, Mops),
	// higher for lower-is-better metrics (ARE, AAE, error-rate).
	Regression bool
}

// Run is a parsed evaluation CSV.
type Run map[Point]float64

// ParseCSV reads sigbench CSV output (header
// "figure,dataset,series,x,metric,value").
func ParseCSV(r io.Reader) (Run, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	run := Run{}
	for i, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if i == 0 && strings.HasPrefix(line, "figure,") {
			continue // header
		}
		fields := strings.Split(line, ",")
		if len(fields) != 6 {
			return nil, fmt.Errorf("compare: line %d: %d fields, want 6", i+1, len(fields))
		}
		v, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			return nil, fmt.Errorf("compare: line %d: bad value %q: %w", i+1, fields[5], err)
		}
		run[Point{fields[0], fields[1], fields[2], fields[3], fields[4]}] = v
	}
	return run, nil
}

// lowerIsBetter classifies metrics for regression direction.
func lowerIsBetter(metric string) bool {
	switch metric {
	case "ARE", "AAE", "error-rate":
		return true
	}
	return strings.HasSuffix(metric, "±") // tighter spread is better
}

// Report is the outcome of a comparison.
type Report struct {
	// Deltas holds every point present in both runs whose value changed by
	// more than tolerance (absolute), worst regressions first.
	Deltas []Delta
	// Regressions counts the deltas flagged as regressions.
	Regressions int
	// OnlyOld and OnlyNew count points present in one run only.
	OnlyOld, OnlyNew int
	// Compared counts points present in both runs.
	Compared int
}

// Diff compares two runs with an absolute tolerance per point.
func Diff(old, new Run, tolerance float64) Report {
	rep := Report{}
	for p, ov := range old {
		nv, ok := new[p]
		if !ok {
			rep.OnlyOld++
			continue
		}
		rep.Compared++
		d := nv - ov
		if d < 0 {
			d = -d
		}
		if d <= tolerance {
			continue
		}
		delta := Delta{Point: p, Old: ov, New: nv}
		if lowerIsBetter(p.Metric) {
			delta.Regression = nv > ov
		} else {
			delta.Regression = nv < ov
		}
		if delta.Regression {
			rep.Regressions++
		}
		rep.Deltas = append(rep.Deltas, delta)
	}
	for p := range new {
		if _, ok := old[p]; !ok {
			rep.OnlyNew++
		}
	}
	sort.Slice(rep.Deltas, func(i, j int) bool {
		di, dj := rep.Deltas[i], rep.Deltas[j]
		if di.Regression != dj.Regression {
			return di.Regression
		}
		mi := magnitude(di)
		mj := magnitude(dj)
		if mi != mj {
			return mi > mj
		}
		return di.Point.String() < dj.Point.String()
	})
	return rep
}

func magnitude(d Delta) float64 {
	m := d.New - d.Old
	if m < 0 {
		m = -m
	}
	return m
}

// Render formats a report for terminal output.
func Render(rep Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "compared %d points (%d only in old, %d only in new)\n",
		rep.Compared, rep.OnlyOld, rep.OnlyNew)
	if len(rep.Deltas) == 0 {
		b.WriteString("no changes beyond tolerance\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d changed, %d regressions:\n", len(rep.Deltas), rep.Regressions)
	for _, d := range rep.Deltas {
		tag := "  ~ "
		if d.Regression {
			tag = "  ✗ "
		}
		fmt.Fprintf(&b, "%s%-55s %.4g → %.4g\n", tag, d.Point, d.Old, d.New)
	}
	return b.String()
}
