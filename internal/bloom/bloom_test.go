package bloom

import (
	"testing"
	"testing/quick"

	"sigstream/internal/stream"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(4096, 3)
	for i := uint64(0); i < 1000; i++ {
		f.Add(i)
	}
	for i := uint64(0); i < 1000; i++ {
		if !f.Contains(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := NewForItems(1000, 0.01)
	for i := uint64(0); i < 1000; i++ {
		f.Add(i)
	}
	fp := 0
	const probes = 10000
	for i := uint64(1 << 32); i < 1<<32+probes; i++ {
		if f.Contains(i) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Fatalf("false-positive rate %.3f, want ≲0.01", rate)
	}
	if est := f.EstimatedFPP(); est > 0.05 {
		t.Fatalf("estimated FPP %.3f implausible", est)
	}
}

func TestAddIfAbsent(t *testing.T) {
	f := New(4096, 3)
	if !f.AddIfAbsent(7) {
		t.Fatal("first add must report absent")
	}
	if f.AddIfAbsent(7) {
		t.Fatal("second add must report present")
	}
}

func TestReset(t *testing.T) {
	f := New(1024, 3)
	for i := uint64(0); i < 100; i++ {
		f.Add(i)
	}
	f.Reset()
	present := 0
	for i := uint64(0); i < 100; i++ {
		if f.Contains(i) {
			present++
		}
	}
	if present != 0 {
		t.Fatalf("%d items survive Reset", present)
	}
	if f.EstimatedFPP() != 0 {
		t.Fatal("FPP must be 0 after reset")
	}
}

func TestMemoryBytes(t *testing.T) {
	f := New(4096, 3)
	if f.MemoryBytes() != 4096 {
		t.Fatalf("MemoryBytes = %d, want 4096", f.MemoryBytes())
	}
	tiny := New(1, 1)
	if tiny.MemoryBytes() < 8 {
		t.Fatal("filter must allocate at least one word")
	}
}

func TestNewForItemsDefaults(t *testing.T) {
	f := NewForItems(0, -1)
	if f.MemoryBytes() <= 0 {
		t.Fatal("degenerate parameters must still produce a usable filter")
	}
}

func TestContainsProperty(t *testing.T) {
	// Anything added is always contained, under any key distribution.
	f := New(8192, 4)
	prop := func(x stream.Item) bool {
		f.Add(x)
		return f.Contains(x)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(64*1024, 3)
	for i := 0; i < b.N; i++ {
		f.Add(stream.Item(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(64*1024, 3)
	for i := uint64(0); i < 10000; i++ {
		f.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i) % 20000)
	}
}

func TestMergeUnion(t *testing.T) {
	a := New(2048, 3)
	b := New(2048, 3)
	for i := uint64(0); i < 100; i++ {
		a.Add(i)
		b.Add(i + 1000)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if !a.Contains(i) || !a.Contains(i+1000) {
			t.Fatalf("union missing item %d", i)
		}
	}
	if err := a.Merge(New(4096, 3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil accepted")
	}
}
