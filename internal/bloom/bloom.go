// Package bloom implements the standard Bloom filter that sketch-based
// baselines use to deduplicate appearances within a period (Section II-B:
// "we maintain a standard Bloom filter to record whether it has appeared in
// the current period").
package bloom

import (
	"fmt"
	"math"

	"sigstream/internal/hashing"
	"sigstream/internal/stream"
)

// Filter is a standard Bloom filter over 64-bit items.
type Filter struct {
	bits   []uint64
	nbits  uint64
	hashes []hashing.Bob
	n      int // inserted count, for FPP estimation
}

// New creates a filter with the given memory budget and number of hash
// functions. k ≤ 0 selects k = 3 (the usual choice at the paper's 50%
// memory split).
func New(memoryBytes, k int) *Filter {
	if memoryBytes < 8 {
		memoryBytes = 8
	}
	if k <= 0 {
		k = 3
	}
	words := memoryBytes / 8
	f := &Filter{
		bits:   make([]uint64, words),
		nbits:  uint64(words) * 64,
		hashes: make([]hashing.Bob, k),
	}
	for i := range f.hashes {
		f.hashes[i] = hashing.NewBob(uint32(0x9d2c + i*0x61))
	}
	return f
}

// NewForItems sizes a filter for n expected items at false-positive rate p.
func NewForItems(n int, p float64) *Filter {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	mBits := float64(n) * math.Log(p) / (math.Ln2 * math.Ln2) * -1
	k := int(math.Round(mBits / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(int(mBits/8)+8, k)
}

// Add inserts item.
func (f *Filter) Add(item stream.Item) {
	for _, h := range f.hashes {
		idx := (uint64(h.Hash64(item)) * f.nbits) >> 32
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// Contains reports whether item may have been added (no false negatives).
func (f *Filter) Contains(item stream.Item) bool {
	for _, h := range f.hashes {
		idx := (uint64(h.Hash64(item)) * f.nbits) >> 32
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// AddIfAbsent inserts item and reports whether it was (probably) absent
// before — the one-call idiom for per-period dedup.
func (f *Filter) AddIfAbsent(item stream.Item) bool {
	absent := !f.Contains(item)
	if absent {
		f.Add(item)
	}
	return absent
}

// Reset clears the filter (start of a new period).
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// MemoryBytes reports the bit-array footprint.
func (f *Filter) MemoryBytes() int { return len(f.bits) * 8 }

// EstimatedFPP estimates the current false-positive probability from the
// number of insertions: (1 − e^{−kn/m})^k.
func (f *Filter) EstimatedFPP() float64 {
	k := float64(len(f.hashes))
	return math.Pow(1-math.Exp(-k*float64(f.n)/float64(f.nbits)), k)
}

// Merge ORs other's bits into f. Both filters must have identical geometry;
// the result answers Contains for the union of both filters' insertions.
func (f *Filter) Merge(other *Filter) error {
	if other == nil || f.nbits != other.nbits || len(f.hashes) != len(other.hashes) {
		return fmt.Errorf("bloom: incompatible merge")
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}
