package ingest

import (
	"bytes"
	"testing"
)

// FuzzIngestDecode throws arbitrary bytes at the full server-side decode
// path — header, CRC, payload structure, batch decode — and checks the
// invariants that keep a hostile or corrupted producer from crashing the
// listener: no panics, no out-of-range reads, every accepted frame
// internally consistent, and the decoded shape bounded by the caps the
// parser promised.
func FuzzIngestDecode(f *testing.F) {
	// Seed corpus: one valid batch, one valid period, and the corruption
	// classes the protocol must reject — torn frame, forged length,
	// bit-flip, truncated trailer.
	valid, _ := AppendBatchPayload(nil, 7, "team-a", []string{"alice", "bob"}, []uint32{1, 3})
	validFrame := AppendFrame(nil, valid)
	f.Add(validFrame)
	period, _ := AppendPeriodPayload(nil, 8, "")
	f.Add(AppendFrame(nil, period))
	f.Add(validFrame[:len(validFrame)/2]) // torn mid-payload
	forged := bytes.Clone(validFrame)
	forged[5] ^= 0x7f // forged length field
	f.Add(forged)
	flipped := bytes.Clone(validFrame)
	flipped[HeaderSize+3] ^= 0x01 // payload bit-flip
	f.Add(flipped)
	f.Add(validFrame[:len(validFrame)-TrailerSize+1]) // truncated trailer
	f.Add([]byte(FrameMagic))                         // bare magic, no length
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := VerifyFrame(data, DefaultMaxFrameBytes)
		if err != nil {
			return
		}
		// VerifyFrame accepted: the payload must sit inside the frame.
		if len(p) > len(data)-HeaderSize-TrailerSize {
			t.Fatalf("payload longer than frame: %d > %d", len(p), len(data))
		}
		h, records, arrivals, err := ParsePayload(p)
		if err != nil {
			return
		}
		if arrivals > MaxBatchArrivals {
			t.Fatalf("parse admitted %d arrivals past the cap", arrivals)
		}
		if h.Type == TypePeriod {
			if records != 0 || arrivals != 0 {
				t.Fatalf("period with records=%d arrivals=%d", records, arrivals)
			}
			return
		}
		sc := &Scratch{}
		sc.Grow(records, arrivals)
		DecodeBatch(p, h, records, sc)
		if len(sc.Keys) != records || len(sc.Weights) != records {
			t.Fatalf("decoded %d/%d records, parser said %d",
				len(sc.Keys), len(sc.Weights), records)
		}
		if len(sc.Items) != arrivals {
			t.Fatalf("decoded %d items, parser said %d arrivals", len(sc.Items), arrivals)
		}
		total := 0
		for i, k := range sc.Keys {
			if len(k) == 0 {
				t.Fatalf("record %d decoded with an empty key", i)
			}
			if sc.Weights[i] == 0 {
				t.Fatalf("record %d decoded with zero weight", i)
			}
			total += int(sc.Weights[i])
		}
		if total != arrivals {
			t.Fatalf("weights sum to %d, parser said %d", total, arrivals)
		}
	})
}
