// Package ingest implements sigstream's framed binary ingest protocol:
// length-prefixed, CRC32-trailered batches of (key, weight) records over
// persistent TCP connections, with an optional UDP fire-and-forget mode
// for lossy telemetry. It exists because JSON-over-HTTP taxes every item
// with request setup, base-10 parsing and per-request allocation long
// before the tracker core is the bottleneck; here a batch is decoded
// zero-copy — key bytes are hashed straight out of the receive buffer
// into the pooled []uint64 slice the pipeline already consumes.
//
// Client frame (little-endian):
//
//	offset  size  field
//	0       4     magic "SBF1"
//	4       4     payload length n (u32)
//	8       n     payload (batch or period, below)
//	8+n     4     CRC32 (IEEE) over bytes [0, 8+n)
//
// Payload envelope, both types:
//
//	0       1     type (1 = batch, 2 = period)
//	1       4     sequence number (u32, echoed in the ack)
//	5       1     namespace length t (0 = default tenant)
//	6       t     namespace bytes
//
// A batch payload continues:
//
//	6+t     4     record count r (u32)
//	10+t    …     r × (u16 key length | key bytes | u32 weight ≥ 1)
//
// Ack frame (server → client, TCP only, fixed 20 bytes):
//
//	0       4     magic "SBA1"
//	4       4     sequence number (echoed)
//	8       1     status (0 ok, 1 throttled, 2 bad frame, 3 refused, 4 error)
//	9       1     reserved (0)
//	10      2     retry-after seconds (u16, throttled only)
//	12      4     accepted arrivals (u32)
//	16      4     CRC32 (IEEE) over bytes [0, 16)
//
// A record with weight w counts as w arrivals of its key; the WAL logs
// the weight-expanded key sequence in the existing RecordBatch format,
// so durability, replay and recovery are byte-identical to the same
// stream arriving over /v1/insert.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"sigstream"
)

// Protocol constants. MaxFrameBytes in Config bounds the payload length
// a server accepts; the frame adds HeaderSize+TrailerSize bytes around
// it.
const (
	// FrameMagic opens every client frame.
	FrameMagic = "SBF1"
	// AckMagic opens every server ack.
	AckMagic = "SBA1"
	// HeaderSize is the fixed client frame header (magic + length).
	HeaderSize = 8
	// TrailerSize is the CRC32 trailer.
	TrailerSize = 4
	// AckSize is the fixed ack frame size.
	AckSize = 20
	// TypeBatch is a batch of (key, weight) records.
	TypeBatch byte = 1
	// TypePeriod is a period boundary for the frame's tenant.
	TypePeriod byte = 2
	// DefaultMaxFrameBytes is the default payload cap (1 MiB).
	DefaultMaxFrameBytes = 1 << 20
	// MaxKeyBytes is the largest key a record can carry (u16 length).
	MaxKeyBytes = 1<<16 - 1
	// MaxNamespaceBytes matches tenant.ValidNamespace's length cap.
	MaxNamespaceBytes = 63
	// MaxBatchArrivals caps one batch's weight-expanded arrival count, so
	// a forged weight cannot expand a small frame into a multi-gigabyte
	// WAL record or item slice.
	MaxBatchArrivals = 1 << 20
	// envelopeSize is the fixed payload prefix (type + seq + ns length).
	envelopeSize = 6
)

// Ack statuses. Throttled and refused are per-frame: the connection
// stays usable. A bad frame means framing trust is lost and the server
// closes the connection after the ack (when the envelope was readable
// enough to carry a sequence number).
const (
	// StatusOK: the batch is applied (and fsynced when a WAL is
	// configured) or the period is closed.
	StatusOK byte = 0
	// StatusThrottled: the tenant's quota or pipeline high-water mark
	// refused the batch; retry after the hinted delay.
	StatusThrottled byte = 1
	// StatusBadFrame: the frame failed structural validation.
	StatusBadFrame byte = 2
	// StatusRefused: the namespace is invalid or deleted.
	StatusRefused byte = 3
	// StatusError: the server failed to apply an otherwise valid frame.
	StatusError byte = 4
)

// ErrFrame tags every frame validation failure; the specific sentinels
// below are pre-built so the //sig:noalloc parse path never constructs
// an error.
var (
	ErrFrame        = errors.New("ingest: invalid frame")
	errBadMagic     = fmt.Errorf("%w: bad magic", ErrFrame)
	errShortHeader  = fmt.Errorf("%w: short header", ErrFrame)
	errShortPayload = fmt.Errorf("%w: short payload", ErrFrame)
	errOversize     = fmt.Errorf("%w: payload exceeds frame cap", ErrFrame)
	errBadCRC       = fmt.Errorf("%w: checksum mismatch", ErrFrame)
	errBadType      = fmt.Errorf("%w: unknown payload type", ErrFrame)
	errBadNS        = fmt.Errorf("%w: namespace overruns payload", ErrFrame)
	errBadCount     = fmt.Errorf("%w: implausible record count", ErrFrame)
	errOverrun      = fmt.Errorf("%w: record overruns payload", ErrFrame)
	errEmptyKey     = fmt.Errorf("%w: empty key", ErrFrame)
	errZeroWeight   = fmt.Errorf("%w: zero weight", ErrFrame)
	errTooHeavy     = fmt.Errorf("%w: batch exceeds arrival cap", ErrFrame)
	errTrailing     = fmt.Errorf("%w: trailing bytes", ErrFrame)
	errBadAck       = fmt.Errorf("%w: malformed ack", ErrFrame)
)

// Head is the decoded envelope of one client frame. NS aliases the
// payload; an empty NS means the default tenant.
type Head struct {
	Type byte
	Seq  uint32
	NS   []byte
	body int // offset of the type-specific body within the payload
}

// ParseHeader validates a fixed frame header and returns the declared
// payload length, bounded by maxPayload so a forged length can neither
// drive an allocation nor stall the reader on gigabytes that will never
// arrive.
//
//sig:noalloc
func ParseHeader(hdr []byte, maxPayload int) (int, error) {
	if len(hdr) < HeaderSize {
		return 0, errShortHeader
	}
	if string(hdr[:4]) != FrameMagic {
		return 0, errBadMagic
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	if n < envelopeSize {
		return 0, errShortPayload
	}
	if n > maxPayload {
		return 0, errOversize
	}
	return n, nil
}

// ParsePayload validates the complete structure of a client frame
// payload — envelope, and for a batch every record's bounds, the weight
// floor and the arrival cap — and returns the head plus the batch's
// record and weight-expanded arrival counts (zero for a period). Every
// declared length is checked against the remaining payload before any
// slicing, so a forged count or length cannot drive an out-of-range
// read, and nothing is allocated: Head.NS aliases p, and errors are the
// package's pre-built sentinels.
//
//sig:noalloc
func ParsePayload(p []byte) (h Head, records, arrivals int, err error) {
	if len(p) < envelopeSize {
		return h, 0, 0, errShortPayload
	}
	h.Type = p[0]
	h.Seq = binary.LittleEndian.Uint32(p[1:])
	nsl := int(p[5])
	if nsl > MaxNamespaceBytes || envelopeSize+nsl > len(p) {
		return h, 0, 0, errBadNS
	}
	h.NS = p[envelopeSize : envelopeSize+nsl]
	h.body = envelopeSize + nsl
	switch h.Type {
	case TypePeriod:
		if h.body != len(p) {
			return h, 0, 0, errTrailing
		}
		return h, 0, 0, nil
	case TypeBatch:
		if h.body+4 > len(p) {
			return h, 0, 0, errShortPayload
		}
		n := int(binary.LittleEndian.Uint32(p[h.body:]))
		off := h.body + 4
		// Each record is at least 2+1+4 bytes, so a count that cannot fit
		// is rejected before the scan.
		if n > (len(p)-off)/7 {
			return h, 0, 0, errBadCount
		}
		for i := 0; i < n; i++ {
			if off+2 > len(p) {
				return h, 0, 0, errOverrun
			}
			kl := int(binary.LittleEndian.Uint16(p[off:]))
			off += 2
			if kl == 0 {
				return h, 0, 0, errEmptyKey
			}
			if kl > len(p)-off-4 {
				return h, 0, 0, errOverrun
			}
			off += kl
			w := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if w == 0 {
				return h, 0, 0, errZeroWeight
			}
			arrivals += w
			if arrivals > MaxBatchArrivals {
				return h, 0, 0, errTooHeavy
			}
		}
		if off != len(p) {
			return h, 0, 0, errTrailing
		}
		return h, n, arrivals, nil
	default:
		return h, 0, 0, errBadType
	}
}

// Scratch holds the pooled decode buffers one connection (or the UDP
// loop) reuses frame after frame: the payload read buffer and the three
// batch slices DecodeBatch fills. Keys alias Buf, so a Scratch must not
// be recycled while a decoded batch is still referenced.
type Scratch struct {
	Buf     []byte
	Keys    [][]byte
	Weights []uint32
	Items   []sigstream.Item
}

// Grow ensures capacity for a batch of the given shape. It is the cold,
// amortised growth path deliberately hoisted out of the //sig:noalloc
// DecodeBatch, mirroring the getScratch idiom in Sharded.InsertBatch.
func (sc *Scratch) Grow(records, arrivals int) {
	if cap(sc.Keys) < records {
		sc.Keys = make([][]byte, 0, records+records/2)
	}
	if cap(sc.Weights) < records {
		sc.Weights = make([]uint32, 0, records+records/2)
	}
	if cap(sc.Items) < arrivals {
		sc.Items = make([]sigstream.Item, 0, arrivals+arrivals/2)
	}
}

// GrowBuf ensures the payload read buffer holds n bytes.
func (sc *Scratch) GrowBuf(n int) {
	if cap(sc.Buf) < n {
		sc.Buf = make([]byte, n+n/2)
	}
}

// DecodeBatch fills sc's Keys/Weights/Items from a batch payload that
// ParsePayload validated (records and the arrival total already bounded
// and Grown for). This is the zero-copy hot path: Keys alias p, and
// Items receives HashKeyBytes of each key repeated its weight, in record
// order — exactly the arrival sequence /v1/insert would produce for the
// same stream — without materialising a single string.
//
//sig:noalloc
func DecodeBatch(p []byte, h Head, records int, sc *Scratch) {
	sc.Keys = sc.Keys[:0]
	sc.Weights = sc.Weights[:0]
	sc.Items = sc.Items[:0]
	off := h.body + 4
	for i := 0; i < records; i++ {
		kl := int(binary.LittleEndian.Uint16(p[off:]))
		off += 2
		k := p[off : off+kl]
		off += kl
		w := binary.LittleEndian.Uint32(p[off:])
		off += 4
		sc.Keys = append(sc.Keys, k)
		sc.Weights = append(sc.Weights, w)
		it := sigstream.HashKeyBytes(k)
		for ; w > 0; w-- {
			sc.Items = append(sc.Items, it)
		}
	}
}

// AppendFrame appends one complete frame — header, payload, CRC trailer
// — to dst and returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, FrameMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// VerifyFrame checks a complete frame image (one UDP datagram): magic,
// exact length match, and CRC. It returns the payload, aliasing frame.
func VerifyFrame(frame []byte, maxPayload int) ([]byte, error) {
	if len(frame) < HeaderSize+TrailerSize {
		return nil, errShortHeader
	}
	n, err := ParseHeader(frame[:HeaderSize], maxPayload)
	if err != nil {
		return nil, err
	}
	if len(frame) != HeaderSize+n+TrailerSize {
		return nil, errTrailing
	}
	sum := crc32.ChecksumIEEE(frame[:HeaderSize+n])
	if sum != binary.LittleEndian.Uint32(frame[HeaderSize+n:]) {
		return nil, errBadCRC
	}
	return frame[HeaderSize : HeaderSize+n], nil
}

// AppendBatchPayload appends a batch payload to dst: the envelope, then
// one record per key with its weight (weights == nil means all ones).
// It validates what the server would refuse — namespace and key length
// caps, zero weights, the arrival cap — so a client fails fast locally
// instead of burning a connection on a StatusBadFrame.
func AppendBatchPayload(dst []byte, seq uint32, ns string, keys []string, weights []uint32) ([]byte, error) {
	if len(ns) > MaxNamespaceBytes {
		return dst, errBadNS
	}
	if weights != nil && len(weights) != len(keys) {
		return dst, fmt.Errorf("%w: %d keys, %d weights", ErrFrame, len(keys), len(weights))
	}
	arrivals := 0
	for i, k := range keys {
		if len(k) == 0 {
			return dst, errEmptyKey
		}
		if len(k) > MaxKeyBytes {
			return dst, fmt.Errorf("%w: key %d is %d bytes (max %d)", ErrFrame, i, len(k), MaxKeyBytes)
		}
		w := 1
		if weights != nil {
			if weights[i] == 0 {
				return dst, errZeroWeight
			}
			w = int(weights[i])
		}
		arrivals += w
		if arrivals > MaxBatchArrivals {
			return dst, errTooHeavy
		}
	}
	dst = appendEnvelope(dst, TypeBatch, seq, ns)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for i, k := range keys {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(k)))
		dst = append(dst, k...)
		w := uint32(1)
		if weights != nil {
			w = weights[i]
		}
		dst = binary.LittleEndian.AppendUint32(dst, w)
	}
	return dst, nil
}

// AppendPeriodPayload appends a period-boundary payload to dst.
func AppendPeriodPayload(dst []byte, seq uint32, ns string) ([]byte, error) {
	if len(ns) > MaxNamespaceBytes {
		return dst, errBadNS
	}
	return appendEnvelope(dst, TypePeriod, seq, ns), nil
}

func appendEnvelope(dst []byte, typ byte, seq uint32, ns string) []byte {
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint32(dst, seq)
	dst = append(dst, byte(len(ns)))
	return append(dst, ns...)
}

// Ack is one decoded server acknowledgement.
type Ack struct {
	Seq        uint32
	Status     byte
	RetryAfter uint16 // seconds, StatusThrottled only
	Accepted   uint32 // weight-expanded arrivals applied
}

// AppendAck appends one ack frame to dst.
func AppendAck(dst []byte, a Ack) []byte {
	start := len(dst)
	dst = append(dst, AckMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, a.Seq)
	dst = append(dst, a.Status, 0)
	dst = binary.LittleEndian.AppendUint16(dst, a.RetryAfter)
	dst = binary.LittleEndian.AppendUint32(dst, a.Accepted)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// ParseAck decodes one fixed-size ack frame.
func ParseAck(b []byte) (Ack, error) {
	if len(b) < AckSize {
		return Ack{}, errBadAck
	}
	if string(b[:4]) != AckMagic {
		return Ack{}, errBadAck
	}
	if crc32.ChecksumIEEE(b[:AckSize-TrailerSize]) != binary.LittleEndian.Uint32(b[AckSize-TrailerSize:]) {
		return Ack{}, errBadAck
	}
	return Ack{
		Seq:        binary.LittleEndian.Uint32(b[4:]),
		Status:     b[8],
		RetryAfter: binary.LittleEndian.Uint16(b[10:]),
		Accepted:   binary.LittleEndian.Uint32(b[12:]),
	}, nil
}
