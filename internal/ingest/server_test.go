package ingest

import (
	"encoding/binary"
	"errors"
	"io"
	"log/slog"
	"net"
	"testing"
	"time"

	"sigstream"
	"sigstream/internal/tenant"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// startServer boots a registry with a pinned default tenant and an
// ingest listener on loopback, both torn down with the test.
func startServer(t testing.TB, rcfg tenant.Config) (*Server, *tenant.Registry) {
	t.Helper()
	if rcfg.Tracker.MemoryBytes == 0 {
		rcfg.Tracker.MemoryBytes = 1 << 14
	}
	if rcfg.Logger == nil {
		rcfg.Logger = quietLogger()
	}
	reg := tenant.NewRegistry(rcfg)
	if _, err := reg.Pin(tenant.DefaultNamespace, tenant.PinOptions{
		Tracker: sigstream.Config{MemoryBytes: 1 << 14},
		Shards:  1,
	}); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	s, err := Start(Config{
		Addr:     "127.0.0.1:0",
		UDPAddr:  "127.0.0.1:0",
		Registry: reg,
		Logger:   quietLogger(),
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		_ = s.Close()
		_ = reg.Close()
	})
	return s, reg
}

func dialTCP(t testing.TB, s *Server, opts Options) *Conn {
	t.Helper()
	c, err := Dial(s.Addr().String(), opts)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return c
}

// waitFor polls until cond holds, failing the test after two seconds —
// for the UDP paths, which are fire-and-forget and settle asynchronously.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerTCPInsertAndPeriod(t *testing.T) {
	s, reg := startServer(t, tenant.Config{})
	c := dialTCP(t, s, Options{})
	if err := c.Insert("alpha", "beta", "alpha"); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := c.InsertWeighted([]string{"alpha"}, []uint32{5}); err != nil {
		t.Fatalf("InsertWeighted: %v", err)
	}
	if err := c.Period(); err != nil {
		t.Fatalf("Period: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := c.Accepted(); got != 8 {
		t.Fatalf("Accepted = %d, want 8", got)
	}

	def, err := reg.Get(tenant.DefaultNamespace)
	if err != nil {
		t.Fatal(err)
	}
	if a := def.Arrivals(); a != 8 {
		t.Fatalf("tenant arrivals = %d, want 8", a)
	}
	if p := def.Periods(); p != 1 {
		t.Fatalf("tenant periods = %d, want 1", p)
	}
	// Weighted and repeated arrivals are the same stream: alpha has 7.
	e, ok, err := def.Query("alpha")
	if err != nil || !ok {
		t.Fatalf("Query(alpha): ok=%v err=%v", ok, err)
	}
	if e.Frequency != 7 {
		t.Fatalf("alpha frequency = %d, want 7", e.Frequency)
	}

	st := s.Stats()
	if st.ConnsTotal != 1 || st.Frames != 3 || st.Batches != 2 ||
		st.Arrivals != 8 || st.Periods != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes == 0 {
		t.Fatalf("no wire bytes counted")
	}
}

func TestServerPipelinedWindow(t *testing.T) {
	s, reg := startServer(t, tenant.Config{})
	c := dialTCP(t, s, Options{Window: 8})
	const batches = 64
	for i := 0; i < batches; i++ {
		if err := c.Insert("k1", "k2", "k3"); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := c.Accepted(); got != batches*3 {
		t.Fatalf("Accepted = %d, want %d", got, batches*3)
	}
	def, _ := reg.Get(tenant.DefaultNamespace)
	if a := def.Arrivals(); a != batches*3 {
		t.Fatalf("tenant arrivals = %d, want %d", a, batches*3)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestServerNamespaceRouting(t *testing.T) {
	s, reg := startServer(t, tenant.Config{})
	c := dialTCP(t, s, Options{Namespace: "team-a"})
	if err := c.Insert("x", "y"); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tn, err := reg.Get("team-a")
	if err != nil {
		t.Fatalf("namespace was not auto-created: %v", err)
	}
	if a := tn.Arrivals(); a != 2 {
		t.Fatalf("team-a arrivals = %d, want 2", a)
	}
	def, _ := reg.Get(tenant.DefaultNamespace)
	if a := def.Arrivals(); a != 0 {
		t.Fatalf("default tenant got %d arrivals, want 0", a)
	}
}

func TestServerThrottleAck(t *testing.T) {
	// Quota of 4/sec with a burst of 4: the first batch of 4 passes, the
	// next is throttled with a retry hint; the connection stays usable.
	s, _ := startServer(t, tenant.Config{QuotaPerSec: 4, QuotaBurst: 4})
	c := dialTCP(t, s, Options{Namespace: "ratelimited"})
	if err := c.Insert("a", "b", "c", "d"); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	err := c.Insert("e", "f", "g", "h")
	var ae *AckError
	if !errors.As(err, &ae) || !ae.Throttled() {
		t.Fatalf("second batch err = %v, want throttled AckError", err)
	}
	if ae.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want ≥ 1s", ae.RetryAfter)
	}
	// The refusal is per-frame: a period still goes through.
	if err := c.Period(); err != nil {
		t.Fatalf("Period after throttle: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := s.Stats(); st.Throttled != 1 {
		t.Fatalf("Throttled = %d, want 1", st.Throttled)
	}
}

func TestServerRefusedNamespace(t *testing.T) {
	// "UPPER" passes the wire-level length check but fails the registry's
	// ValidNamespace, so the server answers StatusRefused and keeps the
	// connection.
	s, _ := startServer(t, tenant.Config{})
	c := dialTCP(t, s, Options{Namespace: "UPPER"})
	err := c.Insert("k")
	var ae *AckError
	if !errors.As(err, &ae) || ae.Status != StatusRefused {
		t.Fatalf("err = %v, want refused AckError", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := s.Stats(); st.Refused != 1 {
		t.Fatalf("Refused = %d, want 1", st.Refused)
	}
}

func TestServerBadFrameDropsConnection(t *testing.T) {
	s, _ := startServer(t, tenant.Config{})
	raw, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	payload, err := AppendBatchPayload(nil, 1, "", []string{"k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frame := AppendFrame(nil, payload)
	frame[len(frame)-1] ^= 0xff // corrupt the CRC
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	// Framing trust is lost: the server closes without an ack.
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after bad frame = %v, want EOF", err)
	}
	if st := s.Stats(); st.BadFrames != 1 {
		t.Fatalf("BadFrames = %d, want 1", st.BadFrames)
	}
}

func TestServerOversizeHeaderDropsConnection(t *testing.T) {
	s, _ := startServer(t, tenant.Config{})
	raw, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var hdr [HeaderSize]byte
	copy(hdr[:], FrameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], DefaultMaxFrameBytes+1)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after oversize header = %v, want EOF", err)
	}
}

func TestServerUDPApplyAndDrops(t *testing.T) {
	s, reg := startServer(t, tenant.Config{})
	c, err := Dial(s.UDPAddr().String(), Options{Network: "udp"})
	if err != nil {
		t.Fatalf("Dial udp: %v", err)
	}
	defer c.Close()
	if err := c.Insert("u1", "u2"); err != nil {
		t.Fatalf("udp Insert: %v", err)
	}
	if err := c.Period(); err != nil {
		t.Fatalf("udp Period: %v", err)
	}
	def, _ := reg.Get(tenant.DefaultNamespace)
	waitFor(t, "udp arrivals", func() bool {
		return def.Arrivals() == 2 && def.Periods() == 1
	})

	// A corrupt datagram is silently discarded and counted.
	raw, err := net.Dial("udp", s.UDPAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("not a frame at all")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "udp drop counter", func() bool {
		return s.Stats().UDPDrops == 1
	})
	if st := s.Stats(); st.UDPFrames != 3 {
		t.Fatalf("UDPFrames = %d, want 3", st.UDPFrames)
	}
}

func TestServerGracefulDrain(t *testing.T) {
	s, reg := startServer(t, tenant.Config{})
	c := dialTCP(t, s, Options{})
	if err := c.Insert("drained"); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain the idle connection")
	}
	// The acked insert survived the drain.
	def, _ := reg.Get(tenant.DefaultNamespace)
	if a := def.Arrivals(); a != 1 {
		t.Fatalf("arrivals after drain = %d, want 1", a)
	}
	_ = c.Close()
	if s.Stats().Conns != 0 {
		t.Fatalf("open conns after drain: %d", s.Stats().Conns)
	}
}
