package ingest

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Options configures a client connection.
type Options struct {
	// Namespace is the tenant every frame targets ("" = default).
	Namespace string
	// Window is the maximum number of unacknowledged frames in flight
	// (minimum and default 1 = fully synchronous; larger windows
	// pipeline batches and amortise the round trip). Ignored over UDP.
	Window int
	// Network is "tcp" (default, acked and durable) or "udp"
	// (fire-and-forget; sends never block on the server and are never
	// confirmed).
	Network string
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

// AckError is a non-OK acknowledgement. Throttled and refused frames
// leave the connection usable — the batch was not applied, and the
// caller may retry after RetryAfter; other statuses mean the server is
// about to drop the connection.
type AckError struct {
	// Status is the ack's status byte (StatusThrottled, …).
	Status byte
	// Seq is the rejected frame's sequence number. With Window > 1 the
	// error surfaces on a later call than the one that sent the frame;
	// Seq says which frame was refused.
	Seq uint32
	// RetryAfter is the server's backoff hint (StatusThrottled only).
	RetryAfter time.Duration
}

func (e *AckError) Error() string {
	switch e.Status {
	case StatusThrottled:
		return fmt.Sprintf("ingest: frame %d throttled, retry after %s", e.Seq, e.RetryAfter)
	case StatusBadFrame:
		return fmt.Sprintf("ingest: frame %d rejected as malformed", e.Seq)
	case StatusRefused:
		return fmt.Sprintf("ingest: frame %d refused (bad or deleted namespace)", e.Seq)
	default:
		return fmt.Sprintf("ingest: frame %d failed with status %d", e.Seq, e.Status)
	}
}

// Throttled reports whether the error is a retryable quota/backpressure
// refusal.
func (e *AckError) Throttled() bool { return e.Status == StatusThrottled }

// Conn is a client connection speaking the framed binary protocol. Its
// methods are safe for concurrent use (serialized internally); frames
// are sequenced and, over TCP, acknowledged in order.
type Conn struct {
	mu       sync.Mutex
	c        net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	udp      bool
	ns       string
	window   int
	seq      uint32
	pending  int
	sticky   error
	payload  []byte
	frame    []byte
	accepted uint64
}

// Dial connects to a sigserver binary ingest listener.
func Dial(addr string, opts Options) (*Conn, error) {
	network := opts.Network
	if network == "" {
		network = "tcp"
	}
	if network != "tcp" && network != "udp" {
		return nil, fmt.Errorf("ingest: unsupported network %q", network)
	}
	if len(opts.Namespace) > MaxNamespaceBytes {
		return nil, errBadNS
	}
	timeout := opts.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	window := opts.Window
	if window < 1 {
		window = 1
	}
	conn := &Conn{c: c, udp: network == "udp", ns: opts.Namespace, window: window}
	if !conn.udp {
		conn.br = bufio.NewReaderSize(c, 4<<10)
		conn.bw = bufio.NewWriterSize(c, 64<<10)
	}
	return conn, nil
}

// Insert sends one batch recording one arrival per key, in order.
func (c *Conn) Insert(keys ...string) error {
	return c.InsertWeighted(keys, nil)
}

// InsertWeighted sends one batch of (key, weight) records: weights[i]
// arrivals of keys[i], in record order (nil weights = all ones). Over
// TCP a nil return means the batch is acknowledged — or still in flight
// within the window; call Flush for the hard guarantee. Over UDP the
// datagram is sent and may be silently dropped.
func (c *Conn) InsertWeighted(keys []string, weights []uint32) error {
	if len(keys) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sticky != nil {
		return c.sticky
	}
	var err error
	c.payload, err = AppendBatchPayload(c.payload[:0], c.seq, c.ns, keys, weights)
	if err != nil {
		return err
	}
	return c.sendLocked()
}

// Period sends a period-boundary frame for the connection's tenant.
func (c *Conn) Period() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sticky != nil {
		return c.sticky
	}
	var err error
	c.payload, err = AppendPeriodPayload(c.payload[:0], c.seq, c.ns)
	if err != nil {
		return err
	}
	return c.sendLocked()
}

// sendLocked frames c.payload, writes it, and over TCP reads acks until
// the window has room again. Caller holds c.mu with c.payload built for
// c.seq.
func (c *Conn) sendLocked() error {
	c.seq++
	c.frame = AppendFrame(c.frame[:0], c.payload)
	if c.udp {
		// One frame per datagram; no ack will ever come.
		_, err := c.c.Write(c.frame)
		if err != nil {
			c.sticky = err
		}
		return err
	}
	if _, err := c.bw.Write(c.frame); err != nil {
		c.sticky = err
		return err
	}
	c.pending++
	var ackErr error
	for c.pending >= c.window {
		if err := c.readAckLocked(); err != nil {
			if c.sticky != nil {
				return err
			}
			ackErr = err // retryable refusal; keep draining to the window
		}
	}
	return ackErr
}

// Flush pushes every buffered frame and, over TCP, waits for all
// outstanding acks. A nil return means every frame sent so far was
// applied (and fsynced when the server runs a WAL).
func (c *Conn) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sticky != nil {
		return c.sticky
	}
	if c.udp {
		return nil
	}
	var ackErr error
	for c.pending > 0 {
		if err := c.readAckLocked(); err != nil {
			if c.sticky != nil {
				return err
			}
			if ackErr == nil {
				ackErr = err
			}
		}
	}
	if err := c.flushLocked(); err != nil {
		return err
	}
	return ackErr
}

// flushLocked pushes the write buffer, making any failure sticky. Caller
// holds c.mu — the buffered writer is only ever touched under it.
func (c *Conn) flushLocked() error {
	if err := c.bw.Flush(); err != nil {
		c.sticky = err
		return err
	}
	return nil
}

// readAckLocked flushes pending writes and consumes one ack. I/O and
// protocol failures become sticky; a non-OK status is returned as an
// *AckError without poisoning the connection (unless the server is
// about to drop it anyway).
func (c *Conn) readAckLocked() error {
	if err := c.flushLocked(); err != nil {
		return err
	}
	var buf [AckSize]byte
	if _, err := io.ReadFull(c.br, buf[:]); err != nil {
		c.sticky = err
		return err
	}
	a, err := ParseAck(buf[:])
	if err != nil {
		c.sticky = err
		return err
	}
	c.pending--
	if a.Status == StatusOK {
		c.accepted += uint64(a.Accepted)
		return nil
	}
	aerr := &AckError{Status: a.Status, Seq: a.Seq, RetryAfter: time.Duration(a.RetryAfter) * time.Second}
	if a.Status != StatusThrottled && a.Status != StatusRefused {
		c.sticky = aerr
	}
	return aerr
}

// Accepted reports the total weight-expanded arrivals the server has
// acknowledged on this connection.
func (c *Conn) Accepted() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accepted
}

// Close flushes, drains outstanding acks (TCP), and closes the
// connection. The first ack error, if any, is returned after the close.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ackErr error
	if c.sticky == nil && !c.udp {
		for c.pending > 0 {
			if err := c.readAckLocked(); err != nil {
				if c.sticky != nil {
					break
				}
				if ackErr == nil {
					ackErr = err
				}
			}
		}
		if err := c.flushLocked(); err != nil && ackErr == nil {
			ackErr = err
		}
	}
	if err := c.c.Close(); err != nil && ackErr == nil {
		ackErr = err
	}
	return ackErr
}
