package ingest

import (
	"strconv"
	"testing"

	"sigstream/internal/tenant"
)

// benchKeys renders n distinct decimal keys, the same rendering siggen
// ships and the trace loader feeds through /v1/insert.
func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = strconv.FormatUint(uint64(1_000_000+i%5_000), 10)
	}
	return keys
}

// BenchmarkDecodeBatch is the per-frame hot path in isolation: verify,
// parse and zero-copy decode one 512-record batch. The -benchmem numbers
// pin the //sig:noalloc promise end to end.
func BenchmarkDecodeBatch(b *testing.B) {
	keys := benchKeys(512)
	payload, err := AppendBatchPayload(nil, 1, "", keys, nil)
	if err != nil {
		b.Fatal(err)
	}
	frame := AppendFrame(nil, payload)
	sc := &Scratch{}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := VerifyFrame(frame, DefaultMaxFrameBytes)
		if err != nil {
			b.Fatal(err)
		}
		h, records, arrivals, err := ParsePayload(p)
		if err != nil {
			b.Fatal(err)
		}
		sc.Grow(records, arrivals)
		DecodeBatch(p, h, records, sc)
	}
	b.ReportMetric(float64(b.N)*512/b.Elapsed().Seconds()/1e6, "Mitems/s")
}

// benchIngest drives one TCP connection at the given window over a live
// loopback server, one 512-key batch per op.
func benchIngest(b *testing.B, window int) {
	s, _ := startServer(b, tenant.Config{})
	c := dialTCP(b, s, Options{Window: window})
	defer c.Close()
	keys := benchKeys(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert(keys...); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*512/b.Elapsed().Seconds()/1e6, "Mitems/s")
}

// BenchmarkIngestBinaryTCP is the synchronous transport: every batch
// waits for its fsync-backed ack before the next is sent.
func BenchmarkIngestBinaryTCP(b *testing.B) { benchIngest(b, 1) }

// BenchmarkIngestBinaryTCPPipelined keeps 32 batches in flight, the
// windowed mode a sustained producer runs.
func BenchmarkIngestBinaryTCPPipelined(b *testing.B) { benchIngest(b, 32) }
