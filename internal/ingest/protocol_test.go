package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"sigstream"
)

// buildFrame is the test shorthand: a complete framed batch.
func buildFrame(t *testing.T, seq uint32, ns string, keys []string, weights []uint32) []byte {
	t.Helper()
	payload, err := AppendBatchPayload(nil, seq, ns, keys, weights)
	if err != nil {
		t.Fatalf("AppendBatchPayload: %v", err)
	}
	return AppendFrame(nil, payload)
}

func TestFrameRoundTrip(t *testing.T) {
	keys := []string{"alice", "bob", "carol"}
	weights := []uint32{1, 3, 2}
	frame := buildFrame(t, 7, "team-a", keys, weights)

	p, err := VerifyFrame(frame, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatalf("VerifyFrame: %v", err)
	}
	h, records, arrivals, err := ParsePayload(p)
	if err != nil {
		t.Fatalf("ParsePayload: %v", err)
	}
	if h.Type != TypeBatch || h.Seq != 7 || string(h.NS) != "team-a" {
		t.Fatalf("head = %+v", h)
	}
	if records != 3 || arrivals != 6 {
		t.Fatalf("records=%d arrivals=%d, want 3 and 6", records, arrivals)
	}
	sc := &Scratch{}
	sc.Grow(records, arrivals)
	DecodeBatch(p, h, records, sc)
	if len(sc.Keys) != 3 || len(sc.Weights) != 3 || len(sc.Items) != 6 {
		t.Fatalf("decoded shapes: keys=%d weights=%d items=%d",
			len(sc.Keys), len(sc.Weights), len(sc.Items))
	}
	// Items must be the weight-expanded HashKey sequence, in record order
	// — the exact arrivals /v1/insert would produce.
	want := []sigstream.Item{
		sigstream.HashKey("alice"),
		sigstream.HashKey("bob"), sigstream.HashKey("bob"), sigstream.HashKey("bob"),
		sigstream.HashKey("carol"), sigstream.HashKey("carol"),
	}
	for i, it := range want {
		if sc.Items[i] != it {
			t.Fatalf("item %d = %#x, want %#x", i, sc.Items[i], it)
		}
	}
	for i, k := range keys {
		if string(sc.Keys[i]) != k || sc.Weights[i] != weights[i] {
			t.Fatalf("record %d = (%q, %d), want (%q, %d)",
				i, sc.Keys[i], sc.Weights[i], k, weights[i])
		}
	}
}

func TestPeriodRoundTrip(t *testing.T) {
	payload, err := AppendPeriodPayload(nil, 42, "ns-1")
	if err != nil {
		t.Fatalf("AppendPeriodPayload: %v", err)
	}
	frame := AppendFrame(nil, payload)
	p, err := VerifyFrame(frame, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatalf("VerifyFrame: %v", err)
	}
	h, records, arrivals, err := ParsePayload(p)
	if err != nil {
		t.Fatalf("ParsePayload: %v", err)
	}
	if h.Type != TypePeriod || h.Seq != 42 || string(h.NS) != "ns-1" || records != 0 || arrivals != 0 {
		t.Fatalf("head=%+v records=%d arrivals=%d", h, records, arrivals)
	}
}

func TestVerifyFrameRejectsCorruption(t *testing.T) {
	good := buildFrame(t, 1, "", []string{"k"}, nil)
	cases := map[string]func() []byte{
		"bit flip in payload": func() []byte {
			b := bytes.Clone(good)
			b[HeaderSize+2] ^= 0x40
			return b
		},
		"bit flip in trailer": func() []byte {
			b := bytes.Clone(good)
			b[len(b)-1] ^= 0x01
			return b
		},
		"torn tail": func() []byte { return good[:len(good)-3] },
		"bad magic": func() []byte {
			b := bytes.Clone(good)
			b[0] = 'X'
			return b
		},
		"forged length": func() []byte {
			b := bytes.Clone(good)
			b[4] ^= 0x80
			return b
		},
		"trailing garbage": func() []byte { return append(bytes.Clone(good), 0xee) },
	}
	for name, build := range cases {
		if _, err := VerifyFrame(build(), DefaultMaxFrameBytes); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", name, err)
		}
	}
	if _, err := VerifyFrame(good, DefaultMaxFrameBytes); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

func TestParsePayloadRejects(t *testing.T) {
	valid, _ := AppendBatchPayload(nil, 1, "ns", []string{"key"}, nil)
	cases := map[string][]byte{
		"empty":        {},
		"short":        {TypeBatch, 0, 0},
		"unknown type": append([]byte{9}, valid[1:]...),
		"ns overrun":   {TypeBatch, 0, 0, 0, 0, 200, 'a'},
		"period trailing": func() []byte {
			p, _ := AppendPeriodPayload(nil, 1, "")
			return append(p, 0)
		}(),
		"batch trailing": append(bytes.Clone(valid), 0),
		"record overrun": valid[:len(valid)-2],
		"forged count": func() []byte {
			p := bytes.Clone(valid)
			p[len("ns")+6] = 0xff // claims 255 records in a 1-record payload
			return p
		}(),
		"zero weight": func() []byte {
			p := bytes.Clone(valid)
			// weight is the final u32
			p[len(p)-4], p[len(p)-3], p[len(p)-2], p[len(p)-1] = 0, 0, 0, 0
			return p
		}(),
	}
	for name, p := range cases {
		if _, _, _, err := ParsePayload(p); !errors.Is(err, ErrFrame) {
			t.Errorf("%s: err = %v, want ErrFrame", name, err)
		}
	}
}

func TestParsePayloadArrivalCap(t *testing.T) {
	// Two records whose weights sum past the cap must be refused even
	// though each alone is legal — the cap bounds the expansion, not the
	// field width.
	p, err := AppendBatchPayload(nil, 1, "", []string{"a", "b"}, []uint32{MaxBatchArrivals, 1})
	if err == nil {
		_, _, _, err = ParsePayload(p)
	}
	if !errors.Is(err, errTooHeavy) {
		t.Fatalf("err = %v, want errTooHeavy", err)
	}
	// Forge an overweight batch on the wire (the client validation above
	// refuses to build one): take a valid single-record payload and patch
	// its trailing weight field past the cap. The server-side parse must
	// refuse it too.
	forged, err := AppendBatchPayload(nil, 1, "", []string{"a"}, nil)
	if err != nil {
		t.Fatalf("AppendBatchPayload: %v", err)
	}
	binary.LittleEndian.PutUint32(forged[len(forged)-4:], MaxBatchArrivals+1)
	if _, _, _, err := ParsePayload(forged); !errors.Is(err, errTooHeavy) {
		t.Fatalf("forged: err = %v, want errTooHeavy", err)
	}
}

func TestAppendBatchPayloadValidates(t *testing.T) {
	if _, err := AppendBatchPayload(nil, 0, "", []string{""}, nil); !errors.Is(err, errEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	if _, err := AppendBatchPayload(nil, 0, "", []string{"k"}, []uint32{0}); !errors.Is(err, errZeroWeight) {
		t.Fatalf("zero weight: %v", err)
	}
	if _, err := AppendBatchPayload(nil, 0, "", []string{"a", "b"}, []uint32{1}); !errors.Is(err, ErrFrame) {
		t.Fatalf("length mismatch: want error")
	}
	long := string(make([]byte, MaxNamespaceBytes+1))
	if _, err := AppendBatchPayload(nil, 0, long, []string{"k"}, nil); !errors.Is(err, errBadNS) {
		t.Fatalf("long namespace: want errBadNS")
	}
	big := string(make([]byte, MaxKeyBytes+1))
	if _, err := AppendBatchPayload(nil, 0, "", []string{big}, nil); !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized key: want error")
	}
}

func TestAckRoundTrip(t *testing.T) {
	in := Ack{Seq: 99, Status: StatusThrottled, RetryAfter: 3, Accepted: 1234}
	b := AppendAck(nil, in)
	if len(b) != AckSize {
		t.Fatalf("ack size = %d, want %d", len(b), AckSize)
	}
	out, err := ParseAck(b)
	if err != nil {
		t.Fatalf("ParseAck: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	b[5] ^= 0x10
	if _, err := ParseAck(b); !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupt ack accepted")
	}
}

func TestParseHeaderBounds(t *testing.T) {
	frame := buildFrame(t, 1, "", []string{"k"}, nil)
	n, err := ParseHeader(frame[:HeaderSize], DefaultMaxFrameBytes)
	if err != nil || n != len(frame)-HeaderSize-TrailerSize {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if _, err := ParseHeader(frame[:HeaderSize], n-1); !errors.Is(err, errOversize) {
		t.Fatalf("cap not enforced: %v", err)
	}
	if _, err := ParseHeader(frame[:4], DefaultMaxFrameBytes); !errors.Is(err, errShortHeader) {
		t.Fatalf("short header accepted")
	}
}

// TestDecodeAllocs pins the zero-allocation property the //sig:noalloc
// annotations promise: after the scratch has grown once, a steady state
// of parse+decode does not allocate.
func TestDecodeAllocs(t *testing.T) {
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = "key-" + string(rune('a'+i%26)) + "-suffix"
	}
	frame := buildFrame(t, 1, "bench", keys, nil)
	sc := &Scratch{}
	run := func() {
		p, err := VerifyFrame(frame, DefaultMaxFrameBytes)
		if err != nil {
			t.Fatal(err)
		}
		h, records, arrivals, err := ParsePayload(p)
		if err != nil {
			t.Fatal(err)
		}
		sc.Grow(records, arrivals)
		DecodeBatch(p, h, records, sc)
	}
	run() // warm the scratch
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("steady-state decode allocates %.1f objects/op, want 0", allocs)
	}
}
