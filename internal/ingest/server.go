package ingest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sigstream/internal/fault"
	"sigstream/internal/obs"
	"sigstream/internal/tenant"
)

// Config configures an ingest listener.
type Config struct {
	// Addr is the TCP listen address ("" disables TCP).
	Addr string
	// UDPAddr is the UDP listen address ("" disables UDP).
	UDPAddr string
	// Registry resolves frame namespaces to tenants.
	Registry *tenant.Registry
	// MaxFrameBytes caps a frame's payload length (DefaultMaxFrameBytes
	// when zero). UDP payloads are additionally bounded by the datagram.
	MaxFrameBytes int
	// Logger receives accept/serve diagnostics (slog.Default when nil).
	Logger *slog.Logger
}

// Stats is a point-in-time snapshot of the listener's counters.
type Stats struct {
	// Conns is the number of currently open TCP connections.
	Conns int64
	// ConnsTotal counts TCP connections ever accepted.
	ConnsTotal uint64
	// Frames counts valid TCP frames processed.
	Frames uint64
	// Batches counts batch frames applied (acked StatusOK).
	Batches uint64
	// Arrivals counts weight-expanded arrivals applied over TCP.
	Arrivals uint64
	// Periods counts period frames applied.
	Periods uint64
	// Bytes counts TCP wire bytes consumed (headers and trailers
	// included).
	Bytes uint64
	// Throttled counts frames refused by quota or pipeline high water.
	Throttled uint64
	// Refused counts frames naming an invalid or deleted namespace.
	Refused uint64
	// BadFrames counts TCP frames that failed structural validation.
	BadFrames uint64
	// Errors counts frames the server failed to apply.
	Errors uint64
	// UDPFrames counts datagrams received on the UDP listener.
	UDPFrames uint64
	// UDPDrops counts datagrams discarded for any reason — corrupt
	// frame, quota denial, refused namespace or apply failure. UDP is
	// fire-and-forget: this counter is the only trace.
	UDPDrops uint64
}

// Server is a running binary ingest listener: an accept loop per
// transport, one goroutine per TCP connection, pooled decode scratch,
// and a graceful drain on Close — every frame fully received before the
// close is processed and acked.
type Server struct {
	cfg Config
	tcp net.Listener
	udp net.PacketConn

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	closed  atomic.Bool
	scratch sync.Pool

	active     atomic.Int64
	connsTotal atomic.Uint64
	frames     atomic.Uint64
	batches    atomic.Uint64
	arrivals   atomic.Uint64
	periods    atomic.Uint64
	bytes      atomic.Uint64
	throttled  atomic.Uint64
	refused    atomic.Uint64
	badFrames  atomic.Uint64
	errs       atomic.Uint64
	udpFrames  atomic.Uint64
	udpDrops   atomic.Uint64
}

// Start opens the configured listeners and begins serving. At least one
// of Addr/UDPAddr must be set.
func Start(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, errors.New("ingest: Config.Registry is required")
	}
	if cfg.Addr == "" && cfg.UDPAddr == "" {
		return nil, errors.New("ingest: no listen address")
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.scratch.New = func() any { return new(Scratch) }
	if cfg.Addr != "" {
		ln, err := net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
		s.tcp = ln
	}
	if cfg.UDPAddr != "" {
		pc, err := net.ListenPacket("udp", cfg.UDPAddr)
		if err != nil {
			if s.tcp != nil {
				_ = s.tcp.Close()
			}
			return nil, err
		}
		s.udp = pc
	}
	if s.tcp != nil {
		s.wg.Add(1)
		go s.acceptLoop()
	}
	if s.udp != nil {
		s.wg.Add(1)
		go s.udpLoop()
	}
	return s, nil
}

// Addr reports the TCP listener's address, nil when TCP is disabled.
func (s *Server) Addr() net.Addr {
	if s.tcp == nil {
		return nil
	}
	return s.tcp.Addr()
}

// UDPAddr reports the UDP listener's address, nil when UDP is disabled.
func (s *Server) UDPAddr() net.Addr {
	if s.udp == nil {
		return nil
	}
	return s.udp.LocalAddr()
}

// Close drains the listener: stop accepting, nudge every connection's
// blocked read, and wait for the per-connection loops to finish. A frame
// whose bytes were fully received before the close is processed and
// acked; a frame cut off mid-read is dropped unacked, which is exactly
// the durability contract (never acked, never applied). Idempotent.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.tcp != nil {
		_ = s.tcp.Close()
	}
	if s.udp != nil {
		_ = s.udp.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Stats snapshots the listener's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:      s.active.Load(),
		ConnsTotal: s.connsTotal.Load(),
		Frames:     s.frames.Load(),
		Batches:    s.batches.Load(),
		Arrivals:   s.arrivals.Load(),
		Periods:    s.periods.Load(),
		Bytes:      s.bytes.Load(),
		Throttled:  s.throttled.Load(),
		Refused:    s.refused.Load(),
		BadFrames:  s.badFrames.Load(),
		Errors:     s.errs.Load(),
		UDPFrames:  s.udpFrames.Load(),
		UDPDrops:   s.udpDrops.Load(),
	}
}

// Collect writes the sigstream_ingest_* metric families; the server
// registers it with the /metrics registry. Counters are plain atomics,
// so a scrape never touches a tenant lock.
func (s *Server) Collect(w *obs.Writer) {
	st := s.Stats()
	w.Gauge("sigstream_ingest_connections",
		"Open binary ingest TCP connections.", float64(st.Conns))
	w.Counter("sigstream_ingest_connections_total",
		"Binary ingest TCP connections accepted.", float64(st.ConnsTotal))
	w.Counter("sigstream_ingest_frames_total",
		"Valid binary ingest frames received.", float64(st.Frames),
		obs.Label{Name: "proto", Value: "tcp"})
	w.Counter("sigstream_ingest_frames_total",
		"Valid binary ingest frames received.", float64(st.UDPFrames),
		obs.Label{Name: "proto", Value: "udp"})
	w.Counter("sigstream_ingest_batches_total",
		"Binary ingest batches applied.", float64(st.Batches))
	w.Counter("sigstream_ingest_arrivals_total",
		"Weight-expanded arrivals applied via binary ingest.", float64(st.Arrivals))
	w.Counter("sigstream_ingest_periods_total",
		"Period boundaries applied via binary ingest.", float64(st.Periods))
	w.Counter("sigstream_ingest_bytes_total",
		"Binary ingest wire bytes consumed.", float64(st.Bytes))
	w.Counter("sigstream_ingest_throttled_total",
		"Binary ingest frames refused by quota or backpressure.", float64(st.Throttled))
	w.Counter("sigstream_ingest_refused_total",
		"Binary ingest frames naming an invalid or deleted namespace.", float64(st.Refused))
	w.Counter("sigstream_ingest_bad_frames_total",
		"Binary ingest frames failing structural validation.", float64(st.BadFrames))
	w.Counter("sigstream_ingest_errors_total",
		"Binary ingest frames the server failed to apply.", float64(st.Errors))
	w.Counter("sigstream_ingest_udp_drops_total",
		"UDP ingest datagrams discarded (corrupt, throttled, refused or failed).",
		float64(st.UDPDrops))
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.tcp.Accept()
		if err != nil {
			if !s.closed.Load() {
				s.cfg.Logger.Warn("ingest: accept failed", "err", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			_ = c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.active.Add(1)
		s.wg.Add(1)
		go s.serve(c)
	}
}

// serve runs one TCP connection: read a frame, decode it zero-copy into
// the pooled scratch, apply it to the frame's tenant, ack. Acks are
// buffered and flushed only when no complete frame is already buffered,
// so a pipelining client pays one syscall per burst, not per batch. The
// last-resolved tenant is cached per connection — the common one-tenant
// feed resolves its namespace once, not per frame.
func (s *Server) serve(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		_ = c.Close()
		s.active.Add(-1)
	}()
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	sc := s.scratch.Get().(*Scratch)
	defer s.scratch.Put(sc)
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 8<<10)
	defer func() { _ = bw.Flush() }()
	var hdr [HeaderSize]byte
	var curNS []byte
	var cur *tenant.Tenant
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // EOF, reset, or the drain deadline
		}
		n, err := ParseHeader(hdr[:], s.cfg.MaxFrameBytes)
		if err != nil {
			// Framing is lost: without a trusted length there is no next
			// frame to resync to.
			s.badFrames.Add(1)
			return
		}
		sc.GrowBuf(n + TrailerSize)
		buf := sc.Buf[:n+TrailerSize]
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		sum := crc32.Update(0, crc32.IEEETable, hdr[:])
		sum = crc32.Update(sum, crc32.IEEETable, buf[:n])
		if sum != binary.LittleEndian.Uint32(buf[n:]) {
			s.badFrames.Add(1)
			return
		}
		s.frames.Add(1)
		s.bytes.Add(uint64(HeaderSize + n + TrailerSize))
		p := buf[:n]
		h, records, arrivals, perr := ParsePayload(p)
		if perr != nil {
			// The envelope may not have parsed, so h.Seq is best-effort.
			s.badFrames.Add(1)
			s.writeAck(bw, Ack{Seq: h.Seq, Status: StatusBadFrame})
			_ = bw.Flush()
			return
		}
		if cur == nil || !bytes.Equal(h.NS, curNS) {
			tn, terr := s.resolve(h.NS)
			if terr != nil {
				s.refused.Add(1)
				s.writeAck(bw, Ack{Seq: h.Seq, Status: StatusRefused})
				if err := s.maybeFlush(bw, br); err != nil {
					return
				}
				continue
			}
			cur = tn
			curNS = append(curNS[:0], h.NS...)
		}
		var ack Ack
		switch h.Type {
		case TypePeriod:
			ack = s.applyPeriod(cur, h.Seq)
		case TypeBatch:
			if fault.Inject(fault.IngestAccept, 0) != nil {
				// Simulated crash between receive and WAL append: the
				// connection dies with the batch unacked and unapplied.
				s.errs.Add(1)
				return
			}
			sc.Grow(records, arrivals)
			DecodeBatch(p, h, records, sc)
			ack = s.applyBatch(cur, h.Seq, sc)
		}
		s.writeAck(bw, ack)
		if err := s.maybeFlush(bw, br); err != nil {
			return
		}
		if s.closed.Load() {
			_ = bw.Flush()
			return
		}
	}
}

// applyBatch feeds one decoded batch to its tenant and maps the result
// to an ack.
func (s *Server) applyBatch(tn *tenant.Tenant, seq uint32, sc *Scratch) Ack {
	if tn.Overloaded() {
		s.throttled.Add(1)
		return Ack{Seq: seq, Status: StatusThrottled, RetryAfter: 1}
	}
	got, err := tn.IngestWire(tenant.WireBatch{Keys: sc.Keys, Weights: sc.Weights, Items: sc.Items})
	if err != nil {
		return s.errAck(seq, err)
	}
	s.batches.Add(1)
	s.arrivals.Add(uint64(got))
	return Ack{Seq: seq, Status: StatusOK, Accepted: uint32(got)}
}

// applyPeriod closes the tenant's period and maps the result to an ack.
func (s *Server) applyPeriod(tn *tenant.Tenant, seq uint32) Ack {
	if _, err := tn.EndPeriod(); err != nil {
		return s.errAck(seq, err)
	}
	s.periods.Add(1)
	return Ack{Seq: seq, Status: StatusOK}
}

// errAck maps a tenant error onto an ack status, counting it.
func (s *Server) errAck(seq uint32, err error) Ack {
	var qe *tenant.QuotaError
	if errors.As(err, &qe) {
		s.throttled.Add(1)
		return Ack{Seq: seq, Status: StatusThrottled, RetryAfter: retrySeconds(qe.RetryAfter)}
	}
	if errors.Is(err, tenant.ErrNotFound) || errors.Is(err, tenant.ErrBadNamespace) {
		s.refused.Add(1)
		return Ack{Seq: seq, Status: StatusRefused}
	}
	s.errs.Add(1)
	s.cfg.Logger.Warn("ingest: apply failed", "err", err)
	return Ack{Seq: seq, Status: StatusError}
}

// resolve maps a frame's namespace bytes to its tenant; empty means the
// default tenant. The string conversion allocates only on a connection's
// namespace switch — serve caches the result.
func (s *Server) resolve(ns []byte) (*tenant.Tenant, error) {
	if len(ns) == 0 {
		return s.cfg.Registry.Get(tenant.DefaultNamespace)
	}
	return s.cfg.Registry.GetOrCreate(string(ns))
}

func (s *Server) writeAck(bw *bufio.Writer, a Ack) {
	var buf [AckSize]byte
	_, _ = bw.Write(AppendAck(buf[:0], a))
}

// maybeFlush flushes buffered acks when the reader holds no complete
// next frame — the batching heuristic that makes pipelined clients pay
// one write per burst while a synchronous client still gets its ack
// immediately.
func (s *Server) maybeFlush(bw *bufio.Writer, br *bufio.Reader) error {
	if br.Buffered() >= HeaderSize {
		return nil
	}
	return bw.Flush()
}

// udpLoop serves the fire-and-forget transport: one frame per datagram,
// no acks, every discard counted in UDPDrops.
func (s *Server) udpLoop() {
	defer s.wg.Done()
	buf := make([]byte, 64<<10)
	sc := &Scratch{}
	var curNS []byte
	var cur *tenant.Tenant
	for {
		n, _, err := s.udp.ReadFrom(buf)
		if err != nil {
			if !s.closed.Load() {
				s.cfg.Logger.Warn("ingest: udp read failed", "err", err)
			}
			return
		}
		s.udpFrames.Add(1)
		p, err := VerifyFrame(buf[:n], s.cfg.MaxFrameBytes)
		if err != nil {
			s.udpDrops.Add(1)
			continue
		}
		h, records, arrivals, perr := ParsePayload(p)
		if perr != nil {
			s.udpDrops.Add(1)
			continue
		}
		if cur == nil || !bytes.Equal(h.NS, curNS) {
			tn, terr := s.resolve(h.NS)
			if terr != nil {
				s.udpDrops.Add(1)
				continue
			}
			cur = tn
			curNS = append(curNS[:0], h.NS...)
		}
		switch h.Type {
		case TypePeriod:
			if _, err := cur.EndPeriod(); err != nil {
				s.udpDrops.Add(1)
				continue
			}
			s.periods.Add(1)
		case TypeBatch:
			if cur.Overloaded() {
				s.udpDrops.Add(1)
				continue
			}
			sc.Grow(records, arrivals)
			DecodeBatch(p, h, records, sc)
			got, err := cur.IngestWire(tenant.WireBatch{Keys: sc.Keys, Weights: sc.Weights, Items: sc.Items})
			if err != nil {
				s.udpDrops.Add(1)
				continue
			}
			s.batches.Add(1)
			s.arrivals.Add(uint64(got))
		}
	}
}

// retrySeconds renders a retry hint as whole seconds, rounded up, capped
// at the u16 the ack frame carries.
func retrySeconds(d time.Duration) uint16 {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 0xffff {
		secs = 0xffff
	}
	return uint16(secs)
}
