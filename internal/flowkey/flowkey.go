// Package flowkey derives 64-bit stream items from network flow tuples.
// The paper's flow footnote defines a flow as "a part of the five tuples:
// source IP address, destination IP address, source port, destination
// port, and protocol"; this package canonicalizes those parts into Item
// keys so packet streams feed the trackers directly (as in the CAIDA
// evaluation, which keys by source IP).
package flowkey

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"sigstream/internal/hashing"
	"sigstream/internal/stream"
)

// Flow is one packet's tuple. Zero-valued fields are allowed; Key* helpers
// select which parts participate in the key.
type Flow struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// ParseFlow parses "src:sport>dst:dport/proto" with any of the port and
// proto parts optional, e.g.:
//
//	"10.0.0.1>10.0.0.2"
//	"10.0.0.1:1234>10.0.0.2:80/6"
//	"[2001:db8::1]:443>[2001:db8::2]:8080/17"
func ParseFlow(s string) (Flow, error) {
	var f Flow
	proto := ""
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		proto = s[i+1:]
		s = s[:i]
	}
	parts := strings.SplitN(s, ">", 2)
	if len(parts) != 2 {
		return f, fmt.Errorf("flowkey: %q: missing '>' separator", s)
	}
	var err error
	if f.Src, f.SrcPort, err = parseEndpoint(parts[0]); err != nil {
		return f, fmt.Errorf("flowkey: src: %w", err)
	}
	if f.Dst, f.DstPort, err = parseEndpoint(parts[1]); err != nil {
		return f, fmt.Errorf("flowkey: dst: %w", err)
	}
	if proto != "" {
		p, err := strconv.ParseUint(proto, 10, 8)
		if err != nil {
			return f, fmt.Errorf("flowkey: proto %q: %w", proto, err)
		}
		f.Proto = uint8(p)
	}
	return f, nil
}

func parseEndpoint(s string) (netip.Addr, uint16, error) {
	s = strings.TrimSpace(s)
	// Try addr:port first (handles [v6]:port), then bare addr.
	if ap, err := netip.ParseAddrPort(s); err == nil {
		return ap.Addr(), ap.Port(), nil
	}
	addr, err := netip.ParseAddr(strings.Trim(s, "[]"))
	if err != nil {
		return netip.Addr{}, 0, err
	}
	return addr, 0, nil
}

// KeyFiveTuple keys the full five tuple — per-connection granularity.
func (f Flow) KeyFiveTuple() stream.Item {
	h := addrHash(f.Src)
	h = hashing.Mix64(h ^ addrHash(f.Dst))
	h = hashing.Mix64(h ^ uint64(f.SrcPort)<<24 ^ uint64(f.DstPort)<<8 ^ uint64(f.Proto))
	return h
}

// KeySrc keys by source address only — the paper's CAIDA setting
// (detecting heavy/persistent sources).
func (f Flow) KeySrc() stream.Item { return addrHash(f.Src) }

// KeyDst keys by destination address only (victim-side aggregation).
func (f Flow) KeyDst() stream.Item { return addrHash(f.Dst) }

// KeyPair keys by the (src, dst) pair regardless of ports and protocol.
func (f Flow) KeyPair() stream.Item {
	return hashing.Mix64(addrHash(f.Src) ^ hashing.Mix64(addrHash(f.Dst)))
}

// addrHash folds an address into 64 bits. IPv4 addresses map to their
// 32-bit value mixed; IPv6 addresses mix both halves.
func addrHash(a netip.Addr) uint64 {
	if !a.IsValid() {
		return 0
	}
	b := a.As16()
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[i+8])
	}
	return hashing.Mix64(hi ^ hashing.Mix64(lo))
}
