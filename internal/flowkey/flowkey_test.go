package flowkey

import (
	"net/netip"
	"testing"
)

func TestParseFlowForms(t *testing.T) {
	cases := []struct {
		in           string
		src, dst     string
		sport, dport uint16
		proto        uint8
	}{
		{"10.0.0.1>10.0.0.2", "10.0.0.1", "10.0.0.2", 0, 0, 0},
		{"10.0.0.1:1234>10.0.0.2:80/6", "10.0.0.1", "10.0.0.2", 1234, 80, 6},
		{"[2001:db8::1]:443>[2001:db8::2]:8080/17",
			"2001:db8::1", "2001:db8::2", 443, 8080, 17},
		{"2001:db8::1>2001:db8::2", "2001:db8::1", "2001:db8::2", 0, 0, 0},
	}
	for _, c := range cases {
		f, err := ParseFlow(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if f.Src != netip.MustParseAddr(c.src) || f.Dst != netip.MustParseAddr(c.dst) {
			t.Fatalf("%q: addrs %v>%v", c.in, f.Src, f.Dst)
		}
		if f.SrcPort != c.sport || f.DstPort != c.dport || f.Proto != c.proto {
			t.Fatalf("%q: ports/proto %d/%d/%d", c.in, f.SrcPort, f.DstPort, f.Proto)
		}
	}
}

func TestParseFlowErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"10.0.0.1",              // no separator
		"nothost>10.0.0.2",      // bad src
		"10.0.0.1>nothost",      // bad dst
		"10.0.0.1>10.0.0.2/zzz", // bad proto
		"10.0.0.1>10.0.0.2/300", // proto out of range
	} {
		if _, err := ParseFlow(in); err == nil {
			t.Fatalf("%q accepted", in)
		}
	}
}

func TestKeysDeterministicAndGranular(t *testing.T) {
	a, _ := ParseFlow("10.0.0.1:1000>10.0.0.2:80/6")
	b, _ := ParseFlow("10.0.0.1:2000>10.0.0.2:80/6") // different src port
	c, _ := ParseFlow("10.0.0.1:1000>10.0.0.3:80/6") // different dst

	if a.KeyFiveTuple() != a.KeyFiveTuple() {
		t.Fatal("five-tuple key not deterministic")
	}
	if a.KeyFiveTuple() == b.KeyFiveTuple() {
		t.Fatal("five-tuple key ignores ports")
	}
	if a.KeySrc() != b.KeySrc() {
		t.Fatal("src key must ignore ports")
	}
	if a.KeySrc() != c.KeySrc() {
		t.Fatal("src key must match for the same source")
	}
	if a.KeyDst() == c.KeyDst() {
		t.Fatal("dst key must distinguish destinations")
	}
	if a.KeyPair() != b.KeyPair() {
		t.Fatal("pair key must ignore ports")
	}
	if a.KeyPair() == c.KeyPair() {
		t.Fatal("pair key must distinguish destinations")
	}
}

func TestKeySrcMatchesSameSource(t *testing.T) {
	a, _ := ParseFlow("10.0.0.1:1>8.8.8.8:53/17")
	b, _ := ParseFlow("10.0.0.1:9>1.1.1.1:443/6")
	if a.KeySrc() != b.KeySrc() {
		t.Fatal("same source produced different src keys")
	}
}

func TestV4V6Distinct(t *testing.T) {
	v4, _ := ParseFlow("1.2.3.4>5.6.7.8")
	v6, _ := ParseFlow("2001:db8::1>2001:db8::2")
	if v4.KeyPair() == v6.KeyPair() {
		t.Fatal("v4 and v6 flows collided")
	}
}

func TestInvalidAddrKey(t *testing.T) {
	var f Flow // zero value: invalid addrs
	if f.KeySrc() != 0 || f.KeyDst() != 0 {
		t.Fatal("invalid addresses must key to 0")
	}
}
