package cmsketch

import (
	"testing"

	"sigstream/internal/stream"
	"sigstream/internal/trackertest"
)

func TestTrackerContractCM(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return NewTracker(CM, mem, 50, 1)
	}, trackertest.Options{FrequencyOnly: true})
}

func TestTrackerContractCU(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return NewTracker(CU, mem, 50, 1)
	}, trackertest.Options{FrequencyOnly: true})
}
