// Package cmsketch implements the Count-Min sketch (Cormode &
// Muthukrishnan) and the CU sketch (Estan & Varghese's conservative
// update), the two one-sided sketch baselines in the paper (Section II-A),
// plus the sketch+min-heap top-k tracker the paper evaluates.
//
// CM adds 1 to one counter per row and estimates with the row minimum
// (never underestimates). CU increments only the counter(s) currently at
// the minimum, halving the overestimation in practice while keeping the
// one-sided guarantee.
package cmsketch

import (
	"fmt"

	"sigstream/internal/hashing"
	"sigstream/internal/stream"
	"sigstream/internal/topk"
)

// CounterBytes is the accounted size of one counter.
const CounterBytes = 4

// DefaultRows is the number of rows (the paper sets 3 arrays).
const DefaultRows = 3

// Kind selects the update rule.
type Kind int

const (
	// CM is the plain Count-Min update (increment every row).
	CM Kind = iota
	// CU is the conservative update (increment only row minima).
	CU
)

func (k Kind) String() string {
	if k == CU {
		return "CU"
	}
	return "CM"
}

// Sketch is a CM or CU sketch.
type Sketch struct {
	kind     Kind
	rows     int
	width    int
	counters [][]uint32
	hash     []hashing.Bob
}

// New builds a sketch with the given memory budget and row count (rows ≤ 0
// selects DefaultRows).
func New(kind Kind, memoryBytes, rows int) *Sketch {
	if rows <= 0 {
		rows = DefaultRows
	}
	width := memoryBytes / (CounterBytes * rows)
	if width < 1 {
		width = 1
	}
	s := &Sketch{
		kind:     kind,
		rows:     rows,
		width:    width,
		counters: make([][]uint32, rows),
		hash:     make([]hashing.Bob, rows),
	}
	for i := 0; i < rows; i++ {
		s.counters[i] = make([]uint32, width)
		s.hash[i] = hashing.NewBob(uint32(0x5a0 + i*0x77))
	}
	return s
}

// Width reports the counters per row.
func (s *Sketch) Width() int { return s.width }

// Kind reports the update rule.
func (s *Sketch) Kind() Kind { return s.kind }

// MemoryBytes reports the counter-array footprint.
func (s *Sketch) MemoryBytes() int { return s.rows * s.width * CounterBytes }

func (s *Sketch) slot(row int, item stream.Item) *uint32 {
	idx := int(s.hash[row].Hash64(item)) % s.width
	if idx < 0 {
		idx += s.width
	}
	return &s.counters[row][idx]
}

// Add records delta arrivals of item.
func (s *Sketch) Add(item stream.Item, delta uint64) {
	if s.kind == CM {
		for i := 0; i < s.rows; i++ {
			*s.slot(i, item) += uint32(delta)
		}
		return
	}
	// Conservative update: raise only counters below min+delta.
	min := uint32(1<<32 - 1)
	for i := 0; i < s.rows; i++ {
		if v := *s.slot(i, item); v < min {
			min = v
		}
	}
	target := min + uint32(delta)
	for i := 0; i < s.rows; i++ {
		if p := s.slot(i, item); *p < target {
			*p = target
		}
	}
}

// Estimate returns the row-minimum estimate (one-sided: never less than the
// true count for CM/CU single-item streams).
func (s *Sketch) Estimate(item stream.Item) uint64 {
	min := uint32(1<<32 - 1)
	for i := 0; i < s.rows; i++ {
		if v := *s.slot(i, item); v < min {
			min = v
		}
	}
	return uint64(min)
}

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for i := range s.counters {
		row := s.counters[i]
		for j := range row {
			row[j] = 0
		}
	}
}

// Tracker is the paper's CM/CU top-k tracker: sketch plus min-heap of size
// k. It tracks frequency only (significance = α·f).
type Tracker struct {
	sketch *Sketch
	heap   *topk.Heap
	alpha  float64
}

// NewTracker splits memoryBytes between a heap of size k and the sketch.
func NewTracker(kind Kind, memoryBytes, k int, alpha float64) *Tracker {
	heapBytes := k * topk.EntryBytes
	sketchBytes := memoryBytes - heapBytes
	if sketchBytes < CounterBytes*DefaultRows {
		sketchBytes = CounterBytes * DefaultRows
	}
	return &Tracker{
		sketch: New(kind, sketchBytes, DefaultRows),
		heap:   topk.New(k),
		alpha:  alpha,
	}
}

// Insert records one arrival and refreshes the heap.
func (t *Tracker) Insert(item stream.Item) {
	t.sketch.Add(item, 1)
	est := t.alpha * float64(t.sketch.Estimate(item))
	t.heap.Offer(item, est)
}

// EndPeriod is a no-op in frequency mode.
func (t *Tracker) EndPeriod() {}

// Query reports the heap value if tracked, else the sketch estimate.
func (t *Tracker) Query(item stream.Item) (stream.Entry, bool) {
	if v, ok := t.heap.Value(item); ok {
		return stream.Entry{Item: item, Frequency: uint64(v / nonzero(t.alpha)),
			Significance: v}, true
	}
	est := t.sketch.Estimate(item)
	if est == 0 {
		return stream.Entry{}, false
	}
	return stream.Entry{Item: item, Frequency: est,
		Significance: t.alpha * float64(est)}, true
}

// TopK reports the heap's best k items.
func (t *Tracker) TopK(k int) []stream.Entry {
	es := t.heap.TopK(k)
	for i := range es {
		es[i].Frequency = uint64(es[i].Significance / nonzero(t.alpha))
	}
	return es
}

// MemoryBytes reports sketch plus heap footprint.
func (t *Tracker) MemoryBytes() int {
	return t.sketch.MemoryBytes() + t.heap.MemoryBytes()
}

// Name identifies the algorithm.
func (t *Tracker) Name() string { return t.sketch.kind.String() }

func nonzero(a float64) float64 {
	if a == 0 {
		return 1
	}
	return a
}

var _ stream.Tracker = (*Tracker)(nil)

// Merge adds other's counters into s cell-by-cell. Both sketches must have
// identical geometry and kind; CM/CU sketches built over disjoint
// sub-streams merge into the sketch of the union (for CU the merged
// estimate remains one-sided but may be looser than a single-pass CU).
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("cmsketch: cannot merge nil sketch")
	}
	if s.kind != other.kind || s.rows != other.rows || s.width != other.width {
		return fmt.Errorf("cmsketch: incompatible merge (%v %dx%d vs %v %dx%d)",
			s.kind, s.rows, s.width, other.kind, other.rows, other.width)
	}
	for i := range s.counters {
		dst, src := s.counters[i], other.counters[i]
		for j := range dst {
			dst[j] += src[j]
		}
	}
	return nil
}
