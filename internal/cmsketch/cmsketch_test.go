package cmsketch

import (
	"math/rand"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestCMNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	truth := map[stream.Item]uint64{}
	s := New(CM, 4096, 3)
	for i := 0; i < 20000; i++ {
		item := stream.Item(rng.Intn(2000))
		truth[item]++
		s.Add(item, 1)
	}
	for item, f := range truth {
		if est := s.Estimate(item); est < f {
			t.Fatalf("CM underestimated item %d: %d < %d", item, est, f)
		}
	}
}

func TestCUNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := map[stream.Item]uint64{}
	s := New(CU, 4096, 3)
	for i := 0; i < 20000; i++ {
		item := stream.Item(rng.Intn(2000))
		truth[item]++
		s.Add(item, 1)
	}
	for item, f := range truth {
		if est := s.Estimate(item); est < f {
			t.Fatalf("CU underestimated item %d: %d < %d", item, est, f)
		}
	}
}

func TestCUNoWorseThanCM(t *testing.T) {
	// Conservative update's defining property: on the identical stream,
	// every CU estimate is ≤ the CM estimate.
	rng := rand.New(rand.NewSource(3))
	items := make([]stream.Item, 30000)
	for i := range items {
		items[i] = stream.Item(rng.Intn(3000))
	}
	cm := New(CM, 2048, 3)
	cu := New(CU, 2048, 3)
	for _, it := range items {
		cm.Add(it, 1)
		cu.Add(it, 1)
	}
	worse := 0
	for i := stream.Item(0); i < 3000; i++ {
		if cu.Estimate(i) > cm.Estimate(i) {
			worse++
		}
	}
	if worse > 0 {
		t.Fatalf("CU exceeded CM on %d items", worse)
	}
}

func TestExactWithAmpleWidth(t *testing.T) {
	s := New(CM, 1<<20, 3)
	for i := 0; i < 100; i++ {
		s.Add(5, 1)
	}
	s.Add(6, 1)
	if got := s.Estimate(5); got != 100 {
		t.Fatalf("estimate = %d, want 100 (no collisions at this width)", got)
	}
}

func TestReset(t *testing.T) {
	s := New(CU, 1024, 3)
	s.Add(1, 10)
	s.Reset()
	if s.Estimate(1) != 0 {
		t.Fatal("estimate nonzero after Reset")
	}
}

func TestSizing(t *testing.T) {
	s := New(CM, 1200, 3)
	if s.Width() != 100 {
		t.Fatalf("width = %d, want 100", s.Width())
	}
	if s.MemoryBytes() != 1200 {
		t.Fatalf("MemoryBytes = %d, want 1200", s.MemoryBytes())
	}
	if New(CM, 1, 3).Width() != 1 {
		t.Fatal("width must floor at 1")
	}
	if s.Kind() != CM {
		t.Fatal("kind lost")
	}
}

func TestKindString(t *testing.T) {
	if CM.String() != "CM" || CU.String() != "CU" {
		t.Fatal("Kind.String wrong")
	}
}

func TestTrackerTopKOnZipf(t *testing.T) {
	st := gen.Generate(gen.Config{N: 50000, M: 5000, Periods: 1, Skew: 1.2,
		Head: 100, TailWindowFrac: 1, Seed: 4})
	o := oracle.FromStream(st, stream.Frequent)
	for _, kind := range []Kind{CM, CU} {
		tr := NewTracker(kind, 32*1024, 100, 1)
		st.Replay(tr)
		r := metrics.Evaluate(o, tr, 100)
		if r.Precision < 0.6 {
			t.Fatalf("%v tracker precision %.2f, want ≥0.6", kind, r.Precision)
		}
	}
}

func TestTrackerQueryFallsBackToSketch(t *testing.T) {
	tr := NewTracker(CM, 8*1024, 2, 1)
	// Three items; heap holds 2, the third must still be answerable.
	for i := 0; i < 10; i++ {
		tr.Insert(1)
	}
	for i := 0; i < 8; i++ {
		tr.Insert(2)
	}
	tr.Insert(3)
	e, ok := tr.Query(3)
	if !ok || e.Frequency == 0 {
		t.Fatalf("sketch fallback failed: %+v ok=%v", e, ok)
	}
}

func TestTrackerMemoryAndName(t *testing.T) {
	tr := NewTracker(CU, 16*1024, 10, 1)
	if tr.MemoryBytes() <= 0 {
		t.Fatal("memory must be positive")
	}
	if tr.Name() != "CU" {
		t.Fatalf("name = %q, want CU", tr.Name())
	}
	if NewTracker(CM, 16*1024, 10, 1).Name() != "CM" {
		t.Fatal("CM name wrong")
	}
}

func TestTrackerTinyMemoryStillWorks(t *testing.T) {
	// Heap demand exceeding the budget must not panic; the sketch gets a
	// minimal array.
	tr := NewTracker(CM, 64, 100, 1)
	for i := 0; i < 1000; i++ {
		tr.Insert(stream.Item(i % 10))
	}
	if len(tr.TopK(10)) == 0 {
		t.Fatal("no results from tiny tracker")
	}
}

func BenchmarkCMInsert(b *testing.B) {
	st := gen.NetworkLike(1<<17, 1)
	tr := NewTracker(CM, 64*1024, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(st.Items[i&(1<<17-1)])
	}
}

func BenchmarkCUInsert(b *testing.B) {
	st := gen.NetworkLike(1<<17, 1)
	tr := NewTracker(CU, 64*1024, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(st.Items[i&(1<<17-1)])
	}
}

func TestMergeUnionEqualsSinglePassCM(t *testing.T) {
	// CM is linear: merging two disjoint-substream sketches equals the
	// single sketch of the concatenated stream, counter for counter.
	rng := rand.New(rand.NewSource(11))
	a := New(CM, 2048, 3)
	b := New(CM, 2048, 3)
	whole := New(CM, 2048, 3)
	for i := 0; i < 20000; i++ {
		item := stream.Item(rng.Intn(1000))
		whole.Add(item, 1)
		if i%2 == 0 {
			a.Add(item, 1)
		} else {
			b.Add(item, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := stream.Item(0); i < 1000; i++ {
		if a.Estimate(i) != whole.Estimate(i) {
			t.Fatalf("item %d: merged %d != single-pass %d",
				i, a.Estimate(i), whole.Estimate(i))
		}
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := New(CM, 2048, 3)
	if err := a.Merge(New(CU, 2048, 3)); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	if err := a.Merge(New(CM, 4096, 3)); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestMergedCUStillOneSided(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	truth := map[stream.Item]uint64{}
	a := New(CU, 2048, 3)
	b := New(CU, 2048, 3)
	for i := 0; i < 20000; i++ {
		item := stream.Item(rng.Intn(1000))
		truth[item]++
		if i%2 == 0 {
			a.Add(item, 1)
		} else {
			b.Add(item, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for item, f := range truth {
		if est := a.Estimate(item); est < f {
			t.Fatalf("merged CU underestimated item %d: %d < %d", item, est, f)
		}
	}
}
