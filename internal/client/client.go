// Package client is a typed Go client for the sigstream HTTP service
// (internal/server, cmd/sigserver): batch inserts, period control, top-k
// and point queries, stats, checkpoint download/restore and tenant
// administration.
//
// The canonical surface is tenant-scoped and context-first: obtain a
// handle with Client.Tenant (or Client.Default for the reserved default
// namespace) and pass a context.Context to every request method, so
// callers can cancel in-flight requests and bound deadlines. The
// context-free Client methods are deprecated thin wrappers over the
// default handle, kept for pre-namespace callers; they use the legacy
// un-namespaced routes and context.Background().
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// DefaultNamespace is the service's reserved namespace behind the legacy
// un-namespaced routes.
const DefaultNamespace = "default"

// Entry mirrors the service's JSON estimate.
type Entry struct {
	Key          string  `json:"key"`
	Item         uint64  `json:"item"`
	Frequency    uint64  `json:"frequency"`
	Persistency  uint64  `json:"persistency"`
	Significance float64 `json:"significance"`
}

// TrackerStats mirrors the service's typed tracker snapshot
// (sigstream.Stats): identity, geometry, occupancy and the cumulative
// operation counters of the LTC core.
type TrackerStats struct {
	Tracker       string  `json:"tracker"`
	MemoryBytes   int     `json:"memory_bytes"`
	Shards        int     `json:"shards"`
	Buckets       int     `json:"buckets"`
	BucketWidth   int     `json:"bucket_width"`
	Cells         int     `json:"cells"`
	OccupiedCells int     `json:"occupied_cells"`
	Alpha         float64 `json:"alpha"`
	Beta          float64 `json:"beta"`
	Periods       uint64  `json:"periods"`
	Arrivals      uint64  `json:"arrivals"`
	Batches       uint64  `json:"batches"`
	BatchedItems  uint64  `json:"batched_items"`
	Hits          uint64  `json:"hits"`
	Admissions    uint64  `json:"admissions"`
	Decrements    uint64  `json:"decrements"`
	Expulsions    uint64  `json:"expulsions"`
	FlagsConsumed uint64  `json:"flags_consumed"`
	CellsSwept    uint64  `json:"cells_swept"`
	ParityFlips   uint64  `json:"parity_flips"`
}

// SnapshotStats mirrors the durability section of the service's stats:
// residency, spill/revive history, snapshot age and the last recovery
// outcome.
type SnapshotStats struct {
	Resident     bool    `json:"resident"`
	Spills       uint64  `json:"spills"`
	Revives      uint64  `json:"revives"`
	Saves        uint64  `json:"saves"`
	Errors       uint64  `json:"errors"`
	LastSaveUnix int64   `json:"last_save_unix"`
	AgeSeconds   float64 `json:"age_seconds"`
	LastRecovery string  `json:"last_recovery"`
}

// WALStats mirrors the write-ahead-log section of the service's stats,
// present only when the server runs with a WAL.
type WALStats struct {
	Appends       uint64 `json:"appends"`
	AppendedBytes uint64 `json:"appended_bytes"`
	Syncs         uint64 `json:"syncs"`
	Rotations     uint64 `json:"rotations"`
	Truncations   uint64 `json:"truncations"`
	Segments      int    `json:"segments"`
	DiskBytes     int64  `json:"disk_bytes"`
}

// Stats mirrors the service's /v1/stats payload: the flat service-level
// fields plus the typed tracker, snapshot and (when the server runs a
// WAL) wal sections.
type Stats struct {
	Tenant      string        `json:"tenant"`
	MemoryBytes int           `json:"memory_bytes"`
	Shards      int           `json:"shards"`
	Arrivals    uint64        `json:"arrivals"`
	Periods     uint64        `json:"periods"`
	Keys        int           `json:"distinct_keys_seen"`
	Alpha       float64       `json:"alpha"`
	Beta        float64       `json:"beta"`
	Tracker     TrackerStats  `json:"tracker"`
	Snapshot    SnapshotStats `json:"snapshot"`
	WAL         *WALStats     `json:"wal,omitempty"`
}

// TenantInfo mirrors one row of the service's tenant listing.
type TenantInfo struct {
	Namespace    string `json:"namespace"`
	Pinned       bool   `json:"pinned"`
	Resident     bool   `json:"resident"`
	Arrivals     uint64 `json:"arrivals"`
	Periods      uint64 `json:"periods"`
	Spills       uint64 `json:"spills"`
	Revives      uint64 `json:"revives"`
	QuotaDenials uint64 `json:"quota_denials"`
	Dirty        bool   `json:"dirty"`
	LastSaveUnix int64  `json:"last_save_unix"`
}

// TenantList mirrors the service's /v1/tenants payload.
type TenantList struct {
	Tenants       []TenantInfo `json:"tenants"`
	Count         int          `json:"count"`
	Resident      int          `json:"resident"`
	ResidentBytes int64        `json:"resident_bytes"`
	BudgetBytes   int64        `json:"budget_bytes"`
	CostPerTenant int64        `json:"cost_per_tenant_bytes"`
}

// ErrNotTracked reports a point query for an unknown key.
var ErrNotTracked = fmt.Errorf("sigstream client: key not tracked")

// ThrottledError reports a 429 — the tenant's quota is exhausted or the
// ingest queue is at its high-water mark — with the server's retry hint.
type ThrottledError struct {
	// RetryAfter is the server's suggested backoff.
	RetryAfter time.Duration
	// Message is the server's error text.
	Message string
}

// Error implements error.
func (e *ThrottledError) Error() string {
	return fmt.Sprintf("sigstream client: throttled (retry after %s): %s",
		e.RetryAfter, e.Message)
}

// APIError reports any non-200 response that is not a throttle: the HTTP
// status, the server's stable machine-readable code (the envelope's
// "code" field — branch on this, not on Message), and the human-readable
// message. Responses from servers predating the typed envelope carry the
// raw body as Message and an empty Code.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the server's stable error identifier ("bad_request",
	// "not_found", "conflict", ...), empty when the server did not send a
	// typed envelope.
	Code string
	// Message is the server's error text.
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("sigstream client: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("sigstream client: status %d: %s", e.Status, e.Message)
}

// Client talks to one sigstream service.
type Client struct {
	base string
	http *http.Client
}

// New creates a client for the service at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil for a 10-second-timeout
// default.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// Tenant returns a handle scoped to one namespace; every request it
// makes targets the /v1/t/{ns}/* routes. Handles are cheap and safe for
// concurrent use.
func (c *Client) Tenant(ns string) *Tenant {
	return &Tenant{c: c, ns: ns, prefix: "/v1/t/" + url.PathEscape(ns)}
}

// Default returns a handle for the reserved default namespace via the
// legacy un-namespaced routes, so it works against pre-namespace servers
// too.
func (c *Client) Default() *Tenant {
	return &Tenant{c: c, ns: DefaultNamespace, prefix: "/v1"}
}

// Tenants lists the service's namespaces with registry totals.
func (c *Client) Tenants(ctx context.Context) (TenantList, error) {
	resp, err := c.get(ctx, "/v1/tenants")
	if err != nil {
		return TenantList{}, err
	}
	var out TenantList
	if err := decode(resp, &out); err != nil {
		return TenantList{}, err
	}
	return out, nil
}

// CreateTenant registers a namespace without ingesting anything (inserts
// auto-create, so this is only needed to reserve a namespace up front).
func (c *Client) CreateTenant(ctx context.Context, ns string) error {
	body, err := json.Marshal(map[string]string{"namespace": ns})
	if err != nil {
		return err
	}
	resp, err := c.post(ctx, "/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

// DeleteTenant removes a namespace, its tracker and its snapshots.
func (c *Client) DeleteTenant(ctx context.Context, ns string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/v1/t/"+url.PathEscape(ns), nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

// Ready probes the service's readiness endpoint: nil when it is
// accepting traffic, a typed error (usually a 503 *APIError) while it
// restores, quarantines, drains — or, for a coordinator, before its
// first committed view.
func (c *Client) Ready(ctx context.Context) error {
	resp, err := c.get(ctx, "/readyz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

// ClusterView mirrors the coordinator's /v1/topk payload: the committed
// cluster-wide ranking with its provenance.
type ClusterView struct {
	// Epoch is the committed view's epoch.
	Epoch int `json:"epoch"`
	// CommittedUnix is when the view was installed (Unix seconds).
	CommittedUnix int64 `json:"committed_unix"`
	// AgeSeconds is the view's age at response time.
	AgeSeconds float64 `json:"age_seconds"`
	// Stale reports that at least one round failed to commit since the
	// view was installed.
	Stale bool `json:"stale"`
	// Entries is the ranked item list.
	Entries []Entry `json:"entries"`
}

// ClusterTopology mirrors the coordinator's partition-map summary.
type ClusterTopology struct {
	// Sites is the member-site count.
	Sites int `json:"sites"`
	// Partitions is the partition count P.
	Partitions int `json:"partitions"`
	// Replicas is the replication factor R.
	Replicas int `json:"replicas"`
	// Quorum is the per-partition read quorum ⌈R/2⌉.
	Quorum int `json:"quorum"`
}

// ClusterSiteStatus mirrors one site's row in the coordinator's status.
type ClusterSiteStatus struct {
	// Site is the site's base URL.
	Site string `json:"site"`
	// Health is "healthy", "degraded" or "tripped".
	Health string `json:"health"`
	// Breaker is the circuit-breaker position.
	Breaker string `json:"breaker"`
	// Failures is the consecutive failed-round streak.
	Failures int `json:"failures"`
	// LastEpoch is the last committed epoch the site contributed to.
	LastEpoch int `json:"last_epoch"`
	// Skips lists the last round's per-partition skip reasons.
	Skips []string `json:"skips"`
}

// ClusterPartitionStatus mirrors one partition's row in the
// coordinator's status.
type ClusterPartitionStatus struct {
	// Partition is the partition index.
	Partition int `json:"partition"`
	// Namespace is the tenant namespace hosting the partition.
	Namespace string `json:"namespace"`
	// Reported is the replica count that answered last round.
	Reported int `json:"reported"`
	// Quorum reports whether Reported reached the read quorum.
	Quorum bool `json:"quorum"`
	// MergedFrom is the site whose image entered the view.
	MergedFrom string `json:"merged_from"`
	// Empty reports an answering-but-dataless partition.
	Empty bool `json:"empty"`
}

// ClusterRound mirrors the coordinator's last-round report.
type ClusterRound struct {
	// Epoch is the view epoch after the round.
	Epoch int `json:"epoch"`
	// Committed reports whether the round installed a new view.
	Committed bool `json:"committed"`
	// Reason explains an uncommitted round.
	Reason string `json:"reason"`
	// Partitions holds per-partition outcomes.
	Partitions []ClusterPartitionStatus `json:"partitions"`
	// Sites holds per-site outcomes.
	Sites []ClusterSiteStatus `json:"sites"`
}

// ClusterViewInfo mirrors the coordinator's committed-view provenance.
type ClusterViewInfo struct {
	// Epoch is the view's commit epoch.
	Epoch int `json:"epoch"`
	// AgeSeconds is the view's age at response time.
	AgeSeconds float64 `json:"age_seconds"`
	// Stale reports an uncommitted round since the view was installed.
	Stale bool `json:"stale"`
}

// ClusterStatus mirrors the coordinator's /v1/cluster/status payload.
type ClusterStatus struct {
	// Topology summarizes the partition map.
	Topology ClusterTopology `json:"topology"`
	// View is the committed view's provenance, nil before the first
	// commit.
	View *ClusterViewInfo `json:"view"`
	// Round is the last gather round's report, nil before the first
	// round.
	Round *ClusterRound `json:"round"`
}

// ClusterTopK fetches the cluster-wide top-k ranking from a coordinator
// (cmd/sigcoord). A 503 *APIError means no view has been committed yet.
func (c *Client) ClusterTopK(ctx context.Context, k int) (ClusterView, error) {
	resp, err := c.get(ctx, "/v1/topk?k="+strconv.Itoa(k))
	if err != nil {
		return ClusterView{}, err
	}
	var out ClusterView
	if err := decode(resp, &out); err != nil {
		return ClusterView{}, err
	}
	return out, nil
}

// ClusterStatus fetches a coordinator's per-site and per-partition
// health report.
func (c *Client) ClusterStatus(ctx context.Context) (ClusterStatus, error) {
	resp, err := c.get(ctx, "/v1/cluster/status")
	if err != nil {
		return ClusterStatus{}, err
	}
	var out ClusterStatus
	if err := decode(resp, &out); err != nil {
		return ClusterStatus{}, err
	}
	return out, nil
}

// get issues a context-carrying GET against a service path.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.http.Do(req)
}

// post issues a context-carrying POST against a service path.
func (c *Client) post(ctx context.Context, path, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return c.http.Do(req)
}

// Tenant is a namespace-scoped view of a Client. Every method hits the
// handle's namespace on the service and takes a context for cancellation
// and deadlines.
type Tenant struct {
	c      *Client
	ns     string
	prefix string // "/v1/t/<ns>", or "/v1" for the legacy default handle
}

// Namespace reports the handle's namespace.
func (t *Tenant) Namespace() string { return t.ns }

// Insert ships a batch of keys (one arrival each, in order) and returns
// the number the service ingested. A quota breach or load shed returns a
// *ThrottledError with the server's backoff hint.
func (t *Tenant) Insert(ctx context.Context, keys ...string) (uint64, error) {
	body := strings.Join(keys, "\n")
	resp, err := t.c.post(ctx, t.prefix+"/insert", "text/plain",
		strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	var out struct {
		Inserted uint64 `json:"inserted"`
	}
	if err := decode(resp, &out); err != nil {
		return 0, err
	}
	return out.Inserted, nil
}

// EndPeriod closes the tenant's current period and returns the total
// period count.
func (t *Tenant) EndPeriod(ctx context.Context) (uint64, error) {
	resp, err := t.c.post(ctx, t.prefix+"/period", "text/plain", nil)
	if err != nil {
		return 0, err
	}
	var out struct {
		Periods uint64 `json:"periods"`
	}
	if err := decode(resp, &out); err != nil {
		return 0, err
	}
	return out.Periods, nil
}

// TopK fetches the tenant's k most significant items.
func (t *Tenant) TopK(ctx context.Context, k int) ([]Entry, error) {
	resp, err := t.c.get(ctx, t.prefix+"/top?k="+strconv.Itoa(k))
	if err != nil {
		return nil, err
	}
	var out []Entry
	if err := decode(resp, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Query fetches one key's estimate; ErrNotTracked when unknown.
func (t *Tenant) Query(ctx context.Context, key string) (Entry, error) {
	resp, err := t.c.get(ctx, t.prefix+"/query?key="+url.QueryEscape(key))
	if err != nil {
		return Entry{}, err
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return Entry{}, ErrNotTracked
	}
	var out Entry
	if err := decode(resp, &out); err != nil {
		return Entry{}, err
	}
	return out, nil
}

// Stats fetches the tenant's statistics, including snapshot age and the
// last recovery outcome.
func (t *Tenant) Stats(ctx context.Context) (Stats, error) {
	resp, err := t.c.get(ctx, t.prefix+"/stats")
	if err != nil {
		return Stats{}, err
	}
	var out Stats
	if err := decode(resp, &out); err != nil {
		return Stats{}, err
	}
	return out, nil
}

// Checkpoint downloads a binary snapshot of the tenant's tracker.
func (t *Tenant) Checkpoint(ctx context.Context) ([]byte, error) {
	resp, err := t.c.get(ctx, t.prefix+"/checkpoint")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Restore replaces the tenant's tracker state with a snapshot.
func (t *Tenant) Restore(ctx context.Context, checkpoint []byte) error {
	resp, err := t.c.post(ctx, t.prefix+"/restore", "application/octet-stream",
		bytes.NewReader(checkpoint))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

// Insert ships a batch of keys to the default tenant.
//
// Deprecated: use Client.Default (or Client.Tenant) and Tenant.Insert
// with a context.
func (c *Client) Insert(keys ...string) (uint64, error) {
	return c.Default().Insert(context.Background(), keys...)
}

// EndPeriod closes the default tenant's current period.
//
// Deprecated: use Tenant.EndPeriod with a context.
func (c *Client) EndPeriod() (uint64, error) {
	return c.Default().EndPeriod(context.Background())
}

// TopK fetches the default tenant's k most significant items.
//
// Deprecated: use Tenant.TopK with a context.
func (c *Client) TopK(k int) ([]Entry, error) {
	return c.Default().TopK(context.Background(), k)
}

// Query fetches one key's estimate from the default tenant.
//
// Deprecated: use Tenant.Query with a context.
func (c *Client) Query(key string) (Entry, error) {
	return c.Default().Query(context.Background(), key)
}

// Stats fetches the default tenant's statistics.
//
// Deprecated: use Tenant.Stats with a context.
func (c *Client) Stats() (Stats, error) {
	return c.Default().Stats(context.Background())
}

// Checkpoint downloads a binary snapshot of the default tenant.
//
// Deprecated: use Tenant.Checkpoint with a context.
func (c *Client) Checkpoint() ([]byte, error) {
	return c.Default().Checkpoint(context.Background())
}

// Restore replaces the default tenant's state with a snapshot.
//
// Deprecated: use Tenant.Restore with a context.
func (c *Client) Restore(checkpoint []byte) error {
	return c.Default().Restore(context.Background(), checkpoint)
}

// decode consumes a JSON 200 response into v, translating throttles and
// other non-200s into typed errors.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// statusError turns a non-200 response into a typed error. The body is
// the server's JSON error envelope {code, message, retry_after_seconds?};
// 429 becomes a *ThrottledError carrying the backoff hint (envelope field
// first, Retry-After header as fallback), everything else a *APIError
// carrying the envelope's stable code. A non-envelope body (an older
// server, a proxy error page) degrades to the raw text with no code.
func statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := strings.TrimSpace(string(body))
	var env struct {
		Code              string `json:"code"`
		Message           string `json:"message"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Code != "" {
		msg = env.Message
	} else {
		env.Code = ""
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		after := time.Second
		if env.RetryAfterSeconds > 0 {
			after = time.Duration(env.RetryAfterSeconds) * time.Second
		} else if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return &ThrottledError{RetryAfter: after, Message: msg}
	}
	return &APIError{Status: resp.StatusCode, Code: env.Code, Message: msg}
}
