// Package client is a typed Go client for the sigstream HTTP service
// (internal/server, cmd/sigserver): batch inserts, period control, top-k
// and point queries, stats, and checkpoint download/restore.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Entry mirrors the service's JSON estimate.
type Entry struct {
	Key          string  `json:"key"`
	Item         uint64  `json:"item"`
	Frequency    uint64  `json:"frequency"`
	Persistency  uint64  `json:"persistency"`
	Significance float64 `json:"significance"`
}

// TrackerStats mirrors the service's typed tracker snapshot
// (sigstream.Stats): identity, geometry, occupancy and the cumulative
// operation counters of the LTC core.
type TrackerStats struct {
	Tracker       string  `json:"tracker"`
	MemoryBytes   int     `json:"memory_bytes"`
	Shards        int     `json:"shards"`
	Buckets       int     `json:"buckets"`
	BucketWidth   int     `json:"bucket_width"`
	Cells         int     `json:"cells"`
	OccupiedCells int     `json:"occupied_cells"`
	Alpha         float64 `json:"alpha"`
	Beta          float64 `json:"beta"`
	Periods       uint64  `json:"periods"`
	Arrivals      uint64  `json:"arrivals"`
	Batches       uint64  `json:"batches"`
	BatchedItems  uint64  `json:"batched_items"`
	Hits          uint64  `json:"hits"`
	Admissions    uint64  `json:"admissions"`
	Decrements    uint64  `json:"decrements"`
	Expulsions    uint64  `json:"expulsions"`
	FlagsConsumed uint64  `json:"flags_consumed"`
	CellsSwept    uint64  `json:"cells_swept"`
	ParityFlips   uint64  `json:"parity_flips"`
}

// Stats mirrors the service's /v1/stats payload: the flat service-level
// fields plus the typed tracker snapshot.
type Stats struct {
	MemoryBytes int          `json:"memory_bytes"`
	Shards      int          `json:"shards"`
	Arrivals    uint64       `json:"arrivals"`
	Periods     uint64       `json:"periods"`
	Keys        int          `json:"distinct_keys_seen"`
	Alpha       float64      `json:"alpha"`
	Beta        float64      `json:"beta"`
	Tracker     TrackerStats `json:"tracker"`
}

// ErrNotTracked reports a point query for an unknown key.
var ErrNotTracked = fmt.Errorf("sigstream client: key not tracked")

// Client talks to one sigstream service.
type Client struct {
	base string
	http *http.Client
}

// New creates a client for the service at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil for a 10-second-timeout
// default.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
}

// Insert ships a batch of keys (one arrival each, in order) and returns
// the number the service ingested.
func (c *Client) Insert(keys ...string) (uint64, error) {
	body := strings.Join(keys, "\n")
	resp, err := c.http.Post(c.base+"/v1/insert", "text/plain",
		strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	var out struct {
		Inserted uint64 `json:"inserted"`
	}
	if err := decode(resp, &out); err != nil {
		return 0, err
	}
	return out.Inserted, nil
}

// EndPeriod closes the service's current period and returns the total
// period count.
func (c *Client) EndPeriod() (uint64, error) {
	resp, err := c.http.Post(c.base+"/v1/period", "text/plain", nil)
	if err != nil {
		return 0, err
	}
	var out struct {
		Periods uint64 `json:"periods"`
	}
	if err := decode(resp, &out); err != nil {
		return 0, err
	}
	return out.Periods, nil
}

// TopK fetches the k most significant items.
func (c *Client) TopK(k int) ([]Entry, error) {
	resp, err := c.http.Get(c.base + "/v1/top?k=" + strconv.Itoa(k))
	if err != nil {
		return nil, err
	}
	var out []Entry
	if err := decode(resp, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Query fetches one key's estimate; ErrNotTracked when unknown.
func (c *Client) Query(key string) (Entry, error) {
	resp, err := c.http.Get(c.base + "/v1/query?key=" + url.QueryEscape(key))
	if err != nil {
		return Entry{}, err
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return Entry{}, ErrNotTracked
	}
	var out Entry
	if err := decode(resp, &out); err != nil {
		return Entry{}, err
	}
	return out, nil
}

// Stats fetches the service statistics.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.http.Get(c.base + "/v1/stats")
	if err != nil {
		return Stats{}, err
	}
	var out Stats
	if err := decode(resp, &out); err != nil {
		return Stats{}, err
	}
	return out, nil
}

// Checkpoint downloads a binary snapshot of the tracker.
func (c *Client) Checkpoint() ([]byte, error) {
	resp, err := c.http.Get(c.base + "/v1/checkpoint")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Restore replaces the service's tracker state with a snapshot.
func (c *Client) Restore(checkpoint []byte) error {
	resp, err := c.http.Post(c.base+"/v1/restore", "application/octet-stream",
		bytes.NewReader(checkpoint))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return nil
}

func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func statusError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("sigstream client: %s: %s", resp.Status,
		strings.TrimSpace(string(body)))
}
