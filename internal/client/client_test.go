package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"sigstream"
	"sigstream/internal/server"
)

func newPair(t *testing.T) *Client {
	t.Helper()
	srv := httptest.NewServer(server.New(server.Config{
		MemoryBytes: 64 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 10},
		Shards:      2,
	}))
	t.Cleanup(srv.Close)
	return New(srv.URL, srv.Client())
}

func TestClientRoundTrip(t *testing.T) {
	c := newPair(t)
	n, err := c.Insert("a", "a", "b")
	if err != nil || n != 3 {
		t.Fatalf("Insert = %d, %v", n, err)
	}
	p, err := c.EndPeriod()
	if err != nil || p != 1 {
		t.Fatalf("EndPeriod = %d, %v", p, err)
	}
	e, err := c.Query("a")
	if err != nil {
		t.Fatal(err)
	}
	if e.Frequency != 2 || e.Persistency != 1 {
		t.Fatalf("a: %+v", e)
	}
	top, err := c.TopK(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Key != "a" {
		t.Fatalf("TopK = %+v", top)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrivals != 3 || st.Periods != 1 || st.Beta != 10 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestClientNotTracked(t *testing.T) {
	c := newPair(t)
	if _, err := c.Query("ghost"); !errors.Is(err, ErrNotTracked) {
		t.Fatalf("want ErrNotTracked, got %v", err)
	}
}

func TestClientCheckpointRestore(t *testing.T) {
	c := newPair(t)
	c.Insert("x", "x", "y")
	c.EndPeriod()
	img, err := c.Checkpoint()
	if err != nil || len(img) == 0 {
		t.Fatalf("Checkpoint: %d bytes, %v", len(img), err)
	}
	// Mutate, restore, verify the state rolled back.
	c.Insert("z", "z", "z", "z")
	if err := c.Restore(img); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("z"); !errors.Is(err, ErrNotTracked) {
		t.Fatal("z survived restore")
	}
	e, err := c.Query("x")
	if err != nil || e.Frequency != 2 {
		t.Fatalf("x after restore: %+v, %v", e, err)
	}
	// Garbage restore surfaces the server's 400.
	if err := c.Restore([]byte("junk")); err == nil {
		t.Fatal("garbage restore accepted")
	}
}

func TestClientTenantScoped(t *testing.T) {
	c := newPair(t)
	ctx := context.Background()
	red, blue := c.Tenant("red"), c.Tenant("blue")
	if _, err := red.Insert(ctx, "a", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := blue.Insert(ctx, "z"); err != nil {
		t.Fatal(err)
	}
	if _, err := red.EndPeriod(ctx); err != nil {
		t.Fatal(err)
	}
	e, err := red.Query(ctx, "a")
	if err != nil || e.Frequency != 2 {
		t.Fatalf("red a: %+v, %v", e, err)
	}
	// Isolation: red's keys are invisible to blue.
	if _, err := blue.Query(ctx, "a"); !errors.Is(err, ErrNotTracked) {
		t.Fatalf("blue sees red's key: %v", err)
	}
	st, err := red.Stats(ctx)
	if err != nil || st.Tenant != "red" || st.Arrivals != 3 {
		t.Fatalf("red stats: %+v, %v", st, err)
	}
	list, err := c.Tenants(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if list.Count != 3 { // default, red, blue
		t.Fatalf("tenant count %d, want 3", list.Count)
	}
	if err := c.DeleteTenant(ctx, "blue"); err != nil {
		t.Fatal(err)
	}
	if _, err := blue.Stats(ctx); err == nil {
		t.Fatal("deleted tenant still answers stats")
	}
	if err := c.CreateTenant(ctx, "green"); err != nil {
		t.Fatal(err)
	}
	// The legacy default handle and the scoped default handle see the
	// same tracker.
	if _, err := c.Tenant(DefaultNamespace).Insert(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	e, err = c.Default().Query(ctx, "k")
	if err != nil || e.Frequency != 1 {
		t.Fatalf("default via legacy routes: %+v, %v", e, err)
	}
}

func TestClientContextCancel(t *testing.T) {
	c := newPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Default().Insert(ctx, "a"); err == nil {
		t.Fatal("cancelled context produced no error")
	}
}

func TestClientBadBase(t *testing.T) {
	c := New("http://127.0.0.1:1", nil) // nothing listening
	if _, err := c.Insert("a"); err == nil {
		t.Fatal("dead endpoint produced no error")
	}
}
