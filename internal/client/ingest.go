package client

import (
	"errors"
	"time"

	"sigstream/internal/ingest"
)

// IngestOptions configures a binary ingest connection opened by
// DialIngest.
type IngestOptions struct {
	// Namespace is the tenant every frame targets ("" = default).
	Namespace string
	// Window is the maximum unacknowledged frames in flight (default 1;
	// larger windows pipeline batches and amortise the round trip).
	Window int
	// UDP switches to the fire-and-forget transport: sends are never
	// acknowledged and may be silently dropped.
	UDP bool
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

// DialIngest opens a framed binary ingest connection to a sigserver's
// -ingest-addr listener — the wire-speed alternative to Tenant.Insert
// for sustained producer streams. The returned Conn's methods surface
// quota refusals as *ingest.AckError; IngestThrottle translates one into
// the same *ThrottledError the HTTP paths return, so a producer's
// backoff loop handles both transports identically.
func DialIngest(addr string, opts IngestOptions) (*ingest.Conn, error) {
	network := "tcp"
	if opts.UDP {
		network = "udp"
	}
	return ingest.Dial(addr, ingest.Options{
		Namespace:   opts.Namespace,
		Window:      opts.Window,
		Network:     network,
		DialTimeout: opts.DialTimeout,
	})
}

// IngestThrottle maps a binary-ingest ack error onto the HTTP client's
// typed errors: a throttled ack becomes a *ThrottledError carrying the
// server's Retry-After hint; anything else is returned unchanged.
func IngestThrottle(err error) error {
	var ae *ingest.AckError
	if errors.As(err, &ae) && ae.Throttled() {
		return &ThrottledError{
			RetryAfter: ae.RetryAfter,
			Message:    ae.Error(),
		}
	}
	return err
}
