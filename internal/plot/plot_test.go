package plot

import (
	"strings"
	"testing"

	"sigstream/internal/exp"
)

func sample() exp.Result {
	return exp.Result{
		Figure: "9",
		Title:  "demo",
		Rows: []exp.Row{
			{Figure: "9", Dataset: "D", Series: "LTC", X: "10KB", Metric: "precision", Value: 0.99},
			{Figure: "9", Dataset: "D", Series: "CM", X: "10KB", Metric: "precision", Value: 0.52},
			{Figure: "9", Dataset: "D", Series: "LTC", X: "50KB", Metric: "precision", Value: 1.0},
			{Figure: "9", Dataset: "D", Series: "CM", X: "50KB", Metric: "precision", Value: 0.9},
		},
	}
}

func TestRenderContainsAllSeriesAndXs(t *testing.T) {
	out := Render(sample())
	for _, want := range []string{"demo", "LTC", "CM", "10KB", "50KB", "precision"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestBarsProportional(t *testing.T) {
	out := Render(sample())
	lines := strings.Split(out, "\n")
	count := func(sub string) int {
		for _, l := range lines {
			if strings.Contains(l, sub) && strings.Contains(l, "█") {
				return strings.Count(l, "█")
			}
		}
		return -1
	}
	ltc := count("LTC")
	cm := count("CM")
	if ltc <= cm {
		t.Fatalf("LTC bar (%d) not longer than CM bar (%d)", ltc, cm)
	}
	if ltc > Width {
		t.Fatalf("bar overflows width: %d > %d", ltc, Width)
	}
}

func TestLogScaleForWideARE(t *testing.T) {
	r := exp.Result{
		Figure: "10",
		Rows: []exp.Row{
			{Dataset: "D", Series: "LTC", X: "5KB", Metric: "ARE", Value: 0.0004},
			{Dataset: "D", Series: "CM", X: "5KB", Metric: "ARE", Value: 240},
		},
	}
	out := Render(r)
	if !strings.Contains(out, "log scale") {
		t.Fatalf("expected log scale for 6-decade spread:\n%s", out)
	}
	// The tiny value still gets a visible (≥1 char) bar.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "LTC") && !strings.Contains(l, "█") {
			t.Fatalf("zero-width bar for positive value:\n%s", out)
		}
	}
}

func TestZeroValues(t *testing.T) {
	r := exp.Result{
		Figure: "x",
		Rows: []exp.Row{
			{Dataset: "D", Series: "A", X: "1", Metric: "ARE", Value: 0},
		},
	}
	out := Render(r) // must not panic or divide by zero
	if !strings.Contains(out, "A") {
		t.Fatal("series missing")
	}
}
