// Package plot renders experiment results as simple terminal charts, so
// `sigbench -plot` shows the paper's curve shapes without leaving the
// shell.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sigstream/internal/exp"
)

// Width is the bar width in characters.
const Width = 40

// Render draws one grouped bar chart per (dataset, metric) pair in the
// result: x-values as rows, one bar per series.
func Render(r exp.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", r.Figure, r.Title)

	type groupKey struct{ dataset, metric string }
	groups := map[groupKey][]exp.Row{}
	var order []groupKey
	for _, row := range r.Rows {
		k := groupKey{row.Dataset, row.Metric}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	for _, k := range order {
		rows := groups[k]
		fmt.Fprintf(&b, "\n%s · %s\n", k.dataset, k.metric)
		b.WriteString(renderGroup(rows, k.metric))
	}
	return b.String()
}

// renderGroup draws the bars for one dataset+metric block.
func renderGroup(rows []exp.Row, metric string) string {
	maxV := 0.0
	for _, r := range rows {
		if r.Value > maxV {
			maxV = r.Value
		}
	}
	logScale := metric == "ARE" && spansDecades(rows)
	var b strings.Builder

	// Preserve first-appearance order of x values and series.
	var xs []string
	seenX := map[string]bool{}
	var series []string
	seenS := map[string]bool{}
	for _, r := range rows {
		if !seenX[r.X] {
			seenX[r.X] = true
			xs = append(xs, r.X)
		}
		if !seenS[r.Series] {
			seenS[r.Series] = true
			series = append(series, r.Series)
		}
	}
	sort.Strings(series)

	val := map[[2]string]float64{}
	for _, r := range rows {
		val[[2]string{r.X, r.Series}] = r.Value
	}
	for _, x := range xs {
		fmt.Fprintf(&b, "  %s\n", x)
		for _, s := range series {
			v, ok := val[[2]string{x, s}]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "    %-14s %s %.4g\n", s, bar(v, maxV, logScale), v)
		}
	}
	if logScale {
		b.WriteString("  (log scale)\n")
	}
	return b.String()
}

// bar renders a value as a proportional run of block characters.
func bar(v, max float64, logScale bool) string {
	if max <= 0 {
		return ""
	}
	frac := v / max
	if logScale {
		// Map [max/10^6, max] to [0,1] logarithmically.
		const decades = 6
		if v <= 0 {
			frac = 0
		} else {
			frac = 1 + math.Log10(v/max)/decades
			if frac < 0 {
				frac = 0
			}
		}
	}
	n := int(frac*Width + 0.5)
	if n > Width {
		n = Width
	}
	if n == 0 && v > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// spansDecades reports whether the values cover more than two orders of
// magnitude, which makes a linear bar chart unreadable.
func spansDecades(rows []exp.Row) bool {
	minPos := math.Inf(1)
	maxV := 0.0
	for _, r := range rows {
		if r.Value > 0 && r.Value < minPos {
			minPos = r.Value
		}
		if r.Value > maxV {
			maxV = r.Value
		}
	}
	return maxV > 0 && minPos < math.Inf(1) && maxV/minPos > 100
}
