// Package lossycounting implements Lossy Counting (Manku & Motwani), the
// second counter-based baseline for top-k frequent items (paper Section
// II-A).
//
// The stream is processed in windows of width w = ⌈1/ε⌉. Each tracked item
// holds (count, Δ) where Δ is the window index at insertion — the maximum
// undercount. At every window boundary, entries with count + Δ ≤ current
// window are pruned.
//
// Classic Lossy Counting bounds its table at (1/ε)·log(εN) entries, which is
// not a fixed budget; for the paper's equal-memory comparison this
// implementation additionally enforces a hard capacity derived from the
// memory budget by pruning the weakest entries when the table overflows.
package lossycounting

import (
	"sort"

	"sigstream/internal/stream"
)

// EntryBytes is the accounted memory per tracked item: 8-byte ID, 8-byte
// count, 4-byte Δ, map overhead amortized to 4 bytes.
const EntryBytes = 24

type counter struct {
	count uint64
	delta uint64
}

// LC is a Lossy Counting summary.
type LC struct {
	capacity int
	window   int // w = ⌈1/ε⌉
	alpha    float64
	table    map[stream.Item]*counter
	seen     int    // arrivals in the current window
	bucket   uint64 // current window index (the paper's b_current)
}

// New sizes a Lossy Counting summary from a memory budget. The window width
// is set to the capacity (ε = 1/capacity), the standard choice that makes
// the nominal table size match the budget.
func New(memoryBytes int, alpha float64) *LC {
	capacity := memoryBytes / EntryBytes
	if capacity < 1 {
		capacity = 1
	}
	return &LC{
		capacity: capacity,
		window:   capacity,
		alpha:    alpha,
		table:    make(map[stream.Item]*counter, capacity),
		bucket:   1,
	}
}

// Capacity reports the hard entry limit.
func (l *LC) Capacity() int { return l.capacity }

// MemoryBytes reports the accounted footprint.
func (l *LC) MemoryBytes() int { return l.capacity * EntryBytes }

// Name identifies the algorithm.
func (l *LC) Name() string { return "LossyCounting" }

// Insert records one arrival.
func (l *LC) Insert(item stream.Item) {
	if c, ok := l.table[item]; ok {
		c.count++
	} else {
		l.table[item] = &counter{count: 1, delta: l.bucket - 1}
	}
	l.seen++
	if l.seen >= l.window {
		l.seen = 0
		l.bucket++
		l.prune()
	}
}

// prune applies the window-boundary rule, then enforces the hard capacity.
func (l *LC) prune() {
	for item, c := range l.table {
		if c.count+c.delta <= l.bucket-1 {
			delete(l.table, item)
		}
	}
	if len(l.table) <= l.capacity {
		return
	}
	// Hard budget: drop the weakest (count+Δ) entries.
	type kv struct {
		item stream.Item
		key  uint64
	}
	all := make([]kv, 0, len(l.table))
	for item, c := range l.table {
		all = append(all, kv{item, c.count + c.delta})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key < all[j].key })
	for _, e := range all[:len(all)-l.capacity] {
		delete(l.table, e.item)
	}
}

// EndPeriod is a no-op: Lossy Counting has no notion of periods.
func (l *LC) EndPeriod() {}

// Query reports the estimate for item.
func (l *LC) Query(item stream.Item) (stream.Entry, bool) {
	c, ok := l.table[item]
	if !ok {
		return stream.Entry{}, false
	}
	return l.entry(item, c), true
}

// TopK reports the k tracked items with the largest counts.
func (l *LC) TopK(k int) []stream.Entry {
	es := make([]stream.Entry, 0, len(l.table))
	for item, c := range l.table {
		es = append(es, l.entry(item, c))
	}
	return stream.TopKFromEntries(es, k)
}

func (l *LC) entry(item stream.Item, c *counter) stream.Entry {
	return stream.Entry{
		Item:         item,
		Frequency:    c.count,
		Significance: l.alpha * float64(c.count),
	}
}

var _ stream.Tracker = (*LC)(nil)
