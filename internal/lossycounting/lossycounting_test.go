package lossycounting

import (
	"math/rand"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestExactForHotItemSmallStream(t *testing.T) {
	l := New(24*100, 1) // capacity 100, window 100
	for i := 0; i < 50; i++ {
		l.Insert(7)
	}
	e, ok := l.Query(7)
	if !ok || e.Frequency != 50 {
		t.Fatalf("got %+v ok=%v, want f=50", e, ok)
	}
}

func TestPruneDropsColdItems(t *testing.T) {
	// Window = capacity = 10. One hot item plus a parade of singletons:
	// after several windows the singletons must be gone, the hot item kept.
	l := New(24*10, 1)
	next := stream.Item(100)
	for w := 0; w < 20; w++ {
		for i := 0; i < 5; i++ {
			l.Insert(1)
		}
		for i := 0; i < 5; i++ {
			l.Insert(next)
			next++
		}
	}
	if _, ok := l.Query(1); !ok {
		t.Fatal("hot item pruned")
	}
	survivors := len(l.TopK(1 << 20))
	if survivors > l.Capacity() {
		t.Fatalf("%d survivors exceed capacity %d", survivors, l.Capacity())
	}
	if _, ok := l.Query(100); ok {
		t.Fatal("first singleton should have been pruned long ago")
	}
}

func TestHardCapacityEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := New(24*50, 1)
	for i := 0; i < 20000; i++ {
		l.Insert(stream.Item(rng.Intn(5000)))
	}
	if got := len(l.TopK(1 << 20)); got > l.Capacity() {
		t.Fatalf("table holds %d > capacity %d", got, l.Capacity())
	}
}

func TestUnderestimatesBoundedByWindow(t *testing.T) {
	// Lossy Counting may undercount a tracked item by at most εN
	// (= N/window). Verify on a mixed stream.
	rng := rand.New(rand.NewSource(2))
	truth := map[stream.Item]uint64{}
	const capacity = 100
	l := New(24*capacity, 1)
	const n = 10000
	for i := 0; i < n; i++ {
		item := stream.Item(rng.Intn(500))
		truth[item]++
		l.Insert(item)
	}
	bound := uint64(n/capacity + 1)
	for item, f := range truth {
		e, ok := l.Query(item)
		if !ok {
			continue
		}
		if e.Frequency > f {
			t.Fatalf("item %d: overestimate %d > true %d (LC never overestimates)",
				item, e.Frequency, f)
		}
		if f-e.Frequency > bound {
			t.Fatalf("item %d: undercount %d exceeds εN bound %d",
				item, f-e.Frequency, bound)
		}
	}
}

func TestHeadPrecisionOnZipf(t *testing.T) {
	st := gen.Generate(gen.Config{N: 50000, M: 5000, Periods: 1, Skew: 1.2,
		Head: 100, TailWindowFrac: 1, Seed: 3})
	o := oracle.FromStream(st, stream.Frequent)
	l := New(24*500, 1)
	st.Replay(l)
	r := metrics.Evaluate(o, l, 50)
	if r.Precision < 0.6 {
		t.Fatalf("Lossy Counting precision %.2f on easy Zipf head", r.Precision)
	}
}

func TestSizing(t *testing.T) {
	l := New(2400, 1)
	if l.Capacity() != 100 {
		t.Fatalf("capacity = %d, want 100", l.Capacity())
	}
	if l.MemoryBytes() != 2400 {
		t.Fatalf("MemoryBytes = %d, want 2400", l.MemoryBytes())
	}
	if New(1, 1).Capacity() != 1 {
		t.Fatal("capacity must floor at 1")
	}
	if l.Name() != "LossyCounting" {
		t.Fatal("wrong name")
	}
}

func TestQueryMissing(t *testing.T) {
	l := New(240, 1)
	if _, ok := l.Query(12345); ok {
		t.Fatal("missing item reported present")
	}
}

func BenchmarkInsert(b *testing.B) {
	st := gen.NetworkLike(1<<17, 1)
	l := New(64*1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(st.Items[i&(1<<17-1)])
	}
}

func TestHardCapPruneKeepsStrongest(t *testing.T) {
	// Force the hard-capacity branch: capacity 10 (window 10); feed pairs
	// of repeated items so every tracked entry survives the classic
	// window-boundary rule (count 2 > 1), overflowing the table until the
	// weakest-by-(count+Δ) entries are force-dropped.
	l := New(24*10, 1)
	item := stream.Item(1)
	for round := 0; round < 30; round++ {
		for rep := 0; rep < 2; rep++ {
			l.Insert(item)
		}
		item++
		// One very hot item keeps a high count so the hard prune has a
		// clear survivor to keep.
		for rep := 0; rep < 3; rep++ {
			l.Insert(999)
		}
	}
	if got := len(l.TopK(1 << 20)); got > l.Capacity() {
		t.Fatalf("table holds %d > capacity %d", got, l.Capacity())
	}
	if _, ok := l.Query(999); !ok {
		t.Fatal("hot item dropped by hard prune")
	}
}

func TestEndPeriodNoOp(t *testing.T) {
	l := New(240, 1)
	l.Insert(1)
	l.EndPeriod() // must be a harmless no-op
	if _, ok := l.Query(1); !ok {
		t.Fatal("EndPeriod disturbed state")
	}
}
