package lossycounting

import (
	"testing"

	"sigstream/internal/stream"
	"sigstream/internal/trackertest"
)

func TestTrackerContract(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return New(mem, 1)
	}, trackertest.Options{FrequencyOnly: true})
}
