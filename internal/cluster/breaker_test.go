package cluster

import (
	"testing"
	"time"
)

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{Trip: 3, Cooldown: 5 * time.Second})
	for i := 0; i < 2; i++ {
		b.Failure(now)
		if b.State() != BreakerClosed {
			t.Fatalf("failure %d tripped the breaker early (state %v)", i+1, b.State())
		}
	}
	// A success resets the streak: three MORE failures are needed.
	b.Success()
	if b.ConsecutiveFailures() != 0 {
		t.Fatalf("failure streak %d after success, want 0", b.ConsecutiveFailures())
	}
	for i := 0; i < 3; i++ {
		b.Failure(now)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after 3 consecutive failures, want open", b.State())
	}
	if allowed, _ := b.Allow(now); allowed {
		t.Fatal("open breaker allowed a fetch inside the cooldown")
	}
}

func TestBreakerHalfOpensOnProbeAfterCooldown(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{Trip: 1, Cooldown: 5 * time.Second})
	b.Failure(now)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	// Inside the cooldown: no fetch, no probe.
	if allowed, probe := b.Allow(now.Add(time.Second)); allowed || probe {
		t.Fatalf("Allow inside cooldown = (%v, %v), want (false, false)", allowed, probe)
	}
	// Cooldown elapsed: still no fetch, but a probe is requested.
	at := now.Add(5 * time.Second)
	if allowed, probe := b.Allow(at); allowed || !probe {
		t.Fatalf("Allow after cooldown = (%v, %v), want (false, true)", allowed, probe)
	}
	// Failed probe restarts the cooldown.
	b.Probe(false, at)
	if allowed, probe := b.Allow(at.Add(4 * time.Second)); allowed || probe {
		t.Fatal("failed probe did not restart the cooldown")
	}
	// Successful probe half-opens: one trial fetch allowed.
	at = at.Add(5 * time.Second)
	if allowed, probe := b.Allow(at); allowed || !probe {
		t.Fatalf("Allow after restarted cooldown = (%v, %v), want (false, true)", allowed, probe)
	}
	b.Probe(true, at)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after successful probe, want half-open", b.State())
	}
	if allowed, _ := b.Allow(at); !allowed {
		t.Fatal("half-open breaker refused the trial fetch")
	}
	// Trial failure re-opens immediately.
	b.Failure(at)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed trial, want open", b.State())
	}
	// Next trial succeeds and closes.
	at = at.Add(5 * time.Second)
	b.Probe(true, at)
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful trial, want closed", b.State())
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := state.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", int(state), got, want)
		}
	}
}
