// Partition topology: the cluster tier lifts Sharded's hash split one
// level. A Topology carves the item space into P partitions by hash,
// names each partition as a tenant namespace that every sigserver can
// host, and assigns each partition to R replica sites by rendezvous
// (highest-random-weight) hashing — deterministic given the member list,
// with minimal partition movement when membership changes, and no
// central assignment state to persist or repair.

package cluster

import (
	"fmt"
	"sort"

	"sigstream/internal/hashing"
	"sigstream/internal/stream"
)

// partitionSalt decorrelates the cluster-level partition hash from the
// Mix64(item) split Sharded uses internally. Without it, every item in
// partition p would satisfy Mix64(item) ≡ p (mod P), pinning the whole
// partition onto one shard of the tenant's tracker whenever the shard
// count shares a factor with P.
const partitionSalt = 0x9E3779B97F4A7C15

// siteHashSeed keys the site-name hash used in rendezvous scoring.
const siteHashSeed = 0x51C0

// PartitionNamespace returns the tenant namespace that hosts partition p
// on every one of its replica sites.
func PartitionNamespace(p int) string { return fmt.Sprintf("part-%d", p) }

// Topology is an immutable partition map: P hash partitions of the item
// space, each assigned to R of the member sites. Build one with
// NewTopology; all methods are safe for concurrent use.
type Topology struct {
	sites      []string
	partitions int
	replicas   int
	assign     [][]string // partition -> replica sites in rendezvous rank order
}

// NewTopology builds the partition map for the given member sites.
// Site names must be unique and non-empty; partitions must be ≥ 1;
// replicas must satisfy 1 ≤ replicas ≤ len(sites). Every caller with the
// same arguments (in any site order) derives the identical map, so
// producers and the coordinator agree on placement without coordination.
func NewTopology(sites []string, partitions, replicas int) (*Topology, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("cluster: topology needs at least one site")
	}
	if partitions < 1 {
		return nil, fmt.Errorf("cluster: partitions = %d, need at least 1", partitions)
	}
	if replicas < 1 || replicas > len(sites) {
		return nil, fmt.Errorf("cluster: replicas = %d with %d sites, need 1..%d",
			replicas, len(sites), len(sites))
	}
	sorted := append([]string(nil), sites...)
	sort.Strings(sorted)
	for i, s := range sorted {
		if s == "" {
			return nil, fmt.Errorf("cluster: empty site name")
		}
		if i > 0 && sorted[i-1] == s {
			return nil, fmt.Errorf("cluster: duplicate site %q", s)
		}
	}
	t := &Topology{
		sites:      sorted,
		partitions: partitions,
		replicas:   replicas,
		assign:     make([][]string, partitions),
	}
	hash := hashing.NewBob(siteHashSeed)
	siteHash := make(map[string]uint64, len(sorted))
	for _, s := range sorted {
		siteHash[s] = uint64(hash.Hash([]byte(s)))
	}
	for p := 0; p < partitions; p++ {
		ranked := append([]string(nil), sorted...)
		score := func(site string) uint64 {
			return hashing.Mix64(siteHash[site]<<32 | uint64(p))
		}
		sort.SliceStable(ranked, func(i, j int) bool {
			si, sj := score(ranked[i]), score(ranked[j])
			if si != sj {
				return si > sj
			}
			return ranked[i] < ranked[j]
		})
		t.assign[p] = ranked[:replicas:replicas]
	}
	return t, nil
}

// Sites returns the member site names in sorted order.
func (t *Topology) Sites() []string {
	return append([]string(nil), t.sites...)
}

// Partitions reports the partition count P.
func (t *Topology) Partitions() int { return t.partitions }

// Replicas reports the replication factor R.
func (t *Topology) Replicas() int { return t.replicas }

// Quorum reports the replica count a partition needs reporting in an
// epoch to be considered healthy: ⌈R/2⌉.
func (t *Topology) Quorum() int { return (t.replicas + 1) / 2 }

// Partition maps an item to its partition.
func (t *Topology) Partition(item stream.Item) int {
	return int(hashing.Mix64(uint64(item)^partitionSalt) % uint64(t.partitions))
}

// PartitionKey maps a string key to its partition, hashing the key bytes
// with the topology's fixed seed. Every producer and the coordinator's
// tooling use this one function, so a key always lands in the same
// partition namespace no matter which process routes it.
func (t *Topology) PartitionKey(key string) int {
	item := stream.Item(hashing.NewBob(siteHashSeed).Hash([]byte(key)))
	return t.Partition(item)
}

// ReplicaSites returns partition p's replica sites in rendezvous rank
// order. The returned slice is a copy.
func (t *Topology) ReplicaSites(p int) []string {
	return append([]string(nil), t.assign[p]...)
}
