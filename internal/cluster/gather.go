// Networked quorum gather: the failure-first core of the cluster tier.
// A Gatherer owns the partition topology and one SiteClient per member
// site; each Round pulls every partition's checkpoint from its replica
// sites — deadline per call, full-jitter retry for transient failures,
// no retry for deterministic ones, per-site circuit breaker — and
// commits a merged cluster view only when every partition reached read
// quorum (⌈R/2⌉ replicas reported). On quorum loss the previous
// committed view keeps serving with a growing staleness age: a stale
// cluster-wide ranking beats no ranking, and beats a silently partial
// one even more.
//
// Round uses a named return so its deferred bookkeeping (breaker
// transitions, site reports, the last-round record) lands in the value
// the caller sees even when the commit fault hook panics mid-round.

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sigstream"
	"sigstream/internal/fault"
)

// ErrNoPartition is the sentinel a SiteClient returns from
// FetchCheckpoint when the site is reachable but has never seen the
// partition's namespace (a cluster warming up, or a partition with no
// traffic yet). It counts as a successful, empty report for quorum — the
// site answered; there is simply nothing to merge.
var ErrNoPartition = errors.New("cluster: partition namespace not present on site")

// SiteClient is the transport to one sigserver node. The production
// implementation wraps internal/client over HTTP; tests substitute
// in-process fakes. Every call must honor its context deadline.
type SiteClient interface {
	// FetchCheckpoint downloads the binary checkpoint of one partition
	// namespace (a Sharded image, as served by the checkpoint route).
	// Unknown namespaces map to ErrNoPartition.
	FetchCheckpoint(ctx context.Context, ns string) ([]byte, error)
	// FetchNames returns up to k of the namespace's top items with their
	// registered key strings, for display-name resolution in the cluster
	// view. Best-effort: an error degrades names, never the round.
	FetchNames(ctx context.Context, ns string, k int) (map[uint64]string, error)
	// Ready probes the site's readiness endpoint; it gates half-opening a
	// tripped breaker.
	Ready(ctx context.Context) error
}

// GatherConfig shapes a Gatherer. Topology and Clients are required;
// zero values elsewhere select defaults.
type GatherConfig struct {
	// Topology is the cluster's partition map.
	Topology *Topology
	// Clients maps each topology site name to its transport.
	Clients map[string]SiteClient
	// Retry bounds the per-fetch backoff for transient failures.
	Retry RetryPolicy
	// Breaker bounds each site's circuit breaker.
	Breaker BreakerConfig
	// FetchTimeout is the deadline applied to every remote call
	// (default 2s).
	FetchTimeout time.Duration
	// ResolveNames is the number of top items per partition whose key
	// strings are harvested for the cluster view (default 64; negative
	// disables resolution).
	ResolveNames int

	// now replaces time.Now in tests.
	now func() time.Time
}

// SiteHealth classifies one site in a round report.
type SiteHealth string

// The site health classes surfaced by cluster status: healthy (delivered
// everything asked of it), degraded (answered with failures, breaker
// still closed or trialing), tripped (breaker open; the site is being
// skipped).
const (
	SiteHealthy  SiteHealth = "healthy"
	SiteDegraded SiteHealth = "degraded"
	SiteTripped  SiteHealth = "tripped"
)

// SiteReport is one site's state after a round.
type SiteReport struct {
	// Site is the topology site name.
	Site string `json:"site"`
	// Health is the coarse classification.
	Health SiteHealth `json:"health"`
	// Breaker is the breaker position after the round.
	Breaker string `json:"breaker"`
	// Failures is the consecutive failed-round streak while closed.
	Failures int `json:"failures,omitempty"`
	// LastEpoch is the last committed epoch this site contributed to
	// (0 before its first contribution).
	LastEpoch int `json:"last_epoch"`
	// Skips lists this round's skip reasons, one per partition fetch the
	// site failed or was excused from.
	Skips []string `json:"skips,omitempty"`
}

// PartitionReport is one partition's outcome in a round.
type PartitionReport struct {
	// Partition is the partition index.
	Partition int `json:"partition"`
	// Namespace is the tenant namespace hosting the partition.
	Namespace string `json:"namespace"`
	// Reported is the number of replicas that answered this round.
	Reported int `json:"reported"`
	// Quorum reports whether Reported reached ⌈R/2⌉.
	Quorum bool `json:"quorum"`
	// MergedFrom is the replica site whose image entered the view
	// (empty when the partition had no data or missed quorum).
	MergedFrom string `json:"merged_from,omitempty"`
	// Empty reports that every answering replica had no data.
	Empty bool `json:"empty,omitempty"`
}

// RoundReport describes one gather round end to end.
type RoundReport struct {
	// Epoch is the view epoch after the round (unchanged if uncommitted).
	Epoch int `json:"epoch"`
	// Committed reports whether the round installed a new view.
	Committed bool `json:"committed"`
	// Reason explains an uncommitted round.
	Reason string `json:"reason,omitempty"`
	// Partitions holds one entry per partition, in index order.
	Partitions []PartitionReport `json:"partitions"`
	// Sites holds one entry per topology site, in name order.
	Sites []SiteReport `json:"sites"`
}

// QuorumPartitions counts partitions that reached quorum this round.
func (r RoundReport) QuorumPartitions() int {
	n := 0
	for _, p := range r.Partitions {
		if p.Quorum {
			n++
		}
	}
	return n
}

// HealthySites counts sites classified healthy this round.
func (r RoundReport) HealthySites() int {
	n := 0
	for _, s := range r.Sites {
		if s.Health == SiteHealthy {
			n++
		}
	}
	return n
}

// ViewEntry is one ranked item of the cluster view, with its display key
// when a replica's top list resolved one.
type ViewEntry struct {
	// Key is the registered key string, or a decimal rendering of the
	// item hash when no site resolved a name.
	Key string `json:"key"`
	// Item is the item identifier.
	Item uint64 `json:"item"`
	// Frequency is the estimated number of appearances cluster-wide.
	Frequency uint64 `json:"frequency"`
	// Persistency is the estimated number of periods with ≥1 appearance.
	Persistency uint64 `json:"persistency"`
	// Significance is the weighted score.
	Significance float64 `json:"significance"`
}

// ViewInfo describes the committed view being served.
type ViewInfo struct {
	// Epoch is the view's commit epoch.
	Epoch int `json:"epoch"`
	// Committed is when the view was installed.
	Committed time.Time `json:"committed"`
	// AgeSeconds is how old the view was at query time.
	AgeSeconds float64 `json:"age_seconds"`
	// Stale reports that at least one round has failed to commit since
	// this view was installed — the answers are real but not current.
	Stale bool `json:"stale"`
}

// GatherStats is a counters snapshot for metrics export.
type GatherStats struct {
	// Rounds is the number of gather rounds run.
	Rounds uint64
	// Commits is the number of rounds that installed a new view.
	Commits uint64
	// StaleRounds is the number of rounds that failed to commit.
	StaleRounds uint64
	// Fetches is the number of checkpoint fetch attempts (retries count).
	Fetches uint64
	// FetchErrors is the number of failed fetch attempts.
	FetchErrors uint64
	// SiteSkips counts per-site partition skips across all rounds.
	SiteSkips map[string]uint64
	// BreakerState is each site's current breaker position.
	BreakerState map[string]BreakerState
	// ViewEpoch is the committed view's epoch (0 before the first).
	ViewEpoch int
	// ViewAgeSeconds is the committed view's age (0 before the first).
	ViewAgeSeconds float64
	// Sites is the topology's member count.
	Sites int
	// SitesHealthy is the healthy-site count of the last round.
	SitesHealthy int
	// Partitions is the topology's partition count.
	Partitions int
	// PartitionsQuorum is the last round's quorum-partition count.
	PartitionsQuorum int
}

// view is one committed cluster snapshot.
type view struct {
	epoch     int
	committed time.Time
	tracker   *sigstream.Sharded // nil when the committed cluster was empty
	names     map[uint64]string
}

// Gatherer runs quorum gather rounds and serves the committed view.
// Rounds are serialized on roundMu; view readers only take mu, so a slow
// round (retries, timeouts) never blocks TopK or Status.
//
//sig:lockorder roundMu < mu
type Gatherer struct {
	cfg     GatherConfig
	topo    *Topology
	timeout time.Duration
	resolve int
	now     func() time.Time

	roundMu sync.Mutex // serializes Round

	mu        sync.Mutex
	sites     map[string]*siteEntry
	cur       *view
	lastRound *RoundReport
	rounds    uint64
	commits   uint64
	stale     uint64
	fetches   uint64
	fetchErrs uint64
	skips     map[string]uint64
}

// siteEntry is the per-site state the gatherer tracks across rounds.
type siteEntry struct {
	b         *breaker
	lastEpoch int
}

// NewGatherer builds a gatherer over cfg. Every topology site must have
// a client.
func NewGatherer(cfg GatherConfig) (*Gatherer, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("cluster: gatherer needs a topology")
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 2 * time.Second
	}
	resolve := cfg.ResolveNames
	if resolve == 0 {
		resolve = 64
	}
	if resolve < 0 {
		resolve = 0
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	g := &Gatherer{
		cfg:     cfg,
		topo:    cfg.Topology,
		timeout: cfg.FetchTimeout,
		resolve: resolve,
		now:     cfg.now,
		sites:   make(map[string]*siteEntry),
		skips:   make(map[string]uint64),
	}
	for _, site := range cfg.Topology.Sites() {
		if cfg.Clients[site] == nil {
			return nil, fmt.Errorf("cluster: no client for site %s", site)
		}
		g.sites[site] = &siteEntry{b: newBreaker(cfg.Breaker)}
	}
	return g, nil
}

// fetchClass classifies one replica fetch outcome.
type fetchClass int

const (
	fetchOK fetchClass = iota
	fetchEmpty
	fetchCorrupt
	fetchUnreachable
)

// replicaFetch is one replica's round outcome for one partition.
type replicaFetch struct {
	class   fetchClass
	img     []byte
	tracker *sigstream.Sharded
	err     error
}

// fetchReplica pulls and validates one partition checkpoint from one
// site, retrying transient failures under the configured policy.
// Deterministic failures (a corrupt image) surface immediately: re-asking
// the same question gets the same broken answer.
func (g *Gatherer) fetchReplica(ctx context.Context, sc SiteClient, ns string) replicaFetch {
	p := g.cfg.Retry.withDefaults()
	delay := p.BaseDelay
	var lastErr error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			p.sleep(time.Duration(p.rand() * float64(delay)))
			delay *= 2
			if delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		if err := ctx.Err(); err != nil {
			return replicaFetch{class: fetchUnreachable, err: err}
		}
		g.mu.Lock()
		g.fetches++
		g.mu.Unlock()
		cctx, cancel := context.WithTimeout(ctx, g.timeout)
		img, err := sc.FetchCheckpoint(cctx, ns)
		cancel()
		if errors.Is(err, ErrNoPartition) {
			return replicaFetch{class: fetchEmpty}
		}
		if err != nil {
			g.mu.Lock()
			g.fetchErrs++
			g.mu.Unlock()
			lastErr = err
			continue
		}
		tracker := new(sigstream.Sharded)
		if derr := tracker.UnmarshalBinary(img); derr != nil {
			g.mu.Lock()
			g.fetchErrs++
			g.mu.Unlock()
			return replicaFetch{class: fetchCorrupt, err: derr}
		}
		return replicaFetch{class: fetchOK, img: img, tracker: tracker}
	}
	return replicaFetch{class: fetchUnreachable,
		err: fmt.Errorf("unreachable after %d attempts: %w", p.Attempts, lastErr)}
}

// Round runs one gather cycle: probe tripped breakers, fetch every
// partition from its replicas, and commit a merged view if every
// partition reached quorum. It never returns an error — failure detail
// lives in the report, and an uncommitted round leaves the previous view
// serving. Concurrent Round calls serialize.
func (g *Gatherer) Round(ctx context.Context) (rep RoundReport) {
	g.roundMu.Lock()
	defer g.roundMu.Unlock()

	now := g.now()
	siteNames := g.topo.Sites()

	// Breaker gate: decide per site whether to fetch at all this round,
	// probing readiness where a cooldown has expired.
	allowed := make(map[string]bool, len(siteNames))
	for _, site := range siteNames {
		g.mu.Lock()
		ok, probe := g.sites[site].b.Allow(now)
		g.mu.Unlock()
		if probe {
			pctx, cancel := context.WithTimeout(ctx, g.timeout)
			perr := g.cfg.Clients[site].Ready(pctx)
			cancel()
			g.mu.Lock()
			g.sites[site].b.Probe(perr == nil, now)
			ok, _ = g.sites[site].b.Allow(now)
			g.mu.Unlock()
		}
		allowed[site] = ok
	}

	// Fetch phase. A site that exhausts its retries once is marked down
	// for the remainder of the round: burning the full backoff schedule
	// against a dead node once per partition would turn one node death
	// into a round lasting partitions×retries×timeout.
	down := make(map[string]bool, len(siteNames))
	hardFail := make(map[string]bool, len(siteNames))
	succeeded := make(map[string]bool, len(siteNames))
	siteSkips := make(map[string][]string, len(siteNames))
	skip := func(site, ns, reason string) {
		siteSkips[site] = append(siteSkips[site], ns+": "+reason)
		g.mu.Lock()
		g.skips[site]++
		g.mu.Unlock()
	}

	parts := make([]PartitionReport, g.topo.Partitions())
	images := make([][]byte, 0, g.topo.Partitions())
	mergedSite := make([]string, g.topo.Partitions())
	quorum := g.topo.Quorum()
	allQuorum := true
	for p := 0; p < g.topo.Partitions(); p++ {
		ns := PartitionNamespace(p)
		pr := PartitionReport{Partition: p, Namespace: ns}
		var best replicaFetch
		for _, site := range g.topo.ReplicaSites(p) {
			switch {
			case !allowed[site]:
				skip(site, ns, "breaker open")
				continue
			case down[site]:
				skip(site, ns, "site down this round")
				continue
			}
			res := g.fetchReplica(ctx, g.cfg.Clients[site], ns)
			switch res.class {
			case fetchUnreachable:
				down[site] = true
				hardFail[site] = true
				skip(site, ns, res.err.Error())
			case fetchCorrupt:
				hardFail[site] = true
				skip(site, ns, "corrupt checkpoint: "+res.err.Error())
			case fetchEmpty:
				succeeded[site] = true
				pr.Reported++
			case fetchOK:
				succeeded[site] = true
				pr.Reported++
				if better(res, best) {
					best = res
					pr.MergedFrom = site
				}
			}
		}
		pr.Quorum = pr.Reported >= quorum
		pr.Empty = pr.Reported > 0 && best.tracker == nil
		if !pr.Quorum {
			allQuorum = false
		}
		if best.tracker != nil {
			images = append(images, best.img)
			mergedSite[p] = pr.MergedFrom
		}
		parts[p] = pr
	}

	rep.Partitions = parts
	committedEpoch := 0
	defer func() {
		// Breaker and report bookkeeping runs whether or not the commit
		// succeeded — and, crucially, even if the commit fault hook panics
		// (the simulated coordinator crash unwinds through here).
		g.mu.Lock()
		g.rounds++
		if rep.Committed {
			g.commits++
		} else {
			g.stale++
		}
		for _, site := range siteNames {
			se := g.sites[site]
			if hardFail[site] || (!succeeded[site] && !allowed[site]) {
				if hardFail[site] {
					se.b.Failure(now)
				}
			} else if succeeded[site] {
				se.b.Success()
				if rep.Committed {
					se.lastEpoch = committedEpoch
				}
			}
			sr := SiteReport{
				Site:      site,
				Breaker:   se.b.State().String(),
				Failures:  se.b.ConsecutiveFailures(),
				LastEpoch: se.lastEpoch,
				Skips:     siteSkips[site],
			}
			switch {
			case se.b.State() != BreakerClosed:
				sr.Health = SiteTripped
			case hardFail[site] || len(siteSkips[site]) > 0:
				sr.Health = SiteDegraded
			default:
				sr.Health = SiteHealthy
			}
			rep.Sites = append(rep.Sites, sr)
		}
		if g.cur != nil {
			rep.Epoch = g.cur.epoch
		}
		g.lastRound = &rep
		g.mu.Unlock()
	}()

	if !allQuorum {
		rep.Reason = fmt.Sprintf("quorum loss: %d/%d partitions reported ≥%d replicas",
			rep.QuorumPartitions(), len(parts), quorum)
		return rep
	}

	// Every partition reached quorum: merge and commit. The fault point
	// models the coordinator dying (panic) or failing (error) between
	// Collect and Commit; either way the previous view must survive.
	if err := fault.Inject(fault.CoordCommit, 0); err != nil {
		rep.Reason = "commit aborted: " + err.Error()
		return rep
	}
	var merged *sigstream.Sharded
	if len(images) > 0 {
		var err error
		merged, err = sigstream.MergeShardedCheckpoints(images...)
		if err != nil {
			rep.Reason = "merge failed: " + err.Error()
			return rep
		}
	}
	names := g.harvestNames(ctx, parts)

	g.mu.Lock()
	epoch := 1
	if g.cur != nil {
		epoch = g.cur.epoch + 1
	}
	g.cur = &view{epoch: epoch, committed: now, tracker: merged, names: names}
	g.mu.Unlock()
	rep.Committed = true
	committedEpoch = epoch
	return rep
}

// better ranks replica images of one partition: prefer the one that has
// seen the most history (periods, then arrivals), so a freshly restarted
// replica that missed traffic while dead does not mask the survivor's
// complete view.
func better(a, b replicaFetch) bool {
	if b.tracker == nil {
		return a.tracker != nil
	}
	as, bs := a.tracker.Stats(), b.tracker.Stats()
	if as.Periods != bs.Periods {
		return as.Periods > bs.Periods
	}
	return as.Arrivals > bs.Arrivals
}

// harvestNames pulls display keys for each merged partition's top items,
// best-effort, from the replica whose image entered the view.
func (g *Gatherer) harvestNames(ctx context.Context, parts []PartitionReport) map[uint64]string {
	names := make(map[uint64]string)
	if g.resolve == 0 {
		return names
	}
	for _, pr := range parts {
		if pr.MergedFrom == "" {
			continue
		}
		nctx, cancel := context.WithTimeout(ctx, g.timeout)
		m, err := g.cfg.Clients[pr.MergedFrom].FetchNames(nctx, pr.Namespace, g.resolve)
		cancel()
		if err != nil {
			continue
		}
		for item, key := range m {
			names[item] = key
		}
	}
	return names
}

// TopK reports the committed cluster view's top-k entries with view
// provenance. ok is false before the first committed view.
func (g *Gatherer) TopK(k int) (entries []ViewEntry, info ViewInfo, ok bool) {
	g.mu.Lock()
	v := g.cur
	staleRound := g.lastRound != nil && !g.lastRound.Committed
	g.mu.Unlock()
	if v == nil {
		return nil, ViewInfo{}, false
	}
	info = ViewInfo{
		Epoch:      v.epoch,
		Committed:  v.committed,
		AgeSeconds: g.now().Sub(v.committed).Seconds(),
		Stale:      staleRound,
	}
	if v.tracker == nil {
		return []ViewEntry{}, info, true
	}
	for _, e := range v.tracker.TopK(k) {
		key, found := v.names[e.Item]
		if !found {
			key = fmt.Sprintf("%d", e.Item)
		}
		entries = append(entries, ViewEntry{
			Key:          key,
			Item:         e.Item,
			Frequency:    e.Frequency,
			Persistency:  e.Persistency,
			Significance: e.Significance,
		})
	}
	return entries, info, true
}

// ViewInfo reports the committed view's provenance without its entries.
// ok is false before the first committed view.
func (g *Gatherer) ViewInfo() (ViewInfo, bool) {
	_, info, ok := g.TopK(0)
	return info, ok
}

// LastRound returns the most recent round report. ok is false before the
// first round.
func (g *Gatherer) LastRound() (RoundReport, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.lastRound == nil {
		return RoundReport{}, false
	}
	return *g.lastRound, true
}

// Stats snapshots the gatherer's counters for metrics export.
func (g *Gatherer) Stats() GatherStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := GatherStats{
		Rounds:       g.rounds,
		Commits:      g.commits,
		StaleRounds:  g.stale,
		Fetches:      g.fetches,
		FetchErrors:  g.fetchErrs,
		SiteSkips:    make(map[string]uint64, len(g.skips)),
		BreakerState: make(map[string]BreakerState, len(g.sites)),
		Sites:        len(g.sites),
		Partitions:   g.topo.Partitions(),
	}
	for site, n := range g.skips {
		st.SiteSkips[site] = n
	}
	for site, se := range g.sites {
		st.BreakerState[site] = se.b.State()
	}
	if g.cur != nil {
		st.ViewEpoch = g.cur.epoch
		st.ViewAgeSeconds = g.now().Sub(g.cur.committed).Seconds()
	}
	if g.lastRound != nil {
		st.SitesHealthy = g.lastRound.HealthySites()
		st.PartitionsQuorum = g.lastRound.QuorumPartitions()
	}
	return st
}
