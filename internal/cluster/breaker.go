// Per-site circuit breaker: a site that fails round after round stops
// being fetched at all, so a dead node costs the gather loop nothing
// (no retries, no timeouts burned) until its cooldown passes and a cheap
// readiness probe says it is worth trying again. The breaker is advanced
// only at gather time by the round that owns it — no background
// goroutines, no timers, nothing to leak.

package cluster

import "time"

// BreakerConfig bounds one site's circuit breaker. The zero value
// selects the defaults.
type BreakerConfig struct {
	// Trip is the number of consecutive failed rounds that opens the
	// breaker (default 3).
	Trip int
	// Cooldown is how long an open breaker suppresses fetches before a
	// readiness probe may half-open it (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Trip <= 0 {
		c.Trip = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// BreakerState is one position of a site's circuit breaker.
type BreakerState int

// The breaker states: closed (site fetched normally), open (site skipped
// until its cooldown passes a readiness probe), half-open (one trial
// fetch in flight; success closes, failure re-opens).
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for status endpoints and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one site's circuit breaker. Not safe for concurrent use;
// the gatherer serializes rounds and owns all breaker transitions.
type breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	failures int       // consecutive failed rounds while closed
	openedAt time.Time // when the breaker last opened
}

func newBreaker(cfg BreakerConfig) *breaker {
	return &breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether the site may be fetched at time now. When the
// breaker is open and the cooldown has elapsed, allowed is false but
// probe is true: the caller should run a readiness probe and report it
// via Probe, then ask again.
func (b *breaker) Allow(now time.Time) (allowed, probe bool) {
	if b.state != BreakerOpen {
		return true, false
	}
	if now.Sub(b.openedAt) >= b.cfg.Cooldown {
		return false, true
	}
	return false, false
}

// Probe records a readiness-probe outcome on an open breaker: success
// half-opens it (one trial fetch allowed), failure restarts the cooldown.
func (b *breaker) Probe(ok bool, now time.Time) {
	if b.state != BreakerOpen {
		return
	}
	if ok {
		b.state = BreakerHalfOpen
	} else {
		b.openedAt = now
	}
}

// Success records a round in which the site delivered; any state closes.
func (b *breaker) Success() {
	b.state = BreakerClosed
	b.failures = 0
}

// Failure records a round in which the site failed: a half-open trial
// re-opens immediately, a closed breaker trips open after Trip
// consecutive failures.
func (b *breaker) Failure(now time.Time) {
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.Trip {
			b.state = BreakerOpen
			b.openedAt = now
		}
	case BreakerOpen:
		// Already open: Allow gated the site, so a failure here can only
		// come from a round that raced the trip. The cooldown clock is
		// deliberately not restarted — only a failed probe restarts it.
	}
}

// State reports the breaker's current position.
func (b *breaker) State() BreakerState { return b.state }

// ConsecutiveFailures reports the closed-state failure streak.
func (b *breaker) ConsecutiveFailures() int { return b.failures }
