// Package cluster coordinates per-site LTC trackers into a global
// significant-items view — the paper's Use Case 3 endgame: "if persistent
// flows all over the data center can be efficiently identified, we can
// make a global solution to schedule the persistent flows".
//
// Each Site owns an LTC over its local arrivals. A Coordinator collects
// binary checkpoints (the transport is abstracted, so sites can live
// in-process, behind cmd/sigserver, or ship files) and merges them at each
// period boundary into a queryable global summary. Items must be
// partitioned across sites (each item's arrivals at one site — e.g.
// flow-hash routing); overlapping items are merged by summing, which
// overcounts persistency only if the same item appears at two sites in the
// same period.
package cluster

import (
	"fmt"
	"sync"

	"sigstream/internal/ltc"
	"sigstream/internal/stream"
)

// Config shapes every tracker in the cluster. All sites must share it so
// their checkpoints merge.
type Config struct {
	// MemoryBytes is each site's budget.
	MemoryBytes int
	// Weights are the significance coefficients.
	Weights stream.Weights
	// ItemsPerPeriod paces each site's CLOCK sweep (per-site arrivals).
	ItemsPerPeriod int
	// Seed keys the hash functions (must match across sites).
	Seed uint32
}

func (c Config) options() ltc.Options {
	return ltc.Options{
		MemoryBytes:    c.MemoryBytes,
		Weights:        c.Weights,
		ItemsPerPeriod: c.ItemsPerPeriod,
		Seed:           c.Seed,
	}
}

// Site is one collection point.
type Site struct {
	name string
	mu   sync.Mutex
	l    *ltc.LTC
}

// NewSite creates a named site tracker.
func NewSite(name string, cfg Config) *Site {
	return &Site{name: name, l: ltc.New(cfg.options())}
}

// Name returns the site's identifier.
func (s *Site) Name() string { return s.name }

// Insert records one local arrival. Safe for concurrent use.
func (s *Site) Insert(item stream.Item) {
	s.mu.Lock()
	s.l.Insert(item)
	s.mu.Unlock()
}

// EndPeriod closes the site's current period.
func (s *Site) EndPeriod() {
	s.mu.Lock()
	s.l.EndPeriod()
	s.mu.Unlock()
}

// Export snapshots the site's state for shipping to the coordinator.
func (s *Site) Export() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.MarshalBinary()
}

// Coordinator merges site checkpoints into a global summary.
type Coordinator struct {
	cfg Config

	mu     sync.Mutex
	epoch  int
	global *ltc.LTC            // latest merged view (nil before first round)
	seen   map[string]struct{} // sites collected this round
	staged *ltc.LTC            // merge-in-progress for the current round
	last   *Report             // last GatherRound outcome (nil before one runs)
}

// NewCoordinator creates a coordinator expecting checkpoints built with cfg.
func NewCoordinator(cfg Config) *Coordinator {
	return &Coordinator{cfg: cfg, seen: map[string]struct{}{}}
}

// Collect absorbs one site's checkpoint into the current round. Collecting
// the same site twice in a round is an error (stale duplicate shipments
// must not double-count).
func (c *Coordinator) Collect(site string, checkpoint []byte) error {
	restored := ltc.New(c.cfg.options())
	if err := restored.UnmarshalBinary(checkpoint); err != nil {
		return fmt.Errorf("cluster: site %s: %w", site, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.seen[site]; dup {
		return fmt.Errorf("cluster: site %s already collected in epoch %d", site, c.epoch)
	}
	if c.staged == nil {
		c.staged = restored
	} else {
		if err := c.staged.Merge(restored); err != nil {
			return fmt.Errorf("cluster: site %s: %w", site, err)
		}
	}
	c.seen[site] = struct{}{}
	return nil
}

// Commit finishes the round: the staged merge becomes the queryable global
// view and a new round begins. It reports the number of sites merged.
func (c *Coordinator) Commit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.seen)
	if c.staged != nil {
		c.global = c.staged
	}
	c.staged = nil
	c.seen = map[string]struct{}{}
	c.epoch++
	return n
}

// Epoch reports the number of committed rounds.
func (c *Coordinator) Epoch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// LastReport returns the report of the most recent GatherRound, so
// degraded state stays observable between rounds instead of vanishing
// with the gather call's return value. The second result is false before
// the first round. The returned report is a copy; mutating it does not
// affect the coordinator.
func (c *Coordinator) LastReport() (Report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last == nil {
		return Report{}, false
	}
	rep := Report{Epoch: c.last.Epoch, Skipped: make(map[string]error, len(c.last.Skipped))}
	rep.Merged = append(rep.Merged, c.last.Merged...)
	for site, err := range c.last.Skipped {
		rep.Skipped[site] = err
	}
	return rep, true
}

// setLastReport records rep as the most recent round outcome.
func (c *Coordinator) setLastReport(rep Report) {
	c.mu.Lock()
	c.last = &rep
	c.mu.Unlock()
}

// Pending reports the sites collected in the current round.
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen)
}

// TopK reports the global top-k from the last committed round.
func (c *Coordinator) TopK(k int) []stream.Entry {
	c.mu.Lock()
	g := c.global
	c.mu.Unlock()
	if g == nil {
		return nil
	}
	return g.TopK(k)
}

// Query reports the global estimate for an item from the last committed
// round.
func (c *Coordinator) Query(item stream.Item) (stream.Entry, bool) {
	c.mu.Lock()
	g := c.global
	c.mu.Unlock()
	if g == nil {
		return stream.Entry{}, false
	}
	return g.Query(item)
}

// Round runs one full collection cycle over in-process sites: every site's
// period is closed, exported and collected, then the round commits. It is
// the convenience path for single-process deployments and tests.
func (c *Coordinator) Round(sites ...*Site) error {
	for _, s := range sites {
		s.EndPeriod()
		img, err := s.Export()
		if err != nil {
			return fmt.Errorf("cluster: site %s export: %w", s.Name(), err)
		}
		if err := c.Collect(s.Name(), img); err != nil {
			return err
		}
	}
	c.Commit()
	return nil
}
