package cluster

import (
	"testing"

	"sigstream/internal/stream"
)

func testSites() []string {
	return []string{"http://n1:8080", "http://n2:8080", "http://n3:8080"}
}

func TestNewTopologyValidation(t *testing.T) {
	cases := []struct {
		name       string
		sites      []string
		partitions int
		replicas   int
	}{
		{"no sites", nil, 4, 1},
		{"zero partitions", testSites(), 0, 1},
		{"zero replicas", testSites(), 4, 0},
		{"replicas exceed sites", testSites(), 4, 4},
		{"duplicate site", []string{"a", "a"}, 4, 1},
		{"empty site name", []string{"a", ""}, 4, 1},
	}
	for _, tc := range cases {
		if _, err := NewTopology(tc.sites, tc.partitions, tc.replicas); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestTopologyDeterministicAcrossSiteOrder(t *testing.T) {
	a, err := NewTopology(testSites(), 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{"http://n3:8080", "http://n1:8080", "http://n2:8080"}
	b, err := NewTopology(shuffled, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 16; p++ {
		ra, rb := a.ReplicaSites(p), b.ReplicaSites(p)
		if len(ra) != 2 || len(rb) != 2 || ra[0] != rb[0] || ra[1] != rb[1] {
			t.Fatalf("partition %d: %v vs %v; placement must not depend on argument order", p, ra, rb)
		}
	}
}

func TestTopologyReplicaSetsAreDistinctSites(t *testing.T) {
	topo, err := NewTopology(testSites(), 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < topo.Partitions(); p++ {
		reps := topo.ReplicaSites(p)
		if len(reps) != 2 {
			t.Fatalf("partition %d: %d replicas, want 2", p, len(reps))
		}
		if reps[0] == reps[1] {
			t.Fatalf("partition %d: duplicate replica %q", p, reps[0])
		}
	}
}

func TestTopologyEverySiteOwnsSomePartition(t *testing.T) {
	topo, err := NewTopology(testSites(), 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]int{}
	for p := 0; p < topo.Partitions(); p++ {
		for _, s := range topo.ReplicaSites(p) {
			owned[s]++
		}
	}
	for _, s := range testSites() {
		if owned[s] == 0 {
			t.Fatalf("site %s owns no partitions: %v", s, owned)
		}
	}
}

func TestTopologyMinimalMovementOnMembershipChange(t *testing.T) {
	before, err := NewTopology(testSites(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewTopology(append(testSites(), "http://n4:8080"), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Rendezvous hashing: a partition moves only if the new site wins its
	// score race, so surviving placements must be a subset of the old ones.
	moved := 0
	for p := 0; p < 64; p++ {
		b, a := before.ReplicaSites(p)[0], after.ReplicaSites(p)[0]
		if b != a {
			if a != "http://n4:8080" {
				t.Fatalf("partition %d moved %s -> %s, not to the new site", p, b, a)
			}
			moved++
		}
	}
	if moved == 0 || moved == 64 {
		t.Fatalf("%d/64 partitions moved after adding a site; want a strict fraction", moved)
	}
}

func TestTopologyPartitionSpread(t *testing.T) {
	topo, err := NewTopology(testSites(), 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, topo.Partitions())
	const items = 16000
	for i := 0; i < items; i++ {
		p := topo.Partition(stream.Item(i + 1))
		if p < 0 || p >= topo.Partitions() {
			t.Fatalf("item %d mapped to partition %d outside [0,%d)", i, p, topo.Partitions())
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < items/topo.Partitions()/2 || c > items/topo.Partitions()*2 {
			t.Fatalf("partition %d holds %d of %d items; hash spread is badly skewed: %v",
				p, c, items, counts)
		}
	}
}

func TestTopologyQuorum(t *testing.T) {
	for _, tc := range []struct{ replicas, want int }{{1, 1}, {2, 1}, {3, 2}} {
		topo, err := NewTopology(testSites(), 4, tc.replicas)
		if err != nil {
			t.Fatal(err)
		}
		if got := topo.Quorum(); got != tc.want {
			t.Fatalf("R=%d: quorum %d, want %d", tc.replicas, got, tc.want)
		}
	}
}

func TestPartitionNamespace(t *testing.T) {
	if ns := PartitionNamespace(7); ns != "part-7" {
		t.Fatalf("PartitionNamespace(7) = %q", ns)
	}
}
