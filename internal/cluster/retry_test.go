package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// flakyFetcher fails the first failures calls, then serves img.
func flakyFetcher(img []byte, failures int) Fetcher {
	calls := 0
	return func() ([]byte, error) {
		calls++
		if calls <= failures {
			return nil, fmt.Errorf("connection refused (call %d)", calls)
		}
		return img, nil
	}
}

// recordedPolicy returns a policy whose sleeps are captured instead of
// slept and whose jitter source is pinned to 1, so the exact un-jittered
// backoff shape is asserted without wall-clock time.
func recordedPolicy(attempts int, base, max time.Duration) (RetryPolicy, *[]time.Duration) {
	var slept []time.Duration
	return RetryPolicy{
		Attempts:  attempts,
		BaseDelay: base,
		MaxDelay:  max,
		sleep:     func(d time.Duration) { slept = append(slept, d) },
		rand:      func() float64 { return 1 },
	}, &slept
}

func TestCollectFromRetriesTransientFailure(t *testing.T) {
	s := NewSite("rack-a", cfg())
	s.Insert(7)
	s.EndPeriod()
	img, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(cfg())
	policy, slept := recordedPolicy(4, 50*time.Millisecond, time.Second)
	if err := co.CollectFrom("rack-a", flakyFetcher(img, 2), policy); err != nil {
		t.Fatalf("CollectFrom with 2 transient failures: %v", err)
	}
	if co.Pending() != 1 {
		t.Fatalf("Pending = %d after a successful retried collect, want 1", co.Pending())
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(*slept) != len(want) || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("backoff %v, want %v (exponential from base)", *slept, want)
	}
}

func TestCollectFromExhaustsAttemptsWithCappedBackoff(t *testing.T) {
	co := NewCoordinator(cfg())
	policy, slept := recordedPolicy(5, 400*time.Millisecond, time.Second)
	dead := errors.New("site is on fire")
	err := co.CollectFrom("rack-dead", func() ([]byte, error) { return nil, dead }, policy)
	if err == nil {
		t.Fatal("CollectFrom on a dead site returned nil")
	}
	if !errors.Is(err, dead) {
		t.Fatalf("error %v does not wrap the fetch failure", err)
	}
	if !strings.Contains(err.Error(), "after 5 attempts") {
		t.Fatalf("error %q does not report the attempt count", err)
	}
	// 400 doubles to 800, then the 1s cap holds.
	want := []time.Duration{400 * time.Millisecond, 800 * time.Millisecond, time.Second, time.Second}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i := range want {
		if (*slept)[i] != want[i] {
			t.Fatalf("backoff step %d = %v, want %v (cap at MaxDelay)", i, (*slept)[i], want[i])
		}
	}
	if co.Pending() != 0 {
		t.Fatalf("Pending = %d after a failed collect, want 0", co.Pending())
	}
}

func TestCollectFromDoesNotRetryCorruptCheckpoint(t *testing.T) {
	co := NewCoordinator(cfg())
	calls := 0
	policy, slept := recordedPolicy(4, time.Millisecond, time.Second)
	err := co.CollectFrom("rack-a", func() ([]byte, error) {
		calls++
		return []byte("not a checkpoint"), nil
	}, policy)
	if err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if calls != 1 || len(*slept) != 0 {
		t.Fatalf("corrupt checkpoint fetched %d times with %d sleeps; deterministic failures must not retry",
			calls, len(*slept))
	}
}

func TestCollectFromBackoffAppliesFullJitter(t *testing.T) {
	co := NewCoordinator(cfg())
	var slept []time.Duration
	policy := RetryPolicy{
		Attempts:  4,
		BaseDelay: 100 * time.Millisecond,
		MaxDelay:  time.Second,
		sleep:     func(d time.Duration) { slept = append(slept, d) },
		rand:      func() float64 { return 0.25 },
	}
	err := co.CollectFrom("rack-flap", func() ([]byte, error) {
		return nil, errors.New("connection reset")
	}, policy)
	if err == nil {
		t.Fatal("CollectFrom on a dead site returned nil")
	}
	// Full jitter scales each capped-exponential ceiling (100ms, 200ms,
	// 400ms) by the rand draw, here pinned to 0.25.
	want := []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("jittered backoff step %d = %v, want %v (rand·ceiling)", i, slept[i], want[i])
		}
	}
}

func TestCollectFromDefaultJitterStaysUnderCeiling(t *testing.T) {
	co := NewCoordinator(cfg())
	var slept []time.Duration
	policy := RetryPolicy{
		Attempts:  5,
		BaseDelay: 80 * time.Millisecond,
		MaxDelay:  200 * time.Millisecond,
		sleep:     func(d time.Duration) { slept = append(slept, d) },
		// rand deliberately nil: the default source must be installed.
	}
	err := co.CollectFrom("rack-flap", func() ([]byte, error) {
		return nil, errors.New("connection reset")
	}, policy)
	if err == nil {
		t.Fatal("CollectFrom on a dead site returned nil")
	}
	ceilings := []time.Duration{80 * time.Millisecond, 160 * time.Millisecond,
		200 * time.Millisecond, 200 * time.Millisecond}
	if len(slept) != len(ceilings) {
		t.Fatalf("slept %v, want %d jittered waits", slept, len(ceilings))
	}
	for i, d := range slept {
		if d < 0 || d > ceilings[i] {
			t.Fatalf("jittered wait %d = %v outside [0, %v]", i, d, ceilings[i])
		}
	}
}

// siteFetcher closes the site's period and exports it, the in-process
// equivalent of GET /v1/checkpoint at a period boundary.
func siteFetcher(s *Site) Fetcher {
	return func() ([]byte, error) {
		s.EndPeriod()
		return s.Export()
	}
}

func TestGatherRoundMergesDegradedView(t *testing.T) {
	a, b := NewSite("rack-a", cfg()), NewSite("rack-b", cfg())
	for i := 0; i < 10; i++ {
		a.Insert(1)
		b.Insert(2)
	}
	co := NewCoordinator(cfg())
	policy, _ := recordedPolicy(2, time.Millisecond, time.Millisecond)
	rep := co.GatherRound(map[string]Fetcher{
		"rack-a":    siteFetcher(a),
		"rack-b":    siteFetcher(b),
		"rack-dead": func() ([]byte, error) { return nil, errors.New("no route to host") },
	}, policy)

	if !rep.Degraded() {
		t.Fatal("round with a dead site reported as complete")
	}
	if len(rep.Merged) != 2 || rep.Merged[0] != "rack-a" || rep.Merged[1] != "rack-b" {
		t.Fatalf("Merged = %v, want the two live sites in name order", rep.Merged)
	}
	if err, ok := rep.Skipped["rack-dead"]; !ok || err == nil {
		t.Fatalf("Skipped = %v, want rack-dead with its error", rep.Skipped)
	}
	if rep.Epoch != 1 {
		t.Fatalf("Epoch = %d, want 1 (degraded rounds still commit)", rep.Epoch)
	}
	// The degraded view carries both live sites' items.
	for _, item := range []uint64{1, 2} {
		if e, ok := co.Query(item); !ok || e.Frequency != 10 {
			t.Fatalf("item %d: entry %+v ok=%v, want frequency 10", item, e, ok)
		}
	}
}

// TestGatherRoundMixedFailureModes exercises one round with every failure
// class at once: a site that times out twice before answering (retried to
// success), a site serving a corrupt checkpoint (deterministic, never
// retried), a dead site (retries exhausted), and a healthy site. The
// committed view must contain exactly the sites that produced a valid
// checkpoint.
func TestGatherRoundMixedFailureModes(t *testing.T) {
	healthy, slow := NewSite("rack-ok", cfg()), NewSite("rack-slow", cfg())
	for i := 0; i < 10; i++ {
		healthy.Insert(1)
		slow.Insert(2)
	}
	okImg, err := healthy.Export()
	if err != nil {
		t.Fatal(err)
	}
	slowImg, err := slow.Export()
	if err != nil {
		t.Fatal(err)
	}

	slowCalls, corruptCalls := 0, 0
	co := NewCoordinator(cfg())
	policy, slept := recordedPolicy(3, time.Millisecond, time.Millisecond)
	rep := co.GatherRound(map[string]Fetcher{
		"rack-ok": func() ([]byte, error) { return okImg, nil },
		"rack-slow": func() ([]byte, error) {
			slowCalls++
			if slowCalls <= 2 {
				return nil, errors.New("i/o timeout")
			}
			return slowImg, nil
		},
		"rack-corrupt": func() ([]byte, error) {
			corruptCalls++
			return []byte("garbage"), nil
		},
		"rack-dead": func() ([]byte, error) { return nil, errors.New("no route to host") },
	}, policy)

	if slowCalls != 3 {
		t.Fatalf("timing-out site fetched %d times, want 3 (transient failures retry)", slowCalls)
	}
	if corruptCalls != 1 {
		t.Fatalf("corrupt site fetched %d times, want 1 (deterministic failures must not retry)", corruptCalls)
	}
	if len(rep.Merged) != 2 || rep.Merged[0] != "rack-ok" || rep.Merged[1] != "rack-slow" {
		t.Fatalf("Merged = %v, want exactly the two sites with valid checkpoints", rep.Merged)
	}
	for _, site := range []string{"rack-corrupt", "rack-dead"} {
		if err, ok := rep.Skipped[site]; !ok || err == nil {
			t.Fatalf("Skipped = %v, want %s with its error", rep.Skipped, site)
		}
	}
	// Only the timing-out site slept: two retries at the (jitter-pinned)
	// 1ms base; the dead site adds its own two.
	if len(*slept) != 4 {
		t.Fatalf("observed %d sleeps (%v), want 4: 2 for the slow site, 2 for the dead one", len(*slept), *slept)
	}
	// The merged view holds exactly the healthy sites' items.
	for _, item := range []uint64{1, 2} {
		if e, ok := co.Query(item); !ok || e.Frequency != 10 {
			t.Fatalf("item %d: entry %+v ok=%v, want frequency 10", item, e, ok)
		}
	}

	// Satellite: the report survives the round on the coordinator.
	last, ok := co.LastReport()
	if !ok {
		t.Fatal("LastReport empty after a round")
	}
	if last.Epoch != rep.Epoch || len(last.Merged) != len(rep.Merged) || len(last.Skipped) != len(rep.Skipped) {
		t.Fatalf("LastReport %+v does not match the returned report %+v", last, rep)
	}
	last.Merged[0] = "mutated"
	again, _ := co.LastReport()
	if again.Merged[0] != "rack-ok" {
		t.Fatal("LastReport returned a view aliasing internal state")
	}
}

func TestLastReportEmptyBeforeFirstRound(t *testing.T) {
	co := NewCoordinator(cfg())
	if _, ok := co.LastReport(); ok {
		t.Fatal("LastReport reported a round before one ran")
	}
}

func TestGatherRoundAllDeadKeepsPreviousView(t *testing.T) {
	a := NewSite("rack-a", cfg())
	for i := 0; i < 5; i++ {
		a.Insert(9)
	}
	co := NewCoordinator(cfg())
	policy, _ := recordedPolicy(2, time.Millisecond, time.Millisecond)
	rep := co.GatherRound(map[string]Fetcher{"rack-a": siteFetcher(a)}, policy)
	if rep.Degraded() || rep.Epoch != 1 {
		t.Fatalf("healthy round: %+v", rep)
	}

	rep = co.GatherRound(map[string]Fetcher{
		"rack-a": func() ([]byte, error) { return nil, errors.New("powered off") },
	}, policy)
	if len(rep.Merged) != 0 || rep.Epoch != 2 {
		t.Fatalf("all-dead round: %+v, want empty merge at epoch 2", rep)
	}
	// Stale beats blank: the previous round's view still answers.
	if e, ok := co.Query(9); !ok || e.Frequency != 5 {
		t.Fatalf("previous view lost after an all-dead round: %+v ok=%v", e, ok)
	}
}
