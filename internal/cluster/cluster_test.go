package cluster

import (
	"sync"
	"testing"

	"sigstream/internal/stream"
)

func cfg() Config {
	return Config{MemoryBytes: 16 << 10, Weights: stream.Balanced, Seed: 5}
}

func TestRoundMergesSites(t *testing.T) {
	a := NewSite("rack-a", cfg())
	b := NewSite("rack-b", cfg())
	co := NewCoordinator(cfg())
	for p := 0; p < 3; p++ {
		for i := 0; i < 10; i++ {
			a.Insert(1)
			b.Insert(2)
		}
		if err := co.Round(a, b); err != nil {
			t.Fatal(err)
		}
	}
	if co.Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", co.Epoch())
	}
	e1, ok1 := co.Query(1)
	e2, ok2 := co.Query(2)
	if !ok1 || !ok2 {
		t.Fatal("global view lost an item")
	}
	if e1.Frequency != 30 || e2.Frequency != 30 {
		t.Fatalf("frequencies %d/%d, want 30/30", e1.Frequency, e2.Frequency)
	}
	if e1.Persistency != 3 || e2.Persistency != 3 {
		t.Fatalf("persistencies %d/%d, want 3/3", e1.Persistency, e2.Persistency)
	}
	top := co.TopK(2)
	if len(top) != 2 {
		t.Fatalf("global TopK returned %d entries", len(top))
	}
}

func TestCoordinatorBeforeFirstCommit(t *testing.T) {
	co := NewCoordinator(cfg())
	if got := co.TopK(5); got != nil {
		t.Fatalf("TopK before any commit = %v, want nil", got)
	}
	if _, ok := co.Query(1); ok {
		t.Fatal("Query before any commit must miss")
	}
}

func TestDuplicateCollectionRejected(t *testing.T) {
	s := NewSite("x", cfg())
	s.Insert(1)
	img, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(cfg())
	if err := co.Collect("x", img); err != nil {
		t.Fatal(err)
	}
	if err := co.Collect("x", img); err == nil {
		t.Fatal("duplicate site collection accepted")
	}
	// A new round accepts the site again.
	co.Commit()
	if err := co.Collect("x", img); err != nil {
		t.Fatalf("post-commit collection rejected: %v", err)
	}
}

func TestCollectRejectsGarbage(t *testing.T) {
	co := NewCoordinator(cfg())
	if err := co.Collect("x", []byte("junk")); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	if co.Pending() != 0 {
		t.Fatal("failed collection counted as pending")
	}
}

func TestCommitWithoutCollectionsKeepsOldView(t *testing.T) {
	s := NewSite("x", cfg())
	s.Insert(7)
	co := NewCoordinator(cfg())
	if err := co.Round(s); err != nil {
		t.Fatal(err)
	}
	if n := co.Commit(); n != 0 {
		t.Fatalf("empty commit merged %d sites", n)
	}
	// The previous global view survives an empty round.
	if _, ok := co.Query(7); !ok {
		t.Fatal("empty commit dropped the global view")
	}
}

func TestConcurrentSiteIngestion(t *testing.T) {
	s := NewSite("busy", cfg())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				s.Insert(stream.Item(i%100 + 1))
			}
		}()
	}
	wg.Wait()
	co := NewCoordinator(cfg())
	if err := co.Round(s); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, e := range co.TopK(1 << 20) {
		total += e.Frequency
	}
	if total != 8*5000 {
		t.Fatalf("global frequency sum %d, want %d", total, 8*5000)
	}
}

func TestGlobalRankingAcrossSites(t *testing.T) {
	// The global winner has its traffic split across no sites (items are
	// partitioned), but a site-local ranking would miss cross-site
	// comparisons: site A's #2 may be globally #1.
	a := NewSite("a", cfg())
	b := NewSite("b", cfg())
	co := NewCoordinator(cfg())
	for p := 0; p < 2; p++ {
		for i := 0; i < 50; i++ {
			a.Insert(100) // site A's local #1
		}
		for i := 0; i < 40; i++ {
			a.Insert(101)
		}
		for i := 0; i < 45; i++ {
			b.Insert(200) // site B's local #1, globally #2
		}
		if err := co.Round(a, b); err != nil {
			t.Fatal(err)
		}
	}
	top := co.TopK(3)
	if top[0].Item != 100 || top[1].Item != 200 || top[2].Item != 101 {
		t.Fatalf("global ranking wrong: %+v", top)
	}
}
