package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sigstream"
	"sigstream/internal/fault"
)

// fakeSite is an in-process SiteClient backed by real Sharded trackers,
// one per partition namespace, with scriptable failure modes.
type fakeSite struct {
	mu         sync.Mutex
	parts      map[string]*sigstream.Sharded
	names      map[string]map[uint64]string
	down       bool            // every call fails (node dead)
	corrupt    map[string]bool // namespaces served as garbage
	failFirst  int             // fail this many fetches, then recover
	fetchCalls int
	readyCalls int
}

func newFakeSite() *fakeSite {
	return &fakeSite{
		parts:   map[string]*sigstream.Sharded{},
		names:   map[string]map[uint64]string{},
		corrupt: map[string]bool{},
	}
}

func (f *fakeSite) tracker(ns string) *sigstream.Sharded {
	f.mu.Lock()
	defer f.mu.Unlock()
	tr, ok := f.parts[ns]
	if !ok {
		tr = sigstream.NewSharded(sigstream.Config{MemoryBytes: 32 << 10, Seed: 7}, 2)
		f.parts[ns] = tr
	}
	return tr
}

func (f *fakeSite) FetchCheckpoint(ctx context.Context, ns string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fetchCalls++
	if f.down {
		return nil, errors.New("connection refused")
	}
	if f.failFirst > 0 {
		f.failFirst--
		return nil, errors.New("i/o timeout")
	}
	if f.corrupt[ns] {
		return []byte("garbage"), nil
	}
	tr, ok := f.parts[ns]
	if !ok {
		return nil, ErrNoPartition
	}
	return tr.MarshalBinary()
}

func (f *fakeSite) FetchNames(ctx context.Context, ns string, k int) (map[uint64]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return nil, errors.New("connection refused")
	}
	return f.names[ns], nil
}

func (f *fakeSite) Ready(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readyCalls++
	if f.down {
		return errors.New("connection refused")
	}
	return nil
}

func (f *fakeSite) setDown(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

func (f *fakeSite) calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fetchCalls
}

// fastPolicy retries without real sleeping or jitter.
func fastPolicy() RetryPolicy {
	return RetryPolicy{
		Attempts:  2,
		BaseDelay: time.Millisecond,
		MaxDelay:  time.Millisecond,
		sleep:     func(time.Duration) {},
		rand:      func() float64 { return 1 },
	}
}

// testCluster wires a topology, fake sites, and a gatherer with a
// controllable clock.
type testCluster struct {
	topo  *Topology
	fakes map[string]*fakeSite
	g     *Gatherer
	clock time.Time
}

func newTestCluster(t *testing.T, partitions, replicas int, breaker BreakerConfig) *testCluster {
	t.Helper()
	sites := testSites()
	topo, err := NewTopology(sites, partitions, replicas)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{topo: topo, fakes: map[string]*fakeSite{}, clock: time.Unix(10000, 0)}
	clients := map[string]SiteClient{}
	for _, s := range sites {
		f := newFakeSite()
		tc.fakes[s] = f
		clients[s] = f
	}
	g, err := NewGatherer(GatherConfig{
		Topology: topo,
		Clients:  clients,
		Retry:    fastPolicy(),
		Breaker:  breaker,
		now:      func() time.Time { return tc.clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.g = g
	return tc
}

// load inserts items 1..n on every replica of each item's partition and
// closes one period everywhere.
func (tc *testCluster) load(n int) {
	for i := 1; i <= n; i++ {
		item := uint64(i)
		p := tc.topo.Partition(item)
		ns := PartitionNamespace(p)
		for _, site := range tc.topo.ReplicaSites(p) {
			tc.fakes[site].tracker(ns).Insert(item)
		}
	}
	for _, f := range tc.fakes {
		f.mu.Lock()
		for _, tr := range f.parts {
			tr.EndPeriod()
		}
		f.mu.Unlock()
	}
}

func TestGatherRoundCommitsHealthyCluster(t *testing.T) {
	tc := newTestCluster(t, 8, 2, BreakerConfig{})
	tc.load(100)
	rep := tc.g.Round(context.Background())
	if !rep.Committed {
		t.Fatalf("healthy round did not commit: %+v", rep)
	}
	if rep.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", rep.Epoch)
	}
	if got := rep.HealthySites(); got != 3 {
		t.Fatalf("%d healthy sites, want 3: %+v", got, rep.Sites)
	}
	if got := rep.QuorumPartitions(); got != 8 {
		t.Fatalf("%d quorum partitions, want 8", got)
	}
	entries, info, ok := tc.g.TopK(200)
	if !ok {
		t.Fatal("no view after a committed round")
	}
	if info.Stale || info.Epoch != 1 {
		t.Fatalf("view info %+v, want fresh epoch-1 view", info)
	}
	if len(entries) != 100 {
		t.Fatalf("cluster view holds %d items, want 100", len(entries))
	}
	for _, e := range entries {
		if e.Frequency != 1 {
			t.Fatalf("item %d frequency %d, want 1 (replicas must not double-count)", e.Item, e.Frequency)
		}
	}
}

func TestGatherSurvivesSingleNodeDeath(t *testing.T) {
	tc := newTestCluster(t, 8, 2, BreakerConfig{})
	tc.load(100)
	for _, site := range tc.topo.Sites() {
		tc.fakes[site].setDown(true)
		rep := tc.g.Round(context.Background())
		if !rep.Committed {
			t.Fatalf("round with %s dead did not commit: %s", site, rep.Reason)
		}
		entries, _, ok := tc.g.TopK(200)
		if !ok || len(entries) != 100 {
			t.Fatalf("with %s dead: view has %d items, want all 100 (R=2 must mask one death)",
				site, len(entries))
		}
		var dead *SiteReport
		for i := range rep.Sites {
			if rep.Sites[i].Site == site {
				dead = &rep.Sites[i]
			}
		}
		if dead == nil || dead.Health == SiteHealthy {
			t.Fatalf("dead site %s reported healthy: %+v", site, rep.Sites)
		}
		if len(dead.Skips) == 0 {
			t.Fatalf("dead site %s has no skip reasons", site)
		}
		tc.fakes[site].setDown(false)
		tc.g.Round(context.Background()) // recovery round resets breaker state
	}
}

func TestGatherQuorumLossServesStaleView(t *testing.T) {
	tc := newTestCluster(t, 4, 1, BreakerConfig{Trip: 100})
	tc.load(50)
	if rep := tc.g.Round(context.Background()); !rep.Committed {
		t.Fatalf("healthy round did not commit: %+v", rep)
	}
	// R=1: killing the owner of any partition loses quorum on it.
	tc.fakes[tc.topo.ReplicaSites(0)[0]].setDown(true)
	tc.clock = tc.clock.Add(30 * time.Second)
	rep := tc.g.Round(context.Background())
	if rep.Committed {
		t.Fatal("round without quorum committed")
	}
	if !strings.Contains(rep.Reason, "quorum") {
		t.Fatalf("reason %q does not mention quorum", rep.Reason)
	}
	entries, info, ok := tc.g.TopK(100)
	if !ok || len(entries) != 50 {
		t.Fatalf("stale view lost: %d items, want 50", len(entries))
	}
	if !info.Stale {
		t.Fatal("view not marked stale after an uncommitted round")
	}
	if info.Epoch != 1 || info.AgeSeconds < 29 {
		t.Fatalf("view info %+v, want epoch 1 aged ≥29s", info)
	}
}

func TestGatherCorruptReplicaNotRetriedOtherReplicaMerged(t *testing.T) {
	tc := newTestCluster(t, 1, 2, BreakerConfig{})
	tc.load(20)
	reps := tc.topo.ReplicaSites(0)
	first := tc.fakes[reps[0]]
	first.corrupt[PartitionNamespace(0)] = true
	before := first.calls()
	rep := tc.g.Round(context.Background())
	if got := first.calls() - before; got != 1 {
		t.Fatalf("corrupt replica fetched %d times, want 1 (deterministic failures must not retry)", got)
	}
	if !rep.Committed {
		t.Fatalf("round did not commit despite a valid second replica: %s", rep.Reason)
	}
	if rep.Partitions[0].MergedFrom != reps[1] {
		t.Fatalf("merged from %q, want the clean replica %q", rep.Partitions[0].MergedFrom, reps[1])
	}
	entries, _, _ := tc.g.TopK(50)
	if len(entries) != 20 {
		t.Fatalf("view holds %d items, want 20", len(entries))
	}
}

func TestGatherTransientFailureRetriedWithinRound(t *testing.T) {
	tc := newTestCluster(t, 1, 1, BreakerConfig{})
	tc.load(10)
	site := tc.topo.ReplicaSites(0)[0]
	tc.fakes[site].failFirst = 1 // first fetch times out, retry succeeds
	rep := tc.g.Round(context.Background())
	if !rep.Committed {
		t.Fatalf("round did not commit after a retried transient failure: %s", rep.Reason)
	}
	if rep.Partitions[0].MergedFrom != site {
		t.Fatalf("merged from %q, want %q", rep.Partitions[0].MergedFrom, site)
	}
	st := tc.g.Stats()
	if st.FetchErrors == 0 {
		t.Fatal("transient failure left no fetch-error count")
	}
}

func TestGatherBreakerTripsThenRecoversViaReadyProbe(t *testing.T) {
	tc := newTestCluster(t, 8, 2, BreakerConfig{Trip: 2, Cooldown: 10 * time.Second})
	tc.load(100)
	dead := tc.topo.Sites()[1]
	tc.fakes[dead].setDown(true)

	// Two failed rounds trip the breaker.
	tc.g.Round(context.Background())
	tc.clock = tc.clock.Add(time.Second)
	tc.g.Round(context.Background())
	if st := tc.g.Stats(); st.BreakerState[dead] != BreakerOpen {
		t.Fatalf("breaker %v after %d failed rounds, want open", st.BreakerState[dead], 2)
	}

	// While open and inside the cooldown the site is not fetched at all.
	calls := tc.fakes[dead].calls()
	tc.clock = tc.clock.Add(time.Second)
	rep := tc.g.Round(context.Background())
	if got := tc.fakes[dead].calls() - calls; got != 0 {
		t.Fatalf("open breaker allowed %d fetches", got)
	}
	var tripped *SiteReport
	for i := range rep.Sites {
		if rep.Sites[i].Site == dead {
			tripped = &rep.Sites[i]
		}
	}
	if tripped.Health != SiteTripped || tripped.Breaker != "open" {
		t.Fatalf("tripped site reported %+v", tripped)
	}

	// Node comes back; after the cooldown a readiness probe half-opens the
	// breaker, the trial fetch succeeds, and the breaker closes.
	tc.fakes[dead].setDown(false)
	tc.clock = tc.clock.Add(10 * time.Second)
	rep = tc.g.Round(context.Background())
	if !rep.Committed {
		t.Fatalf("recovery round did not commit: %s", rep.Reason)
	}
	if tc.fakes[dead].readyCalls == 0 {
		t.Fatal("no readiness probe before half-opening")
	}
	if st := tc.g.Stats(); st.BreakerState[dead] != BreakerClosed {
		t.Fatalf("breaker %v after recovery, want closed", st.BreakerState[dead])
	}
	for _, sr := range rep.Sites {
		if sr.Site == dead && sr.Health != SiteHealthy {
			t.Fatalf("recovered site reported %+v", sr)
		}
	}
}

func TestGatherCommitFaultServesPreviousViewThenRecovers(t *testing.T) {
	tc := newTestCluster(t, 4, 2, BreakerConfig{})
	tc.load(50)
	if rep := tc.g.Round(context.Background()); !rep.Committed {
		t.Fatalf("healthy round did not commit: %+v", rep)
	}

	// Erroring hook: the round aborts between Collect and Commit.
	deactivate := fault.Activate(fault.CoordCommit, func(int) error {
		return errors.New("injected commit failure")
	})
	rep := tc.g.Round(context.Background())
	deactivate()
	if rep.Committed || !strings.Contains(rep.Reason, "commit aborted") {
		t.Fatalf("faulted round: %+v", rep)
	}
	if _, info, ok := tc.g.TopK(10); !ok || info.Epoch != 1 {
		t.Fatalf("previous view lost after commit fault: ok=%v info=%+v", ok, info)
	}

	// Panicking hook: the simulated crash unwinds out of Round; a fresh
	// round afterwards commits cleanly with no double-counting.
	deactivate = fault.Activate(fault.CoordCommit, func(int) error {
		panic("injected coordinator crash")
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panicking commit hook did not propagate")
			}
		}()
		tc.g.Round(context.Background())
	}()
	deactivate()

	rep = tc.g.Round(context.Background())
	if !rep.Committed {
		t.Fatalf("round after simulated crash did not commit: %s", rep.Reason)
	}
	entries, _, _ := tc.g.TopK(100)
	if len(entries) != 50 {
		t.Fatalf("view holds %d items, want 50", len(entries))
	}
	for _, e := range entries {
		if e.Frequency != 1 {
			t.Fatalf("item %d frequency %d after crash recovery, want 1", e.Item, e.Frequency)
		}
	}
}

func TestGatherPrefersFreshestReplica(t *testing.T) {
	tc := newTestCluster(t, 1, 2, BreakerConfig{})
	reps := tc.topo.ReplicaSites(0)
	ns := PartitionNamespace(0)
	// Replica 0 is a restarted node that missed a period of traffic;
	// replica 1 has the complete history.
	stale, fresh := tc.fakes[reps[0]].tracker(ns), tc.fakes[reps[1]].tracker(ns)
	for i := 1; i <= 10; i++ {
		stale.Insert(uint64(i))
		fresh.Insert(uint64(i))
	}
	stale.EndPeriod()
	fresh.EndPeriod()
	for i := 1; i <= 10; i++ {
		fresh.Insert(uint64(i))
	}
	fresh.EndPeriod()

	rep := tc.g.Round(context.Background())
	if !rep.Committed {
		t.Fatalf("round did not commit: %s", rep.Reason)
	}
	if rep.Partitions[0].MergedFrom != reps[1] {
		t.Fatalf("merged from %q, want the fresher replica %q", rep.Partitions[0].MergedFrom, reps[1])
	}
	entries, _, _ := tc.g.TopK(20)
	for _, e := range entries {
		if e.Frequency != 2 || e.Persistency != 2 {
			t.Fatalf("item %d = %+v, want the complete 2-period history", e.Item, e)
		}
	}
}

func TestGatherEmptyClusterCommitsEmptyView(t *testing.T) {
	tc := newTestCluster(t, 4, 2, BreakerConfig{})
	rep := tc.g.Round(context.Background())
	if !rep.Committed {
		t.Fatalf("empty-cluster round did not commit: %s", rep.Reason)
	}
	for _, pr := range rep.Partitions {
		if !pr.Quorum {
			t.Fatalf("partition %d missed quorum on a reachable empty cluster", pr.Partition)
		}
	}
	entries, _, ok := tc.g.TopK(10)
	if !ok || len(entries) != 0 {
		t.Fatalf("empty view: ok=%v entries=%v", ok, entries)
	}
}

func TestGatherResolvesNames(t *testing.T) {
	tc := newTestCluster(t, 2, 2, BreakerConfig{})
	item := uint64(42)
	p := tc.topo.Partition(item)
	ns := PartitionNamespace(p)
	for _, site := range tc.topo.ReplicaSites(p) {
		tc.fakes[site].tracker(ns).Insert(item)
		tc.fakes[site].names[ns] = map[uint64]string{item: "checkout-svc"}
	}
	if rep := tc.g.Round(context.Background()); !rep.Committed {
		t.Fatalf("round did not commit: %s", rep.Reason)
	}
	entries, _, _ := tc.g.TopK(10)
	if len(entries) != 1 || entries[0].Key != "checkout-svc" {
		t.Fatalf("entries %+v, want item 42 named checkout-svc", entries)
	}
}

func TestNewGathererValidation(t *testing.T) {
	if _, err := NewGatherer(GatherConfig{}); err == nil {
		t.Fatal("gatherer without topology accepted")
	}
	topo, err := NewTopology(testSites(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGatherer(GatherConfig{Topology: topo}); err == nil {
		t.Fatal("gatherer with missing site clients accepted")
	}
}

func TestGatherStatsSnapshot(t *testing.T) {
	tc := newTestCluster(t, 4, 2, BreakerConfig{})
	tc.load(30)
	tc.g.Round(context.Background())
	tc.clock = tc.clock.Add(7 * time.Second)
	st := tc.g.Stats()
	if st.Rounds != 1 || st.Commits != 1 || st.StaleRounds != 0 {
		t.Fatalf("counters %+v", st)
	}
	if st.Sites != 3 || st.Partitions != 4 || st.PartitionsQuorum != 4 || st.SitesHealthy != 3 {
		t.Fatalf("topology gauges %+v", st)
	}
	if st.ViewEpoch != 1 || st.ViewAgeSeconds < 6.9 {
		t.Fatalf("view gauges %+v", st)
	}
	if st.Fetches == 0 {
		t.Fatal("no fetches counted")
	}
}

func TestGatherReportString(t *testing.T) {
	// The report must render per-site state compactly for logs.
	rep := RoundReport{
		Committed: true, Epoch: 3,
		Partitions: []PartitionReport{{Partition: 0, Quorum: true}},
		Sites:      []SiteReport{{Site: "a", Health: SiteHealthy}},
	}
	if rep.QuorumPartitions() != 1 || rep.HealthySites() != 1 {
		t.Fatal("report counters wrong")
	}
	if fmt.Sprintf("%v", rep.Sites[0].Health) != "healthy" {
		t.Fatal("health class does not render")
	}
}
