// Fault-tolerant collection: in a real deployment the coordinator pulls
// checkpoints over a network from sites that crash, restart, and stall.
// CollectFrom retries one site with capped exponential backoff, and
// GatherRound assembles a degraded-but-committed global view from
// whichever sites answered — a cluster-wide ranking that is one site
// short beats no ranking at all.

package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Fetcher produces one site's checkpoint: an HTTP GET against a
// sigserver's /v1/checkpoint, a file read from a drop directory, or an
// in-process (*Site).Export.
type Fetcher func() ([]byte, error)

// RetryPolicy bounds the capped exponential backoff applied when a
// site's checkpoint fetch fails. The zero value selects the defaults.
// Each wait is fully jittered: the sleep before attempt n is a uniform
// random fraction of the capped exponential delay min(BaseDelay·2ⁿ⁻¹,
// MaxDelay), so N clients retrying one flapped server spread their
// re-fetches out instead of hammering it again in lockstep.
type RetryPolicy struct {
	// Attempts is the total number of fetch tries per site (default 4).
	Attempts int
	// BaseDelay is the backoff ceiling after the first failure (default
	// 50ms); each further failure doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the doubling (default 1s), so a long outage costs a
	// bounded wait per attempt instead of an unbounded one.
	MaxDelay time.Duration

	// sleep replaces time.Sleep in tests.
	sleep func(time.Duration)
	// rand replaces the jitter source in tests. It must return a value in
	// [0, 1]; the sleep before each retry is rand()·delay (full jitter), so
	// a source pinned to 1 recovers the deterministic un-jittered schedule.
	rand func() float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.sleep == nil {
		p.sleep = time.Sleep
	}
	if p.rand == nil {
		p.rand = rand.Float64
	}
	return p
}

// CollectFrom fetches one site's checkpoint and collects it into the
// current round, retrying transient fetch failures under policy. Only the
// fetch is retried: once a checkpoint is in hand, a Collect failure (a
// duplicate site or a corrupt/mismatched image) is deterministic and
// surfaces immediately. After the attempts are exhausted the last fetch
// error is returned, wrapped with the site and attempt count.
func (c *Coordinator) CollectFrom(site string, fetch Fetcher, policy RetryPolicy) error {
	p := policy.withDefaults()
	var lastErr error
	delay := p.BaseDelay
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			p.sleep(time.Duration(p.rand() * float64(delay)))
			delay *= 2
			if delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		img, err := fetch()
		if err != nil {
			lastErr = err
			continue
		}
		return c.Collect(site, img)
	}
	return fmt.Errorf("cluster: site %s unreachable after %d attempts: %w",
		site, p.Attempts, lastErr)
}

// Report describes one gather round: which sites made it into the
// committed global view and which were skipped, with the error that
// excluded each.
type Report struct {
	// Epoch is the epoch number the round committed.
	Epoch int
	// Merged lists the sites whose checkpoints were merged, in collection
	// order.
	Merged []string
	// Skipped maps each excluded site to the error that excluded it.
	Skipped map[string]error
}

// Degraded reports whether the round committed without every site.
func (r Report) Degraded() bool { return len(r.Skipped) > 0 }

// GatherRound runs one collection cycle over remote fetchers, tolerating
// dead sites: every fetch is retried under policy, a site that still
// fails is recorded in the report instead of aborting the round, and the
// round always commits so the global view advances with whatever arrived.
// When every site fails the commit is empty and the previous global view
// stays queryable — stale answers from the last good round, never a blank
// coordinator. Sites are collected in name order, so a round's outcome is
// deterministic for a given set of fetcher behaviours.
func (c *Coordinator) GatherRound(fetchers map[string]Fetcher, policy RetryPolicy) Report {
	rep := Report{Skipped: map[string]error{}}
	names := make([]string, 0, len(fetchers))
	for name := range fetchers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := c.CollectFrom(name, fetchers[name], policy); err != nil {
			rep.Skipped[name] = err
			continue
		}
		rep.Merged = append(rep.Merged, name)
	}
	c.Commit()
	rep.Epoch = c.Epoch()
	c.setLastReport(rep)
	return rep
}
