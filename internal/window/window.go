// Package window extends LTC to sliding-window queries: top-k significant
// items over the most recent W periods, rather than the whole stream. This
// is the natural production follow-up to the paper (its significance sums
// all history), useful when "significant" should mean "significant
// recently" with hard cutoff semantics instead of exponential decay.
//
// The design is a jumping window: the window of W periods is covered by B
// blocks of W/B periods each, one LTC per block. The active block ingests
// arrivals; at each block boundary the oldest block is dropped and a fresh
// one starts. Queries merge all live blocks. The reported window therefore
// slides with a granularity of W/B periods — the standard accuracy/cost
// trade-off of jumping windows (B ↑ → finer slide, more merge work).
package window

import (
	"sigstream/internal/ltc"
	"sigstream/internal/stream"
)

// Options configures a sliding-window tracker.
type Options struct {
	// MemoryBytes is the total budget, split evenly across blocks.
	MemoryBytes int
	// WindowPeriods is W, the number of periods a query covers.
	WindowPeriods int
	// Blocks is B, the number of sub-summaries covering the window
	// (default 4; must divide WindowPeriods).
	Blocks int
	// Weights are the significance coefficients.
	Weights stream.Weights
	// ItemsPerPeriod paces each block's CLOCK sweep.
	ItemsPerPeriod int
	// Seed keys the hash functions. All blocks share it so they stay
	// mergeable.
	Seed uint32
}

// Window is a jumping-window LTC.
type Window struct {
	opts         Options
	blocks       []*ltc.LTC // ring; blocks[active] ingests
	active       int
	live         int // how many blocks contain data (≤ len(blocks))
	periodInBlk  int
	periodsPerBk int
	periods      uint64 // cumulative EndPeriod count (blocks reset on rotation)
}

// New builds a Window tracker.
func New(opts Options) *Window {
	if opts.Blocks <= 0 {
		opts.Blocks = 4
	}
	if opts.WindowPeriods <= 0 {
		opts.WindowPeriods = opts.Blocks
	}
	if opts.WindowPeriods%opts.Blocks != 0 {
		// Round the window up to a multiple of the block count.
		opts.WindowPeriods += opts.Blocks - opts.WindowPeriods%opts.Blocks
	}
	if opts.MemoryBytes <= 0 {
		opts.MemoryBytes = 64 << 10
	}
	w := &Window{
		opts:         opts,
		blocks:       make([]*ltc.LTC, opts.Blocks),
		periodsPerBk: opts.WindowPeriods / opts.Blocks,
	}
	for i := range w.blocks {
		w.blocks[i] = w.newBlock()
	}
	w.live = 1
	return w
}

func (w *Window) newBlock() *ltc.LTC {
	return ltc.New(ltc.Options{
		MemoryBytes:    w.opts.MemoryBytes / w.opts.Blocks,
		Weights:        w.opts.Weights,
		ItemsPerPeriod: w.opts.ItemsPerPeriod,
		Seed:           w.opts.Seed,
	})
}

// WindowPeriods reports the (possibly rounded) window length in periods.
func (w *Window) WindowPeriods() int { return w.opts.WindowPeriods }

// Blocks reports the number of sub-summaries.
func (w *Window) Blocks() int { return len(w.blocks) }

// Insert records one arrival in the active block.
func (w *Window) Insert(item stream.Item) {
	w.blocks[w.active].Insert(item)
}

// InsertBatch records a batch of arrivals in the active block
// (stream.BatchInserter); semantically identical to per-item Insert.
func (w *Window) InsertBatch(items []stream.Item) {
	w.blocks[w.active].InsertBatch(items)
}

// EndPeriod closes a period; every periodsPerBlock periods the ring
// advances, expiring the oldest block.
func (w *Window) EndPeriod() {
	w.blocks[w.active].EndPeriod()
	w.periods++
	w.periodInBlk++
	if w.periodInBlk < w.periodsPerBk {
		return
	}
	w.periodInBlk = 0
	w.active = (w.active + 1) % len(w.blocks)
	// The slot we rotate into may hold the expiring oldest block.
	w.blocks[w.active].Reset()
	if w.live < len(w.blocks) {
		w.live++
	}
}

// merged builds a disposable union of all live blocks via checkpoint
// round-trip (so the live blocks are never mutated).
func (w *Window) merged() *ltc.LTC {
	img, err := w.blocks[w.active].MarshalBinary()
	if err != nil {
		// Marshal of a well-formed tracker cannot fail; fall back to the
		// active block alone.
		return w.blocks[w.active]
	}
	union := w.newBlock()
	if err := union.UnmarshalBinary(img); err != nil {
		return w.blocks[w.active]
	}
	for i := 1; i < w.live; i++ {
		idx := (w.active - i + len(w.blocks)) % len(w.blocks)
		if err := union.Merge(w.blocks[idx]); err != nil {
			break
		}
	}
	return union
}

// Query reports the windowed estimate for item.
func (w *Window) Query(item stream.Item) (stream.Entry, bool) {
	return w.merged().Query(item)
}

// TopK reports the window's top-k significant items.
func (w *Window) TopK(k int) []stream.Entry {
	return w.merged().TopK(k)
}

// MemoryBytes reports the summed block budgets.
func (w *Window) MemoryBytes() int {
	total := 0
	for _, b := range w.blocks {
		total += b.MemoryBytes()
	}
	return total
}

// Name identifies the tracker.
func (w *Window) Name() string { return "LTC-window" }

// Stats aggregates the blocks' snapshots (stream.StatsReporter). Operation
// counters cover the current window contents: a block's counters expire
// with the block when the ring rotates. Periods is the window-level
// cumulative period count, which survives rotation.
func (w *Window) Stats() stream.Stats {
	s := w.blocks[w.active].Stats()
	for i, b := range w.blocks {
		if i != w.active {
			s.Merge(b.Stats())
		}
	}
	s.Tracker = w.Name()
	s.Periods = w.periods
	return s
}

var (
	_ stream.Tracker       = (*Window)(nil)
	_ stream.BatchInserter = (*Window)(nil)
	_ stream.StatsReporter = (*Window)(nil)
)
