package window

import (
	"testing"

	"sigstream/internal/stream"
)

func opts(windowPeriods, blocks int) Options {
	return Options{
		MemoryBytes:   64 << 10,
		WindowPeriods: windowPeriods,
		Blocks:        blocks,
		Weights:       stream.Balanced,
		Seed:          1,
	}
}

func TestWindowRoundsToBlockMultiple(t *testing.T) {
	w := New(Options{WindowPeriods: 10, Blocks: 4})
	if w.WindowPeriods() != 12 {
		t.Fatalf("window rounded to %d, want 12", w.WindowPeriods())
	}
	if w.Blocks() != 4 {
		t.Fatalf("blocks = %d", w.Blocks())
	}
}

func TestWindowCountsWithinWindow(t *testing.T) {
	w := New(opts(4, 4)) // 1 period per block
	for p := 0; p < 3; p++ {
		for i := 0; i < 5; i++ {
			w.Insert(7)
		}
		w.EndPeriod()
	}
	e, ok := w.Query(7)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Frequency != 15 || e.Persistency != 3 {
		t.Fatalf("f=%d p=%d, want 15/3 (all inside window)", e.Frequency, e.Persistency)
	}
}

func TestWindowExpiresOldBlocks(t *testing.T) {
	// Window of 4 periods in 4 blocks. An item seen only in period 0 must
	// vanish after 4 more periods.
	w := New(opts(4, 4))
	for i := 0; i < 50; i++ {
		w.Insert(99)
	}
	w.EndPeriod()
	for p := 0; p < 4; p++ {
		w.Insert(1) // keep the stream moving
		w.EndPeriod()
	}
	if e, ok := w.Query(99); ok && e.Frequency > 0 {
		t.Fatalf("expired item still reported: %+v", e)
	}
}

func TestWindowSteadyItemPersists(t *testing.T) {
	// An item in every period always shows up with persistency ≤ window.
	w := New(opts(6, 3)) // 2 periods per block
	for p := 0; p < 20; p++ {
		for i := 0; i < 3; i++ {
			w.Insert(5)
		}
		w.EndPeriod()
		e, ok := w.Query(5)
		if !ok {
			t.Fatalf("period %d: steady item lost", p)
		}
		if e.Persistency > uint64(w.WindowPeriods()) {
			t.Fatalf("period %d: persistency %d exceeds window %d",
				p, e.Persistency, w.WindowPeriods())
		}
	}
	// After many periods the windowed frequency stays bounded: at most
	// window × rate (6 × 3 = 18).
	e, _ := w.Query(5)
	if e.Frequency > 18 {
		t.Fatalf("windowed frequency %d exceeds window capacity 18", e.Frequency)
	}
	if e.Frequency < 12 { // at least the full blocks' worth
		t.Fatalf("windowed frequency %d lost too much history", e.Frequency)
	}
}

func TestWindowTopKRanksRecentOverExpired(t *testing.T) {
	// A huge old burst must eventually rank below a steady recent item.
	w := New(opts(4, 4))
	for i := 0; i < 1000; i++ {
		w.Insert(111) // the burst, period 0
	}
	w.EndPeriod()
	for p := 0; p < 5; p++ {
		for i := 0; i < 10; i++ {
			w.Insert(222)
		}
		w.EndPeriod()
	}
	top := w.TopK(1)
	if len(top) == 0 || top[0].Item != 222 {
		t.Fatalf("expired burst still ranked first: %+v", top)
	}
}

func TestWindowQueriesDoNotMutate(t *testing.T) {
	w := New(opts(4, 2))
	for p := 0; p < 3; p++ {
		w.Insert(7)
		w.EndPeriod()
	}
	before, _ := w.Query(7)
	for i := 0; i < 10; i++ {
		w.TopK(5)
		w.Query(7)
	}
	after, _ := w.Query(7)
	if before != after {
		t.Fatalf("queries mutated state: %+v → %+v", before, after)
	}
}

func TestWindowDefaults(t *testing.T) {
	w := New(Options{})
	if w.Blocks() != 4 || w.WindowPeriods() != 4 {
		t.Fatalf("defaults: blocks=%d window=%d", w.Blocks(), w.WindowPeriods())
	}
	if w.MemoryBytes() <= 0 {
		t.Fatal("no memory")
	}
	if w.Name() != "LTC-window" {
		t.Fatal("wrong name")
	}
	w.Insert(1)
	if _, ok := w.Query(1); !ok {
		t.Fatal("basic insert/query broken")
	}
}

func BenchmarkWindowInsert(b *testing.B) {
	w := New(Options{MemoryBytes: 64 << 10, WindowPeriods: 8, Blocks: 4,
		Weights: stream.Balanced, ItemsPerPeriod: 10000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Insert(stream.Item(i % 5000))
	}
}

func BenchmarkWindowTopK(b *testing.B) {
	w := New(Options{MemoryBytes: 32 << 10, WindowPeriods: 8, Blocks: 4,
		Weights: stream.Balanced})
	for p := 0; p < 8; p++ {
		for i := 0; i < 2000; i++ {
			w.Insert(stream.Item(i % 500))
		}
		w.EndPeriod()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.TopK(100)
	}
}
