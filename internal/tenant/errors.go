package tenant

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors for registry and tenant operations. The HTTP layer maps
// each to a status code: ErrNotFound → 404, ErrBadNamespace → 400,
// ErrTooManyTenants and ErrBudget → 507, ErrClosed → 503, ErrPinned →
// whatever suits the operation (409 for delete).
var (
	// ErrNotFound reports an operation against a namespace the registry
	// does not know (or one deleted mid-flight).
	ErrNotFound = errors.New("tenant: namespace not found")
	// ErrBadNamespace reports a namespace that fails ValidNamespace.
	ErrBadNamespace = errors.New("tenant: invalid namespace")
	// ErrTooManyTenants reports that Config.MaxTenants is reached and no
	// new namespace can be created.
	ErrTooManyTenants = errors.New("tenant: tenant limit reached")
	// ErrBudget reports that the global memory budget is exhausted and no
	// tenant can be evicted to make room (only possible without a spill
	// directory — with one, cold tenants are spilled instead).
	ErrBudget = errors.New("tenant: global memory budget exhausted")
	// ErrClosed reports an operation against a closed registry.
	ErrClosed = errors.New("tenant: registry closed")
	// ErrPinned reports an operation — delete, spill — that pinned
	// tenants do not support.
	ErrPinned = errors.New("tenant: operation not valid for a pinned tenant")
)

// QuotaError reports an ingest batch denied by the tenant's rate limit.
// The HTTP layer maps it to 429 with a Retry-After header.
type QuotaError struct {
	// RetryAfter is how long until the token bucket holds enough tokens
	// for the denied batch (capped at a full bucket).
	RetryAfter time.Duration
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant: insert quota exceeded, retry in %s", e.RetryAfter)
}

// GeometryError reports a checkpoint or spill image whose tracker geometry
// does not match the tenant's configuration. The image is well-formed,
// just for a differently-sized tracker — the HTTP layer maps it to 409
// rather than 400.
type GeometryError struct {
	// Msg describes the mismatch, both geometries included.
	Msg string
}

// Error implements error.
func (e *GeometryError) Error() string { return e.Msg }
