package tenant

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"sigstream"
)

// Envelope magics. TNT2 is the current spill format: the TNT1 layout
// (key names + tracker image) prefixed with the WAL cut — the first log
// segment NOT covered by the image — so a snapshot and its replay
// starting point are one atomic unit in one file. TNT1 payloads decode
// with cut 0 (replay everything, which is exactly right for a snapshot
// taken before the WAL existed), and a payload with neither magic is a
// legacy raw tracker image (the PR-5 root-level snapshot format) with no
// key names.
const (
	envMagic   = "TNT1"
	envMagicV2 = "TNT2"
)

// maxEnvelopeKeys bounds the declared key count of an envelope so a
// corrupt header cannot drive an unbounded decode loop.
const maxEnvelopeKeys = 1 << 28

// ErrBadEnvelope reports a corrupt tenant spill envelope.
var ErrBadEnvelope = errors.New("tenant: bad spill envelope")

// envelopeNames lists a key map's names in sorted order, so identical
// state encodes to identical bytes.
func envelopeNames(keys *sigstream.KeyMap) []string {
	if keys == nil {
		return nil
	}
	names := make([]string, 0, keys.Len())
	keys.Range(func(_ sigstream.Item, k string) bool {
		names = append(names, k)
		return true
	})
	sort.Strings(names)
	return names
}

// encodeEnvelopeTo streams a tenant spill envelope (little-endian):
//
//	offset  size  field
//	0       4     magic "TNT2"
//	4       8     WAL cut (first segment not covered by the image)
//	12      4     key count n
//	16      …     n × (u32 length | key bytes)
//	…       …     tracker image, streamed by writeImage
//
// The tracker image never materializes here — writeImage (typically
// Sharded.EncodeTo) streams it straight into w, which in the save path
// is the snapshot temp file.
func encodeEnvelopeTo(w io.Writer, names []string, cut uint64, writeImage func(io.Writer) error) error {
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, envMagicV2...)
	hdr = binary.LittleEndian.AppendUint64(hdr, cut)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(names)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var buf []byte
	for _, n := range names {
		buf = buf[:0]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n)))
		buf = append(buf, n...)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return writeImage(w)
}

// encodeEnvelope renders a spill envelope as one buffer; a thin wrapper
// over encodeEnvelopeTo for callers (and tests) that want bytes.
func encodeEnvelope(keys *sigstream.KeyMap, image []byte) []byte {
	var buf bytes.Buffer
	// Writing to a bytes.Buffer cannot fail.
	_ = encodeEnvelopeTo(&buf, envelopeNames(keys), 0, func(w io.Writer) error {
		_, err := w.Write(image)
		return err
	})
	return buf.Bytes()
}

// decodeEnvelope splits a spill payload into a rebuilt key map, the
// tracker image, and the WAL cut the image covers up to. TNT1 payloads
// and legacy raw tracker images decode with cut 0; a legacy image also
// yields an empty key map (unseen keys render as hex until re-interned).
// Every declared length is checked against the actual payload size before
// slicing.
func decodeEnvelope(payload []byte) (*sigstream.KeyMap, []byte, uint64, error) {
	km := sigstream.NewKeyMap()
	var cut uint64
	var off int
	switch {
	case len(payload) >= 16 && string(payload[:4]) == envMagicV2:
		cut = binary.LittleEndian.Uint64(payload[4:])
		off = 12
	case len(payload) >= 8 && string(payload[:4]) == envMagic:
		off = 4
	default:
		return km, payload, 0, nil
	}
	n := binary.LittleEndian.Uint32(payload[off:])
	if n > maxEnvelopeKeys {
		return nil, nil, 0, fmt.Errorf("%w: implausible key count %d", ErrBadEnvelope, n)
	}
	off += 4
	for i := uint32(0); i < n; i++ {
		if off+4 > len(payload) {
			return nil, nil, 0, fmt.Errorf("%w: truncated at key %d", ErrBadEnvelope, i)
		}
		l := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if l < 0 || l > len(payload)-off {
			return nil, nil, 0, fmt.Errorf("%w: key %d overruns envelope", ErrBadEnvelope, i)
		}
		km.Intern(string(payload[off : off+l]))
		off += l
	}
	return km, payload[off:], cut, nil
}
