package tenant

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"sigstream"
)

// envMagic identifies a tenant spill envelope ("TNT1"). A spill image
// carries the tenant's key names alongside the tracker image, so a
// revived tenant reports the same strings a never-spilled one would; a
// payload without the magic is treated as a legacy raw tracker image
// (the PR-5 root-level snapshot format) with no key names.
const envMagic = "TNT1"

// maxEnvelopeKeys bounds the declared key count of an envelope so a
// corrupt header cannot drive an unbounded decode loop.
const maxEnvelopeKeys = 1 << 28

// ErrBadEnvelope reports a corrupt tenant spill envelope.
var ErrBadEnvelope = errors.New("tenant: bad spill envelope")

// encodeEnvelope frames a tenant spill image (little-endian):
//
//	offset  size  field
//	0       4     magic "TNT1"
//	4       4     key count n
//	8       …     n × (u32 length | key bytes)
//	…       …     tracker MarshalBinary image
//
// Keys are written in sorted order so identical state encodes to
// identical bytes.
func encodeEnvelope(keys *sigstream.KeyMap, image []byte) []byte {
	var names []string
	if keys != nil {
		names = make([]string, 0, keys.Len())
		keys.Range(func(_ sigstream.Item, k string) bool {
			names = append(names, k)
			return true
		})
		sort.Strings(names)
	}
	size := 8 + len(image)
	for _, n := range names {
		size += 4 + len(n)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, envMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, n := range names {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n)))
		buf = append(buf, n...)
	}
	return append(buf, image...)
}

// decodeEnvelope splits a spill payload into a rebuilt key map and the
// tracker image. A payload without the envelope magic is a legacy raw
// tracker image: it decodes to an empty key map (unseen keys render as
// hex until re-interned), preserving compatibility with PR-5 root-level
// snapshots. Every declared length is checked against the actual payload
// size before slicing.
func decodeEnvelope(payload []byte) (*sigstream.KeyMap, []byte, error) {
	km := sigstream.NewKeyMap()
	if len(payload) < 8 || string(payload[:4]) != envMagic {
		return km, payload, nil
	}
	n := binary.LittleEndian.Uint32(payload[4:])
	if n > maxEnvelopeKeys {
		return nil, nil, fmt.Errorf("%w: implausible key count %d", ErrBadEnvelope, n)
	}
	off := 8
	for i := uint32(0); i < n; i++ {
		if off+4 > len(payload) {
			return nil, nil, fmt.Errorf("%w: truncated at key %d", ErrBadEnvelope, i)
		}
		l := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if l < 0 || l > len(payload)-off {
			return nil, nil, fmt.Errorf("%w: key %d overruns envelope", ErrBadEnvelope, i)
		}
		km.Intern(string(payload[off : off+l]))
		off += l
	}
	return km, payload[off:], nil
}
