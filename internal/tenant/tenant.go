package tenant

import (
	"fmt"
	"io"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sigstream"
	"sigstream/internal/snapshot"
	"sigstream/internal/wal"
)

// Tenant is one namespace's tracker, key map and counters. Tenants are
// created by a Registry and live in one of two residency states: resident
// (tracker in memory) or spilled (state on disk, tracker freed). Every
// data operation transparently revives a spilled tenant first, so callers
// never observe the distinction except through Stats.
//
// All methods are safe for concurrent use. A tenant holds a read lock for
// the duration of each data operation — the tracker itself is a
// concurrency-safe sigstream.Sharded — and takes the write lock only for
// residency transitions (spill, revive, restore, delete).
//
// The declared acquisition order below is machine-checked by siglint's
// lockorder analyzer (see DESIGN.md §12): mu is always outermost; the
// append path nests walMu then keysMu under it; the save path and the
// quota gate each nest their own mutex under mu and never under each
// other.
//
//sig:lockorder mu < walMu < keysMu
//sig:lockorder mu < saveMu
//sig:lockorder mu < quotaMu
type Tenant struct {
	ns     string
	reg    *Registry
	pinned bool
	pin    PinOptions

	// mu guards the tracker/keys/pipeline pointers and the residency
	// state. Data operations hold it read; spill/revive/restore/delete
	// hold it write. Lock order: Tenant.mu before Registry.mu, never the
	// reverse.
	mu       sync.RWMutex
	tracker  *sigstream.Sharded
	keys     *sigstream.KeyMap
	pipeline *sigstream.Pipeline // pinned tenants only, when PinOptions.Pipeline
	shed     int                 // pipeline depth at which Overloaded trips; 0 disables

	keysMu sync.Mutex // KeyMap is not concurrency-safe

	quotaMu    sync.Mutex // token bucket state
	tokens     float64
	lastRefill time.Time

	saveMu       sync.Mutex // sequence counter and recovery note
	seqInit      bool
	nextSeq      uint64
	lastRecovery string

	// walMu makes a WAL append and its tracker apply one atomic unit
	// against the snapshot cut: data operations hold it read around
	// [append record, apply to tracker], the save path holds it write
	// around [barrier, rotate → cut, marshal image], so the image covers
	// exactly the records in segments below the cut. Lock order: mu
	// before walMu. wal is guarded by mu like the tracker pointer; it is
	// nil when the registry has no WAL configured or the tenant is
	// spilled. walCuts (the cuts of the retained snapshots, oldest first)
	// is touched under saveMu while resident and under mu during
	// residency transitions.
	walMu   sync.RWMutex
	wal     *wal.Log
	walCuts []uint64

	arrivals, periods        atomic.Uint64
	spillCount, reviveCount  atomic.Uint64
	saveCount, saveErrCount  atomic.Uint64
	quotaDenials, shedCount  atomic.Uint64
	lastSaveUnix, lastTouch  atomic.Int64
	resident, deleted, dirty atomic.Bool
}

// Entry is one ranking or query result: the tracker's estimate plus the
// interned key string (hex-rendered when the key was never interned or
// its name was lost to a legacy snapshot).
type Entry struct {
	// Key is the item's string key.
	Key string
	// Entry is the tracker's estimate.
	sigstream.Entry
}

// Stats is a point-in-time observability snapshot of one tenant, the
// substance behind the per-tenant /v1/stats response.
type Stats struct {
	// Namespace is the tenant's namespace.
	Namespace string
	// Pinned reports whether the tenant is pinned (always resident,
	// outside the budget and quota).
	Pinned bool
	// Resident reports whether the tracker is currently in memory.
	Resident bool
	// Arrivals is the number of recorded arrivals.
	Arrivals uint64
	// Periods is the number of period boundaries crossed.
	Periods uint64
	// Keys is the number of interned key names.
	Keys int
	// Spills counts resident→disk transitions.
	Spills uint64
	// Revives counts disk→resident transitions.
	Revives uint64
	// QuotaDenials counts ingest batches denied by the rate limit.
	QuotaDenials uint64
	// Sheds counts ingest requests shed by the pipeline high-water gate.
	Sheds uint64
	// Saves counts successful snapshot writes.
	Saves uint64
	// SaveErrors counts failed snapshot attempts.
	SaveErrors uint64
	// LastSaveUnix is the Unix time of the newest successful snapshot (0
	// when never saved).
	LastSaveUnix int64
	// LastRecovery describes the most recent residency recovery:
	// "recovered <file>", "fresh", or "" before first residency.
	LastRecovery string
	// Tracker is the underlying tracker's snapshot.
	Tracker sigstream.Stats
}

// Namespace reports the tenant's namespace.
func (t *Tenant) Namespace() string { return t.ns }

// Pinned reports whether the tenant is pinned.
func (t *Tenant) Pinned() bool { return t.pinned }

// Resident reports whether the tracker is currently in memory.
func (t *Tenant) Resident() bool { return t.resident.Load() }

// dir returns the tenant's snapshot directory, or "" when the registry
// has no durability configured.
func (t *Tenant) dir() string {
	base := t.reg.baseDir()
	if base == "" {
		return ""
	}
	return filepath.Join(base, t.ns)
}

// walDir returns the tenant's write-ahead log directory, or "" when the
// registry has no WAL configured.
func (t *Tenant) walDir() string {
	base := t.reg.walBase()
	if base == "" {
		return ""
	}
	return filepath.Join(base, t.ns)
}

// openWAL opens the tenant's write-ahead log, (nil, nil) when the
// registry has no WAL configured.
func (t *Tenant) openWAL() (*wal.Log, error) {
	dir := t.walDir()
	if dir == "" {
		return nil, nil
	}
	l, err := wal.Open(t.reg.walOptions(dir))
	if err != nil {
		return nil, fmt.Errorf("tenant %s: %w", t.ns, err)
	}
	return l, nil
}

// replayWAL replays l's records at or above cut, in log order, into
// tracker and km: batches re-intern and re-insert their keys, period
// records close periods, and a restore record swaps in the image it
// carries (validated against the tenant's geometry). It returns the
// tracker in effect after the replay and the number of records applied.
// The caller owns tracker and km exclusively — replay runs during
// recovery, before the state is installed or served.
func (t *Tenant) replayWAL(l *wal.Log, cut uint64, tracker *sigstream.Sharded, km *sigstream.KeyMap) (*sigstream.Sharded, int, error) {
	cur := tracker
	n, err := l.Replay(cut, func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecordBatch:
			items := make([]sigstream.Item, len(rec.Keys))
			for i, k := range rec.Keys {
				items[i] = km.Intern(k)
			}
			cur.InsertBatch(items)
		case wal.RecordPeriod:
			cur.EndPeriod()
		case wal.RecordRestore:
			fresh, _, err := t.restoreInto(rec.Image)
			if err != nil {
				return err
			}
			cur = fresh
		}
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("tenant %s: wal replay: %w", t.ns, err)
	}
	return cur, n, nil
}

// closeWAL closes and clears the tenant's log, logging (not returning)
// the close outcome. Caller holds the write lock.
func (t *Tenant) closeWAL() {
	if t.wal == nil {
		return
	}
	if err := t.wal.Close(); err != nil {
		t.reg.logger.Warn("tenant: wal close failed", "tenant", t.ns, "err", err)
	}
	t.wal = nil
}

// WALStats reports the tenant's write-ahead log counters, false when the
// tenant has no open log (WAL disabled, or the tenant is spilled).
func (t *Tenant) WALStats() (wal.Stats, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.wal == nil {
		return wal.Stats{}, false
	}
	return t.wal.Stats(), true
}

// touch records activity for LRU eviction and idle sweeps.
func (t *Tenant) touch() {
	t.lastTouch.Store(t.reg.clock().UnixNano())
}

// acquire returns with the read lock held on a resident, live tenant —
// reviving it from disk first if it was spilled — or returns an error
// with no lock held.
func (t *Tenant) acquire() error {
	for {
		t.mu.RLock()
		if t.deleted.Load() {
			t.mu.RUnlock()
			return ErrNotFound
		}
		if t.resident.Load() {
			return nil
		}
		t.mu.RUnlock()
		t.mu.Lock()
		err := t.ensureResidentLocked()
		t.mu.Unlock()
		if err != nil {
			return err
		}
	}
}

// ensureResidentLocked brings a spilled tenant back into memory: reserve
// budget (evicting colder tenants if needed), recover the newest valid
// spill image from disk — or start fresh when there is none — and install
// the tracker. Caller holds the write lock.
func (t *Tenant) ensureResidentLocked() error {
	if t.deleted.Load() {
		return ErrNotFound
	}
	if t.resident.Load() {
		return nil
	}
	if err := t.reg.reserve(t); err != nil {
		return err
	}
	keys := sigstream.NewKeyMap()
	var tracker *sigstream.Sharded
	var cut uint64
	recovery := "fresh"
	fail := func(err error) error {
		t.reg.release()
		t.saveMu.Lock()
		t.lastRecovery = "failed: " + err.Error()
		t.saveMu.Unlock()
		return err
	}
	if dir := t.dir(); dir != "" {
		payload, file, err := snapshot.Recover(dir, t.reg.logger)
		if err == nil && payload != nil {
			var km *sigstream.KeyMap
			var img []byte
			km, img, cut, err = decodeEnvelope(payload)
			if err == nil {
				tracker, _, err = t.restoreInto(img)
				if err == nil {
					keys = km
					t.reviveCount.Add(1)
					t.reg.revives.Add(1)
					recovery = "recovered " + file
				}
			}
		}
		if err != nil {
			return fail(err)
		}
	}
	if tracker == nil {
		tracker = t.newTracker()
	}
	// Replay the WAL tail past the snapshot cut, so the revived tenant
	// lands on exactly the state whose appends were acknowledged.
	l, err := t.openWAL()
	if err != nil {
		return fail(err)
	}
	if l != nil {
		replayed, n, err := t.replayWAL(l, cut, tracker, keys)
		if err != nil {
			_ = l.Close()
			return fail(err)
		}
		tracker = replayed
		if n > 0 {
			recovery += fmt.Sprintf(" +%d wal records", n)
		}
	}
	st := tracker.Stats()
	t.arrivals.Store(st.Arrivals)
	t.periods.Store(st.Periods)
	t.tracker = tracker
	t.wal = l
	t.walCuts = nil
	if cut > 0 {
		t.walCuts = []uint64{cut}
	}
	t.keysMu.Lock()
	t.keys = keys
	t.keysMu.Unlock()
	t.saveMu.Lock()
	t.lastRecovery = recovery
	t.saveMu.Unlock()
	t.dirty.Store(false)
	t.resident.Store(true)
	return nil
}

// newTracker builds an empty tracker from the tenant's configuration;
// revive and restore share it so every installed image is validated
// against the same geometry.
func (t *Tenant) newTracker() *sigstream.Sharded {
	cfg, shards := t.reg.cfg.Tracker, t.reg.cfg.Shards
	if t.pinned {
		cfg, shards = t.pin.Tracker, t.pin.Shards
	}
	return sigstream.NewSharded(cfg, shards)
}

// restoreInto decodes a tracker image into a fresh tracker of the
// tenant's geometry, rejecting with GeometryError any image built for a
// differently-sized tracker — accepting it would silently replace the
// configured shard count, memory budget and weights with whatever the
// image carries.
func (t *Tenant) restoreInto(img []byte) (*sigstream.Sharded, sigstream.Stats, error) {
	fresh := t.newTracker()
	want := fresh.Stats()
	if err := fresh.UnmarshalBinary(img); err != nil {
		return nil, sigstream.Stats{}, err
	}
	got := fresh.Stats()
	if got.Shards != want.Shards || got.MemoryBytes != want.MemoryBytes ||
		got.BucketWidth != want.BucketWidth ||
		got.Alpha != want.Alpha || got.Beta != want.Beta {
		return nil, sigstream.Stats{}, &GeometryError{Msg: fmt.Sprintf(
			"tenant %s: snapshot geometry (shards=%d mem=%d d=%d α=%g β=%g) does not match configuration (shards=%d mem=%d d=%d α=%g β=%g)",
			t.ns,
			got.Shards, got.MemoryBytes, got.BucketWidth, got.Alpha, got.Beta,
			want.Shards, want.MemoryBytes, want.BucketWidth, want.Alpha, want.Beta)}
	}
	return fresh, got, nil
}

// allow runs the token bucket: an ingest of n keys needs n tokens (capped
// at one full bucket, so a single batch larger than the burst drains the
// bucket rather than being denied forever). On denial it reports how long
// until the bucket holds enough tokens.
func (t *Tenant) allow(n int) (time.Duration, bool) {
	qps, burst := t.reg.cfg.QuotaPerSec, float64(t.reg.quotaBurst)
	now := t.reg.clock()
	t.quotaMu.Lock()
	defer t.quotaMu.Unlock()
	if t.lastRefill.IsZero() {
		t.tokens = burst
		t.lastRefill = now
	}
	if elapsed := now.Sub(t.lastRefill).Seconds(); elapsed > 0 {
		t.tokens = math.Min(burst, t.tokens+elapsed*qps)
		t.lastRefill = now
	}
	need := math.Min(float64(n), burst)
	if need <= t.tokens {
		t.tokens -= need
		return 0, true
	}
	retry := time.Duration((need - t.tokens) / qps * float64(time.Second))
	return retry, false
}

// Overloaded reports whether the tenant's ingest pipeline is backed up
// past the shed high-water mark; the HTTP layer calls it before reading
// an insert body so a saturated ring sheds cheaply. Tenants without a
// pipeline are never overloaded.
func (t *Tenant) Overloaded() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pipeline == nil || t.shed <= 0 {
		return false
	}
	if t.pipeline.Depth() >= t.shed {
		t.shedCount.Add(1)
		return true
	}
	return false
}

// Ingest records one arrival per key, in order: intern the keys, charge
// the tenant's quota (one token per key; pinned tenants are exempt),
// append the batch to the write-ahead log (when configured) and feed it
// to the pipeline (pinned, when configured) or directly to the tracker.
// It reports the number of arrivals accepted — all of them, or none with
// a QuotaError carrying the retry hint. With a WAL, a successful return
// means the batch is fsynced: a crash after the ack replays it; an error
// means the batch was neither logged nor applied.
func (t *Tenant) Ingest(keys []string) (int, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	if err := t.acquire(); err != nil {
		return 0, err
	}
	defer t.mu.RUnlock()
	if !t.pinned && t.reg.cfg.QuotaPerSec > 0 {
		if retry, ok := t.allow(len(keys)); !ok {
			t.quotaDenials.Add(1)
			t.reg.quotaDenied.Add(1)
			return 0, &QuotaError{RetryAfter: retry}
		}
	}
	if t.wal != nil {
		// Append and apply under the WAL gate, so a snapshot cut can
		// never land between a batch's record and its tracker effect.
		t.walMu.RLock()
		defer t.walMu.RUnlock()
		if err := t.wal.Append(wal.EncodeBatch(keys)); err != nil {
			return 0, fmt.Errorf("tenant %s: %w", t.ns, err)
		}
	}
	items := make([]sigstream.Item, len(keys))
	t.keysMu.Lock()
	for i, k := range keys {
		items[i] = t.keys.Intern(k)
	}
	t.keysMu.Unlock()
	if t.pipeline != nil {
		if err := t.pipeline.Submit(items); err != nil {
			return 0, err
		}
	} else {
		t.tracker.InsertBatch(items)
	}
	t.arrivals.Add(uint64(len(keys)))
	t.dirty.Store(true)
	t.touch()
	return len(keys), nil
}

// WireBatch is one decoded ingest batch in the tenant's native currency:
// Keys and Weights are the distinct records in frame order (nil Weights
// means every record has weight 1) and Items is the weight-expanded,
// pre-hashed arrival sequence — the caller guarantees Items holds
// sigstream.HashKeyBytes of each key, repeated that key's weight, in
// record order, and that every weight is at least 1. Decoders build all
// three in pooled buffers; IngestWire never retains any of the slices
// (the WAL encoder copies the key bytes, the pipeline copies Items), so
// the caller may recycle them the moment the call returns.
type WireBatch struct {
	Keys    [][]byte
	Weights []uint32
	Items   []sigstream.Item
}

// IngestWire records b's arrivals, in order, with exactly Ingest's quota,
// WAL and apply discipline: charge one token per arrival, append one
// RecordBatch holding the weight-expanded key sequence (bit-identical to
// what Ingest would log for the same arrivals), note key names on first
// sight, and feed Items to the pipeline or tracker. With a WAL a
// successful return means the batch is fsynced; on error nothing was
// logged or applied.
func (t *Tenant) IngestWire(b WireBatch) (int, error) {
	if len(b.Items) == 0 {
		return 0, nil
	}
	if err := t.acquire(); err != nil {
		return 0, err
	}
	defer t.mu.RUnlock()
	if !t.pinned && t.reg.cfg.QuotaPerSec > 0 {
		if retry, ok := t.allow(len(b.Items)); !ok {
			t.quotaDenials.Add(1)
			t.reg.quotaDenied.Add(1)
			return 0, &QuotaError{RetryAfter: retry}
		}
	}
	if t.wal != nil {
		// Append and apply under the WAL gate, so a snapshot cut can
		// never land between a batch's record and its tracker effect.
		t.walMu.RLock()
		defer t.walMu.RUnlock()
		if err := t.wal.Append(wal.EncodeBatchRecords(b.Keys, b.Weights)); err != nil {
			return 0, fmt.Errorf("tenant %s: %w", t.ns, err)
		}
	}
	t.keysMu.Lock()
	cursor := 0
	for i, k := range b.Keys {
		t.keys.Note(b.Items[cursor], k)
		if b.Weights != nil {
			cursor += int(b.Weights[i])
		} else {
			cursor++
		}
	}
	t.keysMu.Unlock()
	if t.pipeline != nil {
		if err := t.pipeline.Submit(b.Items); err != nil {
			return 0, err
		}
	} else {
		t.tracker.InsertBatch(b.Items)
	}
	t.arrivals.Add(uint64(len(b.Items)))
	t.dirty.Store(true)
	t.touch()
	return len(b.Items), nil
}

// EndPeriod closes the tenant's current period and reports the new
// period count. For a pipelined tenant the rings are flushed first, so
// the boundary lands after every previously accepted insert. With a WAL
// the boundary is logged holding the gate exclusively, so no insert can
// slip between the period record and its tracker effect and replay
// closes periods at exactly the logged positions.
func (t *Tenant) EndPeriod() (uint64, error) {
	if err := t.acquire(); err != nil {
		return 0, err
	}
	defer t.mu.RUnlock()
	if t.wal != nil {
		t.walMu.Lock()
		defer t.walMu.Unlock()
	}
	if err := t.barrierRLocked(); err != nil {
		return 0, err
	}
	if t.wal != nil {
		if err := t.wal.Append(wal.EncodePeriod()); err != nil {
			return 0, fmt.Errorf("tenant %s: %w", t.ns, err)
		}
	}
	t.tracker.EndPeriod()
	periods := t.periods.Add(1)
	t.dirty.Store(true)
	t.touch()
	return periods, nil
}

// TopK reports the tenant's k most significant items with their key
// names, most significant first.
func (t *Tenant) TopK(k int) ([]Entry, error) {
	if err := t.acquire(); err != nil {
		return nil, err
	}
	defer t.mu.RUnlock()
	if err := t.barrierRLocked(); err != nil {
		return nil, err
	}
	es := t.tracker.TopK(k)
	out := make([]Entry, len(es))
	t.keysMu.Lock()
	for i, e := range es {
		out[i] = Entry{Key: t.keys.Name(e.Item), Entry: e}
	}
	t.keysMu.Unlock()
	t.touch()
	return out, nil
}

// Query reports the tenant's estimate for one key and whether the key is
// currently tracked.
func (t *Tenant) Query(key string) (Entry, bool, error) {
	if err := t.acquire(); err != nil {
		return Entry{}, false, err
	}
	defer t.mu.RUnlock()
	if err := t.barrierRLocked(); err != nil {
		return Entry{}, false, err
	}
	e, ok := t.tracker.Query(sigstream.HashKey(key))
	t.touch()
	if !ok {
		return Entry{}, false, nil
	}
	return Entry{Key: key, Entry: e}, true, nil
}

// Stats reports the tenant's observability snapshot, reviving a spilled
// tenant first so the tracker fields are live.
func (t *Tenant) Stats() (Stats, error) {
	if err := t.acquire(); err != nil {
		return Stats{}, err
	}
	defer t.mu.RUnlock()
	if err := t.barrierRLocked(); err != nil {
		return Stats{}, err
	}
	st := t.statsRLocked()
	st.Tracker = t.tracker.Stats()
	t.keysMu.Lock()
	st.Keys = t.keys.Len()
	t.keysMu.Unlock()
	t.touch()
	return st, nil
}

// statsRLocked assembles the counter-only part of Stats from atomics.
// Caller holds at least the read lock.
func (t *Tenant) statsRLocked() Stats {
	t.saveMu.Lock()
	recovery := t.lastRecovery
	t.saveMu.Unlock()
	return Stats{
		Namespace:    t.ns,
		Pinned:       t.pinned,
		Resident:     t.resident.Load(),
		Arrivals:     t.arrivals.Load(),
		Periods:      t.periods.Load(),
		Spills:       t.spillCount.Load(),
		Revives:      t.reviveCount.Load(),
		QuotaDenials: t.quotaDenials.Load(),
		Sheds:        t.shedCount.Load(),
		Saves:        t.saveCount.Load(),
		SaveErrors:   t.saveErrCount.Load(),
		LastSaveUnix: t.lastSaveUnix.Load(),
		LastRecovery: recovery,
	}
}

// TrackerStats reports the live tracker's counters without a pipeline
// barrier, so a metrics scrape never blocks behind ingest, and without
// reviving a spilled tenant (false when not resident).
func (t *Tenant) TrackerStats() (sigstream.Stats, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.tracker == nil {
		return sigstream.Stats{}, false
	}
	return t.tracker.Stats(), true
}

// Arrivals reports the number of recorded arrivals.
func (t *Tenant) Arrivals() uint64 { return t.arrivals.Load() }

// Periods reports the number of period boundaries crossed.
func (t *Tenant) Periods() uint64 { return t.periods.Load() }

// SaveCounters reports the snapshot counters — successful saves, failed
// attempts, and the Unix time of the newest save — from atomics, so a
// metrics scrape never blocks or revives.
func (t *Tenant) SaveCounters() (saves, errs uint64, lastUnix int64) {
	return t.saveCount.Load(), t.saveErrCount.Load(), t.lastSaveUnix.Load()
}

// KeyCount reports the number of interned key names (0 when spilled).
func (t *Tenant) KeyCount() int {
	t.keysMu.Lock()
	defer t.keysMu.Unlock()
	if t.keys == nil {
		return 0
	}
	return t.keys.Len()
}

// PipelineStats reports the ingest pipeline's counters, false when the
// tenant has none.
func (t *Tenant) PipelineStats() (sigstream.PipelineStats, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pipeline == nil {
		return sigstream.PipelineStats{}, false
	}
	return t.pipeline.Stats(), true
}

// PipelineErr reports the pipeline's terminal failure (a quarantined
// shard), nil when healthy or absent; /readyz gates on it.
func (t *Tenant) PipelineErr() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.pipeline == nil {
		return nil
	}
	return t.pipeline.Err()
}

// barrierRLocked flushes the pipeline, if any, so the following read or
// period operation observes every previously accepted insert. A closed
// pipeline only means there is nothing left to flush. Caller holds at
// least the read lock.
func (t *Tenant) barrierRLocked() error {
	if t.pipeline == nil {
		return nil
	}
	if err := t.pipeline.Flush(); err != nil && err != sigstream.ErrPipelineClosed {
		return err
	}
	return nil
}

// CheckpointImage drains the pipeline and marshals the tracker into a
// portable image (the /v1/checkpoint body and golden-fixture format).
// The barrier is best-effort: a quarantined pipeline still answers flush
// markers, so a snapshot of the state applied so far stays possible even
// after an ingest failure.
func (t *Tenant) CheckpointImage() ([]byte, error) {
	if err := t.acquire(); err != nil {
		return nil, err
	}
	defer t.mu.RUnlock()
	if err := t.barrierRLocked(); err != nil {
		t.reg.logger.Warn("tenant: checkpoint barrier failed; snapshotting applied state",
			"tenant", t.ns, "err", err)
	}
	t.touch()
	return t.tracker.MarshalBinary()
}

// RestoreImage validates a checkpoint image against the tenant's
// geometry and installs it as the live tracker. The image is restored
// into a fresh tracker first, so a bad image leaves the live state
// untouched; key names are not part of the image, so existing interned
// names survive. A pipelined tenant's pipeline is retired with the old
// tracker and a fresh one started over the restored state.
func (t *Tenant) RestoreImage(body []byte) error {
	t.mu.Lock()
	if t.deleted.Load() {
		t.mu.Unlock()
		return ErrNotFound
	}
	if err := t.ensureResidentLocked(); err != nil {
		t.mu.Unlock()
		return err
	}
	fresh, st, err := t.restoreInto(body)
	if err != nil {
		t.mu.Unlock()
		return err
	}
	if t.wal != nil {
		// A restore is just another logged mutation: the full image rides
		// the log, so replay swaps trackers at exactly this position. The
		// write lock on mu already excludes every data operation and save.
		if err := t.wal.Append(wal.EncodeRestore(body)); err != nil {
			t.mu.Unlock()
			return fmt.Errorf("tenant %s: %w", t.ns, err)
		}
	}
	old := t.pipeline
	if old != nil {
		t.pipeline = fresh.Pipeline(t.pin.PipelineOptions)
	}
	t.tracker = fresh
	t.arrivals.Store(st.Arrivals)
	t.periods.Store(st.Periods)
	t.dirty.Store(true)
	t.touch()
	t.mu.Unlock()
	if old != nil {
		// The retired pipeline is drained outside the lock; its items
		// target the replaced tracker, which is being discarded anyway.
		_ = old.Close()
	}
	return nil
}

// Spill writes the tenant's state to disk (when dirty) and frees the
// tracker, reporting whether a resident→disk transition happened. A
// pinned tenant never spills; a save failure keeps the tenant resident so
// no state is lost.
func (t *Tenant) Spill() (bool, error) {
	if t.pinned {
		return false, ErrPinned
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.resident.Load() || t.deleted.Load() {
		return false, nil
	}
	if t.dirty.Load() {
		if _, err := t.saveRLocked(); err != nil {
			return false, err
		}
	}
	t.closeWAL()
	t.tracker = nil
	t.keysMu.Lock()
	t.keys = nil
	t.keysMu.Unlock()
	t.resident.Store(false)
	t.spillCount.Add(1)
	t.reg.spills.Add(1)
	t.reg.release()
	return true, nil
}

// Save forces one snapshot of the tenant's state to disk and returns the
// written file name. A spilled tenant ("", nil) already has its state on
// disk; a registry without a spill directory has nowhere to save.
func (t *Tenant) Save() (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.deleted.Load() {
		return "", ErrNotFound
	}
	if !t.resident.Load() {
		return "", nil
	}
	return t.saveRLocked()
}

// saveRLocked snapshots the tenant's envelope (key names + WAL cut +
// tracker image) to its directory with the crash discipline of
// internal/snapshot, then prunes old files and truncates the WAL below
// the oldest retained snapshot's cut. The dirty flag is cleared before
// the state is read, so writes landing during the save re-mark it.
// Caller holds at least the read lock on a resident tenant.
//
// With a WAL, the save is the snapshot/truncate coordinator: it holds
// the WAL gate exclusively across [pipeline barrier, segment rotation →
// cut, image marshal], so the image covers exactly the records in
// segments below the cut — replay from the cut is the missing suffix,
// nothing less and nothing twice. The cut rides inside the envelope, so
// snapshot and replay point commit atomically in one renamed file.
func (t *Tenant) saveRLocked() (string, error) {
	dir := t.dir()
	if dir == "" {
		return "", nil
	}
	fail := func(err error) (string, error) {
		t.dirty.Store(true)
		t.saveErrCount.Add(1)
		return "", err
	}
	var cut uint64
	var writeImage func(io.Writer) error
	if t.wal != nil {
		t.walMu.Lock()
		if err := t.barrierRLocked(); err != nil {
			t.reg.logger.Warn("tenant: save barrier failed; snapshotting applied state",
				"tenant", t.ns, "err", err)
		}
		var err error
		cut, err = t.wal.Rotate()
		if err != nil {
			t.walMu.Unlock()
			return fail(fmt.Errorf("tenant %s: %w", t.ns, err))
		}
		t.dirty.Store(false)
		img, err := t.tracker.MarshalBinary()
		t.walMu.Unlock()
		if err != nil {
			return fail(fmt.Errorf("tenant %s: %w", t.ns, err))
		}
		writeImage = func(w io.Writer) error {
			_, werr := w.Write(img)
			return werr
		}
	} else {
		if err := t.barrierRLocked(); err != nil {
			t.reg.logger.Warn("tenant: save barrier failed; snapshotting applied state",
				"tenant", t.ns, "err", err)
		}
		t.dirty.Store(false)
		// Without a cut to pin, the image streams straight to the temp
		// file — it never materializes in memory.
		writeImage = t.tracker.EncodeTo
	}
	t.keysMu.Lock()
	names := envelopeNames(t.keys)
	t.keysMu.Unlock()
	t.saveMu.Lock()
	defer t.saveMu.Unlock()
	if !t.seqInit {
		seq, err := snapshot.NextSeq(dir)
		if err != nil {
			return fail(err)
		}
		t.nextSeq, t.seqInit = seq, true
	}
	seq := t.nextSeq
	t.nextSeq++
	name, err := snapshot.WriteFileTo(dir, seq, func(w io.Writer) error {
		return encodeEnvelopeTo(w, names, cut, writeImage)
	})
	if err != nil {
		return fail(err)
	}
	t.saveCount.Add(1)
	t.lastSaveUnix.Store(t.reg.clock().Unix())
	retain := t.reg.retain()
	snapshot.Prune(dir, retain, t.reg.logger)
	if t.wal != nil {
		// Truncate below the oldest retained snapshot's cut: any snapshot
		// still on disk can be recovered and replayed from its own cut.
		t.walCuts = append(t.walCuts, cut)
		if len(t.walCuts) > retain {
			t.walCuts = t.walCuts[len(t.walCuts)-retain:]
		}
		t.wal.TruncateBefore(t.walCuts[0])
	}
	return name, nil
}

// recoverPinned loads a pinned tenant's newest valid snapshot at startup:
// first from its own directory, then — for the default tenant only —
// from legacy root-level snapshot files written before the tenant layout
// existed. With a WAL the recovered image is then rolled forward through
// the log tail past the snapshot's cut (the log opened at Pin time, which
// replayed from record zero, is closed and rebuilt against the snapshot).
// No snapshot and no WAL recovers nothing and is not an error.
func (t *Tenant) recoverPinned(base string) error {
	t.mu.Lock()
	fail := func(file string, err error) error {
		t.saveMu.Lock()
		t.lastRecovery = "failed: " + err.Error()
		t.saveMu.Unlock()
		t.mu.Unlock()
		return fmt.Errorf("tenant %s: restore snapshot %s: %w", t.ns, file, err)
	}
	payload, file, err := snapshot.Recover(filepath.Join(base, t.ns), t.reg.logger)
	if err == nil && payload == nil && t.ns == DefaultNamespace {
		payload, file, err = snapshot.Recover(base, t.reg.logger)
	}
	var fresh *sigstream.Sharded
	km := sigstream.NewKeyMap()
	var cut uint64
	if err == nil && payload != nil {
		var img []byte
		if km, img, cut, err = decodeEnvelope(payload); err == nil {
			fresh, _, err = t.restoreInto(img)
		}
	}
	if err != nil {
		return fail(file, err)
	}
	recovery := "fresh"
	revived := payload != nil
	if revived {
		recovery = "recovered " + file
	}
	if fresh == nil && t.wal == nil {
		// Nothing on disk: the Pin-time state stands.
		t.saveMu.Lock()
		t.lastRecovery = recovery
		t.saveMu.Unlock()
		t.mu.Unlock()
		return nil
	}
	if fresh == nil {
		fresh = t.newTracker()
	}
	t.closeWAL()
	l, err := t.openWAL()
	if err != nil {
		return fail(file, err)
	}
	replayed := 0
	if l != nil {
		var rerr error
		fresh, replayed, rerr = t.replayWAL(l, cut, fresh, km)
		if rerr != nil {
			_ = l.Close()
			return fail(file, rerr)
		}
		if replayed > 0 {
			recovery += fmt.Sprintf(" +%d wal records", replayed)
		}
	}
	old := t.pipeline
	if old != nil {
		t.pipeline = fresh.Pipeline(t.pin.PipelineOptions)
	}
	t.tracker = fresh
	t.keysMu.Lock()
	t.keys = km
	t.keysMu.Unlock()
	st := fresh.Stats()
	t.arrivals.Store(st.Arrivals)
	t.periods.Store(st.Periods)
	if revived {
		t.reviveCount.Add(1)
	}
	t.wal = l
	t.walCuts = nil
	if cut > 0 {
		t.walCuts = []uint64{cut}
	}
	t.saveMu.Lock()
	t.lastRecovery = recovery
	t.saveMu.Unlock()
	t.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	if revived || replayed > 0 {
		t.reg.logger.Info("tenant: recovered state",
			"tenant", t.ns, "file", file, "wal_records", replayed)
	}
	return nil
}
