package tenant

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"sigstream"
	"sigstream/internal/snapshot"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// smallTracker keeps per-tenant cost low so budget tests stay fast.
func smallTracker() sigstream.Config {
	return sigstream.Config{MemoryBytes: 1 << 14}
}

func TestValidNamespace(t *testing.T) {
	valid := []string{"a", "default", "team-1", "acme.prod", "x_y", "0abc"}
	invalid := []string{"", ".", "..", ".hidden", "-x", "_x", "UPPER", "a b",
		"a/b", "a\\b", string(make([]byte, 65)), "café"}
	for _, ns := range valid {
		if !ValidNamespace(ns) {
			t.Errorf("ValidNamespace(%q) = false, want true", ns)
		}
	}
	for _, ns := range invalid {
		if ValidNamespace(ns) {
			t.Errorf("ValidNamespace(%q) = true, want false", ns)
		}
	}
}

func TestIngestTopKQuery(t *testing.T) {
	r := NewRegistry(Config{Tracker: smallTracker(), Logger: quietLogger()})
	defer r.Close()
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"a", "a", "a", "b", "b", "c"}
	if n, err := tn.Ingest(keys); err != nil || n != len(keys) {
		t.Fatalf("Ingest = %d, %v", n, err)
	}
	if _, err := tn.EndPeriod(); err != nil {
		t.Fatal(err)
	}
	top, err := tn.TopK(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].Key != "a" {
		t.Fatalf("TopK = %+v, want a first", top)
	}
	e, ok, err := tn.Query("b")
	if err != nil || !ok || e.Frequency != 2 {
		t.Fatalf("Query(b) = %+v, %v, %v", e, ok, err)
	}
	if _, ok, _ := tn.Query("nope"); ok {
		t.Fatal("Query(nope) tracked")
	}
	st, err := tn.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrivals != 6 || st.Periods != 1 || st.Keys != 3 || !st.Resident {
		t.Fatalf("Stats = %+v", st)
	}
}

// TestSpillReviveBitIdentical is the golden-fixture acceptance test: a
// spilled tenant revives with a bit-identical tracker image and the same
// TopK, key names included.
func TestSpillReviveBitIdentical(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(Config{Tracker: smallTracker(), Dir: dir, Logger: quietLogger()})
	defer r.Close()
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for p := 0; p < 5; p++ {
		var batch []string
		for i := 0; i < 500; i++ {
			batch = append(batch, fmt.Sprintf("key-%d", rng.Intn(100)))
		}
		if _, err := tn.Ingest(batch); err != nil {
			t.Fatal(err)
		}
		if _, err := tn.EndPeriod(); err != nil {
			t.Fatal(err)
		}
	}
	before, err := tn.CheckpointImage()
	if err != nil {
		t.Fatal(err)
	}
	topBefore, err := tn.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := tn.Spill()
	if err != nil || !spilled {
		t.Fatalf("Spill = %v, %v", spilled, err)
	}
	if tn.Resident() {
		t.Fatal("still resident after spill")
	}
	entries, err := os.ReadDir(filepath.Join(dir, "acme"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no tenant-labelled snapshot written: %v", err)
	}
	// Next touch revives transparently.
	topAfter, err := tn.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	if !tn.Resident() {
		t.Fatal("not resident after revive")
	}
	if !reflect.DeepEqual(topBefore, topAfter) {
		t.Fatalf("TopK changed across spill/revive:\nbefore %+v\nafter  %+v", topBefore, topAfter)
	}
	after, err := tn.CheckpointImage()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("checkpoint image not bit-identical across spill/revive")
	}
	st, err := tn.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Spills != 1 || st.Revives != 1 {
		t.Fatalf("Spills/Revives = %d/%d, want 1/1", st.Spills, st.Revives)
	}
	if len(st.LastRecovery) < len("recovered ") || st.LastRecovery[:10] != "recovered " {
		t.Fatalf("LastRecovery = %q", st.LastRecovery)
	}
}

// TestBudgetEviction is the 64 MiB / 100-tenant acceptance criterion
// scaled to test time: many more tenants than the budget holds stay
// usable, cold ones spill, and resident accounting never exceeds the
// budget.
func TestBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	cost := int64(NewRegistry(Config{Tracker: smallTracker(), Logger: quietLogger()}).CostPerTenant())
	budget := 8 * cost
	r := NewRegistry(Config{
		Tracker:     smallTracker(),
		BudgetBytes: budget,
		Dir:         dir,
		Logger:      quietLogger(),
	})
	defer r.Close()
	const tenants = 120
	for i := 0; i < tenants; i++ {
		tn, err := r.GetOrCreate(fmt.Sprintf("t%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Ingest([]string{fmt.Sprintf("item-%d", i), "shared"}); err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	st := r.Stats()
	if st.Tenants != tenants {
		t.Fatalf("Tenants = %d, want %d", st.Tenants, tenants)
	}
	if st.ResidentBytes > budget {
		t.Fatalf("ResidentBytes %d exceeds budget %d", st.ResidentBytes, budget)
	}
	if st.Spills == 0 {
		t.Fatal("no spills under a budget smaller than the tenant count")
	}
	if int64(st.Resident)*cost != st.ResidentBytes {
		t.Fatalf("accounting drift: %d resident × %d cost != %d resident bytes",
			st.Resident, cost, st.ResidentBytes)
	}
	// Every tenant — spilled or not — still answers with its own state.
	for i := 0; i < tenants; i += 17 {
		tn, err := r.Get(fmt.Sprintf("t%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		e, ok, err := tn.Query(fmt.Sprintf("item-%d", i))
		if err != nil || !ok || e.Frequency != 1 {
			t.Fatalf("tenant %d lost state: %+v, %v, %v", i, e, ok, err)
		}
	}
}

// TestBudgetNoDirRefuses: without a spill directory the registry cannot
// evict, so an over-budget residency is refused with ErrBudget.
func TestBudgetNoDirRefuses(t *testing.T) {
	cost := NewRegistry(Config{Tracker: smallTracker(), Logger: quietLogger()}).CostPerTenant()
	r := NewRegistry(Config{
		Tracker:     smallTracker(),
		BudgetBytes: 2 * cost,
		Logger:      quietLogger(),
	})
	defer r.Close()
	for i := 0; i < 2; i++ {
		tn, err := r.GetOrCreate(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Ingest([]string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	tn, err := r.GetOrCreate("overflow")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Ingest([]string{"x"}); !errors.Is(err, ErrBudget) {
		t.Fatalf("Ingest over budget = %v, want ErrBudget", err)
	}
}

// TestQuotaIsolation: a noisy tenant burning its quota gets 429-style
// denials with a retry hint while a victim tenant's inserts proceed
// untouched.
func TestQuotaIsolation(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	r := NewRegistry(Config{
		Tracker:     smallTracker(),
		QuotaPerSec: 10,
		QuotaBurst:  20,
		Logger:      quietLogger(),
		Clock:       clock,
	})
	defer r.Close()
	noisy, err := r.GetOrCreate("noisy")
	if err != nil {
		t.Fatal(err)
	}
	victim, err := r.GetOrCreate("victim")
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]string, 20)
	for i := range batch {
		batch[i] = fmt.Sprintf("k%d", i)
	}
	if _, err := noisy.Ingest(batch); err != nil {
		t.Fatalf("first burst should pass: %v", err)
	}
	_, err = noisy.Ingest(batch)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("second burst = %v, want QuotaError", err)
	}
	if qe.RetryAfter <= 0 || qe.RetryAfter > 2*time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 2s]", qe.RetryAfter)
	}
	// The victim's bucket is independent: full batch passes.
	if n, err := victim.Ingest(batch); err != nil || n != len(batch) {
		t.Fatalf("victim Ingest = %d, %v — noisy tenant starved it", n, err)
	}
	// Refill: advancing the clock restores the noisy tenant's tokens.
	now = now.Add(2 * time.Second)
	if _, err := noisy.Ingest(batch); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	st, err := noisy.Stats()
	if err != nil || st.QuotaDenials != 1 {
		t.Fatalf("QuotaDenials = %d, %v", st.QuotaDenials, err)
	}
	if vs, _ := victim.Stats(); vs.QuotaDenials != 0 {
		t.Fatalf("victim QuotaDenials = %d", vs.QuotaDenials)
	}
}

// TestConcurrentCreateEvictRevive hammers a small-budget registry from
// many goroutines (run under -race) and then checks the residency
// accounting invariant.
func TestConcurrentCreateEvictRevive(t *testing.T) {
	dir := t.TempDir()
	cost := NewRegistry(Config{Tracker: smallTracker(), Logger: quietLogger()}).CostPerTenant()
	r := NewRegistry(Config{
		Tracker:     smallTracker(),
		BudgetBytes: 3 * cost,
		Dir:         dir,
		Logger:      quietLogger(),
	})
	defer r.Close()
	const goroutines = 8
	const namespaces = 10
	const opsPer = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPer; i++ {
				ns := fmt.Sprintf("ns%d", rng.Intn(namespaces))
				tn, err := r.GetOrCreate(ns)
				if err != nil {
					t.Error(err)
					return
				}
				switch rng.Intn(5) {
				case 0:
					if _, err := tn.TopK(3); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("%s TopK: %v", ns, err)
					}
				case 1:
					if _, err := tn.Spill(); err != nil && !errors.Is(err, ErrPinned) {
						t.Errorf("%s Spill: %v", ns, err)
					}
				case 2:
					if _, err := tn.EndPeriod(); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("%s EndPeriod: %v", ns, err)
					}
				default:
					if _, err := tn.Ingest([]string{fmt.Sprintf("g%d-i%d", g, i)}); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("%s Ingest: %v", ns, err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if int64(st.Resident)*cost != st.ResidentBytes {
		t.Fatalf("accounting drift after churn: %d resident × %d != %d bytes",
			st.Resident, cost, st.ResidentBytes)
	}
	if st.ResidentBytes > 3*cost {
		t.Fatalf("ResidentBytes %d exceeds budget %d", st.ResidentBytes, 3*cost)
	}
}

// TestReviveAfterAbandon models kill -9: state saved, registry abandoned
// without Close, a new registry attaches the same directory and every
// tenant revives with identical TopK.
func TestReviveAfterAbandon(t *testing.T) {
	dir := t.TempDir()
	r1 := NewRegistry(Config{Tracker: smallTracker(), Dir: dir, Logger: quietLogger()})
	want := map[string][]Entry{}
	for i := 0; i < 5; i++ {
		ns := fmt.Sprintf("ns%d", i)
		tn, err := r1.GetOrCreate(ns)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p <= i; p++ {
			if _, err := tn.Ingest([]string{"a", "b", ns}); err != nil {
				t.Fatal(err)
			}
			if _, err := tn.EndPeriod(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tn.Save(); err != nil {
			t.Fatal(err)
		}
		top, err := tn.TopK(5)
		if err != nil {
			t.Fatal(err)
		}
		want[ns] = top
	}
	// No Close: the process "dies" here.
	r2 := NewRegistry(Config{Tracker: smallTracker(), Logger: quietLogger()})
	defer r2.Close()
	if err := r2.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	infos := r2.List()
	if len(infos) != 5 {
		t.Fatalf("AttachDir registered %d tenants, want 5", len(infos))
	}
	for ns, top := range want {
		tn, err := r2.Get(ns)
		if err != nil {
			t.Fatalf("%s: %v", ns, err)
		}
		got, err := tn.TopK(5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, top) {
			t.Fatalf("%s TopK after restart:\ngot  %+v\nwant %+v", ns, got, top)
		}
	}
}

func TestDeleteTenant(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(Config{Tracker: smallTracker(), Dir: dir, Logger: quietLogger()})
	defer r.Close()
	tn, err := r.GetOrCreate("gone")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Ingest([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Save(); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
	if _, err := tn.Ingest([]string{"x"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Ingest on deleted handle = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "gone")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("snapshot directory survived delete")
	}
	if err := r.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(nope) = %v", err)
	}
	st := r.Stats()
	if st.Resident != 0 || st.ResidentBytes != 0 {
		t.Fatalf("budget not released on delete: %+v", st)
	}
}

func TestPinnedTenant(t *testing.T) {
	r := NewRegistry(Config{Tracker: smallTracker(), QuotaPerSec: 1, Logger: quietLogger()})
	defer r.Close()
	def, err := r.Pin(DefaultNamespace, PinOptions{Tracker: smallTracker()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Pin(DefaultNamespace, PinOptions{}); err == nil {
		t.Fatal("double Pin allowed")
	}
	// Pinned tenants are quota-exempt: far more than 1/s passes.
	batch := make([]string, 100)
	for i := range batch {
		batch[i] = fmt.Sprintf("k%d", i)
	}
	if _, err := def.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := def.Spill(); !errors.Is(err, ErrPinned) {
		t.Fatalf("Spill(pinned) = %v, want ErrPinned", err)
	}
	if err := r.Delete(DefaultNamespace); !errors.Is(err, ErrPinned) {
		t.Fatalf("Delete(pinned) = %v, want ErrPinned", err)
	}
	got, err := r.GetOrCreate(DefaultNamespace)
	if err != nil || got != def {
		t.Fatalf("GetOrCreate(default) = %v, %v", got, err)
	}
}

// TestIdleSweep spills tenants idle past IdleAfter via the background
// path's Sweep, using a fake clock.
func TestIdleSweep(t *testing.T) {
	now := time.Unix(5000, 0)
	r := NewRegistry(Config{
		Tracker:   smallTracker(),
		Dir:       t.TempDir(),
		IdleAfter: time.Minute,
		Logger:    quietLogger(),
		Clock:     func() time.Time { return now },
	})
	defer r.Close()
	cold, err := r.GetOrCreate("cold")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Ingest([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	hot, err := r.GetOrCreate("hot")
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if _, err := hot.Ingest([]string{"y"}); err != nil {
		t.Fatal(err)
	}
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep = %d, want 1", n)
	}
	if cold.Resident() || !hot.Resident() {
		t.Fatalf("residency after sweep: cold=%v hot=%v", cold.Resident(), hot.Resident())
	}
}

// TestLegacyRawImageRevive: a tenant directory holding a PR-5 style raw
// tracker image (no TNT1 envelope) still revives; keys render as hex.
func TestLegacyRawImageRevive(t *testing.T) {
	dir := t.TempDir()
	cfg := smallTracker()
	donor := sigstream.NewSharded(cfg, 1)
	donor.Insert(sigstream.HashKey("legacy"))
	donor.EndPeriod() //nolint:errcheck
	img, err := donor.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.WriteFile(filepath.Join(dir, "old"), 0, img); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(Config{Tracker: cfg, Shards: 1, Logger: quietLogger()})
	defer r.Close()
	if err := r.AttachDir(dir); err != nil {
		t.Fatal(err)
	}
	tn, err := r.Get("old")
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err := tn.Query("legacy")
	if err != nil || !ok || e.Frequency != 1 {
		t.Fatalf("Query(legacy) = %+v, %v, %v", e, ok, err)
	}
	top, err := tn.TopK(1)
	if err != nil || len(top) != 1 {
		t.Fatal(err)
	}
	if top[0].Key[:2] != "0x" {
		t.Fatalf("legacy image key = %q, want hex rendering", top[0].Key)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	km := sigstream.NewKeyMap()
	km.Intern("alpha")
	km.Intern("beta")
	img := []byte{1, 2, 3, 4, 5}
	payload := encodeEnvelope(km, img)
	got, gotImg, cut, err := decodeEnvelope(payload)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Fatalf("cut = %d, want 0", cut)
	}
	if !bytes.Equal(gotImg, img) {
		t.Fatalf("image %v, want %v", gotImg, img)
	}
	if got.Len() != 2 {
		t.Fatalf("keys = %d, want 2", got.Len())
	}
	if name := got.Name(sigstream.HashKey("alpha")); name != "alpha" {
		t.Fatalf("Name(alpha) = %q", name)
	}
	// Deterministic encoding.
	if !bytes.Equal(payload, encodeEnvelope(km, img)) {
		t.Fatal("envelope encoding not deterministic")
	}
	// A non-zero cut rides the envelope and round-trips.
	var withCut bytes.Buffer
	if err := encodeEnvelopeTo(&withCut, envelopeNames(km), 42, func(w io.Writer) error {
		_, err := w.Write(img)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, cut, err = decodeEnvelope(withCut.Bytes()); err != nil || cut != 42 {
		t.Fatalf("cut round-trip = %d, %v, want 42", cut, err)
	}
	// A TNT1 payload (pre-WAL) still decodes, with cut 0.
	legacy := append([]byte(envMagic), payload[12:]...)
	if got, gotImg, cut, err = decodeEnvelope(legacy); err != nil ||
		cut != 0 || got.Len() != 2 || !bytes.Equal(gotImg, img) {
		t.Fatalf("TNT1 decode = %d keys, cut %d, %v", got.Len(), cut, err)
	}
	// Corruption is refused, not mis-sliced.
	bad := append([]byte{}, payload...)
	bad[12] = 0xff // implausible key count under a valid magic
	bad[13], bad[14], bad[15] = 0xff, 0xff, 0xff
	if _, _, _, err := decodeEnvelope(bad); err == nil {
		t.Fatal("corrupt envelope decoded")
	}
	truncated := payload[:18]
	if _, _, err := decodeEnvelopeSafe(truncated); err == nil {
		t.Fatal("truncated envelope decoded")
	}
}

// decodeEnvelopeSafe guards short payloads that fall below the legacy
// threshold (treated as raw images, which then fail tracker decode — the
// error surfaces there instead).
func decodeEnvelopeSafe(p []byte) (*sigstream.KeyMap, []byte, error) {
	km, img, _, err := decodeEnvelope(p)
	if err != nil {
		return nil, nil, err
	}
	if len(img) < 8 {
		return nil, nil, errors.New("short image")
	}
	return km, img, nil
}

func TestGeometryGate(t *testing.T) {
	r := NewRegistry(Config{Tracker: smallTracker(), Shards: 1, Logger: quietLogger()})
	defer r.Close()
	tn, err := r.GetOrCreate("g")
	if err != nil {
		t.Fatal(err)
	}
	donor := sigstream.NewSharded(sigstream.Config{MemoryBytes: 1 << 16}, 2)
	img, err := donor.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var ge *GeometryError
	if err := tn.RestoreImage(img); !errors.As(err, &ge) {
		t.Fatalf("RestoreImage mismatched geometry = %v, want GeometryError", err)
	}
	// A matching image installs cleanly.
	match := sigstream.NewSharded(smallTracker(), 1)
	match.Insert(sigstream.HashKey("ok"))
	img2, err := match.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.RestoreImage(img2); err != nil {
		t.Fatal(err)
	}
	if e, ok, _ := tn.Query("ok"); !ok || e.Frequency != 1 {
		t.Fatalf("restored state missing: %+v, %v", e, ok)
	}
}
