// Package tenant multiplexes many independent sigstream trackers behind
// one process: a registry of lazily-created, namespace-keyed tenants
// governed by a global memory budget. Each tenant owns a concurrency-safe
// sharded tracker and a key map; when the budget fills, the
// least-recently-used tenant is spilled — snapshotted to a tenant-labelled
// directory under internal/snapshot's crash discipline and freed — and
// transparently revived, bit-identical, on its next touch. Per-tenant
// token-bucket rate limits bound any one tenant's ingest rate so a noisy
// namespace cannot starve the rest; the HTTP layer maps a quota denial to
// 429 + Retry-After, the same contract as the pipeline load-shed gate.
//
// The reserved default tenant is pinned: always resident, excluded from
// budget and quota, and optionally fronted by an asynchronous ingest
// pipeline — it carries the exact single-tenant serving semantics the
// server had before namespaces existed, so legacy un-namespaced routes
// keep their behavior.
package tenant

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sigstream"
	"sigstream/internal/snapshot"
	"sigstream/internal/wal"
)

// DefaultNamespace is the reserved namespace legacy un-namespaced routes
// serve; the server pins it at startup and it cannot be deleted.
const DefaultNamespace = "default"

// ValidNamespace reports whether ns is a legal tenant namespace: 1–64
// characters of lowercase letters, digits, '.', '_' or '-', starting with
// a letter or digit. The charset is path-safe by construction — a
// namespace is also a snapshot directory name — and the leading-alnum
// rule keeps dot-names like ".." unrepresentable.
func ValidNamespace(ns string) bool {
	if len(ns) == 0 || len(ns) > 64 {
		return false
	}
	for i := 0; i < len(ns); i++ {
		c := ns[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// AutoSize prices each tenant's tracker from workload expectations
// instead of a fixed byte count, via sigstream.SuggestMemoryBytes.
type AutoSize struct {
	// Workload describes one tenant's expected stream.
	Workload sigstream.Workload
	// K is the top-k size the budget must answer correctly.
	K int
	// TargetCorrectRate is the correct-rate lower bound to size for.
	TargetCorrectRate float64
}

// Config tunes a Registry. The zero value is usable: unlimited tenants,
// no budget, no quotas, no durability.
type Config struct {
	// Tracker is the per-tenant tracker configuration (zero fields take
	// sigstream's defaults). AutoSize, when set, overrides
	// Tracker.MemoryBytes.
	Tracker sigstream.Config
	// Shards is each tenant's tracker shard count (0 selects GOMAXPROCS).
	Shards int
	// AutoSize, when non-nil, sizes Tracker.MemoryBytes from workload
	// expectations via sigstream.SuggestMemoryBytes.
	AutoSize *AutoSize
	// BudgetBytes caps the summed tracker budgets of resident non-pinned
	// tenants; 0 means uncapped. When the cap is hit the registry spills
	// the least-recently-used tenant (with Dir set) or refuses residency
	// with ErrBudget (without).
	BudgetBytes int64
	// MaxTenants caps the number of namespaces, resident or not; 0 means
	// uncapped.
	MaxTenants int
	// QuotaPerSec is each non-pinned tenant's sustained ingest rate in
	// keys per second; 0 disables quotas.
	QuotaPerSec float64
	// QuotaBurst is the token-bucket depth in keys (default: QuotaPerSec
	// rounded up, minimum 1).
	QuotaBurst int
	// IdleAfter spills tenants untouched for this long on each sweep; 0
	// disables idle spilling.
	IdleAfter time.Duration
	// Dir is the snapshot base directory: each tenant persists under
	// Dir/<namespace>/. Empty disables durability and spilling.
	Dir string
	// WALDir is the write-ahead log base directory: each tenant logs
	// accepted mutations under WALDir/<namespace>/ and acknowledges only
	// after the record is fsynced. Empty disables the WAL. Without Dir the
	// log is replayed whole on every recovery and never truncated — pair
	// both for bounded disk.
	WALDir string
	// WALSyncInterval is the WAL group-commit window: ≤ 0 fsyncs every
	// append inline; positive coalesces concurrent appends into one fsync
	// taken at most this long after the first waiter arrived.
	WALSyncInterval time.Duration
	// WALSegmentBytes is the WAL segment rotation threshold (0 means
	// wal.DefaultSegmentBytes).
	WALSegmentBytes int64
	// Retain is how many snapshots each tenant keeps (default
	// snapshot.DefaultRetain).
	Retain int
	// Logger receives spill/revive/save events (default slog.Default()).
	Logger *slog.Logger
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// RegistryStats is a point-in-time summary of the whole registry, the
// substance behind the /v1/tenants listing header and /metrics gauges.
type RegistryStats struct {
	// Tenants is the number of known namespaces, resident or not.
	Tenants int
	// Resident is the number of tenants currently in memory.
	Resident int
	// ResidentBytes is the summed tracker budgets of resident non-pinned
	// tenants.
	ResidentBytes int64
	// BudgetBytes is the configured global budget (0 = uncapped).
	BudgetBytes int64
	// CostPerTenant is one tenant's priced tracker budget.
	CostPerTenant int64
	// Capacity is how many non-pinned tenants fit the budget at once
	// (0 = unlimited).
	Capacity int
	// Spills counts resident→disk transitions across all tenants.
	Spills uint64
	// Revives counts disk→resident transitions across all tenants.
	Revives uint64
	// QuotaDenials counts quota-denied ingest batches across all tenants.
	QuotaDenials uint64
	// Saves counts successful snapshot writes across current tenants.
	Saves uint64
	// SaveErrors counts failed snapshot attempts across current tenants.
	SaveErrors uint64
}

// Info is one tenant's row in a /v1/tenants listing. It is assembled
// from atomics only, so listing never revives a spilled tenant.
type Info struct {
	// Namespace is the tenant's namespace.
	Namespace string
	// Pinned reports whether the tenant is pinned.
	Pinned bool
	// Resident reports whether the tracker is currently in memory.
	Resident bool
	// Arrivals is the number of recorded arrivals.
	Arrivals uint64
	// Periods is the number of period boundaries crossed.
	Periods uint64
	// Spills counts resident→disk transitions.
	Spills uint64
	// Revives counts disk→resident transitions.
	Revives uint64
	// QuotaDenials counts quota-denied ingest batches.
	QuotaDenials uint64
	// Dirty reports un-snapshotted state in memory.
	Dirty bool
	// LastTouchUnixNano is when the tenant last served an operation.
	LastTouchUnixNano int64
	// LastSaveUnix is the Unix time of the newest successful snapshot.
	LastSaveUnix int64
}

// PinOptions configures a pinned tenant: its own tracker geometry
// (independent of the registry's per-tenant configuration) and an
// optional asynchronous ingest pipeline with a load-shed gate.
type PinOptions struct {
	// Tracker is the pinned tenant's tracker configuration.
	Tracker sigstream.Config
	// Shards is the pinned tenant's shard count (0 selects GOMAXPROCS).
	Shards int
	// Pipeline routes the tenant's ingest through a sigstream.Pipeline.
	Pipeline bool
	// PipelineOptions tunes the pipeline when Pipeline is set.
	PipelineOptions sigstream.PipelineOptions
	// ShedHighWater is the load-shed threshold as a fraction of ring
	// capacity (≤0 disables shedding).
	ShedHighWater float64
}

// Registry owns every tenant in the process. All methods are safe for
// concurrent use.
type Registry struct {
	cfg        Config
	cost       int64
	quotaBurst int
	logger     *slog.Logger
	clock      func() time.Time

	// mu guards the tenant map, the residency accounting and the closed
	// flag. Lock order: Tenant.mu before Registry.mu, never the reverse —
	// paths that need both collect tenant pointers under mu, release it,
	// then lock tenants individually.
	mu            sync.Mutex
	tenants       map[string]*Tenant
	residentBytes int64
	closed        bool

	spills, revives, quotaDenied atomic.Uint64

	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	closeOnce sync.Once
	closeErr  error
}

// NewRegistry builds a Registry. The per-tenant memory cost is priced
// once, from a probe tracker of the configured geometry, so budget
// accounting is exact multiples of what each resident tenant really
// holds. NewRegistry panics if cfg.Tracker is invalid (pre-check
// untrusted configurations with sigstream's Config.Validate).
func NewRegistry(cfg Config) *Registry {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Retain <= 0 {
		cfg.Retain = snapshot.DefaultRetain
	}
	if a := cfg.AutoSize; a != nil {
		if b := sigstream.SuggestMemoryBytes(a.Workload, a.K, a.TargetCorrectRate); b > 0 {
			cfg.Tracker.MemoryBytes = b
		}
	}
	burst := cfg.QuotaBurst
	if burst <= 0 && cfg.QuotaPerSec > 0 {
		burst = int(cfg.QuotaPerSec + 0.999)
	}
	if burst < 1 {
		burst = 1
	}
	probe := sigstream.NewSharded(cfg.Tracker, cfg.Shards)
	r := &Registry{
		cfg:        cfg,
		cost:       int64(probe.MemoryBytes()),
		quotaBurst: burst,
		logger:     cfg.Logger,
		clock:      cfg.Clock,
		tenants:    make(map[string]*Tenant),
	}
	if cfg.WALDir != "" {
		// Register every namespace that left a log behind, so its tail
		// replays on first touch instead of lying orphaned — the WAL
		// counterpart of AttachDir's spilled-tenant scan. The default
		// namespace is pinned later and recovers its own log then.
		entries, err := os.ReadDir(cfg.WALDir)
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			r.logger.Warn("tenant: cannot scan wal dir", "dir", cfg.WALDir, "err", err)
		}
		for _, e := range entries {
			if e.IsDir() && ValidNamespace(e.Name()) && e.Name() != DefaultNamespace {
				r.newTenantLocked(e.Name())
			}
		}
	}
	return r
}

// baseDir reports the snapshot base directory ("" = no durability).
func (r *Registry) baseDir() string {
	r.mu.Lock()
	d := r.cfg.Dir
	r.mu.Unlock()
	return d
}

// walBase reports the write-ahead log base directory ("" = no WAL).
// Unlike Dir (mutated by AttachDir), the WAL configuration is immutable
// after NewRegistry, so no lock is needed — which also lets Pin call it
// while holding mu.
func (r *Registry) walBase() string {
	return r.cfg.WALDir
}

// walOptions assembles one tenant log's options from the (immutable) WAL
// configuration.
func (r *Registry) walOptions(dir string) wal.Options {
	return wal.Options{
		Dir:          dir,
		SyncInterval: r.cfg.WALSyncInterval,
		SegmentBytes: r.cfg.WALSegmentBytes,
		Logger:       r.logger,
	}
}

// retain reports the per-tenant snapshot retention count.
func (r *Registry) retain() int {
	r.mu.Lock()
	n := r.cfg.Retain
	r.mu.Unlock()
	return n
}

// SetRetain changes how many snapshots each tenant keeps; a non-positive
// count restores snapshot.DefaultRetain. Call before AttachDir so every
// prune uses the configured count.
func (r *Registry) SetRetain(n int) {
	if n <= 0 {
		n = snapshot.DefaultRetain
	}
	r.mu.Lock()
	r.cfg.Retain = n
	r.mu.Unlock()
}

// CostPerTenant reports one tenant's priced tracker budget in bytes.
func (r *Registry) CostPerTenant() int64 { return r.cost }

// newTenantLocked registers a fresh, non-resident tenant. Caller holds mu.
func (r *Registry) newTenantLocked(ns string) *Tenant {
	t := &Tenant{ns: ns, reg: r}
	t.lastTouch.Store(r.clock().UnixNano())
	r.tenants[ns] = t
	return t
}

// Get returns an existing tenant, ErrNotFound otherwise.
func (r *Registry) Get(ns string) (*Tenant, error) {
	if !ValidNamespace(ns) {
		return nil, ErrBadNamespace
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tenants[ns]; ok {
		return t, nil
	}
	return nil, ErrNotFound
}

// GetOrCreate returns the named tenant, registering it first if new.
// Creation is cheap — no tracker is built until the first operation
// brings the tenant resident.
func (r *Registry) GetOrCreate(ns string) (*Tenant, error) {
	if !ValidNamespace(ns) {
		return nil, ErrBadNamespace
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if t, ok := r.tenants[ns]; ok {
		return t, nil
	}
	if r.cfg.MaxTenants > 0 && len(r.tenants) >= r.cfg.MaxTenants {
		return nil, ErrTooManyTenants
	}
	return r.newTenantLocked(ns), nil
}

// Pin registers a pinned tenant: always resident, outside the budget,
// quota and idle sweep, with its own tracker geometry and optional ingest
// pipeline. The server pins DefaultNamespace at startup so legacy routes
// keep single-tenant semantics. Pinning an existing namespace is an
// error.
func (r *Registry) Pin(ns string, opts PinOptions) (*Tenant, error) {
	if !ValidNamespace(ns) {
		return nil, ErrBadNamespace
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if _, ok := r.tenants[ns]; ok {
		return nil, fmt.Errorf("tenant: namespace %q already exists", ns)
	}
	t := &Tenant{ns: ns, reg: r, pinned: true, pin: opts}
	t.tracker = sigstream.NewSharded(opts.Tracker, opts.Shards)
	t.keys = sigstream.NewKeyMap()
	if r.cfg.WALDir != "" {
		// Open the namespace's log and replay it whole, so a pinned
		// tenant killed before its first snapshot still comes back with
		// every acknowledged batch. AttachDir's recoverPinned, when
		// durability is layered on later, rebuilds from the snapshot and
		// replays only the tail.
		l, err := t.openWAL()
		if err != nil {
			return nil, err
		}
		replayed, n, err := t.replayWAL(l, 0, t.tracker, t.keys)
		if err != nil {
			_ = l.Close()
			return nil, err
		}
		t.tracker = replayed
		t.wal = l
		st := replayed.Stats()
		t.arrivals.Store(st.Arrivals)
		t.periods.Store(st.Periods)
		if n > 0 {
			t.lastRecovery = fmt.Sprintf("replayed %d wal records", n)
			r.logger.Info("tenant: replayed wal", "tenant", ns, "records", n)
		}
	}
	if opts.Pipeline {
		t.pipeline = t.tracker.Pipeline(opts.PipelineOptions)
		if opts.ShedHighWater > 0 {
			t.shed = max(1, int(opts.ShedHighWater*float64(t.pipeline.RingCapacity())))
		}
	}
	t.resident.Store(true)
	t.lastTouch.Store(r.clock().UnixNano())
	r.tenants[ns] = t
	return t, nil
}

// Delete removes a tenant: its tracker is freed, its snapshot directory
// deleted, and its namespace forgotten. Pinned tenants cannot be deleted.
func (r *Registry) Delete(ns string) error {
	t, err := r.Get(ns)
	if err != nil {
		return err
	}
	if t.pinned {
		return ErrPinned
	}
	t.mu.Lock()
	if t.deleted.Load() {
		t.mu.Unlock()
		return ErrNotFound
	}
	t.deleted.Store(true)
	wasResident := t.resident.Load()
	t.closeWAL()
	t.tracker = nil
	t.keysMu.Lock()
	t.keys = nil
	t.keysMu.Unlock()
	t.resident.Store(false)
	t.mu.Unlock()
	if wasResident {
		r.release()
	}
	r.mu.Lock()
	if cur, ok := r.tenants[ns]; ok && cur == t {
		delete(r.tenants, ns)
	}
	r.mu.Unlock()
	if base := r.baseDir(); base != "" {
		if err := os.RemoveAll(filepath.Join(base, ns)); err != nil {
			r.logger.Warn("tenant: delete directory failed", "tenant", ns, "err", err)
		}
	}
	if base := r.walBase(); base != "" {
		if err := os.RemoveAll(filepath.Join(base, ns)); err != nil {
			r.logger.Warn("tenant: delete wal directory failed", "tenant", ns, "err", err)
		}
	}
	return nil
}

// snapshotTenants copies the current tenant set out from under the lock,
// so per-tenant work never nests Registry.mu inside Tenant.mu.
func (r *Registry) snapshotTenants() []*Tenant {
	r.mu.Lock()
	ts := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		ts = append(ts, t)
	}
	r.mu.Unlock()
	return ts
}

// List reports every tenant's Info, sorted by namespace. It reads
// atomics only — listing tenants never revives a spilled one.
func (r *Registry) List() []Info {
	ts := r.snapshotTenants()
	out := make([]Info, 0, len(ts))
	for _, t := range ts {
		if t.deleted.Load() {
			continue
		}
		out = append(out, Info{
			Namespace:         t.ns,
			Pinned:            t.pinned,
			Resident:          t.resident.Load(),
			Arrivals:          t.arrivals.Load(),
			Periods:           t.periods.Load(),
			Spills:            t.spillCount.Load(),
			Revives:           t.reviveCount.Load(),
			QuotaDenials:      t.quotaDenials.Load(),
			Dirty:             t.dirty.Load(),
			LastTouchUnixNano: t.lastTouch.Load(),
			LastSaveUnix:      t.lastSaveUnix.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Namespace < out[j].Namespace })
	return out
}

// Stats summarizes the registry.
func (r *Registry) Stats() RegistryStats {
	ts := r.snapshotTenants()
	r.mu.Lock()
	st := RegistryStats{
		Tenants:       len(r.tenants),
		ResidentBytes: r.residentBytes,
		BudgetBytes:   r.cfg.BudgetBytes,
		CostPerTenant: r.cost,
		Spills:        r.spills.Load(),
		Revives:       r.revives.Load(),
		QuotaDenials:  r.quotaDenied.Load(),
	}
	r.mu.Unlock()
	if st.BudgetBytes > 0 && r.cost > 0 {
		st.Capacity = int(st.BudgetBytes / r.cost)
	}
	for _, t := range ts {
		if t.resident.Load() && !t.deleted.Load() {
			st.Resident++
		}
		st.Saves += t.saveCount.Load()
		st.SaveErrors += t.saveErrCount.Load()
	}
	return st
}

// reserve charges one tenant's cost against the budget, spilling the
// least-recently-used resident tenants until the charge fits. Pinned
// tenants are outside the budget and never reserve. With no spill
// directory an over-budget charge is refused with ErrBudget; with one,
// eviction only fails if every resident tenant is pinned, the requester,
// or un-spillable — then the registry overcommits (logged) rather than
// deadlock.
func (r *Registry) reserve(t *Tenant) error {
	if t.pinned {
		return nil
	}
	failed := make(map[*Tenant]bool)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.residentBytes += r.cost
	for r.cfg.BudgetBytes > 0 && r.residentBytes > r.cfg.BudgetBytes {
		if r.cfg.Dir == "" {
			r.residentBytes -= r.cost
			r.mu.Unlock()
			return ErrBudget
		}
		victim := r.lruVictimLocked(t, failed)
		if victim == nil {
			r.logger.Warn("tenant: budget overcommitted, no spillable tenant",
				"resident_bytes", r.residentBytes, "budget_bytes", r.cfg.BudgetBytes)
			break
		}
		r.mu.Unlock()
		if _, err := victim.Spill(); err != nil {
			r.logger.Warn("tenant: eviction spill failed",
				"tenant", victim.ns, "err", err)
			failed[victim] = true
		}
		r.mu.Lock()
	}
	r.mu.Unlock()
	return nil
}

// release returns one tenant's cost to the budget after a spill or
// delete.
func (r *Registry) release() {
	r.mu.Lock()
	r.residentBytes -= r.cost
	r.mu.Unlock()
}

// lruVictimLocked picks the resident, non-pinned tenant with the oldest
// touch time, skipping the requester and tenants whose spill already
// failed. Caller holds mu.
func (r *Registry) lruVictimLocked(requester *Tenant, skip map[*Tenant]bool) *Tenant {
	var victim *Tenant
	var oldest int64
	for _, t := range r.tenants {
		if t.pinned || t == requester || skip[t] ||
			!t.resident.Load() || t.deleted.Load() {
			continue
		}
		if touch := t.lastTouch.Load(); victim == nil || touch < oldest {
			victim, oldest = t, touch
		}
	}
	return victim
}

// AttachDir wires durability into the registry after construction: set
// the snapshot base directory, register every namespace already spilled
// there (their trackers revive lazily on first touch), and recover each
// pinned tenant's newest valid snapshot now — including, for the default
// tenant, legacy root-level snapshot files from before the tenant
// layout. Call it once, before Start and before serving traffic.
func (r *Registry) AttachDir(dir string) error {
	if dir == "" {
		return errors.New("tenant: snapshot dir required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	r.mu.Lock()
	r.cfg.Dir = dir
	var pinned []*Tenant
	for _, t := range r.tenants {
		if t.pinned {
			pinned = append(pinned, t)
		}
	}
	r.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("tenant: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !ValidNamespace(e.Name()) {
			continue
		}
		if _, err := r.GetOrCreate(e.Name()); err != nil {
			r.logger.Warn("tenant: cannot register spilled tenant",
				"tenant", e.Name(), "err", err)
		}
	}
	for _, t := range pinned {
		if err := t.recoverPinned(dir); err != nil {
			return err
		}
	}
	return nil
}

// Start launches the registry's background goroutine: every interval it
// snapshots dirty resident tenants and spills those idle past
// Config.IdleAfter. A non-positive interval falls back to IdleAfter;
// with neither set Start is a no-op. Call at most once, before Close.
func (r *Registry) Start(interval time.Duration) {
	if interval <= 0 {
		interval = r.cfg.IdleAfter
	}
	if interval <= 0 {
		return
	}
	r.startOnce.Do(func() {
		r.stop = make(chan struct{})
		r.done = make(chan struct{})
		go func() {
			defer close(r.done)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := r.SaveDirty(); err != nil {
						r.logger.Error("tenant: periodic save failed", "err", err)
					}
					r.Sweep()
				case <-r.stop:
					return
				}
			}
		}()
	})
}

// SaveDirty snapshots every resident tenant with un-persisted state.
func (r *Registry) SaveDirty() error {
	var errs []error
	for _, t := range r.snapshotTenants() {
		if !t.resident.Load() || t.deleted.Load() || !t.dirty.Load() {
			continue
		}
		if _, err := t.Save(); err != nil && !errors.Is(err, ErrNotFound) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// SaveAll forces one snapshot of every resident tenant, dirty or not —
// the graceful-drain final checkpoint.
func (r *Registry) SaveAll() error {
	var errs []error
	for _, t := range r.snapshotTenants() {
		if !t.resident.Load() || t.deleted.Load() {
			continue
		}
		if _, err := t.Save(); err != nil && !errors.Is(err, ErrNotFound) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Sweep spills every non-pinned tenant untouched for Config.IdleAfter,
// reporting how many it spilled. A zero IdleAfter or missing spill
// directory makes it a no-op.
func (r *Registry) Sweep() int {
	if r.cfg.IdleAfter <= 0 || r.baseDir() == "" {
		return 0
	}
	cutoff := r.clock().Add(-r.cfg.IdleAfter).UnixNano()
	n := 0
	for _, t := range r.snapshotTenants() {
		if t.pinned || !t.resident.Load() || t.deleted.Load() {
			continue
		}
		if t.lastTouch.Load() > cutoff {
			continue
		}
		spilled, err := t.Spill()
		if err != nil {
			r.logger.Warn("tenant: idle spill failed", "tenant", t.ns, "err", err)
			continue
		}
		if spilled {
			n++
		}
	}
	return n
}

// Close stops the background goroutine, takes one final snapshot of
// every resident tenant, closes pinned pipelines, and rejects further
// residency changes. Idempotent; every call reports the first close's
// outcome.
func (r *Registry) Close() error {
	r.closeOnce.Do(func() {
		if r.stop != nil {
			close(r.stop)
			<-r.done
		}
		err := r.SaveAll()
		r.mu.Lock()
		r.closed = true
		var pinned []*Tenant
		for _, t := range r.tenants {
			if t.pinned {
				pinned = append(pinned, t)
			}
		}
		r.mu.Unlock()
		for _, t := range pinned {
			t.mu.RLock()
			p := t.pipeline
			t.mu.RUnlock()
			if p != nil {
				err = errors.Join(err, p.Close())
			}
		}
		// Every log gets a final fsync and close after the last save;
		// whatever outlived the final snapshot replays on next boot.
		for _, t := range r.snapshotTenants() {
			t.mu.Lock()
			t.closeWAL()
			t.mu.Unlock()
		}
		r.closeErr = err
	})
	return r.closeErr
}
