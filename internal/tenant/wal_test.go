package tenant

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"sigstream"
	"sigstream/internal/fault"
	"sigstream/internal/wal"
)

// walConfig is a registry configuration with snapshots and a WAL, inline
// fsync so tests run deterministically fast.
func walConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Tracker: smallTracker(),
		Shards:  1,
		Dir:     filepath.Join(t.TempDir(), "snap"),
		WALDir:  filepath.Join(t.TempDir(), "wal"),
		Logger:  quietLogger(),
	}
}

// feed ingests batches sequentially and fails the test on any error.
func feed(t *testing.T, tn *Tenant, batches [][]string) {
	t.Helper()
	for i, b := range batches {
		if _, err := tn.Ingest(b); err != nil {
			t.Fatalf("Ingest batch %d: %v", i, err)
		}
	}
}

// topKeys flattens a ranking to its ordered keys for compact compares.
func topKeys(t *testing.T, tn *Tenant, k int) []string {
	t.Helper()
	top, err := tn.TopK(k)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	keys := make([]string, len(top))
	for i, e := range top {
		keys[i] = e.Key
	}
	return keys
}

// oracleTopK replays a workload into a fresh tracker of the registry's
// geometry and returns its exact TopK — the state a correct recovery must
// reproduce bit for bit.
func oracleTopK(cfg Config, k int, workload func(tr *sigstream.Sharded, km *sigstream.KeyMap)) []Entry {
	tr := sigstream.NewSharded(cfg.Tracker, cfg.Shards)
	km := sigstream.NewKeyMap()
	workload(tr, km)
	es := tr.TopK(k)
	out := make([]Entry, len(es))
	for i, e := range es {
		out[i] = Entry{Key: km.Name(e.Item), Entry: e}
	}
	return out
}

// insert interns and inserts one batch, mirroring the tenant ingest path.
func insert(tr *sigstream.Sharded, km *sigstream.KeyMap, keys []string) {
	items := make([]sigstream.Item, len(keys))
	for i, k := range keys {
		items[i] = km.Intern(k)
	}
	tr.InsertBatch(items)
}

func TestWALReplayAfterAbandon(t *testing.T) {
	cfg := walConfig(t)
	r := NewRegistry(cfg)
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tn, [][]string{{"a", "b", "a"}, {"c", "a"}, {"b", "b", "d"}})
	if _, err := tn.EndPeriod(); err != nil {
		t.Fatal(err)
	}
	feed(t, tn, [][]string{{"e", "a", "a"}})
	// Abandon the registry without Close — the in-process kill -9
	// analogue. Every ingest was acked, so every record is fsynced.
	r2 := NewRegistry(cfg)
	defer r2.Close()
	tn2, err := r2.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopK(cfg, 10, func(tr *sigstream.Sharded, km *sigstream.KeyMap) {
		insert(tr, km, []string{"a", "b", "a"})
		insert(tr, km, []string{"c", "a"})
		insert(tr, km, []string{"b", "b", "d"})
		tr.EndPeriod()
		insert(tr, km, []string{"e", "a", "a"})
	})
	got, err := tn2.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed TopK:\n got %+v\nwant %+v", got, want)
	}
	if a := tn2.Arrivals(); a != 11 {
		t.Fatalf("Arrivals = %d, want 11", a)
	}
	if p := tn2.Periods(); p != 1 {
		t.Fatalf("Periods = %d, want 1", p)
	}
}

func TestWALSnapshotCutReplaysOnlyTail(t *testing.T) {
	cfg := walConfig(t)
	r := NewRegistry(cfg)
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tn, [][]string{{"pre", "pre"}, {"snap"}})
	if _, err := tn.Save(); err != nil {
		t.Fatal(err)
	}
	feed(t, tn, [][]string{{"post", "pre"}})
	st, ok := tn.WALStats()
	if !ok {
		t.Fatal("no WAL stats on a WAL-enabled tenant")
	}
	if st.Rotations == 0 {
		t.Fatalf("save did not rotate the WAL: %+v", st)
	}
	// Abandon and recover in a second registry; the snapshot covers the
	// first two batches, replay must add exactly the third.
	r2 := NewRegistry(cfg)
	defer r2.Close()
	tn2, err := r2.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	want := oracleTopK(cfg, 10, func(tr *sigstream.Sharded, km *sigstream.KeyMap) {
		insert(tr, km, []string{"pre", "pre"})
		insert(tr, km, []string{"snap"})
		insert(tr, km, []string{"post", "pre"})
	})
	got, err := tn2.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cut replay TopK:\n got %+v\nwant %+v", got, want)
	}
	stats, err := tn2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.LastRecovery == "fresh" || stats.LastRecovery == "" {
		t.Fatalf("recovery = %q, want snapshot + wal tail", stats.LastRecovery)
	}
}

func TestWALSpillReviveReplaysOwnTail(t *testing.T) {
	cfg := walConfig(t)
	r := NewRegistry(cfg)
	defer r.Close()
	a, err := r.GetOrCreate("alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.GetOrCreate("beta")
	if err != nil {
		t.Fatal(err)
	}
	feed(t, a, [][]string{{"x", "x", "y"}})
	feed(t, b, [][]string{{"z"}, {"z", "w"}})
	wantA := topKeys(t, a, 10)
	// Spill alpha (save + close its log), mutate beta, revive alpha: the
	// revive must replay only alpha's tail and reproduce its rankings.
	spilled, err := a.Spill()
	if err != nil || !spilled {
		t.Fatalf("Spill = %v, %v", spilled, err)
	}
	if _, ok := a.WALStats(); ok {
		t.Fatal("spilled tenant still holds an open WAL")
	}
	feed(t, b, [][]string{{"w", "w", "w"}})
	gotA := topKeys(t, a, 10) // revives transparently
	if !reflect.DeepEqual(gotA, wantA) {
		t.Fatalf("revived rankings %v, want %v", gotA, wantA)
	}
	if !a.Resident() {
		t.Fatal("tenant not resident after revive")
	}
	wantB := oracleTopK(cfg, 10, func(tr *sigstream.Sharded, km *sigstream.KeyMap) {
		insert(tr, km, []string{"z"})
		insert(tr, km, []string{"z", "w"})
		insert(tr, km, []string{"w", "w", "w"})
	})
	gotB, err := b.TopK(10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotB, wantB) {
		t.Fatalf("neighbour rankings disturbed:\n got %+v\nwant %+v", gotB, wantB)
	}
}

func TestWALAppendFaultNacksAndSkipsApply(t *testing.T) {
	cfg := walConfig(t)
	r := NewRegistry(cfg)
	defer r.Close()
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tn, [][]string{{"kept"}})
	boom := errors.New("injected append fault")
	deactivate := fault.Activate(fault.WALAppend, func(int) error { return boom })
	_, err = tn.Ingest([]string{"lost"})
	deactivate()
	if !errors.Is(err, boom) {
		t.Fatalf("Ingest under append fault = %v, want injected error", err)
	}
	// The nacked batch must be neither applied now nor replayed later.
	if _, ok, err := tn.Query("lost"); err != nil || ok {
		t.Fatalf("nacked key visible: ok=%v err=%v", ok, err)
	}
	if a := tn.Arrivals(); a != 1 {
		t.Fatalf("Arrivals = %d, want 1", a)
	}
	r2 := NewRegistry(cfg)
	defer r2.Close()
	tn2, err := r2.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tn2.Query("lost"); err != nil || ok {
		t.Fatalf("nacked key replayed: ok=%v err=%v", ok, err)
	}
	if _, ok, err := tn2.Query("kept"); err != nil || !ok {
		t.Fatalf("acked key missing after replay: ok=%v err=%v", ok, err)
	}
}

func TestWALRestoreReplays(t *testing.T) {
	cfg := walConfig(t)
	// Donor state to restore from, same geometry as the tenant's.
	donor := sigstream.NewSharded(cfg.Tracker, cfg.Shards)
	donor.Insert(sigstream.HashKey("donor-key"))
	img, err := donor.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(cfg)
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tn, [][]string{{"overwritten"}})
	if err := tn.RestoreImage(img); err != nil {
		t.Fatal(err)
	}
	feed(t, tn, [][]string{{"after-restore"}})
	want := topKeys(t, tn, 10)
	// Recover from the log alone: replay must apply batch, restore, batch
	// in order — the restore record swaps trackers at its logged position.
	r2 := NewRegistry(cfg)
	defer r2.Close()
	tn2, err := r2.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	if got := topKeys(t, tn2, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("restore replay rankings %v, want %v", got, want)
	}
	if _, ok, err := tn2.Query("overwritten"); err != nil || ok {
		t.Fatalf("pre-restore key survived replay: ok=%v err=%v", ok, err)
	}
}

func TestWALDiskBoundedAcrossSaves(t *testing.T) {
	cfg := walConfig(t)
	cfg.WALSegmentBytes = 256
	r := NewRegistry(cfg)
	defer r.Close()
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	var last wal.Stats
	for cycle := 0; cycle < 6; cycle++ {
		for i := 0; i < 30; i++ {
			feed(t, tn, [][]string{{fmt.Sprintf("cycle-%d-key-%02d", cycle, i)}})
		}
		if _, err := tn.Save(); err != nil {
			t.Fatal(err)
		}
		st, ok := tn.WALStats()
		if !ok {
			t.Fatal("no WAL stats")
		}
		// Retention keeps snapshot.DefaultRetain cuts; segments below the
		// oldest retained cut are deleted, so the on-disk set stays bounded
		// by the retention window no matter how many cycles run.
		if st.Segments > 24 {
			t.Fatalf("cycle %d: %d segments on disk, disk unbounded: %+v",
				cycle, st.Segments, st)
		}
		last = st
	}
	if last.Truncations == 0 {
		t.Fatalf("no segment was ever truncated: %+v", last)
	}
	if last.Rotations < 6 {
		t.Fatalf("Rotations = %d, want at least one per save", last.Rotations)
	}
}

func TestWALWithoutSnapshotsReplaysWhole(t *testing.T) {
	cfg := walConfig(t)
	cfg.Dir = "" // WAL-only durability
	r := NewRegistry(cfg)
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tn, [][]string{{"only", "wal"}, {"only"}})
	want := topKeys(t, tn, 10)
	r2 := NewRegistry(cfg)
	defer r2.Close()
	tn2, err := r2.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	if got := topKeys(t, tn2, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("wal-only replay rankings %v, want %v", got, want)
	}
}

func TestWALDeleteRemovesLog(t *testing.T) {
	cfg := walConfig(t)
	r := NewRegistry(cfg)
	defer r.Close()
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tn, [][]string{{"gone"}})
	if err := r.Delete("acme"); err != nil {
		t.Fatal(err)
	}
	// A fresh registry must not resurrect the deleted tenant's data.
	r2 := NewRegistry(cfg)
	defer r2.Close()
	if _, err := r2.Get("acme"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted tenant re-registered: %v", err)
	}
	tn2, err := r2.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tn2.Query("gone"); err != nil || ok {
		t.Fatalf("deleted tenant's data replayed: ok=%v err=%v", ok, err)
	}
}

func TestWALPinnedDefaultReplay(t *testing.T) {
	cfg := walConfig(t)
	r := NewRegistry(cfg)
	def, err := r.Pin(DefaultNamespace, PinOptions{Tracker: cfg.Tracker, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, def, [][]string{{"pinned", "pinned", "other"}})
	want := topKeys(t, def, 10)
	// New process: Pin replays the default namespace's log from zero.
	r2 := NewRegistry(cfg)
	defer r2.Close()
	def2, err := r2.Pin(DefaultNamespace, PinOptions{Tracker: cfg.Tracker, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := topKeys(t, def2, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("pinned replay rankings %v, want %v", got, want)
	}
	// Layer snapshots on: recoverPinned must rebuild snapshot + tail with
	// the same result, not double-apply.
	if err := r2.AttachDir(cfg.Dir); err != nil {
		t.Fatal(err)
	}
	if got := topKeys(t, def2, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-AttachDir rankings %v, want %v", got, want)
	}
	if a := def2.Arrivals(); a != 3 {
		t.Fatalf("Arrivals = %d, want 3 (double replay?)", a)
	}
}

func TestWALStatsSurface(t *testing.T) {
	cfg := walConfig(t)
	r := NewRegistry(cfg)
	defer r.Close()
	tn, err := r.GetOrCreate("acme")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tn.WALStats(); ok {
		t.Fatal("non-resident tenant reports WAL stats")
	}
	feed(t, tn, [][]string{{"a"}, {"b"}})
	st, ok := tn.WALStats()
	if !ok {
		t.Fatal("resident WAL-enabled tenant reports no stats")
	}
	if st.Appends != 2 || st.Syncs == 0 || st.DiskBytes == 0 {
		t.Fatalf("unexpected WAL stats: %+v", st)
	}
}
