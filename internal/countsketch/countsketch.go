// Package countsketch implements the Count sketch (Charikar, Chen,
// Farach-Colton), the unbiased sketch baseline for frequency estimation
// (paper Section II-A), plus the sketch+min-heap top-k tracker the paper
// evaluates.
//
// The sketch keeps rows of signed counters. Each arrival adds ±1 (a hashed
// sign) to one counter per row; the estimate is the median of the signed
// row readings.
package countsketch

import (
	"fmt"
	"sort"

	"sigstream/internal/hashing"
	"sigstream/internal/stream"
	"sigstream/internal/topk"
)

// CounterBytes is the accounted size of one signed counter.
const CounterBytes = 4

// DefaultRows is the number of rows (the paper sets 3 arrays for all
// sketch-based algorithms).
const DefaultRows = 3

// Sketch is a Count sketch.
type Sketch struct {
	rows     int
	width    int
	counters [][]int32
	hash     []hashing.Bob
	sign     []hashing.Bob
}

// New builds a Count sketch with the given memory budget and row count
// (rows ≤ 0 selects DefaultRows).
func New(memoryBytes, rows int) *Sketch {
	if rows <= 0 {
		rows = DefaultRows
	}
	width := memoryBytes / (CounterBytes * rows)
	if width < 1 {
		width = 1
	}
	s := &Sketch{
		rows:     rows,
		width:    width,
		counters: make([][]int32, rows),
		hash:     make([]hashing.Bob, rows),
		sign:     make([]hashing.Bob, rows),
	}
	for i := 0; i < rows; i++ {
		s.counters[i] = make([]int32, width)
		s.hash[i] = hashing.NewBob(uint32(0x100 + i*0x31))
		s.sign[i] = hashing.NewBob(uint32(0xb00 + i*0x57))
	}
	return s
}

// Width reports the counters per row.
func (s *Sketch) Width() int { return s.width }

// MemoryBytes reports the counter-array footprint.
func (s *Sketch) MemoryBytes() int { return s.rows * s.width * CounterBytes }

// Add records delta arrivals of item.
func (s *Sketch) Add(item stream.Item, delta uint64) {
	for i := 0; i < s.rows; i++ {
		idx := int(s.hash[i].Hash64(item)) % s.width
		if idx < 0 {
			idx += s.width
		}
		if s.sign[i].Hash64(item)&1 == 1 {
			s.counters[i][idx] += int32(delta)
		} else {
			s.counters[i][idx] -= int32(delta)
		}
	}
}

// Estimate returns the median signed estimate, clamped at zero (true
// frequencies are non-negative).
func (s *Sketch) Estimate(item stream.Item) uint64 {
	readings := make([]int32, s.rows)
	for i := 0; i < s.rows; i++ {
		idx := int(s.hash[i].Hash64(item)) % s.width
		if idx < 0 {
			idx += s.width
		}
		v := s.counters[i][idx]
		if s.sign[i].Hash64(item)&1 == 0 {
			v = -v
		}
		readings[i] = v
	}
	sort.Slice(readings, func(a, b int) bool { return readings[a] < readings[b] })
	med := readings[s.rows/2]
	if s.rows%2 == 0 {
		med = (readings[s.rows/2-1] + readings[s.rows/2]) / 2
	}
	if med < 0 {
		return 0
	}
	return uint64(med)
}

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for i := range s.counters {
		row := s.counters[i]
		for j := range row {
			row[j] = 0
		}
	}
}

// Tracker is the paper's Count-sketch top-k tracker: the sketch plus a
// min-heap of size k. It tracks frequency only (significance = α·f).
type Tracker struct {
	sketch *Sketch
	heap   *topk.Heap
	alpha  float64
}

// NewTracker splits memoryBytes between a heap of size k and the sketch.
func NewTracker(memoryBytes, k int, alpha float64) *Tracker {
	heapBytes := k * topk.EntryBytes
	sketchBytes := memoryBytes - heapBytes
	if sketchBytes < CounterBytes*DefaultRows {
		sketchBytes = CounterBytes * DefaultRows
	}
	return &Tracker{
		sketch: New(sketchBytes, DefaultRows),
		heap:   topk.New(k),
		alpha:  alpha,
	}
}

// Insert records one arrival and refreshes the heap.
func (t *Tracker) Insert(item stream.Item) {
	t.sketch.Add(item, 1)
	est := t.alpha * float64(t.sketch.Estimate(item))
	t.heap.Offer(item, est)
}

// EndPeriod is a no-op in frequency mode.
func (t *Tracker) EndPeriod() {}

// Query reports the heap value if tracked, else the sketch estimate.
func (t *Tracker) Query(item stream.Item) (stream.Entry, bool) {
	if v, ok := t.heap.Value(item); ok {
		return stream.Entry{Item: item, Frequency: uint64(v / nonzero(t.alpha)),
			Significance: v}, true
	}
	est := t.sketch.Estimate(item)
	if est == 0 {
		return stream.Entry{}, false
	}
	return stream.Entry{Item: item, Frequency: est,
		Significance: t.alpha * float64(est)}, true
}

// TopK reports the heap's best k items.
func (t *Tracker) TopK(k int) []stream.Entry {
	es := t.heap.TopK(k)
	for i := range es {
		es[i].Frequency = uint64(es[i].Significance / nonzero(t.alpha))
	}
	return es
}

// MemoryBytes reports sketch plus heap footprint.
func (t *Tracker) MemoryBytes() int {
	return t.sketch.MemoryBytes() + t.heap.MemoryBytes()
}

// Name identifies the algorithm.
func (t *Tracker) Name() string { return "Count" }

func nonzero(a float64) float64 {
	if a == 0 {
		return 1
	}
	return a
}

var _ stream.Tracker = (*Tracker)(nil)

// Merge adds other's signed counters into s cell-by-cell. Both sketches
// must have identical geometry; Count sketches over disjoint sub-streams
// merge into the (still unbiased) sketch of the union.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return fmt.Errorf("countsketch: cannot merge nil sketch")
	}
	if s.rows != other.rows || s.width != other.width {
		return fmt.Errorf("countsketch: incompatible merge (%dx%d vs %dx%d)",
			s.rows, s.width, other.rows, other.width)
	}
	for i := range s.counters {
		dst, src := s.counters[i], other.counters[i]
		for j := range dst {
			dst[j] += src[j]
		}
	}
	return nil
}
