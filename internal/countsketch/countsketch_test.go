package countsketch

import (
	"math"
	"math/rand"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestExactWithAmpleWidth(t *testing.T) {
	s := New(1<<20, 3)
	for i := 0; i < 123; i++ {
		s.Add(9, 1)
	}
	if got := s.Estimate(9); got != 123 {
		t.Fatalf("estimate = %d, want 123", got)
	}
}

func TestUnbiasedOnAverage(t *testing.T) {
	// The Count sketch is unbiased: averaged over many hash seeds is not
	// testable here (seeds are fixed), but over many *items* with the same
	// true count, the mean estimate should land near the truth, unlike
	// CM's strictly-upward bias.
	rng := rand.New(rand.NewSource(5))
	s := New(8192, 3)
	const perItem = 20
	const nItems = 2000
	for i := 0; i < nItems; i++ {
		for j := 0; j < perItem; j++ {
			s.Add(stream.Item(i), 1)
		}
	}
	_ = rng
	var sum float64
	for i := 0; i < nItems; i++ {
		sum += float64(s.Estimate(stream.Item(i)))
	}
	mean := sum / nItems
	if math.Abs(mean-perItem) > perItem*0.5 {
		t.Fatalf("mean estimate %.1f far from true %d", mean, perItem)
	}
}

func TestEstimateClampedAtZero(t *testing.T) {
	s := New(16, 3) // heavy collisions; raw medians can go negative
	for i := 0; i < 1000; i++ {
		s.Add(stream.Item(i), 1)
	}
	for i := 0; i < 2000; i++ {
		if s.Estimate(stream.Item(i)) > 1<<40 {
			t.Fatal("estimate looks like wrapped negative")
		}
	}
}

func TestReset(t *testing.T) {
	s := New(1024, 3)
	s.Add(1, 5)
	s.Reset()
	if s.Estimate(1) != 0 {
		t.Fatal("estimate nonzero after Reset")
	}
}

func TestSizing(t *testing.T) {
	s := New(1200, 3)
	if s.Width() != 100 {
		t.Fatalf("width = %d, want 100", s.Width())
	}
	if s.MemoryBytes() != 1200 {
		t.Fatalf("MemoryBytes = %d, want 1200", s.MemoryBytes())
	}
}

func TestTrackerTopKOnZipf(t *testing.T) {
	st := gen.Generate(gen.Config{N: 50000, M: 5000, Periods: 1, Skew: 1.2,
		Head: 100, TailWindowFrac: 1, Seed: 6})
	o := oracle.FromStream(st, stream.Frequent)
	tr := NewTracker(32*1024, 100, 1)
	st.Replay(tr)
	r := metrics.Evaluate(o, tr, 100)
	if r.Precision < 0.5 {
		t.Fatalf("Count tracker precision %.2f, want ≥0.5", r.Precision)
	}
	if tr.Name() != "Count" {
		t.Fatal("wrong name")
	}
}

func TestTrackerQueryMissing(t *testing.T) {
	tr := NewTracker(8*1024, 4, 1)
	if _, ok := tr.Query(424242); ok {
		t.Fatal("item with zero estimate reported present")
	}
}

func BenchmarkInsert(b *testing.B) {
	st := gen.NetworkLike(1<<17, 1)
	tr := NewTracker(64*1024, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(st.Items[i&(1<<17-1)])
	}
}

func TestMergeUnionEqualsSinglePass(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := New(2048, 3)
	b := New(2048, 3)
	whole := New(2048, 3)
	for i := 0; i < 20000; i++ {
		item := stream.Item(rng.Intn(1000))
		whole.Add(item, 1)
		if i%3 == 0 {
			a.Add(item, 1)
		} else {
			b.Add(item, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := stream.Item(0); i < 1000; i++ {
		if a.Estimate(i) != whole.Estimate(i) {
			t.Fatalf("item %d: merged %d != single-pass %d",
				i, a.Estimate(i), whole.Estimate(i))
		}
	}
	if err := a.Merge(New(4096, 3)); err == nil {
		t.Fatal("width mismatch accepted")
	}
}
