package countsketch

import (
	"testing"

	"sigstream/internal/stream"
	"sigstream/internal/trackertest"
)

func TestTrackerContract(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return NewTracker(mem, 50, 1)
	}, trackertest.Options{FrequencyOnly: true})
}
