// Package oracle computes exact ground truth — true frequency, persistency
// and significance for every item in a stream — against which the
// approximate trackers are scored.
package oracle

import (
	"sigstream/internal/stream"
)

// Counts holds an item's exact statistics.
type Counts struct {
	Frequency   uint64
	Persistency uint64
}

// Oracle is an exact (hash-map based) counter. It implements
// stream.Tracker so it can be driven by stream.Replay like any other
// structure, but it is not memory-bounded.
type Oracle struct {
	weights stream.Weights
	counts  map[stream.Item]*Counts
	// seenThisPeriod tracks first appearances within the current period.
	seenThisPeriod map[stream.Item]struct{}
}

// New returns an exact oracle scoring significance with the given weights.
func New(w stream.Weights) *Oracle {
	return &Oracle{
		weights:        w,
		counts:         make(map[stream.Item]*Counts),
		seenThisPeriod: make(map[stream.Item]struct{}),
	}
}

// FromStream replays s into a fresh oracle and returns it.
func FromStream(s *stream.Stream, w stream.Weights) *Oracle {
	o := New(w)
	s.Replay(o)
	return o
}

// Insert records one arrival.
func (o *Oracle) Insert(item stream.Item) {
	c := o.counts[item]
	if c == nil {
		c = &Counts{}
		o.counts[item] = c
	}
	c.Frequency++
	if _, seen := o.seenThisPeriod[item]; !seen {
		o.seenThisPeriod[item] = struct{}{}
		c.Persistency++
	}
}

// EndPeriod closes the current period.
func (o *Oracle) EndPeriod() {
	// Persistency was credited eagerly on first appearance, so the boundary
	// only needs to reset the per-period set.
	o.seenThisPeriod = make(map[stream.Item]struct{}, len(o.seenThisPeriod))
}

// Query returns the exact entry for item.
func (o *Oracle) Query(item stream.Item) (stream.Entry, bool) {
	c, ok := o.counts[item]
	if !ok {
		return stream.Entry{}, false
	}
	return o.entry(item, c), true
}

// TopK returns the exact top-k significant items.
func (o *Oracle) TopK(k int) []stream.Entry {
	es := make([]stream.Entry, 0, len(o.counts))
	for item, c := range o.counts {
		es = append(es, o.entry(item, c))
	}
	return stream.TopKFromEntries(es, k)
}

// All returns exact entries for every distinct item, sorted by significance.
func (o *Oracle) All() []stream.Entry {
	return o.TopK(len(o.counts))
}

// Distinct reports the number of distinct items observed.
func (o *Oracle) Distinct() int { return len(o.counts) }

// Weights returns the significance weights the oracle scores with.
func (o *Oracle) Weights() stream.Weights { return o.weights }

// MemoryBytes reports 0: the oracle is unbounded and excluded from
// memory-budget comparisons.
func (o *Oracle) MemoryBytes() int { return 0 }

// Name identifies the oracle in experiment output.
func (o *Oracle) Name() string { return "Oracle" }

func (o *Oracle) entry(item stream.Item, c *Counts) stream.Entry {
	return stream.Entry{
		Item:         item,
		Frequency:    c.Frequency,
		Persistency:  c.Persistency,
		Significance: o.weights.Significance(c.Frequency, c.Persistency),
	}
}

var _ stream.Tracker = (*Oracle)(nil)
