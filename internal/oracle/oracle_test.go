package oracle

import (
	"testing"

	"sigstream/internal/stream"
)

func TestOracleFrequencyAndPersistency(t *testing.T) {
	o := New(stream.Balanced)
	// Period 1: a a b. Period 2: a c. Period 3: c c c.
	for _, it := range []stream.Item{1, 1, 2} {
		o.Insert(it)
	}
	o.EndPeriod()
	for _, it := range []stream.Item{1, 3} {
		o.Insert(it)
	}
	o.EndPeriod()
	for _, it := range []stream.Item{3, 3, 3} {
		o.Insert(it)
	}
	o.EndPeriod()

	cases := []struct {
		item    stream.Item
		f, p    uint64
		present bool
	}{
		{1, 3, 2, true},
		{2, 1, 1, true},
		{3, 4, 2, true},
		{4, 0, 0, false},
	}
	for _, c := range cases {
		e, ok := o.Query(c.item)
		if ok != c.present {
			t.Fatalf("item %d: present=%v, want %v", c.item, ok, c.present)
		}
		if !ok {
			continue
		}
		if e.Frequency != c.f || e.Persistency != c.p {
			t.Fatalf("item %d: f=%d p=%d, want f=%d p=%d", c.item, e.Frequency, e.Persistency, c.f, c.p)
		}
		want := stream.Balanced.Significance(c.f, c.p)
		if e.Significance != want {
			t.Fatalf("item %d: significance %v, want %v", c.item, e.Significance, want)
		}
	}
}

func TestOraclePersistencyCountsOncePerPeriod(t *testing.T) {
	o := New(stream.Persistent)
	for i := 0; i < 100; i++ {
		o.Insert(7)
	}
	o.EndPeriod()
	e, _ := o.Query(7)
	if e.Persistency != 1 {
		t.Fatalf("persistency %d after one period of many arrivals, want 1", e.Persistency)
	}
}

func TestOracleTopK(t *testing.T) {
	o := New(stream.Frequent)
	for i := 0; i < 5; i++ {
		o.Insert(10)
	}
	for i := 0; i < 3; i++ {
		o.Insert(20)
	}
	o.Insert(30)
	o.EndPeriod()
	top := o.TopK(2)
	if len(top) != 2 || top[0].Item != 10 || top[1].Item != 20 {
		t.Fatalf("TopK wrong: %+v", top)
	}
	all := o.All()
	if len(all) != 3 {
		t.Fatalf("All returned %d entries, want 3", len(all))
	}
}

func TestFromStream(t *testing.T) {
	s := &stream.Stream{Items: []stream.Item{1, 1, 2, 2, 1, 3}, Periods: 3}
	o := FromStream(s, stream.Balanced)
	// Periods of 2 items: [1 1] [2 2] [1 3].
	e, _ := o.Query(1)
	if e.Frequency != 3 || e.Persistency != 2 {
		t.Fatalf("item 1: f=%d p=%d, want 3/2", e.Frequency, e.Persistency)
	}
	e, _ = o.Query(3)
	if e.Frequency != 1 || e.Persistency != 1 {
		t.Fatalf("item 3: f=%d p=%d, want 1/1", e.Frequency, e.Persistency)
	}
	if o.Distinct() != 3 {
		t.Fatalf("Distinct = %d, want 3", o.Distinct())
	}
}

func TestOracleTrackerInterface(t *testing.T) {
	var tr stream.Tracker = New(stream.Balanced)
	if tr.Name() != "Oracle" {
		t.Fatal("wrong name")
	}
	if tr.MemoryBytes() != 0 {
		t.Fatal("oracle must report zero memory (unbounded)")
	}
}

func BenchmarkOracleInsert(b *testing.B) {
	o := New(stream.Balanced)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Insert(stream.Item(i % 100000))
		if i%100000 == 99999 {
			o.EndPeriod()
		}
	}
}
