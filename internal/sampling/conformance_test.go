package sampling

import (
	"testing"

	"sigstream/internal/stream"
	"sigstream/internal/trackertest"
)

func TestTrackerContract(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return New(mem, 5000, stream.Balanced)
	}, trackertest.Options{Lossy: true})
}
