// Package sampling implements a hash-based small-space sampler for
// persistent items, in the spirit of the coordinated 1-sampling line of
// work the paper cites for distributed persistent-item detection (Section
// II-B). It completes the baseline set: PIE decodes everything it can,
// sketches estimate everything approximately, and sampling tracks an exact
// subset.
//
// An item is sampled iff Hash(item) < τ, where τ is derived from the
// memory budget and an expected distinct-item count. Because the predicate
// depends only on the item, the same items are sampled in every period
// ("coordinated"), so a sampled item's frequency and persistency are exact
// and the top-k estimate is the top-k of the sample scaled by nothing —
// precision degrades gracefully as the sampling rate drops below
// k/distinct.
package sampling

import (
	"sigstream/internal/hashing"
	"sigstream/internal/stream"
)

// EntryBytes is the accounted memory per sampled item: 8-byte ID, 8-byte
// frequency, 4-byte persistency, 4-byte period tag, map overhead amortized
// to 8 bytes.
const EntryBytes = 32

type entry struct {
	freq     uint64
	persist  uint32
	lastSeen uint32 // period index of the last persistency credit
}

// Sampler tracks the exact statistics of a hash-defined item subset.
type Sampler struct {
	weights   stream.Weights
	capacity  int
	threshold uint32 // sample iff hash < threshold
	hash      hashing.Bob
	items     map[stream.Item]*entry
	period    uint32
}

// New sizes a sampler from a memory budget and an expected number of
// distinct items in the stream (used to pick the sampling rate so the
// sample fits the budget). expectedDistinct ≤ 0 assumes 1e6.
func New(memoryBytes int, expectedDistinct int, w stream.Weights) *Sampler {
	capacity := memoryBytes / EntryBytes
	if capacity < 1 {
		capacity = 1
	}
	if expectedDistinct <= 0 {
		expectedDistinct = 1_000_000
	}
	rate := float64(capacity) / float64(expectedDistinct)
	if rate > 1 {
		rate = 1
	}
	return &Sampler{
		weights:   w,
		capacity:  capacity,
		threshold: uint32(rate * float64(1<<32-1)),
		hash:      hashing.NewBob(0xab54),
		items:     make(map[stream.Item]*entry, capacity),
	}
}

// SamplingRate reports the fraction of the item space that is sampled.
func (s *Sampler) SamplingRate() float64 {
	return float64(s.threshold) / float64(1<<32-1)
}

// MemoryBytes reports the accounted footprint.
func (s *Sampler) MemoryBytes() int { return s.capacity * EntryBytes }

// Name identifies the algorithm.
func (s *Sampler) Name() string { return "Sampling" }

// Insert records one arrival.
func (s *Sampler) Insert(item stream.Item) {
	if s.hash.Hash64(item) >= s.threshold {
		return
	}
	e := s.items[item]
	if e == nil {
		if len(s.items) >= s.capacity {
			// Budget exhausted: the sampler degrades by ignoring new
			// sampled items rather than evicting exact state.
			return
		}
		e = &entry{}
		s.items[item] = e
	}
	e.freq++
	if e.persist == 0 || e.lastSeen != s.period {
		e.persist++
		e.lastSeen = s.period
	}
}

// EndPeriod advances the period counter.
func (s *Sampler) EndPeriod() { s.period++ }

// Query reports the exact statistics of a sampled item.
func (s *Sampler) Query(item stream.Item) (stream.Entry, bool) {
	e, ok := s.items[item]
	if !ok {
		return stream.Entry{}, false
	}
	return s.entry(item, e), true
}

// TopK reports the top-k significant items of the sample.
func (s *Sampler) TopK(k int) []stream.Entry {
	es := make([]stream.Entry, 0, len(s.items))
	for item, e := range s.items {
		es = append(es, s.entry(item, e))
	}
	return stream.TopKFromEntries(es, k)
}

func (s *Sampler) entry(item stream.Item, e *entry) stream.Entry {
	return stream.Entry{
		Item:         item,
		Frequency:    e.freq,
		Persistency:  uint64(e.persist),
		Significance: s.weights.Significance(e.freq, uint64(e.persist)),
	}
}

var _ stream.Tracker = (*Sampler)(nil)
