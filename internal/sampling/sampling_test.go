package sampling

import (
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestSampledItemsAreExact(t *testing.T) {
	// Rate 1 (capacity ≥ distinct): everything sampled, everything exact.
	s := New(32*100, 50, stream.Balanced)
	if s.SamplingRate() < 0.999 {
		t.Fatalf("rate %.3f, want ≈1 when capacity exceeds distinct", s.SamplingRate())
	}
	for p := 0; p < 4; p++ {
		for i := 0; i < 10; i++ {
			s.Insert(7)
		}
		if p%2 == 0 {
			s.Insert(9)
		}
		s.EndPeriod()
	}
	e, ok := s.Query(7)
	if !ok || e.Frequency != 40 || e.Persistency != 4 {
		t.Fatalf("item 7: %+v ok=%v, want 40/4", e, ok)
	}
	e, ok = s.Query(9)
	if !ok || e.Frequency != 2 || e.Persistency != 2 {
		t.Fatalf("item 9: %+v ok=%v, want 2/2", e, ok)
	}
}

func TestSamplingRateScalesWithBudget(t *testing.T) {
	small := New(32*10, 1000, stream.Balanced)
	big := New(32*500, 1000, stream.Balanced)
	if small.SamplingRate() >= big.SamplingRate() {
		t.Fatalf("rates %.4f vs %.4f not increasing with budget",
			small.SamplingRate(), big.SamplingRate())
	}
	if small.SamplingRate() > 0.05 {
		t.Fatalf("small budget rate %.4f too high", small.SamplingRate())
	}
}

func TestCoordinatedAcrossPeriods(t *testing.T) {
	// The sampling predicate depends only on the item, so an item sampled
	// once is sampled in every period.
	s := New(32*20, 2000, stream.Balanced)
	var sampled stream.Item
	for i := stream.Item(1); i < 10000; i++ {
		s.Insert(i)
		if _, ok := s.Query(i); ok {
			sampled = i
			break
		}
	}
	if sampled == 0 {
		t.Skip("no item sampled at this rate; statistical fluke")
	}
	s.EndPeriod()
	s.Insert(sampled)
	e, ok := s.Query(sampled)
	if !ok || e.Persistency != 2 {
		t.Fatalf("sampled item not coordinated across periods: %+v ok=%v", e, ok)
	}
}

func TestCapacityNotExceeded(t *testing.T) {
	s := New(32*10, 10, stream.Balanced) // rate 1, capacity 10
	for i := stream.Item(1); i <= 1000; i++ {
		s.Insert(i)
	}
	if got := len(s.TopK(1 << 20)); got > 10 {
		t.Fatalf("sample holds %d items, capacity 10", got)
	}
}

func TestPrecisionReasonableWithGoodBudget(t *testing.T) {
	st := gen.Generate(gen.Config{N: 40000, M: 2000, Periods: 20, Skew: 0.9,
		Head: 50, TailWindowFrac: 0.2, Seed: 3})
	o := oracle.FromStream(st, stream.Persistent)
	s := New(32*4000, 2000, stream.Persistent) // rate 1
	st.Replay(s)
	r := metrics.Evaluate(o, s, 50)
	if r.Precision < 0.95 {
		t.Fatalf("full-rate sampler precision %.2f, want ≈1", r.Precision)
	}
	if r.ARE > 1e-9 {
		t.Fatalf("full-rate sampler ARE %.4g, want 0 (exact)", r.ARE)
	}
}

func TestPrecisionDegradesWithLowRate(t *testing.T) {
	st := gen.Generate(gen.Config{N: 40000, M: 2000, Periods: 20, Skew: 0.9,
		Head: 50, TailWindowFrac: 0.2, Seed: 3})
	o := oracle.FromStream(st, stream.Persistent)
	s := New(32*50, 2000, stream.Persistent) // rate ≈ 2.5%
	st.Replay(s)
	r := metrics.Evaluate(o, s, 50)
	if r.Precision > 0.5 {
		t.Fatalf("low-rate sampler precision %.2f implausibly high", r.Precision)
	}
}

func TestNameAndMemory(t *testing.T) {
	s := New(3200, 100, stream.Balanced)
	if s.Name() != "Sampling" {
		t.Fatal("wrong name")
	}
	if s.MemoryBytes() != 3200 {
		t.Fatalf("memory %d, want 3200", s.MemoryBytes())
	}
	if New(1, 0, stream.Balanced).MemoryBytes() <= 0 {
		t.Fatal("degenerate budget unusable")
	}
}

func BenchmarkInsert(b *testing.B) {
	s := New(64*1024, 100000, stream.Balanced)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(stream.Item(i))
	}
}
