package ltc

// Exponential decay — an extension beyond the paper. The paper's
// significance weighs all history equally; long-running deployments often
// want "significant lately": items that are frequent and persistent in the
// recent past, with stale history aging out. Setting Options.DecayFactor
// λ ∈ (0,1) scales every cell's frequency and persistency counter by λ at
// each period boundary, turning both into exponentially-weighted counts
// (half-life = ln 2 / ln(1/λ) periods). λ=1 (or 0, the zero value)
// disables decay and recovers the paper's semantics exactly.
//
// Decay composes with every other feature: the CLOCK still credits at most
// one persistency unit per period; Significance Decrementing and Long-tail
// Replacement operate on the decayed values, so eviction pressure
// automatically favors recently-significant items.

// applyDecay scales all counters by the configured factor. Cells whose
// significance decays to zero are freed.
func (l *LTC) applyDecay() {
	λ := l.opts.DecayFactor
	if λ <= 0 || λ >= 1 {
		return
	}
	for i, f := range l.flags {
		if f&flagOccupied == 0 {
			continue
		}
		l.freqs[i] = uint32(float64(l.freqs[i]) * λ)
		l.counters[i] = uint32(float64(l.counters[i]) * λ)
		if l.sigZero(i) && f&(flagEven|flagOdd) == 0 {
			l.clearCell(i)
		}
	}
}
