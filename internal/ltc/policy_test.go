package ltc

import (
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestPolicyNames(t *testing.T) {
	cases := []struct {
		p    ReplacementPolicy
		want string
	}{
		{ReplaceLongTail, "long-tail"},
		{ReplaceBasic, "basic"},
		{ReplaceSecondSmallest, "second-smallest"},
		{ReplaceEager, "eager"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", c.p, got, c.want)
		}
	}
	if New(Options{Replacement: ReplaceEager}).Name() != "LTC-eager" {
		t.Fatal("eager tracker name wrong")
	}
	if New(Options{Replacement: ReplaceSecondSmallest}).Name() != "LTC-ss" {
		t.Fatal("second-smallest tracker name wrong")
	}
}

func TestDisableLTRAliasesBasicPolicy(t *testing.T) {
	l := New(Options{DisableLongTailReplacement: true})
	if l.opts.Replacement != ReplaceBasic {
		t.Fatal("alias not normalized")
	}
	if l.Name() != "LTC-noLTR" {
		t.Fatalf("name = %q", l.Name())
	}
}

func TestEagerPolicyReplacesImmediately(t *testing.T) {
	// d=1, one bucket. With the eager (Space-Saving) rule a single
	// arrival of a new item replaces the incumbent at min+1.
	l := New(Options{MemoryBytes: CellBytes, BucketWidth: 1,
		Weights: stream.Frequent, Replacement: ReplaceEager, Seed: 1})
	for i := 0; i < 5; i++ {
		l.Insert(1)
	}
	l.Insert(2)
	if _, ok := l.Query(1); ok {
		t.Fatal("eager policy must replace immediately")
	}
	e, ok := l.Query(2)
	if !ok || e.Frequency != 6 {
		t.Fatalf("eager init = %d, want min+1 = 6", e.Frequency)
	}
}

func TestEagerPolicyOverestimates(t *testing.T) {
	// The eager rule reintroduces overestimation: on a stressed table, at
	// least one tracked item exceeds its true significance. The default
	// decrement rule (any non-eager policy without LTR) never does.
	s := gen.Generate(gen.Config{N: 40000, M: 6000, Periods: 10, Skew: 0.8,
		Head: 50, TailWindowFrac: 0.6, Seed: 31})
	o := oracle.FromStream(s, stream.Frequent)
	eager := New(Options{MemoryBytes: 2 * 1024, Weights: stream.Frequent,
		Replacement: ReplaceEager, ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 2})
	s.Replay(eager)
	over := 0
	for _, e := range eager.TopK(1 << 20) {
		real, ok := o.Query(e.Item)
		if !ok || e.Significance > real.Significance {
			over++
		}
	}
	if over == 0 {
		t.Fatal("eager (Space-Saving style) replacement produced no overestimates; " +
			"the ablation contrast is gone")
	}
}

func TestPolicyAccuracyOrdering(t *testing.T) {
	// On a long-tail stream under pressure, long-tail replacement should
	// be at least as precise as the basic policy and not catastrophically
	// different from second-smallest.
	s := gen.Generate(gen.Config{N: 60000, M: 8000, Periods: 20, Skew: 1.0,
		Head: 100, TailWindowFrac: 0.5, Seed: 32})
	o := oracle.FromStream(s, stream.Frequent)
	run := func(p ReplacementPolicy) float64 {
		l := New(Options{MemoryBytes: 4 * 1024, Weights: stream.Frequent,
			Replacement: p, ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 3})
		s.Replay(l)
		return metrics.Evaluate(o, l, 100).Precision
	}
	lt := run(ReplaceLongTail)
	basic := run(ReplaceBasic)
	ss := run(ReplaceSecondSmallest)
	if lt+0.05 < basic {
		t.Fatalf("long-tail %.2f worse than basic %.2f", lt, basic)
	}
	if lt+0.15 < ss || ss+0.15 < lt {
		t.Fatalf("long-tail %.2f and second-smallest %.2f should be close", lt, ss)
	}
}

func TestPolicyCheckpointRoundTrip(t *testing.T) {
	l := New(Options{MemoryBytes: 2048, Replacement: ReplaceEager, Seed: 4})
	l.Insert(7)
	img, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{})
	if err := r.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	if r.Name() != "LTC-eager" {
		t.Fatalf("policy lost through checkpoint: %s", r.Name())
	}
}
