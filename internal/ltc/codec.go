package ltc

// Checkpointing: LTC state serializes to a compact binary image so a
// long-running tracker can survive restarts, be shipped to an aggregator,
// or be archived per epoch. The format is versioned and self-describing
// enough to reject mismatched geometry.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"sigstream/internal/stream"
)

// codecMagic identifies an LTC checkpoint ("LTC1" little-endian).
const codecMagic = 0x3143544c

// codecVersion is bumped on any layout change. Version 3 appended the
// cumulative operation counters (stream.Counters), so observability state
// survives checkpoint/restore.
const codecVersion = 3

var (
	// ErrBadCheckpoint reports a corrupt or truncated checkpoint image.
	ErrBadCheckpoint = errors.New("ltc: bad checkpoint")
	// ErrCheckpointVersion reports an unsupported checkpoint version.
	ErrCheckpointVersion = errors.New("ltc: unsupported checkpoint version")
)

// MarshalBinary encodes the full tracker state (options, CLOCK position,
// every cell). The image is w·d·17 bytes plus a fixed header.
func (l *LTC) MarshalBinary() ([]byte, error) {
	header := 4 + 4 + // magic, version
		8 + 4 + 4 + // memory, w, d
		8 + 8 + // alpha, beta
		8 + // items per period
		1 + // feature flags (DE disabled, adaptive)
		1 + // replacement policy
		4 + // seed
		8 + 8 + // period duration, decay factor
		8 + 8 + 8 + 1 + // ptr, acc, step, parity
		8 + 8 + // swept, itemsInPer
		11*8 // operation counters
	buf := make([]byte, 0, header+l.m*17)
	le := binary.LittleEndian

	app32 := func(v uint32) { buf = le.AppendUint32(buf, v) }
	app64 := func(v uint64) { buf = le.AppendUint64(buf, v) }
	appF := func(v float64) { buf = le.AppendUint64(buf, math.Float64bits(v)) }

	app32(codecMagic)
	app32(codecVersion)
	app64(uint64(l.opts.MemoryBytes))
	app32(uint32(l.w))
	app32(uint32(l.d))
	appF(l.opts.Weights.Alpha)
	appF(l.opts.Weights.Beta)
	app64(uint64(l.opts.ItemsPerPeriod))
	var flags byte
	if l.opts.DisableDeviationEliminator {
		flags |= 1
	}
	if l.adaptiveStep {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = append(buf, byte(l.opts.Replacement))
	app32(l.opts.Seed)
	appF(l.opts.PeriodDuration)
	appF(l.opts.DecayFactor)
	app64(uint64(l.ptr))
	appF(l.acc)
	appF(l.step)
	buf = append(buf, l.parity)
	app64(uint64(l.swept))
	app64(uint64(l.itemsInPer))
	app64(l.stats.Arrivals)
	app64(l.stats.Batches)
	app64(l.stats.BatchItems)
	app64(l.stats.Hits)
	app64(l.stats.Admissions)
	app64(l.stats.Decrements)
	app64(l.stats.Expulsions)
	app64(l.stats.FlagConsumed)
	app64(l.stats.CellsSwept)
	app64(l.stats.Periods)
	app64(l.stats.ParityFlips)

	// Wire cells stay in the version-3 interleaved 17-byte layout; the
	// in-memory lanes are converted on encode, so the SoA refactor is
	// invisible to existing checkpoint images.
	for i := 0; i < l.m; i++ {
		app64(l.ids[i])
		app32(l.freqs[i])
		app32(l.counters[i])
		buf = append(buf, l.flags[i])
	}
	return buf, nil
}

// UnmarshalBinary restores a tracker from a MarshalBinary image. The
// receiver's prior state is discarded; its geometry is rebuilt from the
// image.
func (l *LTC) UnmarshalBinary(data []byte) error {
	le := binary.LittleEndian
	r := reader{data: data}
	if r.u32() != codecMagic {
		return fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if v := r.u32(); v != codecVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrCheckpointVersion, v, codecVersion)
	}
	var opts Options
	opts.MemoryBytes = int(r.u64())
	w := int(r.u32())
	d := int(r.u32())
	opts.BucketWidth = d
	opts.Weights.Alpha = r.f64()
	opts.Weights.Beta = r.f64()
	opts.ItemsPerPeriod = int(r.u64())
	flags := r.u8()
	opts.DisableDeviationEliminator = flags&1 != 0
	adaptive := flags&4 != 0
	policy := r.u8()
	if policy > byte(ReplaceEager) {
		return fmt.Errorf("%w: unknown replacement policy %d", ErrBadCheckpoint, policy)
	}
	opts.Replacement = ReplacementPolicy(policy)
	opts.Seed = r.u32()
	opts.PeriodDuration = r.f64()
	opts.DecayFactor = r.f64()

	if w <= 0 || d <= 0 || w > 1<<30 || d > 1<<16 {
		return fmt.Errorf("%w: implausible geometry %dx%d", ErrBadCheckpoint, w, d)
	}
	// New derives its lane sizes from MemoryBytes, so an inconsistent or
	// absurd budget must be rejected before any allocation: a forged image
	// can otherwise drive w·d past integer range (fuzz-found crash) or
	// demand gigabytes for a header-only payload.
	const maxCheckpointCells = 1 << 27
	if w*d > maxCheckpointCells {
		return fmt.Errorf("%w: implausible geometry %dx%d", ErrBadCheckpoint, w, d)
	}
	if opts.MemoryBytes <= 0 || opts.MemoryBytes/(CellBytes*d) != w {
		return fmt.Errorf("%w: memory budget %d inconsistent with geometry %dx%d",
			ErrBadCheckpoint, opts.MemoryBytes, w, d)
	}
	fresh := New(opts)
	if fresh.w != w || fresh.d != d {
		return fmt.Errorf("%w: geometry %dx%d does not match options-derived %dx%d",
			ErrBadCheckpoint, w, d, fresh.w, fresh.d)
	}
	fresh.adaptiveStep = adaptive
	fresh.ptr = int(r.u64())
	fresh.acc = r.f64()
	fresh.step = r.f64()
	fresh.parity = r.u8()
	fresh.swept = int(r.u64())
	fresh.itemsInPer = int(r.u64())
	fresh.stats.Arrivals = r.u64()
	fresh.stats.Batches = r.u64()
	fresh.stats.BatchItems = r.u64()
	fresh.stats.Hits = r.u64()
	fresh.stats.Admissions = r.u64()
	fresh.stats.Decrements = r.u64()
	fresh.stats.Expulsions = r.u64()
	fresh.stats.FlagConsumed = r.u64()
	fresh.stats.CellsSwept = r.u64()
	fresh.stats.Periods = r.u64()
	fresh.stats.ParityFlips = r.u64()
	if fresh.ptr < 0 || fresh.ptr >= fresh.m || fresh.swept < 0 || fresh.swept > fresh.m {
		return fmt.Errorf("%w: CLOCK state out of range", ErrBadCheckpoint)
	}
	if fresh.parity != flagEven && fresh.parity != flagOdd {
		return fmt.Errorf("%w: bad parity", ErrBadCheckpoint)
	}
	if r.err != nil {
		return r.err
	}

	need := fresh.m * 17
	if len(r.data)-r.off != need {
		return fmt.Errorf("%w: %d cell bytes, want %d", ErrBadCheckpoint,
			len(r.data)-r.off, need)
	}
	for i := 0; i < fresh.m; i++ {
		fresh.ids[i] = le.Uint64(r.data[r.off:])
		fresh.freqs[i] = le.Uint32(r.data[r.off+8:])
		fresh.counters[i] = le.Uint32(r.data[r.off+12:])
		fresh.flags[i] = r.data[r.off+16]
		r.off += 17
	}
	fresh.occupied = fresh.countOccupied()
	if r.err != nil {
		return r.err
	}
	*l = *fresh
	return nil
}

// Reset clears all cells and CLOCK state, keeping the configuration.
func (l *LTC) Reset() {
	clear(l.ids)
	clear(l.freqs)
	clear(l.counters)
	clear(l.flags)
	l.occupied = 0
	l.ptr = 0
	l.acc = 0
	l.swept = 0
	l.parity = flagEven
	l.itemsInPer = 0
	l.timeAnchored = false
	l.periodStart = 0
	l.lastArrival = 0
	l.timeDebt = 0
	l.stats = stream.Counters{}
	if l.adaptiveStep {
		l.step = 0
	}
}

// reader is a bounds-checked little-endian cursor.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.off+n > len(r.data) {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrBadCheckpoint, r.off)
		return false
	}
	return true
}

func (r *reader) u8() byte {
	if !r.need(1) {
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
