package ltc

import (
	"testing"

	"sigstream/internal/stream"
	"sigstream/internal/trackertest"
)

func TestTrackerContract(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return New(Options{MemoryBytes: mem, Weights: stream.Balanced,
			ItemsPerPeriod: 300, Seed: 1})
	}, trackertest.Options{})
}
