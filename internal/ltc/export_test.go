package ltc

// White-box test helpers. cellState reassembles the structure-of-arrays
// lanes into per-cell tuples so equivalence tests can compare full table
// state between two trackers.

type cellState struct {
	id      uint64
	freq    uint32
	counter uint32
	flags   uint8
}

// cellStates snapshots every cell, in table order.
func (l *LTC) cellStates() []cellState {
	cs := make([]cellState, l.m)
	for i := range cs {
		cs[i] = cellState{l.ids[i], l.freqs[i], l.counters[i], l.flags[i]}
	}
	return cs
}
