package ltc

import (
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/hashing"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestMergeIncompatible(t *testing.T) {
	a := New(Options{MemoryBytes: 4096, Seed: 1})
	b := New(Options{MemoryBytes: 8192, Seed: 1})
	if a.Compatible(b) {
		t.Fatal("different sizes reported compatible")
	}
	if err := a.Merge(b); err != ErrIncompatible {
		t.Fatalf("want ErrIncompatible, got %v", err)
	}
	c := New(Options{MemoryBytes: 4096, Seed: 2})
	if a.Compatible(c) {
		t.Fatal("different seeds reported compatible")
	}
	d := New(Options{MemoryBytes: 4096, Seed: 1,
		Weights: stream.Weights{Alpha: 5}})
	if a.Compatible(d) {
		t.Fatal("different weights reported compatible")
	}
}

func TestMergeDisjointItems(t *testing.T) {
	opts := Options{MemoryBytes: 1 << 16, Weights: stream.Balanced, Seed: 3}
	a, b := New(opts), New(opts)
	for p := 0; p < 3; p++ {
		for i := 0; i < 10; i++ {
			a.Insert(1)
			b.Insert(2)
		}
		a.EndPeriod()
		b.EndPeriod()
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	e1, ok1 := a.Query(1)
	e2, ok2 := a.Query(2)
	if !ok1 || !ok2 {
		t.Fatal("merged tracker lost an item")
	}
	if e1.Frequency != 30 || e2.Frequency != 30 {
		t.Fatalf("frequencies %d/%d, want 30/30", e1.Frequency, e2.Frequency)
	}
	if e1.Persistency != 3 || e2.Persistency != 3 {
		t.Fatalf("persistencies %d/%d, want 3/3", e1.Persistency, e2.Persistency)
	}
}

func TestMergeSharedItemSumsCounts(t *testing.T) {
	// Hash-sharded semantics: shard A sees item 5 in periods 1–2, shard B
	// never sees it (hash sharding sends each item to one shard). But also
	// verify the summing path with an item placed in both (period-disjoint
	// appearances).
	opts := Options{MemoryBytes: 1 << 16, Weights: stream.Balanced, Seed: 4}
	a, b := New(opts), New(opts)
	// Item 5 appears in a during periods 0,1 and in b during period 2
	// (b idles through 0,1).
	for p := 0; p < 3; p++ {
		if p < 2 {
			a.Insert(5)
			a.Insert(5)
			b.Insert(99)
		} else {
			b.Insert(5)
			a.Insert(98)
		}
		a.EndPeriod()
		b.EndPeriod()
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	e, ok := a.Query(5)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Frequency != 5 {
		t.Fatalf("frequency %d, want 5", e.Frequency)
	}
	if e.Persistency != 3 {
		t.Fatalf("persistency %d, want 3", e.Persistency)
	}
}

func TestMergeRespectsBucketCapacity(t *testing.T) {
	// One bucket of d=2; three distinct items across the two trackers:
	// the merge keeps the two most significant.
	opts := Options{MemoryBytes: 2 * CellBytes, BucketWidth: 2,
		Weights: stream.Frequent, Seed: 5}
	a, b := New(opts), New(opts)
	for i := 0; i < 10; i++ {
		a.Insert(1)
	}
	for i := 0; i < 5; i++ {
		a.Insert(2)
	}
	for i := 0; i < 7; i++ {
		b.Insert(3)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Query(1); !ok {
		t.Fatal("heaviest item lost in merge")
	}
	if _, ok := a.Query(3); !ok {
		t.Fatal("second-heaviest item lost in merge")
	}
	if _, ok := a.Query(2); ok {
		t.Fatal("weakest item should have been dropped at capacity")
	}
}

func TestMergeShardedStreamMatchesSingle(t *testing.T) {
	// Hash-shard one stream across 4 trackers, merge, and compare top-k
	// precision against the oracle — sharded accuracy should be in the
	// same class as a single tracker with 4× memory.
	s := gen.Generate(gen.Config{N: 40000, M: 4000, Periods: 20, Skew: 1.0,
		Head: 60, TailWindowFrac: 0.4, Seed: 8})
	o := oracle.FromStream(s, stream.Balanced)

	const shards = 4
	opts := Options{MemoryBytes: 8 * 1024, Weights: stream.Balanced, Seed: 9,
		ItemsPerPeriod: s.ItemsPerPeriod() / shards}
	parts := make([]*LTC, shards)
	for i := range parts {
		parts[i] = New(opts)
	}
	per := s.ItemsPerPeriod()
	for i, it := range s.Items {
		parts[hashing.Mix64(it)%shards].Insert(it)
		if (i+1)%per == 0 {
			for _, p := range parts {
				p.EndPeriod()
			}
		}
	}
	for _, p := range parts {
		p.EndPeriod()
	}
	root := parts[0]
	for _, p := range parts[1:] {
		if err := root.Merge(p); err != nil {
			t.Fatal(err)
		}
	}
	r := metrics.Evaluate(o, root, 100)
	if r.Precision < 0.8 {
		t.Fatalf("sharded+merged precision %.2f, want ≥0.8", r.Precision)
	}
}
