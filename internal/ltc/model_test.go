package ltc

// Model-based testing: a deliberately naive reference implementation of
// the paper's Section III semantics (readable per-bucket slices, no packed
// cells or stats) is run against the real structure on random traces. Any
// divergence in reported frequency or persistency is a bug in one of the
// two readings of the paper.
//
// The reference covers the DE-on configuration with count-based periods.
// The sweep must be paced mid-period exactly like the real CLOCK (step m/n
// cells per arrival): flag consumption interleaves with Significance
// Decrementing, so an eager end-of-period sweep would NOT be equivalent —
// a counter credited early can be decremented away later in the same
// period. The reference therefore keeps its own paced pointer, while its
// bucket logic stays an independent reading of Section III.

import (
	"math/rand"
	"testing"

	"sigstream/internal/hashing"
	"sigstream/internal/stream"
)

// refCell mirrors one lossy-table cell.
type refCell struct {
	id       stream.Item
	occupied bool
	freq     uint64
	counter  uint64
	curFlag  bool // appearance in the current period
	prevFlag bool // unconsumed appearance from the previous period
}

// refLTC is the reference implementation.
type refLTC struct {
	w, d    int
	weights stream.Weights
	policy  ReplacementPolicy
	hash    hashing.Bob
	buckets [][]refCell

	// Paced sweep state, mirroring the real CLOCK.
	step  float64
	acc   float64
	ptr   int // flat cell index: bucket*d + cell
	swept int
}

func newRef(w, d int, weights stream.Weights, policy ReplacementPolicy,
	seed uint32, itemsPerPeriod int) *refLTC {
	r := &refLTC{w: w, d: d, weights: weights, policy: policy,
		hash: hashing.NewBob(seed ^ 0x17c5),
		step: float64(w*d) / float64(itemsPerPeriod)}
	r.buckets = make([][]refCell, w)
	for i := range r.buckets {
		r.buckets[i] = make([]refCell, d)
	}
	return r
}

// sweepCells consumes previous-period flags on the next n cells.
func (r *refLTC) sweepCells(n int) {
	m := r.w * r.d
	for i := 0; i < n; i++ {
		c := &r.buckets[r.ptr/r.d][r.ptr%r.d]
		if c.prevFlag {
			c.counter++
			c.prevFlag = false
		}
		r.ptr = (r.ptr + 1) % m
	}
	r.swept += n
}

// advance paces the sweep after one arrival, capped at one pass per period.
func (r *refLTC) advance() {
	r.acc += r.step
	n := int(r.acc)
	if n <= 0 {
		return
	}
	r.acc -= float64(n)
	if remaining := r.w*r.d - r.swept; n > remaining {
		n = remaining
	}
	if n > 0 {
		r.sweepCells(n)
	}
}

func (r *refLTC) sig(c *refCell) float64 {
	return r.weights.Significance(c.freq, c.counter)
}

func (r *refLTC) insert(item stream.Item) {
	r.place(item)
	r.advance()
}

func (r *refLTC) place(item stream.Item) {
	b := int(r.hash.Hash64(item)) % r.w
	if b < 0 {
		b += r.w
	}
	bucket := r.buckets[b]

	// Case 1.
	for i := range bucket {
		c := &bucket[i]
		if c.occupied && c.id == item {
			c.curFlag = true
			c.freq++
			return
		}
	}
	// Case 2.
	for i := range bucket {
		c := &bucket[i]
		if !c.occupied {
			*c = refCell{id: item, occupied: true, freq: 1, curFlag: true}
			return
		}
	}
	// Case 3: first-found smallest.
	smallest := &bucket[0]
	for i := 1; i < r.d; i++ {
		if r.sig(&bucket[i]) < r.sig(smallest) {
			smallest = &bucket[i]
		}
	}
	if r.policy == ReplaceEager {
		f, cnt := smallest.freq+1, smallest.counter
		*smallest = refCell{id: item, occupied: true, freq: f, counter: cnt,
			curFlag: true}
		return
	}
	if smallest.counter > 0 {
		smallest.counter--
	}
	if smallest.freq > 0 {
		smallest.freq--
	}
	if r.sig(smallest) <= 0 {
		var initF, initC uint64 = 1, 0
		if r.policy == ReplaceLongTail || r.policy == ReplaceSecondSmallest {
			// Second smallest = smallest surviving cell.
			var second *refCell
			for i := range bucket {
				c := &bucket[i]
				if c == smallest || !c.occupied {
					continue
				}
				if second == nil || r.sig(c) < r.sig(second) {
					second = c
				}
			}
			if second != nil {
				initF, initC = second.freq, second.counter
				if r.policy == ReplaceLongTail {
					if initF > 1 {
						initF--
					}
					if initC > 0 {
						initC--
					}
				}
				if initF < 1 {
					initF = 1
				}
			}
		}
		*smallest = refCell{id: item, occupied: true, freq: initF,
			counter: initC, curFlag: true}
	}
}

// endPeriod completes the paced sweep, then performs the parity handover
// (current becomes previous).
func (r *refLTC) endPeriod() {
	if remaining := r.w*r.d - r.swept; remaining > 0 {
		r.sweepCells(remaining)
	}
	r.swept = 0
	r.acc = 0
	for i := range r.buckets {
		for j := range r.buckets[i] {
			c := &r.buckets[i][j]
			if !c.occupied {
				continue
			}
			c.prevFlag, c.curFlag = c.curFlag, false
		}
	}
}

func (r *refLTC) query(item stream.Item) (stream.Entry, bool) {
	b := int(r.hash.Hash64(item)) % r.w
	if b < 0 {
		b += r.w
	}
	for i := range r.buckets[b] {
		c := &r.buckets[b][i]
		if c.occupied && c.id == item {
			p := c.counter
			if c.prevFlag {
				p++
			}
			if c.curFlag {
				p++
			}
			return stream.Entry{Item: item, Frequency: c.freq, Persistency: p,
				Significance: r.weights.Significance(c.freq, p)}, true
		}
	}
	return stream.Entry{}, false
}

// TestModelEquivalence replays random traces through the real structure and
// the reference, comparing every distinct item's estimate after every
// period.
func TestModelEquivalence(t *testing.T) {
	policies := []ReplacementPolicy{
		ReplaceLongTail, ReplaceBasic, ReplaceSecondSmallest, ReplaceEager,
	}
	weightsSet := []stream.Weights{
		stream.Frequent, stream.Persistent, stream.Balanced,
		{Alpha: 2, Beta: 7},
	}
	for trial := 0; trial < 24; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		policy := policies[trial%len(policies)]
		weights := weightsSet[(trial/4)%len(weightsSet)]
		const d = 2
		wBuckets := 1 + rng.Intn(3) // 1–3 buckets: heavy collisions
		perPeriod := 20 + rng.Intn(30)
		universe := 1 + rng.Intn(12)

		real := New(Options{
			MemoryBytes:    wBuckets * d * CellBytes,
			BucketWidth:    d,
			Weights:        weights,
			Replacement:    policy,
			ItemsPerPeriod: perPeriod,
			Seed:           uint32(trial),
		})
		if real.Buckets() != wBuckets {
			t.Fatalf("trial %d: geometry %d, want %d", trial, real.Buckets(), wBuckets)
		}
		ref := newRef(wBuckets, d, weights, policy, uint32(trial), perPeriod)

		for p := 0; p < 8; p++ {
			for i := 0; i < perPeriod; i++ {
				item := stream.Item(rng.Intn(universe) + 1)
				real.Insert(item)
				ref.insert(item)
			}
			real.EndPeriod()
			ref.endPeriod()
			for it := stream.Item(1); it <= stream.Item(universe); it++ {
				ge, gok := real.Query(it)
				we, wok := ref.query(it)
				if gok != wok {
					t.Fatalf("trial %d period %d item %d: tracked=%v ref=%v "+
						"(policy %v, weights %v)", trial, p, it, gok, wok, policy, weights)
				}
				if !gok {
					continue
				}
				if ge.Frequency != we.Frequency || ge.Persistency != we.Persistency {
					t.Fatalf("trial %d period %d item %d: real f=%d p=%d, ref f=%d p=%d "+
						"(policy %v, weights %v)", trial, p, it,
						ge.Frequency, ge.Persistency, we.Frequency, we.Persistency,
						policy, weights)
				}
			}
		}
	}
}
