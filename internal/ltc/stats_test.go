package ltc

import (
	"testing"

	"sigstream/internal/stream"
)

func TestStatsCountOperations(t *testing.T) {
	// Single bucket of d=1: fully deterministic operation mix.
	l := New(Options{MemoryBytes: CellBytes, BucketWidth: 1,
		Weights: stream.Frequent, DisableLongTailReplacement: true, Seed: 1})
	l.Insert(1) // admission
	l.Insert(1) // hit
	l.Insert(1) // hit → f=3
	l.Insert(2) // decrement (3→2)
	l.Insert(2) // decrement (2→1)
	l.Insert(2) // decrement (1→0) → expulsion + admission
	st := l.Stats()
	if st.Arrivals != 6 {
		t.Fatalf("arrivals %d, want 6", st.Arrivals)
	}
	if st.Hits != 2 {
		t.Fatalf("hits %d, want 2", st.Hits)
	}
	if st.Admissions != 2 {
		t.Fatalf("admissions %d, want 2", st.Admissions)
	}
	if st.Decrements != 3 {
		t.Fatalf("decrements %d, want 3", st.Decrements)
	}
	if st.Expulsions != 1 {
		t.Fatalf("expulsions %d, want 1", st.Expulsions)
	}
}

func TestStatsFlagConsumption(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 12, Weights: stream.Persistent,
		ItemsPerPeriod: 10, Seed: 2})
	for p := 0; p < 3; p++ {
		for i := 0; i < 10; i++ {
			l.Insert(stream.Item(i % 4))
		}
		l.EndPeriod()
	}
	st := l.Stats()
	// 4 items × 2 fully-swept previous periods = 8 credits (the final
	// period's flags are still pending).
	if st.FlagConsumed != 8 {
		t.Fatalf("flag credits %d, want 8", st.FlagConsumed)
	}
}

func TestStatsClearedByReset(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 12, Seed: 3})
	l.Insert(1)
	l.Reset()
	if l.Stats().Counters != (stream.Counters{}) {
		t.Fatalf("stats survived Reset: %+v", l.Stats().Counters)
	}
}

func TestStatsEagerPolicyCountsExpulsions(t *testing.T) {
	l := New(Options{MemoryBytes: CellBytes, BucketWidth: 1,
		Weights: stream.Frequent, Replacement: ReplaceEager, Seed: 4})
	l.Insert(1)
	l.Insert(2) // eager expulsion
	l.Insert(3) // eager expulsion
	st := l.Stats()
	if st.Expulsions != 2 {
		t.Fatalf("eager expulsions %d, want 2", st.Expulsions)
	}
	if st.Decrements != 0 {
		t.Fatalf("eager mode must not decrement, got %d", st.Decrements)
	}
}
