package ltc

import (
	"math/rand"
	"testing"
)

// TestFastmodMatchesModulo sweeps a deterministic grid of widths and
// hashes and asserts the multiply-shift reduction is exactly h % w — not
// merely distribution-equivalent — and always lands in [0, w).
func TestFastmodMatchesModulo(t *testing.T) {
	widths := []int{1, 2, 3, 5, 7, 8, 13, 64, 100, 257, 4096, 65535, 65536,
		1 << 20, 1<<31 - 1, 1 << 31, 1<<32 - 1}
	hashes := []uint32{0, 1, 2, 0x7fffffff, 0x80000000, 0xdeadbeef, 0xffffffff}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		hashes = append(hashes, rng.Uint32())
	}
	for _, w := range widths {
		m := fastmodM(w)
		for _, h := range hashes {
			got := fastmod32(h, m, uint64(w))
			want := uint32(uint64(h) % uint64(w))
			if got != want {
				t.Fatalf("fastmod32(%#x, w=%d) = %d, want %d", h, w, got, want)
			}
			if int(got) >= w {
				t.Fatalf("fastmod32(%#x, w=%d) = %d out of range", h, w, got)
			}
		}
	}
}

// FuzzFastmod lets the fuzzer search for a (hash, width) pair where the
// reduction diverges from the plain remainder. None exists — the Lemire
// fastmod identity h %% w == hi64((M·h)·w) with M = ⌈2⁶⁴/w⌉ is exact for
// any w that fits in 32 bits — but the fuzz target encodes the claim the
// bucket() hot path depends on.
func FuzzFastmod(f *testing.F) {
	f.Add(uint32(0), uint32(1))
	f.Add(uint32(0xffffffff), uint32(1))
	f.Add(uint32(0xdeadbeef), uint32(3))
	f.Add(uint32(12345), uint32(4096))
	f.Add(uint32(0xffffffff), uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, h, w32 uint32) {
		if w32 == 0 {
			t.Skip("table width is always >= 1")
		}
		w := int(w32)
		got := fastmod32(h, fastmodM(w), uint64(w))
		want := uint32(uint64(h) % uint64(w))
		if got != want {
			t.Fatalf("fastmod32(%#x, w=%d) = %d, want %d", h, w, got, want)
		}
		if int(got) >= w {
			t.Fatalf("fastmod32(%#x, w=%d) = %d out of range", h, w, got)
		}
	})
}
