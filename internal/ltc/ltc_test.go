package ltc

import (
	"math/rand"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func newSmall(w stream.Weights, mem int) *LTC {
	return New(Options{MemoryBytes: mem, Weights: w, Seed: 1})
}

func TestSizing(t *testing.T) {
	l := New(Options{MemoryBytes: 16 * 1024, BucketWidth: 8})
	if l.BucketWidth() != 8 {
		t.Fatalf("d = %d, want 8", l.BucketWidth())
	}
	if got, want := l.Buckets(), 16*1024/(CellBytes*8); got != want {
		t.Fatalf("w = %d, want %d", got, want)
	}
	if l.MemoryBytes() != l.Buckets()*l.BucketWidth()*CellBytes {
		t.Fatal("MemoryBytes inconsistent with geometry")
	}
}

func TestSizingFloor(t *testing.T) {
	l := New(Options{MemoryBytes: 1}) // below one bucket
	if l.Buckets() != 1 {
		t.Fatalf("w = %d, want floor of 1", l.Buckets())
	}
}

func TestDefaultOptions(t *testing.T) {
	l := New(Options{})
	if l.BucketWidth() != DefaultBucketWidth {
		t.Fatalf("default d = %d, want %d", l.BucketWidth(), DefaultBucketWidth)
	}
	if l.MemoryBytes() <= 0 {
		t.Fatal("default memory must be positive")
	}
	if l.Name() != "LTC" {
		t.Fatalf("zero-value toggles must select the full algorithm, got %s", l.Name())
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		opts Options
		want string
	}{
		{Options{}, "LTC"},
		{Options{DisableLongTailReplacement: true}, "LTC-noLTR"},
		{Options{DisableDeviationEliminator: true}, "LTC-noDE"},
		{Options{DisableLongTailReplacement: true, DisableDeviationEliminator: true}, "LTC-basic"},
	}
	for _, c := range cases {
		if got := New(c.opts).Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestFrequencyCountingExact(t *testing.T) {
	// With ample memory every item gets its own cell: counts are exact.
	l := newSmall(stream.Frequent, 1<<20)
	for i := 0; i < 50; i++ {
		l.Insert(7)
	}
	for i := 0; i < 20; i++ {
		l.Insert(9)
	}
	l.EndPeriod()
	e, ok := l.Query(7)
	if !ok || e.Frequency != 50 {
		t.Fatalf("item 7: %+v ok=%v, want f=50", e, ok)
	}
	e, ok = l.Query(9)
	if !ok || e.Frequency != 20 {
		t.Fatalf("item 9: %+v ok=%v, want f=20", e, ok)
	}
	if _, ok := l.Query(11); ok {
		t.Fatal("query of absent item reported present")
	}
}

func TestPersistencyOncePerPeriod(t *testing.T) {
	// An item appearing many times in each of 5 periods must end with
	// persistency exactly 5 (the core CLOCK property).
	l := New(Options{MemoryBytes: 1 << 16, Weights: stream.Persistent,
		ItemsPerPeriod: 100, Seed: 3})
	for p := 0; p < 5; p++ {
		for i := 0; i < 100; i++ {
			l.Insert(42)
		}
		l.EndPeriod()
	}
	e, ok := l.Query(42)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Persistency != 5 {
		t.Fatalf("persistency = %d, want 5", e.Persistency)
	}
}

func TestPersistencySkippedPeriods(t *testing.T) {
	// Appearing only in periods 1, 3 and 5 of 6 yields persistency 3.
	l := New(Options{MemoryBytes: 1 << 16, Weights: stream.Persistent, Seed: 4})
	for p := 0; p < 6; p++ {
		if p%2 == 0 {
			for i := 0; i < 10; i++ {
				l.Insert(42)
			}
		} else {
			for i := 0; i < 10; i++ {
				l.Insert(stream.Item(1000 + i)) // keep periods non-empty
			}
		}
		l.EndPeriod()
	}
	e, ok := l.Query(42)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Persistency != 3 {
		t.Fatalf("persistency = %d, want 3", e.Persistency)
	}
}

func TestMidStreamQueryCountsUnsweptFlags(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 16, Weights: stream.Persistent, Seed: 5})
	l.Insert(42)
	// No EndPeriod yet: the current-period appearance must still show as
	// persistency 1.
	e, ok := l.Query(42)
	if !ok || e.Persistency != 1 {
		t.Fatalf("mid-stream persistency = %d (ok=%v), want 1", e.Persistency, ok)
	}
}

func TestSignificanceDecrementExpelsSmallest(t *testing.T) {
	// d=1 so each bucket holds one item; drive a collision and check the
	// decrement-then-replace behaviour.
	l := New(Options{MemoryBytes: CellBytes, BucketWidth: 1,
		Weights: stream.Frequent, DisableLongTailReplacement: true, Seed: 6})
	if l.Buckets() != 1 {
		t.Fatalf("want a single bucket, got %d", l.Buckets())
	}
	l.Insert(1)
	l.Insert(1)
	l.Insert(1) // f(1) = 3
	// Three arrivals of 2 decrement f(1) to zero; the third expels item 1
	// and inserts item 2 with the basic initial value 1.
	l.Insert(2)
	l.Insert(2)
	if _, ok := l.Query(1); !ok {
		t.Fatal("item 1 evicted too early")
	}
	l.Insert(2)
	if _, ok := l.Query(1); ok {
		t.Fatal("item 1 should have been expelled")
	}
	e, ok := l.Query(2)
	if !ok {
		t.Fatal("item 2 not inserted after expulsion")
	}
	if e.Frequency != 1 {
		t.Fatalf("basic initial frequency = %d, want 1", e.Frequency)
	}
}

func TestLongTailReplacementInitialValue(t *testing.T) {
	// d=2, single bucket. Fill with items of frequency 10 and 3; expel the
	// smaller; the newcomer starts at second-smallest−1 = 10−1 = 9? No —
	// after expelling the f=3 item, the remaining smallest is f=10, so the
	// newcomer starts at 10−1 = 9.
	l := New(Options{MemoryBytes: 2 * CellBytes, BucketWidth: 2,
		Weights: stream.Frequent, Seed: 7})
	if l.Buckets() != 1 {
		t.Fatalf("want a single bucket, got %d", l.Buckets())
	}
	for i := 0; i < 10; i++ {
		l.Insert(1)
	}
	for i := 0; i < 3; i++ {
		l.Insert(2)
	}
	// Item 3 arrives 4 times: decrements f(2) 3→0, expelled on the third,
	// third arrival inserts item 3.
	for i := 0; i < 3; i++ {
		l.Insert(3)
	}
	e, ok := l.Query(3)
	if !ok {
		t.Fatal("item 3 not inserted")
	}
	if e.Frequency != 9 {
		t.Fatalf("LTR initial frequency = %d, want 9 (second smallest 10 − 1)", e.Frequency)
	}
	// The newcomer must still be the smallest: item 1 untouched at 10.
	e1, _ := l.Query(1)
	if e1.Frequency != 10 {
		t.Fatalf("survivor frequency = %d, want 10", e1.Frequency)
	}
}

func TestLongTailInitSingleCellBucket(t *testing.T) {
	// With d=1 there is no second smallest; LTR must fall back to 1.
	l := New(Options{MemoryBytes: CellBytes, BucketWidth: 1,
		Weights: stream.Frequent, Seed: 8})
	l.Insert(1)
	l.Insert(2) // decrements f(1) 1→0, expels, inserts item 2
	e, ok := l.Query(2)
	if !ok {
		t.Fatal("item 2 missing")
	}
	if e.Frequency != 1 {
		t.Fatalf("fallback initial frequency = %d, want 1", e.Frequency)
	}
}

func TestNoOverestimationProperty(t *testing.T) {
	// Theorem IV.1: with the Deviation Eliminator and without Long-tail
	// Replacement, the estimated significance never exceeds the real one.
	for _, weights := range []stream.Weights{stream.Frequent, stream.Persistent,
		stream.Balanced, {Alpha: 1, Beta: 10}} {
		s := gen.Generate(gen.Config{N: 30000, M: 3000, Periods: 25, Skew: 1.0,
			Head: 30, TailWindowFrac: 0.4, Seed: 99})
		o := oracle.FromStream(s, weights)
		l := New(Options{MemoryBytes: 4 * 1024, Weights: weights,
			DisableLongTailReplacement: true,
			ItemsPerPeriod:             s.ItemsPerPeriod(), Seed: 9})
		s.Replay(l)
		for _, e := range l.TopK(1 << 20) {
			real, ok := o.Query(e.Item)
			if !ok {
				t.Fatalf("weights %v: tracked phantom item %d", weights, e.Item)
			}
			if e.Significance > real.Significance+1e-9 {
				t.Fatalf("weights %v: item %d overestimated: est %.1f > real %.1f",
					weights, e.Item, e.Significance, real.Significance)
			}
		}
	}
}

func TestPersistencyNeverExceedsPeriods(t *testing.T) {
	// Even with LTR enabled, reported persistency can never exceed the
	// number of periods (LTR seeds from a sibling cell, which itself obeys
	// the bound).
	const periods = 12
	s := gen.Generate(gen.Config{N: 24000, M: 1000, Periods: periods,
		Skew: 0.9, Head: 20, TailWindowFrac: 0.5, Seed: 17})
	l := New(Options{MemoryBytes: 2048, Weights: stream.Persistent,
		ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 10})
	s.Replay(l)
	for _, e := range l.TopK(1 << 20) {
		if e.Persistency > periods {
			t.Fatalf("item %d persistency %d > %d periods", e.Item, e.Persistency, periods)
		}
	}
}

func TestFrequencyNeverExceedsStreamLength(t *testing.T) {
	s := gen.Generate(gen.Config{N: 10000, M: 200, Periods: 10, Skew: 1.2, Seed: 18})
	l := New(Options{MemoryBytes: 1024, Weights: stream.Frequent,
		ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 11})
	s.Replay(l)
	var total uint64
	for _, e := range l.TopK(1 << 20) {
		total += e.Frequency
	}
	if total > uint64(s.Len()) {
		t.Fatalf("tracked frequencies sum to %d > stream length %d", total, s.Len())
	}
}

func TestTopKOrderingAndBound(t *testing.T) {
	l := newSmall(stream.Frequent, 1<<16)
	for i := 1; i <= 20; i++ {
		for j := 0; j < i; j++ {
			l.Insert(stream.Item(i))
		}
	}
	l.EndPeriod()
	top := l.TopK(5)
	if len(top) != 5 {
		t.Fatalf("TopK(5) returned %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Significance > top[i-1].Significance {
			t.Fatal("TopK not sorted descending")
		}
	}
	if top[0].Item != 20 {
		t.Fatalf("top item = %d, want 20", top[0].Item)
	}
}

func TestTopKLargerThanOccupancy(t *testing.T) {
	l := newSmall(stream.Frequent, 1<<16)
	l.Insert(1)
	l.Insert(2)
	if got := len(l.TopK(100)); got != 2 {
		t.Fatalf("TopK(100) = %d entries, want 2", got)
	}
}

func TestAdaptiveStepConverges(t *testing.T) {
	// Without ItemsPerPeriod, persistency counting must still work from
	// the second period on (the first period is completed by EndPeriod).
	l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Persistent, Seed: 12})
	for p := 0; p < 8; p++ {
		for i := 0; i < 200; i++ {
			l.Insert(stream.Item(i % 50))
		}
		l.EndPeriod()
	}
	e, ok := l.Query(7)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Persistency != 8 {
		t.Fatalf("adaptive persistency = %d, want 8", e.Persistency)
	}
}

func TestBasicModeDeviates(t *testing.T) {
	// Construct the Fig 4 deviation: in basic mode a single real period of
	// appearances can be credited twice when arrivals straddle the sweep.
	// We only assert the weaker, always-true property that basic-mode
	// estimates can differ from DE-mode estimates on the same stream, and
	// that the DE mode matches the oracle for a never-evicted item.
	s := gen.Generate(gen.Config{N: 20000, M: 400, Periods: 20, Skew: 1.0,
		Head: 10, TailWindowFrac: 0.5, Seed: 55})
	o := oracle.FromStream(s, stream.Persistent)
	de := New(Options{MemoryBytes: 1 << 16, Weights: stream.Persistent,
		ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 13})
	s.Replay(de)
	// With 64 KiB for 400 items nothing is evicted; DE must be exact.
	for _, e := range o.TopK(10) {
		got, ok := de.Query(e.Item)
		if !ok {
			t.Fatalf("item %d lost despite ample memory", e.Item)
		}
		if got.Persistency != e.Persistency {
			t.Fatalf("item %d: DE persistency %d, oracle %d", e.Item,
				got.Persistency, e.Persistency)
		}
	}
}

func TestLTRImprovesPrecisionOnZipf(t *testing.T) {
	// Fig 8 in miniature: on a long-tail stream with tight memory, the
	// optimized version must not be worse than the basic replacement.
	s := gen.Generate(gen.Config{N: 60000, M: 8000, Periods: 20, Skew: 1.0,
		Head: 100, TailWindowFrac: 0.5, Seed: 77})
	o := oracle.FromStream(s, stream.Frequent)
	run := func(disableLTR bool) float64 {
		l := New(Options{MemoryBytes: 4 * 1024, Weights: stream.Frequent,
			DisableLongTailReplacement: disableLTR,
			ItemsPerPeriod:             s.ItemsPerPeriod(), Seed: 14})
		s.Replay(l)
		return metrics.Evaluate(o, l, 100).Precision
	}
	with := run(false)
	without := run(true)
	if with+0.05 < without {
		t.Fatalf("LTR hurt precision: with %.2f, without %.2f", with, without)
	}
	if with < 0.5 {
		t.Fatalf("LTC precision %.2f implausibly low on easy workload", with)
	}
}

func TestAccuracyWithAmpleMemoryIsPerfect(t *testing.T) {
	s := gen.Generate(gen.Config{N: 20000, M: 500, Periods: 10, Skew: 1.0,
		Head: 50, TailWindowFrac: 0.5, Seed: 21})
	o := oracle.FromStream(s, stream.Balanced)
	l := New(Options{MemoryBytes: 1 << 18, Weights: stream.Balanced,
		ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 15})
	s.Replay(l)
	r := metrics.Evaluate(o, l, 50)
	if r.Precision != 1 {
		t.Fatalf("precision %.2f with ample memory, want 1", r.Precision)
	}
	if r.ARE > 1e-9 {
		t.Fatalf("ARE %.4g with ample memory, want 0", r.ARE)
	}
}

func TestSignificanceWeightsRespected(t *testing.T) {
	w := stream.Weights{Alpha: 2, Beta: 5}
	l := New(Options{MemoryBytes: 1 << 16, Weights: w, Seed: 16})
	for p := 0; p < 3; p++ {
		l.Insert(42)
		l.EndPeriod()
	}
	e, _ := l.Query(42)
	if want := w.Significance(e.Frequency, e.Persistency); e.Significance != want {
		t.Fatalf("significance %v, want %v", e.Significance, want)
	}
	if e.Frequency != 3 || e.Persistency != 3 {
		t.Fatalf("f=%d p=%d, want 3/3", e.Frequency, e.Persistency)
	}
}

func TestRandomizedAgainstOracleSmall(t *testing.T) {
	// Randomized cross-check: with memory covering the whole universe, LTC
	// with DE (LTR irrelevant: no evictions) must agree exactly with the
	// oracle on frequency and persistency for every item.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		items := make([]stream.Item, 2000)
		for i := range items {
			items[i] = stream.Item(rng.Intn(60) + 1)
		}
		s := &stream.Stream{Items: items, Periods: 8}
		o := oracle.FromStream(s, stream.Balanced)
		l := New(Options{MemoryBytes: 1 << 16, Weights: stream.Balanced,
			ItemsPerPeriod: s.ItemsPerPeriod(), Seed: uint32(trial)})
		s.Replay(l)
		for _, e := range o.All() {
			got, ok := l.Query(e.Item)
			if !ok {
				t.Fatalf("trial %d: item %d lost", trial, e.Item)
			}
			if got.Frequency != e.Frequency || got.Persistency != e.Persistency {
				t.Fatalf("trial %d item %d: got f=%d p=%d, want f=%d p=%d",
					trial, e.Item, got.Frequency, got.Persistency,
					e.Frequency, e.Persistency)
			}
		}
	}
}

func TestOccupancyAndString(t *testing.T) {
	l := newSmall(stream.Frequent, 1<<12)
	if l.Occupancy() != 0 {
		t.Fatal("fresh table should be empty")
	}
	l.Insert(1)
	l.Insert(2)
	if l.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", l.Occupancy())
	}
	if l.String() == "" {
		t.Fatal("String must describe the configuration")
	}
}

func BenchmarkInsert(b *testing.B) {
	s := gen.NetworkLike(1<<17, 1)
	l := New(Options{MemoryBytes: 64 * 1024, Weights: stream.Balanced,
		ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(s.Items[i&(1<<17-1)])
	}
}

func BenchmarkQuery(b *testing.B) {
	s := gen.NetworkLike(1<<17, 1)
	l := New(Options{MemoryBytes: 64 * 1024, Weights: stream.Balanced,
		ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 1})
	s.Replay(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Query(s.Items[i&(1<<17-1)])
	}
}
