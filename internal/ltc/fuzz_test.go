package ltc

import (
	"testing"

	"sigstream/internal/stream"
)

// FuzzOps drives an LTC with an arbitrary operation tape and checks the
// structural invariants that must hold for ANY input: no panics, reported
// persistency bounded by elapsed periods, TopK sorted, frequency sum
// bounded by arrivals.
func FuzzOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 4, 4, 0, 9}, uint16(256), false, false)
	f.Add([]byte{0, 0, 0}, uint16(64), true, false)
	f.Add([]byte{255, 254, 253, 0, 1}, uint16(16), false, true)
	f.Fuzz(func(t *testing.T, tape []byte, memWords uint16, noDE, noLTR bool) {
		l := New(Options{
			MemoryBytes:                int(memWords),
			Weights:                    stream.Balanced,
			DisableDeviationEliminator: noDE,
			DisableLongTailReplacement: noLTR,
			ItemsPerPeriod:             8,
		})
		arrivals := uint64(0)
		periods := uint64(1)
		for _, b := range tape {
			if b == 0 {
				l.EndPeriod()
				periods++
				continue
			}
			// Map bytes onto a small item space to force collisions.
			l.Insert(stream.Item(b % 32))
			arrivals++
		}
		l.EndPeriod()
		periods++

		var freqSum uint64
		top := l.TopK(1 << 20)
		for i, e := range top {
			// The persistency-per-period bound is a Deviation Eliminator
			// guarantee: the basic single-flag CLOCK deliberately deviates
			// (paper Fig 4) and can lap the table when the configured
			// ItemsPerPeriod underestimates the real arrival rate.
			if !noDE && e.Persistency > periods {
				t.Fatalf("persistency %d exceeds %d periods", e.Persistency, periods)
			}
			freqSum += e.Frequency
			if i > 0 && e.Significance > top[i-1].Significance {
				t.Fatal("TopK not sorted")
			}
		}
		if !noLTR {
			return // LTR re-seeds admissions, so the sum bound is basic-only
		}
		if freqSum > arrivals {
			t.Fatalf("frequency sum %d exceeds %d arrivals", freqSum, arrivals)
		}
	})
}

// FuzzCheckpoint feeds arbitrary bytes to UnmarshalBinary: it must reject
// garbage with an error, never panic, and round-trip its own output.
func FuzzCheckpoint(f *testing.F) {
	l := New(Options{MemoryBytes: 512, Weights: stream.Balanced})
	for i := 0; i < 40; i++ {
		l.Insert(stream.Item(i % 7))
	}
	l.EndPeriod()
	img, _ := l.MarshalBinary()
	f.Add(img)
	f.Add([]byte{})
	f.Add(img[:8])
	f.Fuzz(func(t *testing.T, data []byte) {
		var restored LTC
		if err := restored.UnmarshalBinary(data); err != nil {
			return // rejected, fine
		}
		// Accepted images must be internally consistent: re-marshal and
		// re-load without error.
		img2, err := restored.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted checkpoint failed to re-marshal: %v", err)
		}
		var again LTC
		if err := again.UnmarshalBinary(img2); err != nil {
			t.Fatalf("re-marshaled checkpoint rejected: %v", err)
		}
		restored.Insert(1)
		restored.EndPeriod()
		_ = restored.TopK(10)
	})
}
