// Package ltc implements LTC (Long-Tail CLOCK), the paper's algorithm for
// finding top-k significant items in a data stream.
//
// LTC keeps a lossy table of w buckets × d cells. Each cell stores an item
// ID, an estimated frequency, and a persistency field made of a counter and
// flag bits. An item's significance is α·frequency + β·persistency.
//
// The two key techniques are:
//
//   - A modified CLOCK algorithm: a pointer sweeps the table exactly once
//     per period; a swept cell whose flag is set gets its persistency
//     counter incremented and the flag cleared, so persistency grows by at
//     most 1 per period no matter how many times the item appeared. The
//     Deviation Eliminator optimization uses two parity flags (even/odd
//     periods) so the swept flag always belongs to the previous period,
//     eliminating the up-to-one-period deviation of a single-flag CLOCK.
//
//   - Long-tail Replacement: when an arriving item finally expels the
//     smallest cell of a full bucket (by decrementing its significance to
//     zero), the new item's initial frequency and persistency are set to the
//     bucket's second-smallest values minus one, recovering the frequency
//     the new item likely spent on the eviction under a long-tail
//     distribution.
package ltc

import (
	"fmt"

	"sigstream/internal/hashing"
	"sigstream/internal/stream"
)

// CellBytes is the memory accounting per cell: 8-byte item ID, 4-byte
// frequency, 4-byte persistency field (counter plus flag bits), matching the
// paper's cost model.
const CellBytes = 16

// DefaultBucketWidth is d, the number of cells per bucket. The paper
// selects d = 8 from its appendix experiments.
const DefaultBucketWidth = 8

const (
	flagEven uint8 = 1 << iota // appearance flag for even-numbered periods
	flagOdd                    // appearance flag for odd-numbered periods
	flagOccupied
)

type cell struct {
	id      stream.Item
	freq    uint32
	counter uint32
	flags   uint8
}

func (c *cell) occupied() bool { return c.flags&flagOccupied != 0 }

func (c *cell) clear() { *c = cell{} }

// ReplacementPolicy selects how a full bucket admits a new item — the
// design choice the paper's Long-tail Replacement section is about. All
// policies except ReplaceEager first decrement the smallest cell's
// significance and replace only when it reaches zero; they differ in the
// admitted item's initial value.
type ReplacementPolicy int

const (
	// ReplaceLongTail is the paper's optimization: initial value =
	// second-smallest in the bucket minus one (default).
	ReplaceLongTail ReplacementPolicy = iota
	// ReplaceBasic initializes to 1 (the basic version; what
	// DisableLongTailReplacement selects).
	ReplaceBasic
	// ReplaceSecondSmallest initializes to the second-smallest value
	// without the minus-one adjustment (ablation: is the −1 needed to keep
	// the newcomer smallest?).
	ReplaceSecondSmallest
	// ReplaceEager is the Space-Saving rule the paper argues against:
	// replace the smallest cell immediately and initialize to its value
	// plus one. It reintroduces overestimation error.
	ReplaceEager
)

// String names the policy for experiment output.
func (p ReplacementPolicy) String() string {
	switch p {
	case ReplaceBasic:
		return "basic"
	case ReplaceSecondSmallest:
		return "second-smallest"
	case ReplaceEager:
		return "eager"
	default:
		return "long-tail"
	}
}

// Options configures an LTC instance. The zero value of the feature toggles
// selects the full algorithm (both optimizations on).
type Options struct {
	// MemoryBytes is the total memory budget; the bucket count is derived
	// as w = MemoryBytes / (CellBytes · BucketWidth).
	MemoryBytes int
	// BucketWidth is d, the cells per bucket (default DefaultBucketWidth).
	BucketWidth int
	// Weights are the significance coefficients α and β.
	Weights stream.Weights
	// ItemsPerPeriod is the expected number of arrivals per period (the
	// paper's n), used to derive the CLOCK step m/n. If zero, the step
	// adapts using the previous period's observed arrival count.
	ItemsPerPeriod int
	// DisableDeviationEliminator reverts to the basic single-flag CLOCK
	// (Section III-B), which can over- or under-count persistency by one
	// period. Used by the Fig 11 ablation.
	DisableDeviationEliminator bool
	// Replacement selects the bucket-admission policy (default
	// ReplaceLongTail, the paper's optimization).
	Replacement ReplacementPolicy
	// DisableLongTailReplacement is a convenience alias for
	// Replacement = ReplaceBasic (Section III-B's initial value 1). Used by
	// the Fig 8 ablation; ignored when Replacement is set explicitly.
	DisableLongTailReplacement bool
	// PeriodDuration enables time-defined periods for InsertAt: the length
	// of one period in the same unit as InsertAt timestamps. Ignored by
	// Insert/EndPeriod-driven streams.
	PeriodDuration float64
	// DecayFactor λ ∈ (0,1) exponentially ages counts at each period
	// boundary (see decay.go). 0 or 1 disables decay (the paper's exact
	// semantics). Extension beyond the paper.
	DecayFactor float64
	// Seed keys the bucket hash function.
	Seed uint32
}

// LTC is the Long-Tail CLOCK structure. It is not safe for concurrent use;
// wrap it or shard the stream for multi-goroutine ingestion.
type LTC struct {
	opts  Options
	w, d  int
	m     int // total cells, w·d
	cells []cell
	hash  hashing.Bob

	// CLOCK state.
	ptr          int     // next cell index the sweep pointer visits
	acc          float64 // fractional cells owed to the sweep
	step         float64 // cells to sweep per arriving item (m/n)
	swept        int     // cells swept so far this period
	parity       uint8   // flagEven or flagOdd: the *current* period's flag
	itemsInPer   int     // arrivals seen this period (for adaptive stepping)
	adaptiveStep bool

	// Time-defined period state (InsertAt).
	timeAnchored bool
	periodStart  float64
	lastArrival  float64
	timeDebt     float64 // cells owed to the sweep by elapsed time

	stats stream.Counters
}

// New builds an LTC from opts.
func New(opts Options) *LTC {
	if opts.BucketWidth <= 0 {
		opts.BucketWidth = DefaultBucketWidth
	}
	if opts.MemoryBytes <= 0 {
		opts.MemoryBytes = 64 * 1024
	}
	d := opts.BucketWidth
	w := opts.MemoryBytes / (CellBytes * d)
	if w < 1 {
		w = 1
	}
	if opts.Replacement == ReplaceLongTail && opts.DisableLongTailReplacement {
		opts.Replacement = ReplaceBasic
	}
	opts.DisableLongTailReplacement = opts.Replacement == ReplaceBasic
	l := &LTC{
		opts:   opts,
		w:      w,
		d:      d,
		m:      w * d,
		cells:  make([]cell, w*d),
		hash:   hashing.NewBob(opts.Seed ^ 0x17c5),
		parity: flagEven,
	}
	if opts.ItemsPerPeriod > 0 {
		l.step = float64(l.m) / float64(opts.ItemsPerPeriod)
	} else {
		l.adaptiveStep = true
		l.step = 0 // first period relies on the EndPeriod completion sweep
	}
	return l
}

// Buckets returns w, the number of buckets.
func (l *LTC) Buckets() int { return l.w }

// BucketWidth returns d, the number of cells per bucket.
func (l *LTC) BucketWidth() int { return l.d }

// Name identifies the configuration for experiment output.
func (l *LTC) Name() string {
	switch {
	case l.opts.DisableDeviationEliminator && l.opts.Replacement == ReplaceBasic:
		return "LTC-basic"
	case l.opts.Replacement == ReplaceBasic:
		return "LTC-noLTR"
	case l.opts.Replacement == ReplaceSecondSmallest:
		return "LTC-ss"
	case l.opts.Replacement == ReplaceEager:
		return "LTC-eager"
	case l.opts.DisableDeviationEliminator:
		return "LTC-noDE"
	}
	return "LTC"
}

// MemoryBytes reports the structure's accounted memory.
func (l *LTC) MemoryBytes() int { return l.m * CellBytes }

// previousFlag returns the parity bit the sweep consumes.
func (l *LTC) previousFlag() uint8 {
	if l.opts.DisableDeviationEliminator {
		return flagEven // basic mode uses a single flag
	}
	if l.parity == flagEven {
		return flagOdd
	}
	return flagEven
}

// currentFlag returns the parity bit set on appearance.
func (l *LTC) currentFlag() uint8 {
	if l.opts.DisableDeviationEliminator {
		return flagEven
	}
	return l.parity
}

// significance computes a cell's significance α·f + β·counter.
func (l *LTC) significance(c *cell) float64 {
	return l.opts.Weights.Significance(uint64(c.freq), uint64(c.counter))
}

// Insert records one arrival of item (Section III-B, cases 1–3), then
// advances the CLOCK pointer by its per-item step.
func (l *LTC) Insert(item stream.Item) {
	l.itemsInPer++
	l.stats.Arrivals++
	l.place(item)
	l.advanceClock()
}

// InsertBatch records one arrival for each item, in order
// (stream.BatchInserter). It is semantically identical to calling Insert
// per item — equivalence tests assert bit-identical Query/TopK output — but
// amortizes the per-arrival overhead: the arrival counters are bumped once
// per batch, the bucket probes run in one fused loop, and the CLOCK
// accumulator is flushed into sweeps only when at least one whole cell is
// owed, instead of paying the advance bookkeeping on every call.
func (l *LTC) InsertBatch(items []stream.Item) {
	if len(items) == 0 {
		return
	}
	l.itemsInPer += len(items)
	l.stats.Arrivals += uint64(len(items))
	l.stats.Batches++
	l.stats.BatchItems += uint64(len(items))
	if l.step <= 0 {
		// Adaptive pacing before the first EndPeriod: no sweep is owed, so
		// the batch is pure bucket probes.
		for _, it := range items {
			l.place(it)
		}
		return
	}
	for _, it := range items {
		l.place(it)
		// Inline advanceClock: identical state transitions, one call frame
		// saved per arrival.
		l.acc += l.step
		if l.acc >= 1 {
			n := int(l.acc)
			l.acc -= float64(n)
			if !l.opts.DisableDeviationEliminator {
				if remaining := l.m - l.swept; n > remaining {
					n = remaining
				}
			}
			if n > 0 {
				l.sweep(n)
			}
		}
	}
}

// place runs the three-case bucket update for one arrival.
//
// The bucket is scanned twice on the miss-with-full-bucket path: a cheap
// match/empty pass first and the significance minimum only when needed.
// (A single merged scan was measured slower — it adds float significance
// math to the hit path, which dominates on skewed streams.)
func (l *LTC) place(item stream.Item) {
	b := int(l.hash.Hash64(item)) % l.w
	if b < 0 {
		b += l.w
	}
	bucket := l.cells[b*l.d : (b+1)*l.d]

	// Case 1: item already tracked.
	var empty *cell
	for i := range bucket {
		c := &bucket[i]
		if !c.occupied() {
			if empty == nil {
				empty = c
			}
			continue
		}
		if c.id == item {
			c.flags |= l.currentFlag()
			c.freq++
			l.stats.Hits++
			return
		}
	}

	// Case 2: an empty cell exists.
	if empty != nil {
		l.fill(empty, item, 1, 0)
		l.stats.Admissions++
		return
	}

	// Case 3: full bucket.
	smallest := &bucket[0]
	minSig := l.significance(smallest)
	for i := 1; i < len(bucket); i++ {
		if s := l.significance(&bucket[i]); s < minSig {
			minSig = s
			smallest = &bucket[i]
		}
	}
	if l.opts.Replacement == ReplaceEager {
		// Space-Saving rule: replace immediately, inherit min's counts plus
		// one arrival. Reintroduces overestimation (the contrast the
		// paper's Long-tail Replacement section draws).
		initF, initC := smallest.freq+1, smallest.counter
		smallest.clear()
		l.fill(smallest, item, initF, initC)
		l.stats.Expulsions++
		l.stats.Admissions++
		return
	}
	// Significance Decrementing on the smallest cell.
	l.stats.Decrements++
	if smallest.counter > 0 {
		smallest.counter--
	}
	if smallest.freq > 0 {
		smallest.freq--
	}
	if l.significance(smallest) <= 0 {
		// Expel and insert the newcomer.
		var initF, initC uint32 = 1, 0
		switch l.opts.Replacement {
		case ReplaceLongTail:
			f2, c2 := l.secondSmallest(bucket, smallest)
			initF, initC = 1, 0
			if f2 > 1 {
				initF = f2 - 1
			}
			if c2 > 0 {
				initC = c2 - 1
			}
		case ReplaceSecondSmallest:
			initF, initC = l.secondSmallest(bucket, smallest)
			if initF < 1 {
				initF = 1
			}
		}
		smallest.clear()
		l.fill(smallest, item, initF, initC)
		l.stats.Expulsions++
		l.stats.Admissions++
	}
}

// fill installs item into the (empty) cell with the given initial values and
// marks its appearance in the current period.
func (l *LTC) fill(c *cell, item stream.Item, f, counter uint32) {
	c.id = item
	c.freq = f
	c.counter = counter
	c.flags = flagOccupied | l.currentFlag()
}

// secondSmallest returns the frequency and persistency counter of the
// least-significant surviving cell — the bucket's second smallest before
// the expulsion. With d = 1 there is no such cell and the basic initial
// values (1, 0) are returned.
func (l *LTC) secondSmallest(bucket []cell, expelled *cell) (f, counter uint32) {
	found := false
	var minSig float64
	var minF, minC uint32
	for i := range bucket {
		c := &bucket[i]
		if c == expelled || !c.occupied() {
			continue
		}
		s := l.significance(c)
		if !found || s < minSig {
			found = true
			minSig = s
			minF, minC = c.freq, c.counter
		}
	}
	if !found { // d == 1: no second-smallest exists
		return 1, 0
	}
	return minF, minC
}

// advanceClock moves the sweep pointer by the per-item step, scanning the
// cells it passes (Persistency Incrementing).
func (l *LTC) advanceClock() {
	if l.step <= 0 {
		return
	}
	l.acc += l.step
	n := int(l.acc)
	if n <= 0 {
		return
	}
	l.acc -= float64(n)
	if !l.opts.DisableDeviationEliminator {
		// With the Deviation Eliminator the per-period sweep is bounded by
		// one full pass; EndPeriod completes whatever remains. (In basic
		// mode the pointer runs free — lapping or undershooting is exactly
		// the deviation the optimization removes.)
		if remaining := l.m - l.swept; n > remaining {
			n = remaining
		}
	}
	l.sweep(n)
}

// sweep scans n cells from the pointer, consuming previous-period flags.
func (l *LTC) sweep(n int) {
	prev := l.previousFlag()
	for i := 0; i < n; i++ {
		c := &l.cells[l.ptr]
		if c.flags&prev != 0 {
			c.counter++
			c.flags &^= prev
			l.stats.FlagConsumed++
		}
		l.ptr++
		if l.ptr == l.m {
			l.ptr = 0
		}
	}
	l.swept += n
	l.stats.CellsSwept += uint64(n)
}

// EndPeriod closes the current period. With the Deviation Eliminator it
// completes the sweep (consuming all remaining previous-period flags) and
// flips the parity, which performs the flag refreshment implicitly
// (Section III-C, "Refreshment elimination").
func (l *LTC) EndPeriod() {
	if !l.opts.DisableDeviationEliminator {
		if remaining := l.m - l.swept; remaining > 0 {
			l.sweep(remaining)
		}
		if l.parity == flagEven {
			l.parity = flagOdd
		} else {
			l.parity = flagEven
		}
		l.stats.ParityFlips++
	}
	l.stats.Periods++
	l.applyDecay()
	if l.adaptiveStep && l.itemsInPer > 0 {
		l.step = float64(l.m) / float64(l.itemsInPer)
	}
	l.swept = 0
	l.acc = 0
	l.timeDebt = 0
	l.itemsInPer = 0
}

// entry converts a cell to a reported Entry. Flags that have been set but
// not yet consumed by the sweep each represent one real period of
// appearance, so they are included in the reported persistency.
func (l *LTC) entry(c *cell) stream.Entry {
	p := uint64(c.counter)
	if c.flags&flagEven != 0 {
		p++
	}
	if c.flags&flagOdd != 0 {
		p++
	}
	return stream.Entry{
		Item:         c.id,
		Frequency:    uint64(c.freq),
		Persistency:  p,
		Significance: l.opts.Weights.Significance(uint64(c.freq), p),
	}
}

// Query reports the estimate for item, if tracked.
func (l *LTC) Query(item stream.Item) (stream.Entry, bool) {
	b := int(l.hash.Hash64(item)) % l.w
	if b < 0 {
		b += l.w
	}
	bucket := l.cells[b*l.d : (b+1)*l.d]
	for i := range bucket {
		c := &bucket[i]
		if c.occupied() && c.id == item {
			return l.entry(c), true
		}
	}
	return stream.Entry{}, false
}

// TopK reports the k tracked items with the largest significance. k ≤ 0
// yields an empty result.
func (l *LTC) TopK(k int) []stream.Entry {
	if k <= 0 {
		return nil
	}
	es := make([]stream.Entry, 0, k)
	for i := range l.cells {
		c := &l.cells[i]
		if c.occupied() {
			es = append(es, l.entry(c))
		}
	}
	return stream.TopKFromEntries(es, k)
}

// Stats returns the tracker's observability snapshot: geometry, occupancy
// and the cumulative operation counters (stream.StatsReporter). The
// occupancy gauge scans the table, so Stats is a diagnostics call, not a
// hot-path one.
func (l *LTC) Stats() stream.Stats {
	return stream.Stats{
		Tracker:     l.Name(),
		MemoryBytes: l.MemoryBytes(),
		Shards:      1,
		Buckets:     l.w,
		BucketWidth: l.d,
		Cells:       l.m,
		Occupied:    l.Occupancy(),
		Alpha:       l.opts.Weights.Alpha,
		Beta:        l.opts.Weights.Beta,
		Counters:    l.stats,
	}
}

// Occupancy reports the number of occupied cells (for diagnostics).
func (l *LTC) Occupancy() int {
	n := 0
	for i := range l.cells {
		if l.cells[i].occupied() {
			n++
		}
	}
	return n
}

// String summarizes the configuration.
func (l *LTC) String() string {
	return fmt.Sprintf("%s{w=%d d=%d mem=%dB α:β=%s}", l.Name(), l.w, l.d,
		l.MemoryBytes(), l.opts.Weights)
}

var (
	_ stream.Tracker       = (*LTC)(nil)
	_ stream.BatchInserter = (*LTC)(nil)
	_ stream.StatsReporter = (*LTC)(nil)
)
