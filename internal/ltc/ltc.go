// Package ltc implements LTC (Long-Tail CLOCK), the paper's algorithm for
// finding top-k significant items in a data stream.
//
// LTC keeps a lossy table of w buckets × d cells. Each cell stores an item
// ID, an estimated frequency, and a persistency field made of a counter and
// flag bits. An item's significance is α·frequency + β·persistency.
//
// The two key techniques are:
//
//   - A modified CLOCK algorithm: a pointer sweeps the table exactly once
//     per period; a swept cell whose flag is set gets its persistency
//     counter incremented and the flag cleared, so persistency grows by at
//     most 1 per period no matter how many times the item appeared. The
//     Deviation Eliminator optimization uses two parity flags (even/odd
//     periods) so the swept flag always belongs to the previous period,
//     eliminating the up-to-one-period deviation of a single-flag CLOCK.
//
//   - Long-tail Replacement: when an arriving item finally expels the
//     smallest cell of a full bucket (by decrementing its significance to
//     zero), the new item's initial frequency and persistency are set to the
//     bucket's second-smallest values minus one, recovering the frequency
//     the new item likely spent on the eviction under a long-tail
//     distribution.
//
// The table is laid out as a structure of arrays: a dense []uint64 ID lane
// plus parallel frequency, counter and flag lanes. A Case-1 hit — the hot
// path on any skewed stream — resolves by scanning only the ID lane, which
// for the default d = 8 is exactly one 64-byte cache line per probe; the
// other lanes are touched only on the matched cell. The interleaved
// array-of-structs layout this replaced straddled three cache lines per
// bucket scan. The serialized checkpoint format is unaffected: the codec
// converts between the lanes and the stable interleaved wire cells on
// encode/decode.
package ltc

import (
	"fmt"

	"sigstream/internal/hashing"
	"sigstream/internal/stream"
)

// CellBytes is the memory accounting per cell: 8-byte item ID, 4-byte
// frequency, 4-byte persistency field (counter plus flag bits), matching the
// paper's cost model.
const CellBytes = 16

// DefaultBucketWidth is d, the number of cells per bucket. The paper
// selects d = 8 from its appendix experiments.
const DefaultBucketWidth = 8

const (
	flagEven uint8 = 1 << iota // appearance flag for even-numbered periods
	flagOdd                    // appearance flag for odd-numbered periods
	flagOccupied
)

// ReplacementPolicy selects how a full bucket admits a new item — the
// design choice the paper's Long-tail Replacement section is about. All
// policies except ReplaceEager first decrement the smallest cell's
// significance and replace only when it reaches zero; they differ in the
// admitted item's initial value.
type ReplacementPolicy int

const (
	// ReplaceLongTail is the paper's optimization: initial value =
	// second-smallest in the bucket minus one (default).
	ReplaceLongTail ReplacementPolicy = iota
	// ReplaceBasic initializes to 1 (the basic version; what
	// DisableLongTailReplacement selects).
	ReplaceBasic
	// ReplaceSecondSmallest initializes to the second-smallest value
	// without the minus-one adjustment (ablation: is the −1 needed to keep
	// the newcomer smallest?).
	ReplaceSecondSmallest
	// ReplaceEager is the Space-Saving rule the paper argues against:
	// replace the smallest cell immediately and initialize to its value
	// plus one. It reintroduces overestimation error.
	ReplaceEager
)

// String names the policy for experiment output.
func (p ReplacementPolicy) String() string {
	switch p {
	case ReplaceBasic:
		return "basic"
	case ReplaceSecondSmallest:
		return "second-smallest"
	case ReplaceEager:
		return "eager"
	default:
		return "long-tail"
	}
}

// Options configures an LTC instance. The zero value of the feature toggles
// selects the full algorithm (both optimizations on).
type Options struct {
	// MemoryBytes is the total memory budget; the bucket count is derived
	// as w = MemoryBytes / (CellBytes · BucketWidth).
	MemoryBytes int
	// BucketWidth is d, the cells per bucket (default DefaultBucketWidth).
	BucketWidth int
	// Weights are the significance coefficients α and β.
	Weights stream.Weights
	// ItemsPerPeriod is the expected number of arrivals per period (the
	// paper's n), used to derive the CLOCK step m/n. If zero, the step
	// adapts using the previous period's observed arrival count.
	ItemsPerPeriod int
	// DisableDeviationEliminator reverts to the basic single-flag CLOCK
	// (Section III-B), which can over- or under-count persistency by one
	// period. Used by the Fig 11 ablation.
	DisableDeviationEliminator bool
	// Replacement selects the bucket-admission policy (default
	// ReplaceLongTail, the paper's optimization).
	Replacement ReplacementPolicy
	// DisableLongTailReplacement is a convenience alias for
	// Replacement = ReplaceBasic (Section III-B's initial value 1). Used by
	// the Fig 8 ablation; ignored when Replacement is set explicitly.
	DisableLongTailReplacement bool
	// PeriodDuration enables time-defined periods for InsertAt: the length
	// of one period in the same unit as InsertAt timestamps. Ignored by
	// Insert/EndPeriod-driven streams.
	PeriodDuration float64
	// DecayFactor λ ∈ (0,1) exponentially ages counts at each period
	// boundary (see decay.go). 0 or 1 disables decay (the paper's exact
	// semantics). Extension beyond the paper.
	DecayFactor float64
	// Seed keys the bucket hash function.
	Seed uint32
}

// LTC is the Long-Tail CLOCK structure. It is not safe for concurrent use;
// wrap it or shard the stream for multi-goroutine ingestion.
type LTC struct {
	opts Options
	w, d int
	m    int // total cells, w·d

	// Cell state, structure-of-arrays. ids is the Case-1 scan lane (one
	// cache line per d=8 bucket); the other lanes are indexed by the same
	// cell index and touched only on match, admission, eviction or sweep.
	ids      []uint64
	freqs    []uint32
	counters []uint32
	flags    []uint8
	occupied int // occupied-cell count, maintained on fill/clear (O(1) Occupancy)

	hash hashing.Bob
	modM uint64 // Lemire reduction constant ⌈2⁶⁴ / w⌉ (see reduce.go)

	// Fixed-point significance comparator (see sig.go).
	fixOK      bool
	aFix, bFix uint64

	// CLOCK state.
	ptr          int     // next cell index the sweep pointer visits
	acc          float64 // fractional cells owed to the sweep
	step         float64 // cells to sweep per arriving item (m/n)
	swept        int     // cells swept so far this period
	parity       uint8   // flagEven or flagOdd: the *current* period's flag
	itemsInPer   int     // arrivals seen this period (for adaptive stepping)
	adaptiveStep bool

	// Time-defined period state (InsertAt).
	timeAnchored bool
	periodStart  float64
	lastArrival  float64
	timeDebt     float64 // cells owed to the sweep by elapsed time

	stats stream.Counters
}

// New builds an LTC from opts.
func New(opts Options) *LTC {
	if opts.BucketWidth <= 0 {
		opts.BucketWidth = DefaultBucketWidth
	}
	if opts.MemoryBytes <= 0 {
		opts.MemoryBytes = 64 * 1024
	}
	d := opts.BucketWidth
	w := opts.MemoryBytes / (CellBytes * d)
	if w < 1 {
		w = 1
	}
	if opts.Replacement == ReplaceLongTail && opts.DisableLongTailReplacement {
		opts.Replacement = ReplaceBasic
	}
	opts.DisableLongTailReplacement = opts.Replacement == ReplaceBasic
	m := w * d
	l := &LTC{
		opts:     opts,
		w:        w,
		d:        d,
		m:        m,
		ids:      make([]uint64, m),
		freqs:    make([]uint32, m),
		counters: make([]uint32, m),
		flags:    make([]uint8, m),
		hash:     hashing.NewBob(opts.Seed ^ 0x17c5),
		modM:     fastmodM(w),
		parity:   flagEven,
	}
	l.aFix, l.bFix, l.fixOK = fixedWeights(opts.Weights)
	if opts.ItemsPerPeriod > 0 {
		l.step = float64(l.m) / float64(opts.ItemsPerPeriod)
	} else {
		l.adaptiveStep = true
		l.step = 0 // first period relies on the EndPeriod completion sweep
	}
	return l
}

// fixedWeights derives the Q44.20 comparator weights, enabled only when
// both α and β are exactly representable (sig.go documents why that makes
// the comparison order identical to float64).
func fixedWeights(w stream.Weights) (aFix, bFix uint64, ok bool) {
	var aok, bok bool
	aFix, aok = fixedWeight(w.Alpha)
	bFix, bok = fixedWeight(w.Beta)
	return aFix, bFix, aok && bok
}

// Buckets returns w, the number of buckets.
func (l *LTC) Buckets() int { return l.w }

// BucketWidth returns d, the number of cells per bucket.
func (l *LTC) BucketWidth() int { return l.d }

// Name identifies the configuration for experiment output.
func (l *LTC) Name() string {
	switch {
	case l.opts.DisableDeviationEliminator && l.opts.Replacement == ReplaceBasic:
		return "LTC-basic"
	case l.opts.Replacement == ReplaceBasic:
		return "LTC-noLTR"
	case l.opts.Replacement == ReplaceSecondSmallest:
		return "LTC-ss"
	case l.opts.Replacement == ReplaceEager:
		return "LTC-eager"
	case l.opts.DisableDeviationEliminator:
		return "LTC-noDE"
	}
	return "LTC"
}

// MemoryBytes reports the structure's accounted memory.
func (l *LTC) MemoryBytes() int { return l.m * CellBytes }

// previousFlag returns the parity bit the sweep consumes.
func (l *LTC) previousFlag() uint8 {
	if l.opts.DisableDeviationEliminator {
		return flagEven // basic mode uses a single flag
	}
	if l.parity == flagEven {
		return flagOdd
	}
	return flagEven
}

// currentFlag returns the parity bit set on appearance.
func (l *LTC) currentFlag() uint8 {
	if l.opts.DisableDeviationEliminator {
		return flagEven
	}
	return l.parity
}

// Insert records one arrival of item (Section III-B, cases 1–3), then
// advances the CLOCK pointer by its per-item step.
//
//sig:noalloc
func (l *LTC) Insert(item stream.Item) {
	l.itemsInPer++
	l.stats.Arrivals++
	l.place(item)
	l.advanceClock()
}

// InsertBatch records one arrival for each item, in order
// (stream.BatchInserter). It is semantically identical to calling Insert
// per item — equivalence tests assert bit-identical Query/TopK output — but
// amortizes the per-arrival overhead: the arrival counters are bumped once
// per batch, the bucket probes run in one fused loop, and the CLOCK
// accumulator is flushed into sweeps only when at least one whole cell is
// owed, instead of paying the advance bookkeeping on every call.
//
//sig:noalloc
func (l *LTC) InsertBatch(items []stream.Item) {
	if len(items) == 0 {
		return
	}
	l.itemsInPer += len(items)
	l.stats.Arrivals += uint64(len(items))
	l.stats.Batches++
	l.stats.BatchItems += uint64(len(items))
	if l.step <= 0 {
		// Adaptive pacing before the first EndPeriod: no sweep is owed, so
		// the batch is pure bucket probes.
		for _, it := range items {
			l.place(it)
		}
		return
	}
	for _, it := range items {
		l.place(it)
		// Inline advanceClock: identical state transitions, one call frame
		// saved per arrival.
		l.acc += l.step
		if l.acc >= 1 {
			n := int(l.acc)
			l.acc -= float64(n)
			if !l.opts.DisableDeviationEliminator {
				if remaining := l.m - l.swept; n > remaining {
					n = remaining
				}
			}
			if n > 0 {
				l.sweep(n)
			}
		}
	}
}

// place runs the three-case bucket update for one arrival.
//
// Case 1 scans only the ID lane — for d = 8 a single 64-byte cache line —
// and touches the flag/frequency lanes on the matched cell alone. The miss
// path re-scans the flags lane for an empty cell and only then pays the
// significance minimum. (A single merged scan was measured slower — it adds
// eviction bookkeeping to the hit path, which dominates on skewed streams.)
//
//sig:noalloc
func (l *LTC) place(item stream.Item) {
	base := l.bucket(item) * l.d
	end := base + l.d
	ids := l.ids[base:end]
	// Case 1: item already tracked. An unoccupied cell's stale ID can
	// collide with the probe, so a candidate match confirms against the
	// occupancy flag before counting.
	for j := range ids {
		if ids[j] == item {
			i := base + j
			if l.flags[i]&flagOccupied == 0 {
				continue
			}
			l.flags[i] |= l.currentFlag()
			l.freqs[i]++
			l.stats.Hits++
			return
		}
	}
	l.placeMiss(item, base, end)
}

// placeMiss handles cases 2 and 3 once the ID-lane scan found no match.
//
//sig:noalloc
func (l *LTC) placeMiss(item stream.Item, base, end int) {
	// Case 2: an empty cell exists.
	for i := base; i < end; i++ {
		if l.flags[i]&flagOccupied == 0 {
			l.fill(i, item, 1, 0)
			l.stats.Admissions++
			return
		}
	}

	// Case 3: full bucket.
	min := l.leastIdx(base, end)
	if l.opts.Replacement == ReplaceEager {
		// Space-Saving rule: replace immediately, inherit min's counts plus
		// one arrival. Reintroduces overestimation (the contrast the
		// paper's Long-tail Replacement section draws).
		l.fill(min, item, l.freqs[min]+1, l.counters[min])
		l.stats.Expulsions++
		l.stats.Admissions++
		return
	}
	// Significance Decrementing on the smallest cell.
	l.stats.Decrements++
	if l.counters[min] > 0 {
		l.counters[min]--
	}
	if l.freqs[min] > 0 {
		l.freqs[min]--
	}
	if l.sigZero(min) {
		// Expel and insert the newcomer.
		var initF, initC uint32 = 1, 0
		switch l.opts.Replacement {
		case ReplaceLongTail:
			f2, c2 := l.secondSmallest(base, end, min)
			if f2 > 1 {
				initF = f2 - 1
			}
			if c2 > 0 {
				initC = c2 - 1
			}
		case ReplaceSecondSmallest:
			initF, initC = l.secondSmallest(base, end, min)
			if initF < 1 {
				initF = 1
			}
		case ReplaceBasic, ReplaceEager:
			// ReplaceBasic keeps the basic initial value (1, 0);
			// ReplaceEager replaced the cell before decrementing, above.
		}
		l.fill(min, item, initF, initC)
		l.stats.Expulsions++
		l.stats.Admissions++
	}
}

// fill installs item into cell i with the given initial values and marks
// its appearance in the current period, overwriting whatever the cell held
// and keeping the occupancy count current.
func (l *LTC) fill(i int, item stream.Item, f, counter uint32) {
	if l.flags[i]&flagOccupied == 0 {
		l.occupied++
	}
	l.ids[i] = item
	l.freqs[i] = f
	l.counters[i] = counter
	l.flags[i] = flagOccupied | l.currentFlag()
}

// clearCell frees cell i, keeping the occupancy count current.
func (l *LTC) clearCell(i int) {
	if l.flags[i]&flagOccupied != 0 {
		l.occupied--
	}
	l.ids[i] = 0
	l.freqs[i] = 0
	l.counters[i] = 0
	l.flags[i] = 0
}

// advanceClock moves the sweep pointer by the per-item step, scanning the
// cells it passes (Persistency Incrementing).
func (l *LTC) advanceClock() {
	if l.step <= 0 {
		return
	}
	l.acc += l.step
	n := int(l.acc)
	if n <= 0 {
		return
	}
	l.acc -= float64(n)
	if !l.opts.DisableDeviationEliminator {
		// With the Deviation Eliminator the per-period sweep is bounded by
		// one full pass; EndPeriod completes whatever remains. (In basic
		// mode the pointer runs free — lapping or undershooting is exactly
		// the deviation the optimization removes.)
		if remaining := l.m - l.swept; n > remaining {
			n = remaining
		}
	}
	l.sweep(n)
}

// sweep scans n cells from the pointer, consuming previous-period flags.
// The scan runs over the dense flags lane, so a full-table completion sweep
// touches m bytes instead of m interleaved cells.
func (l *LTC) sweep(n int) {
	prev := l.previousFlag()
	ptr := l.ptr
	for i := 0; i < n; i++ {
		if l.flags[ptr]&prev != 0 {
			l.counters[ptr]++
			l.flags[ptr] &^= prev
			l.stats.FlagConsumed++
		}
		ptr++
		if ptr == l.m {
			ptr = 0
		}
	}
	l.ptr = ptr
	l.swept += n
	l.stats.CellsSwept += uint64(n)
}

// EndPeriod closes the current period. With the Deviation Eliminator it
// completes the sweep (consuming all remaining previous-period flags) and
// flips the parity, which performs the flag refreshment implicitly
// (Section III-C, "Refreshment elimination").
func (l *LTC) EndPeriod() {
	if !l.opts.DisableDeviationEliminator {
		if remaining := l.m - l.swept; remaining > 0 {
			l.sweep(remaining)
		}
		if l.parity == flagEven {
			l.parity = flagOdd
		} else {
			l.parity = flagEven
		}
		l.stats.ParityFlips++
	}
	l.stats.Periods++
	l.applyDecay()
	if l.adaptiveStep && l.itemsInPer > 0 {
		l.step = float64(l.m) / float64(l.itemsInPer)
	}
	l.swept = 0
	l.acc = 0
	l.timeDebt = 0
	l.itemsInPer = 0
}

// entry converts cell i to a reported Entry. Flags that have been set but
// not yet consumed by the sweep each represent one real period of
// appearance, so they are included in the reported persistency.
func (l *LTC) entry(i int) stream.Entry {
	p := uint64(l.counters[i])
	if l.flags[i]&flagEven != 0 {
		p++
	}
	if l.flags[i]&flagOdd != 0 {
		p++
	}
	return stream.Entry{
		Item:         l.ids[i],
		Frequency:    uint64(l.freqs[i]),
		Persistency:  p,
		Significance: l.opts.Weights.Significance(uint64(l.freqs[i]), p),
	}
}

// Query reports the estimate for item, if tracked.
func (l *LTC) Query(item stream.Item) (stream.Entry, bool) {
	base := l.bucket(item) * l.d
	ids := l.ids[base : base+l.d]
	for j := range ids {
		if ids[j] == item && l.flags[base+j]&flagOccupied != 0 {
			return l.entry(base + j), true
		}
	}
	return stream.Entry{}, false
}

// TopK reports the k tracked items with the largest significance. k ≤ 0
// yields an empty result.
func (l *LTC) TopK(k int) []stream.Entry {
	if k <= 0 {
		return nil
	}
	// Size by occupancy: the candidate slice holds every occupied cell, so
	// capacity k would regrow log₂(occupied/k) times on a large table.
	es := make([]stream.Entry, 0, l.occupied)
	for i, f := range l.flags {
		if f&flagOccupied != 0 {
			es = append(es, l.entry(i))
		}
	}
	return stream.TopKFromEntries(es, k)
}

// Stats returns the tracker's observability snapshot: geometry, occupancy
// and the cumulative operation counters (stream.StatsReporter). Every gauge
// including occupancy is O(1), so Stats is safe to call on every metrics
// scrape.
func (l *LTC) Stats() stream.Stats {
	return stream.Stats{
		Tracker:     l.Name(),
		MemoryBytes: l.MemoryBytes(),
		Shards:      1,
		Buckets:     l.w,
		BucketWidth: l.d,
		Cells:       l.m,
		Occupied:    l.Occupancy(),
		Alpha:       l.opts.Weights.Alpha,
		Beta:        l.opts.Weights.Beta,
		Counters:    l.stats,
	}
}

// Occupancy reports the number of occupied cells in O(1); the count is
// maintained on every fill and clear.
func (l *LTC) Occupancy() int { return l.occupied }

// countOccupied rescans the flags lane; the cold paths that rebuild the
// table wholesale (restore, merge) use it to re-derive the O(1) counter.
func (l *LTC) countOccupied() int {
	n := 0
	for _, f := range l.flags {
		if f&flagOccupied != 0 {
			n++
		}
	}
	return n
}

// String summarizes the configuration.
func (l *LTC) String() string {
	return fmt.Sprintf("%s{w=%d d=%d mem=%dB α:β=%s}", l.Name(), l.w, l.d,
		l.MemoryBytes(), l.opts.Weights)
}

var (
	_ stream.Tracker       = (*LTC)(nil)
	_ stream.BatchInserter = (*LTC)(nil)
	_ stream.StatsReporter = (*LTC)(nil)
)
