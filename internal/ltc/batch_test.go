package ltc

import (
	"math/rand"
	"testing"

	"sigstream/internal/stream"
)

// replayPair feeds the same arrivals into two identically-configured
// trackers, one per item and one in ragged batches, with periods of per
// arrivals, and returns both.
func replayPair(opts Options, items []stream.Item, per int) (seq, bat *LTC) {
	seq, bat = New(opts), New(opts)
	for i, it := range items {
		seq.Insert(it)
		if (i+1)%per == 0 {
			seq.EndPeriod()
		}
	}
	sizes := []int{1, 13, 64, 257}
	fed, si := 0, 0
	for off := 0; off < len(items); {
		n := sizes[si%len(sizes)]
		si++
		if rem := per - fed; n > rem {
			n = rem
		}
		if rem := len(items) - off; n > rem {
			n = rem
		}
		bat.InsertBatch(items[off : off+n])
		off += n
		fed += n
		if fed == per {
			bat.EndPeriod()
			fed = 0
		}
	}
	return seq, bat
}

// TestInsertBatchMatchesInsert asserts the batch path leaves the internal
// structure in a state identical to per-item insertion — cells, CLOCK
// position and operation statistics — across pacing modes.
func TestInsertBatchMatchesInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := make([]stream.Item, 30_000)
	for i := range items {
		items[i] = stream.Item(rng.Intn(3000) + 1)
	}
	const per = 5000
	for name, opts := range map[string]Options{
		"paced":    {MemoryBytes: 4 << 10, Weights: stream.Balanced, ItemsPerPeriod: per},
		"adaptive": {MemoryBytes: 4 << 10, Weights: stream.Balanced},
		"basic": {MemoryBytes: 4 << 10, Weights: stream.Balanced,
			ItemsPerPeriod: per, DisableDeviationEliminator: true},
	} {
		t.Run(name, func(t *testing.T) {
			seq, bat := replayPair(opts, items, per)
			// Batches/BatchItems describe how arrivals came in, not
			// algorithm state, so they differ between the paths by design.
			seqC, batC := seq.stats, bat.stats
			seqC.Batches, seqC.BatchItems = 0, 0
			batC.Batches, batC.BatchItems = 0, 0
			if seqC != batC {
				t.Fatalf("stats diverged: sequential %+v, batched %+v",
					seq.stats, bat.stats)
			}
			if seq.ptr != bat.ptr || seq.acc != bat.acc || seq.swept != bat.swept {
				t.Fatalf("CLOCK state diverged: sequential ptr=%d acc=%v swept=%d, batched ptr=%d acc=%v swept=%d",
					seq.ptr, seq.acc, seq.swept, bat.ptr, bat.acc, bat.swept)
			}
			seqCells, batCells := seq.cellStates(), bat.cellStates()
			for i := range seqCells {
				if seqCells[i] != batCells[i] {
					t.Fatalf("cell %d diverged: sequential %+v, batched %+v",
						i, seqCells[i], batCells[i])
				}
			}
		})
	}
}

// TestInsertBatchEmptyAndNil checks degenerate batches are no-ops.
func TestInsertBatchEmptyAndNil(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 10, ItemsPerPeriod: 10})
	l.InsertBatch(nil)
	l.InsertBatch([]stream.Item{})
	if l.Stats().Arrivals != 0 || l.Occupancy() != 0 {
		t.Fatalf("empty batch mutated the tracker: %+v", l.Stats())
	}
}
