package ltc

import (
	"bytes"
	"errors"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/stream"
)

func buildWarm(t *testing.T) (*LTC, *stream.Stream) {
	t.Helper()
	s := gen.Generate(gen.Config{N: 20000, M: 2000, Periods: 10, Skew: 1.0,
		Head: 30, TailWindowFrac: 0.4, Seed: 3})
	l := New(Options{MemoryBytes: 8 * 1024, Weights: stream.Balanced,
		ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 7})
	s.Replay(l)
	return l, s
}

func TestCheckpointRoundTrip(t *testing.T) {
	l, _ := buildWarm(t)
	img, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(Options{MemoryBytes: 1024}) // any shape; rebuilt on load
	if err := restored.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	// The operation counters ride the image (codec v3): the restored
	// tracker's snapshot is bit-identical, not zeroed.
	if got, want := restored.Stats(), l.Stats(); got != want {
		t.Fatalf("stats differ after restore:\ngot  %+v\nwant %+v", got, want)
	}
	if restored.Stats().Expulsions == 0 {
		t.Fatal("warm 8KB tracker should have expelled items; counters look zeroed")
	}
	// Identical TopK and identical future behaviour.
	a := l.TopK(50)
	b := restored.TopK(50)
	if len(a) != len(b) {
		t.Fatalf("TopK lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopK[%d] differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Continue both with the same arrivals: they must stay identical.
	for i := 0; i < 5000; i++ {
		it := stream.Item(i % 333)
		l.Insert(it)
		restored.Insert(it)
	}
	l.EndPeriod()
	restored.EndPeriod()
	img1, _ := l.MarshalBinary()
	img2, _ := restored.MarshalBinary()
	if !bytes.Equal(img1, img2) {
		t.Fatal("restored tracker diverged from the original after more input")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	l, _ := buildWarm(t)
	img, _ := l.MarshalBinary()

	cases := map[string][]byte{
		"empty":     {},
		"truncated": img[:len(img)/2],
		"magic":     append([]byte{0, 0, 0, 0}, img[4:]...),
		"version": func() []byte {
			c := append([]byte(nil), img...)
			c[4] = 0xff
			return c
		}(),
		"extra": append(append([]byte(nil), img...), 1, 2, 3),
	}
	for name, data := range cases {
		fresh := New(Options{})
		if err := fresh.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", name)
		}
	}
	// Version error is distinguishable.
	c := append([]byte(nil), img...)
	c[4] = 0x7f
	if err := New(Options{}).UnmarshalBinary(c); !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("want ErrCheckpointVersion, got %v", err)
	}
}

func TestCheckpointPreservesOptions(t *testing.T) {
	l := New(Options{MemoryBytes: 4096, BucketWidth: 4,
		Weights:                    stream.Weights{Alpha: 2, Beta: 3},
		DisableLongTailReplacement: true, Seed: 99, ItemsPerPeriod: 500})
	l.Insert(42)
	img, _ := l.MarshalBinary()
	r := New(Options{})
	if err := r.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	if r.Name() != "LTC-noLTR" {
		t.Fatalf("feature flags lost: %s", r.Name())
	}
	if r.BucketWidth() != 4 || r.Buckets() != l.Buckets() {
		t.Fatal("geometry lost")
	}
	e, ok := r.Query(42)
	if !ok || e.Frequency != 1 {
		t.Fatalf("cell contents lost: %+v ok=%v", e, ok)
	}
	w := stream.Weights{Alpha: 2, Beta: 3}
	if e.Significance != w.Significance(e.Frequency, e.Persistency) {
		t.Fatal("weights lost")
	}
}

func TestReset(t *testing.T) {
	l, s := buildWarm(t)
	l.Reset()
	if l.Occupancy() != 0 {
		t.Fatalf("occupancy %d after Reset", l.Occupancy())
	}
	if len(l.TopK(10)) != 0 {
		t.Fatal("TopK nonempty after Reset")
	}
	// The structure is reusable and behaves like new.
	s.Replay(l)
	if l.Occupancy() == 0 {
		t.Fatal("tracker unusable after Reset")
	}
}
