package ltc

// Golden-fixture regression tests for the core refactors: the fixtures in
// testdata/golden_core.json were generated from the pre-SoA build (PR 2,
// array-of-structs cells, float64 significance comparisons, `%` bucket
// reduction) and pin the exact observable behavior of the tracker — TopK
// ranking, per-item Query estimates, occupancy, and the byte-exact
// checkpoint image. The SoA layout, the fixed-point comparator and the
// Lemire multiply-shift reduction are all required to be bit-identical
// refactors, so these fixtures must keep passing unchanged.
//
// Regenerate (only for a deliberate, documented behavior change) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/ltc -run TestGoldenCore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"sigstream/internal/stream"
)

// goldenStream derives a deterministic, skewed item stream from a seed
// without depending on math/rand internals: splitmix64 drives a two-level
// mixture of a small hot set and a long tail.
func goldenStream(seed uint64, n int) []stream.Item {
	items := make([]stream.Item, n)
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range items {
		r := next()
		switch {
		case r%100 < 60: // hot set of 32 items
			items[i] = 1 + r>>32%32
		case r%100 < 85: // warm set of 1024 items
			items[i] = 1000 + r>>32%1024
		default: // long tail
			items[i] = 1_000_000 + r>>32%100_000
		}
	}
	return items
}

type goldenCase struct {
	Name    string  `json:"name"`
	Mem     int     `json:"mem"`
	Width   int     `json:"width"`
	Alpha   float64 `json:"alpha"`
	Beta    float64 `json:"beta"`
	Policy  int     `json:"policy"`
	NoDE    bool    `json:"no_de,omitempty"`
	Decay   float64 `json:"decay,omitempty"`
	Seed    uint32  `json:"seed"`
	N       int     `json:"n"`
	Periods int     `json:"periods"`

	// Captured outputs.
	Occupancy  int           `json:"occupancy"`
	TopK       []goldenEntry `json:"topk"`
	Queries    []goldenEntry `json:"queries"`
	Checkpoint string        `json:"checkpoint_sha256"`
}

type goldenEntry struct {
	Item uint64  `json:"item"`
	F    uint64  `json:"f"`
	P    uint64  `json:"p"`
	Sig  float64 `json:"sig"`
	Ok   bool    `json:"ok"`
}

func goldenConfigs() []goldenCase {
	return []goldenCase{
		{Name: "balanced-default", Mem: 8 << 10, Width: 8, Alpha: 1, Beta: 1, Seed: 1, N: 60_000, Periods: 20},
		{Name: "frequent", Mem: 8 << 10, Width: 8, Alpha: 1, Beta: 0, Seed: 2, N: 60_000, Periods: 20},
		{Name: "persistent", Mem: 8 << 10, Width: 8, Alpha: 0, Beta: 1, Seed: 3, N: 60_000, Periods: 20},
		{Name: "weighted-frac", Mem: 4 << 10, Width: 8, Alpha: 1.5, Beta: 0.25, Seed: 4, N: 40_000, Periods: 10},
		{Name: "weights-inexact", Mem: 4 << 10, Width: 8, Alpha: 0.3, Beta: 0.7, Seed: 5, N: 40_000, Periods: 10},
		{Name: "basic-policy", Mem: 4 << 10, Width: 8, Alpha: 1, Beta: 1, Policy: int(ReplaceBasic), Seed: 6, N: 40_000, Periods: 10},
		{Name: "eager-policy", Mem: 4 << 10, Width: 8, Alpha: 1, Beta: 1, Policy: int(ReplaceEager), Seed: 7, N: 40_000, Periods: 10},
		{Name: "second-smallest", Mem: 4 << 10, Width: 8, Alpha: 1, Beta: 1, Policy: int(ReplaceSecondSmallest), Seed: 8, N: 40_000, Periods: 10},
		{Name: "no-deviation-eliminator", Mem: 4 << 10, Width: 8, Alpha: 1, Beta: 1, NoDE: true, Seed: 9, N: 40_000, Periods: 10},
		{Name: "narrow-bucket", Mem: 4 << 10, Width: 4, Alpha: 1, Beta: 1, Seed: 10, N: 40_000, Periods: 10},
		{Name: "single-cell-bucket", Mem: 2 << 10, Width: 1, Alpha: 1, Beta: 1, Seed: 11, N: 20_000, Periods: 10},
		{Name: "decay", Mem: 4 << 10, Width: 8, Alpha: 1, Beta: 1, Decay: 0.5, Seed: 12, N: 40_000, Periods: 10},
		{Name: "tiny-table", Mem: 256, Width: 8, Alpha: 1, Beta: 1, Seed: 13, N: 20_000, Periods: 10},
	}
}

// runGolden replays the case's stream and fills in the captured outputs.
func runGolden(gc *goldenCase) {
	l := New(Options{
		MemoryBytes:                gc.Mem,
		BucketWidth:                gc.Width,
		Weights:                    stream.Weights{Alpha: gc.Alpha, Beta: gc.Beta},
		Replacement:                ReplacementPolicy(gc.Policy),
		DisableDeviationEliminator: gc.NoDE,
		DecayFactor:                gc.Decay,
		Seed:                       gc.Seed,
	})
	items := goldenStream(uint64(gc.Seed)*0x517cc1b727220a95+1, gc.N)
	per := gc.N / gc.Periods
	for i, it := range items {
		l.Insert(it)
		if (i+1)%per == 0 {
			l.EndPeriod()
		}
	}
	if gc.N%per != 0 {
		l.EndPeriod()
	}

	gc.Occupancy = l.Occupancy()
	gc.TopK = nil
	for _, e := range l.TopK(64) {
		gc.TopK = append(gc.TopK, goldenEntry{Item: e.Item, F: e.Frequency, P: e.Persistency, Sig: e.Significance, Ok: true})
	}
	gc.Queries = nil
	for probe := uint64(1); probe <= 32; probe++ {
		e, ok := l.Query(probe)
		gc.Queries = append(gc.Queries, goldenEntry{Item: probe, F: e.Frequency, P: e.Persistency, Sig: e.Significance, Ok: ok})
	}
	img, err := l.MarshalBinary()
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(img)
	gc.Checkpoint = hex.EncodeToString(sum[:])
}

func goldenPath() string { return filepath.Join("testdata", "golden_core.json") }

func TestGoldenCore(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN") != "" {
		cases := goldenConfigs()
		for i := range cases {
			runGolden(&cases[i])
		}
		data, err := json.MarshalIndent(cases, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", goldenPath(), len(cases))
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("read golden fixtures (generate with UPDATE_GOLDEN=1): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	fresh := goldenConfigs()
	if len(fresh) != len(want) {
		t.Fatalf("config count drifted: have %d cases, fixtures hold %d", len(fresh), len(want))
	}
	for i := range fresh {
		gc := fresh[i]
		t.Run(gc.Name, func(t *testing.T) {
			runGolden(&gc)
			w := want[i]
			if gc.Occupancy != w.Occupancy {
				t.Errorf("occupancy: got %d, want %d", gc.Occupancy, w.Occupancy)
			}
			if err := compareEntries(gc.TopK, w.TopK); err != nil {
				t.Errorf("TopK: %v", err)
			}
			if err := compareEntries(gc.Queries, w.Queries); err != nil {
				t.Errorf("Query: %v", err)
			}
			if gc.Checkpoint != w.Checkpoint {
				t.Errorf("checkpoint image hash: got %s, want %s", gc.Checkpoint, w.Checkpoint)
			}
		})
	}
}

func compareEntries(got, want []goldenEntry) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("entry %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}
