package ltc

// Fixed-point significance comparisons.
//
// Case 3 (Significance Decrementing) and Long-tail Replacement need to
// *order* cells by significance α·f + β·c, not to report the value; the
// float64 math the reporting path uses is wasted work there — two int→float
// conversions, two multiplies and an add per cell per eviction scan. When
// the weights are exactly representable in Q44.20 fixed point (α·2²⁰ and
// β·2²⁰ are integers ≤ 2³¹ — true for every weighting in the paper and all
// common deployments: 0, 0.25, 0.5, 1, 1.5, 2, 100, …), the scan instead
// compares aFix·f + bFix·c in uint64.
//
// Why the order is identical to the float64 order: with f, c < 2³² and
// aFix, bFix ≤ 2³¹, each fixed product is < 2⁶³ and the fixed sum cannot
// overflow, so fixed-point comparison orders by the *exact* value of
// α·f + β·c. The float64 path computes fl(fl(α·f) + fl(β·c)); rounding is
// monotone, so the float order never contradicts the exact order — it can
// only merge values into a tie that the exact order distinguishes, and that
// needs a significand wider than 53 bits, i.e. a scaled sum ≥ 2⁵³
// (significance ≥ 2³³ with 20 fractional weight bits). Frequencies are
// 32-bit and per-item significance tops out far below that in any
// achievable stream, so inside the representable domain every comparison —
// including the first-minimum-wins tie-break of the scan order — matches
// the pre-fixed-point float behavior bit for bit. The golden fixtures in
// testdata pin this.
//
// Weights outside Q44.20 (negative, > 2¹¹, or with finer fractional
// resolution, e.g. 0.3) fall back to the original float64 comparisons, so
// exotic configurations keep their exact historical behavior too.

import "math"

// sigShift is the fixed-point fractional resolution (Q44.20).
const sigShift = 20

// fixedWeight converts a significance weight to Q44.20, reporting whether
// the representation is exact and overflow-free.
func fixedWeight(w float64) (uint64, bool) {
	if w < 0 {
		return 0, false
	}
	s := w * (1 << sigShift)
	//siglint:ignore exact integrality test: Trunc(s) == s iff s is a whole number, which is the Q44.20 representability condition itself
	if s != math.Trunc(s) || s > 1<<31 {
		return 0, false
	}
	return uint64(s), true
}

// sigFixed computes cell i's significance in Q44.20 (valid only when
// l.fixOK).
func (l *LTC) sigFixed(i int) uint64 {
	return l.aFix*uint64(l.freqs[i]) + l.bFix*uint64(l.counters[i])
}

// sigFloat computes cell i's significance in float64 (the reporting
// definition, and the comparison fallback for non-Q44.20 weights).
func (l *LTC) sigFloat(i int) float64 {
	return l.opts.Weights.Significance(uint64(l.freqs[i]), uint64(l.counters[i]))
}

// leastIdx returns the index of the least-significant cell in
// [base, end), first-minimum-wins — the scan order Significance
// Decrementing targets.
//
//sig:noalloc
func (l *LTC) leastIdx(base, end int) int {
	min := base
	if l.fixOK {
		minSig := l.sigFixed(base)
		for i := base + 1; i < end; i++ {
			if s := l.sigFixed(i); s < minSig {
				minSig, min = s, i
			}
		}
		return min
	}
	minSig := l.sigFloat(base)
	for i := base + 1; i < end; i++ {
		if s := l.sigFloat(i); s < minSig {
			minSig, min = s, i
		}
	}
	return min
}

// sigZero reports whether cell i's significance has been decremented to
// nothing (the expulsion condition; equals the historical float `≤ 0`
// check for the non-negative weights both paths require).
func (l *LTC) sigZero(i int) bool {
	if l.fixOK {
		return l.sigFixed(i) == 0
	}
	return l.sigFloat(i) <= 0
}

// secondSmallest returns the frequency and persistency counter of the
// least-significant occupied cell in [base, end) other than skip — the
// bucket's second smallest before an expulsion. With d = 1 there is no
// such cell and the basic initial values (1, 0) are returned.
func (l *LTC) secondSmallest(base, end, skip int) (f, counter uint32) {
	found := false
	var minF, minC uint32
	if l.fixOK {
		var minSig uint64
		for i := base; i < end; i++ {
			if i == skip || l.flags[i]&flagOccupied == 0 {
				continue
			}
			if s := l.sigFixed(i); !found || s < minSig {
				found = true
				minSig = s
				minF, minC = l.freqs[i], l.counters[i]
			}
		}
	} else {
		var minSig float64
		for i := base; i < end; i++ {
			if i == skip || l.flags[i]&flagOccupied == 0 {
				continue
			}
			if s := l.sigFloat(i); !found || s < minSig {
				found = true
				minSig = s
				minF, minC = l.freqs[i], l.counters[i]
			}
		}
	}
	if !found { // d == 1: no second-smallest exists
		return 1, 0
	}
	return minF, minC
}
