package ltc

import (
	"math/rand"
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/stream"
)

func TestInsertAtRequiresPeriodDuration(t *testing.T) {
	l := New(Options{MemoryBytes: 1024, Weights: stream.Persistent})
	defer func() {
		if recover() == nil {
			t.Fatal("InsertAt without PeriodDuration must panic")
		}
	}()
	l.InsertAt(1, 0)
}

func TestInsertAtCountsPeriodsByTime(t *testing.T) {
	// Period = 10s. Item 42 appears at t=1, 12, 13, 25: periods 0, 1, 1, 2
	// → persistency 3.
	l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Persistent,
		PeriodDuration: 10, Seed: 1})
	for _, at := range []float64{1, 12, 13, 25} {
		l.InsertAt(42, at)
	}
	// Close the final period by advancing time past its end with another
	// item.
	l.InsertAt(7, 31)
	e, ok := l.Query(42)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Persistency != 3 {
		t.Fatalf("persistency = %d, want 3", e.Persistency)
	}
	if e.Frequency != 4 {
		t.Fatalf("frequency = %d, want 4", e.Frequency)
	}
}

func TestInsertAtIdlePeriodsAreCrossed(t *testing.T) {
	// A long gap (several empty periods) must not credit persistency.
	l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Persistent,
		PeriodDuration: 1, Seed: 2})
	l.InsertAt(5, 0.5)
	l.InsertAt(5, 10.5) // nine empty periods in between
	l.InsertAt(1, 11.5) // close period 10
	e, _ := l.Query(5)
	if e.Persistency != 2 {
		t.Fatalf("persistency = %d, want 2 (appeared in 2 of 11 periods)", e.Persistency)
	}
}

func TestInsertAtVariableRateMatchesOracle(t *testing.T) {
	// Arrival rate varies 10× between periods; the variable-step CLOCK
	// must still count persistency exactly for every item (memory ample).
	const periodLen = 1.0
	const periods = 12
	rng := rand.New(rand.NewSource(9))
	l := New(Options{MemoryBytes: 1 << 16, Weights: stream.Persistent,
		PeriodDuration: periodLen, Seed: 3})
	truth := map[stream.Item]map[int]struct{}{}
	for p := 0; p < periods; p++ {
		n := 20
		if p%2 == 1 {
			n = 200 // bursty periods
		}
		for i := 0; i < n; i++ {
			item := stream.Item(rng.Intn(30) + 1)
			at := float64(p)*periodLen + rng.Float64()*periodLen*0.999
			l.InsertAt(item, at)
			if truth[item] == nil {
				truth[item] = map[int]struct{}{}
			}
			truth[item][p] = struct{}{}
		}
	}
	// InsertAt keeps timestamps within each period unsorted-free: they must
	// be non-decreasing overall, so re-sort is implied by generation order
	// (period major). Final period is closed by a sentinel arrival.
	l.InsertAt(999999, periods*periodLen)
	for item, ps := range truth {
		e, ok := l.Query(item)
		if !ok {
			t.Fatalf("item %d lost with ample memory", item)
		}
		if e.Persistency != uint64(len(ps)) {
			t.Fatalf("item %d: persistency %d, want %d", item, e.Persistency, len(ps))
		}
	}
}

func TestInsertAtClampsClockRegression(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Persistent,
		PeriodDuration: 10, Seed: 4})
	l.InsertAt(1, 5)
	l.InsertAt(2, 3) // clock went backwards; must not panic or corrupt
	l.InsertAt(3, 6)
	if l.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3", l.Occupancy())
	}
}

func TestInsertAtUnsortedWithinPeriodStillBounded(t *testing.T) {
	// Even with clamped regressions, persistency never exceeds the number
	// of elapsed periods.
	l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Persistent,
		PeriodDuration: 1, Seed: 5})
	rng := rand.New(rand.NewSource(4))
	for p := 0; p < 8; p++ {
		for i := 0; i < 50; i++ {
			l.InsertAt(stream.Item(rng.Intn(10)), float64(p)+rng.Float64())
		}
	}
	l.InsertAt(424242, 8.0)
	for _, e := range l.TopK(100) {
		if e.Persistency > 9 {
			t.Fatalf("item %d persistency %d exceeds elapsed periods", e.Item, e.Persistency)
		}
	}
}

func TestTimedEquivalentToCountBased(t *testing.T) {
	// Replaying the same stream by timestamps (InsertAt) and by explicit
	// EndPeriod calls must produce identical estimates when timestamps are
	// period-aligned (gen.Timestamps guarantees that).
	s := gen.Generate(gen.Config{N: 20000, M: 1500, Periods: 20, Skew: 1.0,
		Head: 30, TailWindowFrac: 0.4, Seed: 21})
	const d = 10.0
	ts := gen.Timestamps(s, d, 2)

	counted := New(Options{MemoryBytes: 8 * 1024, Weights: stream.Balanced,
		ItemsPerPeriod: s.ItemsPerPeriod(), Seed: 6})
	s.Replay(counted)

	timed := New(Options{MemoryBytes: 8 * 1024, Weights: stream.Balanced,
		PeriodDuration: d, Seed: 6})
	for i, it := range s.Items {
		timed.InsertAt(it, ts[i])
	}
	// Close the final period by advancing past its end.
	timed.InsertAt(999999999, float64(s.Periods)*d)

	// The two replays pace their CLOCK sweeps differently, so cell-level
	// state can differ; but for the top items (never evicted at 8 KiB for
	// the head) estimates must agree exactly.
	for _, e := range counted.TopK(30) {
		got, ok := timed.Query(e.Item)
		if !ok {
			t.Fatalf("item %d missing from timed replay", e.Item)
		}
		if got.Frequency != e.Frequency {
			t.Fatalf("item %d: timed f=%d, counted f=%d", e.Item,
				got.Frequency, e.Frequency)
		}
		if got.Persistency != e.Persistency {
			t.Fatalf("item %d: timed p=%d, counted p=%d", e.Item,
				got.Persistency, e.Persistency)
		}
	}
}
