package ltc

import (
	"testing"

	"sigstream/internal/stream"
)

func TestDecayDisabledByDefault(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Balanced, Seed: 1})
	for p := 0; p < 4; p++ {
		for i := 0; i < 10; i++ {
			l.Insert(7)
		}
		l.EndPeriod()
	}
	e, _ := l.Query(7)
	if e.Frequency != 40 || e.Persistency != 4 {
		t.Fatalf("f=%d p=%d, want exact 40/4 without decay", e.Frequency, e.Persistency)
	}
}

func TestDecayHalvesCounts(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Frequent,
		DecayFactor: 0.5, Seed: 2})
	for i := 0; i < 100; i++ {
		l.Insert(7)
	}
	l.EndPeriod() // 100 → 50
	l.EndPeriod() // 50 → 25
	e, ok := l.Query(7)
	if !ok {
		t.Fatal("item lost")
	}
	if e.Frequency != 25 {
		t.Fatalf("decayed frequency = %d, want 25", e.Frequency)
	}
}

func TestDecayFreesDeadCells(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Frequent,
		DecayFactor: 0.5, Seed: 3})
	l.Insert(7) // frequency 1
	l.EndPeriod()
	l.EndPeriod() // 1 → 0 → freed (no pending flags after the second period)
	if _, ok := l.Query(7); ok {
		t.Fatal("fully decayed item still tracked")
	}
	if l.Occupancy() != 0 {
		t.Fatalf("occupancy %d after full decay", l.Occupancy())
	}
}

func TestDecayFavorsRecentItems(t *testing.T) {
	// An old burst (period 0) versus a fresh equal burst (last period):
	// with decay the fresh item must rank first; without decay they tie.
	build := func(decay float64) *LTC {
		l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Frequent,
			DecayFactor: decay, Seed: 4})
		for p := 0; p < 8; p++ {
			if p == 0 {
				for i := 0; i < 64; i++ {
					l.Insert(1)
				}
			}
			if p == 7 {
				for i := 0; i < 64; i++ {
					l.Insert(2)
				}
			}
			l.Insert(3) // keep periods ticking
			l.EndPeriod()
		}
		return l
	}
	decayed := build(0.5)
	top := decayed.TopK(1)
	if len(top) == 0 || top[0].Item != 2 {
		t.Fatalf("decay should rank the fresh burst first, got %+v", top)
	}
	e1, ok := decayed.Query(1)
	if ok && e1.Frequency > 1 {
		t.Fatalf("old burst barely decayed: f=%d", e1.Frequency)
	}
	exact := build(0)
	a, _ := exact.Query(1)
	b, _ := exact.Query(2)
	if a.Frequency != 64 || b.Frequency != 64 {
		t.Fatalf("no-decay run should keep both at 64: %d/%d", a.Frequency, b.Frequency)
	}
}

func TestDecayKeepsPersistencyBounded(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 14, Weights: stream.Persistent,
		DecayFactor: 0.9, Seed: 5})
	for p := 0; p < 20; p++ {
		for i := 0; i < 5; i++ {
			l.Insert(9)
		}
		l.EndPeriod()
	}
	e, ok := l.Query(9)
	if !ok {
		t.Fatal("steady item lost under decay")
	}
	// Geometric series with λ=0.9: steady-state ≈ λ(1−λ^t)/(1−λ) < 9.
	if e.Persistency > 10 {
		t.Fatalf("decayed persistency %d should stay below the λ/(1−λ) fixed point", e.Persistency)
	}
	if e.Persistency == 0 {
		t.Fatal("steady item's persistency decayed to zero")
	}
}
