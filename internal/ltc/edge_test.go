package ltc

import (
	"testing"

	"sigstream/internal/stream"
)

func TestItemZeroIsAValidID(t *testing.T) {
	// Item 0 must be trackable: occupancy is a flag, not a sentinel ID.
	l := New(Options{MemoryBytes: 1 << 12, Weights: stream.Balanced, Seed: 1})
	for p := 0; p < 3; p++ {
		l.Insert(0)
		l.EndPeriod()
	}
	e, ok := l.Query(0)
	if !ok {
		t.Fatal("item 0 not tracked")
	}
	if e.Frequency != 3 || e.Persistency != 3 {
		t.Fatalf("item 0: f=%d p=%d, want 3/3", e.Frequency, e.Persistency)
	}
}

func TestEmptyPeriods(t *testing.T) {
	// EndPeriod with no arrivals (including several in a row) must be safe
	// and must not credit persistency.
	l := New(Options{MemoryBytes: 1 << 12, Weights: stream.Persistent,
		ItemsPerPeriod: 10, Seed: 2})
	l.Insert(5)
	for i := 0; i < 10; i++ {
		l.EndPeriod()
	}
	e, ok := l.Query(5)
	if !ok {
		t.Fatal("item lost across empty periods")
	}
	if e.Persistency != 1 {
		t.Fatalf("persistency %d after 10 empty periods, want 1", e.Persistency)
	}
}

func TestHugeStepDoesNotOverrun(t *testing.T) {
	// ItemsPerPeriod=1 makes the per-item step equal to the whole table;
	// repeated arrivals in one "period" must not oversweep in DE mode.
	l := New(Options{MemoryBytes: 1 << 10, Weights: stream.Persistent,
		ItemsPerPeriod: 1, Seed: 3})
	for p := 0; p < 4; p++ {
		for i := 0; i < 50; i++ { // 50× the declared rate
			l.Insert(9)
		}
		l.EndPeriod()
	}
	e, _ := l.Query(9)
	if e.Persistency != 4 {
		t.Fatalf("persistency %d with 50× rate overrun, want 4", e.Persistency)
	}
}

func TestQueryOnFreshTracker(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 10, Seed: 4})
	if _, ok := l.Query(1); ok {
		t.Fatal("fresh tracker reported a tracked item")
	}
	if top := l.TopK(10); len(top) != 0 {
		t.Fatalf("fresh tracker TopK returned %d entries", len(top))
	}
	l.EndPeriod() // period end before any arrival must be safe
}

func TestTopKZeroAndNegative(t *testing.T) {
	l := New(Options{MemoryBytes: 1 << 10, Seed: 5})
	l.Insert(1)
	if got := l.TopK(0); len(got) != 0 {
		t.Fatalf("TopK(0) = %d entries", len(got))
	}
	if got := l.TopK(-3); len(got) != 0 {
		t.Fatalf("TopK(-3) = %d entries", len(got))
	}
}

func TestManyPeriodsParityCycles(t *testing.T) {
	// 1001 periods: parity flips odd number of times; counting must stay
	// exact for a never-evicted item.
	l := New(Options{MemoryBytes: 1 << 12, Weights: stream.Persistent,
		ItemsPerPeriod: 2, Seed: 6})
	const periods = 1001
	for p := 0; p < periods; p++ {
		l.Insert(3)
		l.Insert(4)
		l.EndPeriod()
	}
	e, _ := l.Query(3)
	if e.Persistency != periods {
		t.Fatalf("persistency %d, want %d", e.Persistency, periods)
	}
}

func TestSignificanceTieEviction(t *testing.T) {
	// Two cells with identical significance: decrement must consistently
	// pick one (the first) and never corrupt the other.
	l := New(Options{MemoryBytes: 2 * CellBytes, BucketWidth: 2,
		Weights: stream.Frequent, DisableLongTailReplacement: true, Seed: 7})
	l.Insert(1)
	l.Insert(2) // both at f=1 — a tie
	l.Insert(3) // decrements the first-found minimum
	alive := 0
	for _, it := range []stream.Item{1, 2} {
		if _, ok := l.Query(it); ok {
			alive++
		}
	}
	if alive != 1 {
		t.Fatalf("%d of the tied items alive, want exactly 1 (one expelled for item 3)", alive)
	}
}

func TestFrequencyDoesNotOverflowRealisticStreams(t *testing.T) {
	// 3M arrivals of one item: well within uint32; sanity-check there is no
	// wraparound in the pipeline.
	l := New(Options{MemoryBytes: 1 << 10, Weights: stream.Frequent, Seed: 8})
	const n = 3_000_000
	for i := 0; i < n; i++ {
		l.Insert(42)
	}
	e, _ := l.Query(42)
	if e.Frequency != n {
		t.Fatalf("frequency %d, want %d", e.Frequency, n)
	}
}
