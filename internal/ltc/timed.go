package ltc

// Time-based periods (Section III-B, "Our method can be easily extended
// when the period is defined by time"): instead of a fixed step of m/n
// cells per arrival, the pointer advances (x−y)/t · m cells between an
// item arriving at time x and its predecessor at time y, where t is the
// period length. The pointer then passes every cell exactly once per
// period even when the arrival rate varies.

// InsertAt records one arrival of item at the given timestamp (seconds, or
// any unit consistent with the configured period duration). Use it instead
// of Insert when periods are defined by wall-clock time; the period
// boundary is detected automatically, so EndPeriod must not be called by
// the caller.
//
// Timestamps must be non-decreasing. The first call anchors the start of
// the first period.
func (l *LTC) InsertAt(item uint64, at float64) {
	if l.opts.PeriodDuration <= 0 {
		panic("ltc: InsertAt requires Options.PeriodDuration > 0")
	}
	if !l.timeAnchored {
		l.timeAnchored = true
		// Anchor period boundaries to multiples of the duration, so that
		// "periods" mean the same wall-clock windows regardless of when the
		// first item arrives within one.
		l.periodStart = float64(int64(at/l.opts.PeriodDuration)) * l.opts.PeriodDuration
		l.lastArrival = at
	}
	if at < l.lastArrival {
		at = l.lastArrival // clamp clock regressions
	}
	// Cross any period boundaries that elapsed before this arrival.
	for at >= l.periodStart+l.opts.PeriodDuration {
		l.EndPeriod()
		l.periodStart += l.opts.PeriodDuration
	}
	// Variable step: (x − y)/t · m cells.
	l.timeDebt += (at - l.lastArrival) / l.opts.PeriodDuration * float64(l.m)
	l.lastArrival = at

	l.insertTimed(item)
}

// insertTimed is Insert without the count-based clock advance; the sweep is
// paced by timeDebt instead.
func (l *LTC) insertTimed(item uint64) {
	l.itemsInPer++
	l.stats.Arrivals++
	l.place(item)
	n := int(l.timeDebt)
	if n > 0 {
		l.timeDebt -= float64(n)
		if remaining := l.m - l.swept; n > remaining {
			n = remaining
		}
		if n > 0 {
			l.sweep(n)
		}
	}
}
