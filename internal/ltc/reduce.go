package ltc

// Bucket reduction: mapping a 32-bit hash onto [0, w) used to cost a
// hardware divide (`h % w`, plus a negative fix from the days the hash was
// cast through int) on every Insert and Query. We now use Lemire's
// multiply-shift remainder (D. Lemire, O. Kaser, N. Kurz, "Faster
// remainders when the divisor is a constant", 2019): with
// M = ⌈2⁶⁴ / w⌉ precomputed once per table, h mod w is exactly
// hi64(((M·h) mod 2⁶⁴) · w) — two multiplies and no division. The result
// is bit-identical to `h % w` for every 32-bit h and every w in [1, 2³²),
// so bucket placement (and therefore every golden fixture and checkpoint)
// is unchanged; only the per-arrival cost drops. A fuzz test asserts the
// equivalence exhaustively over random (h, w) pairs.

import "math/bits"

// fastmodM precomputes Lemire's magic constant M = ⌈2⁶⁴ / w⌉ for a divisor
// w ≥ 1. For w = 1 the addition wraps M to 0, which still yields the
// correct remainder 0 for every input.
func fastmodM(w int) uint64 {
	return ^uint64(0)/uint64(w) + 1
}

// fastmod32 returns h % w using the precomputed M = fastmodM(w).
//
//sig:noalloc
func fastmod32(h uint32, M, w uint64) uint32 {
	lowbits := M * uint64(h)
	hi, _ := bits.Mul64(lowbits, w)
	return uint32(hi)
}

// bucket is the shared bucket-lookup prologue of Insert, InsertAt and
// Query: hash the item and reduce the hash into [0, w).
//
//sig:noalloc
func (l *LTC) bucket(item uint64) int {
	return int(fastmod32(l.hash.Hash64(item), l.modM, uint64(l.w)))
}
