package ltc

// Merging: two LTCs built over disjoint sub-streams of the same stream
// (e.g. per-switch shards in the paper's data-center use case) combine into
// one summary of the union. Both trackers must share geometry, weights and
// hash seed, so any item maps to the same bucket in both.
//
// Merging is lossy in exactly the way LTC itself is lossy: each bucket of
// the result keeps the d cells with the largest significance among the two
// buckets' entries (summing frequency/persistency for items present in
// both). Persistency is summed, which is correct when the shards partition
// the arrivals of each period between them only if an item's per-period
// appearances land in a single shard; for hash-sharded streams
// (sigstream.Sharded) that holds by construction.

import (
	"errors"
	"sort"
)

// ErrIncompatible reports a merge between trackers of different shape.
var ErrIncompatible = errors.New("ltc: incompatible trackers")

// Compatible reports whether two trackers can be merged.
func (l *LTC) Compatible(other *LTC) bool {
	return l.w == other.w && l.d == other.d &&
		l.opts.Weights == other.opts.Weights &&
		l.opts.Seed == other.opts.Seed &&
		l.opts.DisableDeviationEliminator == other.opts.DisableDeviationEliminator
}

// Merge folds other into l. Both must be compatible; other is not
// modified. Pending flag bits of both trackers are folded into the merged
// persistency counters (so Merge is intended for end-of-stream or
// end-of-period aggregation, after both sides saw EndPeriod).
func (l *LTC) Merge(other *LTC) error {
	if !l.Compatible(other) {
		return ErrIncompatible
	}
	type merged struct {
		id      uint64
		freq    uint64
		counter uint64
	}
	for b := 0; b < l.w; b++ {
		mine := l.cells[b*l.d : (b+1)*l.d]
		theirs := other.cells[b*l.d : (b+1)*l.d]

		sum := make(map[uint64]*merged, 2*l.d)
		absorb := func(cells []cell, host *LTC) {
			for i := range cells {
				c := &cells[i]
				if !c.occupied() {
					continue
				}
				e := host.entry(c) // folds pending flags into persistency
				m := sum[c.id]
				if m == nil {
					m = &merged{id: c.id}
					sum[c.id] = m
				}
				m.freq += e.Frequency
				m.counter += e.Persistency
			}
		}
		absorb(mine, l)
		absorb(theirs, other)

		all := make([]*merged, 0, len(sum))
		for _, m := range sum {
			all = append(all, m)
		}
		sort.Slice(all, func(i, j int) bool {
			si := l.opts.Weights.Significance(all[i].freq, all[i].counter)
			sj := l.opts.Weights.Significance(all[j].freq, all[j].counter)
			if si != sj {
				return si > sj
			}
			return all[i].id < all[j].id
		})
		if len(all) > l.d {
			all = all[:l.d]
		}
		for i := range mine {
			if i < len(all) {
				mine[i] = cell{
					id:      all[i].id,
					freq:    saturate32(all[i].freq),
					counter: saturate32(all[i].counter),
					flags:   flagOccupied,
				}
			} else {
				mine[i] = cell{}
			}
		}
	}
	return nil
}

func saturate32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}
