package ltc

// Merging: two LTCs built over disjoint sub-streams of the same stream
// (e.g. per-switch shards in the paper's data-center use case) combine into
// one summary of the union. Both trackers must share geometry, weights and
// hash seed, so any item maps to the same bucket in both.
//
// Merging is lossy in exactly the way LTC itself is lossy: each bucket of
// the result keeps the d cells with the largest significance among the two
// buckets' entries (summing frequency/persistency for items present in
// both). Persistency is summed, which is correct when the shards partition
// the arrivals of each period between them only if an item's per-period
// appearances land in a single shard; for hash-sharded streams
// (sigstream.Sharded) that holds by construction.

import (
	"errors"
	"sort"
)

// ErrIncompatible reports a merge between trackers of different shape.
var ErrIncompatible = errors.New("ltc: incompatible trackers")

// Compatible reports whether two trackers can be merged.
func (l *LTC) Compatible(other *LTC) bool {
	return l.w == other.w && l.d == other.d &&
		//siglint:ignore exact config-identity check: merge requires bit-identical weights, and Validate rejects NaN so == is total here
		l.opts.Weights == other.opts.Weights &&
		l.opts.Seed == other.opts.Seed &&
		l.opts.DisableDeviationEliminator == other.opts.DisableDeviationEliminator
}

// Merge folds other into l. Both must be compatible; other is not
// modified. Pending flag bits of both trackers are folded into the merged
// persistency counters (so Merge is intended for end-of-stream or
// end-of-period aggregation, after both sides saw EndPeriod).
func (l *LTC) Merge(other *LTC) error {
	if !l.Compatible(other) {
		return ErrIncompatible
	}
	type merged struct {
		id      uint64
		freq    uint64
		counter uint64
	}
	for b := 0; b < l.w; b++ {
		base, end := b*l.d, (b+1)*l.d

		sum := make(map[uint64]*merged, 2*l.d)
		absorb := func(host *LTC) {
			for i := base; i < end; i++ {
				if host.flags[i]&flagOccupied == 0 {
					continue
				}
				e := host.entry(i) // folds pending flags into persistency
				m := sum[e.Item]
				if m == nil {
					m = &merged{id: e.Item}
					sum[e.Item] = m
				}
				m.freq += e.Frequency
				m.counter += e.Persistency
			}
		}
		absorb(l)
		absorb(other)

		all := make([]*merged, 0, len(sum))
		for _, m := range sum {
			all = append(all, m)
		}
		sort.Slice(all, func(i, j int) bool {
			si := l.opts.Weights.Significance(all[i].freq, all[i].counter)
			sj := l.opts.Weights.Significance(all[j].freq, all[j].counter)
			//siglint:ignore cold-path ranking by the float reporting definition; equality only routes to the deterministic id tie-break
			if si != sj {
				return si > sj
			}
			return all[i].id < all[j].id
		})
		if len(all) > l.d {
			all = all[:l.d]
		}
		for j := 0; j < l.d; j++ {
			i := base + j
			if j < len(all) {
				l.ids[i] = all[j].id
				l.freqs[i] = saturate32(all[j].freq)
				l.counters[i] = saturate32(all[j].counter)
				l.flags[i] = flagOccupied
			} else {
				l.ids[i] = 0
				l.freqs[i] = 0
				l.counters[i] = 0
				l.flags[i] = 0
			}
		}
	}
	l.occupied = l.countOccupied()
	return nil
}

func saturate32(v uint64) uint32 {
	if v > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(v)
}
