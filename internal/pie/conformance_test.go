package pie

import (
	"testing"

	"sigstream/internal/stream"
	"sigstream/internal/trackertest"
)

func TestTrackerContract(t *testing.T) {
	trackertest.Run(t, func(mem int) stream.Tracker {
		return New(Options{PerPeriodBytes: mem, Beta: 1, Seed: 1})
	}, trackertest.Options{PersistencyOnly: true, MinPeriods: 6})
}
