package pie

import (
	"testing"

	"sigstream/internal/gen"
	"sigstream/internal/metrics"
	"sigstream/internal/oracle"
	"sigstream/internal/stream"
)

func TestDecodeRecoversPersistentItems(t *testing.T) {
	// Two persistent items over 10 periods with a roomy STBF must be
	// decoded with exact persistency.
	p := New(Options{PerPeriodBytes: 4096, Beta: 1, Seed: 1})
	a, b := stream.Item(0xdeadbeefcafe), stream.Item(0x123456789abc)
	for per := 0; per < 10; per++ {
		p.Insert(a)
		if per%2 == 0 {
			p.Insert(b)
		}
		p.EndPeriod()
	}
	top := p.TopK(10)
	if len(top) < 2 {
		t.Fatalf("decoded %d items, want ≥2: %+v", len(top), top)
	}
	if top[0].Item != a || top[0].Persistency != 10 {
		t.Fatalf("top item %+v, want item %x with persistency 10", top[0], a)
	}
	if top[1].Item != b || top[1].Persistency != 5 {
		t.Fatalf("second item %+v, want item %x with persistency 5", top[1], b)
	}
}

func TestShortLivedItemsNotDecoded(t *testing.T) {
	// An item below the decode threshold (fewer than minDecodePeriods
	// periods) cannot be reconstructed.
	p := New(Options{PerPeriodBytes: 4096, Beta: 1, Seed: 2})
	for per := 0; per < 8; per++ {
		if per < 2 {
			p.Insert(777)
		}
		p.Insert(stream.Item(1000 + per)) // churn
		p.EndPeriod()
	}
	for _, e := range p.TopK(100) {
		if e.Item == 777 {
			t.Fatalf("item below decode threshold was decoded: %+v", e)
		}
	}
}

func TestQueryByIDWorksWithoutDecode(t *testing.T) {
	p := New(Options{PerPeriodBytes: 4096, Beta: 2, Seed: 3})
	for per := 0; per < 3; per++ {
		p.Insert(555)
		p.EndPeriod()
	}
	e, ok := p.Query(555)
	if !ok {
		t.Fatal("known ID not found")
	}
	if e.Persistency != 3 {
		t.Fatalf("persistency = %d, want 3", e.Persistency)
	}
	if e.Significance != 6 {
		t.Fatalf("significance = %v, want 6 (β=2)", e.Significance)
	}
	if _, ok := p.Query(556); ok {
		t.Fatal("absent ID reported present")
	}
}

func TestDuplicateArrivalsWithinPeriodCountOnce(t *testing.T) {
	p := New(Options{PerPeriodBytes: 4096, Beta: 1, Seed: 4})
	for i := 0; i < 50; i++ {
		p.Insert(42)
	}
	p.EndPeriod()
	e, ok := p.Query(42)
	if !ok || e.Persistency != 1 {
		t.Fatalf("persistency = %d (ok=%v), want 1", e.Persistency, ok)
	}
}

func TestCollisionsDirtyCells(t *testing.T) {
	// A tiny STBF flooded with distinct items must mark cells dirty and
	// decode little or nothing — PIE's tight-memory failure mode.
	p := New(Options{PerPeriodBytes: 64, Beta: 1, Seed: 5}) // 16 cells
	for per := 0; per < 10; per++ {
		for i := 0; i < 200; i++ {
			p.Insert(stream.Item(i))
		}
		p.EndPeriod()
	}
	if got := len(p.TopK(1000)); got > 20 {
		t.Fatalf("decoded %d items from a hopelessly dirty STBF", got)
	}
}

func TestAccuracyOnWorkload(t *testing.T) {
	// Persistent-head workload with ample per-period memory: PIE should
	// find most of the true top-k persistent items.
	s := gen.Generate(gen.Config{N: 30000, M: 1500, Periods: 30, Skew: 0.9,
		Head: 40, TailWindowFrac: 0.15, Seed: 6})
	o := oracle.FromStream(s, stream.Persistent)
	p := New(Options{PerPeriodBytes: 32 * 1024, Beta: 1, Seed: 7})
	s.Replay(p)
	r := metrics.Evaluate(o, p, 30)
	if r.Precision < 0.5 {
		t.Fatalf("PIE precision %.2f with ample memory, want ≥0.5", r.Precision)
	}
}

func TestNoOvercountingProperty(t *testing.T) {
	// Reported persistency must never exceed the true persistency: a clean
	// matching cell requires the item to have been inserted that period
	// (fingerprint+symbol collisions from a different single item in the
	// same cell are what the symbol check rules out).
	s := gen.Generate(gen.Config{N: 20000, M: 800, Periods: 25, Skew: 1.0,
		Head: 20, TailWindowFrac: 0.3, Seed: 8})
	o := oracle.FromStream(s, stream.Persistent)
	p := New(Options{PerPeriodBytes: 16 * 1024, Beta: 1, Seed: 9})
	s.Replay(p)
	for _, e := range p.TopK(200) {
		real, ok := o.Query(e.Item)
		if !ok {
			t.Fatalf("decoded phantom item %x", e.Item)
		}
		if e.Persistency > real.Persistency {
			t.Fatalf("item %x: PIE persistency %d > true %d",
				e.Item, e.Persistency, real.Persistency)
		}
	}
}

func TestMemoryAccountingGrowsPerPeriod(t *testing.T) {
	p := New(Options{PerPeriodBytes: 1024, Beta: 1, Seed: 10})
	m0 := p.MemoryBytes()
	p.EndPeriod()
	p.EndPeriod()
	if p.MemoryBytes() <= m0 {
		t.Fatal("memory must grow with the number of period STBFs")
	}
	if p.Cells() != 1024/CellBytes {
		t.Fatalf("cells = %d, want %d", p.Cells(), 1024/CellBytes)
	}
	if p.Name() != "PIE" {
		t.Fatal("wrong name")
	}
}

func TestDecodeCacheInvalidation(t *testing.T) {
	p := New(Options{PerPeriodBytes: 4096, Beta: 1, Seed: 11})
	for per := 0; per < 5; per++ {
		p.Insert(99)
		p.EndPeriod()
	}
	before := len(p.TopK(10))
	for per := 0; per < 5; per++ {
		p.Insert(1234567)
		p.EndPeriod()
	}
	after := p.TopK(10)
	if len(after) <= before {
		t.Fatalf("decode cache not refreshed: %d → %d items", before, len(after))
	}
}

func BenchmarkInsert(b *testing.B) {
	s := gen.NetworkLike(1<<16, 1)
	p := New(Options{PerPeriodBytes: 64 * 1024, Beta: 1, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Insert(s.Items[i&(1<<16-1)])
	}
}

func BenchmarkDecode(b *testing.B) {
	s := gen.Generate(gen.Config{N: 50000, M: 2000, Periods: 25, Skew: 1.0,
		Head: 50, TailWindowFrac: 0.2, Seed: 1})
	p := New(Options{PerPeriodBytes: 32 * 1024, Beta: 1, Seed: 1})
	s.Replay(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.stale = true
		p.decode()
	}
}

func TestSymbolBitsOption(t *testing.T) {
	// 8-bit symbols need ≥8 clean periods to decode; 7 periods must not
	// decode, 10 must.
	build := func(periods int) *PIE {
		p := New(Options{PerPeriodBytes: 4096, SymbolBits: 8, Beta: 1, Seed: 21})
		for per := 0; per < periods; per++ {
			p.Insert(0xabcdef)
			p.EndPeriod()
		}
		return p
	}
	if got := len(build(7).TopK(10)); got != 0 {
		t.Fatalf("decoded %d items below the 8-period threshold", got)
	}
	few := build(10).TopK(10)
	if len(few) != 1 || few[0].Item != 0xabcdef {
		t.Fatalf("10 periods with 8-bit symbols failed to decode: %+v", few)
	}
	// Out-of-range widths fall back to the default.
	if p := New(Options{PerPeriodBytes: 64, SymbolBits: 99}); p.opts.SymbolBits != 16 {
		t.Fatalf("SymbolBits 99 not clamped: %d", p.opts.SymbolBits)
	}
}
