// Package pie implements PIE, the state-of-the-art baseline for finding
// top-k persistent items (paper Section II-B). PIE maintains one
// Space-Time Bloom Filter (STBF) per period and encodes the IDs of the
// items appearing in that period with a fountain code; after the stream, it
// decodes the IDs of items that appeared in enough periods.
//
// The original uses Raptor codes. Raptor codes are linear fountain codes,
// so this implementation uses a random linear fountain over GF(2): each
// clean STBF cell stores a 16-bit code symbol whose bits are seeded linear
// combinations of the unknown 64-bit item ID, and decoding is Gaussian
// elimination (package gf2). Decode succeeds exactly when the collected
// clean cells reach rank 64 — the same information-theoretic condition that
// governs Raptor decoding, which is what drives PIE's accuracy-vs-memory
// behaviour (see DESIGN.md §6).
//
// Following the paper's evaluation setup, PIE is granted T× the nominal
// memory budget: one full STBF per period.
package pie

import (
	"sigstream/internal/gf2"
	"sigstream/internal/hashing"
	"sigstream/internal/stream"
)

// CellBytes is the accounted size of one STBF cell: 8-bit fingerprint,
// 16-bit code symbol, 2-bit state, padded to 4 bytes.
const CellBytes = 4

// defaultSymbolBits is the number of GF(2) equations contributed by a
// clean cell when Options.SymbolBits is unset.
const defaultSymbolBits = 16

type cellState uint8

const (
	cellEmpty cellState = iota
	cellValid
	cellDirty
)

type cell struct {
	fp    uint8
	sym   uint16
	state cellState
}

// Options configures PIE.
type Options struct {
	// PerPeriodBytes is the memory budget of each period's STBF.
	PerPeriodBytes int
	// Hashes is the number of cells each item writes per period (default 2).
	Hashes int
	// SymbolBits is the fountain-code symbol width per cell, 1–16 bits
	// (default 16). Fewer bits per cell means more clean periods are
	// required before an ID can decode (≥ ⌈64/SymbolBits⌉).
	SymbolBits int
	// Beta is the persistency weight used when reporting significance.
	Beta float64
	// Seed keys the hash functions and the fountain-code masks.
	Seed uint32
}

// PIE is the Space-Time Bloom Filter structure.
type PIE struct {
	opts   Options
	m      int // cells per STBF
	stbfs  [][]cell
	cur    []cell
	hashes []hashing.Bob

	decoded []stream.Entry // cache of the last full decode
	stale   bool
}

// New builds a PIE instance.
func New(opts Options) *PIE {
	if opts.PerPeriodBytes < CellBytes {
		opts.PerPeriodBytes = CellBytes
	}
	if opts.Hashes <= 0 {
		opts.Hashes = 2
	}
	if opts.SymbolBits <= 0 || opts.SymbolBits > 16 {
		opts.SymbolBits = defaultSymbolBits
	}
	m := opts.PerPeriodBytes / CellBytes
	p := &PIE{
		opts:   opts,
		m:      m,
		cur:    make([]cell, m),
		hashes: make([]hashing.Bob, opts.Hashes),
		stale:  true,
	}
	for i := range p.hashes {
		p.hashes[i] = hashing.NewBob(opts.Seed ^ uint32(0x4ae1+i*0x95))
	}
	return p
}

// Cells reports the number of cells per period STBF.
func (p *PIE) Cells() int { return p.m }

// Name identifies the algorithm.
func (p *PIE) Name() string { return "PIE" }

// MemoryBytes reports the total footprint across all period STBFs built so
// far (the paper's T× allowance).
func (p *PIE) MemoryBytes() int {
	return (len(p.stbfs) + 1) * p.m * CellBytes
}

func (p *PIE) position(i int, item stream.Item) int {
	pos := int(p.hashes[i].Hash64(item)) % p.m
	if pos < 0 {
		pos += p.m
	}
	return pos
}

func (p *PIE) fingerprint(item stream.Item) uint8 {
	return uint8(hashing.Fingerprint(item, p.opts.Seed^0x77, 8))
}

// mask derives the fountain-code mask for equation j of cell pos in period t.
func (p *PIE) mask(pos, t, j int) uint64 {
	seed := uint64(p.opts.Seed)<<32 ^ uint64(pos)<<24 ^ uint64(t)<<4 ^ uint64(j)
	return hashing.Mix64(hashing.Mix64(seed) ^ 0xa5a5a5a5a5a5a5a5)
}

// minDecodePeriods is the number of clean same-position cells needed
// before a decode is attempted (64 unknowns / SymbolBits per cell).
func (p *PIE) minDecodePeriods() int {
	return (64 + p.opts.SymbolBits - 1) / p.opts.SymbolBits
}

// symbol encodes item into the code symbol for (pos, t).
func (p *PIE) symbol(item stream.Item, pos, t int) uint16 {
	var s uint16
	for j := 0; j < p.opts.SymbolBits; j++ {
		s |= uint16(gf2.Eval(p.mask(pos, t, j), item)) << uint(j)
	}
	return s
}

// Insert records one arrival of item in the current period's STBF.
func (p *PIE) Insert(item stream.Item) {
	t := len(p.stbfs)
	fp := p.fingerprint(item)
	for i := 0; i < p.opts.Hashes; i++ {
		pos := p.position(i, item)
		c := &p.cur[pos]
		switch c.state {
		case cellEmpty:
			*c = cell{fp: fp, sym: p.symbol(item, pos, t), state: cellValid}
		case cellValid:
			if c.fp != fp || c.sym != p.symbol(item, pos, t) {
				c.state = cellDirty
			}
		case cellDirty:
			// A collided cell stays dirty for the rest of the period; no
			// later arrival can make it decodable again.
		}
	}
	p.stale = true
}

// EndPeriod seals the current STBF and starts a fresh one.
func (p *PIE) EndPeriod() {
	p.stbfs = append(p.stbfs, p.cur)
	p.cur = make([]cell, p.m)
	p.stale = true
}

// sealed returns all period STBFs including the in-progress one if it has
// content (queries mid-period should see it).
func (p *PIE) sealed() [][]cell {
	return p.stbfs
}

// Query reports the estimate for a known item ID by recounting the periods
// whose STBF holds a clean matching cell at any of the item's positions.
// Unlike TopK, Query does not require decoding (the ID is given).
func (p *PIE) Query(item stream.Item) (stream.Entry, bool) {
	fp := p.fingerprint(item)
	persist := uint64(0)
	for t, stbf := range p.sealed() {
		for i := 0; i < p.opts.Hashes; i++ {
			pos := p.position(i, item)
			c := stbf[pos]
			if c.state == cellValid && c.fp == fp && c.sym == p.symbol(item, pos, t) {
				persist++
				break
			}
		}
	}
	if persist == 0 {
		return stream.Entry{}, false
	}
	return stream.Entry{Item: item, Persistency: persist,
		Significance: p.opts.Beta * float64(persist)}, true
}

// TopK decodes the STBFs and reports the k decoded items with the largest
// estimated persistency.
func (p *PIE) TopK(k int) []stream.Entry {
	if p.stale {
		p.decode()
	}
	es := make([]stream.Entry, len(p.decoded))
	copy(es, p.decoded)
	return stream.TopKFromEntries(es, k)
}

// decode runs the fountain decode over all sealed periods: for every cell
// position, clean cells sharing a fingerprint across periods contribute
// equations; a full-rank system yields a candidate ID, which is verified
// against the fingerprint and the position mapping.
func (p *PIE) decode() {
	stbfs := p.sealed()
	candidates := make(map[stream.Item]struct{})
	group := make(map[uint8][]int, 8) // fingerprint → periods with clean cells
	for pos := 0; pos < p.m; pos++ {
		for fp := range group {
			delete(group, fp)
		}
		for t, stbf := range stbfs {
			c := stbf[pos]
			if c.state == cellValid {
				group[c.fp] = append(group[c.fp], t)
			}
		}
		minPeriods := p.minDecodePeriods()
		for fp, ts := range group {
			if len(ts) < minPeriods {
				continue
			}
			item, ok := p.decodeGroup(pos, ts, stbfs)
			if !ok || p.fingerprint(item) != fp {
				continue
			}
			if !p.mapsTo(item, pos) {
				continue
			}
			candidates[item] = struct{}{}
		}
	}
	p.decoded = p.decoded[:0]
	for item := range candidates {
		if e, ok := p.Query(item); ok {
			p.decoded = append(p.decoded, e)
		}
	}
	p.stale = false
}

// decodeGroup builds and solves the GF(2) system from the clean cells at
// pos in periods ts. It returns false when the group is inconsistent (two
// items sharing a fingerprint) or underdetermined.
func (p *PIE) decodeGroup(pos int, ts []int, stbfs [][]cell) (stream.Item, bool) {
	var sys gf2.System
	for _, t := range ts {
		sym := stbfs[t][pos].sym
		for j := 0; j < p.opts.SymbolBits; j++ {
			if !sys.Add(p.mask(pos, t, j), uint8(sym>>uint(j))&1) {
				return 0, false
			}
		}
		if sys.Full() {
			break
		}
	}
	return sys.Solve()
}

// mapsTo verifies that one of the item's hash positions is pos.
func (p *PIE) mapsTo(item stream.Item, pos int) bool {
	for i := 0; i < p.opts.Hashes; i++ {
		if p.position(i, item) == pos {
			return true
		}
	}
	return false
}

var _ stream.Tracker = (*PIE)(nil)
