package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sigstream"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(Config{
		MemoryBytes: 64 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 10},
		Shards:      2,
	}))
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestInsertTopQueryFlow(t *testing.T) {
	srv := newTestServer(t)

	// Two periods: "web1" every period, "burst" once.
	for p := 0; p < 2; p++ {
		body := strings.Repeat("web1\n", 5)
		if p == 0 {
			body += strings.Repeat("burst\n", 20)
		}
		resp := post(t, srv.URL+"/v1/insert", body)
		if resp.StatusCode != 200 {
			t.Fatalf("insert status %d", resp.StatusCode)
		}
		r := decode[map[string]uint64](t, resp)
		want := uint64(5)
		if p == 0 {
			want = 25
		}
		if r["inserted"] != want {
			t.Fatalf("inserted %d, want %d", r["inserted"], want)
		}
		resp = post(t, srv.URL+"/v1/period", "")
		if resp.StatusCode != 200 {
			t.Fatalf("period status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Query.
	resp := get(t, srv.URL+"/v1/query?key=web1")
	if resp.StatusCode != 200 {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	e := decode[map[string]any](t, resp)
	if e["frequency"].(float64) != 10 || e["persistency"].(float64) != 2 {
		t.Fatalf("web1 estimate wrong: %v", e)
	}

	// Top: α=1, β=10 → web1 = 10+20 = 30; burst = 20+10 = 30... use k=2
	// and just verify both present and sorted.
	resp = get(t, srv.URL+"/v1/top?k=2")
	top := decode[[]map[string]any](t, resp)
	if len(top) != 2 {
		t.Fatalf("top returned %d entries", len(top))
	}
	keys := map[string]bool{}
	for _, e := range top {
		keys[e["key"].(string)] = true
	}
	if !keys["web1"] || !keys["burst"] {
		t.Fatalf("top keys wrong: %v", keys)
	}
}

func TestQueryMissing(t *testing.T) {
	srv := newTestServer(t)
	resp := get(t, srv.URL+"/v1/query?key=ghost")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/v1/insert", http.StatusMethodNotAllowed},
		{"GET", "/v1/period", http.StatusMethodNotAllowed},
		{"POST", "/v1/top", http.StatusMethodNotAllowed},
		{"POST", "/v1/query", http.StatusMethodNotAllowed},
		{"POST", "/v1/stats", http.StatusMethodNotAllowed},
		{"GET", "/v1/top?k=0", http.StatusBadRequest},
		{"GET", "/v1/top?k=abc", http.StatusBadRequest},
		{"GET", "/v1/query", http.StatusBadRequest},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(""))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path,
				resp.StatusCode, c.wantStatus)
		}
	}
}

func TestStats(t *testing.T) {
	srv := newTestServer(t)
	post(t, srv.URL+"/v1/insert", "a\nb\nc\n").Body.Close()
	post(t, srv.URL+"/v1/period", "").Body.Close()
	resp := get(t, srv.URL+"/v1/stats")
	st := decode[map[string]any](t, resp)
	if st["arrivals"].(float64) != 3 {
		t.Fatalf("arrivals %v, want 3", st["arrivals"])
	}
	if st["periods"].(float64) != 1 {
		t.Fatalf("periods %v, want 1", st["periods"])
	}
	if st["distinct_keys_seen"].(float64) != 3 {
		t.Fatalf("keys %v, want 3", st["distinct_keys_seen"])
	}
	if st["beta"].(float64) != 10 {
		t.Fatalf("beta %v, want 10", st["beta"])
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body := fmt.Sprintf("worker%d\nshared\n", g)
				resp, err := http.Post(srv.URL+"/v1/insert", "text/plain",
					strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	post(t, srv.URL+"/v1/period", "").Body.Close()
	resp := get(t, srv.URL+"/v1/query?key=shared")
	e := decode[map[string]any](t, resp)
	if e["frequency"].(float64) != 160 {
		t.Fatalf("shared frequency %v, want 160", e["frequency"])
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := New(Config{})
	ts, ok := s.def.TrackerStats()
	if !ok || ts.MemoryBytes <= 0 {
		t.Fatal("no default memory")
	}
	if s.tenants.CostPerTenant() <= 0 {
		t.Fatal("no tenant cost priced")
	}
}

func TestCheckpointRestoreFlow(t *testing.T) {
	srv := newTestServer(t)
	post(t, srv.URL+"/v1/insert", "alpha\nalpha\nbeta\n").Body.Close()
	post(t, srv.URL+"/v1/period", "").Body.Close()

	// Download the snapshot.
	resp := get(t, srv.URL+"/v1/checkpoint")
	if resp.StatusCode != 200 {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	img, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) == 0 {
		t.Fatal("empty checkpoint")
	}

	// Mutate the live tracker, then restore the snapshot.
	post(t, srv.URL+"/v1/insert", strings.Repeat("gamma\n", 50)).Body.Close()
	resp, err = http.Post(srv.URL+"/v1/restore", "application/octet-stream",
		bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("restore status %d", resp.StatusCode)
	}

	// State is back to the snapshot: alpha present with f=2, gamma gone.
	resp = get(t, srv.URL+"/v1/query?key=alpha")
	e := decode[map[string]any](t, resp)
	if e["frequency"].(float64) != 2 {
		t.Fatalf("alpha frequency %v after restore, want 2", e["frequency"])
	}
	resp = get(t, srv.URL+"/v1/query?key=gamma")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("gamma survived restore: status %d", resp.StatusCode)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/restore", "application/octet-stream",
		strings.NewReader("definitely not a checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore status %d, want 400", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t)
	post(t, srv.URL+"/v1/insert", "a\nb\n").Body.Close()
	post(t, srv.URL+"/v1/period", "").Body.Close()
	resp := get(t, srv.URL+"/metrics")
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"sigstream_arrivals_total 2",
		"sigstream_periods_total 1",
		"sigstream_distinct_keys 2",
		"# TYPE sigstream_memory_bytes gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestDecayConfigApplied(t *testing.T) {
	srv := httptest.NewServer(New(Config{
		MemoryBytes: 32 << 10,
		Weights:     sigstream.Frequent,
		Shards:      1,
		DecayFactor: 0.5,
	}))
	t.Cleanup(srv.Close)
	post(t, srv.URL+"/v1/insert", strings.Repeat("hot\n", 100)).Body.Close()
	post(t, srv.URL+"/v1/period", "").Body.Close()
	post(t, srv.URL+"/v1/period", "").Body.Close()
	resp := get(t, srv.URL+"/v1/query?key=hot")
	e := decode[map[string]any](t, resp)
	if got := e["frequency"].(float64); got != 25 {
		t.Fatalf("decayed frequency %v, want 25 (100 halved twice)", got)
	}
}
