package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestDurationJSONRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{`"30s"`, 30 * time.Second},
		{`"1m30s"`, 90 * time.Second},
		{`"0s"`, 0},
		{`1500000000`, 1500 * time.Millisecond}, // bare nanoseconds
	}
	for _, tc := range cases {
		var d Duration
		if err := json.Unmarshal([]byte(tc.in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", tc.in, err)
		}
		if time.Duration(d) != tc.want {
			t.Errorf("unmarshal %s: got %s, want %s", tc.in, time.Duration(d), tc.want)
		}
		out, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back Duration
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip %s via %s: %v", tc.in, out, err)
		}
		if back != d {
			t.Errorf("round trip %s: %s came back as %s", tc.in, d, back)
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"banana"`), &d); err == nil {
		t.Error("unmarshal of a non-duration string succeeded")
	}
}

func TestLoadOptionsSparseFileKeepsDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.json")
	body := `{"mem": 262144, "wal_dir": "/tmp/wal", "wal_sync": "5ms", "read_timeout": "2m"}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	opts, err := LoadOptions(path)
	if err != nil {
		t.Fatal(err)
	}
	if opts.MemoryBytes != 262144 || opts.WALDir != "/tmp/wal" {
		t.Errorf("file keys not applied: %+v", opts)
	}
	if time.Duration(opts.WALSync) != 5*time.Millisecond {
		t.Errorf("wal_sync = %s, want 5ms", time.Duration(opts.WALSync))
	}
	if time.Duration(opts.ReadTimeout) != 2*time.Minute {
		t.Errorf("read_timeout = %s, want 2m", time.Duration(opts.ReadTimeout))
	}
	def := DefaultOptions()
	if opts.Addr != def.Addr || opts.LogLevel != def.LogLevel || opts.DrainTimeout != def.DrainTimeout {
		t.Errorf("unnamed keys drifted from defaults: %+v", opts)
	}
	if err := opts.Validate(); err != nil {
		t.Errorf("sparse config failed validation: %v", err)
	}
}

func TestLoadOptionsRejectsUnknownKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, []byte(`{"wal_dirr": "/tmp/wal"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOptions(path); err == nil {
		t.Fatal("typoed key accepted silently")
	} else if !strings.Contains(err.Error(), "wal_dirr") {
		t.Errorf("error does not name the offending key: %v", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Options)
	}{
		{"zero mem", func(o *Options) { o.MemoryBytes = 0 }},
		{"negative alpha", func(o *Options) { o.Alpha = -1 }},
		{"decay of 1", func(o *Options) { o.Decay = 1 }},
		{"negative shards", func(o *Options) { o.Shards = -2 }},
		{"bad log level", func(o *Options) { o.LogLevel = "loud" }},
		{"negative wal segment", func(o *Options) { o.WALSegment = -1 }},
		{"negative tenant quota", func(o *Options) { o.TenantQuota = -3 }},
		{"negative read timeout", func(o *Options) { o.ReadTimeout = Duration(-time.Second) }},
	}
	for _, tc := range bad {
		o := DefaultOptions()
		tc.mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

// TestApplyFlagIngestPrecedence pins the three-way precedence of the
// binary-ingest fields the way an operator experiences it: built-in
// defaults, overridden by a -config file, overridden again by exactly
// the flags set on the command line — the other file-provided fields
// must survive untouched.
func TestApplyFlagIngestPrecedence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.json")
	body := `{"ingest_addr": ":7000", "ingest_udp": ":7001", "ingest_max_frame": 65536}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	opts, err := LoadOptions(path)
	if err != nil {
		t.Fatal(err)
	}

	// The operator set only -ingest-addr and -ingest-max-frame; the flag
	// struct holds their parsed values (and defaults everywhere else).
	flags := DefaultOptions()
	flags.IngestAddr = ":9000"
	flags.IngestMaxFrame = 1 << 20
	for _, name := range []string{"ingest-addr", "ingest-max-frame"} {
		if !opts.ApplyFlag(name, flags) {
			t.Fatalf("ApplyFlag(%q) found no field", name)
		}
	}

	if opts.IngestAddr != ":9000" {
		t.Errorf("ingest_addr = %q, want the flag value :9000", opts.IngestAddr)
	}
	if opts.IngestMaxFrame != 1<<20 {
		t.Errorf("ingest_max_frame = %d, want the flag value %d", opts.IngestMaxFrame, 1<<20)
	}
	if opts.IngestUDP != ":7001" {
		t.Errorf("ingest_udp = %q, want the config-file value :7001", opts.IngestUDP)
	}
	ic := opts.IngestOptions()
	if ic.Addr != ":9000" || ic.UDPAddr != ":7001" || ic.MaxFrameBytes != 1<<20 {
		t.Errorf("IngestOptions did not carry the resolved values: %+v", ic)
	}
}

// TestApplyFlagCoversEveryField proves the flag → field mapping is
// total: for every Options field, the flag name derived from its JSON
// tag (underscores as dashes) must land on exactly that field. A new
// field with a tag is therefore covered by sigserver's flag.Visit loop
// with no further wiring.
func TestApplyFlagCoversEveryField(t *testing.T) {
	rt := reflect.TypeOf(Options{})
	for i := 0; i < rt.NumField(); i++ {
		tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
		if tag == "" || tag == "-" {
			t.Fatalf("field %s has no JSON tag; ApplyFlag cannot reach it", rt.Field(i).Name)
		}
		flagName := strings.ReplaceAll(tag, "_", "-")

		// Build a donor whose field i differs from the zero value, apply,
		// and check that exactly that field changed.
		var from, got Options
		fv := reflect.ValueOf(&from).Elem().Field(i)
		switch fv.Kind() {
		case reflect.String:
			fv.SetString("x")
		case reflect.Bool:
			fv.SetBool(true)
		case reflect.Float64:
			fv.SetFloat(1.5)
		default:
			fv.SetInt(42) // int, int64 and Duration all land here
		}
		if !got.ApplyFlag(flagName, from) {
			t.Errorf("ApplyFlag(%q) found no field for %s", flagName, rt.Field(i).Name)
			continue
		}
		if got != from {
			t.Errorf("ApplyFlag(%q) changed the wrong field: got %+v, want %+v", flagName, got, from)
		}
	}
	var o Options
	if o.ApplyFlag("config", DefaultOptions()) {
		t.Error("ApplyFlag(\"config\") claimed a field; -config has none")
	}
	if o != (Options{}) {
		t.Errorf("unknown flag mutated options: %+v", o)
	}
}

// TestOptionsJSONTagsCoverEveryFlagField keeps the Options ↔ flag
// correspondence honest from the config side: marshaling the defaults
// must produce a JSON object whose keys decode back without tripping
// DisallowUnknownFields, i.e. MarshalJSON and UnmarshalJSON agree on
// the schema.
func TestOptionsJSONTagsCoverEveryFlagField(t *testing.T) {
	data, err := json.Marshal(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	opts, err := LoadOptions(path)
	if err != nil {
		t.Fatal(err)
	}
	if opts != DefaultOptions() {
		t.Errorf("defaults did not survive a marshal/load round trip:\n got %+v\nwant %+v", opts, DefaultOptions())
	}
}
