package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDurationJSONRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{`"30s"`, 30 * time.Second},
		{`"1m30s"`, 90 * time.Second},
		{`"0s"`, 0},
		{`1500000000`, 1500 * time.Millisecond}, // bare nanoseconds
	}
	for _, tc := range cases {
		var d Duration
		if err := json.Unmarshal([]byte(tc.in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", tc.in, err)
		}
		if time.Duration(d) != tc.want {
			t.Errorf("unmarshal %s: got %s, want %s", tc.in, time.Duration(d), tc.want)
		}
		out, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back Duration
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip %s via %s: %v", tc.in, out, err)
		}
		if back != d {
			t.Errorf("round trip %s: %s came back as %s", tc.in, d, back)
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"banana"`), &d); err == nil {
		t.Error("unmarshal of a non-duration string succeeded")
	}
}

func TestLoadOptionsSparseFileKeepsDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.json")
	body := `{"mem": 262144, "wal_dir": "/tmp/wal", "wal_sync": "5ms", "read_timeout": "2m"}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	opts, err := LoadOptions(path)
	if err != nil {
		t.Fatal(err)
	}
	if opts.MemoryBytes != 262144 || opts.WALDir != "/tmp/wal" {
		t.Errorf("file keys not applied: %+v", opts)
	}
	if time.Duration(opts.WALSync) != 5*time.Millisecond {
		t.Errorf("wal_sync = %s, want 5ms", time.Duration(opts.WALSync))
	}
	if time.Duration(opts.ReadTimeout) != 2*time.Minute {
		t.Errorf("read_timeout = %s, want 2m", time.Duration(opts.ReadTimeout))
	}
	def := DefaultOptions()
	if opts.Addr != def.Addr || opts.LogLevel != def.LogLevel || opts.DrainTimeout != def.DrainTimeout {
		t.Errorf("unnamed keys drifted from defaults: %+v", opts)
	}
	if err := opts.Validate(); err != nil {
		t.Errorf("sparse config failed validation: %v", err)
	}
}

func TestLoadOptionsRejectsUnknownKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, []byte(`{"wal_dirr": "/tmp/wal"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOptions(path); err == nil {
		t.Fatal("typoed key accepted silently")
	} else if !strings.Contains(err.Error(), "wal_dirr") {
		t.Errorf("error does not name the offending key: %v", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Options)
	}{
		{"zero mem", func(o *Options) { o.MemoryBytes = 0 }},
		{"negative alpha", func(o *Options) { o.Alpha = -1 }},
		{"decay of 1", func(o *Options) { o.Decay = 1 }},
		{"negative shards", func(o *Options) { o.Shards = -2 }},
		{"bad log level", func(o *Options) { o.LogLevel = "loud" }},
		{"negative wal segment", func(o *Options) { o.WALSegment = -1 }},
		{"negative tenant quota", func(o *Options) { o.TenantQuota = -3 }},
		{"negative read timeout", func(o *Options) { o.ReadTimeout = Duration(-time.Second) }},
	}
	for _, tc := range bad {
		o := DefaultOptions()
		tc.mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
}

// TestOptionsJSONTagsCoverEveryFlagField keeps the Options ↔ flag
// correspondence honest from the config side: marshaling the defaults
// must produce a JSON object whose keys decode back without tripping
// DisallowUnknownFields, i.e. MarshalJSON and UnmarshalJSON agree on
// the schema.
func TestOptionsJSONTagsCoverEveryFlagField(t *testing.T) {
	data, err := json.Marshal(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	opts, err := LoadOptions(path)
	if err != nil {
		t.Fatal(err)
	}
	if opts != DefaultOptions() {
		t.Errorf("defaults did not survive a marshal/load round trip:\n got %+v\nwant %+v", opts, DefaultOptions())
	}
}
