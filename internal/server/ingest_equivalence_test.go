package server

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"sigstream"
	"sigstream/internal/ingest"
)

// equivConfig is the geometry the ingest-equivalence tests share; the
// pipeline stays off so both transports are read-your-writes.
func equivConfig() Config {
	return Config{
		MemoryBytes: 64 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 10},
		Shards:      2,
		Logger:      quietLogger(),
	}
}

// equivRecord is one (key, weight) step of the shared workload.
type equivRecord struct {
	key string
	w   uint32
}

// equivWorkload is a deterministic three-period weighted stream with
// distinct per-key totals, so any divergence shows up in the ranking.
func equivWorkload() [][]equivRecord {
	return [][]equivRecord{
		{{"alpha", 5}, {"bravo", 3}, {"charlie", 1}, {"alpha", 2}},
		{{"bravo", 4}, {"delta", 6}, {"alpha", 1}},
		{{"charlie", 2}, {"delta", 1}, {"echo", 9}, {"bravo", 1}},
	}
}

// TestIngestEquivalenceBitIdentical is the acceptance check for the
// binary transport: the same weighted stream fed once through JSON
// /v1/insert (weights expanded into repeated lines) and once through the
// framed binary protocol must leave the two trackers with bit-identical
// checkpoint images — not merely the same ranking, the same bytes.
func TestIngestEquivalenceBitIdentical(t *testing.T) {
	periods := equivWorkload()

	// Transport 1: text lines over HTTP, weights as repetition.
	httpSrv := New(equivConfig())
	srvA := httptest.NewServer(httpSrv)
	t.Cleanup(func() { srvA.Close(); _ = httpSrv.Close() })
	for pi, p := range periods {
		if pi > 0 {
			post(t, srvA.URL+"/v1/period", "").Body.Close()
		}
		var b strings.Builder
		for _, r := range p {
			for j := uint32(0); j < r.w; j++ {
				b.WriteString(r.key + "\n")
			}
		}
		post(t, srvA.URL+"/v1/insert", b.String()).Body.Close()
	}

	// Transport 2: weighted records over framed binary TCP.
	binSrv := New(equivConfig())
	srvB := httptest.NewServer(binSrv)
	t.Cleanup(func() { srvB.Close(); _ = binSrv.Close() })
	if err := binSrv.StartIngest(IngestConfig{Addr: "127.0.0.1:0"}); err != nil {
		t.Fatalf("StartIngest: %v", err)
	}
	conn, err := ingest.Dial(binSrv.Ingest().Addr().String(), ingest.Options{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for pi, p := range periods {
		if pi > 0 {
			if err := conn.Period(); err != nil {
				t.Fatalf("Period: %v", err)
			}
		}
		keys := make([]string, len(p))
		weights := make([]uint32, len(p))
		for i, r := range p {
			keys[i], weights[i] = r.key, r.w
		}
		if err := conn.InsertWeighted(keys, weights); err != nil {
			t.Fatalf("InsertWeighted: %v", err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The strongest comparison first: the marshalled tracker state.
	imgA, err := readAll(get(t, srvA.URL+"/v1/checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := readAll(get(t, srvB.URL+"/v1/checkpoint"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imgA, imgB) {
		t.Fatalf("checkpoint images diverge: %d vs %d bytes", len(imgA), len(imgB))
	}

	// And the user-visible surfaces: ranking with key names, counters.
	requireSameRanking(t, mustTop(t, srvB.URL, 5), mustTop(t, srvA.URL, 5))
	stA := decode[statsResponse](t, get(t, srvA.URL+"/v1/stats"))
	stB := decode[statsResponse](t, get(t, srvB.URL+"/v1/stats"))
	if stA.Arrivals != stB.Arrivals || stA.Periods != stB.Periods {
		t.Fatalf("counters diverge: http %d/%d, binary %d/%d",
			stA.Arrivals, stA.Periods, stB.Arrivals, stB.Periods)
	}
}

// TestIngestEquivalenceWeightedVsRepeated feeds one binary server
// weighted records and another the same stream as unit-weight
// repetitions: the weight field must be pure wire compression, invisible
// to the tracker.
func TestIngestEquivalenceWeightedVsRepeated(t *testing.T) {
	periods := equivWorkload()
	images := make([][]byte, 2)
	for variant := 0; variant < 2; variant++ {
		s := New(equivConfig())
		srv := httptest.NewServer(s)
		if err := s.StartIngest(IngestConfig{Addr: "127.0.0.1:0"}); err != nil {
			t.Fatalf("StartIngest: %v", err)
		}
		conn, err := ingest.Dial(s.Ingest().Addr().String(), ingest.Options{Window: 4})
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		for pi, p := range periods {
			if pi > 0 {
				if err := conn.Period(); err != nil {
					t.Fatalf("Period: %v", err)
				}
			}
			if variant == 0 {
				keys := make([]string, len(p))
				weights := make([]uint32, len(p))
				for i, r := range p {
					keys[i], weights[i] = r.key, r.w
				}
				err = conn.InsertWeighted(keys, weights)
			} else {
				var keys []string
				for _, r := range p {
					for j := uint32(0); j < r.w; j++ {
						keys = append(keys, r.key)
					}
				}
				err = conn.Insert(keys...)
			}
			if err != nil {
				t.Fatalf("variant %d insert: %v", variant, err)
			}
		}
		if err := conn.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		images[variant], err = readAll(get(t, srv.URL+fmt.Sprintf("/v1/checkpoint")))
		if err != nil {
			t.Fatal(err)
		}
		srv.Close()
		_ = s.Close()
	}
	if !bytes.Equal(images[0], images[1]) {
		t.Fatalf("weighted and repeated streams diverge: %d vs %d bytes",
			len(images[0]), len(images[1]))
	}
}
