package server

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sigstream"
	"sigstream/internal/fault"
	"sigstream/internal/snapshot"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// durableConfig is the geometry shared by every crash-recovery test: the
// recovering server must be built with the same config as the one that
// wrote the snapshot, exactly as one deployment restarting.
func durableConfig() Config {
	return Config{
		MemoryBytes:  64 << 10,
		Weights:      sigstream.Weights{Alpha: 1, Beta: 10},
		Shards:       2,
		Pipeline:     true,
		PipelineRing: 8,
		Logger:       quietLogger(),
	}
}

// waitForStatus polls url until it answers with the wanted status.
func waitForStatus(t *testing.T, url string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == want {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s to answer %d", url, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosCrashRecoveryRoundTrip is the headline durability check: a
// server checkpoints mid-stream, dies without any shutdown (the handler
// and its workers are simply abandoned, as kill -9 would), and a new
// server pointed at the same snapshot directory comes back ready with a
// ranking identical to the checkpoint. Inserts after the checkpoint are
// lost — durability is bounded by the snapshot interval, never corrupt.
func TestChaosCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()

	a := New(durableConfig())
	if err := a.StartSnapshots(SnapshotConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(a)
	var body strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&body, "key-%d\n", i%37)
	}
	post(t, srvA.URL+"/v1/insert", body.String()).Body.Close()
	post(t, srvA.URL+"/v1/period", "").Body.Close()
	preKill := decode[[]entryJSON](t, get(t, srvA.URL+"/v1/top?k=10"))
	preStats := decode[statsResponse](t, get(t, srvA.URL+"/v1/stats"))
	if _, err := a.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Un-checkpointed tail: these arrivals must NOT survive the crash.
	post(t, srvA.URL+"/v1/insert", strings.Repeat("doomed\n", 100)).Body.Close()
	srvA.Close() // kill -9: no a.Close(), no final snapshot

	b := New(durableConfig())
	if err := b.StartSnapshots(SnapshotConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })

	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)
	got := decode[[]entryJSON](t, get(t, srvB.URL+"/v1/top?k=10"))
	if len(got) != len(preKill) {
		t.Fatalf("recovered top-k has %d entries, want %d", len(got), len(preKill))
	}
	for i := range got {
		// Key names are not part of the checkpoint (they render as hex
		// until re-interned); everything the tracker owns must match.
		w, g := preKill[i], got[i]
		if g.Item != w.Item || g.Frequency != w.Frequency ||
			g.Persistency != w.Persistency || g.Significance != w.Significance {
			t.Fatalf("recovered entry %d = %+v, want %+v", i, g, w)
		}
	}
	gotStats := decode[statsResponse](t, get(t, srvB.URL+"/v1/stats"))
	if gotStats.Arrivals != preStats.Arrivals || gotStats.Periods != preStats.Periods {
		t.Fatalf("recovered counters %d/%d, want the checkpoint's %d/%d",
			gotStats.Arrivals, gotStats.Periods, preStats.Arrivals, preStats.Periods)
	}
	if gotStats.Tracker.Arrivals != preStats.Tracker.Arrivals {
		t.Fatalf("recovered tracker arrivals %d, want %d (the doomed tail leaked in)",
			gotStats.Tracker.Arrivals, preStats.Tracker.Arrivals)
	}
}

// TestChaosRecoverySkipsTornSnapshot plants a newer, torn snapshot file on
// top of a valid one: startup recovery must skip the torn file and come up
// from the older intact checkpoint instead of failing or serving garbage.
func TestChaosRecoverySkipsTornSnapshot(t *testing.T) {
	dir := t.TempDir()

	a := New(durableConfig())
	if err := a.StartSnapshots(SnapshotConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(a)
	post(t, srvA.URL+"/v1/insert", "alpha\nalpha\nbeta\n").Body.Close()
	post(t, srvA.URL+"/v1/period", "").Body.Close()
	preKill := decode[[]entryJSON](t, get(t, srvA.URL+"/v1/top?k=5"))
	if _, err := a.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	srvA.Close() // crash

	// A torn write that made it past rename (e.g. corrupted at rest), with
	// a sequence number newer than anything the server wrote.
	frame := snapshot.Encode([]byte("half a checkpoint"))
	torn := filepath.Join(dir, snapshot.FileName(1<<40))
	if err := os.WriteFile(torn, frame[:len(frame)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	b := New(durableConfig())
	if err := b.StartSnapshots(SnapshotConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })
	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)
	got := decode[[]entryJSON](t, get(t, srvB.URL+"/v1/top?k=5"))
	if len(got) != len(preKill) {
		t.Fatalf("recovered %d entries past the torn file, want %d", len(got), len(preKill))
	}
	for i := range got {
		if got[i].Item != preKill[i].Item || got[i].Frequency != preKill[i].Frequency {
			t.Fatalf("recovered entry %d = %+v, want %+v", i, got[i], preKill[i])
		}
	}
}

// TestChaosShedUnderOverload stalls the single shard worker and keeps
// inserting: once the ring hits the high-water mark the server must answer
// 429 with Retry-After instead of stalling handler goroutines, count the
// shed on /metrics, and accept traffic again when the stall clears.
func TestChaosShedUnderOverload(t *testing.T) {
	gate := make(chan struct{})
	deactivate := fault.Activate(fault.PipelineSlow, func(shard int) error {
		<-gate
		return nil
	})
	t.Cleanup(func() { deactivate() })

	cfg := durableConfig()
	cfg.Shards = 1
	cfg.PipelineRing = 1
	h := New(cfg)
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); _ = h.Close() })

	// Each accepted insert is either picked up by the stalled worker or
	// parked in the 1-deep ring; within a few posts the gate trips.
	var shed *http.Response
	deadline := time.Now().Add(10 * time.Second)
	for shed == nil {
		if time.Now().After(deadline) {
			t.Fatal("insert never shed despite a stalled worker and a full ring")
		}
		resp := post(t, srv.URL+"/v1/insert", "hot\n")
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert status %d, want 200 or 429", resp.StatusCode)
		}
	}
	if got := shed.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	shed.Body.Close()

	metrics, err := readAll(get(t, srv.URL+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "sigstream_http_shed_total") ||
		strings.Contains(string(metrics), "sigstream_http_shed_total 0") {
		t.Fatalf("/metrics does not report the shed: %s", metrics)
	}

	// Clear the stall: the queued work drains and ingest recovers.
	close(gate)
	deactivate()
	resp := post(t, srv.URL+"/v1/insert", "hot\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after the stall cleared: status %d, want 200", resp.StatusCode)
	}
}

// TestChaosReadyzDegradedOnQuarantine drives the pipeline past its restart
// budget with injected sink panics: /readyz must flip to 503 naming the
// quarantine while /healthz stays 200 (the process is alive, just not fit
// for traffic), and /metrics must show the restart history.
func TestChaosReadyzDegradedOnQuarantine(t *testing.T) {
	deactivate := fault.Activate(fault.PipelineSink, func(shard int) error {
		panic("injected sink crash")
	})
	t.Cleanup(deactivate)

	cfg := durableConfig()
	cfg.Shards = 1
	cfg.PipelineRestartBudget = 1
	h := New(cfg)
	srv := httptest.NewServer(h)
	t.Cleanup(func() { srv.Close(); _ = h.Close() })

	deadline := time.Now().Add(10 * time.Second)
	for {
		post(t, srv.URL+"/v1/insert", "boom\n").Body.Close()
		resp := get(t, srv.URL+"/readyz")
		if resp.StatusCode == http.StatusServiceUnavailable {
			body, _ := readAll(resp)
			if !strings.Contains(string(body), "quarantined") {
				t.Fatalf("degraded /readyz body %q does not name the quarantine", body)
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("/readyz never degraded despite a persistently panicking sink")
		}
		time.Sleep(time.Millisecond)
	}
	live := get(t, srv.URL+"/healthz")
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d on a degraded server, want 200", live.StatusCode)
	}
	metrics, err := readAll(get(t, srv.URL+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"sigstream_pipeline_restarts_total 2",
		"sigstream_pipeline_quarantined_shards 1",
	} {
		if !strings.Contains(string(metrics), series) {
			t.Fatalf("/metrics missing %q:\n%s", series, metrics)
		}
	}
}

// TestCloseIdempotentUnderConcurrentRequests hammers a pipelined server
// with inserts while two goroutines race Close: nothing may panic or
// deadlock, every request must complete (200 or 503), and every Close
// after the first must return nil.
func TestCloseIdempotentUnderConcurrentRequests(t *testing.T) {
	cfg := durableConfig()
	h := New(cfg)
	if err := h.StartSnapshots(SnapshotConfig{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Post(srv.URL+"/v1/insert", "text/plain",
					strings.NewReader("k\n"))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK &&
					resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("insert during Close: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	closeErrs := make(chan error, 2)
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			closeErrs <- h.Close()
		}()
	}
	wg.Wait()
	if err1, err2 := <-closeErrs, <-closeErrs; err1 != nil && err2 != nil {
		t.Fatalf("both racing Close calls failed: %v / %v", err1, err2)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close after Close = %v, want nil", err)
	}
	// The final snapshot landed despite the race.
	resp := get(t, srv.URL+"/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d after Close, want 503", resp.StatusCode)
	}
}

// TestBodyLimitReturns413 checks the MaxBytesReader guard on both body
// endpoints: an oversized body is refused with 413 and a JSON error, and
// a body under the limit still works.
func TestBodyLimitReturns413(t *testing.T) {
	cfg := durableConfig()
	cfg.Pipeline = false
	cfg.MaxBodyBytes = 64
	h := New(cfg)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	for _, path := range []string{"/v1/insert", "/v1/restore"} {
		resp := post(t, srv.URL+path, strings.Repeat("x", 200))
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s with a 200-byte body: status %d, want 413", path, resp.StatusCode)
		}
		errBody := decode[ErrorBody](t, resp)
		if errBody.Code != "payload_too_large" {
			t.Fatalf("%s 413 code %q, want payload_too_large", path, errBody.Code)
		}
		if !strings.Contains(errBody.Message, "64 byte limit") {
			t.Fatalf("%s 413 error %q does not name the limit", path, errBody.Message)
		}
	}
	resp := post(t, srv.URL+"/v1/insert", "small\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert under the limit: status %d, want 200", resp.StatusCode)
	}
}

// TestHealthEndpointsOnHealthyServer pins the happy-path contract: both
// probes answer 200 on a fresh server, with and without a pipeline.
func TestHealthEndpointsOnHealthyServer(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		cfg := durableConfig()
		cfg.Pipeline = pipelined
		h := New(cfg)
		srv := httptest.NewServer(h)
		for _, path := range []string{"/healthz", "/readyz"} {
			resp := get(t, srv.URL+path)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("pipeline=%v %s = %d, want 200", pipelined, path, resp.StatusCode)
			}
		}
		srv.Close()
		_ = h.Close()
	}
}

// TestSnapshotFaultDoesNotKillServing injects an fsync failure into the
// snapshot path: SnapshotNow fails, the error is counted on /metrics, and
// the server keeps serving — durability degrades, availability does not.
func TestSnapshotFaultDoesNotKillServing(t *testing.T) {
	deactivate := fault.Activate(fault.SnapshotSync, func(int) error {
		return fmt.Errorf("injected fsync failure")
	})
	t.Cleanup(deactivate)

	h := New(durableConfig())
	if err := h.StartSnapshots(SnapshotConfig{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	post(t, srv.URL+"/v1/insert", "a\nb\n").Body.Close()
	if _, err := h.SnapshotNow(); err == nil {
		t.Fatal("SnapshotNow succeeded under an injected fsync failure")
	}
	resp := get(t, srv.URL+"/v1/top?k=2")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read after a failed snapshot: status %d, want 200", resp.StatusCode)
	}
	metrics, err := readAll(get(t, srv.URL+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "sigstream_snapshot_errors_total 1") {
		t.Fatalf("/metrics does not count the failed snapshot:\n%s", metrics)
	}
	deactivate()
	if err := h.Close(); err != nil {
		t.Fatalf("Close after the fault cleared: %v (final snapshot should succeed)", err)
	}
}
