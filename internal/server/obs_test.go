package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sigstream"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp := get(t, base+"/metrics")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q lacks exposition version", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// typeLines parses the exposition's "# TYPE <name> <kind>" headers into a
// name→kind map, failing on malformed headers or duplicates.
func typeLines(t *testing.T, text string) map[string]string {
	t.Helper()
	families := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Fatalf("malformed TYPE header %q", line)
		}
		name, kind := fields[2], fields[3]
		if kind != "counter" && kind != "gauge" && kind != "histogram" {
			t.Fatalf("unknown metric kind %q in %q", kind, line)
		}
		if _, dup := families[name]; dup {
			t.Fatalf("duplicate TYPE header for %s", name)
		}
		families[name] = kind
	}
	return families
}

func TestMetricsExposition(t *testing.T) {
	srv := newTestServer(t)
	post(t, srv.URL+"/v1/insert", strings.Repeat("hot\n", 50)+"cold\n").Body.Close()
	post(t, srv.URL+"/v1/period", "").Body.Close()
	get(t, srv.URL+"/v1/top?k=5").Body.Close()

	text := scrape(t, srv.URL)
	families := typeLines(t, text)

	if len(families) < 12 {
		t.Fatalf("exposition has %d metric families, want >= 12:\n%s",
			len(families), text)
	}
	wantKind := map[string]string{
		"sigstream_arrivals_total":        "counter",
		"sigstream_periods_total":         "counter",
		"sigstream_ltc_hits_total":        "counter",
		"sigstream_ltc_admissions_total":  "counter",
		"sigstream_ltc_decrements_total":  "counter",
		"sigstream_ltc_expulsions_total":  "counter",
		"sigstream_ltc_cells_swept_total": "counter",
		"sigstream_ltc_occupied_cells":    "gauge",
		"sigstream_http_requests_total":   "counter",
		"sigstream_http_request_seconds":  "histogram",
	}
	for name, kind := range wantKind {
		if got := families[name]; got != kind {
			t.Errorf("family %s: kind %q, want %q", name, got, kind)
		}
	}
	// The LTC counters must reflect the ingested stream.
	if !strings.Contains(text, "sigstream_ltc_hits_total 49") {
		t.Errorf("hits counter not reflecting 49 repeat arrivals:\n%s", text)
	}
}

func TestMetricsPerEndpointSeries(t *testing.T) {
	srv := newTestServer(t)
	post(t, srv.URL+"/v1/insert", "a\nb\n").Body.Close()
	post(t, srv.URL+"/v1/insert", "a\n").Body.Close()
	// One error: GET on a POST-only endpoint.
	resp := get(t, srv.URL+"/v1/insert")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/insert = %d", resp.StatusCode)
	}

	text := scrape(t, srv.URL)
	for _, want := range []string{
		`sigstream_http_requests_total{endpoint="/v1/insert"} 3`,
		`sigstream_http_errors_total{endpoint="/v1/insert"} 1`,
		`sigstream_http_request_seconds_count{endpoint="/v1/insert"} 3`,
		`sigstream_http_request_seconds_bucket{endpoint="/v1/insert",le="+Inf"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestStatsTypedTrackerSnapshot(t *testing.T) {
	srv := newTestServer(t)
	post(t, srv.URL+"/v1/insert", strings.Repeat("x\n", 10)).Body.Close()
	post(t, srv.URL+"/v1/period", "").Body.Close()

	st := decode[statsResponse](t, get(t, srv.URL+"/v1/stats"))
	if st.Tracker.Shards != 2 {
		t.Fatalf("tracker shards %d, want 2", st.Tracker.Shards)
	}
	if st.Tracker.Arrivals != 10 {
		t.Fatalf("tracker arrivals %d, want 10", st.Tracker.Arrivals)
	}
	if st.Tracker.Hits != 9 {
		t.Fatalf("tracker hits %d, want 9", st.Tracker.Hits)
	}
	if st.Tracker.Alpha != 1 || st.Tracker.Beta != 10 {
		t.Fatalf("tracker weights α=%g β=%g, want 1/10", st.Tracker.Alpha, st.Tracker.Beta)
	}
	// The flat legacy fields come from the same snapshot.
	if st.Shards != st.Tracker.Shards || st.MemoryBytes != st.Tracker.MemoryBytes {
		t.Fatalf("flat fields diverge from typed snapshot: %+v", st)
	}
}

func TestRestorePreservesConfigAndStats(t *testing.T) {
	// Regression: restore used to rebuild the tracker as
	// NewSharded(Config{}, 1), silently dropping the configured shard
	// count, memory budget, weights and decay.
	srv := httptest.NewServer(New(Config{
		MemoryBytes: 64 << 10,
		Weights:     sigstream.Weights{Alpha: 2, Beta: 5},
		Shards:      4,
	}))
	t.Cleanup(srv.Close)

	post(t, srv.URL+"/v1/insert", strings.Repeat("k1\n", 20)+"k2\n").Body.Close()
	post(t, srv.URL+"/v1/period", "").Body.Close()
	before := decode[statsResponse](t, get(t, srv.URL+"/v1/stats"))

	resp := get(t, srv.URL+"/v1/checkpoint")
	img, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Perturb, then restore.
	post(t, srv.URL+"/v1/insert", "noise\n").Body.Close()
	rr, err := http.Post(srv.URL+"/v1/restore", "application/octet-stream",
		bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", rr.StatusCode)
	}

	after := decode[statsResponse](t, get(t, srv.URL+"/v1/stats"))
	if after.Tracker.Shards != 4 {
		t.Fatalf("restore dropped shard count: %d, want 4", after.Tracker.Shards)
	}
	if after.Tracker.Alpha != 2 || after.Tracker.Beta != 5 {
		t.Fatalf("restore dropped weights: α=%g β=%g", after.Tracker.Alpha, after.Tracker.Beta)
	}
	if after.Tracker.MemoryBytes != before.Tracker.MemoryBytes {
		t.Fatalf("restore changed memory: %d -> %d",
			before.Tracker.MemoryBytes, after.Tracker.MemoryBytes)
	}
	// The operation counters ride the checkpoint (codec v3): the service
	// resumes reporting where the snapshot left off.
	if after.Tracker.Hits != before.Tracker.Hits ||
		after.Tracker.Admissions != before.Tracker.Admissions {
		t.Fatalf("counters did not survive restore: before hits=%d adm=%d, after hits=%d adm=%d",
			before.Tracker.Hits, before.Tracker.Admissions,
			after.Tracker.Hits, after.Tracker.Admissions)
	}
	if after.Arrivals != before.Arrivals || after.Periods != before.Periods {
		t.Fatalf("service counters not reset to snapshot: arrivals %d/%d periods %d/%d",
			before.Arrivals, after.Arrivals, before.Periods, after.Periods)
	}
}

func TestRestoreRejectsGeometryMismatch(t *testing.T) {
	// A snapshot from a 1-shard server must not be restorable into a
	// 2-shard server.
	one := httptest.NewServer(New(Config{MemoryBytes: 64 << 10, Shards: 1}))
	t.Cleanup(one.Close)
	post(t, one.URL+"/v1/insert", "a\nb\n").Body.Close()
	resp := get(t, one.URL+"/v1/checkpoint")
	img, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	two := newTestServer(t) // 2 shards
	rr, err := http.Post(two.URL+"/v1/restore", "application/octet-stream",
		bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched restore status %d, want 409: %s", rr.StatusCode, body)
	}
	// The live tracker is untouched by the rejected restore.
	st := decode[statsResponse](t, get(t, two.URL+"/v1/stats"))
	if st.Tracker.Shards != 2 {
		t.Fatalf("rejected restore mutated tracker: shards %d", st.Tracker.Shards)
	}
}
