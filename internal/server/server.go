// Package server exposes a sigstream tracker over HTTP, so non-Go
// producers (log shippers, packet samplers, cron jobs) can feed a stream
// and dashboards can poll the significant-items ranking.
//
// Endpoints (all JSON):
//
//	POST /v1/insert     body: newline-separated item keys (inserted in order)
//	POST /v1/period     close the current period
//	GET  /v1/top?k=N    top-N significant items
//	GET  /v1/query?key=K one item's estimate
//	GET  /v1/stats      tracker statistics
//	GET  /v1/checkpoint download a binary snapshot of the tracker
//	POST /v1/restore    replace the tracker state from a snapshot body
//
// /v1/insert is batched end-to-end: the whole request body is parsed into
// one key batch, the keys are interned under a single lock acquisition, and
// the batch is handed to the tracker's BatchInserter path, so each shard
// lock is taken once per request instead of once per line. Put many keys in
// one request for throughput; a request is still not atomic with respect to
// a concurrent POST /v1/period, which may land between two shards'
// sub-batches.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"sigstream"
)

// Config sizes the served tracker.
type Config struct {
	// MemoryBytes is the tracker's budget (default 1 MiB).
	MemoryBytes int
	// Weights are the significance coefficients (default Balanced).
	Weights sigstream.Weights
	// Shards is the concurrency level (default GOMAXPROCS).
	Shards int
	// DecayFactor optionally ages counts at each period boundary
	// (see sigstream.Config.DecayFactor).
	DecayFactor float64
	// MaxBodyBytes caps an insert request body (default 8 MiB).
	MaxBodyBytes int64
}

// Server is an http.Handler serving one tracker.
type Server struct {
	mux     *http.ServeMux
	tracker *sigstream.Sharded
	cfg     Config

	mu       sync.Mutex // guards keys and counters
	keys     *sigstream.KeyMap
	arrivals uint64
	periods  uint64
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = 1 << 20
	}
	if cfg.Weights == (sigstream.Weights{}) {
		cfg.Weights = sigstream.Balanced
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		mux: http.NewServeMux(),
		tracker: sigstream.NewSharded(sigstream.Config{
			MemoryBytes: cfg.MemoryBytes,
			Weights:     cfg.Weights,
			DecayFactor: cfg.DecayFactor,
		}, cfg.Shards),
		cfg:  cfg,
		keys: sigstream.NewKeyMap(),
	}
	s.mux.HandleFunc("/v1/insert", s.handleInsert)
	s.mux.HandleFunc("/v1/period", s.handlePeriod)
	s.mux.HandleFunc("/v1/top", s.handleTop)
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/v1/restore", s.handleRestore)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// trk returns the live tracker under the lock, so /v1/restore can swap it
// safely while other handlers run.
func (s *Server) trk() *sigstream.Sharded {
	s.mu.Lock()
	t := s.tracker
	s.mu.Unlock()
	return t
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// entryJSON is the wire form of one estimate.
type entryJSON struct {
	Key          string  `json:"key"`
	Item         uint64  `json:"item"`
	Frequency    uint64  `json:"frequency"`
	Persistency  uint64  `json:"persistency"`
	Significance float64 `json:"significance"`
}

type statsJSON struct {
	MemoryBytes int     `json:"memory_bytes"`
	Shards      int     `json:"shards"`
	Arrivals    uint64  `json:"arrivals"`
	Periods     uint64  `json:"periods"`
	Keys        int     `json:"distinct_keys_seen"`
	Alpha       float64 `json:"alpha"`
	Beta        float64 `json:"beta"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	trk := s.trk()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	// Intern the whole request under one lock acquisition, then feed the
	// tracker one batch: each shard lock is taken once per request.
	lines := bytes.Split(body, []byte{'\n'})
	batch := make([]sigstream.Item, 0, len(lines))
	s.mu.Lock()
	for _, line := range lines {
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			continue
		}
		batch = append(batch, s.keys.Intern(string(line)))
	}
	s.mu.Unlock()
	trk.InsertBatch(batch)
	n := uint64(len(batch))
	s.mu.Lock()
	s.arrivals += n
	s.mu.Unlock()
	writeJSON(w, map[string]uint64{"inserted": n})
}

func (s *Server) handlePeriod(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.trk().EndPeriod()
	s.mu.Lock()
	s.periods++
	p := s.periods
	s.mu.Unlock()
	writeJSON(w, map[string]uint64{"periods": p})
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > 1<<20 {
			httpError(w, http.StatusBadRequest, "bad k")
			return
		}
		k = parsed
	}
	entries := s.trk().TopK(k)
	out := make([]entryJSON, len(entries))
	s.mu.Lock()
	for i, e := range entries {
		out[i] = entryJSON{
			Key:          s.keys.Name(e.Item),
			Item:         e.Item,
			Frequency:    e.Frequency,
			Persistency:  e.Persistency,
			Significance: e.Significance,
		}
	}
	s.mu.Unlock()
	writeJSON(w, out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "key required")
		return
	}
	e, ok := s.trk().Query(sigstream.HashKey(key))
	if !ok {
		httpError(w, http.StatusNotFound, "not tracked")
		return
	}
	writeJSON(w, entryJSON{
		Key:          key,
		Item:         e.Item,
		Frequency:    e.Frequency,
		Persistency:  e.Persistency,
		Significance: e.Significance,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	st := statsJSON{
		MemoryBytes: s.tracker.MemoryBytes(),
		Shards:      s.tracker.Shards(),
		Arrivals:    s.arrivals,
		Periods:     s.periods,
		Keys:        s.keys.Len(),
		Alpha:       s.cfg.Weights.Alpha,
		Beta:        s.cfg.Weights.Beta,
	}
	s.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	img, err := s.trk().MarshalBinary()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(img)))
	_, _ = w.Write(img)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	// Restore into a fresh tracker first, then swap, so a bad image leaves
	// the live tracker untouched. Key names are not part of the snapshot;
	// unseen keys render as hex until re-interned.
	fresh := sigstream.NewSharded(sigstream.Config{}, 1)
	if err := fresh.UnmarshalBinary(body); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	s.tracker = fresh
	s.mu.Unlock()
	writeJSON(w, map[string]int{"shards": fresh.Shards()})
}

// handleMetrics exposes the counters in Prometheus text format, so the
// service drops into existing scrape configs.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	arrivals, periods, keys := s.arrivals, s.periods, s.keys.Len()
	mem, shards := s.tracker.MemoryBytes(), s.tracker.Shards()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP sigstream_arrivals_total Stream arrivals ingested.\n")
	fmt.Fprintf(w, "# TYPE sigstream_arrivals_total counter\n")
	fmt.Fprintf(w, "sigstream_arrivals_total %d\n", arrivals)
	fmt.Fprintf(w, "# HELP sigstream_periods_total Periods closed.\n")
	fmt.Fprintf(w, "# TYPE sigstream_periods_total counter\n")
	fmt.Fprintf(w, "sigstream_periods_total %d\n", periods)
	fmt.Fprintf(w, "# HELP sigstream_distinct_keys Distinct keys interned.\n")
	fmt.Fprintf(w, "# TYPE sigstream_distinct_keys gauge\n")
	fmt.Fprintf(w, "sigstream_distinct_keys %d\n", keys)
	fmt.Fprintf(w, "# HELP sigstream_memory_bytes Tracker memory budget.\n")
	fmt.Fprintf(w, "# TYPE sigstream_memory_bytes gauge\n")
	fmt.Fprintf(w, "sigstream_memory_bytes %d\n", mem)
	fmt.Fprintf(w, "# HELP sigstream_shards Tracker shard count.\n")
	fmt.Fprintf(w, "# TYPE sigstream_shards gauge\n")
	fmt.Fprintf(w, "sigstream_shards %d\n", shards)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
