// Package server exposes a sigstream tracker over HTTP, so non-Go
// producers (log shippers, packet samplers, cron jobs) can feed a stream
// and dashboards can poll the significant-items ranking.
//
// Endpoints (all JSON):
//
//	POST /v1/insert     body: newline-separated item keys (inserted in order)
//	POST /v1/period     close the current period
//	GET  /v1/top?k=N    top-N significant items
//	GET  /v1/query?key=K one item's estimate
//	GET  /v1/stats      tracker statistics
//	GET  /v1/checkpoint download a binary snapshot of the tracker
//	POST /v1/restore    replace the tracker state from a snapshot body
//	GET  /metrics       Prometheus text exposition (service + LTC + HTTP series)
//	GET  /healthz       liveness: 200 while the process serves requests
//	GET  /readyz        readiness: 200 when ingest is healthy and no restore is running
//
// Every endpoint is wrapped in obs.HTTPMetrics middleware, so /metrics
// reports per-endpoint request counts, error counts and latency
// histograms alongside the tracker's instrumentation counters.
//
// Fault tolerance: StartSnapshots recovers the newest valid on-disk
// checkpoint at startup and then checkpoints periodically (crash safety);
// the pipelined ingest path self-heals from sink panics and quarantines a
// shard only after exhausting its restart budget (visible on /readyz and
// /metrics); and when the ingest rings back up past Config.ShedHighWater,
// /v1/insert sheds load with 429 + Retry-After instead of stalling every
// handler goroutine on a saturated ring.
//
// /v1/insert is batched end-to-end: the whole request body is parsed into
// one key batch, the keys are interned under a single lock acquisition, and
// the batch is handed to the tracker's BatchInserter path, so each shard
// lock is taken once per request instead of once per line. Put many keys in
// one request for throughput; a request is still not atomic with respect to
// a concurrent POST /v1/period, which may land between two shards'
// sub-batches.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sigstream"
	"sigstream/internal/obs"
	"sigstream/internal/snapshot"
)

// Config sizes the served tracker.
type Config struct {
	// MemoryBytes is the tracker's budget (default 1 MiB).
	MemoryBytes int
	// Weights are the significance coefficients (default Balanced).
	Weights sigstream.Weights
	// Shards is the concurrency level (default GOMAXPROCS).
	Shards int
	// DecayFactor optionally ages counts at each period boundary
	// (see sigstream.Config.DecayFactor).
	DecayFactor float64
	// MaxBodyBytes caps an insert or restore request body (default 32 MiB);
	// an oversized body is refused with 413 before it is buffered whole.
	MaxBodyBytes int64
	// Pipeline routes /v1/insert through an asynchronous sigstream.Pipeline
	// instead of the synchronous batch path: handler goroutines partition and
	// enqueue, per-shard workers apply. Read endpoints and period/checkpoint
	// flush the pipeline first, so responses keep read-your-writes semantics.
	Pipeline bool
	// PipelineRing is the per-shard ring capacity in batches when Pipeline
	// is on (default sigstream's DefaultRingSize).
	PipelineRing int
	// PipelineRestartBudget bounds the pipeline's self-healing: worker
	// restarts tolerated per shard within PipelineRestartWindow before the
	// shard is quarantined (default sigstream's, 3 per minute).
	PipelineRestartBudget int
	// PipelineRestartWindow is the sliding window for PipelineRestartBudget
	// (default one minute).
	PipelineRestartWindow time.Duration
	// ShedHighWater is the load-shed threshold as a fraction of the
	// per-shard ring capacity: once the deepest ingest ring reaches
	// ShedHighWater×capacity, /v1/insert answers 429 with Retry-After
	// instead of queueing more (default 0.9; negative disables shedding;
	// meaningful only with Pipeline, where a saturated ring would otherwise
	// stall every handler goroutine).
	ShedHighWater float64
	// Logger receives pipeline restart/quarantine and snapshot lifecycle
	// events (default slog.Default()).
	Logger *slog.Logger
}

// SnapshotConfig wires crash-safe durability into a Server: where
// checkpoints live, how often they are taken, and how many to keep.
type SnapshotConfig struct {
	// Dir is the snapshot directory (created if missing).
	Dir string
	// Interval is the periodic checkpoint cadence; zero means only the
	// final snapshot on Close.
	Interval time.Duration
	// Retain is how many newest snapshots to keep (default
	// snapshot.DefaultRetain).
	Retain int
}

// Server is an http.Handler serving one tracker.
type Server struct {
	mux     *http.ServeMux
	tracker *sigstream.Sharded
	cfg     Config
	httpm   *obs.HTTPMetrics
	reg     *obs.Registry
	logger  *slog.Logger

	mu       sync.Mutex // guards keys, counters, and the tracker/pipeline pair
	keys     *sigstream.KeyMap
	pipeline *sigstream.Pipeline // nil unless cfg.Pipeline; swapped with the tracker on restore
	arrivals uint64
	periods  uint64

	shedDepth int // ring depth at which /v1/insert sheds; 0 disables

	snapMu sync.Mutex
	snap   *snapshot.Snapshotter // nil until StartSnapshots

	restoring atomic.Bool // startup recovery in progress (/readyz gates on it)
	sheds     atomic.Uint64

	closeOnce sync.Once
	closed    atomic.Bool
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = 1 << 20
	}
	if cfg.Weights == (sigstream.Weights{}) {
		cfg.Weights = sigstream.Balanced
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.ShedHighWater == 0 {
		cfg.ShedHighWater = 0.9
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		mux:    http.NewServeMux(),
		cfg:    cfg,
		keys:   sigstream.NewKeyMap(),
		httpm:  obs.NewHTTPMetrics(),
		reg:    obs.NewRegistry(),
		logger: cfg.Logger,
	}
	s.tracker = s.newTracker()
	if cfg.Pipeline {
		s.pipeline = s.tracker.Pipeline(s.pipelineOptions())
		if cfg.ShedHighWater > 0 {
			s.shedDepth = max(1, int(cfg.ShedHighWater*float64(s.pipeline.RingCapacity())))
		}
	}
	for path, h := range map[string]http.HandlerFunc{
		"/v1/insert":     s.handleInsert,
		"/v1/period":     s.handlePeriod,
		"/v1/top":        s.handleTop,
		"/v1/query":      s.handleQuery,
		"/v1/stats":      s.handleStats,
		"/v1/checkpoint": s.handleCheckpoint,
		"/v1/restore":    s.handleRestore,
		"/healthz":       s.handleHealthz,
		"/readyz":        s.handleReadyz,
	} {
		s.mux.Handle(path, s.httpm.Wrap(path, h))
	}
	s.reg.Register(obs.CollectorFunc(s.collectTracker))
	s.reg.Register(s.httpm)
	s.mux.Handle("/metrics", s.httpm.Wrap("/metrics", s.reg))
	return s
}

// newTracker builds a tracker from the server's configuration; New and
// /v1/restore share it so a restored tracker is validated against the same
// geometry the server was started with.
func (s *Server) newTracker() *sigstream.Sharded {
	return sigstream.NewSharded(sigstream.Config{
		MemoryBytes: s.cfg.MemoryBytes,
		Weights:     s.cfg.Weights,
		DecayFactor: s.cfg.DecayFactor,
	}, s.cfg.Shards)
}

// pipelineOptions builds the pipeline tuning from the server config; New
// and the restore swap share it so a post-restore pipeline keeps the same
// ring depth and restart budget.
func (s *Server) pipelineOptions() sigstream.PipelineOptions {
	return sigstream.PipelineOptions{
		RingSize:      s.cfg.PipelineRing,
		RestartBudget: s.cfg.PipelineRestartBudget,
		RestartWindow: s.cfg.PipelineRestartWindow,
		Logger:        s.logger,
	}
}

// Registry exposes the server's metrics registry so embedding programs can
// register additional collectors into the same /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.reg }

// trk returns the live tracker under the lock, so /v1/restore can swap it
// safely while other handlers run.
func (s *Server) trk() *sigstream.Sharded {
	s.mu.Lock()
	t := s.tracker
	s.mu.Unlock()
	return t
}

// pipe returns the live pipeline (nil when disabled) under the lock.
func (s *Server) pipe() *sigstream.Pipeline {
	s.mu.Lock()
	p := s.pipeline
	s.mu.Unlock()
	return p
}

// barrier flushes the pipeline, if any, so the following read or period
// operation observes every previously accepted insert. A restore may close
// the pipeline concurrently; the resulting ErrClosed only means there is
// nothing left to flush, so it is not surfaced.
func (s *Server) barrier() error {
	p := s.pipe()
	if p == nil {
		return nil
	}
	if err := p.Flush(); err != nil && err != sigstream.ErrPipelineClosed {
		return err
	}
	return nil
}

// StartSnapshots makes the server crash-safe: it recovers the newest
// valid checkpoint from cfg.Dir into the tracker (a fresh or empty
// directory recovers nothing and is not an error), then checkpoints the
// tracker there periodically and once more on Close. While recovery runs,
// /readyz reports 503 so a load balancer holds traffic until the restored
// state is live. Call it once, after New and before serving traffic.
func (s *Server) StartSnapshots(cfg SnapshotConfig) error {
	if cfg.Dir == "" {
		return errors.New("server: snapshot dir required")
	}
	s.restoring.Store(true)
	defer s.restoring.Store(false)
	payload, name, err := snapshot.Recover(cfg.Dir, s.logger)
	if err != nil {
		return err
	}
	if payload != nil {
		if _, err := s.restoreImage(payload); err != nil {
			return fmt.Errorf("server: restore snapshot %s: %w", name, err)
		}
		s.logger.Info("server: recovered snapshot", "file", name)
	}
	snap, err := snapshot.New(s.checkpointImage, snapshot.Options{
		Dir:      cfg.Dir,
		Interval: cfg.Interval,
		Retain:   cfg.Retain,
		Logger:   s.logger,
	})
	if err != nil {
		return err
	}
	s.snapMu.Lock()
	s.snap = snap
	s.snapMu.Unlock()
	snap.Start()
	return nil
}

// snapshotter returns the Snapshotter, or nil before StartSnapshots.
func (s *Server) snapshotter() *snapshot.Snapshotter {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snap
}

// SnapshotNow forces one checkpoint to disk outside the periodic cadence
// and returns the written file name. It fails if StartSnapshots has not
// run.
func (s *Server) SnapshotNow() (string, error) {
	snap := s.snapshotter()
	if snap == nil {
		return "", errors.New("server: snapshots not started")
	}
	return snap.Save()
}

// Close shuts the durability and ingestion paths down: one final snapshot
// (when StartSnapshots ran), then the pipeline drain. The HTTP handlers
// remain usable for reads; in-flight inserts either drain with the
// pipeline or fail with 503, never panic. Close is idempotent and safe
// under concurrent requests — the first call does the work and reports
// any failure, later calls return nil.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		var errs []error
		if snap := s.snapshotter(); snap != nil {
			if cerr := snap.Close(); cerr != nil {
				errs = append(errs, cerr)
			}
		}
		if p := s.pipe(); p != nil {
			if cerr := p.Close(); cerr != nil {
				errs = append(errs, cerr)
			}
		}
		err = errors.Join(errs...)
	})
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// entryJSON is the wire form of one estimate.
type entryJSON struct {
	Key          string  `json:"key"`
	Item         uint64  `json:"item"`
	Frequency    uint64  `json:"frequency"`
	Persistency  uint64  `json:"persistency"`
	Significance float64 `json:"significance"`
}

// statsResponse is the /v1/stats payload: the service-level counters plus
// the tracker's typed sigstream.Stats snapshot. The flat fields mirror the
// pre-StatsReporter payload for existing consumers; new consumers should
// read the structured "tracker" object. The flat fields are filled from
// the same snapshot, not tracked separately — the typed Stats is the
// single source of truth.
type statsResponse struct {
	MemoryBytes int             `json:"memory_bytes"`
	Shards      int             `json:"shards"`
	Arrivals    uint64          `json:"arrivals"`
	Periods     uint64          `json:"periods"`
	Keys        int             `json:"distinct_keys_seen"`
	Alpha       float64         `json:"alpha"`
	Beta        float64         `json:"beta"`
	Tracker     sigstream.Stats `json:"tracker"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Shed before buffering the body: when the ingest rings are already at
	// the high-water mark, accepting this request would stall the handler
	// goroutine on a full ring; a 429 tells well-behaved producers to back
	// off for a beat instead.
	if p := s.pipe(); p != nil && s.shedDepth > 0 && p.Depth() >= s.shedDepth {
		s.sheds.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "ingest queue at high-water mark, retry later")
		return
	}
	trk := s.trk()
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// Intern the whole request under one lock acquisition, then feed the
	// tracker one batch: each shard lock is taken once per request.
	lines := bytes.Split(body, []byte{'\n'})
	batch := make([]sigstream.Item, 0, len(lines))
	s.mu.Lock()
	for _, line := range lines {
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			continue
		}
		batch = append(batch, s.keys.Intern(string(line)))
	}
	s.mu.Unlock()
	if p := s.pipe(); p != nil {
		if err := p.Submit(batch); err != nil {
			httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
			return
		}
	} else {
		trk.InsertBatch(batch)
	}
	n := uint64(len(batch))
	s.mu.Lock()
	s.arrivals += n
	s.mu.Unlock()
	writeJSON(w, map[string]uint64{"inserted": n})
}

func (s *Server) handlePeriod(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// The period boundary must land after every accepted insert.
	if err := s.barrier(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	s.trk().EndPeriod()
	s.mu.Lock()
	s.periods++
	p := s.periods
	s.mu.Unlock()
	writeJSON(w, map[string]uint64{"periods": p})
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > 1<<20 {
			httpError(w, http.StatusBadRequest, "bad k")
			return
		}
		k = parsed
	}
	if err := s.barrier(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	entries := s.trk().TopK(k)
	out := make([]entryJSON, len(entries))
	s.mu.Lock()
	for i, e := range entries {
		out[i] = entryJSON{
			Key:          s.keys.Name(e.Item),
			Item:         e.Item,
			Frequency:    e.Frequency,
			Persistency:  e.Persistency,
			Significance: e.Significance,
		}
	}
	s.mu.Unlock()
	writeJSON(w, out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "key required")
		return
	}
	if err := s.barrier(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	e, ok := s.trk().Query(sigstream.HashKey(key))
	if !ok {
		httpError(w, http.StatusNotFound, "not tracked")
		return
	}
	writeJSON(w, entryJSON{
		Key:          key,
		Item:         e.Item,
		Frequency:    e.Frequency,
		Persistency:  e.Persistency,
		Significance: e.Significance,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if err := s.barrier(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	ts := s.trk().Stats()
	s.mu.Lock()
	st := statsResponse{
		MemoryBytes: ts.MemoryBytes,
		Shards:      ts.Shards,
		Arrivals:    s.arrivals,
		Periods:     s.periods,
		Keys:        s.keys.Len(),
		Alpha:       ts.Alpha,
		Beta:        ts.Beta,
		Tracker:     ts,
	}
	s.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	img, err := s.checkpointImage()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(img)))
	_, _ = w.Write(img)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	fresh, err := s.restoreImage(body)
	if err != nil {
		var ge *geometryError
		if errors.As(err, &ge) {
			httpError(w, http.StatusConflict, ge.Error())
		} else {
			httpError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, map[string]int{"shards": fresh.Shards()})
}

// geometryError reports a checkpoint image whose tracker geometry does not
// match the server's configuration; /v1/restore maps it to 409 (the image
// is well-formed, just for a differently-sized server) rather than 400.
type geometryError struct{ msg string }

func (e *geometryError) Error() string { return e.msg }

// restoreImage validates a checkpoint image and installs it as the live
// tracker, returning the installed tracker. The image is restored into a
// fresh tracker first, then swapped, so a bad image leaves the live
// tracker untouched. The fresh tracker is built from the server's
// configuration and the snapshot must match its geometry: accepting an
// arbitrary image would silently replace the configured shard count,
// memory budget and weights with whatever the snapshot carries. Key names
// are not part of the snapshot; unseen keys render as hex until
// re-interned. Both /v1/restore and StartSnapshots recovery funnel
// through here, so a crash-recovered snapshot passes the same geometry
// gate as an operator-uploaded one.
func (s *Server) restoreImage(body []byte) (*sigstream.Sharded, error) {
	fresh := s.newTracker()
	want := fresh.Stats()
	if err := fresh.UnmarshalBinary(body); err != nil {
		return nil, err
	}
	got := fresh.Stats()
	if got.Shards != want.Shards || got.MemoryBytes != want.MemoryBytes ||
		got.BucketWidth != want.BucketWidth ||
		got.Alpha != want.Alpha || got.Beta != want.Beta {
		return nil, &geometryError{fmt.Sprintf(
			"snapshot geometry (shards=%d mem=%d d=%d α=%g β=%g) does not match server config (shards=%d mem=%d d=%d α=%g β=%g)",
			got.Shards, got.MemoryBytes, got.BucketWidth, got.Alpha, got.Beta,
			want.Shards, want.MemoryBytes, want.BucketWidth, want.Alpha, want.Beta)}
	}
	// Reset the service counters to the snapshot's view of the stream: the
	// tracker-level counters survive the checkpoint round-trip, so the
	// service resumes reporting where the snapshot left off. A pipeline is
	// bound to one tracker, so the old one is retired with the old tracker
	// and a fresh one is started over the restored state; the retired
	// pipeline is drained outside the lock (its items target the replaced
	// tracker, which is being discarded anyway).
	s.mu.Lock()
	old := s.pipeline
	if old != nil {
		s.pipeline = fresh.Pipeline(s.pipelineOptions())
	}
	s.tracker = fresh
	s.arrivals = got.Arrivals
	s.periods = got.Periods
	s.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	return fresh, nil
}

// checkpointImage drains the pipeline and marshals the live tracker: the
// shared source behind GET /v1/checkpoint, the periodic Snapshotter, and
// the final snapshot on Close. The barrier is best-effort — a quarantined
// pipeline still answers flush markers, so a crash-safe snapshot of the
// state applied so far stays possible even after an ingest failure (the
// failure itself is logged and keeps surfacing on /readyz).
func (s *Server) checkpointImage() ([]byte, error) {
	if err := s.barrier(); err != nil {
		s.logger.Warn("server: checkpoint barrier failed; snapshotting applied state",
			"err", err)
	}
	return s.trk().MarshalBinary()
}

// readBody buffers a request body under the configured limit, translating
// an overrun into 413 (the limit is the operator's, not the client's) and
// any other failure into 400. The bool reports whether the caller may
// proceed.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d byte limit", mbe.Limit))
			return nil, false
		}
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return nil, false
	}
	return body, true
}

// handleHealthz is the liveness probe: 200 whenever the process can
// answer HTTP at all, including while degraded — restarting the process
// is the remedy for a hung process, not for a quarantined shard.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 only when the server should
// receive traffic — no startup restore in progress, not shut down, and
// the ingest pipeline not quarantined. A load balancer drains a 503
// instance while /healthz keeps it alive for diagnosis.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if s.restoring.Load() {
		httpError(w, http.StatusServiceUnavailable, "snapshot restore in progress")
		return
	}
	if p := s.pipe(); p != nil {
		if err := p.Err(); err != nil {
			httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
			return
		}
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// collectTracker contributes the service- and tracker-level series to the
// /metrics exposition. The historical five series keep their names; the
// LTC core counters are exported under sigstream_ltc_*.
func (s *Server) collectTracker(w *obs.Writer) {
	ts := s.trk().Stats()
	s.mu.Lock()
	arrivals, periods, keys := s.arrivals, s.periods, s.keys.Len()
	s.mu.Unlock()
	w.Counter("sigstream_arrivals_total", "Stream arrivals ingested.", float64(arrivals))
	w.Counter("sigstream_periods_total", "Periods closed.", float64(periods))
	w.Gauge("sigstream_distinct_keys", "Distinct keys interned.", float64(keys))
	w.Gauge("sigstream_memory_bytes", "Tracker memory budget.", float64(ts.MemoryBytes))
	w.Gauge("sigstream_shards", "Tracker shard count.", float64(ts.Shards))
	w.Gauge("sigstream_ltc_cells", "Total LTC cell capacity.", float64(ts.Cells))
	w.Gauge("sigstream_ltc_occupied_cells", "Occupied LTC cells.", float64(ts.OccupiedCells))
	w.Counter("sigstream_ltc_hits_total",
		"Arrivals that matched a tracked cell.", float64(ts.Hits))
	w.Counter("sigstream_ltc_admissions_total",
		"Items installed into a cell.", float64(ts.Admissions))
	w.Counter("sigstream_ltc_decrements_total",
		"Significance Decrementing operations.", float64(ts.Decrements))
	w.Counter("sigstream_ltc_expulsions_total",
		"Items expelled from the table.", float64(ts.Expulsions))
	w.Counter("sigstream_ltc_flags_consumed_total",
		"Persistency credits granted by the CLOCK sweep.", float64(ts.FlagsConsumed))
	w.Counter("sigstream_ltc_cells_swept_total",
		"Cells passed by the CLOCK sweep pointer.", float64(ts.CellsSwept))
	w.Counter("sigstream_ltc_parity_flips_total",
		"Deviation-Eliminator parity flips.", float64(ts.ParityFlips))
	w.Counter("sigstream_ltc_batches_total",
		"Native-path InsertBatch calls.", float64(ts.Batches))
	w.Counter("sigstream_ltc_batched_items_total",
		"Arrivals ingested via InsertBatch.", float64(ts.BatchedItems))
	if p := s.pipe(); p != nil {
		ps := p.Stats()
		w.Gauge("sigstream_pipeline_shards", "Pipeline shard workers.", float64(ps.Shards))
		w.Gauge("sigstream_pipeline_ring_capacity",
			"Per-shard ring capacity in batches.", float64(ps.RingCapacity))
		for i, d := range ps.RingDepth {
			w.Gauge("sigstream_pipeline_ring_depth",
				"Current ring depth in batches.", float64(d),
				obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		}
		w.Counter("sigstream_pipeline_items_total",
			"Items accepted by the pipeline.", float64(ps.Items))
		w.Counter("sigstream_pipeline_batches_total",
			"Sub-batches enqueued onto rings.", float64(ps.Batches))
		w.Counter("sigstream_pipeline_stalls_total",
			"Ring sends that blocked on a full ring (backpressure).", float64(ps.Stalls))
		w.Counter("sigstream_pipeline_flushes_total",
			"Completed pipeline flush drains.", float64(ps.Flushes))
		w.Counter("sigstream_pipeline_dropped_total",
			"Items discarded after a worker failure.", float64(ps.Dropped))
		w.Counter("sigstream_pipeline_restarts_total",
			"Workers respawned after a recovered sink panic.", float64(ps.Restarts))
		w.Gauge("sigstream_pipeline_quarantined_shards",
			"Shards retired after exhausting the restart budget.",
			float64(ps.QuarantinedShards))
	}
	w.Counter("sigstream_http_shed_total",
		"Inserts refused with 429 at the ring high-water mark.", float64(s.sheds.Load()))
	if snap := s.snapshotter(); snap != nil {
		ss := snap.Stats()
		w.Counter("sigstream_snapshot_saves_total",
			"Snapshots written successfully.", float64(ss.Saves))
		w.Counter("sigstream_snapshot_errors_total",
			"Snapshot attempts that failed.", float64(ss.Errors))
		w.Gauge("sigstream_snapshot_last_seq",
			"Sequence number of the newest snapshot.", float64(ss.LastSeq))
		w.Gauge("sigstream_snapshot_last_bytes",
			"Frame size of the newest snapshot.", float64(ss.LastBytes))
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
