// Package server exposes a sigstream tracker over HTTP, so non-Go
// producers (log shippers, packet samplers, cron jobs) can feed a stream
// and dashboards can poll the significant-items ranking.
//
// Endpoints (all JSON):
//
//	POST /v1/insert     body: newline-separated item keys (inserted in order)
//	POST /v1/period     close the current period
//	GET  /v1/top?k=N    top-N significant items
//	GET  /v1/query?key=K one item's estimate
//	GET  /v1/stats      tracker statistics
//	GET  /v1/checkpoint download a binary snapshot of the tracker
//	POST /v1/restore    replace the tracker state from a snapshot body
//	GET  /metrics       Prometheus text exposition (service + LTC + HTTP series)
//
// Every endpoint is wrapped in obs.HTTPMetrics middleware, so /metrics
// reports per-endpoint request counts, error counts and latency
// histograms alongside the tracker's instrumentation counters.
//
// /v1/insert is batched end-to-end: the whole request body is parsed into
// one key batch, the keys are interned under a single lock acquisition, and
// the batch is handed to the tracker's BatchInserter path, so each shard
// lock is taken once per request instead of once per line. Put many keys in
// one request for throughput; a request is still not atomic with respect to
// a concurrent POST /v1/period, which may land between two shards'
// sub-batches.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"sigstream"
	"sigstream/internal/obs"
)

// Config sizes the served tracker.
type Config struct {
	// MemoryBytes is the tracker's budget (default 1 MiB).
	MemoryBytes int
	// Weights are the significance coefficients (default Balanced).
	Weights sigstream.Weights
	// Shards is the concurrency level (default GOMAXPROCS).
	Shards int
	// DecayFactor optionally ages counts at each period boundary
	// (see sigstream.Config.DecayFactor).
	DecayFactor float64
	// MaxBodyBytes caps an insert request body (default 8 MiB).
	MaxBodyBytes int64
	// Pipeline routes /v1/insert through an asynchronous sigstream.Pipeline
	// instead of the synchronous batch path: handler goroutines partition and
	// enqueue, per-shard workers apply. Read endpoints and period/checkpoint
	// flush the pipeline first, so responses keep read-your-writes semantics.
	Pipeline bool
	// PipelineRing is the per-shard ring capacity in batches when Pipeline
	// is on (default sigstream's DefaultRingSize).
	PipelineRing int
}

// Server is an http.Handler serving one tracker.
type Server struct {
	mux     *http.ServeMux
	tracker *sigstream.Sharded
	cfg     Config
	httpm   *obs.HTTPMetrics
	reg     *obs.Registry

	mu       sync.Mutex // guards keys, counters, and the tracker/pipeline pair
	keys     *sigstream.KeyMap
	pipeline *sigstream.Pipeline // nil unless cfg.Pipeline; swapped with the tracker on restore
	arrivals uint64
	periods  uint64
}

// New builds a Server.
func New(cfg Config) *Server {
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = 1 << 20
	}
	if cfg.Weights == (sigstream.Weights{}) {
		cfg.Weights = sigstream.Balanced
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		mux:   http.NewServeMux(),
		cfg:   cfg,
		keys:  sigstream.NewKeyMap(),
		httpm: obs.NewHTTPMetrics(),
		reg:   obs.NewRegistry(),
	}
	s.tracker = s.newTracker()
	if cfg.Pipeline {
		s.pipeline = s.tracker.Pipeline(sigstream.PipelineOptions{RingSize: cfg.PipelineRing})
	}
	for path, h := range map[string]http.HandlerFunc{
		"/v1/insert":     s.handleInsert,
		"/v1/period":     s.handlePeriod,
		"/v1/top":        s.handleTop,
		"/v1/query":      s.handleQuery,
		"/v1/stats":      s.handleStats,
		"/v1/checkpoint": s.handleCheckpoint,
		"/v1/restore":    s.handleRestore,
	} {
		s.mux.Handle(path, s.httpm.Wrap(path, h))
	}
	s.reg.Register(obs.CollectorFunc(s.collectTracker))
	s.reg.Register(s.httpm)
	s.mux.Handle("/metrics", s.httpm.Wrap("/metrics", s.reg))
	return s
}

// newTracker builds a tracker from the server's configuration; New and
// /v1/restore share it so a restored tracker is validated against the same
// geometry the server was started with.
func (s *Server) newTracker() *sigstream.Sharded {
	return sigstream.NewSharded(sigstream.Config{
		MemoryBytes: s.cfg.MemoryBytes,
		Weights:     s.cfg.Weights,
		DecayFactor: s.cfg.DecayFactor,
	}, s.cfg.Shards)
}

// Registry exposes the server's metrics registry so embedding programs can
// register additional collectors into the same /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.reg }

// trk returns the live tracker under the lock, so /v1/restore can swap it
// safely while other handlers run.
func (s *Server) trk() *sigstream.Sharded {
	s.mu.Lock()
	t := s.tracker
	s.mu.Unlock()
	return t
}

// pipe returns the live pipeline (nil when disabled) under the lock.
func (s *Server) pipe() *sigstream.Pipeline {
	s.mu.Lock()
	p := s.pipeline
	s.mu.Unlock()
	return p
}

// barrier flushes the pipeline, if any, so the following read or period
// operation observes every previously accepted insert. A restore may close
// the pipeline concurrently; the resulting ErrClosed only means there is
// nothing left to flush, so it is not surfaced.
func (s *Server) barrier() error {
	p := s.pipe()
	if p == nil {
		return nil
	}
	if err := p.Flush(); err != nil && err != sigstream.ErrPipelineClosed {
		return err
	}
	return nil
}

// Close releases the pipeline workers, if any. The HTTP handlers remain
// usable (reads still work); it exists so embedding programs can shut the
// ingestion path down cleanly.
func (s *Server) Close() error {
	if p := s.pipe(); p != nil {
		return p.Close()
	}
	return nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// entryJSON is the wire form of one estimate.
type entryJSON struct {
	Key          string  `json:"key"`
	Item         uint64  `json:"item"`
	Frequency    uint64  `json:"frequency"`
	Persistency  uint64  `json:"persistency"`
	Significance float64 `json:"significance"`
}

// statsResponse is the /v1/stats payload: the service-level counters plus
// the tracker's typed sigstream.Stats snapshot. The flat fields mirror the
// pre-StatsReporter payload for existing consumers; new consumers should
// read the structured "tracker" object. The flat fields are filled from
// the same snapshot, not tracked separately — the typed Stats is the
// single source of truth.
type statsResponse struct {
	MemoryBytes int             `json:"memory_bytes"`
	Shards      int             `json:"shards"`
	Arrivals    uint64          `json:"arrivals"`
	Periods     uint64          `json:"periods"`
	Keys        int             `json:"distinct_keys_seen"`
	Alpha       float64         `json:"alpha"`
	Beta        float64         `json:"beta"`
	Tracker     sigstream.Stats `json:"tracker"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	trk := s.trk()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	// Intern the whole request under one lock acquisition, then feed the
	// tracker one batch: each shard lock is taken once per request.
	lines := bytes.Split(body, []byte{'\n'})
	batch := make([]sigstream.Item, 0, len(lines))
	s.mu.Lock()
	for _, line := range lines {
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			continue
		}
		batch = append(batch, s.keys.Intern(string(line)))
	}
	s.mu.Unlock()
	if p := s.pipe(); p != nil {
		if err := p.Submit(batch); err != nil {
			httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
			return
		}
	} else {
		trk.InsertBatch(batch)
	}
	n := uint64(len(batch))
	s.mu.Lock()
	s.arrivals += n
	s.mu.Unlock()
	writeJSON(w, map[string]uint64{"inserted": n})
}

func (s *Server) handlePeriod(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// The period boundary must land after every accepted insert.
	if err := s.barrier(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	s.trk().EndPeriod()
	s.mu.Lock()
	s.periods++
	p := s.periods
	s.mu.Unlock()
	writeJSON(w, map[string]uint64{"periods": p})
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > 1<<20 {
			httpError(w, http.StatusBadRequest, "bad k")
			return
		}
		k = parsed
	}
	if err := s.barrier(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	entries := s.trk().TopK(k)
	out := make([]entryJSON, len(entries))
	s.mu.Lock()
	for i, e := range entries {
		out[i] = entryJSON{
			Key:          s.keys.Name(e.Item),
			Item:         e.Item,
			Frequency:    e.Frequency,
			Persistency:  e.Persistency,
			Significance: e.Significance,
		}
	}
	s.mu.Unlock()
	writeJSON(w, out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "key required")
		return
	}
	if err := s.barrier(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	e, ok := s.trk().Query(sigstream.HashKey(key))
	if !ok {
		httpError(w, http.StatusNotFound, "not tracked")
		return
	}
	writeJSON(w, entryJSON{
		Key:          key,
		Item:         e.Item,
		Frequency:    e.Frequency,
		Persistency:  e.Persistency,
		Significance: e.Significance,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if err := s.barrier(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	ts := s.trk().Stats()
	s.mu.Lock()
	st := statsResponse{
		MemoryBytes: ts.MemoryBytes,
		Shards:      ts.Shards,
		Arrivals:    s.arrivals,
		Periods:     s.periods,
		Keys:        s.keys.Len(),
		Alpha:       ts.Alpha,
		Beta:        ts.Beta,
		Tracker:     ts,
	}
	s.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if err := s.barrier(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	img, err := s.trk().MarshalBinary()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(img)))
	_, _ = w.Write(img)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	// Restore into a fresh tracker first, then swap, so a bad image leaves
	// the live tracker untouched. The fresh tracker is built from the
	// server's configuration and the snapshot must match its geometry:
	// accepting an arbitrary image would silently replace the configured
	// shard count, memory budget and weights with whatever the snapshot
	// carries. Key names are not part of the snapshot; unseen keys render
	// as hex until re-interned.
	fresh := s.newTracker()
	want := fresh.Stats()
	if err := fresh.UnmarshalBinary(body); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	got := fresh.Stats()
	if got.Shards != want.Shards || got.MemoryBytes != want.MemoryBytes ||
		got.BucketWidth != want.BucketWidth ||
		got.Alpha != want.Alpha || got.Beta != want.Beta {
		httpError(w, http.StatusConflict, fmt.Sprintf(
			"snapshot geometry (shards=%d mem=%d d=%d α=%g β=%g) does not match server config (shards=%d mem=%d d=%d α=%g β=%g)",
			got.Shards, got.MemoryBytes, got.BucketWidth, got.Alpha, got.Beta,
			want.Shards, want.MemoryBytes, want.BucketWidth, want.Alpha, want.Beta))
		return
	}
	// Reset the service counters to the snapshot's view of the stream: the
	// tracker-level counters survive the checkpoint round-trip, so the
	// service resumes reporting where the snapshot left off. A pipeline is
	// bound to one tracker, so the old one is retired with the old tracker
	// and a fresh one is started over the restored state; the retired
	// pipeline is drained outside the lock (its items target the replaced
	// tracker, which is being discarded anyway).
	s.mu.Lock()
	old := s.pipeline
	if old != nil {
		s.pipeline = fresh.Pipeline(sigstream.PipelineOptions{RingSize: s.cfg.PipelineRing})
	}
	s.tracker = fresh
	s.arrivals = got.Arrivals
	s.periods = got.Periods
	s.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	writeJSON(w, map[string]int{"shards": fresh.Shards()})
}

// collectTracker contributes the service- and tracker-level series to the
// /metrics exposition. The historical five series keep their names; the
// LTC core counters are exported under sigstream_ltc_*.
func (s *Server) collectTracker(w *obs.Writer) {
	ts := s.trk().Stats()
	s.mu.Lock()
	arrivals, periods, keys := s.arrivals, s.periods, s.keys.Len()
	s.mu.Unlock()
	w.Counter("sigstream_arrivals_total", "Stream arrivals ingested.", float64(arrivals))
	w.Counter("sigstream_periods_total", "Periods closed.", float64(periods))
	w.Gauge("sigstream_distinct_keys", "Distinct keys interned.", float64(keys))
	w.Gauge("sigstream_memory_bytes", "Tracker memory budget.", float64(ts.MemoryBytes))
	w.Gauge("sigstream_shards", "Tracker shard count.", float64(ts.Shards))
	w.Gauge("sigstream_ltc_cells", "Total LTC cell capacity.", float64(ts.Cells))
	w.Gauge("sigstream_ltc_occupied_cells", "Occupied LTC cells.", float64(ts.OccupiedCells))
	w.Counter("sigstream_ltc_hits_total",
		"Arrivals that matched a tracked cell.", float64(ts.Hits))
	w.Counter("sigstream_ltc_admissions_total",
		"Items installed into a cell.", float64(ts.Admissions))
	w.Counter("sigstream_ltc_decrements_total",
		"Significance Decrementing operations.", float64(ts.Decrements))
	w.Counter("sigstream_ltc_expulsions_total",
		"Items expelled from the table.", float64(ts.Expulsions))
	w.Counter("sigstream_ltc_flags_consumed_total",
		"Persistency credits granted by the CLOCK sweep.", float64(ts.FlagsConsumed))
	w.Counter("sigstream_ltc_cells_swept_total",
		"Cells passed by the CLOCK sweep pointer.", float64(ts.CellsSwept))
	w.Counter("sigstream_ltc_parity_flips_total",
		"Deviation-Eliminator parity flips.", float64(ts.ParityFlips))
	w.Counter("sigstream_ltc_batches_total",
		"Native-path InsertBatch calls.", float64(ts.Batches))
	w.Counter("sigstream_ltc_batched_items_total",
		"Arrivals ingested via InsertBatch.", float64(ts.BatchedItems))
	if p := s.pipe(); p != nil {
		ps := p.Stats()
		w.Gauge("sigstream_pipeline_shards", "Pipeline shard workers.", float64(ps.Shards))
		w.Gauge("sigstream_pipeline_ring_capacity",
			"Per-shard ring capacity in batches.", float64(ps.RingCapacity))
		for i, d := range ps.RingDepth {
			w.Gauge("sigstream_pipeline_ring_depth",
				"Current ring depth in batches.", float64(d),
				obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		}
		w.Counter("sigstream_pipeline_items_total",
			"Items accepted by the pipeline.", float64(ps.Items))
		w.Counter("sigstream_pipeline_batches_total",
			"Sub-batches enqueued onto rings.", float64(ps.Batches))
		w.Counter("sigstream_pipeline_stalls_total",
			"Ring sends that blocked on a full ring (backpressure).", float64(ps.Stalls))
		w.Counter("sigstream_pipeline_flushes_total",
			"Completed pipeline flush drains.", float64(ps.Flushes))
		w.Counter("sigstream_pipeline_dropped_total",
			"Items discarded after a worker failure.", float64(ps.Dropped))
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
