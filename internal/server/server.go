// Package server exposes sigstream trackers over HTTP, so non-Go
// producers (log shippers, packet samplers, cron jobs) can feed streams
// and dashboards can poll the significant-items ranking.
//
// The API is tenant-scoped: every tracker lives in a namespace, and the
// /v1/t/{ns}/* routes address one namespace's tracker. The legacy
// un-namespaced /v1/* routes remain as thin aliases for the reserved
// "default" tenant, so pre-namespace deployments keep working unchanged.
//
// Endpoints (all JSON unless noted):
//
//	POST   /v1/t/{ns}/insert     body: newline-separated item keys (tenant auto-created)
//	POST   /v1/t/{ns}/period     close the tenant's current period
//	GET    /v1/t/{ns}/top?k=N    tenant's top-N significant items
//	GET    /v1/t/{ns}/query?key=K one item's estimate
//	GET    /v1/t/{ns}/stats      tenant statistics, snapshot age and recovery state
//	GET    /v1/t/{ns}/checkpoint download a binary snapshot of the tenant's tracker
//	POST   /v1/t/{ns}/restore    replace the tenant's state from a snapshot body
//	DELETE /v1/t/{ns}            delete the tenant and its snapshots
//	GET    /v1/tenants           list tenants with registry totals
//	POST   /v1/tenants           create a tenant: {"namespace": "..."}
//	POST   /v1/insert            legacy alias for /v1/t/default/insert
//	POST   /v1/period            legacy alias for /v1/t/default/period
//	GET    /v1/top               legacy alias for /v1/t/default/top
//	GET    /v1/query             legacy alias for /v1/t/default/query
//	GET    /v1/stats             legacy alias for /v1/t/default/stats
//	GET    /v1/checkpoint        legacy alias for /v1/t/default/checkpoint
//	POST   /v1/restore           legacy alias for /v1/t/default/restore
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness: 200 while the process serves requests
//	GET    /readyz               readiness: 200 when ingest is healthy and no restore is running
//
// Every endpoint is wrapped in obs.HTTPMetrics middleware keyed by route
// pattern (bounded label cardinality), so /metrics reports per-endpoint
// request counts, error counts and latency histograms alongside the
// tracker and tenant-registry series.
//
// Multi-tenancy: tenants are created lazily on first insert, priced
// against a global memory budget, and spilled to tenant-labelled
// snapshot directories when the budget fills or they idle — reviving
// transparently, bit-identical, on the next touch. Per-tenant token
// buckets answer a quota breach with 429 + Retry-After, the same
// contract as the pipeline load-shed gate, so one noisy namespace cannot
// starve another. The default tenant is pinned: always resident, outside
// budget and quota, carrying the exact single-tenant semantics this
// server had before namespaces (including the optional pipelined ingest
// path with self-healing workers and high-water load shedding).
//
// Fault tolerance: StartSnapshots recovers every namespace from disk at
// startup (newest valid checkpoint each; legacy root-level snapshot
// files recover into the default tenant), then checkpoints dirty tenants
// periodically and once more on Close.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sigstream"
	"sigstream/internal/fault"
	"sigstream/internal/ingest"
	"sigstream/internal/obs"
	"sigstream/internal/tenant"
)

// Config sizes the served trackers.
type Config struct {
	// MemoryBytes is the default tenant's tracker budget (default 1 MiB).
	MemoryBytes int
	// Weights are the significance coefficients (default Balanced).
	Weights sigstream.Weights
	// Shards is the concurrency level of every tracker (default
	// GOMAXPROCS).
	Shards int
	// DecayFactor optionally ages counts at each period boundary
	// (see sigstream.Config.DecayFactor).
	DecayFactor float64
	// MaxBodyBytes caps an insert or restore request body (default 32 MiB);
	// an oversized body is refused with 413 before it is buffered whole.
	MaxBodyBytes int64
	// Pipeline routes the default tenant's inserts through an asynchronous
	// sigstream.Pipeline instead of the synchronous batch path: handler
	// goroutines partition and enqueue, per-shard workers apply. Read
	// endpoints and period/checkpoint flush the pipeline first, so
	// responses keep read-your-writes semantics.
	Pipeline bool
	// PipelineRing is the per-shard ring capacity in batches when Pipeline
	// is on (default sigstream's DefaultRingSize).
	PipelineRing int
	// PipelineRestartBudget bounds the pipeline's self-healing: worker
	// restarts tolerated per shard within PipelineRestartWindow before the
	// shard is quarantined (default sigstream's, 3 per minute).
	PipelineRestartBudget int
	// PipelineRestartWindow is the sliding window for PipelineRestartBudget
	// (default one minute).
	PipelineRestartWindow time.Duration
	// ShedHighWater is the load-shed threshold as a fraction of the
	// per-shard ring capacity: once the deepest ingest ring reaches
	// ShedHighWater×capacity, inserts answer 429 with Retry-After
	// instead of queueing more (default 0.9; negative disables shedding;
	// meaningful only with Pipeline, where a saturated ring would otherwise
	// stall every handler goroutine).
	ShedHighWater float64
	// TenantMemoryBytes is each non-default tenant's tracker budget
	// (default MemoryBytes). The global TenantBudgetBytes is spent in
	// units of this size.
	TenantMemoryBytes int
	// TenantBudgetBytes caps the summed tracker budgets of resident
	// non-default tenants; 0 means uncapped. When the cap is hit the
	// least-recently-used tenant spills to disk (with snapshots started)
	// or new tenants are refused with 507 (without).
	TenantBudgetBytes int64
	// TenantQuota is each non-default tenant's sustained insert rate in
	// keys per second; a breach answers 429 + Retry-After. 0 disables
	// quotas.
	TenantQuota float64
	// TenantBurst is the quota token-bucket depth in keys (default:
	// TenantQuota rounded up).
	TenantBurst int
	// TenantIdleAfter spills tenants untouched for this long (0 disables
	// idle spilling; requires StartSnapshots).
	TenantIdleAfter time.Duration
	// TenantMax caps the number of namespaces, resident or not; 0 means
	// uncapped.
	TenantMax int
	// WALDir enables the write-ahead log: every tenant (the default
	// included) logs accepted mutations under WALDir/<namespace>/ and an
	// insert is acknowledged only after its record is fsynced, so a crash
	// — even kill -9 — loses nothing a client was told succeeded. Pair
	// with StartSnapshots for bounded disk: each snapshot truncates the
	// log below its cut. Empty disables the WAL.
	WALDir string
	// WALSyncInterval is the WAL group-commit window: ≤ 0 fsyncs every
	// append inline (maximum durability, one fsync per insert); positive
	// coalesces concurrent inserts into one fsync taken at most this long
	// after the first waiter arrived (higher throughput, same guarantee —
	// the ack still waits for the fsync).
	WALSyncInterval time.Duration
	// WALSegmentBytes is the WAL segment rotation threshold (0 means
	// wal.DefaultSegmentBytes).
	WALSegmentBytes int64
	// Logger receives pipeline restart/quarantine, tenant spill/revive
	// and snapshot lifecycle events (default slog.Default()).
	Logger *slog.Logger
}

// SnapshotConfig wires crash-safe durability into a Server: where
// checkpoints live, how often they are taken, and how many to keep.
// Every tenant persists under its own Dir/<namespace>/ subdirectory.
type SnapshotConfig struct {
	// Dir is the snapshot base directory (created if missing).
	Dir string
	// Interval is the periodic checkpoint cadence for dirty tenants;
	// zero means only the final snapshot on Close.
	Interval time.Duration
	// Retain is how many newest snapshots each tenant keeps (default
	// snapshot.DefaultRetain).
	Retain int
}

// Route is one row of the server's route table: the contract shared by
// the ServeMux registration, the README documentation and the
// route-contract test.
type Route struct {
	// Method is the HTTP method the route accepts.
	Method string
	// Pattern is the ServeMux pattern ({ns} is the namespace wildcard).
	Pattern string
	// Legacy marks the deprecated un-namespaced aliases of default-tenant
	// routes.
	Legacy bool
}

// routeTable is the canonical route list; New panics if any row has no
// registered handler, so the table cannot drift from the mux.
var routeTable = []Route{
	{Method: http.MethodPost, Pattern: "/v1/t/{ns}/insert"},
	{Method: http.MethodPost, Pattern: "/v1/t/{ns}/period"},
	{Method: http.MethodGet, Pattern: "/v1/t/{ns}/top"},
	{Method: http.MethodGet, Pattern: "/v1/t/{ns}/query"},
	{Method: http.MethodGet, Pattern: "/v1/t/{ns}/stats"},
	{Method: http.MethodGet, Pattern: "/v1/t/{ns}/checkpoint"},
	{Method: http.MethodPost, Pattern: "/v1/t/{ns}/restore"},
	{Method: http.MethodDelete, Pattern: "/v1/t/{ns}"},
	{Method: http.MethodGet, Pattern: "/v1/tenants"},
	{Method: http.MethodPost, Pattern: "/v1/tenants"},
	{Method: http.MethodPost, Pattern: "/v1/insert", Legacy: true},
	{Method: http.MethodPost, Pattern: "/v1/period", Legacy: true},
	{Method: http.MethodGet, Pattern: "/v1/top", Legacy: true},
	{Method: http.MethodGet, Pattern: "/v1/query", Legacy: true},
	{Method: http.MethodGet, Pattern: "/v1/stats", Legacy: true},
	{Method: http.MethodGet, Pattern: "/v1/checkpoint", Legacy: true},
	{Method: http.MethodPost, Pattern: "/v1/restore", Legacy: true},
	{Method: http.MethodGet, Pattern: "/metrics"},
	{Method: http.MethodGet, Pattern: "/healthz"},
	{Method: http.MethodGet, Pattern: "/readyz"},
}

// Routes returns the server's full route table, sorted by pattern then
// method. The README's route table documents exactly this set; the
// route-contract test enforces it.
func Routes() []Route {
	out := make([]Route, len(routeTable))
	copy(out, routeTable)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pattern != out[j].Pattern {
			return out[i].Pattern < out[j].Pattern
		}
		return out[i].Method < out[j].Method
	})
	return out
}

// Server is an http.Handler serving a tenant registry of trackers.
type Server struct {
	mux     *http.ServeMux
	cfg     Config
	httpm   *obs.HTTPMetrics
	reg     *obs.Registry
	logger  *slog.Logger
	tenants *tenant.Registry
	def     *tenant.Tenant // the pinned default tenant behind legacy routes

	restoring atomic.Bool // startup recovery in progress (/readyz gates on it)
	sheds     atomic.Uint64
	snapsOn   atomic.Bool // StartSnapshots completed

	ingest *ingest.Server // binary ingest listener (nil before StartIngest)

	closeOnce sync.Once
	closed    atomic.Bool
}

// New builds a Server. It panics only on programming errors (a route
// table row without a handler).
func New(cfg Config) *Server {
	if cfg.MemoryBytes <= 0 {
		cfg.MemoryBytes = 1 << 20
	}
	if cfg.Weights == (sigstream.Weights{}) {
		cfg.Weights = sigstream.Balanced
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.ShedHighWater == 0 {
		cfg.ShedHighWater = 0.9
	}
	if cfg.TenantMemoryBytes <= 0 {
		cfg.TenantMemoryBytes = cfg.MemoryBytes
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		mux:    http.NewServeMux(),
		cfg:    cfg,
		httpm:  obs.NewHTTPMetrics(),
		reg:    obs.NewRegistry(),
		logger: cfg.Logger,
	}
	s.tenants = tenant.NewRegistry(tenant.Config{
		Tracker: sigstream.Config{
			MemoryBytes: cfg.TenantMemoryBytes,
			Weights:     cfg.Weights,
			DecayFactor: cfg.DecayFactor,
		},
		Shards:          cfg.Shards,
		BudgetBytes:     cfg.TenantBudgetBytes,
		MaxTenants:      cfg.TenantMax,
		QuotaPerSec:     cfg.TenantQuota,
		QuotaBurst:      cfg.TenantBurst,
		IdleAfter:       cfg.TenantIdleAfter,
		WALDir:          cfg.WALDir,
		WALSyncInterval: cfg.WALSyncInterval,
		WALSegmentBytes: cfg.WALSegmentBytes,
		Logger:          cfg.Logger,
	})
	def, err := s.tenants.Pin(tenant.DefaultNamespace, tenant.PinOptions{
		Tracker: sigstream.Config{
			MemoryBytes: cfg.MemoryBytes,
			Weights:     cfg.Weights,
			DecayFactor: cfg.DecayFactor,
		},
		Shards:   cfg.Shards,
		Pipeline: cfg.Pipeline,
		PipelineOptions: sigstream.PipelineOptions{
			RingSize:      cfg.PipelineRing,
			RestartBudget: cfg.PipelineRestartBudget,
			RestartWindow: cfg.PipelineRestartWindow,
			Logger:        cfg.Logger,
		},
		ShedHighWater: cfg.ShedHighWater,
	})
	if err != nil {
		panic("server: pin default tenant: " + err.Error())
	}
	s.def = def
	s.registerRoutes()
	s.reg.Register(obs.CollectorFunc(s.collectTracker))
	s.reg.Register(obs.CollectorFunc(s.collectTenants))
	s.reg.Register(s.httpm)
	return s
}

// registerRoutes installs every routeTable row on the mux, one pattern
// per mux entry with method dispatch inside (so a wrong method answers a
// JSON 405 with an Allow header instead of ServeMux's plain-text 405).
func (s *Server) registerRoutes() {
	impl := map[string]http.HandlerFunc{
		"POST /v1/t/{ns}/insert":    s.scoped(true, s.handleInsert),
		"POST /v1/t/{ns}/period":    s.scoped(true, s.handlePeriod),
		"GET /v1/t/{ns}/top":        s.scoped(false, s.handleTop),
		"GET /v1/t/{ns}/query":      s.scoped(false, s.handleQuery),
		"GET /v1/t/{ns}/stats":      s.scoped(false, s.handleStats),
		"GET /v1/t/{ns}/checkpoint": s.scoped(false, s.handleCheckpoint),
		"POST /v1/t/{ns}/restore":   s.scoped(true, s.handleRestore),
		"DELETE /v1/t/{ns}":         s.handleTenantDelete,
		"GET /v1/tenants":           s.handleTenantList,
		"POST /v1/tenants":          s.handleTenantCreate,
		"POST /v1/insert":           s.legacy(s.handleInsert),
		"POST /v1/period":           s.legacy(s.handlePeriod),
		"GET /v1/top":               s.legacy(s.handleTop),
		"GET /v1/query":             s.legacy(s.handleQuery),
		"GET /v1/stats":             s.legacy(s.handleStats),
		"GET /v1/checkpoint":        s.legacy(s.handleCheckpoint),
		"POST /v1/restore":          s.legacy(s.handleRestore),
		"GET /metrics":              s.reg.ServeHTTP,
		"GET /healthz":              s.handleHealthz,
		"GET /readyz":               s.handleReadyz,
	}
	byPattern := make(map[string]map[string]http.HandlerFunc)
	for _, rt := range routeTable {
		h, ok := impl[rt.Method+" "+rt.Pattern]
		if !ok {
			panic("server: route table row without handler: " + rt.Method + " " + rt.Pattern)
		}
		if byPattern[rt.Pattern] == nil {
			byPattern[rt.Pattern] = make(map[string]http.HandlerFunc)
		}
		byPattern[rt.Pattern][rt.Method] = h
	}
	if len(impl) != len(routeTable) {
		panic("server: handler without route table row")
	}
	for pattern, methods := range byPattern {
		s.mux.Handle(pattern, s.httpm.Wrap(pattern, methodDispatch(methods)))
	}
}

// methodDispatch answers with the method's handler, or a JSON 405
// carrying the Allow header.
func methodDispatch(methods map[string]http.HandlerFunc) http.HandlerFunc {
	allowed := make([]string, 0, len(methods))
	for m := range methods {
		allowed = append(allowed, m)
	}
	sort.Strings(allowed)
	allow := strings.Join(allowed, ", ")
	msg := strings.Join(allowed, " or ") + " required"
	return func(w http.ResponseWriter, r *http.Request) {
		if h, ok := methods[r.Method]; ok {
			h(w, r)
			return
		}
		w.Header().Set("Allow", allow)
		httpError(w, http.StatusMethodNotAllowed, msg)
	}
}

// tenantHandlerFunc is a handler bound to one resolved tenant.
type tenantHandlerFunc func(http.ResponseWriter, *http.Request, *tenant.Tenant)

// scoped resolves the {ns} path wildcard into a tenant before the
// handler runs. Write routes (create=true) register unknown namespaces
// on the fly; read routes answer 404 for them.
func (s *Server) scoped(create bool, fn tenantHandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ns := r.PathValue("ns")
		var tn *tenant.Tenant
		var err error
		if create {
			tn, err = s.tenants.GetOrCreate(ns)
		} else {
			tn, err = s.tenants.Get(ns)
		}
		if err != nil {
			s.tenantError(w, err)
			return
		}
		fn(w, r, tn)
	}
}

// legacy binds a tenant-scoped handler to the pinned default tenant, the
// compatibility contract of the un-namespaced /v1/* routes.
func (s *Server) legacy(fn tenantHandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		fn(w, r, s.def)
	}
}

// tenantError maps tenant-package failures onto the HTTP contract:
// quota breach → 429 + Retry-After, geometry mismatch → 409, unknown
// namespace → 404, invalid namespace → 400, exhausted budget or tenant
// limit → 507, everything else (closed registry, quarantined pipeline,
// disk failure) → 503.
func (s *Server) tenantError(w http.ResponseWriter, err error) {
	var qe *tenant.QuotaError
	var ge *tenant.GeometryError
	switch {
	case errors.As(err, &qe):
		secs := int(math.Ceil(qe.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, "insert quota exceeded, retry later")
	case errors.As(err, &ge):
		httpError(w, http.StatusConflict, ge.Error())
	case errors.Is(err, tenant.ErrNotFound):
		httpError(w, http.StatusNotFound, "unknown tenant")
	case errors.Is(err, tenant.ErrBadNamespace):
		httpError(w, http.StatusBadRequest, "invalid namespace")
	case errors.Is(err, tenant.ErrTooManyTenants), errors.Is(err, tenant.ErrBudget):
		httpError(w, http.StatusInsufficientStorage, err.Error())
	default:
		httpError(w, http.StatusServiceUnavailable, err.Error())
	}
}

// Tenants exposes the tenant registry so embedding programs (and tests)
// can reach tenants directly.
func (s *Server) Tenants() *tenant.Registry { return s.tenants }

// Registry exposes the server's metrics registry so embedding programs can
// register additional collectors into the same /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.reg }

// StartSnapshots makes the server crash-safe: it recovers every
// namespace's newest valid checkpoint from cfg.Dir (tenant-labelled
// subdirectories; legacy root-level snapshot files recover into the
// default tenant; a fresh or empty directory recovers nothing and is not
// an error), then checkpoints dirty tenants there periodically and once
// more on Close. While recovery runs, /readyz reports 503 so a load
// balancer holds traffic until the restored state is live. Call it once,
// after New and before serving traffic.
func (s *Server) StartSnapshots(cfg SnapshotConfig) error {
	if cfg.Dir == "" {
		return errors.New("server: snapshot dir required")
	}
	s.restoring.Store(true)
	defer s.restoring.Store(false)
	s.tenants.SetRetain(cfg.Retain)
	if err := s.tenants.AttachDir(cfg.Dir); err != nil {
		return err
	}
	s.tenants.Start(cfg.Interval)
	s.snapsOn.Store(true)
	return nil
}

// IngestConfig configures the framed binary ingest listener (wire
// protocol in internal/ingest).
type IngestConfig struct {
	// Addr is the TCP listen address ("" disables TCP).
	Addr string
	// UDPAddr is the UDP fire-and-forget listen address ("" disables UDP).
	UDPAddr string
	// MaxFrameBytes caps a frame's payload length (1 MiB when zero).
	MaxFrameBytes int
}

// StartIngest opens the binary ingest listener against the server's
// tenant registry and registers its sigstream_ingest_* metrics. Call it
// once, after New — and after StartSnapshots, so recovery finishes
// before the first frame lands. Close drains the listener before the
// tenants shut down, so every acked frame reaches the WAL.
func (s *Server) StartIngest(cfg IngestConfig) error {
	if s.ingest != nil {
		return errors.New("server: ingest already started")
	}
	ing, err := ingest.Start(ingest.Config{
		Addr:          cfg.Addr,
		UDPAddr:       cfg.UDPAddr,
		Registry:      s.tenants,
		MaxFrameBytes: cfg.MaxFrameBytes,
		Logger:        s.logger,
	})
	if err != nil {
		return err
	}
	s.ingest = ing
	s.reg.Register(obs.CollectorFunc(ing.Collect))
	return nil
}

// Ingest exposes the running binary ingest listener so embedding
// programs can read its address and counters; nil before StartIngest.
func (s *Server) Ingest() *ingest.Server { return s.ingest }

// SnapshotNow forces one checkpoint of the default tenant to disk
// outside the periodic cadence — returning the written file name — and
// flushes every other dirty tenant. It fails if StartSnapshots has not
// run.
func (s *Server) SnapshotNow() (string, error) {
	if !s.snapsOn.Load() {
		return "", errors.New("server: snapshots not started")
	}
	name, err := s.def.Save()
	if err != nil {
		return "", err
	}
	if derr := s.tenants.SaveDirty(); derr != nil {
		s.logger.Warn("server: tenant snapshot failed", "err", derr)
	}
	return name, nil
}

// Close shuts the durability and ingestion paths down: one final
// snapshot of every resident tenant (when StartSnapshots ran), then the
// pinned pipeline drain. The HTTP handlers remain usable for reads;
// in-flight inserts either drain with the pipeline or fail with 503,
// never panic. Close is idempotent and safe under concurrent requests —
// the first call does the work and reports any failure, later calls
// return nil.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		// Drain the binary listener first: frames fully received before
		// the close are processed and acked while the tenants (and their
		// WALs) are still up; later frames are never acked.
		if s.ingest != nil {
			if ierr := s.ingest.Close(); ierr != nil {
				s.logger.Warn("server: ingest close failed", "err", ierr)
			}
		}
		err = s.tenants.Close()
	})
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// entryJSON is the wire form of one estimate.
type entryJSON struct {
	Key          string  `json:"key"`
	Item         uint64  `json:"item"`
	Frequency    uint64  `json:"frequency"`
	Persistency  uint64  `json:"persistency"`
	Significance float64 `json:"significance"`
}

// snapshotStatus is the durability section of /v1/stats: residency,
// spill/revive history, snapshot age and the last recovery outcome, so
// operators can see per-tenant spill state at a glance.
type snapshotStatus struct {
	Resident     bool    `json:"resident"`
	Spills       uint64  `json:"spills"`
	Revives      uint64  `json:"revives"`
	Saves        uint64  `json:"saves"`
	Errors       uint64  `json:"errors"`
	LastSaveUnix int64   `json:"last_save_unix"`
	AgeSeconds   float64 `json:"age_seconds"` // -1 when never saved
	LastRecovery string  `json:"last_recovery"`
}

// walStatus is the write-ahead-log section of /v1/stats, present only
// when the tenant has an open log: append/fsync counters (their ratio is
// the group-commit batch factor) and the on-disk footprint, so operators
// can watch durability cost and segment truncation at a glance.
type walStatus struct {
	Appends       uint64 `json:"appends"`
	AppendedBytes uint64 `json:"appended_bytes"`
	Syncs         uint64 `json:"syncs"`
	Rotations     uint64 `json:"rotations"`
	Truncations   uint64 `json:"truncations"`
	Segments      int    `json:"segments"`
	DiskBytes     int64  `json:"disk_bytes"`
}

// statsResponse is the /v1/stats payload: the service-level counters plus
// the tracker's typed sigstream.Stats snapshot and the tenant's
// durability state. The flat fields mirror the pre-StatsReporter payload
// for existing consumers; new consumers should read the structured
// "tracker" and "snapshot" objects. The flat fields are filled from the
// same snapshot, not tracked separately — the typed Stats is the single
// source of truth.
type statsResponse struct {
	Tenant      string          `json:"tenant"`
	MemoryBytes int             `json:"memory_bytes"`
	Shards      int             `json:"shards"`
	Arrivals    uint64          `json:"arrivals"`
	Periods     uint64          `json:"periods"`
	Keys        int             `json:"distinct_keys_seen"`
	Alpha       float64         `json:"alpha"`
	Beta        float64         `json:"beta"`
	Tracker     sigstream.Stats `json:"tracker"`
	Snapshot    snapshotStatus  `json:"snapshot"`
	WAL         *walStatus      `json:"wal,omitempty"`
}

// tenantInfoJSON is one row of the /v1/tenants listing.
type tenantInfoJSON struct {
	Namespace    string `json:"namespace"`
	Pinned       bool   `json:"pinned"`
	Resident     bool   `json:"resident"`
	Arrivals     uint64 `json:"arrivals"`
	Periods      uint64 `json:"periods"`
	Spills       uint64 `json:"spills"`
	Revives      uint64 `json:"revives"`
	QuotaDenials uint64 `json:"quota_denials"`
	Dirty        bool   `json:"dirty"`
	LastSaveUnix int64  `json:"last_save_unix"`
}

// tenantsResponse is the /v1/tenants payload: the per-tenant rows plus
// registry totals.
type tenantsResponse struct {
	Tenants       []tenantInfoJSON `json:"tenants"`
	Count         int              `json:"count"`
	Resident      int              `json:"resident"`
	ResidentBytes int64            `json:"resident_bytes"`
	BudgetBytes   int64            `json:"budget_bytes"`
	CostPerTenant int64            `json:"cost_per_tenant_bytes"`
}

func infoJSON(i tenant.Info) tenantInfoJSON {
	return tenantInfoJSON{
		Namespace:    i.Namespace,
		Pinned:       i.Pinned,
		Resident:     i.Resident,
		Arrivals:     i.Arrivals,
		Periods:      i.Periods,
		Spills:       i.Spills,
		Revives:      i.Revives,
		QuotaDenials: i.QuotaDenials,
		Dirty:        i.Dirty,
		LastSaveUnix: i.LastSaveUnix,
	}
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request, tn *tenant.Tenant) {
	// Shed before buffering the body: when the ingest rings are already at
	// the high-water mark, accepting this request would stall the handler
	// goroutine on a full ring; a 429 tells well-behaved producers to back
	// off for a beat instead.
	if tn.Overloaded() {
		s.sheds.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "ingest queue at high-water mark, retry later")
		return
	}
	// The body buffer and batch slices are pooled: a steady producer
	// stream stops allocating per request, and the parsed key views feed
	// IngestWire without ever materialising per-key strings (names are
	// copied only on an intern miss).
	sc := insertPool.Get().(*insertScratch)
	defer insertPool.Put(sc)
	var ok bool
	sc.body, ok = s.readBodyInto(w, r, sc.body[:0])
	if !ok {
		return
	}
	sc.keys, sc.items = sc.keys[:0], sc.items[:0]
	rest := sc.body
	for len(rest) > 0 {
		line := rest
		if i := bytes.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			rest = nil
		}
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 {
			continue
		}
		sc.keys = append(sc.keys, line)
		sc.items = append(sc.items, sigstream.HashKeyBytes(line))
	}
	n, err := tn.IngestWire(tenant.WireBatch{Keys: sc.keys, Items: sc.items})
	if err != nil {
		s.tenantError(w, err)
		return
	}
	writeJSON(w, map[string]uint64{"inserted": uint64(n)})
}

// insertScratch is the pooled per-request state of handleInsert. keys
// alias body; items carry the pre-hashed arrivals. IngestWire retains
// none of it, so the scratch recycles as soon as the handler returns.
type insertScratch struct {
	body  []byte
	keys  [][]byte
	items []sigstream.Item
}

var insertPool = sync.Pool{New: func() any { return new(insertScratch) }}

func (s *Server) handlePeriod(w http.ResponseWriter, r *http.Request, tn *tenant.Tenant) {
	periods, err := tn.EndPeriod()
	if err != nil {
		s.tenantError(w, err)
		return
	}
	writeJSON(w, map[string]uint64{"periods": periods})
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request, tn *tenant.Tenant) {
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > 1<<20 {
			httpError(w, http.StatusBadRequest, "bad k")
			return
		}
		k = parsed
	}
	entries, err := tn.TopK(k)
	if err != nil {
		s.tenantError(w, err)
		return
	}
	out := make([]entryJSON, len(entries))
	for i, e := range entries {
		out[i] = entryJSON{
			Key:          e.Key,
			Item:         e.Item,
			Frequency:    e.Frequency,
			Persistency:  e.Persistency,
			Significance: e.Significance,
		}
	}
	writeJSON(w, out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, tn *tenant.Tenant) {
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "key required")
		return
	}
	e, ok, err := tn.Query(key)
	if err != nil {
		s.tenantError(w, err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "not tracked")
		return
	}
	writeJSON(w, entryJSON{
		Key:          e.Key,
		Item:         e.Item,
		Frequency:    e.Frequency,
		Persistency:  e.Persistency,
		Significance: e.Significance,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, tn *tenant.Tenant) {
	ts, err := tn.Stats()
	if err != nil {
		s.tenantError(w, err)
		return
	}
	age := float64(-1)
	if ts.LastSaveUnix > 0 {
		age = math.Max(0, time.Since(time.Unix(ts.LastSaveUnix, 0)).Seconds())
	}
	var walst *walStatus
	if ws, ok := tn.WALStats(); ok {
		walst = &walStatus{
			Appends:       ws.Appends,
			AppendedBytes: ws.AppendedBytes,
			Syncs:         ws.Syncs,
			Rotations:     ws.Rotations,
			Truncations:   ws.Truncations,
			Segments:      ws.Segments,
			DiskBytes:     ws.DiskBytes,
		}
	}
	writeJSON(w, statsResponse{
		Tenant:      ts.Namespace,
		MemoryBytes: ts.Tracker.MemoryBytes,
		Shards:      ts.Tracker.Shards,
		Arrivals:    ts.Arrivals,
		Periods:     ts.Periods,
		Keys:        ts.Keys,
		Alpha:       ts.Tracker.Alpha,
		Beta:        ts.Tracker.Beta,
		Tracker:     ts.Tracker,
		Snapshot: snapshotStatus{
			Resident:     ts.Resident,
			Spills:       ts.Spills,
			Revives:      ts.Revives,
			Saves:        ts.Saves,
			Errors:       ts.SaveErrors,
			LastSaveUnix: ts.LastSaveUnix,
			AgeSeconds:   age,
			LastRecovery: ts.LastRecovery,
		},
		WAL: walst,
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, tn *tenant.Tenant) {
	img, err := tn.CheckpointImage()
	if err != nil {
		s.tenantError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(img)))
	if ferr := fault.Inject(fault.CheckpointShip, 0); ferr != nil {
		// Torn shipment: half the image under the full declared length, so
		// the fetching coordinator sees an unexpected EOF mid-transfer —
		// what a site crashing between accept and write looks like.
		_, _ = w.Write(img[:len(img)/2])
		return
	}
	_, _ = w.Write(img)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request, tn *tenant.Tenant) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if err := tn.RestoreImage(body); err != nil {
		var ge *tenant.GeometryError
		if errors.As(err, &ge) {
			s.tenantError(w, err)
			return
		}
		if errors.Is(err, tenant.ErrNotFound) || errors.Is(err, tenant.ErrClosed) ||
			errors.Is(err, tenant.ErrBudget) || errors.Is(err, tenant.ErrTooManyTenants) {
			s.tenantError(w, err)
			return
		}
		// A malformed image is the client's problem, not the server's.
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, err := tn.Stats()
	if err != nil {
		s.tenantError(w, err)
		return
	}
	writeJSON(w, map[string]int{"shards": st.Tracker.Shards})
}

func (s *Server) handleTenantList(w http.ResponseWriter, r *http.Request) {
	infos := s.tenants.List()
	rows := make([]tenantInfoJSON, len(infos))
	for i, info := range infos {
		rows[i] = infoJSON(info)
	}
	st := s.tenants.Stats()
	writeJSON(w, tenantsResponse{
		Tenants:       rows,
		Count:         st.Tenants,
		Resident:      st.Resident,
		ResidentBytes: st.ResidentBytes,
		BudgetBytes:   st.BudgetBytes,
		CostPerTenant: st.CostPerTenant,
	})
}

func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Namespace string `json:"namespace"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Namespace == "" {
		httpError(w, http.StatusBadRequest, `body must be {"namespace": "..."}`)
		return
	}
	tn, err := s.tenants.GetOrCreate(req.Namespace)
	if err != nil {
		s.tenantError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]string{"namespace": tn.Namespace()})
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	if err := s.tenants.Delete(ns); err != nil {
		if errors.Is(err, tenant.ErrPinned) {
			httpError(w, http.StatusConflict, "the default tenant cannot be deleted")
			return
		}
		s.tenantError(w, err)
		return
	}
	writeJSON(w, map[string]string{"deleted": ns})
}

// handleHealthz is the liveness probe: 200 whenever the process can
// answer HTTP at all, including while degraded — restarting the process
// is the remedy for a hung process, not for a quarantined shard.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 only when the server should
// receive traffic — no startup restore in progress, not shut down, and
// the default tenant's ingest pipeline not quarantined. A load balancer
// drains a 503 instance while /healthz keeps it alive for diagnosis.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if s.restoring.Load() {
		httpError(w, http.StatusServiceUnavailable, "snapshot restore in progress")
		return
	}
	if err := s.def.PipelineErr(); err != nil {
		httpError(w, http.StatusServiceUnavailable, "pipeline: "+err.Error())
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// collectTracker contributes the default tenant's service- and
// tracker-level series to the /metrics exposition — the historical
// series keep their names, so pre-namespace dashboards stay correct; the
// LTC core counters are exported under sigstream_ltc_*.
func (s *Server) collectTracker(w *obs.Writer) {
	ts, ok := s.def.TrackerStats()
	if !ok {
		return
	}
	w.Counter("sigstream_arrivals_total", "Stream arrivals ingested.", float64(s.def.Arrivals()))
	w.Counter("sigstream_periods_total", "Periods closed.", float64(s.def.Periods()))
	w.Gauge("sigstream_distinct_keys", "Distinct keys interned.", float64(s.def.KeyCount()))
	w.Gauge("sigstream_memory_bytes", "Tracker memory budget.", float64(ts.MemoryBytes))
	w.Gauge("sigstream_shards", "Tracker shard count.", float64(ts.Shards))
	w.Gauge("sigstream_ltc_cells", "Total LTC cell capacity.", float64(ts.Cells))
	w.Gauge("sigstream_ltc_occupied_cells", "Occupied LTC cells.", float64(ts.OccupiedCells))
	w.Counter("sigstream_ltc_hits_total",
		"Arrivals that matched a tracked cell.", float64(ts.Hits))
	w.Counter("sigstream_ltc_admissions_total",
		"Items installed into a cell.", float64(ts.Admissions))
	w.Counter("sigstream_ltc_decrements_total",
		"Significance Decrementing operations.", float64(ts.Decrements))
	w.Counter("sigstream_ltc_expulsions_total",
		"Items expelled from the table.", float64(ts.Expulsions))
	w.Counter("sigstream_ltc_flags_consumed_total",
		"Persistency credits granted by the CLOCK sweep.", float64(ts.FlagsConsumed))
	w.Counter("sigstream_ltc_cells_swept_total",
		"Cells passed by the CLOCK sweep pointer.", float64(ts.CellsSwept))
	w.Counter("sigstream_ltc_parity_flips_total",
		"Deviation-Eliminator parity flips.", float64(ts.ParityFlips))
	w.Counter("sigstream_ltc_batches_total",
		"Native-path InsertBatch calls.", float64(ts.Batches))
	w.Counter("sigstream_ltc_batched_items_total",
		"Arrivals ingested via InsertBatch.", float64(ts.BatchedItems))
	if ps, ok := s.def.PipelineStats(); ok {
		w.Gauge("sigstream_pipeline_shards", "Pipeline shard workers.", float64(ps.Shards))
		w.Gauge("sigstream_pipeline_ring_capacity",
			"Per-shard ring capacity in batches.", float64(ps.RingCapacity))
		for i, d := range ps.RingDepth {
			w.Gauge("sigstream_pipeline_ring_depth",
				"Current ring depth in batches.", float64(d),
				obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		}
		w.Counter("sigstream_pipeline_items_total",
			"Items accepted by the pipeline.", float64(ps.Items))
		w.Counter("sigstream_pipeline_batches_total",
			"Sub-batches enqueued onto rings.", float64(ps.Batches))
		w.Counter("sigstream_pipeline_stalls_total",
			"Ring sends that blocked on a full ring (backpressure).", float64(ps.Stalls))
		w.Counter("sigstream_pipeline_flushes_total",
			"Completed pipeline flush drains.", float64(ps.Flushes))
		w.Counter("sigstream_pipeline_dropped_total",
			"Items discarded after a worker failure.", float64(ps.Dropped))
		w.Counter("sigstream_pipeline_restarts_total",
			"Workers respawned after a recovered sink panic.", float64(ps.Restarts))
		w.Gauge("sigstream_pipeline_quarantined_shards",
			"Shards retired after exhausting the restart budget.",
			float64(ps.QuarantinedShards))
	}
	w.Counter("sigstream_http_shed_total",
		"Inserts refused with 429 at the ring high-water mark.", float64(s.sheds.Load()))
	if ws, ok := s.def.WALStats(); ok {
		w.Counter("sigstream_wal_appends_total",
			"WAL records appended and fsynced (acknowledged mutations).", float64(ws.Appends))
		w.Counter("sigstream_wal_appended_bytes_total",
			"WAL frame bytes written by acknowledged appends.", float64(ws.AppendedBytes))
		w.Counter("sigstream_wal_syncs_total",
			"WAL fsyncs taken (appends/syncs is the group-commit batch factor).",
			float64(ws.Syncs))
		w.Counter("sigstream_wal_rotations_total",
			"WAL segments sealed by rotation.", float64(ws.Rotations))
		w.Counter("sigstream_wal_truncations_total",
			"WAL segments deleted after a snapshot.", float64(ws.Truncations))
		w.Gauge("sigstream_wal_segments",
			"WAL segment files on disk.", float64(ws.Segments))
		w.Gauge("sigstream_wal_disk_bytes",
			"Total WAL bytes on disk.", float64(ws.DiskBytes))
	}
	if s.snapsOn.Load() {
		saves, errs, lastUnix := s.def.SaveCounters()
		w.Counter("sigstream_snapshot_saves_total",
			"Snapshots written successfully.", float64(saves))
		w.Counter("sigstream_snapshot_errors_total",
			"Snapshot attempts that failed.", float64(errs))
		w.Gauge("sigstream_snapshot_last_unix",
			"Unix time of the newest snapshot.", float64(lastUnix))
	}
}

// collectTenants contributes the tenant-registry series: global
// residency and budget gauges plus per-tenant labeled counters (bounded
// by the tenant count; assembled from atomics, so a scrape never revives
// a spilled tenant).
func (s *Server) collectTenants(w *obs.Writer) {
	st := s.tenants.Stats()
	w.Gauge("sigstream_tenants", "Known namespaces.", float64(st.Tenants))
	w.Gauge("sigstream_tenants_resident", "Tenants resident in memory.", float64(st.Resident))
	w.Gauge("sigstream_tenant_resident_bytes",
		"Summed tracker budgets of resident non-pinned tenants.", float64(st.ResidentBytes))
	w.Gauge("sigstream_tenant_budget_bytes",
		"Global tenant memory budget (0 = uncapped).", float64(st.BudgetBytes))
	w.Gauge("sigstream_tenant_cost_bytes",
		"Priced memory cost of one tenant.", float64(st.CostPerTenant))
	w.Counter("sigstream_tenant_spills_total",
		"Tenant spill (resident to disk) transitions.", float64(st.Spills))
	w.Counter("sigstream_tenant_revives_total",
		"Tenant revive (disk to resident) transitions.", float64(st.Revives))
	w.Counter("sigstream_tenant_quota_denials_total",
		"Ingest batches denied by per-tenant quotas.", float64(st.QuotaDenials))
	w.Counter("sigstream_tenant_saves_total",
		"Tenant snapshots written successfully.", float64(st.Saves))
	w.Counter("sigstream_tenant_save_errors_total",
		"Tenant snapshot attempts that failed.", float64(st.SaveErrors))
	for _, info := range s.tenants.List() {
		lbl := obs.Label{Name: "tenant", Value: info.Namespace}
		w.Counter("sigstream_tenant_arrivals_total",
			"Arrivals ingested per tenant.", float64(info.Arrivals), lbl)
		resident := 0.0
		if info.Resident {
			resident = 1
		}
		w.Gauge("sigstream_tenant_resident",
			"Whether the tenant is resident (1) or spilled (0).", resident, lbl)
	}
}

// readBody buffers a request body under the configured limit, translating
// an overrun into 413 (the limit is the operator's, not the client's) and
// any other failure into 400. The bool reports whether the caller may
// proceed.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	return s.readBodyInto(w, r, nil)
}

// readBodyInto is readBody appending into a caller-owned (typically
// pooled) buffer, so hot handlers reuse one allocation across requests.
func (s *Server) readBodyInto(w http.ResponseWriter, r *http.Request, buf []byte) ([]byte, bool) {
	body, err := appendAll(buf, http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds %d byte limit", mbe.Limit))
			return body, false
		}
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return body, false
	}
	return body, true
}

// appendAll reads r to EOF, appending into dst (io.ReadAll with a
// caller-owned buffer).
func appendAll(dst []byte, r io.Reader) ([]byte, error) {
	if cap(dst) == 0 {
		dst = make([]byte, 0, 4096)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}
