package server

import (
	"net/http"
	"strings"
	"testing"
)

// The README error-table cross-check that used to live here is now the
// contractdrift analyzer's job (siglint), which diffs ErrorCodes against
// the README table in both directions on every lint run.

// TestErrorEnvelopeOnMethodNotAllowed asserts every routeTable pattern
// answers a wrong-method request with the typed envelope and an Allow
// header — ServeMux's plain-text 405 must never leak through.
func TestErrorEnvelopeOnMethodNotAllowed(t *testing.T) {
	srv := newTestServer(t)
	seen := make(map[string]bool)
	for _, rt := range routeTable {
		if seen[rt.Pattern] {
			continue
		}
		seen[rt.Pattern] = true
		path := strings.ReplaceAll(rt.Pattern, "{ns}", "default")
		// PATCH is used by no route, so it is method-not-allowed on every
		// pattern.
		req, err := http.NewRequest(http.MethodPatch, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("PATCH %s: status %d, want 405", path, resp.StatusCode)
			resp.Body.Close()
			continue
		}
		if allow := resp.Header.Get("Allow"); allow == "" {
			t.Errorf("PATCH %s: missing Allow header", path)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("PATCH %s: Content-Type %q, want application/json", path, ct)
		}
		body := decode[ErrorBody](t, resp)
		if body.Code != "method_not_allowed" {
			t.Errorf("PATCH %s: envelope code %q, want method_not_allowed", path, body.Code)
		}
		if body.Message == "" {
			t.Errorf("PATCH %s: empty envelope message", path)
		}
	}
}

// TestErrorEnvelopeOnBadRequests walks the malformed-input paths of the
// API — bad bodies, bad parameters, missing resources, forbidden
// deletes — and asserts each answers the typed envelope with the code
// matching its status.
func TestErrorEnvelopeOnBadRequests(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"tenant create malformed JSON", http.MethodPost, "/v1/tenants", "{not json", http.StatusBadRequest},
		{"tenant create empty namespace", http.MethodPost, "/v1/tenants", `{"namespace":""}`, http.StatusBadRequest},
		{"restore malformed image", http.MethodPost, "/v1/restore", "garbage-image-bytes", http.StatusBadRequest},
		{"top bad k", http.MethodGet, "/v1/top?k=banana", "", http.StatusBadRequest},
		{"query missing key", http.MethodGet, "/v1/query", "", http.StatusBadRequest},
		{"query untracked key", http.MethodGet, "/v1/query?key=never-seen", "", http.StatusNotFound},
		{"top of unknown tenant", http.MethodGet, "/v1/t/nope/top", "", http.StatusNotFound},
		{"delete pinned default", http.MethodDelete, "/v1/t/default", "", http.StatusConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.status)
			}
			body := decode[ErrorBody](t, resp)
			if want := ErrorCode(tc.status); body.Code != want {
				t.Errorf("envelope code %q, want %q", body.Code, want)
			}
			if body.Message == "" {
				t.Error("empty envelope message")
			}
			if body.RetryAfterSeconds != 0 {
				t.Errorf("retry_after_seconds %d on a non-throttle error", body.RetryAfterSeconds)
			}
		})
	}
}
