package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"sigstream"
)

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// newPipelinedServer starts a server with the asynchronous ingestion path
// enabled, plus its synchronous twin for equivalence checks.
func newPipelinedServer(t *testing.T) (piped, sync *httptest.Server, handler *Server) {
	t.Helper()
	cfg := Config{
		MemoryBytes: 64 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 10},
		Shards:      4,
	}
	pcfg := cfg
	pcfg.Pipeline = true
	pcfg.PipelineRing = 8
	handler = New(pcfg)
	piped = httptest.NewServer(handler)
	t.Cleanup(func() { piped.Close(); _ = handler.Close() })
	sync = httptest.NewServer(New(cfg))
	t.Cleanup(sync.Close)
	return piped, sync, handler
}

// TestPipelinedServerMatchesSync drives the same workload through a
// pipelined server and a synchronous one and expects identical responses:
// the flush barrier before every read endpoint must hide the asynchrony.
func TestPipelinedServerMatchesSync(t *testing.T) {
	piped, syncSrv, _ := newPipelinedServer(t)

	var body strings.Builder
	for p := 0; p < 3; p++ {
		body.Reset()
		for i := 0; i < 2000; i++ {
			fmt.Fprintf(&body, "key-%d\n", i%97)
		}
		for _, srv := range []*httptest.Server{piped, syncSrv} {
			post(t, srv.URL+"/v1/insert", body.String()).Body.Close()
			post(t, srv.URL+"/v1/period", "").Body.Close()
		}
	}
	pTop := decode[[]entryJSON](t, get(t, piped.URL+"/v1/top?k=10"))
	sTop := decode[[]entryJSON](t, get(t, syncSrv.URL+"/v1/top?k=10"))
	if len(pTop) != len(sTop) {
		t.Fatalf("top-k sizes differ: piped %d, sync %d", len(pTop), len(sTop))
	}
	for i := range pTop {
		if pTop[i] != sTop[i] {
			t.Fatalf("top-k entry %d differs: piped %+v, sync %+v", i, pTop[i], sTop[i])
		}
	}
	pStats := decode[statsResponse](t, get(t, piped.URL+"/v1/stats"))
	sStats := decode[statsResponse](t, get(t, syncSrv.URL+"/v1/stats"))
	if pStats.Arrivals != sStats.Arrivals || pStats.Periods != sStats.Periods {
		t.Fatalf("service counters differ: piped %+v, sync %+v", pStats, sStats)
	}
	if pStats.Tracker.Arrivals != sStats.Tracker.Arrivals {
		t.Fatalf("tracker arrivals differ: piped %d, sync %d",
			pStats.Tracker.Arrivals, sStats.Tracker.Arrivals)
	}
}

// TestPipelinedServerConcurrentClients checks the pipelined insert path
// under concurrent producers with interleaved reads, and that every
// accepted arrival is visible after the final stats barrier.
func TestPipelinedServerConcurrentClients(t *testing.T) {
	piped, _, _ := newPipelinedServer(t)
	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(piped.URL+"/v1/insert", "text/plain",
					strings.NewReader(fmt.Sprintf("k%d\nk%d\nk%d\n", c, i%7, (c+i)%13)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if i%10 == 0 {
					if r, err := http.Get(piped.URL + "/v1/top?k=5"); err == nil {
						r.Body.Close()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	st := decode[statsResponse](t, get(t, piped.URL+"/v1/stats"))
	want := uint64(clients * perClient * 3)
	if st.Tracker.Arrivals != want {
		t.Fatalf("tracker saw %d arrivals, want %d", st.Tracker.Arrivals, want)
	}
}

// TestPipelinedServerRestoreSwapsPipeline checks /v1/restore retires the
// pipeline bound to the replaced tracker and starts a fresh one: inserts
// after the restore must land in the restored tracker.
func TestPipelinedServerRestoreSwapsPipeline(t *testing.T) {
	piped, _, _ := newPipelinedServer(t)

	post(t, piped.URL+"/v1/insert", "a\nb\nc\n").Body.Close()
	resp := get(t, piped.URL+"/v1/checkpoint")
	img, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	post(t, piped.URL+"/v1/insert", "d\ne\n").Body.Close()

	restore, err := http.Post(piped.URL+"/v1/restore", "application/octet-stream",
		strings.NewReader(string(img)))
	if err != nil {
		t.Fatal(err)
	}
	restore.Body.Close()
	if restore.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", restore.StatusCode)
	}

	post(t, piped.URL+"/v1/insert", "f\ng\nh\nf\n").Body.Close()
	st := decode[statsResponse](t, get(t, piped.URL+"/v1/stats"))
	// 3 from the checkpoint + 4 after the restore; the 2 inserted between
	// checkpoint and restore were discarded with the replaced tracker.
	if st.Tracker.Arrivals != 7 {
		t.Fatalf("tracker saw %d arrivals after restore, want 7", st.Tracker.Arrivals)
	}
}

// TestPipelinedServerMetrics checks the pipeline series appear on /metrics
// only when the pipeline is enabled.
func TestPipelinedServerMetrics(t *testing.T) {
	piped, syncSrv, _ := newPipelinedServer(t)
	post(t, piped.URL+"/v1/insert", "x\ny\n").Body.Close()

	body := func(srv *httptest.Server) string {
		resp := get(t, srv.URL+"/metrics")
		b, err := readAll(resp)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	pm, sm := body(piped), body(syncSrv)
	for _, series := range []string{
		"sigstream_pipeline_shards 4",
		"sigstream_pipeline_items_total 2",
		`sigstream_pipeline_ring_depth{shard="0"}`,
		"sigstream_pipeline_stalls_total",
	} {
		if !strings.Contains(pm, series) {
			t.Errorf("pipelined /metrics missing %q", series)
		}
	}
	if strings.Contains(sm, "sigstream_pipeline_") {
		t.Error("sync /metrics unexpectedly exposes pipeline series")
	}
}

// TestServerCloseStopsIngestion checks Close retires the pipeline: further
// pipelined inserts fail with 503 while reads keep working.
func TestServerCloseStopsIngestion(t *testing.T) {
	piped, _, handler := newPipelinedServer(t)
	post(t, piped.URL+"/v1/insert", "a\n").Body.Close()
	if err := handler.Close(); err != nil {
		t.Fatal(err)
	}
	resp := post(t, piped.URL+"/v1/insert", "b\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("insert after Close: status %d, want 503", resp.StatusCode)
	}
	st := decode[statsResponse](t, get(t, piped.URL+"/v1/stats"))
	if st.Tracker.Arrivals != 1 {
		t.Fatalf("tracker saw %d arrivals, want 1", st.Tracker.Arrivals)
	}
}
