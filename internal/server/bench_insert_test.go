package server

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// BenchmarkInsertHTTP exercises the /v1/insert handler at the ServeHTTP
// level, one 512-key batch per op — the path the request-scratch pool
// (insertPool) serves. Run with -benchmem: the pool's effect is the
// allocs/op column, which no longer scales with body size or key count.
func BenchmarkInsertHTTP(b *testing.B) {
	s := New(Config{MemoryBytes: 64 << 10, Shards: 1, Logger: quietLogger()})
	defer s.Close()
	var sb strings.Builder
	for i := 0; i < 512; i++ {
		sb.WriteString(strconv.FormatUint(uint64(1_000_000+i%5_000), 10))
		sb.WriteByte('\n')
	}
	body := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/insert", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*512/b.Elapsed().Seconds()/1e6, "Mitems/s")
}
