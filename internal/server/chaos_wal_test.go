package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"sigstream"
	"sigstream/internal/fault"
)

// walConfig is the geometry shared by the WAL chaos tests. The pipeline
// stays off so an acknowledged insert is also applied (read-your-writes),
// which lets a test capture the exact pre-crash ranking to compare the
// recovered server against; TestChaosWALPipelinedCrash covers the
// asynchronous combination separately.
func walConfig(base string) Config {
	return Config{
		MemoryBytes: 64 << 10,
		Weights:     sigstream.Weights{Alpha: 1, Beta: 10},
		Shards:      2,
		WALDir:      filepath.Join(base, "wal"),
		Logger:      quietLogger(),
	}
}

// distinctWorkload inserts key-i exactly i+1 times, i descending, so
// every key has a distinct frequency and the top-k order is unambiguous.
func distinctWorkload(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		for c := 0; c <= i; c++ {
			fmt.Fprintf(&b, "key-%d\n", i)
		}
	}
	return b.String()
}

// mustTop fetches and decodes /v1/top for a URL already known to serve.
func mustTop(t *testing.T, base string, k int) []entryJSON {
	t.Helper()
	return decode[[]entryJSON](t, get(t, base+fmt.Sprintf("/v1/top?k=%d", k)))
}

// requireSameRanking asserts two rankings are bit-identical, key names
// included — WAL replay re-interns every key and the snapshot envelope
// carries the keymap, so nothing may degrade to a hex placeholder.
func requireSameRanking(t *testing.T, got, want []entryJSON) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered top-k has %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("recovered entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestChaosWALCrashLosesNothingAcked is the headline WAL guarantee: a
// server takes a snapshot mid-stream, keeps accepting inserts and
// periods past it, then dies without any shutdown. The replacement must
// recover snapshot + WAL tail to a state bit-identical to the moment of
// death — not to the snapshot, which is all plain checkpointing could
// promise.
func TestChaosWALCrashLosesNothingAcked(t *testing.T) {
	base := t.TempDir()
	snap := filepath.Join(base, "snap")

	a := New(walConfig(base))
	if err := a.StartSnapshots(SnapshotConfig{Dir: snap}); err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(a)

	post(t, srvA.URL+"/v1/insert", distinctWorkload(8)).Body.Close()
	post(t, srvA.URL+"/v1/period", "").Body.Close()
	if _, err := a.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// The tail beyond the snapshot: a second period and fresh arrivals,
	// all acknowledged, none checkpointed — only the WAL holds them.
	post(t, srvA.URL+"/v1/insert", distinctWorkload(5)).Body.Close()
	post(t, srvA.URL+"/v1/period", "").Body.Close()
	post(t, srvA.URL+"/v1/insert", "tail-only\ntail-only\n").Body.Close()

	preKill := mustTop(t, srvA.URL, 10)
	preStats := decode[statsResponse](t, get(t, srvA.URL+"/v1/stats"))
	srvA.Close() // kill -9: no a.Close(), no final snapshot

	b := New(walConfig(base))
	if err := b.StartSnapshots(SnapshotConfig{Dir: snap}); err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })
	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)

	requireSameRanking(t, mustTop(t, srvB.URL, 10), preKill)
	gotStats := decode[statsResponse](t, get(t, srvB.URL+"/v1/stats"))
	if gotStats.Arrivals != preStats.Arrivals || gotStats.Periods != preStats.Periods {
		t.Fatalf("recovered counters %d arrivals/%d periods, want %d/%d",
			gotStats.Arrivals, gotStats.Periods, preStats.Arrivals, preStats.Periods)
	}
	if gotStats.Tracker.Arrivals != preStats.Tracker.Arrivals {
		t.Fatalf("recovered tracker arrivals %d, want %d",
			gotStats.Tracker.Arrivals, preStats.Tracker.Arrivals)
	}
}

// TestChaosWALPipelinedCrash runs the same crash with the asynchronous
// ingest pipeline on: the ack still waits for the fsync (durability is
// the WAL's, not the pipeline's), so after the apply side drains, a
// crash must again lose nothing acknowledged.
func TestChaosWALPipelinedCrash(t *testing.T) {
	base := t.TempDir()
	cfg := walConfig(base)
	cfg.Pipeline = true
	cfg.PipelineRing = 8

	a := New(cfg)
	srvA := httptest.NewServer(a)
	post(t, srvA.URL+"/v1/insert", distinctWorkload(6)).Body.Close()

	// The ack precedes the asynchronous apply; poll until the pipeline
	// has drained so the pre-kill ranking is the full accepted prefix.
	wantArrivals := uint64(6 * 7 / 2)
	deadlineStats := func() statsResponse {
		for i := 0; i < 2000; i++ {
			st := decode[statsResponse](t, get(t, srvA.URL+"/v1/stats"))
			if st.Tracker.Arrivals == wantArrivals {
				return st
			}
		}
		t.Fatalf("pipeline never drained to %d arrivals", wantArrivals)
		return statsResponse{}
	}
	preStats := deadlineStats()
	preKill := mustTop(t, srvA.URL, 6)
	srvA.Close() // kill -9, workers abandoned mid-flight

	b := New(cfg)
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })
	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)

	requireSameRanking(t, mustTop(t, srvB.URL, 6), preKill)
	gotStats := decode[statsResponse](t, get(t, srvB.URL+"/v1/stats"))
	if gotStats.Tracker.Arrivals != preStats.Tracker.Arrivals {
		t.Fatalf("recovered %d arrivals, want %d", gotStats.Tracker.Arrivals, preStats.Tracker.Arrivals)
	}
}

// TestChaosWALAppendFault injects a torn append mid-stream: the insert
// must be refused (the client is NOT told it succeeded), the tear must
// be rolled back so it cannot strand later records, and recovery must
// show exactly the acknowledged inserts — the refused batch gone, the
// ones before and after intact.
func TestChaosWALAppendFault(t *testing.T) {
	base := t.TempDir()
	a := New(walConfig(base))
	srvA := httptest.NewServer(a)

	post(t, srvA.URL+"/v1/insert", "stable\nstable\nstable\n").Body.Close()

	deactivate := fault.Activate(fault.WALAppend, func(int) error {
		return fmt.Errorf("injected torn append")
	})
	resp := post(t, srvA.URL+"/v1/insert", "torn\n")
	resp.Body.Close()
	deactivate()
	if resp.StatusCode < 500 {
		t.Fatalf("insert under an append fault: status %d, want a 5xx refusal", resp.StatusCode)
	}

	post(t, srvA.URL+"/v1/insert", "after\nafter\n").Body.Close()
	preKill := mustTop(t, srvA.URL, 5)
	srvA.Close() // crash

	b := New(walConfig(base))
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })
	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)

	got := mustTop(t, srvB.URL, 5)
	requireSameRanking(t, got, preKill)
	for _, e := range got {
		if e.Key == "torn" {
			t.Fatalf("the refused batch replayed: %+v", e)
		}
	}
	st := decode[statsResponse](t, get(t, srvB.URL+"/v1/stats"))
	if st.Tracker.Arrivals != 5 {
		t.Fatalf("recovered %d arrivals, want exactly the 5 acknowledged", st.Tracker.Arrivals)
	}
}

// TestChaosWALSyncFault injects an fsync failure: the insert is refused
// (no ack without durability), but the frame was already written, so an
// in-process restart — which loses no page cache — may legitimately
// replay it. The contract is at-least-once for what was written and
// exactly-once for what was acknowledged: every acked insert must
// survive; the nacked one is allowed to.
func TestChaosWALSyncFault(t *testing.T) {
	base := t.TempDir()
	a := New(walConfig(base))
	srvA := httptest.NewServer(a)

	post(t, srvA.URL+"/v1/insert", "stable\nstable\nstable\n").Body.Close()

	deactivate := fault.Activate(fault.WALSync, func(int) error {
		return fmt.Errorf("injected fsync failure")
	})
	resp := post(t, srvA.URL+"/v1/insert", "unsynced\n")
	resp.Body.Close()
	deactivate()
	if resp.StatusCode < 500 {
		t.Fatalf("insert under a sync fault: status %d, want a 5xx refusal", resp.StatusCode)
	}

	post(t, srvA.URL+"/v1/insert", "after\nafter\n").Body.Close()
	srvA.Close() // crash

	b := New(walConfig(base))
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })
	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)

	byKey := make(map[string]entryJSON)
	for _, e := range mustTop(t, srvB.URL, 5) {
		byKey[e.Key] = e
	}
	if byKey["stable"].Frequency == 0 || byKey["after"].Frequency == 0 {
		t.Fatalf("an acknowledged insert did not survive: %+v", byKey)
	}
	st := decode[statsResponse](t, get(t, srvB.URL+"/v1/stats"))
	if st.Tracker.Arrivals < 5 || st.Tracker.Arrivals > 6 {
		t.Fatalf("recovered %d arrivals, want 5 acked (+ at most the 1 written-but-unsynced)",
			st.Tracker.Arrivals)
	}
}

// TestChaosWALRotateFault fails segment rotation during a snapshot cut:
// the snapshot must fail loudly, serving and ingest must continue, and
// once the fault clears a crash-recovery must still land on the full
// acknowledged stream.
func TestChaosWALRotateFault(t *testing.T) {
	base := t.TempDir()
	snap := filepath.Join(base, "snap")
	a := New(walConfig(base))
	if err := a.StartSnapshots(SnapshotConfig{Dir: snap}); err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(a)

	post(t, srvA.URL+"/v1/insert", distinctWorkload(4)).Body.Close()

	deactivate := fault.Activate(fault.WALRotate, func(int) error {
		return fmt.Errorf("injected rotate failure")
	})
	if _, err := a.SnapshotNow(); err == nil {
		t.Fatal("SnapshotNow succeeded under an injected rotate failure")
	}
	deactivate()

	// Durability degraded for a moment, availability did not.
	resp := post(t, srvA.URL+"/v1/insert", "post-fault\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after the failed snapshot: status %d, want 200", resp.StatusCode)
	}
	preKill := mustTop(t, srvA.URL, 10)
	srvA.Close() // crash

	b := New(walConfig(base))
	if err := b.StartSnapshots(SnapshotConfig{Dir: snap}); err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })
	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)
	requireSameRanking(t, mustTop(t, srvB.URL, 10), preKill)
}

// TestChaosWALPerTenantReplay kills a server holding two tenants with
// divergent streams: recovery must restore each tenant's exact ranking
// from its own log, and reviving one tenant must not disturb the other.
func TestChaosWALPerTenantReplay(t *testing.T) {
	base := t.TempDir()
	a := New(walConfig(base))
	srvA := httptest.NewServer(a)

	post(t, srvA.URL+"/v1/t/alpha/insert", distinctWorkload(6)).Body.Close()
	post(t, srvA.URL+"/v1/t/alpha/period", "").Body.Close()
	post(t, srvA.URL+"/v1/t/alpha/insert", "alpha-tail\n").Body.Close()
	post(t, srvA.URL+"/v1/t/bravo/insert", "b1\nb2\nb2\nb3\nb3\nb3\n").Body.Close()

	preAlpha := decode[[]entryJSON](t, get(t, srvA.URL+"/v1/t/alpha/top?k=7"))
	preBravo := decode[[]entryJSON](t, get(t, srvA.URL+"/v1/t/bravo/top?k=3"))
	srvA.Close() // crash with both tenants live

	b := New(walConfig(base))
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })
	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)

	// Revive bravo first: alpha's later revival must come from alpha's
	// own log, untouched by bravo's replay.
	requireSameRanking(t,
		decode[[]entryJSON](t, get(t, srvB.URL+"/v1/t/bravo/top?k=3")), preBravo)
	requireSameRanking(t,
		decode[[]entryJSON](t, get(t, srvB.URL+"/v1/t/alpha/top?k=7")), preAlpha)
}

// TestChaosWALDiskBounded drives several insert+snapshot cycles over a
// tiny segment size and asserts the log's segment count stays bounded:
// each snapshot's cut truncates the segments it covers (with the
// snapshot retention lag), so the WAL cannot grow without bound.
func TestChaosWALDiskBounded(t *testing.T) {
	base := t.TempDir()
	cfg := walConfig(base)
	cfg.WALSegmentBytes = 512
	a := New(cfg)
	if err := a.StartSnapshots(SnapshotConfig{Dir: filepath.Join(base, "snap")}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(a)
	t.Cleanup(func() { srv.Close(); _ = a.Close() })

	const cycles = 5
	for c := 0; c < cycles; c++ {
		post(t, srv.URL+"/v1/insert", distinctWorkload(12)).Body.Close()
		if _, err := a.SnapshotNow(); err != nil {
			t.Fatal(err)
		}
		st := decode[statsResponse](t, get(t, srv.URL+"/v1/stats"))
		if st.WAL == nil {
			t.Fatal("/v1/stats has no wal block on a WAL-enabled server")
		}
		// One cycle writes a handful of 512-byte segments; truncation lags
		// by the snapshot retention, so the steady state is a few cycles'
		// worth — far below the ~5 cycles of unbounded growth.
		if st.WAL.Segments > 30 {
			t.Fatalf("cycle %d: %d live segments, the WAL is not being truncated", c, st.WAL.Segments)
		}
	}
	st := decode[statsResponse](t, get(t, srv.URL+"/v1/stats"))
	if st.WAL.Truncations == 0 {
		t.Fatal("no segment was ever truncated across 5 snapshot cycles")
	}
	if st.WAL.Rotations < cycles {
		t.Fatalf("%d rotations across %d snapshot cycles, want at least one per cycle",
			st.WAL.Rotations, cycles)
	}
	metrics, err := readAll(get(t, srv.URL+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"sigstream_wal_appends_total",
		"sigstream_wal_truncations_total",
		"sigstream_wal_disk_bytes",
	} {
		if !strings.Contains(string(metrics), series) {
			t.Fatalf("/metrics missing %q:\n%s", series, metrics)
		}
	}
}
