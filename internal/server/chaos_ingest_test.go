package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sigstream/internal/fault"
	"sigstream/internal/ingest"
)

// TestChaosIngestCrashMidBatch is the binary transport's durability
// contract under kill -9: every batch acknowledged over TCP was fsynced
// to the WAL first, so a crash — simulated here by abandoning the server
// without any shutdown and injecting a connection drop mid-batch via the
// ingest/accept fault point — must recover exactly the acked prefix.
// The batch in flight when the "process died" was never acked, so it
// must be absent; per-tenant rankings must come back bit-identical.
func TestChaosIngestCrashMidBatch(t *testing.T) {
	base := t.TempDir()
	a := New(walConfig(base))
	srvA := httptest.NewServer(a)
	if err := a.StartIngest(IngestConfig{Addr: "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	addr := a.Ingest().Addr().String()

	def, err := ingest.Dial(addr, ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	brv, err := ingest.Dial(addr, ingest.Options{Namespace: "bravo"})
	if err != nil {
		t.Fatal(err)
	}

	// The acknowledged prefix: weighted and repeated arrivals, a period
	// boundary, and a second tenant's stream, all over the wire.
	if err := def.InsertWeighted([]string{"key-a", "key-b"}, []uint32{5, 3}); err != nil {
		t.Fatal(err)
	}
	if err := def.Period(); err != nil {
		t.Fatal(err)
	}
	if err := def.Insert("key-a", "key-c", "key-c"); err != nil {
		t.Fatal(err)
	}
	if err := brv.Insert("b1", "b2", "b2", "b3", "b3", "b3"); err != nil {
		t.Fatal(err)
	}

	preDef := mustTop(t, srvA.URL, 5)
	preBravo := decode[[]entryJSON](t, get(t, srvA.URL+"/v1/t/bravo/top?k=3"))
	preStats := decode[statsResponse](t, get(t, srvA.URL+"/v1/stats"))

	// The crash: the fault point fires after the frame is fully received
	// but before the WAL append, dropping the connection without an ack —
	// exactly what a kill -9 between receive and fsync looks like to the
	// client.
	deactivate := fault.Activate(fault.IngestAccept, func(int) error {
		return fmt.Errorf("injected crash before append")
	})
	err = def.Insert("doomed")
	deactivate()
	if err == nil {
		t.Fatal("batch cut down mid-flight was acknowledged")
	}

	srvA.Close() // kill -9: no Close, no drain, no final snapshot

	b := New(walConfig(base))
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })
	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)

	gotDef := mustTop(t, srvB.URL, 5)
	requireSameRanking(t, gotDef, preDef)
	for _, e := range gotDef {
		if e.Key == "doomed" {
			t.Fatalf("unacked batch replayed after crash: %+v", e)
		}
	}
	requireSameRanking(t,
		decode[[]entryJSON](t, get(t, srvB.URL+"/v1/t/bravo/top?k=3")), preBravo)

	gotStats := decode[statsResponse](t, get(t, srvB.URL+"/v1/stats"))
	if gotStats.Arrivals != preStats.Arrivals || gotStats.Periods != preStats.Periods {
		t.Fatalf("recovered %d arrivals/%d periods, want %d/%d",
			gotStats.Arrivals, gotStats.Periods, preStats.Arrivals, preStats.Periods)
	}

	_ = def.Close()
	_ = brv.Close()
}

// TestChaosIngestDrainOnClose checks the graceful half: a server Close
// with a live binary connection drains it — the close completes, the
// acked stream survives into the final snapshot, and the metrics
// registry still answers.
func TestChaosIngestDrainOnClose(t *testing.T) {
	base := t.TempDir()
	a := New(walConfig(base))
	srvA := httptest.NewServer(a)
	if err := a.StartIngest(IngestConfig{Addr: "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	conn, err := ingest.Dial(a.Ingest().Addr().String(), ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Insert("survivor", "survivor"); err != nil {
		t.Fatal(err)
	}
	metrics, err := readAll(get(t, srvA.URL+"/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"sigstream_ingest_connections",
		"sigstream_ingest_frames_total",
		"sigstream_ingest_arrivals_total",
	} {
		if !strings.Contains(string(metrics), series) {
			t.Fatalf("/metrics missing %q after StartIngest", series)
		}
	}
	preKill := mustTop(t, srvA.URL, 2)
	srvA.Close()
	if err := a.Close(); err != nil { // graceful: drains ingest before tenants
		t.Fatalf("Close with a live ingest conn: %v", err)
	}
	_ = conn.Close()

	b := New(walConfig(base))
	srvB := httptest.NewServer(b)
	t.Cleanup(func() { srvB.Close(); _ = b.Close() })
	waitForStatus(t, srvB.URL+"/readyz", http.StatusOK)
	requireSameRanking(t, mustTop(t, srvB.URL, 2), preKill)
}
