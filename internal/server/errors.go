package server

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// ErrorBody is the typed JSON error envelope every /v1 endpoint answers
// with on failure: a stable machine-readable code, a human-readable
// message, and — on throttled responses — the backoff hint mirrored from
// the Retry-After header. Clients branch on Code; Message is for humans
// and may change wording between releases.
type ErrorBody struct {
	// Code is the stable error identifier (see ErrorCodes).
	Code string `json:"code"`
	// Message describes the failure for humans.
	Message string `json:"message"`
	// RetryAfterSeconds is the backoff hint on throttled responses, 0
	// (omitted) otherwise.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// ErrorCodes is the canonical HTTP status → error code table, the
// contract shared by every /v1 error response, the README's error-code
// documentation and the error-envelope contract test. A status outside
// the table answers "internal".
var ErrorCodes = map[int]string{
	http.StatusBadRequest:            "bad_request",
	http.StatusNotFound:              "not_found",
	http.StatusMethodNotAllowed:      "method_not_allowed",
	http.StatusConflict:              "conflict",
	http.StatusRequestEntityTooLarge: "payload_too_large",
	http.StatusTooManyRequests:       "throttled",
	http.StatusInternalServerError:   "internal",
	http.StatusServiceUnavailable:    "unavailable",
	http.StatusInsufficientStorage:   "insufficient_storage",
}

// ErrorCode maps an HTTP status to its stable envelope code, "internal"
// for statuses outside the table.
func ErrorCode(status int) string {
	if code, ok := ErrorCodes[status]; ok {
		return code
	}
	return "internal"
}

// httpError writes the typed error envelope for one failing request. The
// envelope's retry_after_seconds mirrors a Retry-After header already set
// on w (throttle paths set it before calling), so the JSON body and the
// header can never disagree.
func httpError(w http.ResponseWriter, status int, msg string) {
	body := ErrorBody{Code: ErrorCode(status), Message: msg}
	if v := w.Header().Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			body.RetryAfterSeconds = secs
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a flat struct of strings and ints cannot fail; a broken
	// connection mid-write has no remedy here either way.
	_ = json.NewEncoder(w).Encode(body)
}
