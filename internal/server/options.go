package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"reflect"
	"strings"
	"time"

	"sigstream"
)

// Duration is a time.Duration that speaks both JSON and the flag
// package: it unmarshals from a Go duration string ("30s", "1m30s") or
// a bare number of nanoseconds, marshals back to the string form, and
// implements flag.Value so the same field backs a -flag and a config
// key without conversion.
type Duration time.Duration

// String renders the duration in time.Duration notation ("30s"); it is
// also the default shown by -help for flags bound to a Duration.
func (d Duration) String() string { return time.Duration(d).String() }

// Set implements flag.Value, parsing time.Duration notation.
func (d *Duration) Set(s string) error {
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON renders the duration as a string ("30s"), the same form
// UnmarshalJSON and the command line accept.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON accepts a duration string ("30s") or a bare number of
// nanoseconds (the encoding a raw time.Duration would have used).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		return d.Set(s)
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err == nil {
		*d = Duration(ns)
		return nil
	}
	return fmt.Errorf("duration must be a string like %q or nanoseconds, got %s", "30s", b)
}

// Options is the complete serving configuration of cmd/sigserver: one
// field per command-line flag, with JSON tags matching the flag names
// (dashes as underscores) so the same struct loads from a -config file.
// Zero values mean the same thing they mean on the command line —
// usually "use the built-in default" — and DefaultOptions supplies the
// non-zero flag defaults (listen address, timeouts, log level).
type Options struct {
	// Addr is the listen address (flag -addr).
	Addr string `json:"addr"`
	// MemoryBytes is the default tenant's tracker memory budget (-mem).
	MemoryBytes int `json:"mem"`
	// Alpha is the frequency weight α (-alpha).
	Alpha float64 `json:"alpha"`
	// Beta is the persistency weight β (-beta).
	Beta float64 `json:"beta"`
	// Shards is the tracker shard count, 0 = GOMAXPROCS (-shards).
	Shards int `json:"shards"`
	// Decay is the per-period decay factor λ ∈ (0,1), 0 = all-history
	// (-decay).
	Decay float64 `json:"decay"`
	// Slow is the slow-request log threshold, 0 disables (-slow).
	Slow Duration `json:"slow"`
	// LogLevel is debug, info, warn or error (-log-level).
	LogLevel string `json:"log_level"`
	// Pprof mounts /debug/pprof when true (-pprof).
	Pprof bool `json:"pprof"`
	// Pipeline routes ingest through the asynchronous sharded pipeline
	// (-pipeline).
	Pipeline bool `json:"pipeline"`
	// PipelineRing is the per-shard ring capacity in batches, 0 =
	// default (-pipeline-ring).
	PipelineRing int `json:"pipeline_ring"`
	// SnapshotDir enables crash-safe checkpoints; empty disables
	// (-snapshot-dir).
	SnapshotDir string `json:"snapshot_dir"`
	// SnapshotInterval is the periodic checkpoint cadence, 0 = only the
	// final snapshot on shutdown (-snapshot-interval).
	SnapshotInterval Duration `json:"snapshot_interval"`
	// SnapshotRetain is how many snapshots to keep, 0 = default
	// (-snapshot-retain).
	SnapshotRetain int `json:"snapshot_retain"`
	// TenantMem is the per-tenant tracker budget in bytes, 0 = same as
	// MemoryBytes (-tenant-mem).
	TenantMem int `json:"tenant_mem"`
	// TenantBudget caps total resident tenant memory in bytes, 0 =
	// unlimited (-tenant-budget).
	TenantBudget int64 `json:"tenant_budget"`
	// TenantQuota is the per-tenant sustained ingest quota in keys/sec,
	// 0 = unlimited (-tenant-quota).
	TenantQuota float64 `json:"tenant_quota"`
	// TenantBurst is the per-tenant ingest burst in keys, 0 =
	// quota-derived default (-tenant-burst).
	TenantBurst int `json:"tenant_burst"`
	// TenantIdle spills tenants idle this long, 0 = never (-tenant-idle).
	TenantIdle Duration `json:"tenant_idle"`
	// TenantMax bounds the number of namespaces, 0 = unlimited
	// (-tenant-max).
	TenantMax int `json:"tenant_max"`
	// WALDir enables the per-tenant write-ahead log; empty disables
	// (-wal-dir).
	WALDir string `json:"wal_dir"`
	// WALSync is the WAL group-commit window; ≤ 0 fsyncs every append
	// inline (-wal-sync).
	WALSync Duration `json:"wal_sync"`
	// WALSegment is the WAL segment rotation threshold in bytes, 0 =
	// default (-wal-segment).
	WALSegment int64 `json:"wal_segment"`
	// IngestAddr is the framed binary ingest TCP listen address; empty
	// disables the listener (-ingest-addr).
	IngestAddr string `json:"ingest_addr"`
	// IngestUDP is the UDP fire-and-forget ingest listen address; empty
	// disables it (-ingest-udp).
	IngestUDP string `json:"ingest_udp"`
	// IngestMaxFrame caps a binary ingest frame's payload in bytes, 0 =
	// default 1 MiB (-ingest-max-frame).
	IngestMaxFrame int `json:"ingest_max_frame"`
	// MaxBody caps request bodies in bytes, 0 = default 32 MiB
	// (-max-body).
	MaxBody int64 `json:"max_body"`
	// ReadTimeout is the per-connection read deadline, 0 disables
	// (-read-timeout).
	ReadTimeout Duration `json:"read_timeout"`
	// WriteTimeout is the per-connection write deadline, 0 disables
	// (-write-timeout).
	WriteTimeout Duration `json:"write_timeout"`
	// ShedHighWater is the load-shed threshold as a fraction of ring
	// capacity: 0 = default 0.9, negative disables (-shed-highwater).
	ShedHighWater float64 `json:"shed_highwater"`
	// RestartBudget is pipeline worker restarts tolerated per shard per
	// minute before quarantine, 0 = default (-restart-budget).
	RestartBudget int `json:"restart_budget"`
	// DrainTimeout is the graceful-shutdown deadline for in-flight
	// requests (-drain-timeout).
	DrainTimeout Duration `json:"drain_timeout"`
}

// DefaultOptions returns the flag defaults of cmd/sigserver: the
// configuration the server runs with when no flag and no config file
// says otherwise.
func DefaultOptions() Options {
	return Options{
		Addr:             ":8080",
		MemoryBytes:      1 << 20,
		Alpha:            1,
		Beta:             1,
		Slow:             Duration(time.Second),
		LogLevel:         "info",
		SnapshotInterval: Duration(time.Minute),
		ReadTimeout:      Duration(30 * time.Second),
		WriteTimeout:     Duration(30 * time.Second),
		DrainTimeout:     Duration(10 * time.Second),
	}
}

// LoadOptions reads a JSON config file into Options. Decoding starts
// from DefaultOptions, so a sparse file overrides only the keys it
// names; unknown keys are an error (a typoed key silently ignored is a
// production incident waiting to happen). The result is not validated —
// callers overlay flags first, then call Validate.
func LoadOptions(path string) (Options, error) {
	opts := DefaultOptions()
	data, err := os.ReadFile(path)
	if err != nil {
		return opts, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opts); err != nil {
		return opts, fmt.Errorf("config %s: %w", path, err)
	}
	return opts, nil
}

// ApplyFlag copies the field bound to the named command-line flag from
// `from` into o — the flags-beat-file half of sigserver's precedence:
// after LoadOptions, main re-applies every explicitly set flag field by
// field. A flag name maps to the field whose JSON tag is the name with
// dashes as underscores (the documented correspondence), so a new
// Options field is covered the moment it gets its tag — there is no
// second list to keep in sync. Unknown names (such as -config itself,
// which has no Options field) return false and change nothing.
func (o *Options) ApplyFlag(name string, from Options) bool {
	key := strings.ReplaceAll(name, "-", "_")
	rv := reflect.ValueOf(o).Elem()
	rt := rv.Type()
	for i := 0; i < rt.NumField(); i++ {
		tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
		if tag == key && tag != "" {
			rv.Field(i).Set(reflect.ValueOf(from).Field(i))
			return true
		}
	}
	return false
}

// withDefaults fills the fields whose zero value has no serving meaning
// (address, log level, drain deadline) from DefaultOptions, so an
// Options built programmatically from a struct literal behaves like a
// bare command line rather than binding to ":" at level parse failure.
func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.Addr == "" {
		o.Addr = def.Addr
	}
	if o.LogLevel == "" {
		o.LogLevel = def.LogLevel
	}
	if o.MemoryBytes == 0 {
		o.MemoryBytes = def.MemoryBytes
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = def.DrainTimeout
	}
	return o
}

// Validate rejects configurations the server would either refuse at
// runtime or silently serve wrong: a non-positive memory budget,
// negative weights or timeouts, a decay outside [0,1), an unparsable
// log level. It returns the first problem found.
func (o Options) Validate() error {
	if o.MemoryBytes <= 0 {
		return fmt.Errorf("mem must be positive, got %d", o.MemoryBytes)
	}
	if o.Alpha < 0 || o.Beta < 0 {
		return fmt.Errorf("alpha and beta must be non-negative, got %g and %g", o.Alpha, o.Beta)
	}
	if o.Decay < 0 || o.Decay >= 1 {
		return fmt.Errorf("decay must be in [0,1), got %g", o.Decay)
	}
	if o.Shards < 0 {
		return fmt.Errorf("shards must be non-negative, got %d", o.Shards)
	}
	if _, err := o.Level(); err != nil {
		return fmt.Errorf("bad log_level %q: %w", o.LogLevel, err)
	}
	if o.PipelineRing < 0 || o.RestartBudget < 0 {
		return fmt.Errorf("pipeline_ring and restart_budget must be non-negative")
	}
	if o.SnapshotRetain < 0 {
		return fmt.Errorf("snapshot_retain must be non-negative, got %d", o.SnapshotRetain)
	}
	if o.TenantMem < 0 || o.TenantBudget < 0 || o.TenantQuota < 0 || o.TenantBurst < 0 || o.TenantMax < 0 {
		return fmt.Errorf("tenant limits must be non-negative")
	}
	if o.WALSegment < 0 {
		return fmt.Errorf("wal_segment must be non-negative, got %d", o.WALSegment)
	}
	if o.MaxBody < 0 {
		return fmt.Errorf("max_body must be non-negative, got %d", o.MaxBody)
	}
	if o.IngestMaxFrame < 0 {
		return fmt.Errorf("ingest_max_frame must be non-negative, got %d", o.IngestMaxFrame)
	}
	for _, d := range []struct {
		name string
		v    Duration
	}{
		{"slow", o.Slow},
		{"snapshot_interval", o.SnapshotInterval},
		{"tenant_idle", o.TenantIdle},
		{"read_timeout", o.ReadTimeout},
		{"write_timeout", o.WriteTimeout},
		{"drain_timeout", o.DrainTimeout},
	} {
		if d.v < 0 {
			return fmt.Errorf("%s must be non-negative, got %s", d.name, d.v)
		}
	}
	return nil
}

// Level parses the configured log level.
func (o Options) Level() (slog.Level, error) {
	var level slog.Level
	err := level.UnmarshalText([]byte(o.LogLevel))
	return level, err
}

// ServerConfig translates the resolved Options into the Config consumed
// by New. The logger is passed in because it is built from Options.Level
// by the caller, which also hands it to the request-logging middleware.
func (o Options) ServerConfig(logger *slog.Logger) Config {
	o = o.withDefaults()
	return Config{
		MemoryBytes:           o.MemoryBytes,
		Weights:               sigstream.Weights{Alpha: o.Alpha, Beta: o.Beta},
		Shards:                o.Shards,
		DecayFactor:           o.Decay,
		TenantMemoryBytes:     o.TenantMem,
		TenantBudgetBytes:     o.TenantBudget,
		TenantQuota:           o.TenantQuota,
		TenantBurst:           o.TenantBurst,
		TenantIdleAfter:       time.Duration(o.TenantIdle),
		TenantMax:             o.TenantMax,
		WALDir:                o.WALDir,
		WALSyncInterval:       time.Duration(o.WALSync),
		WALSegmentBytes:       o.WALSegment,
		MaxBodyBytes:          o.MaxBody,
		Pipeline:              o.Pipeline,
		PipelineRing:          o.PipelineRing,
		PipelineRestartBudget: o.RestartBudget,
		ShedHighWater:         o.ShedHighWater,
		Logger:                logger,
	}
}

// IngestOptions translates the resolved Options into the binary ingest
// listener configuration for StartIngest; meaningful only when
// IngestAddr or IngestUDP is non-empty.
func (o Options) IngestOptions() IngestConfig {
	return IngestConfig{
		Addr:          o.IngestAddr,
		UDPAddr:       o.IngestUDP,
		MaxFrameBytes: o.IngestMaxFrame,
	}
}

// SnapshotOptions translates the resolved Options into the checkpoint
// configuration for StartSnapshots; meaningful only when SnapshotDir is
// non-empty.
func (o Options) SnapshotOptions() SnapshotConfig {
	return SnapshotConfig{
		Dir:      o.SnapshotDir,
		Interval: time.Duration(o.SnapshotInterval),
		Retain:   o.SnapshotRetain,
	}
}
