package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"sigstream"
)

// newTenantServer serves a multi-tenant configuration: small per-tenant
// trackers, a tight global budget, a snapshot dir for spilling, and a
// per-tenant quota.
func newTenantServer(t *testing.T, mutate func(*Config)) (*httptest.Server, *Server, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		MemoryBytes:       64 << 10,
		Weights:           sigstream.Weights{Alpha: 1, Beta: 10},
		Shards:            2,
		TenantMemoryBytes: 16 << 10,
		Logger:            quietLogger(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := New(cfg)
	if err := s.StartSnapshots(SnapshotConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return srv, s, dir
}

func TestTenantScopedRoutes(t *testing.T) {
	srv, _, _ := newTenantServer(t, nil)

	// Insert auto-creates; tenants are isolated.
	resp := post(t, srv.URL+"/v1/t/red/insert", "a\na\nb\n")
	if out := decode[map[string]uint64](t, resp); out["inserted"] != 3 {
		t.Fatalf("inserted = %v", out)
	}
	post(t, srv.URL+"/v1/t/red/period", "").Body.Close()
	post(t, srv.URL+"/v1/t/blue/insert", "z\n").Body.Close()

	resp = get(t, srv.URL+"/v1/t/red/query?key=a")
	if e := decode[map[string]any](t, resp); e["frequency"].(float64) != 2 {
		t.Fatalf("red a: %v", e)
	}
	resp = get(t, srv.URL+"/v1/t/blue/query?key=a")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("blue sees red's key: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Stats carry the tenant label and the snapshot section.
	resp = get(t, srv.URL+"/v1/t/red/stats")
	st := decode[statsResponse](t, resp)
	if st.Tenant != "red" || st.Arrivals != 3 || st.Periods != 1 {
		t.Fatalf("red stats: %+v", st)
	}
	if !st.Snapshot.Resident || st.Snapshot.AgeSeconds != -1 || st.Snapshot.LastRecovery != "fresh" {
		t.Fatalf("red snapshot section: %+v", st.Snapshot)
	}

	// Unknown tenants 404 on reads, invalid namespaces 400 everywhere.
	resp = get(t, srv.URL+"/v1/t/ghost/top")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost top: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = post(t, srv.URL+"/v1/t/Bad.NS/insert", "x\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid namespace: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Listing and delete.
	resp = get(t, srv.URL+"/v1/tenants")
	list := decode[tenantsResponse](t, resp)
	if list.Count != 3 { // default, red, blue
		t.Fatalf("tenant count %d: %+v", list.Count, list)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/t/blue", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete blue: %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/v1/t/default", nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("delete default: %d", dresp.StatusCode)
	}
	dresp.Body.Close()

	// Explicit create.
	resp = post(t, srv.URL+"/v1/tenants", `{"namespace":"green"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create green: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Legacy routes hit the same state as /v1/t/default/*.
	post(t, srv.URL+"/v1/insert", "k\n").Body.Close()
	resp = get(t, srv.URL+"/v1/t/default/query?key=k")
	if e := decode[map[string]any](t, resp); e["frequency"].(float64) != 1 {
		t.Fatalf("default via scoped route: %v", e)
	}
}

// TestTenantQuotaShed is the quota acceptance test: a noisy tenant's
// breach answers 429 + Retry-After without affecting another tenant.
func TestTenantQuotaShed(t *testing.T) {
	srv, _, _ := newTenantServer(t, func(c *Config) {
		c.TenantQuota = 10
		c.TenantBurst = 5
	})

	// The first batch fits the burst; the second exceeds it.
	post(t, srv.URL+"/v1/t/noisy/insert", "a\nb\nc\nd\ne\n").Body.Close()
	resp := post(t, srv.URL+"/v1/t/noisy/insert", "f\ng\nh\n")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota breach status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q", resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	// The victim tenant is untouched by the noisy tenant's denial.
	resp = post(t, srv.URL+"/v1/t/victim/insert", "v\nv\n")
	if out := decode[map[string]uint64](t, resp); out["inserted"] != 2 {
		t.Fatalf("victim inserted = %v", out)
	}

	// The default tenant is quota-exempt.
	resp = post(t, srv.URL+"/v1/insert", strings.Repeat("d\n", 50))
	if out := decode[map[string]uint64](t, resp); out["inserted"] != 50 {
		t.Fatalf("default inserted = %v", out)
	}
}

// TestTenantBudgetSpillServes is the budget acceptance test: a global
// budget far smaller than tenants×cost keeps every tenant serveable —
// cold ones spill to disk and revive on touch with identical rankings.
func TestTenantBudgetSpillServes(t *testing.T) {
	const tenants = 100
	srv, s, _ := newTenantServer(t, func(c *Config) {
		// Budget for ~8 resident tenants out of 100.
		c.TenantBudgetBytes = 8 * (64 << 10)
		c.TenantMemoryBytes = 16 << 10
	})
	budget := s.Tenants().Stats().BudgetBytes
	if capacity := budget / s.Tenants().CostPerTenant(); capacity >= tenants {
		t.Fatalf("budget admits %d tenants, want < %d so spilling happens", capacity, tenants)
	}

	want := make(map[string][]entryJSON, tenants)
	for i := 0; i < tenants; i++ {
		ns := fmt.Sprintf("team-%03d", i)
		body := fmt.Sprintf("item-%d\nitem-%d\nother-%d\n", i, i, i)
		post(t, srv.URL+"/v1/t/"+ns+"/insert", body).Body.Close()
		post(t, srv.URL+"/v1/t/"+ns+"/period", "").Body.Close()
		resp := get(t, srv.URL+"/v1/t/"+ns+"/top?k=5")
		want[ns] = decode[[]entryJSON](t, resp)
		if len(want[ns]) != 2 {
			t.Fatalf("%s top = %+v", ns, want[ns])
		}
	}
	st := s.Tenants().Stats()
	if st.Tenants != tenants+1 {
		t.Fatalf("registry has %d tenants, want %d", st.Tenants, tenants+1)
	}
	if st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("resident %d bytes exceeds budget %d", st.ResidentBytes, st.BudgetBytes)
	}
	if st.Spills == 0 {
		t.Fatal("no tenant ever spilled under a tight budget")
	}
	// Every tenant — most of them spilled by now — still serves its exact
	// pre-spill ranking.
	for ns, entries := range want {
		resp := get(t, srv.URL+"/v1/t/"+ns+"/top?k=5")
		got := decode[[]entryJSON](t, resp)
		if !reflect.DeepEqual(got, entries) {
			t.Fatalf("%s ranking changed across spill/revive:\n got %+v\nwant %+v",
				ns, got, entries)
		}
	}
}

// TestChaosTenantReviveAfterKill models kill -9 with tenants: snapshots
// are taken, the server is abandoned without Close, and a fresh process
// over the same directory serves every tenant's state back.
func TestChaosTenantReviveAfterKill(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		MemoryBytes:       64 << 10,
		Weights:           sigstream.Weights{Alpha: 1, Beta: 10},
		Shards:            2,
		TenantMemoryBytes: 16 << 10,
		Logger:            quietLogger(),
	}
	doomed := New(cfg)
	if err := doomed.StartSnapshots(SnapshotConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(doomed)
	want := make(map[string][]entryJSON)
	for _, ns := range []string{"alpha", "beta", "gamma"} {
		post(t, srv.URL+"/v1/t/"+ns+"/insert", ns+"\n"+ns+"\nextra\n").Body.Close()
		post(t, srv.URL+"/v1/t/"+ns+"/period", "").Body.Close()
		resp := get(t, srv.URL+"/v1/t/"+ns+"/top?k=5")
		want[ns] = decode[[]entryJSON](t, resp)
	}
	post(t, srv.URL+"/v1/insert", "legacy\nlegacy\n").Body.Close()
	if _, err := doomed.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Kill -9: the listener dies, Close never runs.
	srv.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) < 4 { // default + 3 tenants
		t.Fatalf("snapshot layout %v, want tenant-labelled directories", dirs)
	}

	revived := New(cfg)
	if err := revived.StartSnapshots(SnapshotConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	defer revived.Close()
	srv2 := httptest.NewServer(revived)
	defer srv2.Close()
	for ns, entries := range want {
		resp := get(t, srv2.URL+"/v1/t/"+ns+"/top?k=5")
		got := decode[[]entryJSON](t, resp)
		if !reflect.DeepEqual(got, entries) {
			t.Fatalf("%s ranking lost in the crash:\n got %+v\nwant %+v", ns, got, entries)
		}
		resp = get(t, srv2.URL+"/v1/t/"+ns+"/stats")
		st := decode[statsResponse](t, resp)
		if !strings.HasPrefix(st.Snapshot.LastRecovery, "recovered ") {
			t.Fatalf("%s last recovery %q", ns, st.Snapshot.LastRecovery)
		}
	}
	// The default tenant recovered through the pinned path.
	resp := get(t, srv2.URL+"/v1/query?key=legacy")
	if e := decode[map[string]any](t, resp); e["frequency"].(float64) != 2 {
		t.Fatalf("legacy key after revival: %v", e)
	}
}

// TestTenantIdleSpillAndAge exercises the idle sweep end to end and the
// stats snapshot age: an untouched tenant spills after IdleAfter, its
// listing row goes non-resident, and a stats read revives it.
func TestTenantIdleSpillAndAge(t *testing.T) {
	srv, s, _ := newTenantServer(t, func(c *Config) {
		c.TenantIdleAfter = time.Millisecond
	})
	post(t, srv.URL+"/v1/t/sleepy/insert", "a\n").Body.Close()
	time.Sleep(5 * time.Millisecond)
	s.Tenants().Sweep()
	for _, info := range s.Tenants().List() {
		if info.Namespace == "sleepy" && info.Resident {
			t.Fatal("sleepy tenant still resident after idle sweep")
		}
	}
	resp := get(t, srv.URL+"/v1/t/sleepy/stats")
	st := decode[statsResponse](t, resp)
	if st.Arrivals != 1 || st.Snapshot.Revives != 1 {
		t.Fatalf("sleepy after revive: %+v", st.Snapshot)
	}
	if st.Snapshot.AgeSeconds < 0 {
		t.Fatalf("snapshot age %v after a save", st.Snapshot.AgeSeconds)
	}
}

// TestRouteContract pins the route table to the mux: every table row
// resolves to a real handler, and no handler exists without a table row
// (enforced by New's panic). The README half of this contract — table
// rows matching routeTable in both directions — is now checked by the
// contractdrift analyzer on every siglint run.
func TestRouteContract(t *testing.T) {
	s := New(Config{MemoryBytes: 16 << 10, Logger: quietLogger()})
	for _, rt := range Routes() {
		path := strings.ReplaceAll(rt.Pattern, "{ns}", "default")
		r := httptest.NewRequest(rt.Method, path, nil)
		_, pattern := s.mux.Handler(r)
		if pattern != rt.Pattern {
			t.Errorf("%s %s resolves to mux pattern %q, want %q",
				rt.Method, path, pattern, rt.Pattern)
		}
	}
}
