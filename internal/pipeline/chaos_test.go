package pipeline

import (
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sigstream/internal/fault"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// flakySink panics on the deliveries whose ordinal is in fail, and
// records everything else.
type flakySink struct {
	rec   recordSink
	calls atomic.Uint64
	fail  map[uint64]bool
}

func (f *flakySink) InsertBatch(items []uint64) {
	n := f.calls.Add(1)
	if f.fail[n] {
		panic("flaky sink crash")
	}
	f.rec.InsertBatch(items)
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosWorkerRestartBelowBudget checks the self-healing path: a sink
// that panics once loses exactly that batch, the worker restarts, and
// producers never observe an error.
func TestChaosWorkerRestartBelowBudget(t *testing.T) {
	sink := &flakySink{fail: map[uint64]bool{2: true}}
	in := New([]Sink{sink}, Options{Logger: quietLogger()})
	defer in.Close()

	for i := 0; i < 4; i++ {
		if err := in.Submit([]uint64{uint64(10 + i)}); err != nil {
			t.Fatalf("Submit %d on a healthy pipeline: %v", i, err)
		}
		if err := in.Flush(); err != nil {
			t.Fatalf("Flush %d after a below-budget panic: %v", i, err)
		}
	}
	st := in.Stats()
	if st.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", st.Restarts)
	}
	if st.QuarantinedShards != 0 {
		t.Fatalf("QuarantinedShards = %d, want 0", st.QuarantinedShards)
	}
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want exactly the in-flight batch", st.Dropped)
	}
	if in.Err() != nil {
		t.Fatalf("Err() = %v after a recovered panic, want nil", in.Err())
	}
	// Deliveries 1, 3 and 4 landed; delivery 2 was the dropped batch.
	if got := sink.rec.snapshot(); len(got) != 3 {
		t.Fatalf("sink recorded %v, want the 3 non-dropped batches", got)
	}
}

// TestChaosInjectedSinkPanicViaFault drives the restart path through the
// fault package instead of a hand-rolled flaky sink: an injected panic on
// shard 0 restarts the worker without failing producer Submits, visible
// in Stats.Restarts — the /metrics counter's source.
func TestChaosInjectedSinkPanicViaFault(t *testing.T) {
	var fired atomic.Bool
	deactivate := fault.Activate(fault.PipelineSink, func(shard int) error {
		if shard == 0 && fired.CompareAndSwap(false, true) {
			panic("injected sink crash")
		}
		return nil
	})
	t.Cleanup(deactivate)

	sinks := []*recordSink{{}, {}}
	in := New([]Sink{sinks[0], sinks[1]}, Options{
		Partition: modPartition, Logger: quietLogger(),
	})
	defer in.Close()

	if err := in.Submit([]uint64{0, 1, 2, 3}); err != nil { // shard 0 gets {0,2}, shard 1 {1,3}
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatalf("Flush after injected panic: %v", err)
	}
	if err := in.Submit([]uint64{4, 5}); err != nil {
		t.Fatalf("Submit after injected panic: %v", err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Restarts != 1 || st.QuarantinedShards != 0 {
		t.Fatalf("stats = %+v, want 1 restart, 0 quarantined", st)
	}
	// Shard 1 never panicked: all its items arrived.
	if got := sinks[1].snapshot(); len(got) != 3 {
		t.Fatalf("shard 1 recorded %v, want 3 items", got)
	}
	// Shard 0 lost only the injected batch {0,2}; {4} arrived after restart.
	if got := sinks[0].snapshot(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("shard 0 recorded %v, want [4]", got)
	}
}

// TestChaosQuarantineAfterBudget exhausts the restart budget on shard 0 of
// a two-shard pipeline and checks the terminal path: the error names the
// shard, Flush surfaces it, and the drain keeps answering flush markers
// (no producer deadlock).
func TestChaosQuarantineAfterBudget(t *testing.T) {
	deactivate := fault.Activate(fault.PipelineSink, func(shard int) error {
		if shard == 0 {
			panic("injected persistent crash")
		}
		return nil
	})
	t.Cleanup(deactivate)

	sinks := []*recordSink{{}, {}}
	in := New([]Sink{sinks[0], sinks[1]}, Options{
		Partition: modPartition, RestartBudget: 2, Logger: quietLogger(),
	})
	defer in.Close()

	waitFor(t, "quarantine", func() bool {
		_ = in.Submit([]uint64{0}) // always shard 0
		return in.Err() != nil
	})
	err := in.Err()
	if !strings.Contains(err.Error(), "shard 0 quarantined") {
		t.Fatalf("terminal error %q does not name the quarantined shard", err)
	}
	if !strings.Contains(err.Error(), "injected persistent crash") {
		t.Fatalf("terminal error %q lost the panic payload", err)
	}
	st := in.Stats()
	if st.QuarantinedShards != 1 {
		t.Fatalf("QuarantinedShards = %d, want 1", st.QuarantinedShards)
	}
	if st.Restarts != 3 {
		t.Fatalf("Restarts = %d, want budget 2 + the quarantining panic", st.Restarts)
	}
	// Flush still completes (markers are answered by the drain) and
	// reports the terminal error rather than deadlocking.
	if ferr := in.Flush(); ferr == nil {
		t.Fatal("Flush on a quarantined pipeline returned nil")
	}
}

// TestChaosSlowShardBackpressure checks the slow-shard injection point:
// with shard 0 stalled, submissions back its ring up to the configured
// bound (visible as MaxRingDepth) instead of queueing without limit, and
// everything drains once the stall clears.
func TestChaosSlowShardBackpressure(t *testing.T) {
	gate := make(chan struct{})
	deactivate := fault.Activate(fault.PipelineSlow, func(shard int) error {
		if shard == 0 {
			<-gate
		}
		return nil
	})
	t.Cleanup(func() { deactivate() })

	sinks := []*recordSink{{}, {}}
	in := New([]Sink{sinks[0], sinks[1]}, Options{
		Partition: modPartition, RingSize: 2, Logger: quietLogger(),
	})
	defer in.Close()

	// One batch occupies the stalled worker, two more fill the ring.
	for i := 0; i < 3; i++ {
		if err := in.Submit([]uint64{0}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "ring to fill behind the slow shard", func() bool {
		return in.MaxRingDepth() == 2
	})
	close(gate)
	deactivate()
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := sinks[0].snapshot(); len(got) != 3 {
		t.Fatalf("slow shard drained %v, want all 3 batches", got)
	}
}
