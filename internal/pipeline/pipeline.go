// Package pipeline implements an asynchronous, sharded ingestion
// front-end: producers hash-partition item batches on their own goroutine,
// the sub-batches travel through bounded per-shard rings, and one worker
// goroutine per shard drains its ring into that shard's tracker. The
// synchronous sharded path makes callers take every shard lock themselves —
// a single producer can never drive more than one shard at a time. The
// pipeline decouples the two sides, so one producer (or an HTTP handler
// pool) saturates all shards at once, while the bounded rings give natural
// backpressure instead of unbounded queueing.
//
// Ordering: within one producer goroutine, sub-batches for the same shard
// are enqueued in submission order and each ring is FIFO with a single
// consumer, so every shard sees that producer's items in order. Since
// shards partition the item space, a single-producer pipelined ingest is
// bit-identical to the synchronous path after Flush. With concurrent
// producers the interleaving is unspecified, exactly as it is for
// concurrent synchronous inserts.
//
// Failure: the pipeline self-heals. A panicking sink kills only its
// worker; the supervisor logs the panic, counts the in-flight batch as
// dropped (nothing is requeued — replaying a half-applied batch would
// double-count), and restarts the worker with a fresh stack. Restarts are
// budgeted per shard over a sliding window (default 3 per minute); a
// shard that exhausts the budget is quarantined, which poisons the
// pipeline exactly like the old permanent-failure path: the terminal
// error is recorded, every subsequent batch is drained and counted as
// dropped rather than deadlocking producers, and Submit/Flush/Close all
// report it. Below the budget, producers never see an error — a transient
// sink crash costs one batch and one log line.
package pipeline

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"sigstream/internal/fault"
	"sigstream/internal/hashing"
)

// ErrClosed reports a Submit or Flush after Close.
var ErrClosed = errors.New("pipeline: closed")

// DefaultRingSize is the per-shard ring capacity, in batches.
const DefaultRingSize = 64

// DefaultRestartBudget is the number of worker restarts tolerated per
// shard within DefaultRestartWindow before the shard is quarantined.
const DefaultRestartBudget = 3

// DefaultRestartWindow is the sliding window for the restart budget.
const DefaultRestartWindow = time.Minute

// Sink consumes one shard's sub-batches. Implementations must be safe for
// use from the shard's single worker goroutine; they typically take the
// shard lock and call the tracker's native InsertBatch.
type Sink interface {
	InsertBatch(items []uint64)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(items []uint64)

// InsertBatch implements Sink.
func (f SinkFunc) InsertBatch(items []uint64) { f(items) }

// Options tunes an Ingestor.
type Options struct {
	// RingSize is the per-shard ring capacity in batches (default
	// DefaultRingSize). Producers block when a ring is full.
	RingSize int
	// Partition maps an item to a shard in [0, shards). The default is
	// hashing.Mix64(item) % shards — the same partition sigstream.Sharded
	// uses, so the pipeline and the synchronous path agree on item
	// ownership.
	Partition func(item uint64, shards int) int
	// RestartBudget is the number of worker restarts tolerated per shard
	// within RestartWindow before the shard is quarantined (default
	// DefaultRestartBudget).
	RestartBudget int
	// RestartWindow is the sliding window over which RestartBudget is
	// counted (default DefaultRestartWindow).
	RestartWindow time.Duration
	// Logger receives restart and quarantine events (default
	// slog.Default()).
	Logger *slog.Logger
}

// Stats is a point-in-time observability snapshot of an Ingestor.
type Stats struct {
	// Shards is the number of rings/workers.
	Shards int
	// RingCapacity is each ring's capacity in batches.
	RingCapacity int
	// RingDepth is the current per-shard queue depth in batches.
	RingDepth []int
	// Items counts items accepted by Submit.
	Items uint64
	// Batches counts sub-batches enqueued onto rings.
	Batches uint64
	// Stalls counts ring sends that had to block (backpressure events).
	Stalls uint64
	// Flushes counts completed Flush drains.
	Flushes uint64
	// Dropped counts items discarded: the in-flight batch of each sink
	// panic, plus everything drained after a quarantine poisons the
	// pipeline.
	Dropped uint64
	// Restarts counts workers respawned after a recovered sink panic.
	Restarts uint64
	// QuarantinedShards counts shards retired after exhausting the
	// restart budget.
	QuarantinedShards uint64
}

// envelope is one ring element: either a batch of items or a flush marker.
type envelope struct {
	items []uint64
	flush chan<- struct{}
}

// Ingestor is the pipelined front-end. All methods are safe for concurrent
// use by multiple producers.
type Ingestor struct {
	sinks  []Sink
	part   func(uint64, int) int
	rings  []chan envelope
	wg     sync.WaitGroup
	budget int
	window time.Duration
	logger *slog.Logger

	// mu serializes Close against in-flight Submit/Flush sends: producers
	// hold the read side while touching the rings, so Close cannot close a
	// channel mid-send.
	mu     sync.RWMutex
	closed bool

	failure atomic.Pointer[ingestError]

	items, batches, stalls, flushes, dropped atomic.Uint64
	restarts, quarantined                    atomic.Uint64

	pool   sync.Pool // *[]uint64 sub-batch buffers, recycled by workers
	tables sync.Pool // *scatterTable per-shard scatter tables, recycled by Submit
}

// scatterTable is a pooled per-shard scatter buffer. It is a pointer-held
// struct (not a bare [][]uint64) so returning it to the pool recycles the
// same heap object instead of boxing a fresh slice header on every Put.
type scatterTable struct{ slots [][]uint64 }

type ingestError struct{ err error }

// New starts one worker per sink. Close must be called to release the
// workers.
func New(sinks []Sink, opts Options) *Ingestor {
	if len(sinks) == 0 {
		panic("pipeline: no sinks")
	}
	ring := opts.RingSize
	if ring <= 0 {
		ring = DefaultRingSize
	}
	part := opts.Partition
	if part == nil {
		part = func(item uint64, shards int) int {
			return int(hashing.Mix64(item) % uint64(shards))
		}
	}
	budget := opts.RestartBudget
	if budget <= 0 {
		budget = DefaultRestartBudget
	}
	window := opts.RestartWindow
	if window <= 0 {
		window = DefaultRestartWindow
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	in := &Ingestor{
		sinks:  sinks,
		part:   part,
		rings:  make([]chan envelope, len(sinks)),
		budget: budget,
		window: window,
		logger: logger,
	}
	for i := range in.rings {
		in.rings[i] = make(chan envelope, ring)
		in.wg.Add(1)
		go in.worker(i)
	}
	return in
}

// Shards reports the number of rings/workers.
func (in *Ingestor) Shards() int { return len(in.sinks) }

// RingCapacity reports each ring's capacity in batches.
func (in *Ingestor) RingCapacity() int { return cap(in.rings[0]) }

// MaxRingDepth reports the deepest ring's current queue depth in batches,
// without allocating — cheap enough for a load-shed gate to poll on every
// request.
func (in *Ingestor) MaxRingDepth() int {
	depth := 0
	for _, r := range in.rings {
		if d := len(r); d > depth {
			depth = d
		}
	}
	return depth
}

// Err reports the pipeline's terminal failure, if any: a shard was
// quarantined after exhausting its restart budget. Recovered sink panics
// below the budget are not errors; they surface through Stats.Restarts.
func (in *Ingestor) Err() error {
	if f := in.failure.Load(); f != nil {
		return f.err
	}
	return nil
}

// Submit hash-partitions items and enqueues one sub-batch per owning
// shard, blocking while rings are full (backpressure). The items slice is
// copied; the caller may reuse it immediately. Submission is asynchronous:
// when Submit returns, the items are owned by the pipeline but not
// necessarily applied — call Flush for a visibility barrier.
//
// Submit reports ErrClosed after Close, and the terminal quarantine error
// once the pipeline is poisoned (poisoned submissions are dropped, not
// queued). Sink panics below the restart budget never fail a Submit.
// Steady-state submission is allocation-free: sub-batch buffers and the
// per-shard scatter table are pooled, with growth confined to the buf and
// table helpers.
//
//sig:noalloc
func (in *Ingestor) Submit(items []uint64) error {
	if len(items) == 0 {
		return in.Err()
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.closed {
		return ErrClosed
	}
	if err := in.Err(); err != nil {
		in.dropped.Add(uint64(len(items)))
		return err
	}
	n := len(in.sinks)
	if n == 1 {
		in.send(0, append(in.buf(len(items)), items...))
	} else {
		t := in.table(n)
		bufs := t.slots
		for _, it := range items {
			s := in.part(it, n)
			if bufs[s] == nil {
				bufs[s] = in.buf(len(items))
			}
			bufs[s] = append(bufs[s], it)
		}
		for s, b := range bufs {
			if b != nil {
				in.send(s, b)
				bufs[s] = nil
			}
		}
		in.tables.Put(t)
	}
	in.items.Add(uint64(len(items)))
	return nil
}

// send enqueues one sub-batch, counting a stall when the ring is full.
func (in *Ingestor) send(shard int, batch []uint64) {
	env := envelope{items: batch}
	select {
	case in.rings[shard] <- env:
	default:
		in.stalls.Add(1)
		in.rings[shard] <- env
	}
	in.batches.Add(1)
}

// Flush blocks until every batch submitted before the call has been
// applied (or dropped, if the pipeline failed): it enqueues a marker on
// every ring and waits for all workers to reach it. Flush reports ErrClosed
// after Close and the first sink failure otherwise.
func (in *Ingestor) Flush() error {
	in.mu.RLock()
	if in.closed {
		in.mu.RUnlock()
		return ErrClosed
	}
	done := make(chan struct{}, len(in.rings))
	for i := range in.rings {
		//siglint:ignore read lock only: Close needs the write side so it cannot close a ring mid-send, and workers drain rings without taking mu, so the send always completes
		in.rings[i] <- envelope{flush: done}
	}
	in.mu.RUnlock()
	for range in.rings {
		<-done
	}
	in.flushes.Add(1)
	return in.Err()
}

// Close drains every ring, stops the workers and releases their
// goroutines. Further Submit/Flush calls report ErrClosed. Close reports
// the first sink failure, if any; it is idempotent.
func (in *Ingestor) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return in.Err()
	}
	in.closed = true
	for i := range in.rings {
		close(in.rings[i])
	}
	in.mu.Unlock()
	in.wg.Wait()
	return in.Err()
}

// Stats snapshots the pipeline's observability counters and ring depths.
func (in *Ingestor) Stats() Stats {
	st := Stats{
		Shards:            len(in.sinks),
		RingCapacity:      cap(in.rings[0]),
		RingDepth:         make([]int, len(in.rings)),
		Items:             in.items.Load(),
		Batches:           in.batches.Load(),
		Stalls:            in.stalls.Load(),
		Flushes:           in.flushes.Load(),
		Dropped:           in.dropped.Load(),
		Restarts:          in.restarts.Load(),
		QuarantinedShards: in.quarantined.Load(),
	}
	for i, r := range in.rings {
		st.RingDepth[i] = len(r)
	}
	return st
}

// worker supervises one shard. It runs the drain loop and, when a sink
// panic unwinds it, logs the panic, counts a restart against the shard's
// sliding-window budget, and re-enters the loop with a fresh stack —
// recover-and-respawn. A shard that panics more than budget times inside
// the window is quarantined: the terminal error poisons the pipeline (as
// the old permanent-failure path did) and the loop keeps running as a
// drain, so flush markers are still answered and producers never block on
// a dead shard.
func (in *Ingestor) worker(shard int) {
	defer in.wg.Done()
	var recent []time.Time // restart times inside the window; only this goroutine touches it
	for {
		normal, val := in.run(shard)
		if normal {
			return // ring closed
		}
		now := time.Now()
		keep := recent[:0]
		for _, ts := range recent {
			if now.Sub(ts) < in.window {
				keep = append(keep, ts)
			}
		}
		recent = append(keep, now)
		in.restarts.Add(1)
		if len(recent) > in.budget {
			in.failure.CompareAndSwap(nil, &ingestError{fmt.Errorf(
				"pipeline: shard %d quarantined after %d sink panics within %v (last: %v)",
				shard, len(recent), in.window, val)})
			in.quarantined.Add(1)
			in.logger.Error("pipeline: shard quarantined",
				"shard", shard, "panics_in_window", len(recent),
				"window", in.window, "panic", val)
			recent = recent[:0] // quarantined: consume stops reaching the sink, no more panics
			continue
		}
		in.logger.Warn("pipeline: worker restarted after sink panic",
			"shard", shard, "panic", val,
			"restarts_in_window", len(recent), "budget", in.budget)
	}
}

// run drains the ring until it closes (normal exit) or a sink panic
// unwinds it. The recover lives here rather than in consume so every
// restart re-enters through a fresh call frame, and so the panic value
// reaches the supervisor for budgeting and logging.
func (in *Ingestor) run(shard int) (normal bool, panicVal any) {
	defer func() {
		if r := recover(); r != nil {
			normal, panicVal = false, r
		}
	}()
	for env := range in.rings[shard] {
		if env.flush != nil {
			env.flush <- struct{}{}
			continue
		}
		in.consume(shard, env.items)
	}
	return true, nil
}

// consume applies one sub-batch. A panicking sink counts its in-flight
// batch as dropped and re-panics so the supervisor can restart the
// worker; once the pipeline is poisoned (a shard exhausted its restart
// budget) every batch is drained and dropped instead of applied.
func (in *Ingestor) consume(shard int, batch []uint64) {
	defer in.recycle(batch)
	if in.Err() != nil {
		in.dropped.Add(uint64(len(batch)))
		return
	}
	defer func() {
		if r := recover(); r != nil {
			in.dropped.Add(uint64(len(batch)))
			panic(r)
		}
	}()
	// Chaos-test injection points: a sleeping hook models a slow shard, a
	// panicking hook models a crashing sink. Inactive they cost one atomic
	// load per sub-batch; their error results are deliberately unused.
	fault.Inject(fault.PipelineSlow, shard)
	fault.Inject(fault.PipelineSink, shard)
	in.sinks[shard].InsertBatch(batch)
}

// buf returns an empty pooled buffer with capacity for up to n items.
func (in *Ingestor) buf(n int) []uint64 {
	if p, _ := in.pool.Get().(*[]uint64); p != nil && cap(*p) >= n {
		return (*p)[:0]
	}
	return make([]uint64, 0, n)
}

// recycle returns a drained sub-batch buffer to the pool.
func (in *Ingestor) recycle(batch []uint64) {
	in.pool.Put(&batch)
}

// table returns a scatter table with n per-shard slots, all nil: fresh
// tables come zeroed from make, and Submit nils each used slot before
// returning the table to the pool.
func (in *Ingestor) table(n int) *scatterTable {
	t, _ := in.tables.Get().(*scatterTable)
	if t == nil {
		t = &scatterTable{}
	}
	if cap(t.slots) < n {
		t.slots = make([][]uint64, n)
	}
	t.slots = t.slots[:n]
	return t
}
