package pipeline

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordSink collects everything its shard worker delivers.
type recordSink struct {
	mu    sync.Mutex
	items []uint64
}

func (r *recordSink) InsertBatch(items []uint64) {
	r.mu.Lock()
	r.items = append(r.items, items...)
	r.mu.Unlock()
}

func (r *recordSink) snapshot() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.items...)
}

func modPartition(item uint64, shards int) int { return int(item % uint64(shards)) }

func TestPartitionPreservesPerShardOrder(t *testing.T) {
	sinks := []*recordSink{{}, {}, {}}
	in := New([]Sink{sinks[0], sinks[1], sinks[2]}, Options{Partition: modPartition})
	defer in.Close()

	var want [3][]uint64
	batch := make([]uint64, 0, 10)
	for v := uint64(0); v < 1000; v++ {
		batch = append(batch, v)
		want[v%3] = append(want[v%3], v)
		if len(batch) == 10 {
			if err := in.Submit(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	for s, sink := range sinks {
		got := sink.snapshot()
		if len(got) != len(want[s]) {
			t.Fatalf("shard %d: got %d items, want %d", s, len(got), len(want[s]))
		}
		for i := range got {
			if got[i] != want[s][i] {
				t.Fatalf("shard %d item %d: got %d, want %d (order not preserved)",
					s, i, got[i], want[s][i])
			}
		}
	}
	st := in.Stats()
	if st.Items != 1000 {
		t.Fatalf("Items = %d, want 1000", st.Items)
	}
	if st.Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", st.Flushes)
	}
}

func TestSubmitCopiesTheBatch(t *testing.T) {
	sink := &recordSink{}
	in := New([]Sink{sink}, Options{})
	defer in.Close()
	batch := []uint64{1, 2, 3}
	if err := in.Submit(batch); err != nil {
		t.Fatal(err)
	}
	batch[0], batch[1], batch[2] = 9, 9, 9 // caller reuses its slice immediately
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	got := sink.snapshot()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("sink saw %v, want the submitted values 1 2 3", got)
	}
}

// gateSink blocks deliveries until released, to force ring backpressure.
type gateSink struct {
	gate  chan struct{}
	count atomic.Uint64
}

func (g *gateSink) InsertBatch(items []uint64) {
	<-g.gate
	g.count.Add(uint64(len(items)))
}

func TestBackpressureStallsAndRecovers(t *testing.T) {
	g := &gateSink{gate: make(chan struct{})}
	in := New([]Sink{g}, Options{RingSize: 1})
	defer in.Close()

	done := make(chan error)
	go func() {
		var err error
		for i := 0; i < 16 && err == nil; i++ {
			err = in.Submit([]uint64{uint64(i)})
		}
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("16 submits into a 1-deep ring with a blocked worker returned early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
		// expected: the producer is stalled on the full ring
	}
	close(g.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := g.count.Load(); got != 16 {
		t.Fatalf("worker applied %d items, want 16", got)
	}
	if st := in.Stats(); st.Stalls == 0 {
		t.Fatal("expected at least one recorded stall")
	}
}

func TestCloseSemantics(t *testing.T) {
	sink := &recordSink{}
	in := New([]Sink{sink}, Options{})
	if err := in.Submit([]uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	// Close drains: the submitted batch must have been applied.
	if got := sink.snapshot(); len(got) != 2 {
		t.Fatalf("close did not drain: sink saw %v", got)
	}
	if err := in.Submit([]uint64{3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := in.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// panicSink fails on every delivery.
type panicSink struct{}

func (panicSink) InsertBatch([]uint64) { panic("sink exploded") }

// quarantine drives an always-panicking single-sink pipeline past its
// restart budget and returns the poisoned pipeline.
func quarantine(t *testing.T, in *Ingestor) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for in.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("pipeline never quarantined")
		}
		_ = in.Submit([]uint64{1, 2, 3})
		time.Sleep(time.Millisecond)
	}
}

func TestSinkPanicQuarantinePoisonsThePipeline(t *testing.T) {
	in := New([]Sink{panicSink{}}, Options{RestartBudget: 1, Logger: quietLogger()})
	defer in.Close()
	quarantine(t, in)
	// Poisoned pipeline: submissions are rejected-and-dropped, not queued,
	// and every entry point reports the failure.
	if err := in.Submit([]uint64{4}); err == nil {
		t.Fatal("Submit on a poisoned pipeline returned nil")
	}
	if err := in.Flush(); err == nil {
		t.Fatal("Flush on a poisoned pipeline returned nil")
	}
	st := in.Stats()
	if st.Dropped == 0 {
		t.Fatal("expected dropped items after the failure")
	}
	if st.QuarantinedShards != 1 {
		t.Fatalf("QuarantinedShards = %d, want 1", st.QuarantinedShards)
	}
	if st.Restarts != 2 {
		t.Fatalf("Restarts = %d, want 2 (budget 1 + the quarantining panic)", st.Restarts)
	}
	if err := in.Close(); err == nil {
		t.Fatal("Close returned nil, want the recorded failure")
	}
}

// TestSinkPanicMessageSurfaces pins that the quarantine error carries the
// original panic payload, not a generic "pipeline failed": an operator
// debugging a dead ingest path needs the sink's own message.
func TestSinkPanicMessageSurfaces(t *testing.T) {
	in := New([]Sink{panicSink{}}, Options{RestartBudget: 1, Logger: quietLogger()})
	quarantine(t, in)
	for name, err := range map[string]error{
		"Flush":  in.Flush(),
		"Submit": in.Submit([]uint64{2}),
		"Err":    in.Err(),
		"Close":  in.Close(),
	} {
		if err == nil || !strings.Contains(err.Error(), "sink exploded") {
			t.Errorf("%s error = %v, want the original panic message %q",
				name, err, "sink exploded")
		}
	}
}

func TestConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	sinks := []*recordSink{{}, {}, {}, {}}
	in := New([]Sink{sinks[0], sinks[1], sinks[2], sinks[3]}, Options{RingSize: 4})
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]uint64, 0, 64)
			for i := 0; i < perProducer; i++ {
				batch = append(batch, uint64(p*perProducer+i))
				if len(batch) == 64 {
					if err := in.Submit(batch); err != nil {
						t.Error(err)
						return
					}
					batch = batch[:0]
				}
			}
			if err := in.Submit(batch); err != nil {
				t.Error(err)
			}
		}(p)
	}
	// Concurrent flushes and stats snapshots must be safe alongside the
	// producers.
	for i := 0; i < 10; i++ {
		_ = in.Flush()
		_ = in.Stats()
	}
	wg.Wait()
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sinks {
		total += len(s.snapshot())
	}
	if total != producers*perProducer {
		t.Fatalf("sinks saw %d items, want %d", total, producers*perProducer)
	}
}
