package gen

import (
	"math/rand"

	"sigstream/internal/hashing"
	"sigstream/internal/stream"
)

// Config controls synthetic stream generation.
type Config struct {
	// N is the total number of arrivals.
	N int
	// M is the number of distinct items in the universe.
	M int
	// Periods is the number of equal-sized periods the stream is divided into.
	Periods int
	// Skew is the Zipf exponent γ of the frequency distribution.
	Skew float64
	// Seed makes generation reproducible.
	Seed int64
	// Head is the number of top ranks that are persistent: active in every
	// period. These model the stable heavy hitters (e.g. backbone flows).
	Head int
	// TailWindowFrac is the mean active-window length of non-head items,
	// as a fraction of Periods. Small values produce bursty traffic whose
	// frequency rank diverges from its persistency rank.
	TailWindowFrac float64
	// Label names the workload in experiment output.
	Label string
}

// Generate produces a period-structured stream. Item IDs are pseudorandom
// 64-bit values (stable per rank and seed), so hash-based structures see
// realistic keys rather than small integers.
func Generate(cfg Config) *stream.Stream {
	if cfg.N <= 0 || cfg.M <= 0 {
		panic("gen: N and M must be positive")
	}
	if cfg.Periods <= 0 {
		cfg.Periods = 1
	}
	if cfg.TailWindowFrac <= 0 {
		cfg.TailWindowFrac = 1
	}
	if cfg.TailWindowFrac > 1 {
		cfg.TailWindowFrac = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := NewZipf(rng, cfg.M, cfg.Skew)

	// Stable 64-bit ID per rank.
	ids := make([]stream.Item, cfg.M)
	for i := range ids {
		ids[i] = hashing.Mix64(uint64(cfg.Seed)<<20 ^ uint64(i+1))
	}

	// Active window [start, end) per rank, in periods.
	starts := make([]int32, cfg.M)
	ends := make([]int32, cfg.M)
	for i := 0; i < cfg.M; i++ {
		if i < cfg.Head {
			starts[i], ends[i] = 0, int32(cfg.Periods)
			continue
		}
		// Window length uniform in [1, 2·frac·Periods], capped at Periods,
		// so the mean is ≈ frac·Periods.
		maxLen := int(2 * cfg.TailWindowFrac * float64(cfg.Periods))
		if maxLen < 1 {
			maxLen = 1
		}
		length := 1 + rng.Intn(maxLen)
		if length > cfg.Periods {
			length = cfg.Periods
		}
		start := rng.Intn(cfg.Periods - length + 1)
		starts[i], ends[i] = int32(start), int32(start+length)
	}

	// Bucket arrivals into periods: sample a rank, then a uniform period
	// within its active window.
	perPeriod := make([][]stream.Item, cfg.Periods)
	expect := cfg.N/cfg.Periods + 1
	for p := range perPeriod {
		perPeriod[p] = make([]stream.Item, 0, expect)
	}
	for a := 0; a < cfg.N; a++ {
		r := z.Next()
		w := int(ends[r] - starts[r])
		p := int(starts[r])
		if w > 1 {
			p += rng.Intn(w)
		}
		perPeriod[p] = append(perPeriod[p], ids[r])
	}

	// Flatten, shuffling inside each period so arrivals interleave the way
	// real traffic does (generation order would otherwise cluster ranks).
	items := make([]stream.Item, 0, cfg.N)
	for _, bucket := range perPeriod {
		rng.Shuffle(len(bucket), func(i, j int) {
			bucket[i], bucket[j] = bucket[j], bucket[i]
		})
		items = append(items, bucket...)
	}

	// Period division downstream is count-based (N/Periods items each), so
	// re-chunking is only approximate if periods have unequal sizes. Since
	// the paper also divides real traces "with a fixed time interval" and
	// its algorithms tolerate varying arrival rates, this is faithful.
	return &stream.Stream{Items: items, Periods: cfg.Periods, Label: cfg.Label}
}

// CAIDALike emulates the paper's CAIDA Anonymized Internet Trace 2016
// workload: 10 M packets keyed by source IP, 500 periods, strong skew,
// a stable backbone of persistent sources plus bursty scanners.
func CAIDALike(n int, seed int64) *stream.Stream {
	return Generate(Config{
		N: n, M: maxInt(n/8, 64), Periods: 500, Skew: 1.1,
		Head: 1000, TailWindowFrac: 0.25, Seed: seed, Label: "CAIDA-like",
	})
}

// NetworkLike emulates the stack-exchange temporal interaction network:
// 10 M answer events keyed by user, 1000 periods, moderate skew, and high
// temporal locality (most users are active for a short stretch).
func NetworkLike(n int, seed int64) *stream.Stream {
	return Generate(Config{
		N: n, M: maxInt(n/5, 64), Periods: 1000, Skew: 0.9,
		Head: 500, TailWindowFrac: 0.1, Seed: seed, Label: "Network-like",
	})
}

// SocialLike emulates the social-network message log: 1.5 M messages keyed
// by sender, 200 periods, milder skew, heavy per-period overlap.
func SocialLike(n int, seed int64) *stream.Stream {
	return Generate(Config{
		N: n, M: maxInt(n/6, 64), Periods: 200, Skew: 0.8,
		Head: 2000, TailWindowFrac: 0.5, Seed: seed, Label: "Social-like",
	})
}

// ZipfStream generates a plain Zipf stream with every item active in every
// period (no burst structure). Used by the theory-verification experiments
// (Fig 7), which assume the Eq 3 Zipfian model.
func ZipfStream(n, m, periods int, gamma float64, seed int64) *stream.Stream {
	return Generate(Config{
		N: n, M: m, Periods: periods, Skew: gamma,
		Head: m, TailWindowFrac: 1, Seed: seed, Label: "Zipf",
	})
}

// UniformStream generates a uniform-frequency stream — the distribution for
// which the paper notes Long-tail Replacement is expected NOT to work well.
func UniformStream(n, m, periods int, seed int64) *stream.Stream {
	return Generate(Config{
		N: n, M: m, Periods: periods, Skew: 0,
		Head: m, TailWindowFrac: 1, Seed: seed, Label: "Uniform",
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
