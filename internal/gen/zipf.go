// Package gen produces the synthetic workloads the experiments run on.
//
// The paper evaluates on three real traces (CAIDA 2016, a stack-exchange
// temporal network, a social-network message log). Those traces are not
// redistributable, so this package generates seeded synthetic equivalents
// that preserve the two properties the algorithms are sensitive to:
//
//  1. a long-tail (Zipfian) frequency distribution, and
//  2. a controlled mix of persistent items (active in every period) and
//     bursty items (active only in a short window of periods), which is what
//     makes significance differ from plain frequency.
package gen

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..M-1 with probability proportional to (rank+1)^-s.
// Unlike math/rand.Zipf it supports any skew s ≥ 0 (the paper's datasets
// have skews both below and above 1).
type Zipf struct {
	cdf []float64 // cumulative, cdf[M-1] == total mass
	rng *rand.Rand
}

// NewZipf builds a Zipf sampler over m ranks with skew s, driven by rng.
func NewZipf(rng *rand.Rand, m int, s float64) *Zipf {
	if m <= 0 {
		panic("gen: Zipf universe must be positive")
	}
	cdf := make([]float64, m)
	total := 0.0
	for i := 0; i < m; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next sampled rank in [0, M).
func (z *Zipf) Next() int {
	u := z.rng.Float64() * z.cdf[len(z.cdf)-1]
	return sort.SearchFloat64s(z.cdf, u)
}

// Mass returns the probability of rank i.
func (z *Zipf) Mass(i int) float64 {
	total := z.cdf[len(z.cdf)-1]
	if i == 0 {
		return z.cdf[0] / total
	}
	return (z.cdf[i] - z.cdf[i-1]) / total
}

// ZipfFrequencies returns the paper's Eq 3 expected frequencies
// f_i = N·i^-γ / ζ_M(γ) for ranks i = 1..M (index 0 holds f_1).
func ZipfFrequencies(n, m int, gamma float64) []float64 {
	zeta := 0.0
	for i := 1; i <= m; i++ {
		zeta += math.Pow(float64(i), -gamma)
	}
	fs := make([]float64, m)
	for i := 1; i <= m; i++ {
		fs[i-1] = float64(n) * math.Pow(float64(i), -gamma) / zeta
	}
	return fs
}
