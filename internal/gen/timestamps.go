package gen

import (
	"math/rand"
	"sort"

	"sigstream/internal/stream"
)

// Timestamps assigns an arrival time to every item of a period-structured
// stream: period p spans [p·d, (p+1)·d) for period duration d, and the
// period's arrivals get sorted uniform offsets within it. Together with
// ltc.InsertAt this exercises the paper's time-defined periods with the
// naturally varying arrival rate the count-based stream already encodes
// (bursty periods are denser in time).
func Timestamps(s *stream.Stream, periodDuration float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	per := s.ItemsPerPeriod()
	ts := make([]float64, len(s.Items))
	for start := 0; start < len(s.Items); start += per {
		end := start + per
		if end > len(s.Items) {
			end = len(s.Items)
		}
		p := start / per
		offsets := make([]float64, end-start)
		for i := range offsets {
			offsets[i] = rng.Float64() * periodDuration * 0.999999
		}
		sort.Float64s(offsets)
		for i := range offsets {
			ts[start+i] = float64(p)*periodDuration + offsets[i]
		}
	}
	return ts
}
