package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sigstream/internal/stream"
)

func TestZipfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 100, 1.0)
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfSkewOrdersRanks(t *testing.T) {
	// With skew 1.2, rank 0 must be sampled far more often than rank 50.
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[z.Next()]++
	}
	if counts[0] < 5*counts[50] {
		t.Fatalf("rank 0 count %d not ≫ rank 50 count %d", counts[0], counts[50])
	}
	// Empirical frequency of rank 0 should approximate its mass.
	p0 := float64(counts[0]) / 200000
	if math.Abs(p0-z.Mass(0)) > 0.01 {
		t.Fatalf("empirical mass %.4f vs analytic %.4f", p0, z.Mass(0))
	}
}

func TestZipfZeroSkewIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		if math.Abs(float64(c)-n/10) > n/100 {
			t.Fatalf("rank %d count %d deviates from uniform %d", r, c, n/10)
		}
	}
}

func TestZipfMassSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z := NewZipf(rng, 50, 0.8)
	total := 0.0
	for i := 0; i < 50; i++ {
		total += z.Mass(i)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("masses sum to %v, want 1", total)
	}
}

func TestZipfFrequenciesEq3(t *testing.T) {
	fs := ZipfFrequencies(1000, 10, 1.0)
	// f_i must be non-increasing and sum to N.
	sum := 0.0
	for i, f := range fs {
		sum += f
		if i > 0 && f > fs[i-1]+1e-9 {
			t.Fatalf("frequencies not non-increasing at %d", i)
		}
	}
	if math.Abs(sum-1000) > 1e-6 {
		t.Fatalf("frequencies sum to %v, want 1000", sum)
	}
	// Ratio f_1/f_2 must be 2^γ for γ=1.
	if math.Abs(fs[0]/fs[1]-2) > 1e-9 {
		t.Fatalf("f1/f2 = %v, want 2", fs[0]/fs[1])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 5000, M: 500, Periods: 10, Skew: 1, Seed: 42})
	b := Generate(Config{N: 5000, M: 500, Periods: 10, Skew: 1, Seed: 42})
	if len(a.Items) != len(b.Items) {
		t.Fatal("lengths differ")
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := Generate(Config{N: 5000, M: 500, Periods: 10, Skew: 1, Seed: 43})
	diff := 0
	for i := range a.Items {
		if a.Items[i] != c.Items[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateShape(t *testing.T) {
	s := Generate(Config{N: 10000, M: 1000, Periods: 20, Skew: 1.1, Head: 10, TailWindowFrac: 0.2, Seed: 7})
	if s.Len() != 10000 {
		t.Fatalf("Len = %d, want 10000", s.Len())
	}
	if s.Periods != 20 {
		t.Fatalf("Periods = %d, want 20", s.Periods)
	}
	d := s.Distinct()
	if d < 100 || d > 1000 {
		t.Fatalf("distinct items %d implausible for M=1000", d)
	}
}

func TestGenerateLongTail(t *testing.T) {
	// The headline assumption of Long-tail Replacement: frequencies follow
	// a long-tail distribution. Verify the generated stream's top
	// frequency dwarfs the median frequency.
	s := Generate(Config{N: 50000, M: 5000, Periods: 10, Skew: 1.1, Head: 50, TailWindowFrac: 0.5, Seed: 11})
	counts := map[stream.Item]int{}
	for _, it := range s.Items {
		counts[it]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	maxF, sum := 0, 0
	for _, f := range freqs {
		if f > maxF {
			maxF = f
		}
		sum += f
	}
	mean := float64(sum) / float64(len(freqs))
	if float64(maxF) < 20*mean {
		t.Fatalf("max frequency %d not ≫ mean %.1f; distribution not long-tailed", maxF, mean)
	}
}

func TestGenerateBurstyTailLimitsPersistency(t *testing.T) {
	// With a small TailWindowFrac, non-head items must appear in far fewer
	// periods than the head items.
	const periods = 50
	s := Generate(Config{N: 100000, M: 2000, Periods: periods, Skew: 0.9,
		Head: 5, TailWindowFrac: 0.1, Seed: 13})
	per := s.ItemsPerPeriod()
	persist := map[stream.Item]map[int]struct{}{}
	for i, it := range s.Items {
		p := i / per
		if persist[it] == nil {
			persist[it] = map[int]struct{}{}
		}
		persist[it][p] = struct{}{}
	}
	maxP := 0
	over := 0
	for _, ps := range persist {
		if len(ps) > maxP {
			maxP = len(ps)
		}
		// Tail windows average 10% of 50 = 5 periods (max 10 by the uniform
		// window draw); count-based re-chunking smears boundaries, so only
		// flag items far beyond the window bound.
		if len(ps) > periods/2 {
			over++
		}
	}
	if maxP < periods/2 {
		t.Fatalf("no item is persistent (max persistency %d of %d periods)", maxP, periods)
	}
	// Only the 5 head items should span more than half the stream.
	if over > 8 {
		t.Fatalf("%d items exceed the tail persistency bound; windows not enforced", over)
	}
}

func TestPresetsProduceConfiguredPeriods(t *testing.T) {
	cases := []struct {
		name    string
		s       *stream.Stream
		periods int
	}{
		{"caida", CAIDALike(20000, 1), 500},
		{"network", NetworkLike(20000, 1), 1000},
		{"social", SocialLike(20000, 1), 200},
	}
	for _, c := range cases {
		if c.s.Periods != c.periods {
			t.Errorf("%s: periods = %d, want %d", c.name, c.s.Periods, c.periods)
		}
		if c.s.Len() != 20000 {
			t.Errorf("%s: len = %d, want 20000", c.name, c.s.Len())
		}
		if c.s.Label == "" {
			t.Errorf("%s: missing label", c.name)
		}
	}
}

func TestUniformStreamHasFlatFrequencies(t *testing.T) {
	s := UniformStream(30000, 300, 10, 5)
	counts := map[stream.Item]int{}
	for _, it := range s.Items {
		counts[it]++
	}
	minF, maxF := 1<<30, 0
	for _, c := range counts {
		if c < minF {
			minF = c
		}
		if c > maxF {
			maxF = c
		}
	}
	// 100 expected per item; Poisson noise keeps the range tight.
	if maxF > 3*minF {
		t.Fatalf("uniform stream has skewed counts: min %d max %d", minF, maxF)
	}
}

func TestGenerateProperty(t *testing.T) {
	// Any valid config yields exactly N arrivals whose IDs come from at
	// most M distinct values.
	f := func(seed int64) bool {
		cfg := Config{N: 2000, M: 100, Periods: 8, Skew: 1, Seed: seed,
			Head: 10, TailWindowFrac: 0.3}
		s := Generate(cfg)
		return s.Len() == 2000 && s.Distinct() <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampsMonotoneAndPeriodAligned(t *testing.T) {
	s := Generate(Config{N: 5000, M: 300, Periods: 10, Skew: 1, Seed: 9})
	const d = 60.0
	ts := Timestamps(s, d, 1)
	if len(ts) != s.Len() {
		t.Fatalf("got %d timestamps for %d items", len(ts), s.Len())
	}
	per := s.ItemsPerPeriod()
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			t.Fatalf("timestamps regress at %d", i)
		}
	}
	for i, at := range ts {
		wantPeriod := i / per
		if got := int(at / d); got != wantPeriod {
			t.Fatalf("arrival %d: time %.2f lands in period %d, want %d",
				i, at, got, wantPeriod)
		}
	}
}

func TestZipfStreamAllItemsAlwaysActive(t *testing.T) {
	s := ZipfStream(20000, 500, 10, 1.0, 3)
	if s.Len() != 20000 || s.Periods != 10 || s.Label != "Zipf" {
		t.Fatalf("shape wrong: %d items, %d periods, %q", s.Len(), s.Periods, s.Label)
	}
	// The head item should appear in every period (full activity windows).
	counts := map[stream.Item]int{}
	for _, it := range s.Items {
		counts[it]++
	}
	var top stream.Item
	best := 0
	for it, c := range counts {
		if c > best {
			best, top = c, it
		}
	}
	per := s.ItemsPerPeriod()
	seen := map[int]bool{}
	for i, it := range s.Items {
		if it == top {
			seen[i/per] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("head item active in %d/10 periods", len(seen))
	}
}
