package traceio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText: arbitrary text must either parse or return an error —
// never panic — and parsed streams must round-trip through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("1 0\n2 0\n3 1\n")
	f.Add("# comment\n\n42\n")
	f.Add("not a number\n")
	f.Add("1 -5\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadText(strings.NewReader(in), 4)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, s); err != nil {
			t.Fatalf("parsed stream failed to write: %v", err)
		}
		back, err := ReadText(&buf, 4)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if len(back.Items) != len(s.Items) {
			t.Fatalf("round trip changed item count: %d → %d",
				len(s.Items), len(back.Items))
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic or over-allocate.
func FuzzReadBinary(f *testing.F) {
	f.Add([]byte("SGTR"))
	f.Add([]byte{})
	var buf bytes.Buffer
	_ = WriteBinary(&buf, sample())
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if s.Periods < 1 {
			t.Fatal("accepted stream with no periods")
		}
	})
}
