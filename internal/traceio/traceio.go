// Package traceio reads and writes stream traces in the two formats used
// by the command-line tools: text ("item period" per line) and binary
// (little-endian uint64 items, periods implied by position).
package traceio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sigstream/internal/stream"
)

// WriteText writes one "item period" pair per line.
func WriteText(w io.Writer, s *stream.Stream) error {
	bw := bufio.NewWriter(w)
	per := s.ItemsPerPeriod()
	for i, it := range s.Items {
		if _, err := fmt.Fprintf(bw, "%d %d\n", it, i/per); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinary writes items as little-endian uint64 values, preceded by a
// 16-byte header: magic "SGTR", version, period count, item count.
func WriteBinary(w io.Writer, s *stream.Stream) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[:4], "SGTR")
	binary.LittleEndian.PutUint32(hdr[4:], 1)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.Periods))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(s.Items)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, it := range s.Items {
		binary.LittleEndian.PutUint64(buf[:], it)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses "item [period]" lines. When a period column is present,
// the stream's period count is the largest period index + 1 and items are
// assumed grouped by period; otherwise fallbackPeriodItems arrivals form
// one period.
func ReadText(r io.Reader, fallbackPeriodItems int) (*stream.Stream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var items []stream.Item
	maxPeriod := -1
	sawPeriod := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		it, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traceio: line %d: bad item %q: %w", line, fields[0], err)
		}
		items = append(items, it)
		if len(fields) >= 2 {
			p, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("traceio: line %d: bad period %q: %w", line, fields[1], err)
			}
			sawPeriod = true
			if p > maxPeriod {
				maxPeriod = p
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s := &stream.Stream{Items: items, Label: "trace"}
	if sawPeriod {
		s.Periods = maxPeriod + 1
	} else if fallbackPeriodItems > 0 {
		s.Periods = (len(items) + fallbackPeriodItems - 1) / fallbackPeriodItems
	}
	if s.Periods < 1 {
		s.Periods = 1
	}
	return s, nil
}

// ReadBinary parses a WriteBinary trace.
func ReadBinary(r io.Reader) (*stream.Stream, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("traceio: short header: %w", err)
	}
	if string(hdr[:4]) != "SGTR" {
		return nil, fmt.Errorf("traceio: bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != 1 {
		return nil, fmt.Errorf("traceio: unsupported version %d", v)
	}
	periods := int(binary.LittleEndian.Uint32(hdr[8:]))
	n := int(binary.LittleEndian.Uint32(hdr[12:]))
	items := make([]stream.Item, n)
	var buf [8]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("traceio: truncated at item %d: %w", i, err)
		}
		items[i] = binary.LittleEndian.Uint64(buf[:])
	}
	if periods < 1 {
		periods = 1
	}
	return &stream.Stream{Items: items, Periods: periods, Label: "trace"}, nil
}

// MaybeGzip wraps r with a gzip reader when the stream starts with the
// gzip magic bytes, passing other content through untouched — so the CLIs
// accept both plain and .gz traces transparently.
func MaybeGzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(2)
	if err != nil {
		// Too short to be gzip; let downstream parsing report the real error.
		return br, nil
	}
	if head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("traceio: gzip: %w", err)
		}
		return zr, nil
	}
	return br, nil
}
